//! # OutRAN — facade crate
//!
//! One-stop import for the OutRAN reproduction (CoNEXT '22: *"OutRAN:
//! Co-optimizing for Flow Completion Time in Radio Access Network"*).
//!
//! OutRAN is a downlink flow scheduler for LTE/5G base stations that
//! minimises short-flow Flow Completion Time (FCT) **without prior flow
//! knowledge** while preserving the legacy MAC scheduler's spectral
//! efficiency and user fairness. See `DESIGN.md` at the repository root for
//! the system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! results of every table and figure.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`simcore`] | `outran-simcore` | virtual time, RNG, event queue, stats |
//! | [`phy`] | `outran-phy` | channel model, CQI/MCS, numerologies |
//! | [`pdcp`] | `outran-pdcp` | flow inspection, SN numbering, ciphering |
//! | [`rlc`] | `outran-rlc` | UM/AM entities, segmentation, MLFQ queues |
//! | [`mac`] | `outran-mac` | per-RB schedulers incl. OutRAN inter-user |
//! | [`transport`] | `outran-transport` | TCP (Cubic/Reno) endpoint model |
//! | [`workload`] | `outran-workload` | flow-size dists, arrivals, web pages |
//! | [`metrics`] | `outran-metrics` | FCT/fairness/SE collectors, tables |
//! | [`core`] | `outran-core` | the OutRAN scheduler itself + thresholds |
//! | [`ran`] | `outran-ran` | end-to-end cell simulator & experiments |
//!
//! ## Quickstart
//!
//! ```
//! use outran::ran::{Experiment, SchedulerKind};
//!
//! let report = Experiment::lte_default()
//!     .users(8)
//!     .load(0.6)
//!     .duration_secs(2)
//!     .scheduler(SchedulerKind::OutRan)
//!     .seed(7)
//!     .run();
//! println!("short-flow mean FCT: {:.1} ms", report.fct.short_mean_ms());
//! ```

#![forbid(unsafe_code)]

pub use outran_core as core;
pub use outran_faults as faults;
pub use outran_mac as mac;
pub use outran_metrics as metrics;
pub use outran_pdcp as pdcp;
pub use outran_phy as phy;
pub use outran_ran as ran;
pub use outran_rlc as rlc;
pub use outran_simcore as simcore;
pub use outran_transport as transport;
pub use outran_workload as workload;
