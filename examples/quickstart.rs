//! Quickstart: compare OutRAN against the PF baseline on one LTE cell.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]

use outran::ran::{Experiment, SchedulerKind};

fn main() {
    println!("OutRAN quickstart: LTE pedestrian cell, load 0.8, 40 UEs\n");
    for kind in [
        SchedulerKind::Pf,
        SchedulerKind::Srjf,
        SchedulerKind::OutRan,
    ] {
        let r = Experiment::lte_default()
            .users(40)
            .load(0.8)
            .duration_secs(20)
            .scheduler(kind)
            .seed(11)
            .run();
        println!(
            "{:<10} flows={:<5} overall={:>7.1}ms S_avg={:>7.1}ms S_p95={:>8.1}ms M={:>7.1}ms L={:>8.1}ms SE={:.2} fair={:.3} drops={}",
            r.scheduler, r.fct.count, r.fct.overall_mean_ms, r.fct.short_mean_ms,
            r.fct.short_p95_ms, r.fct.medium_mean_ms, r.fct.long_mean_ms,
            r.spectral_efficiency, r.fairness, r.buffer_drops,
        );
    }
}
