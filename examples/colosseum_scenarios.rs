//! Run the Colosseum-style multi-cell scenarios (Fig 19): Rome
//! (close/moderate), Boston (close/fast), POWDER (medium/static) — four
//! 15-RB cells with four UEs each, srsRAN (PF) vs OutRAN.
//!
//! Usage:
//!   cargo run --release --example colosseum_scenarios [-- <load>]

#![forbid(unsafe_code)]

use outran::phy::Scenario;
use outran::ran::cell::SchedulerKind;
use outran::ran::multicell::MultiCell;
use outran::simcore::Time;

fn main() {
    let load: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4);
    println!("Colosseum topology: 4 cells x 4 UEs, 15 RBs, load {load}\n");
    println!(
        "{:<26} {:<8} {:>10} {:>9} {:>10} {:>9}",
        "scenario", "sched", "overall", "S avg", "S p95", "L avg"
    );
    for scenario in [
        Scenario::ColosseumRome,
        Scenario::ColosseumBoston,
        Scenario::ColosseumPowder,
    ] {
        for (kind, label) in [
            (SchedulerKind::Pf, "srsRAN"),
            (SchedulerKind::OutRan, "OutRAN"),
        ] {
            let mut mc = MultiCell::colosseum(scenario, kind, load);
            mc.duration = Time::from_secs(10);
            let r = mc.run();
            println!(
                "{:<26} {:<8} {:>8.1}ms {:>7.1}ms {:>8.1}ms {:>7.1}ms",
                scenario.name(),
                label,
                r.overall_mean_ms,
                r.short_mean_ms,
                r.short_p95_ms,
                r.long_mean_ms
            );
        }
    }
    println!("\npaper: OutRAN improves avg FCT ~32% and short FCT ~56% on Colosseum");
}
