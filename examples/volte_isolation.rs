//! Demonstrate the QoS split of Table 1: a VoLTE call rides a dedicated
//! GBR bearer (semi-persistent grants) and keeps ~one-frame latency no
//! matter how congested the best-effort bearers get — while the
//! best-effort short flows live or die by the scheduler, which is
//! exactly the gap OutRAN fills.
//!
//! Usage: cargo run --release --example volte_isolation

#![forbid(unsafe_code)]

use outran::ran::cell::{Cell, CellConfig, GbrBearer, SchedulerKind};
use outran::simcore::{Rng, Time};
use outran::workload::{FlowSizeDist, PoissonFlowGen};

fn main() {
    println!("VoLTE on a dedicated GBR bearer vs best-effort shorts, load 0.8\n");
    println!(
        "{:<8} {:>14} {:>14} {:>16} {:>16}",
        "sched", "VoLTE avg(ms)", "VoLTE p99(ms)", "BE S avg(ms)", "BE S p95(ms)"
    );
    for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
        let cfg = CellConfig::lte_default(12, kind, 7);
        let mut cell = Cell::new(cfg);
        cell.add_gbr_bearer(GbrBearer::volte(0));
        let mut gen = PoissonFlowGen::new(FlowSizeDist::LteCellular, 0.8, 87e6, 12, Rng::new(0x70));
        for a in gen.take_until(Time::from_secs(15)) {
            cell.schedule_flow(a.at, a.ue, a.bytes, None);
        }
        cell.run_until(Time::from_secs(18));
        let report = cell.fct.report();
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>16.1} {:>16.1}",
            kind.name(),
            cell.gbr_latency.mean(),
            cell.gbr_latency.percentile(99.0),
            report.short_mean_ms,
            report.short_p95_ms,
        );
    }
    println!(
        "\nThe GBR bearer is isolated by provisioning (same under both\n\
         schedulers); the best-effort Interactive class only improves with\n\
         OutRAN — QoS provisioning alone does not help it (paper §1/§3)."
    );
}
