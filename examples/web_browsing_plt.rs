//! Load a web page over a contended LTE cell and compare the page load
//! time under the vanilla PF scheduler vs OutRAN.
//!
//! Usage:
//!   cargo run --release --example web_browsing_plt [-- <page> [runs]]
//!
//! `page` is an Alexa-top-20 name (default "google.com"); `runs` is the
//! number of page loads to average (default 5).

#![forbid(unsafe_code)]

use outran::phy::Scenario;
use outran::ran::cell::{Cell, CellConfig, SchedulerKind};
use outran::ran::webplt::load_page;
use outran::simcore::{Dur, Rng, Time};
use outran::workload::{BrowserModel, FlowSizeDist, PoissonFlowGen, WebPage};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let page_name = args.get(1).map(|s| s.as_str()).unwrap_or("google.com");
    let runs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    let Some(page) = WebPage::top20().into_iter().find(|p| p.name == page_name) else {
        eprintln!("unknown page '{page_name}'. Known pages:");
        for p in WebPage::top20() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };
    println!(
        "Loading {} ({} KB, {} sub-flows, {} over QUIC) {runs}x per scheduler\n",
        page.name,
        page.page_bytes / 1000,
        page.n_flows,
        page.n_quic_flows
    );

    for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
        let mut cfg = CellConfig::lte_default(4, kind, 42);
        cfg.channel = Scenario::Testbed.channel_config();
        let mut cell = Cell::new(cfg);
        // Background bulk transfers on every UE keep the cell busy
        // (websearch, §6.1) — including the browsing UE itself.
        let mut bg = PoissonFlowGen::new(FlowSizeDist::Websearch, 0.6, 87e6, 4, Rng::new(0xB6));
        for a in bg.take_until(Time::from_secs(120)) {
            cell.schedule_flow(a.at, a.ue, a.bytes, None);
        }
        cell.run_until(Time::from_secs(1));
        let mut rng = Rng::new(0x9A);
        let mut plts = Vec::new();
        for run in 0..runs {
            let r = load_page(
                &mut cell,
                &page,
                0,
                BrowserModel::default(),
                &mut rng,
                (run as u64 + 1) * 1000,
            );
            plts.push(r.plt.as_millis_f64());
            let resume = Time(cell.now().0 + Dur::from_millis(500).as_nanos());
            cell.run_until(resume);
        }
        let mean = plts.iter().sum::<f64>() / plts.len() as f64;
        println!(
            "{:<8} PLT: mean {:>7.0} ms   per-run: {:?}",
            kind.name(),
            mean,
            plts.iter().map(|p| p.round() as u64).collect::<Vec<_>>()
        );
    }
    println!("\n(render time is part of the PLT; render-heavy pages like zoom.us\n show little scheduler effect — §6.1)");
}
