//! Explore 5G NR numerologies (Fig 17's RAN axis): how the slot length
//! changes RTT, queueing delay and short-flow tails, and what OutRAN
//! adds on top at each setting.
//!
//! Usage: cargo run --release --example nr_numerology [-- <load>]

#![forbid(unsafe_code)]

use outran::ran::{Experiment, SchedulerKind};
use outran::simcore::Dur;

fn main() {
    let load: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.6);
    println!("NR 100 MHz, MEC server (5 ms), 40 UEs, load {load}\n");
    println!(
        "{:<4} {:>9} {:<8} {:>9} {:>10} {:>12}",
        "mu", "slot(us)", "sched", "RTT(ms)", "avgQ(ms)", "S p95(ms)"
    );
    for mu in 0u8..=3 {
        for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
            let r = Experiment::nr_default(mu)
                .load(load)
                .duration_secs(6)
                .cn_delay(Dur::from_millis(5))
                .scheduler(kind)
                .seed(11)
                .run();
            println!(
                "{:<4} {:>9} {:<8} {:>9.1} {:>10.1} {:>12.1}",
                mu,
                1000 >> mu,
                r.scheduler,
                r.mean_rtt_ms,
                r.mean_qdelay_ms,
                r.fct.short_p95_ms
            );
        }
    }
    println!(
        "\npaper (Fig 17): shorter slots cut in-air latency, but under load the\n\
         gNodeB queue — not the slot length — dominates short-flow latency;\n\
         OutRAN removes that queueing component."
    );
}
