//! Sweep the offered cell load and print how each scheduler's short-flow
//! tail FCT responds — the headline comparison of the paper (Fig 15).
//!
//! Usage:
//!   cargo run --release --example cell_load_sweep [-- <users> <secs>]
//!
//! Fault-injection knobs (smoltcp-style), via env vars:
//!   OUTRAN_RESIDUAL_LOSS=0.01    post-HARQ segment loss probability
//!   OUTRAN_BUFFER_SDUS=64       per-UE RLC buffer capacity

#![forbid(unsafe_code)]

use outran::ran::{Experiment, SchedulerKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let users: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let buffer: usize = std::env::var("OUTRAN_BUFFER_SDUS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let residual_loss: f64 = std::env::var("OUTRAN_RESIDUAL_LOSS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);

    println!("{users} UEs, {secs}s horizon, buffer {buffer} SDUs, residual loss {residual_loss}\n");
    println!(
        "{:<6} {:<12} {:>9} {:>10} {:>10} {:>8} {:>9}",
        "load", "scheduler", "S avg", "S p95", "L avg", "SE", "fairness"
    );
    for load in [0.4, 0.6, 0.8] {
        for kind in [
            SchedulerKind::Pf,
            SchedulerKind::OutRan,
            SchedulerKind::Srjf,
        ] {
            let r = Experiment::lte_default()
                .users(users)
                .load(load)
                .duration_secs(secs)
                .buffer_sdus(buffer)
                .residual_loss(residual_loss)
                .scheduler(kind)
                .seed(7)
                .run();
            println!(
                "{:<6} {:<12} {:>8.1}ms {:>9.1}ms {:>9.1}ms {:>8.2} {:>9.3}",
                load,
                r.scheduler,
                r.fct.short_mean_ms,
                r.fct.short_p95_ms,
                r.fct.long_mean_ms,
                r.spectral_efficiency,
                r.fairness
            );
        }
        println!();
    }
}
