//! Property tests on workload generation and the PHY substrate.

use outran::phy::channel::{CellChannel, ChannelConfig};
use outran::phy::Scenario;
use outran::simcore::{Empirical, Rng, Time};
use outran::workload::{FlowSizeDist, PoissonFlowGen, WebPage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sampled flow sizes always fall inside the distribution's support
    /// and the empirical CDF tracks the analytic one.
    #[test]
    fn samples_match_cdf(seed in 0u64..1000, p in 0.05f64..0.95) {
        let dist = FlowSizeDist::LteCellular;
        let cdf = dist.cdf();
        let q = cdf.quantile(p);
        let mut rng = Rng::new(seed);
        let n = 4000;
        let below = (0..n)
            .filter(|_| (dist.sample(&cdf, &mut rng) as f64) <= q)
            .count();
        let frac = below as f64 / n as f64;
        prop_assert!((frac - p).abs() < 0.06, "p={p} frac={frac}");
    }

    /// The quantile function is monotone for any valid knot set.
    #[test]
    fn quantile_monotone(
        values in prop::collection::vec(1.0f64..1e9, 2..10),
        seed in 0u64..100,
    ) {
        let mut vs = values;
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vs.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        prop_assume!(vs.len() >= 2);
        let n = vs.len();
        let knots: Vec<(f64, f64)> = vs
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        let cdf = Empirical::from_cdf(&knots);
        let mut rng = Rng::new(seed);
        let mut prev = 0.0;
        for i in 0..100 {
            let p = i as f64 / 99.0;
            let q = cdf.quantile(p);
            prop_assert!(q >= prev - 1e-9);
            prev = q;
        }
        let _ = rng.f64();
    }

    /// Poisson arrivals: strictly increasing, all UEs in range, offered
    /// volume within a factor of the target for long horizons.
    #[test]
    fn arrivals_sane(seed in 0u64..500, load in 0.2f64..1.0, n_ues in 1usize..40) {
        let mut g = PoissonFlowGen::new(
            FlowSizeDist::MirageMobileApp,
            load,
            50e6,
            n_ues,
            Rng::new(seed),
        );
        let mut prev = Time::ZERO;
        for _ in 0..300 {
            let a = g.next();
            prop_assert!(a.at > prev);
            prop_assert!(a.ue < n_ues);
            prop_assert!(a.bytes >= 64);
            prev = a.at;
        }
    }

    /// Page objects always sum to the page size within the min-object
    /// padding tolerance, for any RNG state.
    #[test]
    fn page_objects_conserve_bytes(seed in 0u64..2000, idx in 0usize..20) {
        let pages = WebPage::top20();
        let page = &pages[idx];
        let mut rng = Rng::new(seed);
        let objs = page.objects(&mut rng);
        prop_assert_eq!(objs.len(), page.n_flows as usize);
        let total: u64 = objs.iter().map(|o| o.bytes).sum();
        let tol = 64 * page.n_flows as u64;
        prop_assert!(total + tol >= page.page_bytes && total <= page.page_bytes + tol);
        let quic: u64 = objs.iter().filter(|o| o.is_quic).map(|o| o.bytes).sum();
        let qtol = 64 * (page.n_quic_flows as u64 + 1);
        prop_assert!(quic <= page.quic_bytes + qtol);
    }

    /// The channel is deterministic per seed and its reported rates are
    /// always within the MCS table's physical bounds.
    #[test]
    fn channel_rates_bounded(seed in 0u64..200) {
        let cfg = ChannelConfig::lte_default();
        let mut ch = CellChannel::new(cfg, 4, &Rng::new(seed));
        let peak = cfg.table.peak_efficiency() * cfg.radio.data_re_per_rb();
        let tti = cfg.radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..50 {
            now += tti;
            ch.advance_tti(now);
            for u in 0..4 {
                for sb in 0..cfg.n_subbands {
                    let r = ch.reported_rate_per_rb_subband(u, sb);
                    prop_assert!(r >= 0.0 && r <= peak + 1e-9);
                }
            }
        }
    }

    /// Every scenario preset produces a usable cell (positive peak rate,
    /// at least one RB, UEs placeable).
    #[test]
    fn scenario_presets_always_valid(seed in 0u64..100, which in 0usize..7) {
        let s = [
            Scenario::LtePedestrian,
            Scenario::NrUrban(0),
            Scenario::NrUrban(3),
            Scenario::ColosseumRome,
            Scenario::ColosseumBoston,
            Scenario::ColosseumPowder,
            Scenario::Testbed,
        ][which];
        let cfg = s.channel_config();
        let ch = CellChannel::new(cfg, 3, &Rng::new(seed));
        prop_assert!(ch.n_rbs() >= 1);
        prop_assert!(cfg.radio.data_re_per_rb() > 0.0);
        for u in 0..3 {
            prop_assert!(ch.ue_distance(u) >= cfg.min_radius_m - 1e-6);
            prop_assert!(ch.ue_distance(u) <= cfg.radius_m + 1e-6);
        }
    }
}
