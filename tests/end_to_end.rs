//! End-to-end integration tests: the paper's headline orderings must
//! hold on small-but-contended cells, across the crate boundary exactly
//! as a downstream user would drive the library.

use outran::core::OutRanConfig;
use outran::phy::numerology::RadioConfig;
use outran::ran::cell::{Cell, CellConfig, RlcMode, SchedulerKind};
use outran::simcore::{Dur, Rng, Time};
use outran::workload::{FlowSizeDist, PoissonFlowGen};

/// A small contended cell: 6 UEs, 25 RBs, LTE traffic at the given load.
fn contended_cell(kind: SchedulerKind, seed: u64, load: f64) -> Cell {
    let mut cfg = CellConfig::lte_default(6, kind, seed);
    cfg.channel.radio = RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    let mut cell = Cell::new(cfg);
    // 25 RBs ≈ 25 Mbps nominal capacity.
    let mut gen = PoissonFlowGen::new(
        FlowSizeDist::LteCellular,
        load,
        25e6,
        6,
        Rng::new(seed ^ 0xFEED),
    );
    for a in gen.take_until(Time::from_secs(8)) {
        cell.schedule_flow(a.at, a.ue, a.bytes, None);
    }
    cell
}

fn run(kind: SchedulerKind, seed: u64, load: f64) -> (f64, f64, f64, f64) {
    let mut cell = contended_cell(kind, seed, load);
    cell.run_until(Time::from_secs(11));
    let report = cell.fct.report();
    (
        report.short_mean_ms,
        report.short_p95_ms,
        cell.metrics.spectral_efficiency(),
        cell.metrics.mean_fairness(),
    )
}

#[test]
fn outran_improves_short_tail_over_pf() {
    // Averaged across seeds to smooth the heavy-tailed noise.
    let seeds = [3u64, 5, 9];
    let mut pf_tail = 0.0;
    let mut or_tail = 0.0;
    for &s in &seeds {
        pf_tail += run(SchedulerKind::Pf, s, 0.75).1;
        or_tail += run(SchedulerKind::OutRan, s, 0.75).1;
    }
    assert!(
        or_tail < pf_tail,
        "OutRAN short p95 sum {or_tail:.1} must beat PF {pf_tail:.1}"
    );
}

#[test]
fn outran_preserves_pf_spectral_efficiency() {
    let seeds = [3u64, 5];
    let mut pf_se = 0.0;
    let mut or_se = 0.0;
    for &s in &seeds {
        pf_se += run(SchedulerKind::Pf, s, 0.6).2;
        or_se += run(SchedulerKind::OutRan, s, 0.6).2;
    }
    // Paper: ≥98 %. Allow slack for the small test cell.
    assert!(
        or_se > 0.85 * pf_se,
        "OutRAN SE {or_se:.2} must stay close to PF {pf_se:.2}"
    );
}

#[test]
fn srjf_costs_fairness_vs_pf() {
    let seeds = [3u64, 5, 9];
    let mut pf_f = 0.0;
    let mut srjf_f = 0.0;
    for &s in &seeds {
        pf_f += run(SchedulerKind::Pf, s, 0.75).3;
        srjf_f += run(SchedulerKind::Srjf, s, 0.75).3;
    }
    assert!(
        srjf_f < pf_f,
        "SRJF fairness {srjf_f:.3} must be below PF {pf_f:.3}"
    );
}

#[test]
fn identical_seeds_identical_results() {
    let a = run(SchedulerKind::OutRan, 7, 0.6);
    let b = run(SchedulerKind::OutRan, 7, 0.6);
    assert_eq!(a, b, "simulation must be bit-for-bit deterministic");
}

#[test]
fn every_scheduler_completes_the_workload() {
    for kind in [
        SchedulerKind::Pf,
        SchedulerKind::Mt,
        SchedulerKind::Rr,
        SchedulerKind::Srjf,
        SchedulerKind::Pss,
        SchedulerKind::Cqa,
        SchedulerKind::OutRan,
        SchedulerKind::StrictMlfq,
    ] {
        let mut cell = contended_cell(kind, 11, 0.4);
        let offered = cell.n_flows();
        cell.run_until(Time::from_secs(14));
        let completed = cell.n_completed();
        assert!(
            completed as f64 >= offered as f64 * 0.85,
            "{}: only {completed}/{offered} flows completed",
            kind.name()
        );
    }
}

#[test]
fn am_mode_works_with_outran_and_pf() {
    for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
        let mut cfg = CellConfig::lte_default(4, kind, 13);
        cfg.channel.radio = RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        cfg.rlc_mode = RlcMode::Am;
        cfg.residual_loss = 0.02; // force the NACK path to matter
        let mut cell = Cell::new(cfg);
        for i in 0..10u64 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 60),
                (i % 4) as usize,
                40_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(12));
        assert_eq!(cell.n_completed(), 10, "{} AM", kind.name());
    }
}

#[test]
fn priority_reset_protects_long_flows() {
    // With a huge number of shorts hammering one UE's elephant, the
    // reset must shorten the elephant's completion relative to no-reset.
    let run_with = |reset: Option<Dur>| -> f64 {
        let mut cfg = CellConfig::lte_default(4, SchedulerKind::OutRan, 21);
        cfg.channel.radio = RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        cfg.outran = OutRanConfig {
            reset_period: reset,
            ..OutRanConfig::default()
        };
        let mut cell = Cell::new(cfg);
        let elephant = cell.schedule_flow(Time::from_millis(5), 0, 2_000_000, None);
        // Persistent stream of shorts to the same UE.
        for i in 0..400u64 {
            cell.schedule_flow(Time::from_millis(20 + i * 20), 0, 6_000, None);
        }
        cell.run_until(Time::from_secs(20));
        cell.take_completions()
            .iter()
            .find(|d| d.id == elephant)
            .map(|d| d.fct.as_millis_f64())
            .unwrap_or(f64::INFINITY)
    };
    let without = run_with(None);
    let with = run_with(Some(Dur::from_millis(200)));
    assert!(
        with <= without * 1.05,
        "reset must not hurt the elephant: with={with:.0}ms without={without:.0}ms"
    );
}

#[test]
fn handover_state_transfer_preserves_priorities() {
    use outran::pdcp::{FiveTuple, FlowTable, MlfqConfig, Priority};
    // §7: the 41 B/flow state can be copied to the target cell.
    let mut src = FlowTable::new(MlfqConfig::default());
    let t = FiveTuple::simulated(1, 0);
    src.observe(t, 500_000, Time::ZERO);
    assert_ne!(src.priority_of(&t), Priority::TOP);
    let mut dst = FlowTable::new(MlfqConfig::default());
    dst.import(&src.export(), Time::from_secs(1));
    assert_eq!(
        dst.priority_of(&t),
        src.priority_of(&t),
        "an elephant must stay demoted after handover"
    );
    assert_eq!(dst.state_bytes(), 41);
}

#[test]
fn flow_splitting_cannot_game_the_scheduler() {
    // §7 "Safeguard to prevent gaming": splitting one elephant into many
    // short flows must not buy a user materially more than it buys under
    // plain PF. (Splitting helps under ANY scheduler — parallel TCP
    // connections dodge single-connection loss stalls, the download-
    // accelerator effect — so the property to check is that OutRAN does
    // not AMPLIFY that advantage beyond the bounded ε-band effect.)
    // UE 0 ships 2 MB either whole or as 40 x 50 KB concurrent flows
    // while UE 1 runs a competing elephant.
    let run1 = |kind: SchedulerKind, split: bool, seed: u64| -> f64 {
        let mut cfg = CellConfig::lte_default(2, kind, seed);
        cfg.channel.radio = RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        let mut cell = Cell::new(cfg);
        // The victim: a long-running elephant on UE 1.
        cell.schedule_flow(Time::from_millis(5), 1, 2_000_000, None);
        let mut ids = Vec::new();
        if split {
            for i in 0..40u64 {
                ids.push(cell.schedule_flow(
                    Time::from_millis(5 + i), // near-simultaneous burst
                    0,
                    50_000,
                    None,
                ));
            }
        } else {
            ids.push(cell.schedule_flow(Time::from_millis(5), 0, 2_000_000, None));
        }
        cell.run_until(Time::from_secs(30));
        let done = cell.take_completions();
        // Time until UE 0's last byte: max completion over its flows.
        ids.iter()
            .map(|id| {
                done.iter()
                    .find(|d| d.id == *id)
                    .map(|d| d.spawn.as_millis_f64() + d.fct.as_millis_f64())
                    .unwrap_or(f64::INFINITY)
            })
            .fold(0.0f64, f64::max)
    };
    let seeds = [17u64, 29, 53];
    let gain = |kind: SchedulerKind| -> f64 {
        let mut acc = 0.0;
        for &s in &seeds {
            acc += run1(kind, false, s) / run1(kind, true, s);
        }
        acc / seeds.len() as f64
    };
    let pf_gain = gain(SchedulerKind::Pf);
    let or_gain = gain(SchedulerKind::OutRan);
    assert!(pf_gain.is_finite() && or_gain.is_finite());
    // Reproduction finding (documented in EXPERIMENTS.md): the §7 claim
    // that gaming "will not be an issue" is only approximately true. A
    // splitting user keeps permanent P1 priority, and per-RB rate
    // dispersion lets it win inside the ε band well past the naive
    // (1−ε)⁻¹ = 1.25x estimate — we measure ≈2x at ε = 0.2 with two
    // users. The gain is bounded, but it is real.
    assert!(
        or_gain <= 3.0,
        "split gain should stay bounded: OutRAN {or_gain:.2}x (PF {pf_gain:.2}x)"
    );
    assert!(
        or_gain >= pf_gain * 0.9,
        "sanity: measured gains should not be wildly inverted (PF {pf_gain:.2}x, OutRAN {or_gain:.2}x)"
    );
}
