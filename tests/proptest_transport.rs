//! Property-based tests on the TCP model: completion under arbitrary
//! loss patterns, receiver monotonicity, and window sanity.

use outran::simcore::{Dur, Time};
use outran::transport::{TcpConfig, TcpReceiver, TcpSender};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A flow completes against any (sub-certain) deterministic loss
    /// pattern: drop every k-th segment on its first transmission.
    #[test]
    fn completes_under_periodic_loss(
        flow_kb in 1u64..400,
        drop_every in 2usize..12,
        rtt_ms in 5u64..80,
    ) {
        let size = flow_kb * 1000;
        let mut tx = TcpSender::with_initial_rtt(
            TcpConfig::default(), size, Dur::from_millis(rtt_ms));
        let mut rx = TcpReceiver::new(size);
        let mut now = Time::ZERO;
        let mut sent = 0usize;
        let mut guard = 0;
        while !rx.complete() {
            guard += 1;
            prop_assert!(guard < 30_000, "must complete: cum={} / {}", rx.cum(), size);
            let segs = tx.emit(now);
            let mut acks = Vec::new();
            for seg in segs {
                sent += 1;
                // First transmissions are dropped on the pattern;
                // retransmissions always get through.
                if !seg.is_retx && sent.is_multiple_of(drop_every) {
                    continue;
                }
                acks.push(rx.on_segment(seg.seq, seg.len));
            }
            now += Dur::from_millis(rtt_ms);
            if acks.is_empty() {
                // Nothing arrived; rely on the RTO.
                if let Some(d) = tx.rto_deadline() {
                    if d <= now {
                        tx.on_rto(now);
                    } else {
                        now = d;
                        tx.on_rto(now);
                    }
                }
            } else {
                for a in acks {
                    tx.on_ack(now, a);
                }
            }
        }
        prop_assert_eq!(rx.cum(), size);
    }

    /// Receiver cumulative ACK is monotone non-decreasing and never
    /// exceeds the flow size, for arbitrary segment arrivals.
    #[test]
    fn receiver_cum_monotone(
        segs in prop::collection::vec((0u64..100u64, 1u32..1500), 1..300),
        size in 1_000u64..100_000,
    ) {
        let mut rx = TcpReceiver::new(size);
        let mut prev = 0;
        for (block, len) in segs {
            let cum = rx.on_segment(block * 1400, len.min(1400));
            prop_assert!(cum >= prev);
            prev = cum;
        }
    }

    /// cwnd never collapses below one MSS and never exceeds the cap.
    #[test]
    fn cwnd_stays_in_bounds(
        acks in prop::collection::vec(prop::bool::ANY, 1..200),
    ) {
        let cfg = TcpConfig::default();
        let mut tx = TcpSender::new(cfg, 10_000_000);
        let mut now = Time::ZERO;
        let mut delivered = 0u64;
        for progress in acks {
            let segs = tx.emit(now);
            if let Some(last) = segs.last() {
                if progress {
                    delivered = delivered.max(last.seq + last.len as u64);
                }
            }
            now += Dur::from_millis(20);
            // Either progress (new cum ack) or a dup ack.
            tx.on_ack(now, delivered);
            let mss = cfg.mss as f64;
            prop_assert!(tx.cwnd() >= mss - 1e-9);
            prop_assert!(tx.cwnd() <= (cfg.max_cwnd_segs as f64) * mss + 1e-9);
        }
    }
}
