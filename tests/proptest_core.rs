//! Property tests on the OutRAN policy crate: the threshold optimizer
//! must produce valid, useful MLFQ configurations for *any* plausible
//! flow-size distribution, and the priority reset must stay phase-locked.

use outran::core::thresholds::objective;
use outran::core::{optimize_thresholds, PriorityReset};
use outran::simcore::{Dur, Empirical, Time};
use proptest::prelude::*;

/// Build a random but valid heavy-tail-ish CDF from sorted knot values.
fn cdf_from(mut values: Vec<f64>) -> Option<Empirical> {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values.dedup_by(|a, b| (*a / *b) < 1.2); // keep knots separated
    if values.len() < 3 {
        return None;
    }
    let n = values.len();
    let knots: Vec<(f64, f64)> = values
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect();
    Some(Empirical::from_cdf(&knots))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Thresholds are strictly increasing, inside the distribution's
    /// body, and never worse than a naive equal-quantile split.
    #[test]
    fn optimizer_output_is_valid_and_competitive(
        values in prop::collection::vec(100.0f64..1e8, 4..10),
        load in 0.2f64..0.9,
        k in 2usize..6,
    ) {
        let Some(cdf) = cdf_from(values) else {
            return Ok(());
        };
        let th = optimize_thresholds(&cdf, k, load);
        prop_assert_eq!(th.len(), k - 1);
        for w in th.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let thf: Vec<f64> = th.iter().map(|&t| t as f64).collect();
        let naive: Vec<f64> = (1..k)
            .map(|j| cdf.quantile(j as f64 / k as f64).max(101.0 * j as f64))
            .collect();
        // Guard against degenerate naive vectors.
        let naive_ok = naive.windows(2).all(|w| w[0] < w[1]);
        if naive_ok {
            prop_assert!(
                objective(&cdf, &thf, load) <= objective(&cdf, &naive, load) * 1.01,
                "optimizer must not lose to the naive split"
            );
        }
    }

    /// The reset driver fires exactly floor(T/S) times over a horizon
    /// when polled every tick, regardless of tick size.
    #[test]
    fn reset_fires_expected_count(
        period_ms in 50u64..2000,
        tick_ms in 1u64..40,
        horizon_s in 1u64..10,
    ) {
        let mut r = PriorityReset::new(Dur::from_millis(period_ms), Time::ZERO);
        let mut t = Time::ZERO;
        let horizon = Time::from_secs(horizon_s);
        while t < horizon {
            t += Dur::from_millis(tick_ms);
            let _ = r.due(t);
        }
        let expected = t.as_nanos() / Dur::from_millis(period_ms).as_nanos();
        // Allow off-by-one at the boundary.
        prop_assert!(
            (r.resets as i64 - expected as i64).abs() <= 1,
            "resets={} expected≈{}",
            r.resets,
            expected
        );
    }
}
