//! Property-based tests on the RLC layer: segmentation/reassembly
//! round-trips, byte conservation, and ordering invariants under
//! arbitrary transmission-opportunity sequences.

use outran::pdcp::{FiveTuple, Priority};
use outran::rlc::{MlfqQueues, RlcSdu, UmConfig, UmRx, UmTx};
use outran::simcore::{Dur, Time};
use proptest::prelude::*;

fn sdu(id: u64, flow: u64, len: u32, prio: u8) -> RlcSdu {
    RlcSdu {
        id,
        flow_id: flow,
        tuple: FiveTuple::simulated(flow, 0),
        len,
        offset: 0,
        priority: Priority(prio),
        arrival: Time::ZERO,
        seq: id * 100_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever opportunity sizes the MAC grants, every SDU written to a
    /// lossless UM channel is reassembled exactly once with full length.
    #[test]
    fn um_roundtrip_under_arbitrary_opportunities(
        lens in prop::collection::vec(64u32..6000, 1..20),
        prios in prop::collection::vec(0u8..4, 20),
        pulls in prop::collection::vec(1u64..4000, 1..200),
    ) {
        let mut tx = UmTx::new(UmConfig { header_bytes: 0, capacity_sdus: 1000, ..UmConfig::default() });
        let mut rx = UmRx::new(Dur::from_secs(3600)); // effectively no window
        let mut expected = std::collections::HashMap::new();
        for (i, &len) in lens.iter().enumerate() {
            let s = sdu(i as u64, i as u64, len, prios[i % prios.len()]);
            expected.insert(s.id, len);
            tx.write_sdu(s).unwrap();
        }
        let mut delivered = std::collections::HashMap::new();
        let mut t = Time::ZERO;
        let mut pull_iter = pulls.iter().cycle();
        let mut guard = 0;
        while !tx.is_empty() {
            guard += 1;
            prop_assert!(guard < 100_000, "must drain");
            let budget = *pull_iter.next().unwrap();
            let (segs, _) = tx.pull(budget);
            for seg in segs {
                if let Some(d) = rx.on_segment(&seg, t) {
                    prop_assert!(delivered.insert(d.sdu_id, d.len).is_none(),
                        "SDU delivered twice");
                }
            }
            t += Dur::from_millis(1);
        }
        prop_assert_eq!(delivered, expected);
        prop_assert_eq!(rx.discarded_sdus, 0);
    }

    /// Byte accounting: queued_bytes always equals pushed − pulled.
    #[test]
    fn mlfq_conserves_bytes(
        lens in prop::collection::vec(64u32..3000, 1..30),
        prios in prop::collection::vec(0u8..4, 30),
        pulls in prop::collection::vec(1u64..5000, 1..100),
    ) {
        let mut q = MlfqQueues::new(4, 10_000);
        let mut pushed: u64 = 0;
        for (i, &len) in lens.iter().enumerate() {
            q.push(sdu(i as u64, i as u64, len, prios[i % prios.len()])).unwrap();
            pushed += len as u64;
        }
        let mut pulled: u64 = 0;
        for &budget in &pulls {
            let (segs, used) = q.pull(budget, 0);
            let seg_bytes: u64 = segs.iter().map(|s| s.len as u64).sum();
            prop_assert_eq!(seg_bytes, used);
            pulled += seg_bytes;
        }
        prop_assert_eq!(q.queued_bytes(), pushed - pulled);
    }

    /// Within one flow (stable priority), segment byte offsets leave the
    /// transmitter in order: seq of emitted data is non-decreasing.
    #[test]
    fn no_intra_flow_reordering(
        lens in prop::collection::vec(64u32..3000, 2..20),
        pulls in prop::collection::vec(1u64..2500, 1..200),
    ) {
        let mut q = MlfqQueues::new(4, 10_000);
        for (i, &len) in lens.iter().enumerate() {
            // One flow, all P1: strictly FIFO expected.
            let mut s = sdu(i as u64, 7, len, 0);
            s.seq = lens[..i].iter().map(|&l| l as u64).sum();
            q.push(s).unwrap();
        }
        let mut last_seq_end = 0u64;
        let mut pull_iter = pulls.iter().cycle();
        let mut guard = 0;
        while !q.is_empty() {
            guard += 1;
            prop_assert!(guard < 100_000);
            let (segs, _) = q.pull(*pull_iter.next().unwrap(), 0);
            for seg in segs {
                prop_assert!(seg.seq >= last_seq_end || seg.seq + (seg.len as u64) <= last_seq_end,
                    "bytes of one flow must not reorder: seq={} last_end={}", seg.seq, last_seq_end);
                last_seq_end = last_seq_end.max(seg.seq + seg.len as u64);
            }
        }
    }

    /// The priority push-out never drops a strictly higher-priority SDU
    /// in favour of a lower-priority one.
    #[test]
    fn pushout_victim_is_never_better(
        prios in prop::collection::vec(0u8..4, 2..60),
    ) {
        let cap = 16;
        let mut q = MlfqQueues::new(4, cap);
        for (i, &p) in prios.iter().enumerate() {
            let incoming_prio = p;
            match q.push(sdu(i as u64, i as u64, 100, p)) {
                Ok(()) => {}
                Err(victim) => {
                    prop_assert!(victim.priority.0 >= incoming_prio
                        // incoming itself dropped is always permitted
                        || victim.id == i as u64);
                }
            }
            prop_assert!(q.len_sdus() <= cap);
        }
    }
}
