//! Failure injection: the simulator must stay sane — no panics, byte
//! conservation, eventual TCP recovery — under hostile conditions
//! (heavy residual loss, starved buffers, outage-grade channels).

use outran::phy::numerology::RadioConfig;
use outran::ran::cell::{Cell, CellConfig, RlcMode, SchedulerKind};
use outran::simcore::Time;

fn tiny_cell(mutator: impl FnOnce(&mut CellConfig)) -> Cell {
    let mut cfg = CellConfig::lte_default(4, SchedulerKind::OutRan, 99);
    cfg.channel.radio = RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    mutator(&mut cfg);
    Cell::new(cfg)
}

#[test]
fn survives_heavy_residual_loss() {
    let mut cell = tiny_cell(|c| c.residual_loss = 0.15);
    for i in 0..8u64 {
        cell.schedule_flow(Time::from_millis(10 + i * 50), (i % 4) as usize, 30_000, None);
    }
    cell.run_until(Time::from_secs(30));
    // 15 % segment loss is brutal but TCP must still finish most flows.
    assert!(
        cell.n_completed() >= 6,
        "completed {}/8 under 15% loss",
        cell.n_completed()
    );
}

#[test]
fn survives_starved_buffer() {
    let mut cell = tiny_cell(|c| c.buffer_sdus = 4);
    for i in 0..6u64 {
        cell.schedule_flow(Time::from_millis(10 + i * 100), (i % 4) as usize, 100_000, None);
    }
    cell.run_until(Time::from_secs(40));
    assert!(cell.buffer_drops > 0, "a 4-SDU buffer must drop");
    assert!(
        cell.n_completed() >= 5,
        "completed {}/6 with 4-SDU buffers",
        cell.n_completed()
    );
}

#[test]
fn survives_outage_grade_channel() {
    // Push every UE near the CQI floor: most TTIs carry nothing.
    let mut cell = tiny_cell(|c| {
        c.channel.tx_power_dbm = -2.0;
        c.channel.shadowing_sd_db = 8.0;
    });
    cell.schedule_flow(Time::from_millis(10), 0, 20_000, None);
    // Must not panic; completion is not guaranteed in outage.
    cell.run_until(Time::from_secs(10));
}

#[test]
fn survives_loss_plus_am_retransmission_storm() {
    let mut cell = tiny_cell(|c| {
        c.rlc_mode = RlcMode::Am;
        c.residual_loss = 0.10;
    });
    for i in 0..6u64 {
        cell.schedule_flow(Time::from_millis(10 + i * 80), (i % 4) as usize, 50_000, None);
    }
    cell.run_until(Time::from_secs(40));
    assert!(
        cell.n_completed() >= 5,
        "AM must recover: {}/6",
        cell.n_completed()
    );
}

#[test]
fn idle_cell_runs_forever_without_events() {
    let mut cell = tiny_cell(|_| {});
    cell.run_until(Time::from_secs(5));
    assert_eq!(cell.n_flows(), 0);
    assert_eq!(cell.metrics.total_bits(), 0.0);
}

#[test]
fn burst_of_simultaneous_flows() {
    // 200 flows landing in the same millisecond (incast at the CN).
    let mut cell = tiny_cell(|_| {});
    for i in 0..200u64 {
        cell.schedule_flow(Time::from_millis(10), (i % 4) as usize, 4_000, None);
    }
    cell.run_until(Time::from_secs(30));
    assert!(
        cell.n_completed() >= 190,
        "incast must mostly complete: {}",
        cell.n_completed()
    );
}
