//! Failure injection: the simulator must stay sane — no panics, byte
//! conservation, eventual TCP recovery — under hostile conditions
//! (heavy residual loss, starved buffers, outage-grade channels).

use outran::faults::FaultPlan;
use outran::phy::numerology::RadioConfig;
use outran::ran::cell::{Cell, CellConfig, RlcMode, SchedulerKind};
use outran::simcore::{Dur, Time};

fn tiny_cell(mutator: impl FnOnce(&mut CellConfig)) -> Cell {
    let mut cfg = CellConfig::lte_default(4, SchedulerKind::OutRan, 99);
    cfg.channel.radio = RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    mutator(&mut cfg);
    Cell::new(cfg)
}

#[test]
fn survives_heavy_residual_loss() {
    let mut cell = tiny_cell(|c| c.residual_loss = 0.15);
    for i in 0..8u64 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 50),
            (i % 4) as usize,
            30_000,
            None,
        );
    }
    cell.run_until(Time::from_secs(30));
    // 15 % segment loss is brutal but TCP must still finish most flows.
    assert!(
        cell.n_completed() >= 6,
        "completed {}/8 under 15% loss",
        cell.n_completed()
    );
}

#[test]
fn survives_starved_buffer() {
    let mut cell = tiny_cell(|c| c.buffer_sdus = 4);
    for i in 0..6u64 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 100),
            (i % 4) as usize,
            100_000,
            None,
        );
    }
    cell.run_until(Time::from_secs(40));
    assert!(cell.buffer_drops() > 0, "a 4-SDU buffer must drop");
    assert!(
        cell.n_completed() >= 5,
        "completed {}/6 with 4-SDU buffers",
        cell.n_completed()
    );
}

#[test]
fn survives_outage_grade_channel() {
    // Push every UE near the CQI floor: most TTIs carry nothing.
    let mut cell = tiny_cell(|c| {
        c.channel.tx_power_dbm = -2.0;
        c.channel.shadowing_sd_db = 8.0;
    });
    cell.schedule_flow(Time::from_millis(10), 0, 20_000, None);
    // Must not panic; completion is not guaranteed in outage.
    cell.run_until(Time::from_secs(10));
}

#[test]
fn survives_loss_plus_am_retransmission_storm() {
    let mut cell = tiny_cell(|c| {
        c.rlc_mode = RlcMode::Am;
        c.residual_loss = 0.10;
    });
    for i in 0..6u64 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 80),
            (i % 4) as usize,
            50_000,
            None,
        );
    }
    cell.run_until(Time::from_secs(40));
    assert!(
        cell.n_completed() >= 5,
        "AM must recover: {}/6",
        cell.n_completed()
    );
}

#[test]
fn idle_cell_runs_forever_without_events() {
    let mut cell = tiny_cell(|_| {});
    cell.run_until(Time::from_secs(5));
    assert_eq!(cell.n_flows(), 0);
    assert_eq!(cell.metrics.total_bits(), 0.0);
}

#[test]
fn burst_of_simultaneous_flows() {
    // 200 flows landing in the same millisecond (incast at the CN).
    let mut cell = tiny_cell(|_| {});
    for i in 0..200u64 {
        cell.schedule_flow(Time::from_millis(10), (i % 4) as usize, 4_000, None);
    }
    cell.run_until(Time::from_secs(30));
    assert!(
        cell.n_completed() >= 190,
        "incast must mostly complete: {}",
        cell.n_completed()
    );
}

// ---- scripted fault plans -------------------------------------------------
//
// Each scenario runs a small cell under one FaultPlan, asserts the fault
// actually fired (via the fault counters), that TCP + the recovery paths
// brought every flow home well after `plan.last_end()`, and that a final
// invariant sweep (byte conservation, RB accounting, ordering, bounds)
// reports zero violations.

/// Run `cell` far past the fault plan's last window, then audit.
fn run_and_audit(cell: &mut Cell, plan_end: Time) -> u64 {
    let horizon = Time::from_secs(40).max(Time(plan_end.0 * 2));
    cell.run_until(horizon);
    cell.audit_now()
}

#[test]
fn recovers_from_cn_outage_mid_flow() {
    let plan = FaultPlan::new().cn_outage(Time::from_millis(150), Time::from_millis(600));
    let end = plan.last_end();
    let mut cell = tiny_cell(|c| {
        c.faults = plan;
        c.watchdog = Some(Dur::from_millis(500));
    });
    for i in 0..8u64 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 30),
            (i % 4) as usize,
            30_000,
            None,
        );
    }
    let violations = run_and_audit(&mut cell, end);
    let s = cell.fault_stats();
    assert!(
        s.cn_dropped_pkts > 0,
        "outage window never dropped a packet"
    );
    assert_eq!(
        cell.n_completed(),
        8,
        "flows must finish after the CN outage lifts: {}/8",
        cell.n_completed()
    );
    assert_eq!(violations, 0, "violations: {:?}", cell.violations());
}

#[test]
fn survives_stale_and_corrupt_cqi() {
    let plan = FaultPlan::new()
        .cqi_freeze(Time::from_millis(100), Time::from_millis(900), None)
        .cqi_corrupt(Time::from_millis(900), Time::from_millis(1500), None);
    let end = plan.last_end();
    let mut cell = tiny_cell(|c| c.faults = plan);
    for i in 0..8u64 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 40),
            (i % 4) as usize,
            25_000,
            None,
        );
    }
    let violations = run_and_audit(&mut cell, end);
    let s = cell.fault_stats();
    assert!(
        s.cqi_frozen_reports > 0,
        "freeze window never held a report"
    );
    assert!(s.cqi_corrupted_reports > 0, "corrupt window never fired");
    assert!(
        cell.n_completed() >= 7,
        "stale CQI must not strand flows: {}/8",
        cell.n_completed()
    );
    assert_eq!(violations, 0, "violations: {:?}", cell.violations());
}

#[test]
fn rlf_reestablishment_recovers_the_flow() {
    // UE 0 loses its radio link mid-transfer; RLC is re-established
    // (buffers flushed) and the TCP sender must refill them.
    let plan =
        FaultPlan::new().radio_link_failure(Time::from_millis(200), Dur::from_millis(400), 0);
    let end = plan.last_end();
    let mut cell = tiny_cell(|c| {
        c.faults = plan;
        c.watchdog = Some(Dur::from_millis(500));
    });
    cell.schedule_flow(Time::from_millis(10), 0, 60_000, None);
    cell.schedule_flow(Time::from_millis(10), 1, 60_000, None);
    let violations = run_and_audit(&mut cell, end);
    let s = cell.fault_stats();
    assert_eq!(s.rlf_events, 1);
    assert!(s.reestablishments >= 1, "RLF must re-establish RLC");
    assert_eq!(
        cell.n_completed(),
        2,
        "both flows must survive the RLF: {}/2",
        cell.n_completed()
    );
    assert_eq!(violations, 0, "violations: {:?}", cell.violations());
}

#[test]
fn detach_reattach_churn_recovers() {
    // UE 2 detaches twice; in-flight data is flushed, TCP retransmits
    // once the UE re-attaches.
    let plan = FaultPlan::new()
        .detach(Time::from_millis(200), Time::from_millis(500), 2)
        .detach(Time::from_millis(900), Time::from_millis(1200), 2);
    let end = plan.last_end();
    let mut cell = tiny_cell(|c| {
        c.faults = plan;
        c.watchdog = Some(Dur::from_millis(500));
    });
    for i in 0..4u64 {
        cell.schedule_flow(Time::from_millis(10), i as usize % 4, 40_000, None);
    }
    let violations = run_and_audit(&mut cell, end);
    let s = cell.fault_stats();
    assert_eq!(s.detach_events, 2);
    assert_eq!(s.reattach_events, 2);
    assert_eq!(
        cell.n_completed(),
        4,
        "detach churn must not strand flows: {}/4",
        cell.n_completed()
    );
    assert_eq!(violations, 0, "violations: {:?}", cell.violations());
}

#[test]
fn mid_run_buffer_shrink_sheds_and_recovers() {
    // The RLC buffer collapses to 2 SDUs mid-run: excess SDUs are shed
    // (accounted as drops), capacity returns when the window ends.
    let plan = FaultPlan::new().buffer_shrink(Time::from_millis(150), Time::from_millis(800), 2);
    let end = plan.last_end();
    let mut cell = tiny_cell(|c| {
        c.faults = plan;
        c.watchdog = Some(Dur::from_millis(500));
    });
    for i in 0..6u64 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 20),
            (i % 4) as usize,
            50_000,
            None,
        );
    }
    let violations = run_and_audit(&mut cell, end);
    let s = cell.fault_stats();
    assert_eq!(s.buffer_shrink_events, 1);
    assert!(
        cell.n_completed() >= 5,
        "flows must finish once capacity returns: {}/6",
        cell.n_completed()
    );
    assert_eq!(violations, 0, "violations: {:?}", cell.violations());
}

#[test]
fn overload_evicts_flow_state_without_violations() {
    // Flow-table admission control under a flood of concurrent flows:
    // state is evicted (LRU), data delivery must be unaffected.
    let mut cell = tiny_cell(|c| c.max_flow_entries = Some(2));
    for i in 0..40u64 {
        cell.schedule_flow(Time::from_millis(10 + i), (i % 4) as usize, 4_000, None);
    }
    cell.run_until(Time::from_secs(30));
    let violations = cell.audit_now();
    let s = cell.fault_stats();
    assert!(s.flows_evicted > 0, "cap of 2 must evict under 40 flows");
    assert!(
        cell.n_completed() >= 38,
        "eviction loses marking state, not data: {}/40",
        cell.n_completed()
    );
    assert_eq!(violations, 0, "violations: {:?}", cell.violations());
}

#[test]
fn chaos_runs_are_bit_identical() {
    // Same seed + same plan ⇒ the same completions, byte for byte.
    let run = || {
        let plan = FaultPlan::chaos(42, Dur::from_secs(3), 4, 0.8);
        let end = plan.last_end();
        let mut cell = tiny_cell(|c| {
            c.faults = plan;
            c.watchdog = Some(Dur::from_millis(500));
        });
        for i in 0..12u64 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 25),
                (i % 4) as usize,
                20_000,
                None,
            );
        }
        let violations = run_and_audit(&mut cell, end);
        assert_eq!(violations, 0, "violations: {:?}", cell.violations());
        let dones: Vec<(usize, usize, u64, u64, u64)> = cell
            .take_completions()
            .into_iter()
            .map(|d| (d.id, d.ue, d.bytes, d.spawn.0, d.fct.0))
            .collect();
        (dones, cell.fault_stats())
    };
    let (a_dones, a_stats) = run();
    let (b_dones, b_stats) = run();
    assert_eq!(a_dones, b_dones, "completions diverged across replays");
    assert_eq!(a_stats, b_stats, "fault counters diverged across replays");
}

#[test]
fn handover_state_transfer_during_cn_outage_conserves_bytes() {
    // §7-style check: a UE is handed over from cell A to cell B while a
    // CN outage is in force. The PDCP flow-table state exported at the
    // source and imported at the target must carry every tracked byte
    // exactly once — no loss, no duplication — and both cells must pass
    // their invariant audits.
    let outage = FaultPlan::new().cn_outage(Time::from_millis(100), Time::from_millis(900));
    let mut src = tiny_cell(|c| {
        c.faults = outage;
        c.watchdog = Some(Dur::from_millis(500));
    });
    let mut dst = tiny_cell(|_| {});

    for i in 0..6u64 {
        src.schedule_flow(
            Time::from_millis(10 + i * 10),
            (i % 4) as usize,
            30_000,
            None,
        );
    }
    // Run into the middle of the outage window, then hand UE 0 over.
    src.run_until(Time::from_millis(400));
    let exported = src.export_flow_state(0);
    assert!(
        !exported.is_empty(),
        "UE 0 must have live flow state mid-outage"
    );
    let exported_total: u64 = exported.iter().map(|(_, b)| b).sum();
    assert!(exported_total > 0, "tracked bytes must be non-zero");

    dst.run_until(Time::from_millis(400));
    dst.import_flow_state(0, &exported);
    let imported = dst.export_flow_state(0);
    assert_eq!(
        exported.len(),
        imported.len(),
        "handover must not add or drop flow entries"
    );
    let imported_total: u64 = imported.iter().map(|(_, b)| b).sum();
    assert_eq!(
        exported_total, imported_total,
        "handover must conserve tracked bytes exactly"
    );
    // Re-importing the same snapshot must be idempotent (no duplication).
    dst.import_flow_state(0, &exported);
    let again: u64 = dst.export_flow_state(0).iter().map(|(_, b)| b).sum();
    assert_eq!(imported_total, again, "re-import duplicated bytes");

    // Both cells keep running past the outage and stay invariant-clean.
    src.run_until(Time::from_secs(40));
    dst.run_until(Time::from_secs(40));
    assert_eq!(src.audit_now(), 0, "src violations: {:?}", src.violations());
    assert_eq!(dst.audit_now(), 0, "dst violations: {:?}", dst.violations());
    assert_eq!(
        src.n_completed(),
        6,
        "source flows must complete after the outage: {}/6",
        src.n_completed()
    );
}
