//! Property-based tests on the MAC schedulers: allocation sanity and
//! the Algorithm 1 guarantees.

use outran::mac::types::FlatRates;
use outran::mac::{OutRanScheduler, PfScheduler, Scheduler, UeTti};
use outran::pdcp::Priority;
use outran::simcore::{Dur, Time};
use proptest::prelude::*;

fn ues_from(active: &[bool], prios: &[u8]) -> Vec<UeTti> {
    active
        .iter()
        .zip(prios)
        .map(|(&a, &p)| UeTti {
            active: a,
            head_priority: Some(Priority(p % 4)),
            queued_bytes: 10_000,
            oracle_min_remaining: Some(1_000),
            hol_delay: Dur::ZERO,
            oracle_has_qos_flow: false,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every RB is assigned to at most one UE, only to active UEs with a
    /// positive rate, and bits accounting matches the assignment.
    #[test]
    fn allocation_sanity(
        rates in prop::collection::vec(0.0f64..2000.0, 2..20),
        active in prop::collection::vec(prop::bool::ANY, 2..20),
        prios in prop::collection::vec(0u8..4, 2..20),
        rbs in 1u16..60,
        eps in 0.0f64..=1.0,
    ) {
        let n = rates.len().min(active.len()).min(prios.len());
        let rates = FlatRates { per_ue: rates[..n].to_vec(), rbs };
        let ues = ues_from(&active[..n], &prios[..n]);
        let mut s = OutRanScheduler::over_pf(n, Dur::from_secs(1), Dur::from_millis(1), eps);
        let alloc = s.allocate(Time::ZERO, &ues, &rates);
        prop_assert_eq!(alloc.rb_to_ue.len(), rbs as usize);
        let mut bits = vec![0.0f64; n];
        for (rb, &assigned) in alloc.rb_to_ue.iter().enumerate() {
            if let Some(u) = assigned {
                let u = u as usize;
                prop_assert!(ues[u].active, "assigned to inactive UE");
                prop_assert!(rates.per_ue[u] > 0.0, "assigned at zero rate");
                bits[u] += rates.per_ue[u];
                let _ = rb;
            }
        }
        for (u, &b) in bits.iter().enumerate() {
            prop_assert!((b - alloc.bits_per_ue[u]).abs() < 1e-6);
        }
    }

    /// Algorithm 1's guarantee: the selected user's metric is within
    /// (1 − ε) of the per-RB maximum over eligible users. With flat
    /// per-UE rates and a fresh PF core the metric ordering equals the
    /// rate ordering, so the property is directly checkable.
    #[test]
    fn epsilon_floor_guarantee(
        rates in prop::collection::vec(1.0f64..2000.0, 2..16),
        prios in prop::collection::vec(0u8..4, 2..16),
        eps in 0.0f64..=1.0,
    ) {
        let n = rates.len().min(prios.len());
        let flat = FlatRates { per_ue: rates[..n].to_vec(), rbs: 8 };
        let active = vec![true; n];
        let ues = ues_from(&active, &prios[..n]);
        let mut s = OutRanScheduler::over_mt(eps);
        let alloc = s.allocate(Time::ZERO, &ues, &flat);
        let m_max = flat.per_ue.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &assigned in &alloc.rb_to_ue {
            let u = assigned.expect("all UEs active with positive rates") as usize;
            prop_assert!(
                flat.per_ue[u] >= (1.0 - eps) * m_max - 1e-9,
                "metric floor violated: rate={} floor={}",
                flat.per_ue[u],
                (1.0 - eps) * m_max
            );
        }
    }

    /// ε = 0 reproduces the legacy PF allocation exactly, TTI after TTI,
    /// with evolving PF state.
    #[test]
    fn epsilon_zero_equals_pf_over_time(
        rates in prop::collection::vec(1.0f64..2000.0, 2..12),
        prios in prop::collection::vec(0u8..4, 2..12),
        steps in 1usize..30,
    ) {
        let n = rates.len().min(prios.len());
        let flat = FlatRates { per_ue: rates[..n].to_vec(), rbs: 10 };
        let active = vec![true; n];
        let ues = ues_from(&active, &prios[..n]);
        let tf = Dur::from_millis(100);
        let tti = Dur::from_millis(1);
        let mut pf = PfScheduler::with_tf(n, tf, tti);
        let mut or = OutRanScheduler::over_pf(n, tf, tti, 0.0);
        for _ in 0..steps {
            let a = pf.allocate(Time::ZERO, &ues, &flat);
            let b = or.allocate(Time::ZERO, &ues, &flat);
            prop_assert_eq!(&a.rb_to_ue, &b.rb_to_ue);
            pf.on_served(&a.bits_per_ue);
            or.on_served(&b.bits_per_ue);
        }
    }
}
