//! Property test: the RLC AM conversation delivers every SDU exactly
//! once, in order, under arbitrary loss patterns and opportunity sizes.

use outran::pdcp::{FiveTuple, Priority};
use outran::rlc::{AmConfig, AmRx, AmTx, RlcSdu};
use outran::simcore::{Dur, Time};
use proptest::prelude::*;

fn sdu(id: u64, len: u32) -> RlcSdu {
    RlcSdu {
        id,
        flow_id: id,
        tuple: FiveTuple::simulated(id, 0),
        len,
        offset: 0,
        priority: Priority((id % 4) as u8),
        arrival: Time::ZERO,
        seq: id * 1_000_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn am_delivers_everything_in_order_under_loss(
        lens in prop::collection::vec(64u32..4000, 1..15),
        budgets in prop::collection::vec(64u64..6000, 4..64),
        // Loss pattern over first transmissions (retx always delivered,
        // so the conversation terminates).
        losses in prop::collection::vec(prop::bool::ANY, 64),
    ) {
        let cfg = AmConfig {
            header_bytes: 0,
            poll_pdu: 2,
            t_status_prohibit: Dur::from_millis(1),
            ..AmConfig::default()
        };
        let mut tx = AmTx::new(cfg);
        let mut rx = AmRx::new(cfg);
        for (i, &len) in lens.iter().enumerate() {
            tx.write_sdu(sdu(i as u64, len)).unwrap();
        }
        let mut delivered: Vec<u64> = Vec::new();
        let mut now = Time::ZERO;
        let mut bi = budgets.iter().cycle();
        let mut li = losses.iter().cycle();
        let mut sent = 0usize;
        let mut idle_rounds = 0;
        while delivered.len() < lens.len() {
            now += Dur::from_millis(1);
            tx.on_tick(now);
            let (pdus, _ctrl, used) = tx.pull(*bi.next().unwrap(), now);
            if used == 0 {
                idle_rounds += 1;
                prop_assert!(idle_rounds < 5000, "AM stalled: {}/{} delivered, in-flight {}",
                    delivered.len(), lens.len(), tx.in_flight());
                continue;
            }
            idle_rounds = 0;
            for pdu in pdus {
                sent += 1;
                let retx = pdu.sn; // keep borrowck simple
                let _ = retx;
                // First transmissions may be lost; retransmissions are
                // recognisable because AmTx counts them.
                let lose = *li.next().unwrap() && !sent.is_multiple_of(3);
                if lose && tx.retx_count == 0 {
                    continue;
                }
                let (sdus, status) = rx.on_pdu(pdu, now);
                for d in sdus {
                    delivered.push(d.sdu_id);
                }
                if let Some(st) = status {
                    tx.on_status(&st);
                }
            }
        }
        // Exactly once, in order (AM delivers in SN order and SDUs were
        // written in id order at equal..mixed priorities — the AM TxQ is
        // MLFQ, so delivery order follows the *transmission* order;
        // verify uniqueness and completeness).
        let mut seen = delivered.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), lens.len(), "duplicates or misses: {:?}", delivered);
    }
}
