#!/bin/bash
# Regenerate every table/figure; tee outputs to results/.
cd /root/repo
for b in table1_qos table2_quic fig2_distributions fig3_motivation fig4_sideeffects \
         fig7_poc fig8_epsilon fig12_plt fig13_overhead fig14_rb_scaling \
         fig15_lte_fct fig16_se_fairness fig17_5g_impact fig18a_tf fig18b_ablation \
         fig18c_am fig18d_reset fig19_colosseum fig20_5g_fct harq_study ablation_design; do
  echo "=== running $b ==="
  ./target/release/$b > results/$b.txt 2> results/$b.log || echo "FAILED: $b"
done
echo ALL_DONE
