//! Unit tests of the single-cell simulator, migrated out of the former
//! `cell.rs` monolith when it was decomposed into the staged pipeline.
//! They exercise the `Cell` orchestrator strictly through its public
//! API.

use outran_ran::cell::GbrBearer;
use outran_ran::{Cell, CellConfig, RlcMode, SchedulerKind};
use outran_simcore::{Dur, Time};

fn small_cfg(kind: SchedulerKind, seed: u64) -> CellConfig {
    let mut cfg = CellConfig::lte_default(4, kind, seed);
    // Keep unit tests fast: modest bandwidth.
    cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    cfg
}

#[test]
fn single_flow_completes() {
    let mut cell = Cell::new(small_cfg(SchedulerKind::Pf, 1));
    cell.schedule_flow(Time::from_millis(10), 0, 50_000, None);
    cell.run_until(Time::from_secs(5));
    let done = cell.take_completions();
    assert_eq!(
        done.len(),
        1,
        "flow must complete (drops={})",
        cell.buffer_drops()
    );
    let d = done[0];
    // Sanity: FCT at least two RTT-ish (CN delay both ways).
    assert_eq!(d.bytes, 50_000);
    assert!(d.fct >= Dur::from_millis(20), "fct={}", d.fct);
    assert!(d.fct <= Dur::from_secs(3), "fct={}", d.fct);
}

#[test]
fn many_flows_all_complete_all_schedulers() {
    for kind in [
        SchedulerKind::Pf,
        SchedulerKind::Mt,
        SchedulerKind::Rr,
        SchedulerKind::Srjf,
        SchedulerKind::Pss,
        SchedulerKind::Cqa,
        SchedulerKind::OutRan,
        SchedulerKind::StrictMlfq,
    ] {
        let mut cell = Cell::new(small_cfg(kind, 2));
        for i in 0..12 {
            let size = if i % 3 == 0 { 200_000 } else { 4_000 };
            cell.schedule_flow(Time::from_millis(5 + i * 40), (i % 4) as usize, size, None);
        }
        cell.run_until(Time::from_secs(12));
        assert_eq!(
            cell.n_completed(),
            12,
            "{}: only {}/{} flows completed",
            kind.name(),
            cell.n_completed(),
            12
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut cell = Cell::new(small_cfg(SchedulerKind::OutRan, 7));
        for i in 0..10 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 30),
                (i % 4) as usize,
                20_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(6));
        cell.take_completions()
    };
    assert_eq!(run(), run());
}

#[test]
fn outran_beats_pf_for_short_behind_long() {
    // One UE downloads a huge file; another UE's short flows must not
    // be starved. Compare mean short FCT OutRAN vs PF on the same
    // seed/arrivals. (Coarse single-seed check; the full comparison
    // lives in the integration tests and benches.)
    let run = |kind| {
        let mut cell = Cell::new(small_cfg(kind, 11));
        // Long flow to UE 0 keeps its buffer hot.
        cell.schedule_flow(Time::from_millis(5), 0, 3_000_000, None);
        // Short flows to the same UE 0, arriving behind the elephant.
        for i in 0..10u64 {
            cell.schedule_flow(Time::from_millis(300 + i * 300), 0, 5_000, None);
        }
        cell.run_until(Time::from_secs(8));
        cell.fct.report().short_mean_ms
    };
    let pf = run(SchedulerKind::Pf);
    let or = run(SchedulerKind::OutRan);
    assert!(
        or < pf,
        "OutRAN short FCT ({or:.1} ms) must beat PF ({pf:.1} ms)"
    );
}

#[test]
fn buffer_overflow_drops_and_recovers() {
    let mut cfg = small_cfg(SchedulerKind::Pf, 3);
    cfg.buffer_sdus = 8; // tiny buffer forces drops
    let mut cell = Cell::new(cfg);
    cell.schedule_flow(Time::from_millis(5), 0, 500_000, None);
    cell.run_until(Time::from_secs(20));
    assert!(cell.buffer_drops() > 0, "tiny buffer must drop");
    assert_eq!(cell.n_completed(), 1, "TCP must recover from drops");
}

#[test]
fn am_mode_completes_flows() {
    let mut cfg = small_cfg(SchedulerKind::OutRan, 4);
    cfg.rlc_mode = RlcMode::Am;
    cfg.residual_loss = 0.01; // exercise NACK recovery
    let mut cell = Cell::new(cfg);
    for i in 0..6 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 50),
            (i % 4) as usize,
            30_000,
            None,
        );
    }
    cell.run_until(Time::from_secs(10));
    assert_eq!(cell.n_completed(), 6);
}

#[test]
fn qos_oracle_feeds_qos_schedulers() {
    let mut cell = Cell::new(small_cfg(SchedulerKind::Cqa, 5));
    cell.schedule_flow(Time::from_millis(5), 0, 5_000, None); // short => QoS
    cell.schedule_flow(Time::from_millis(5), 1, 500_000, None);
    cell.run_until(Time::from_secs(6));
    assert_eq!(cell.n_completed(), 2);
}

#[test]
fn metrics_populated() {
    let mut cell = Cell::new(small_cfg(SchedulerKind::Pf, 6));
    for i in 0..8 {
        cell.schedule_flow(
            Time::from_millis(10 + i * 20),
            (i % 4) as usize,
            50_000,
            None,
        );
    }
    cell.run_until(Time::from_secs(5));
    assert!(cell.metrics.spectral_efficiency() > 0.0);
    assert!(cell.metrics.mean_qdelay_ms() >= 0.0);
    assert!(cell.fct.count() > 0);
    assert!(cell.flow_state_bytes() > 0 || cell.flow_table_entries() == 0);
}

#[test]
fn shared_conn_aggregates_sent_bytes() {
    // Two flows on one QUIC connection: the second one inherits the
    // accumulated sent-bytes (the §4.2 limitation).
    let mut cell = Cell::new(small_cfg(SchedulerKind::OutRan, 8));
    cell.schedule_flow(Time::from_millis(5), 0, 150_000, Some(777));
    cell.schedule_flow(Time::from_millis(1500), 0, 5_000, Some(777));
    cell.run_until(Time::from_secs(8));
    assert_eq!(cell.n_completed(), 2);
    // The flow table saw one tuple with both flows' bytes.
    assert!(
        cell.flow_table_entries() <= 1,
        "entries={}",
        cell.flow_table_entries()
    );
}

#[test]
fn priority_reset_runs() {
    let mut cfg = small_cfg(SchedulerKind::OutRan, 9);
    cfg.outran.reset_period = Some(Dur::from_millis(500));
    let mut cell = Cell::new(cfg);
    cell.schedule_flow(Time::from_millis(5), 0, 100_000, None);
    cell.run_until(Time::from_secs(3));
    assert!(cell.priority_resets().unwrap() >= 4);
}

mod harq {
    use super::*;
    use outran_phy::harq::HarqConfig;

    fn harq_cfg(kind: SchedulerKind, seed: u64) -> CellConfig {
        let mut cfg = CellConfig::lte_default(4, kind, seed);
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        cfg.harq = Some(HarqConfig::default());
        cfg
    }

    #[test]
    fn explicit_harq_completes_flows() {
        // A TB that exhausts its HARQ attempts during a deep fade is a
        // whole-window burst loss for TCP, so some flows legitimately
        // take several RTO backoffs to finish — allow a long horizon.
        let mut cell = Cell::new(harq_cfg(SchedulerKind::OutRan, 31));
        for i in 0..8u64 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 60),
                (i % 4) as usize,
                40_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(40));
        assert_eq!(cell.n_completed(), 8);
        // The explicit path must actually exercise retransmissions.
        assert!(
            cell.harq_retx_served() > 0,
            "no HARQ retransmissions happened"
        );
    }

    #[test]
    fn explicit_harq_am_mode_completes() {
        let mut cfg = harq_cfg(SchedulerKind::Pf, 32);
        cfg.rlc_mode = RlcMode::Am;
        let mut cell = Cell::new(cfg);
        for i in 0..6u64 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 80),
                (i % 4) as usize,
                30_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(12));
        assert_eq!(cell.n_completed(), 6);
    }

    #[test]
    fn explicit_harq_is_deterministic() {
        let run = || {
            let mut cell = Cell::new(harq_cfg(SchedulerKind::OutRan, 33));
            for i in 0..6u64 {
                cell.schedule_flow(
                    Time::from_millis(10 + i * 50),
                    (i % 4) as usize,
                    20_000,
                    None,
                );
            }
            cell.run_until(Time::from_secs(8));
            cell.take_completions()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn harq_drops_surface_as_losses_under_deep_fade() {
        let mut cfg = harq_cfg(SchedulerKind::Pf, 34);
        // Weak combining + single attempt => frequent exhaustion.
        cfg.harq = Some(HarqConfig {
            max_tx: 1,
            combining_gain_db: 0.0,
            ..HarqConfig::default()
        });
        // Cap the SINR so the link sits at mid-CQI with a real error rate.
        cfg.channel.sinr_cap_db = 16.0;
        let mut cell = Cell::new(cfg);
        cell.schedule_flow(Time::from_millis(10), 0, 200_000, None);
        cell.run_until(Time::from_secs(30));
        assert!(
            cell.residual_losses() > 0,
            "max_tx=1 must surface losses to TCP"
        );
        // A ~30 % TB-loss link drives real TCP into deep RTO backoff;
        // completion is not guaranteed, but data must keep flowing and
        // the simulator must stay sane.
        assert!(
            cell.metrics.total_bits() > 100_000.0,
            "link must still deliver data"
        );
    }
}

mod gbr {
    use super::*;

    fn cell_with_volte(kind: SchedulerKind, seed: u64) -> Cell {
        let mut cfg = CellConfig::lte_default(4, kind, seed);
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        let mut cell = Cell::new(cfg);
        cell.add_gbr_bearer(GbrBearer::volte(0));
        cell
    }

    #[test]
    fn volte_latency_is_bounded_under_load() {
        // Table 1's point: the Conversational class rides a dedicated
        // GBR bearer and is isolated from best-effort congestion.
        for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
            let mut cell = cell_with_volte(kind, 41);
            // Heavy best-effort elephants on every UE.
            for i in 0..8u64 {
                cell.schedule_flow(
                    Time::from_millis(5 + i * 20),
                    (i % 4) as usize,
                    1_000_000,
                    None,
                );
            }
            cell.run_until(Time::from_secs(10));
            let n = cell.gbr_latency.count();
            assert!(n > 400, "{}: VoLTE packets delivered = {n}", kind.name());
            let p99 = cell.gbr_latency.percentile(99.0);
            assert!(
                p99 <= 25.0,
                "{}: VoLTE p99 latency {p99} ms must stay near one packet interval",
                kind.name()
            );
        }
    }

    #[test]
    fn gbr_consumes_little_capacity() {
        // 14 kbps of VoLTE must not dent best-effort throughput.
        let tput = |with_gbr: bool| {
            let mut cfg = CellConfig::lte_default(2, SchedulerKind::Pf, 42);
            cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
            cfg.channel.n_subbands = 4;
            let mut cell = Cell::new(cfg);
            if with_gbr {
                cell.add_gbr_bearer(GbrBearer::volte(0));
            }
            cell.schedule_flow(Time::from_millis(5), 1, 4_000_000, None);
            cell.run_until(Time::from_secs(6));
            cell.metrics.total_bits()
        };
        let without = tput(false);
        let with = tput(true);
        assert!(
            with > without * 0.93,
            "GBR carve-out too costly: {with:.0} vs {without:.0}"
        );
    }

    #[test]
    fn gbr_delivery_is_deterministic() {
        let run = || {
            let mut cell = cell_with_volte(SchedulerKind::OutRan, 43);
            cell.schedule_flow(Time::from_millis(5), 1, 200_000, None);
            cell.run_until(Time::from_secs(4));
            (cell.gbr_latency.count(), cell.n_completed())
        };
        assert_eq!(run(), run());
    }
}
