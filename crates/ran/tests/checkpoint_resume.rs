//! Kill-mid-run + resume proof: a checkpoint taken at an arbitrary
//! mid-run TTI under an **active chaos fault plan**, restored into a
//! freshly built cell, must yield bit-identical final state (snapshot
//! digest) and an identical experiment report — in both stepping modes.
//!
//! This is the golden-digest guarantee the checkpoint layer promises:
//! crash + resume is indistinguishable from never having crashed.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use outran_faults::FaultPlan;
use outran_ran::cell::{Cell, SchedulerKind};
use outran_ran::checkpoint::{
    read_checkpoint, restore_cell, snapshot_cell, write_checkpoint, CheckpointMeta,
};
use outran_ran::Experiment;
use outran_simcore::{Dur, Time};

const SECS: u64 = 4;
const SEED: u64 = 0xD1CE;

/// A chaos-active experiment, identical every call (one root seed).
fn experiment(dense: bool) -> Experiment {
    Experiment::lte_default()
        .scheduler(SchedulerKind::OutRan)
        .users(4)
        .load(0.5)
        .duration_secs(SECS)
        .seed(SEED)
        .dense_stepping(dense)
        .faults(FaultPlan::chaos(SEED, Dur::from_secs(SECS), 4, 0.6))
        .watchdog(Some(Dur::from_millis(750)))
}

fn advance(cell: &mut Cell, dense: bool, to: Time) {
    if dense {
        cell.run_until_dense(to);
    } else {
        cell.run_until(to);
    }
}

/// Run `cell` through the drain window and fingerprint its final state.
fn final_digest(mut cell: Cell, dense: bool) -> (u64, usize) {
    // duration + drain, the same horizon `Experiment::run_cell` walks.
    advance(&mut cell, dense, Time::from_secs(SECS + 4));
    let meta = CheckpointMeta {
        argv: vec!["digest".into()],
        sim_time: cell.now(),
        dense,
        n_cells: 1,
    };
    (snapshot_cell(&meta, &cell).digest(), cell.n_completed())
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("outran-resume-{tag}-{}", std::process::id()))
}

fn kill_and_resume_case(dense: bool, ckpt_at: Time) {
    // Uninterrupted reference run.
    let (want_digest, want_done) = final_digest(experiment(dense).build_cell(), dense);

    // "Crashing" run: advance to an arbitrary mid-run instant with
    // faults landing, persist a checkpoint, drop everything.
    let dir = tmp_dir(if dense { "dense" } else { "event" });
    let path = dir.join("mid.orsn");
    let taken_at;
    {
        let mut cell = experiment(dense).build_cell();
        advance(&mut cell, dense, ckpt_at);
        taken_at = cell.now();
        let meta = CheckpointMeta {
            argv: vec!["test".into()],
            sim_time: taken_at,
            dense,
            n_cells: 1,
        };
        write_checkpoint(&path, &meta, &[&cell]).unwrap();
    }

    // "Restart": fresh cell from the same configuration, overlay the
    // checkpointed dynamic state, run out the horizon.
    let (meta, file) = read_checkpoint(&path).unwrap();
    assert_eq!(meta.sim_time, taken_at);
    assert_eq!(meta.dense, dense);
    let mut cell = experiment(dense).build_cell();
    restore_cell(&file, 0, &mut cell).unwrap();
    assert_eq!(cell.now(), taken_at);
    let (got_digest, got_done) = final_digest(cell, dense);

    assert_eq!(
        got_digest, want_digest,
        "resumed run diverged from uninterrupted (dense={dense})"
    );
    assert_eq!(got_done, want_done);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_run_and_resume_is_bit_identical_event_driven() {
    kill_and_resume_case(false, Time::from_millis(1700));
}

#[test]
fn kill_mid_run_and_resume_is_bit_identical_dense() {
    kill_and_resume_case(true, Time::from_millis(2300));
}

/// The chunked checkpoint loop inside `Experiment::run_cell` must not
/// perturb results, and resuming from one of its periodic snapshots
/// must reproduce the uninterrupted report byte-for-byte.
#[test]
fn checkpointed_run_report_matches_plain_run() {
    for dense in [false, true] {
        let want = experiment(dense).run();

        let dir = tmp_dir(if dense { "rep-dense" } else { "rep-event" });
        let got = experiment(dense)
            .checkpoint_every(
                Dur::from_secs(1),
                dir.clone(),
                vec!["outran-sim".into(), "run".into()],
            )
            .run();
        assert_eq!(
            format!("{want:?}"),
            format!("{got:?}"),
            "periodic checkpointing changed the report (dense={dense})"
        );

        // Resume from the 2 s snapshot and run to completion.
        let ckpt = dir.join("ckpt-2s.orsn");
        let (_meta, file) = read_checkpoint(&ckpt).expect("periodic checkpoint written");
        let e = experiment(dense);
        let mut cell = e.build_cell();
        restore_cell(&file, 0, &mut cell).unwrap();
        let resumed = e.run_cell(cell);
        assert_eq!(
            format!("{want:?}"),
            format!("{resumed:?}"),
            "resume from periodic checkpoint diverged (dense={dense})"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
