//! The event-driven idle-skip stepper must be an *exact* replacement
//! for dense per-TTI stepping: same FCT distributions, same completion
//! records, same RNG draw sequence — only wall clock may differ. These
//! tests pin that equivalence (including under a chaos fault plan and
//! in AM mode with GBR bearers), the soundness of the activity
//! predicate, and the headline speedup on the idle-heavy workload.

use std::time::Instant;

use outran_faults::FaultPlan;
use outran_ran::cell::{Cell, CellConfig, GbrBearer, SchedulerKind};
use outran_ran::webplt::idle_heavy_arrivals;
use outran_ran::{Experiment, RlcMode};
use outran_simcore::{Dur, Time};
use proptest::prelude::*;

fn small_cfg(kind: SchedulerKind, seed: u64, n_ues: usize) -> CellConfig {
    let mut cfg = CellConfig::lte_default(n_ues, kind, seed);
    cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    cfg
}

fn idle_heavy_cell(seed: u64) -> Cell {
    let mut cell = Cell::new(small_cfg(SchedulerKind::OutRan, seed, 2));
    // Five page loads spread over 25 simulated minutes: the active
    // bursts are a fraction of a percent of the TTIs, which is the
    // regime the tentpole targets (and what an idle overnight soak or a
    // think-time-dominated browsing session look like).
    let horizon = Time::from_secs(1500);
    for (at, ue, bytes) in idle_heavy_arrivals(horizon, Dur::from_secs(300), 2, seed) {
        cell.schedule_flow(at, ue, bytes, None);
    }
    cell
}

/// The acceptance bar: on the idle-heavy browsing workload the
/// event-driven loop produces a bit-identical `FctReport` (and
/// completion log, and metrics) at ≥ 3× the end-to-end speed of dense
/// stepping.
#[test]
fn event_driven_is_bit_identical_and_3x_faster_on_idle_heavy() {
    let end = Time::from_secs(1504);

    let mut dense = idle_heavy_cell(7);
    let t0 = Instant::now();
    dense.run_until_dense(end);
    let dense_wall = t0.elapsed();

    let mut event = idle_heavy_cell(7);
    let t0 = Instant::now();
    event.run_until(end);
    let event_wall = t0.elapsed();

    // Exact equivalence, not statistical closeness.
    let dc = dense.take_completions();
    let ec = event.take_completions();
    assert!(dc.len() > 50, "workload too thin: {} completions", dc.len());
    assert_eq!(dc, ec, "completion records diverged");
    // Debug-string equality: bit-identical including NaN buckets (an
    // empty size class reports NaN, and NaN != NaN under PartialEq).
    assert_eq!(
        format!("{:?}", dense.fct.report()),
        format!("{:?}", event.fct.report()),
        "FCT report diverged"
    );
    assert_eq!(
        dense.metrics.total_bits(),
        event.metrics.total_bits(),
        "delivered bits diverged"
    );
    assert_eq!(
        dense.metrics.spectral_efficiency(),
        event.metrics.spectral_efficiency()
    );
    assert_eq!(
        dense.now(),
        event.now(),
        "modes must end on the same grid point"
    );
    assert_eq!(dense.idle_ttis, event.idle_ttis, "idle accounting diverged");
    assert_eq!(dense.skipped_ttis, 0, "dense stepping never skips");
    assert!(
        event.skipped_ttis as f64 > 0.9 * event.idle_ttis as f64,
        "event-driven run skipped only {} of {} idle TTIs",
        event.skipped_ttis,
        event.idle_ttis
    );

    let speedup = dense_wall.as_secs_f64() / event_wall.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 3.0,
        "event-driven speedup {speedup:.2}x < 3x (dense {dense_wall:?}, event {event_wall:?}, \
         skipped {}/{} idle TTIs)",
        event.skipped_ttis,
        event.idle_ttis
    );
}

/// Dense and event-driven stepping replay a seeded chaos fault plan to
/// byte-identical experiment reports (fault windows bound every skip,
/// so transitions land on exactly the same TTIs).
#[test]
fn dense_and_event_driven_replay_chaos_identically() {
    for seed in [3u64, 9] {
        let base = Experiment::lte_default()
            .users(6)
            .load(0.4)
            .duration_secs(3)
            .scheduler(SchedulerKind::OutRan)
            .faults(FaultPlan::chaos(seed, Dur::from_secs(3), 6, 0.6))
            .watchdog(Some(Dur::from_millis(750)))
            .seed(seed);
        let event = base.clone().run();
        let dense = base.dense_stepping(true).run();
        assert_eq!(
            format!("{event:?}"),
            format!("{dense:?}"),
            "seed {seed}: chaos replay diverged between stepping modes"
        );
    }
}

/// AM mode exercises the poll-retransmit timer (the reason a
/// non-quiescent AM entity pins dense ticks); GBR bearers generate work
/// out of quiet forever. Both must agree across stepping modes.
#[test]
fn dense_and_event_driven_agree_in_am_mode_with_gbr() {
    let build = || {
        let mut cfg = small_cfg(SchedulerKind::OutRan, 11, 4);
        cfg.rlc_mode = RlcMode::Am;
        let mut cell = Cell::new(cfg);
        cell.add_gbr_bearer(GbrBearer::volte(0));
        // Sparse flows with multi-second gaps: plenty of idle to skip.
        cell.schedule_flow(Time::from_millis(100), 1, 80_000, None);
        cell.schedule_flow(Time::from_secs(3), 2, 12_000, None);
        cell.schedule_flow(Time::from_secs(6), 3, 150_000, None);
        cell
    };
    let end = Time::from_secs(8);

    let mut dense = build();
    dense.run_until_dense(end);
    let mut event = build();
    event.run_until(end);

    assert_eq!(dense.take_completions(), event.take_completions());
    assert_eq!(
        format!("{:?}", dense.fct.report()),
        format!("{:?}", event.fct.report())
    );
    assert_eq!(dense.metrics.total_bits(), event.metrics.total_bits());
    assert_eq!(
        format!("{:?}", dense.gbr_latency),
        format!("{:?}", event.gbr_latency),
        "GBR delivery latencies diverged"
    );
    assert_eq!(dense.idle_ttis, event.idle_ttis);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Skip-soundness: `next_activity_time()` is never later than the
    /// first TTI at which dense stepping actually does work. Runs the
    /// dense loop and checks the predicate before every step; any
    /// active step earlier than the predicted activity instant is a
    /// bug that would make the event-driven loop skip real work.
    #[test]
    fn next_activity_time_is_never_late(
        seed in 0u64..512,
        flows in prop::collection::vec((5u64..3000, 1_000u64..200_000), 1..8),
        with_faults in prop::bool::ANY,
    ) {
        let mut cfg = CellConfig::lte_default(3, SchedulerKind::Pf, seed);
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(15);
        cfg.channel.n_subbands = 4;
        let mut t_ms = 0u64;
        let horizon = {
            let total: u64 = flows.iter().map(|&(gap, _)| gap).sum();
            Dur::from_millis(total + 2_000)
        };
        if with_faults {
            cfg.faults = FaultPlan::chaos(seed, horizon, 3, 0.5);
        }
        let mut cell = Cell::new(cfg);
        for &(gap, bytes) in &flows {
            t_ms += gap;
            cell.schedule_flow(Time::from_millis(t_ms), (t_ms % 3) as usize, bytes, None);
        }
        let end = Time::ZERO + horizon;
        while cell.now() < end {
            let na = cell.next_activity_time();
            let idle_before = cell.idle_ttis;
            cell.step();
            if cell.idle_ttis == idle_before {
                // This step did work: it must not predate the predicted
                // next activity.
                prop_assert!(
                    na <= cell.now(),
                    "dense stepping worked at {:?} but next_activity_time said {:?}",
                    cell.now(),
                    na
                );
            }
        }
    }
}
