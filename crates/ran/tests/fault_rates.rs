//! Fault-driven detach/re-attach through the MAC rate matrix and metric
//! cache.
//!
//! [`MacSchedStage::refresh_rates`] encodes link state in the rate-row
//! version tag (`report_version * 2 + !link_up`): a downed UE's row is
//! zeroed under an odd tag, and re-attach restores the reported rates
//! under the even tag — even when no new CQI report was delivered in
//! between. The `outran_mac` metric cache keys its rows on exactly that
//! tag, so these tests pin the full invalidation cascade: fault window
//! edge → version parity flip → row recompute, with every other UE's
//! cached row untouched.

#![forbid(unsafe_code)]

use outran_faults::FaultPlan;
use outran_mac::SubbandMetricCache;
use outran_phy::channel::CellChannel;
use outran_ran::stages::MacSchedStage;
use outran_ran::{CellConfig, SchedulerKind};
use outran_simcore::{Dur, Rng, Time};

const UES: usize = 4;

/// A cell config + channel warmed long enough that every UE has
/// delivered at least one CQI report (period 5, delay 2 TTIs).
fn warmed() -> (CellConfig, CellChannel, Time) {
    let cfg = CellConfig::lte_default(UES, SchedulerKind::Pf, 7);
    let mut ch = CellChannel::new(cfg.channel, UES, &Rng::new(7));
    let tti = cfg.channel.radio.tti();
    let mut now = Time::ZERO;
    for _ in 0..50 {
        now += tti;
        ch.advance_tti(now);
    }
    (cfg, ch, now)
}

#[test]
fn detach_zeroes_row_and_reattach_restores_it() {
    let (cfg, ch, now) = warmed();
    let mut mac = MacSchedStage::new(&cfg, cfg.channel.radio.tti());
    let down_at = now + Dur::from_millis(10);
    let up_at = down_at + Dur::from_millis(20);
    let plan = FaultPlan::new().detach(down_at, up_at, 2);
    let n_sb = cfg.channel.n_subbands;

    // Healthy: the row matches the channel's reported rates, under the
    // even (link-up) tag derived from the report version.
    mac.refresh_rates(&cfg, &ch, &plan.active_at(now));
    let mut want = vec![0.0; n_sb];
    ch.fill_reported_rates(2, &mut want);
    assert!(want.iter().any(|&r| r > 0.0), "warmed UE must have rates");
    assert_eq!(mac.rates().per_ue_sb[2 * n_sb..3 * n_sb], want[..]);
    let v_live = mac.rates().versions[2];
    assert_eq!(v_live, ch.report_version(2) * 2);

    // Detach window: row zeroed, tag odd — it can never alias a live
    // tag, so the scheduler-side cache is forced to recompute.
    mac.refresh_rates(&cfg, &ch, &plan.active_at(down_at));
    assert!(mac.rates().per_ue_sb[2 * n_sb..3 * n_sb]
        .iter()
        .all(|&r| r == 0.0));
    assert_eq!(mac.rates().versions[2] % 2, 1);
    // The other UEs' rows keep their live tags.
    for u in [0usize, 1, 3] {
        assert_eq!(mac.rates().versions[u], ch.report_version(u) * 2);
    }

    // Re-attach with no new report delivered: the row must refill from
    // the channel even though the report version never moved (the
    // parity flip alone is the invalidation edge).
    mac.refresh_rates(&cfg, &ch, &plan.active_at(up_at));
    assert_eq!(mac.rates().per_ue_sb[2 * n_sb..3 * n_sb], want[..]);
    assert_eq!(mac.rates().versions[2], v_live);
}

#[test]
fn metric_cache_tracks_fault_driven_versions() {
    let (cfg, ch, now) = warmed();
    let mut mac = MacSchedStage::new(&cfg, cfg.channel.radio.tti());
    let down_at = now + Dur::from_millis(10);
    let up_at = down_at + Dur::from_millis(20);
    let plan = FaultPlan::new().detach(down_at, up_at, 1);
    let n_sb = cfg.channel.n_subbands;

    // MT-style metric (metric == rate): any metric works, the cascade
    // under test is version-driven, not metric-driven.
    let metric = |_u: usize, r: f64| r;
    let mut cache = SubbandMetricCache::new();

    mac.refresh_rates(&cfg, &ch, &plan.active_at(now));
    cache.refresh(mac.rates(), |_| 0, metric);
    let live: Vec<u64> = (0..n_sb).map(|sb| cache.metric(1, sb).to_bits()).collect();
    assert!(
        (0..n_sb).any(|sb| cache.metric(1, sb) > 0.0),
        "warmed UE must be eligible somewhere"
    );
    let misses0 = cache.misses;
    assert_eq!(misses0, UES as u64);

    // Detach: the UE's cached row collapses to -inf (ineligible in any
    // argmax/ε-band); everyone else is a version hit.
    mac.refresh_rates(&cfg, &ch, &plan.active_at(down_at));
    cache.refresh(mac.rates(), |_| 0, metric);
    for sb in 0..n_sb {
        assert_eq!(cache.metric(1, sb), f64::NEG_INFINITY, "sb {sb}");
    }
    assert_eq!(cache.misses, misses0 + 1);
    assert_eq!(cache.hits, (UES - 1) as u64);

    // Re-attach without a fresh report: bit-identical metrics return,
    // again at the cost of exactly one recomputed row.
    mac.refresh_rates(&cfg, &ch, &plan.active_at(up_at));
    cache.refresh(mac.rates(), |_| 0, metric);
    let back: Vec<u64> = (0..n_sb).map(|sb| cache.metric(1, sb).to_bits()).collect();
    assert_eq!(live, back);
    assert_eq!(cache.misses, misses0 + 2);
    assert_eq!(cache.hits, 2 * (UES - 1) as u64);
}
