//! The parallel sweep engine must be a drop-in for the serial loop:
//! fanning independent experiments across worker threads changes wall
//! clock only, never a single byte of any report — including chaos runs
//! that replay a seeded fault plan.

use outran_faults::FaultPlan;
use outran_phy::Scenario;
use outran_ran::multicell::MultiCell;
use outran_ran::{parallel_map, Experiment, ExperimentReport, SchedulerKind, WorkerFailure};
use outran_simcore::{Dur, Time};

/// Unwrap every supervised job result — these sweeps are expected to
/// succeed; a `WorkerFailure` here is a real test failure.
fn all_ok(results: Vec<Result<ExperimentReport, WorkerFailure>>) -> Vec<ExperimentReport> {
    results
        .into_iter()
        .map(|r| r.expect("sweep job failed"))
        .collect()
}

const SECS: u64 = 3;

fn standard(seed: u64) -> Experiment {
    Experiment::lte_default()
        .users(6)
        .load(0.5)
        .duration_secs(SECS)
        .scheduler(SchedulerKind::OutRan)
        .seed(seed)
}

fn chaos(seed: u64) -> Experiment {
    standard(seed)
        .faults(FaultPlan::chaos(seed, Dur::from_secs(SECS), 6, 0.6))
        .watchdog(Some(Dur::from_millis(750)))
}

/// Debug output covers every public field of the report (FCT tables,
/// CDFs, per-flow records, fault counters, violations), so equal debug
/// strings mean byte-identical results.
fn fingerprints(reports: &[ExperimentReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn parallel_standard_sweep_is_bit_identical_to_serial() {
    let seeds = [11u64, 23, 47, 101, 202, 303];
    let serial: Vec<ExperimentReport> = seeds.iter().map(|&s| standard(s).run()).collect();
    let parallel = all_ok(parallel_map(4, seeds.to_vec(), |s| standard(s).run()));
    assert_eq!(fingerprints(&serial), fingerprints(&parallel));
}

#[test]
fn parallel_chaos_sweep_replays_fault_plans_identically() {
    let seeds = [7u64, 13, 29, 31];
    let serial: Vec<ExperimentReport> = seeds.iter().map(|&s| chaos(s).run()).collect();
    let parallel = all_ok(parallel_map(4, seeds.to_vec(), |s| chaos(s).run()));
    let (sf, pf) = (fingerprints(&serial), fingerprints(&parallel));
    assert_eq!(sf, pf);
    // The chaos plans actually did something (otherwise this test would
    // only cover the fault-free path).
    assert!(
        serial.iter().any(|r| r.fault_stats.total_events() > 0),
        "chaos plans injected no faults — weaken nothing, fix the plan"
    );
}

/// Intra-run multi-cell parallelism: sharding the cells of one
/// `MultiCell` run across 4 workers (with the per-epoch barrier) must
/// merge to the same report as the serial loop, byte for byte.
#[test]
fn multicell_parallel_shards_match_serial() {
    let mut serial = MultiCell::colosseum(Scenario::ColosseumRome, SchedulerKind::OutRan, 0.4);
    serial.duration = Time::from_secs(3);
    let mut parallel = serial.clone();
    parallel.threads = 4;
    let rs = serial.run();
    let rp = parallel.run();
    assert_eq!(
        format!("{rs:?}"),
        format!("{rp:?}"),
        "sharded multi-cell run diverged from serial"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    let seeds = [5u64, 6, 7, 8, 9];
    let one = all_ok(parallel_map(1, seeds.to_vec(), |s| standard(s).run()));
    let many = all_ok(parallel_map(8, seeds.to_vec(), |s| standard(s).run()));
    assert_eq!(fingerprints(&one), fingerprints(&many));
}
