//! Golden-trace lockstep harness for the staged per-TTI pipeline.
//!
//! A [`StageObserver`] digests every active TTI's scheduling outcome
//! (per-TTI granted RBs + cumulative delivered bytes + completions)
//! into one FNV-1a fingerprint per scenario. The fixture
//! `tests/fixtures/golden_trace.txt` was recorded against the
//! pre-refactor monolithic `Cell` (PR 5); the staged pipeline must
//! reproduce every fingerprint bit-for-bit, for all four paper
//! schedulers, UM and AM, with and without a chaos fault plan.
//!
//! Re-record (only when a deliberate behavior change is made) with:
//! `OUTRAN_RECORD_GOLDEN=1 cargo test -p outran-ran --test golden_trace -- --ignored`

use std::path::Path;
use std::sync::{Arc, Mutex};

use outran_faults::FaultPlan;
use outran_ran::cell::{Cell, CellConfig, RlcMode, SchedulerKind};
use outran_ran::stages::{StageObserver, TtiSummary};
use outran_simcore::{Dur, Time};
use proptest::prelude::*;

/// FNV-1a 64-bit fold.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Observer that digests each active TTI's summary.
struct TraceDigest {
    acc: Arc<Mutex<Fnv>>,
}

impl StageObserver for TraceDigest {
    fn on_tti(&mut self, now: Time, s: &TtiSummary) {
        let mut acc = self.acc.lock().unwrap();
        acc.u64(now.0);
        acc.u64(s.used_rbs as u64);
        acc.u64(s.total_rbs as u64);
        acc.u64(s.delivered_bytes);
        acc.u64(s.completed_flows);
    }
}

const SECS: u64 = 6;
const SEED: u64 = 0xD1CE;

fn scenario_cfg(kind: SchedulerKind, mode: RlcMode, chaos: bool) -> CellConfig {
    let mut cfg = CellConfig::lte_default(4, kind, SEED);
    cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    cfg.rlc_mode = mode;
    if chaos {
        cfg.faults = FaultPlan::chaos(SEED, Dur::from_secs(SECS), 4, 0.6);
        cfg.watchdog = Some(Dur::from_millis(750));
    }
    cfg
}

fn populate(cell: &mut Cell) {
    for i in 0..10u64 {
        let size = match i % 3 {
            0 => 400_000,
            1 => 30_000,
            _ => 5_000,
        };
        cell.schedule_flow(
            Time::from_millis(10 + i * 250),
            (i % 4) as usize,
            size,
            None,
        );
    }
}

/// Run one scenario event-driven and return its trace fingerprint.
fn run_digest(kind: SchedulerKind, mode: RlcMode, chaos: bool, dense: bool) -> u64 {
    let acc = Arc::new(Mutex::new(Fnv::new()));
    let mut cell = Cell::new(scenario_cfg(kind, mode, chaos));
    cell.set_stage_observer(Box::new(TraceDigest { acc: acc.clone() }));
    populate(&mut cell);
    let end = Time::from_secs(SECS);
    if dense {
        cell.run_until_dense(end);
    } else {
        cell.run_until(end);
    }
    let mut acc = *acc.lock().unwrap();
    // Fold the completion records and end-of-run counters on top of the
    // per-TTI stream so the fingerprint also pins final state.
    for d in cell.take_completions() {
        acc.u64(d.id as u64);
        acc.u64(d.ue as u64);
        acc.u64(d.bytes);
        acc.u64(d.spawn.0);
        acc.u64(d.fct.as_nanos());
    }
    acc.u64(cell.fct.count() as u64);
    acc.u64(cell.metrics.total_bits().to_bits());
    acc.u64(cell.idle_ttis);
    acc.0
}

const SCHEDULERS: [(SchedulerKind, &str); 4] = [
    (SchedulerKind::Pf, "pf"),
    (SchedulerKind::Mt, "mt"),
    (SchedulerKind::Srjf, "srjf"),
    (SchedulerKind::OutRan, "outran"),
];

fn cases() -> Vec<(String, SchedulerKind, RlcMode, bool)> {
    let mut out = Vec::new();
    for (kind, kname) in SCHEDULERS {
        for (mode, mname) in [(RlcMode::Um, "um"), (RlcMode::Am, "am")] {
            for (chaos, cname) in [(false, "clean"), (true, "chaos")] {
                out.push((format!("{kname}_{mname}_{cname}"), kind, mode, chaos));
            }
        }
    }
    out
}

fn fixture_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_trace.txt")
}

/// Re-record the fixture (ignored; see module docs).
#[test]
#[ignore = "fixture recorder — run explicitly with OUTRAN_RECORD_GOLDEN=1"]
fn record_golden_trace() {
    if std::env::var("OUTRAN_RECORD_GOLDEN").is_err() {
        eprintln!("set OUTRAN_RECORD_GOLDEN=1 to re-record");
        return;
    }
    let mut out = String::new();
    for (name, kind, mode, chaos) in cases() {
        let digest = run_digest(kind, mode, chaos, false);
        out.push_str(&format!("{name} {digest:016x}\n"));
    }
    std::fs::write(fixture_path(), out).expect("write fixture");
}

/// The staged pipeline must match the pre-refactor monolith's recorded
/// trace exactly: same RB grants on the same TTIs, same delivered-byte
/// progression, same completions — for every scheduler × RLC mode ×
/// fault combination.
#[test]
fn pipeline_matches_recorded_golden_trace() {
    let fixture = std::fs::read_to_string(fixture_path()).expect("fixture present");
    let mut recorded = std::collections::HashMap::new();
    for line in fixture.lines() {
        let (name, hex) = line.split_once(' ').expect("fixture line format");
        recorded.insert(
            name.to_string(),
            u64::from_str_radix(hex, 16).expect("fixture digest"),
        );
    }
    let all = cases();
    assert_eq!(recorded.len(), all.len(), "fixture case count");
    for (name, kind, mode, chaos) in all {
        let want = recorded[&name];
        let got = run_digest(kind, mode, chaos, false);
        assert_eq!(
            got, want,
            "{name}: staged pipeline diverged from the pre-refactor golden trace"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The per-TTI trace fingerprint is stepping-mode invariant: dense
    /// and event-driven runs emit identical `on_tti` streams (idle TTIs
    /// produce none in either mode).
    #[test]
    fn trace_digest_is_stepping_mode_invariant(
        idx in 0usize..4,
        am in prop::bool::ANY,
        chaos in prop::bool::ANY,
    ) {
        let kind = SCHEDULERS[idx].0;
        let mode = if am { RlcMode::Am } else { RlcMode::Um };
        let dense = run_digest(kind, mode, chaos, true);
        let event = run_digest(kind, mode, chaos, false);
        prop_assert_eq!(dense, event);
    }
}
