//! High-level experiment builder and report.
//!
//! Wraps [`crate::cell::Cell`] in the evaluation's standard pattern:
//! Poisson flow arrivals at a target cell load over a chosen scenario,
//! run for a horizon, report FCT buckets + spectral efficiency +
//! fairness. Every figure's bench binary is a thin loop over this type.

use std::path::PathBuf;

use outran_core::OutRanConfig;
use outran_faults::{FaultPlan, FaultStats, Violation};
use outran_phy::Scenario;
use outran_simcore::{Dur, Rng, Time};
use outran_transport::TcpConfig;
use outran_workload::{FlowSizeDist, PoissonFlowGen};

use crate::cell::{Cell, CellConfig, RlcMode, SchedulerKind};
use crate::checkpoint::{write_checkpoint, CheckpointMeta};

/// Builder for a standard Poisson-load cell experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    scenario: Scenario,
    scheduler: SchedulerKind,
    n_ues: usize,
    load: f64,
    dist: FlowSizeDist,
    duration: Time,
    warmup: Dur,
    seed: u64,
    tf: Dur,
    rlc_mode: RlcMode,
    buffer_sdus: usize,
    cn_delay: Dur,
    outran: OutRanConfig,
    tcp: TcpConfig,
    residual_loss: f64,
    srjf_mode: outran_mac::srjf::SrjfMode,
    harq: Option<outran_phy::harq::HarqConfig>,
    faults: FaultPlan,
    watchdog: Option<Dur>,
    max_flow_entries: Option<usize>,
    dense: bool,
    /// Periodic checkpointing: every `0` of simulated time, write a
    /// crash-safe snapshot into `1` (see [`crate::checkpoint`]).
    checkpoint: Option<(Dur, PathBuf)>,
    /// Original argv embedded in checkpoint metadata so `resume` can
    /// rebuild the identical experiment.
    checkpoint_argv: Vec<String>,
}

impl Experiment {
    /// The paper's main LTE setting: pedestrian cell, LTE cellular flow
    /// sizes, PF unless overridden.
    pub fn lte_default() -> Experiment {
        Experiment {
            scenario: Scenario::LtePedestrian,
            scheduler: SchedulerKind::Pf,
            n_ues: 20,
            load: 0.6,
            dist: FlowSizeDist::LteCellular,
            duration: Time::from_secs(10),
            warmup: Dur::from_secs(1),
            seed: 1,
            tf: Dur::from_millis(1000),
            rlc_mode: RlcMode::Um,
            buffer_sdus: 128,
            cn_delay: Dur::from_millis(10),
            outran: OutRanConfig::default(),
            tcp: TcpConfig::default(),
            residual_loss: 0.002,
            srjf_mode: outran_mac::srjf::SrjfMode::Waterfall,
            harq: None,
            faults: FaultPlan::new(),
            watchdog: None,
            max_flow_entries: None,
            dense: false,
            checkpoint: None,
            checkpoint_argv: Vec::new(),
        }
    }

    /// The 5G setting of §6.2 (NR urban, MIRAGE sizes).
    pub fn nr_default(mu: u8) -> Experiment {
        Experiment {
            scenario: Scenario::NrUrban(mu),
            dist: FlowSizeDist::MirageMobileApp,
            n_ues: 40,
            ..Experiment::lte_default()
        }
    }

    /// Select the scenario preset.
    pub fn scenario(mut self, s: Scenario) -> Self {
        self.scenario = s;
        self
    }

    /// Select the MAC scheduler.
    pub fn scheduler(mut self, k: SchedulerKind) -> Self {
        self.scheduler = k;
        self
    }

    /// Number of UEs.
    pub fn users(mut self, n: usize) -> Self {
        self.n_ues = n;
        self
    }

    /// Target cell load (offered bits / capacity).
    pub fn load(mut self, l: f64) -> Self {
        self.load = l;
        self
    }

    /// Flow-size distribution.
    pub fn dist(mut self, d: FlowSizeDist) -> Self {
        self.dist = d;
        self
    }

    /// Simulated horizon in seconds.
    pub fn duration_secs(mut self, s: u64) -> Self {
        self.duration = Time::from_secs(s);
        self
    }

    /// Root seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// PF fairness window T_f.
    pub fn fairness_window(mut self, tf: Dur) -> Self {
        self.tf = tf;
        self
    }

    /// RLC mode (UM default).
    pub fn rlc_mode(mut self, m: RlcMode) -> Self {
        self.rlc_mode = m;
        self
    }

    /// RLC buffer capacity in SDUs (Fig 3b sweeps ×1 / ×5).
    pub fn buffer_sdus(mut self, n: usize) -> Self {
        self.buffer_sdus = n;
        self
    }

    /// One-way CN propagation delay (Fig 17: 20 ms remote, 5 ms MEC).
    pub fn cn_delay(mut self, d: Dur) -> Self {
        self.cn_delay = d;
        self
    }

    /// OutRAN policy configuration.
    pub fn outran(mut self, c: OutRanConfig) -> Self {
        self.outran = c;
        self
    }

    /// Post-HARQ residual segment-loss probability (fault injection).
    pub fn residual_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.residual_loss = p;
        self
    }

    /// SRJF leftover-capacity policy (see [`outran_mac::srjf::SrjfMode`]).
    pub fn srjf_mode(mut self, m: outran_mac::srjf::SrjfMode) -> Self {
        self.srjf_mode = m;
        self
    }

    /// Explicit HARQ retransmission modelling (`None` = folded model).
    pub fn harq(mut self, h: Option<outran_phy::harq::HarqConfig>) -> Self {
        self.harq = h;
        self
    }

    /// Scripted fault plan consulted each TTI (chaos runs).
    pub fn faults(mut self, p: FaultPlan) -> Self {
        self.faults = p;
        self
    }

    /// Stalled-flow watchdog: force a retransmission after this long
    /// without cumulative-ACK progress.
    pub fn watchdog(mut self, stall: Option<Dur>) -> Self {
        self.watchdog = stall;
        self
    }

    /// Force dense per-TTI stepping instead of the event-driven
    /// idle-skip loop. Results are bit-identical either way (asserted by
    /// the equivalence tests); the switch exists for A/B timing and for
    /// debugging the skip logic itself.
    pub fn dense_stepping(mut self, dense: bool) -> Self {
        self.dense = dense;
        self
    }

    /// Flow-table admission-control cap (LRU eviction beyond it).
    pub fn max_flow_entries(mut self, cap: Option<usize>) -> Self {
        self.max_flow_entries = cap;
        self
    }

    /// Write a crash-safe checkpoint into `dir` every `every` of
    /// *simulated* time (rounded up to whole-second epoch boundaries).
    /// `argv` is embedded in the checkpoint metadata so
    /// `outran-sim resume <ckpt>` can rebuild the identical experiment.
    pub fn checkpoint_every(mut self, every: Dur, dir: PathBuf, argv: Vec<String>) -> Self {
        assert!(every > Dur::ZERO, "checkpoint interval must be positive");
        self.checkpoint = Some((every, dir));
        self.checkpoint_argv = argv;
        self
    }

    /// Estimated cell capacity in bit/s under the scenario's peak MCS,
    /// derated for typical channel conditions — the anchor for the
    /// load→arrival-rate conversion.
    pub fn capacity_bps(&self) -> f64 {
        let ch = self.scenario.channel_config();
        let peak_bits_per_re = ch.table.peak_efficiency();
        // The paper calibrates load against the cell's nominal capacity
        // (97 Mbps for the 20 MHz testbed), which real mixed-CQI cells
        // cannot actually sustain — that is why its high-"load" points
        // (0.7/0.8) behave like saturation (Fig 15's PF blow-up). The
        // mild derate keeps the same semantics.
        let derate = 0.85;
        ch.radio.peak_rate_bps(peak_bits_per_re) * derate
    }

    /// Build the configured cell with every Poisson arrival scheduled
    /// up-front, ready to advance. Used by [`Experiment::run`] and by
    /// checkpoint restore (construct-then-overlay: a restored run
    /// rebuilds this exact cell, then overlays the snapshot's dynamic
    /// state with [`Cell::load_snap`]).
    pub fn build_cell(&self) -> Cell {
        let mut cfg = CellConfig::lte_default(self.n_ues, self.scheduler, self.seed);
        cfg.channel = self.scenario.channel_config();
        cfg.tf = self.tf;
        cfg.rlc_mode = self.rlc_mode;
        cfg.buffer_sdus = self.buffer_sdus;
        cfg.cn_delay = self.cn_delay;
        cfg.outran = self.outran.clone();
        cfg.tcp = self.tcp;
        cfg.residual_loss = self.residual_loss;
        cfg.srjf_mode = self.srjf_mode;
        cfg.harq = self.harq;
        cfg.faults = self.faults.clone();
        cfg.watchdog = self.watchdog;
        cfg.max_flow_entries = self.max_flow_entries;
        let mut cell = Cell::new(cfg);
        let mut gen = PoissonFlowGen::new(
            self.dist,
            self.load,
            self.capacity_bps(),
            self.n_ues,
            Rng::new(self.seed ^ 0xA11CE),
        );
        for a in gen.take_until(self.duration) {
            cell.schedule_flow(a.at, a.ue, a.bytes, None);
        }
        cell
    }

    /// Advance `cell` to `to` in the configured stepping mode.
    fn advance(&self, cell: &mut Cell, to: Time) {
        if self.dense {
            cell.run_until_dense(to);
        } else {
            cell.run_until(to);
        }
    }

    /// Build the cell + arrivals and run to completion.
    pub fn run(self) -> ExperimentReport {
        let cell = self.build_cell();
        self.run_cell(cell)
    }

    /// Run an already-built (or checkpoint-restored) cell from its
    /// current clock to the end of the drain window, then assemble the
    /// report. With checkpointing configured, the horizon is walked in
    /// whole-second epochs and a snapshot is written atomically at every
    /// interval boundary — the chunked walk is bit-identical to one
    /// `run_until` call, since both stepping loops only ever advance one
    /// TTI at a time. A checkpoint write failure is reported to stderr
    /// and the run continues: losing a checkpoint must not kill a soak.
    pub fn run_cell(self, mut cell: Cell) -> ExperimentReport {
        let warmup_end = Time::ZERO + self.warmup;
        // Run past the horizon to let late flows finish (bounded drain).
        let drain_end = Time(self.duration.0 + Time::from_secs(4).0);
        match &self.checkpoint {
            Some((every, dir)) => {
                let every = Dur::from_secs(every.as_nanos().div_ceil(Time::from_secs(1).0));
                let mut next = Time(cell.now().0 + every.as_nanos());
                while cell.now() < drain_end {
                    let to = next.min(drain_end);
                    self.advance(&mut cell, to);
                    if cell.now() >= next {
                        let meta = CheckpointMeta {
                            argv: self.checkpoint_argv.clone(),
                            sim_time: cell.now(),
                            dense: self.dense,
                            n_cells: 1,
                        };
                        let secs = cell.now().as_nanos() / 1_000_000_000;
                        let path = dir.join(format!("ckpt-{secs}s.orsn"));
                        if let Err(e) = write_checkpoint(&path, &meta, &[&cell]) {
                            eprintln!("warning: checkpoint {} failed: {e}", path.display());
                        }
                        next = Time(next.0 + every.as_nanos());
                    }
                }
            }
            None => {
                self.advance(&mut cell, self.duration);
                self.advance(&mut cell, drain_end);
            }
        }

        // Only count flows that *started* after warmup. The pipeline
        // yields completions already in completion order (delivery runs
        // once per TTI, in TTI order), so no re-sort is needed — the
        // debug assertion guards that contract.
        let mut fct = outran_metrics::FctCollector::new();
        let mut records = Vec::new();
        let mut last_done = Time::ZERO;
        for d in cell.take_completions() {
            let done_at = d.spawn + d.fct;
            debug_assert!(
                done_at >= last_done,
                "pipeline must emit completions in completion order"
            );
            last_done = done_at;
            if d.spawn >= warmup_end {
                fct.record(d.bytes, d.fct);
                records.push((d.bytes, d.fct.as_millis_f64()));
            }
        }
        let report = fct.report();
        let se = cell.metrics.spectral_efficiency();
        let fairness = cell.metrics.mean_fairness();
        // Final invariant sweep so end-of-run state is always audited.
        cell.audit_now();
        ExperimentReport {
            scheduler: self.scheduler.label(),
            fct: report,
            spectral_efficiency: se,
            fairness,
            mean_qdelay_ms: cell.metrics.mean_qdelay_ms(),
            short_qdelay_ms: cell.metrics.short_qdelay_ms(),
            mean_rtt_ms: cell.mean_last_rtt_ms(),
            completed: cell.n_completed(),
            offered: cell.n_flows(),
            buffer_drops: cell.buffer_drops(),
            residual_losses: cell.residual_losses(),
            fault_stats: cell.fault_stats(),
            violations: cell.violations().to_vec(),
            total_violations: cell.total_violations(),
            se_cdf: cell.metrics.se_cdf(200),
            fairness_cdf: cell.metrics.fairness_cdf(200),
            se_series: cell.metrics.se_series().to_vec(),
            fairness_series: cell.metrics.fairness_series().to_vec(),
            flow_records: records,
            fct_collector: fct,
        }
    }
}

/// Results of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Scheduler name.
    pub scheduler: String,
    /// FCT summary (ms).
    pub fct: outran_metrics::FctReport,
    /// Long-run spectral efficiency (bit/s/Hz).
    pub spectral_efficiency: f64,
    /// Mean Jain fairness of windowed samples.
    pub fairness: f64,
    /// Mean RLC queueing delay (ms) — Fig 17 ②.
    pub mean_qdelay_ms: f64,
    /// Mean short-flow RLC queueing delay (ms) — Fig 17 ③.
    pub short_qdelay_ms: f64,
    /// Mean of last TCP RTT samples (ms) — Fig 17 ①.
    pub mean_rtt_ms: f64,
    /// Flows completed (including warmup).
    pub completed: usize,
    /// Flows offered.
    pub offered: usize,
    /// SDUs dropped at full RLC buffers.
    pub buffer_drops: u64,
    /// Segments lost after HARQ (configured residual + injected spikes).
    pub residual_losses: u64,
    /// Injected-fault and recovery-path counters.
    pub fault_stats: FaultStats,
    /// Recorded invariant violations (bounded; see `total_violations`).
    pub violations: Vec<Violation>,
    /// Total invariant violations, including any past the record cap.
    pub total_violations: u64,
    /// CDF of windowed spectral-efficiency samples (Fig 7a).
    pub se_cdf: Vec<(f64, f64)>,
    /// CDF of windowed fairness samples (Fig 7b).
    pub fairness_cdf: Vec<(f64, f64)>,
    /// SE samples in time order (Fig 4a).
    pub se_series: Vec<f64>,
    /// Fairness samples in time order (Fig 4b).
    pub fairness_series: Vec<f64>,
    /// Per-flow (size bytes, FCT ms) records for post-processing/CSV
    /// export (flows that started after warmup).
    pub flow_records: Vec<(u64, f64)>,
    /// The underlying collector (for CDFs/percentiles beyond the report).
    pub fct_collector: outran_metrics::FctCollector,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(kind: SchedulerKind) -> ExperimentReport {
        Experiment::lte_default()
            .users(6)
            .load(0.4)
            .duration_secs(4)
            .scheduler(kind)
            .seed(3)
            .run()
    }

    #[test]
    fn experiment_produces_flows_and_metrics() {
        let r = tiny(SchedulerKind::Pf);
        assert!(r.fct.count > 5, "completed={}", r.fct.count);
        assert!(r.spectral_efficiency > 0.1);
        assert!(r.fairness > 0.0 && r.fairness <= 1.0);
        assert!(r.completed as f64 / r.offered as f64 > 0.7);
    }

    #[test]
    fn deterministic_reports() {
        let a = tiny(SchedulerKind::OutRan);
        let b = tiny(SchedulerKind::OutRan);
        assert_eq!(a.fct.count, b.fct.count);
        assert_eq!(a.spectral_efficiency, b.spectral_efficiency);
    }

    #[test]
    fn capacity_is_sane() {
        let e = Experiment::lte_default();
        let c = e.capacity_bps();
        // 20 MHz LTE @256QAM: ~97-102 Mbps peak, mildly derated.
        assert!((6e7..1.0e8).contains(&c), "capacity={c}");
    }
}
