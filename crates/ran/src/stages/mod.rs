//! The per-TTI layer pipeline and its structural observation hooks.
//!
//! [`crate::cell::Cell`] executes one active TTI as a fixed sequence of
//! stages, each a struct owning its slice of the former monolith's
//! state and communicating only through small typed messages (see
//! DESIGN.md § "Layer pipeline"):
//!
//! ```text
//! housekeeping(pre: fault edges)
//!   → ingress      (CN arrivals, TCP endpoints, RTO/watchdog)
//!   → rlc_down     (PDCP marking + MLFQ/AM/UM SDU admission)
//!   → phy_tx       (channel evolution)
//!   → mac_sched    (rate refresh, GBR carve-out, RB allocation)
//!   → phy_tx       (HARQ/BLER transmit → ordered AirDelivery batch)
//!   → delivery     (reassembly, TCP receive, flow completion)
//!   → housekeeping (post: timers, GC, invariant audit)
//! ```
//!
//! The [`StageObserver`] trait is the single structural injection point
//! for anything that wants to watch the pipeline run: the `--profile`
//! wall-time attribution ([`StageTimer`]), the golden-trace determinism
//! harness, and future fault/audit probes all attach here instead of
//! being hand-woven through the step function.

pub mod delivery;
pub mod housekeeping;
pub mod ingress;
pub mod mac_sched;
pub mod phy_tx;
pub mod rlc_down;

pub use delivery::DeliveryStage;
pub use housekeeping::HousekeepingStage;
pub use ingress::IngressStage;
pub use mac_sched::MacSchedStage;
pub use phy_tx::PhyTxStage;
pub use rlc_down::RlcDownStage;

use crate::config::{CellConfig, RlcMode};
use outran_pdcp::{FlowTable, MlfqConfig};
use outran_rlc::am::{AmConfig, AmPdu, AmRx, AmTx};
use outran_rlc::sdu::{RlcSdu, RlcSegment};
use outran_rlc::um::{UmConfig, UmRx, UmTx};
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::Time;

/// Identifies one stage of the active-TTI pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// CN arrival/ACK/STATUS event drain, RTO and watchdog scans.
    Ingress,
    /// PDCP inspection + RLC SDU admission (and RLC PDU pulls during
    /// transmit, re-entered from `PhyTx` for attribution).
    RlcDown,
    /// Rate-matrix refresh, GBR reservation, scheduler invocation.
    MacSched,
    /// Channel evolution and the HARQ/BLER air-interface transmit.
    PhyTx,
    /// Reassembly, TCP receive and flow-completion recording.
    Delivery,
    /// Fault edges, RLC timers, flow-table GC, invariant audits.
    Housekeeping,
}

impl StageId {
    /// All stages, in nominal pipeline order.
    pub const ALL: [StageId; 6] = [
        StageId::Ingress,
        StageId::RlcDown,
        StageId::MacSched,
        StageId::PhyTx,
        StageId::Delivery,
        StageId::Housekeeping,
    ];

    /// Short display label.
    pub fn name(self) -> &'static str {
        match self {
            StageId::Ingress => "ingress",
            StageId::RlcDown => "rlc_down",
            StageId::MacSched => "mac_sched",
            StageId::PhyTx => "phy_tx",
            StageId::Delivery => "delivery",
            StageId::Housekeeping => "housekeeping",
        }
    }
}

/// End-of-TTI roll-up handed to [`StageObserver::on_tti`] — the typed
/// message the golden-trace determinism harness digests.
#[derive(Debug, Clone, Copy)]
pub struct TtiSummary {
    /// Resource blocks granted this TTI (dynamic + GBR-reserved).
    pub used_rbs: u32,
    /// Resource blocks the carrier offers per TTI.
    pub total_rbs: u32,
    /// Cumulative bytes delivered to UE stacks since the run started.
    pub delivered_bytes: u64,
    /// Cumulative completed flows since the run started.
    pub completed_flows: u64,
}

/// Structural hook over the active-TTI pipeline.
///
/// `stage_enter`/`stage_exit` bracket every stage execution (stages may
/// nest: RLC pull work performed during the PHY transmit is re-entered
/// as [`StageId::RlcDown`]); [`StageObserver::on_tti`] fires once at
/// the end of every *active* TTI — idle TTIs execute no stages and
/// produce no callbacks, identically in dense and event-driven
/// stepping.
pub trait StageObserver {
    /// A stage begins executing (possibly nested inside another).
    fn stage_enter(&mut self, id: StageId) {
        let _ = id;
    }
    /// The innermost executing stage ends.
    fn stage_exit(&mut self, id: StageId) {
        let _ = id;
    }
    /// The active TTI ending at `now` finished the whole pipeline.
    fn on_tti(&mut self, now: Time, summary: &TtiSummary) {
        let _ = (now, summary);
    }
}

/// Per-stage wall-time attribution of the active-TTI pipeline, in
/// nanoseconds (opt-in via [`crate::cell::Cell::enable_profiling`]).
///
/// Times are *exclusive*: RLC pull work re-entered from inside the PHY
/// transmit is attributed to `rlc_down_ns`, not `phy_tx_ns`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepProfile {
    /// Event drain, TCP endpoints, RTO and watchdog scans.
    pub ingress_ns: u64,
    /// PDCP marking + RLC SDU admission and PDU pulls.
    pub rlc_down_ns: u64,
    /// Rate refresh, GBR carve-out and MAC scheduling.
    pub mac_sched_ns: u64,
    /// Channel evolution and the air-interface transmit.
    pub phy_tx_ns: u64,
    /// Reassembly, TCP receive and completion recording.
    pub delivery_ns: u64,
    /// Fault edges, RLC timers, GC and invariant audits.
    pub housekeeping_ns: u64,
}

impl StepProfile {
    /// Total attributed time across all stages, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ingress_ns
            + self.rlc_down_ns
            + self.mac_sched_ns
            + self.phy_tx_ns
            + self.delivery_ns
            + self.housekeeping_ns
    }

    fn slot(&mut self, id: StageId) -> &mut u64 {
        match id {
            StageId::Ingress => &mut self.ingress_ns,
            StageId::RlcDown => &mut self.rlc_down_ns,
            StageId::MacSched => &mut self.mac_sched_ns,
            StageId::PhyTx => &mut self.phy_tx_ns,
            StageId::Delivery => &mut self.delivery_ns,
            StageId::Housekeeping => &mut self.housekeeping_ns,
        }
    }
}

/// The built-in profiling observer: attributes wall time exclusively to
/// the innermost active stage via a stage stack.
#[derive(Debug, Default)]
pub struct StageTimer {
    profile: StepProfile,
    stack: Vec<StageId>,
    last: Option<std::time::Instant>,
}

impl StageTimer {
    /// Accumulated per-stage timings.
    pub fn profile(&self) -> &StepProfile {
        &self.profile
    }

    fn lap(&mut self) -> Option<u64> {
        // outran-lint: allow(d1) -- profiling lap timer, measurement only
        let t = std::time::Instant::now();
        let elapsed = self.last.map(|l| t.duration_since(l).as_nanos() as u64);
        self.last = Some(t);
        elapsed
    }
}

impl StageObserver for StageTimer {
    fn stage_enter(&mut self, id: StageId) {
        let elapsed = self.lap();
        if let (Some(ns), Some(&top)) = (elapsed, self.stack.last()) {
            *self.profile.slot(top) += ns;
        }
        self.stack.push(id);
    }

    fn stage_exit(&mut self, id: StageId) {
        let elapsed = self.lap();
        if let Some(top) = self.stack.pop() {
            debug_assert_eq!(top, id, "unbalanced stage brackets");
            if let Some(ns) = elapsed {
                *self.profile.slot(top) += ns;
            }
        }
        if self.stack.is_empty() {
            // Inter-stage gaps (orchestrator glue) stay unattributed.
            self.last = None;
        }
    }
}

/// Owner of the optional pipeline observer. All hook calls are no-ops
/// when nothing is attached, so the hot path pays one enum-tag check.
#[derive(Default)]
pub struct ObserverHost {
    inner: Slot,
}

#[derive(Default)]
enum Slot {
    #[default]
    None,
    Timer(StageTimer),
    Custom(Box<dyn StageObserver + Send>),
}

impl ObserverHost {
    /// Attach the built-in profiling timer (replacing any observer).
    pub(crate) fn install_timer(&mut self) {
        self.inner = Slot::Timer(StageTimer::default());
    }

    /// Attach a custom observer (replacing any observer).
    pub(crate) fn install(&mut self, obs: Box<dyn StageObserver + Send>) {
        self.inner = Slot::Custom(obs);
    }

    /// The profiling timer's figures, if [`ObserverHost::install_timer`]
    /// is the active observer.
    pub(crate) fn profile(&self) -> Option<&StepProfile> {
        match &self.inner {
            Slot::Timer(t) => Some(t.profile()),
            _ => None,
        }
    }

    /// Whether any observer is attached (lets callers skip summary
    /// assembly work when nobody is listening).
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        !matches!(self.inner, Slot::None)
    }

    /// Bracket entry — see [`StageObserver::stage_enter`].
    #[inline]
    pub(crate) fn enter(&mut self, id: StageId) {
        match &mut self.inner {
            Slot::None => {}
            Slot::Timer(t) => t.stage_enter(id),
            Slot::Custom(o) => o.stage_enter(id),
        }
    }

    /// Bracket exit — see [`StageObserver::stage_exit`].
    #[inline]
    pub(crate) fn exit(&mut self, id: StageId) {
        match &mut self.inner {
            Slot::None => {}
            Slot::Timer(t) => t.stage_exit(id),
            Slot::Custom(o) => o.stage_exit(id),
        }
    }

    /// End-of-TTI notification — see [`StageObserver::on_tti`].
    #[inline]
    pub(crate) fn on_tti(&mut self, now: Time, summary: &TtiSummary) {
        match &mut self.inner {
            Slot::None => {}
            Slot::Timer(t) => t.on_tti(now, summary),
            Slot::Custom(o) => o.on_tti(now, summary),
        }
    }
}

// ---- per-UE pipeline contract ------------------------------------------

/// The downlink RLC transmit entity of one UE, in either mode.
pub enum RlcTx {
    /// Unacknowledged Mode.
    Um(UmTx),
    /// Acknowledged Mode.
    Am(AmTx),
}

impl RlcTx {
    /// Admit one SDU; `Err` returns the discarded victim (drop-tail or
    /// push-out).
    pub fn write_sdu(&mut self, sdu: RlcSdu) -> Result<(), RlcSdu> {
        match self {
            RlcTx::Um(um) => um.write_sdu(sdu),
            RlcTx::Am(am) => am.write_sdu(sdu),
        }
    }

    /// Whether this entity can still generate transmission work (AM
    /// counts retransmission/status machinery, not just queued SDUs).
    pub fn has_work(&self) -> bool {
        match self {
            RlcTx::Um(um) => !um.is_empty(),
            RlcTx::Am(am) => !am.is_quiescent(),
        }
    }

    /// O(1) occupancy triple for scheduler input: (queued bytes, head
    /// priority, oldest head-of-line arrival).
    pub fn occupancy(&self) -> (u64, Option<outran_pdcp::Priority>, Option<Time>) {
        match self {
            RlcTx::Um(um) => (
                um.queued_bytes(),
                um.head_priority(),
                um.oldest_head_arrival(),
            ),
            RlcTx::Am(am) => (
                am.pending_bytes(),
                am.head_priority(),
                am.oldest_head_arrival(),
            ),
        }
    }

    /// Queued SDU count.
    pub fn len_sdus(&self) -> usize {
        match self {
            RlcTx::Um(um) => um.len_sdus(),
            RlcTx::Am(am) => am.len_sdus(),
        }
    }

    /// Current SDU capacity.
    pub fn capacity_sdus(&self) -> usize {
        match self {
            RlcTx::Um(um) => um.capacity_sdus(),
            RlcTx::Am(am) => am.capacity_sdus(),
        }
    }

    /// Clamp the SDU capacity, flushing overflow; returns (SDUs, bytes)
    /// flushed.
    pub fn set_capacity(&mut self, capacity_sdus: usize) -> (u64, u64) {
        match self {
            RlcTx::Um(um) => um.set_capacity(capacity_sdus),
            RlcTx::Am(am) => am.set_capacity(capacity_sdus),
        }
    }

    /// RLC re-establishment flush; returns (SDUs, bytes) flushed.
    pub fn reestablish(&mut self) -> (u64, u64) {
        match self {
            RlcTx::Um(um) => um.reestablish(),
            RlcTx::Am(am) => am.reestablish(),
        }
    }
}

/// The receive-side RLC entity of one UE, in either mode.
pub enum RlcRx {
    /// Unacknowledged Mode reassembly.
    Um(UmRx),
    /// Acknowledged Mode receive window.
    Am(AmRx),
}

impl RlcRx {
    /// RLC re-establishment flush; returns (SDUs, bytes) discarded.
    pub fn reestablish(&mut self) -> (u64, u64) {
        match self {
            RlcRx::Um(um) => um.reestablish(),
            RlcRx::Am(am) => am.reestablish(),
        }
    }
}

/// What a HARQ transport block carries in this cell. The ledger byte
/// count is cached at construction so the hot path never re-walks the
/// segment list (AM PDUs are ledger-exempt: AM runs without
/// conservation auditing).
pub struct HarqPayload {
    /// Ledger-countable payload bytes (0 for AM).
    pub bytes: u64,
    /// The RLC PDUs awaiting retransmission.
    pub data: HarqData,
}

/// Mode-specific HARQ payload contents.
pub enum HarqData {
    /// UM segments.
    Um(Vec<RlcSegment>),
    /// AM PDUs.
    Am(Vec<AmPdu>),
}

impl HarqPayload {
    /// Wrap UM segments, caching their ledger byte count.
    pub fn um(segs: Vec<RlcSegment>) -> HarqPayload {
        let bytes = segs.iter().map(|s| s.len as u64).sum();
        HarqPayload {
            bytes,
            data: HarqData::Um(segs),
        }
    }

    /// Wrap AM PDUs (ledger-exempt).
    pub fn am(pdus: Vec<AmPdu>) -> HarqPayload {
        HarqPayload {
            bytes: 0,
            data: HarqData::Am(pdus),
        }
    }
}

/// Everything the pipeline keeps per UE — the former parallel per-UE
/// vectors of the monolithic `Cell`, gathered into one context that
/// stages receive as `&mut [UeContext]`.
pub struct UeContext {
    /// PDCP flow table (MLFQ marking state).
    pub flow_table: FlowTable,
    /// Downlink RLC transmit entity.
    pub rlc_tx: RlcTx,
    /// UE-side RLC receive entity.
    pub rlc_rx: RlcRx,
    /// Per-UE HARQ processes (explicit-HARQ mode).
    pub harq: outran_phy::harq::HarqQueue<HarqPayload>,
    /// Indices of this UE's not-yet-completed flows (pruned lazily).
    pub flows: Vec<usize>,
}

/// MLFQ level count for a configuration (shared between construction
/// and snapshot restore).
fn mlfq_levels(cfg: &CellConfig) -> usize {
    if cfg.scheduler.uses_mlfq() {
        cfg.outran.mlfq_queues
    } else if cfg.scheduler.uses_oracle_priority() {
        16 // fine-grained remaining-size levels for the SRJF oracle
    } else {
        1 // legacy FIFO
    }
}

/// UM transmit-entity configuration for a cell configuration.
fn um_config(cfg: &CellConfig) -> UmConfig {
    UmConfig {
        mlfq_levels: mlfq_levels(cfg),
        capacity_sdus: cfg.buffer_sdus,
        header_bytes: cfg.outran.header_bytes,
        reassembly_window: cfg.outran.reassembly_window,
        promote_segments: cfg.outran.promote_segments,
        pushout: cfg.outran.pushout,
    }
}

/// AM transmit-entity configuration for a cell configuration.
fn am_config(cfg: &CellConfig) -> AmConfig {
    AmConfig {
        mlfq_levels: mlfq_levels(cfg),
        capacity_sdus: cfg.buffer_sdus,
        header_bytes: cfg.outran.header_bytes.max(5),
        promote_segments: cfg.outran.promote_segments,
        pushout: cfg.outran.pushout,
        ..AmConfig::default()
    }
}

impl UeContext {
    /// Build the per-UE contexts for a configuration (one shared MLFQ
    /// config across flow tables; per-mode RLC entities).
    pub(crate) fn build_all(cfg: &CellConfig) -> Vec<UeContext> {
        let mlfq = std::sync::Arc::new(if cfg.scheduler.uses_mlfq() {
            cfg.outran.resolve_mlfq()
        } else {
            MlfqConfig::default()
        });
        (0..cfg.n_ues)
            .map(|_| {
                let mut flow_table = FlowTable::shared(mlfq.clone());
                if let Some(cap) = cfg.max_flow_entries {
                    flow_table.set_max_entries(Some(cap));
                }
                UeContext {
                    flow_table,
                    rlc_tx: match cfg.rlc_mode {
                        RlcMode::Um => RlcTx::Um(UmTx::new(um_config(cfg))),
                        RlcMode::Am => RlcTx::Am(AmTx::new(am_config(cfg))),
                    },
                    rlc_rx: match cfg.rlc_mode {
                        RlcMode::Um => RlcRx::Um(UmRx::new(cfg.outran.reassembly_window)),
                        RlcMode::Am => RlcRx::Am(AmRx::new(AmConfig::default())),
                    },
                    harq: outran_phy::harq::HarqQueue::new(cfg.harq.unwrap_or_default()),
                    flows: Vec::new(),
                }
            })
            .collect()
    }

    /// Serialize this UE's pipeline state (checkpointing): flow table,
    /// both RLC entities (mode-tagged), HARQ processes and the active
    /// flow list.
    pub fn snap(&self, w: &mut SnapWriter) {
        self.flow_table.snap(w);
        match &self.rlc_tx {
            RlcTx::Um(um) => {
                w.u8(0);
                um.snap(w);
            }
            RlcTx::Am(am) => {
                w.u8(1);
                am.snap(w);
            }
        }
        match &self.rlc_rx {
            RlcRx::Um(um) => {
                w.u8(0);
                um.snap(w);
            }
            RlcRx::Am(am) => {
                w.u8(1);
                am.snap(w);
            }
        }
        self.harq.snap_with(w, |w, p| {
            w.u64(p.bytes);
            match &p.data {
                HarqData::Um(segs) => {
                    w.u8(0);
                    w.seq(segs.iter(), |w, s| s.snap(w));
                }
                HarqData::Am(pdus) => {
                    w.u8(1);
                    w.seq(pdus.iter(), |w, p| p.snap(w));
                }
            }
        });
        w.seq(self.flows.iter(), |w, &f| w.usize(f));
    }

    /// Overlay checkpointed state from [`UeContext::snap`] output onto a
    /// freshly built context. The RLC mode tags must agree with
    /// `cfg.rlc_mode` — a UM snapshot cannot load into an AM cell.
    pub fn load_snap(&mut self, cfg: &CellConfig, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.flow_table.load_snap(r)?;
        self.rlc_tx = match (r.u8()?, cfg.rlc_mode) {
            (0, RlcMode::Um) => RlcTx::Um(UmTx::unsnap(um_config(cfg), r)?),
            (1, RlcMode::Am) => RlcTx::Am(AmTx::unsnap(am_config(cfg), r)?),
            _ => {
                return Err(SnapError::Malformed(
                    "RLC tx mode disagrees with configuration",
                ))
            }
        };
        self.rlc_rx = match (r.u8()?, cfg.rlc_mode) {
            (0, RlcMode::Um) => RlcRx::Um(UmRx::unsnap(r)?),
            (1, RlcMode::Am) => RlcRx::Am(AmRx::unsnap(AmConfig::default(), r)?),
            _ => {
                return Err(SnapError::Malformed(
                    "RLC rx mode disagrees with configuration",
                ))
            }
        };
        self.harq =
            outran_phy::harq::HarqQueue::unsnap_with(cfg.harq.unwrap_or_default(), r, |r| {
                let bytes = r.u64()?;
                let data = match r.u8()? {
                    0 => HarqData::Um(r.seq(RlcSegment::unsnap)?),
                    1 => HarqData::Am(r.seq(AmPdu::unsnap)?),
                    _ => return Err(SnapError::Malformed("unknown HARQ payload tag")),
                };
                Ok(HarqPayload { bytes, data })
            })?;
        self.flows = r.seq(|r| r.usize())?;
        Ok(())
    }

    /// Whether this UE's RLC/HARQ state can generate work this TTI.
    pub fn has_radio_work(&self) -> bool {
        if !self.harq.is_empty() || self.rlc_tx.has_work() {
            return true;
        }
        if let RlcRx::Um(um) = &self.rlc_rx {
            if um.pending() > 0 {
                return true;
            }
        }
        false
    }
}

// ---- typed inter-stage messages ----------------------------------------

// The per-TTI rate matrix lives in `outran-mac` now (plane-backed so the
// scheduler kernels can run over its flat arrays); re-exported here to
// keep the stage-pipeline namespace stable.
pub use outran_mac::TtiRates;

/// One downlink packet crossing the ingress → RLC boundary: everything
/// the RLC-down stage needs to admit it, without reaching back into the
/// ingress stage's flow table.
pub struct SduIngress {
    /// Flow index.
    pub flow: usize,
    /// Destination UE.
    pub ue: usize,
    /// PDCP five-tuple.
    pub tuple: outran_pdcp::FiveTuple,
    /// Byte offset of this packet within the flow.
    pub seq: u64,
    /// Packet length in bytes.
    pub len: u32,
    /// Oracle remaining flow size at this packet (SRJF priority input).
    pub oracle_remaining: u64,
}

/// One air-interface delivery crossing the PHY → delivery boundary, in
/// exact transmission order (the delivery stage replays the batch after
/// the transmit loop finishes; effects within one TTI are
/// order-preserving, so the replay is bit-identical to inline delivery).
pub enum AirDelivery {
    /// A UM segment that survived the air interface.
    UmSeg {
        /// Destination UE.
        ue: usize,
        /// The delivered segment.
        seg: RlcSegment,
    },
    /// A batch of AM PDUs that survived the air interface.
    AmPdus {
        /// Destination UE.
        ue: usize,
        /// The delivered PDUs.
        pdus: Vec<AmPdu>,
    },
    /// A HARQ-recovered transport block's payload.
    Harq {
        /// Destination UE.
        ue: usize,
        /// The recovered payload.
        payload: HarqPayload,
    },
}
