//! Stage 6 — **housekeeping**: faults, auditing, timers.
//!
//! Owns the fault engine (the flattened snapshot, its dedicated RNG and
//! the cached next window edge), the invariant auditor, the §6.3
//! priority-reset schedule and the flow-table GC clock. The other
//! stages consult it for the active fault snapshot and report
//! fault-attributable events through the `note_*` methods.

use crate::config::CellConfig;
use crate::stages::{PhyTxStage, RlcRx, RlcTx, UeContext};
use outran_core::PriorityReset;
use outran_faults::{ActiveFaults, AuditSnapshot, FaultStats, InvariantAuditor};
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::{Dur, Rng, Time};

/// The housekeeping stage (see module docs).
pub struct HousekeepingStage {
    /// Fault snapshot of the previous TTI (edge detection).
    faults_active: ActiveFaults,
    /// Dedicated RNG for fault draws, so injecting faults never perturbs
    /// the main simulation stream.
    fault_rng: Rng,
    fault_counters: FaultStats,
    auditor: InvariantAuditor,
    /// Whether delivered-SDU ordering is a valid invariant for this
    /// configuration (explicit HARQ, priority reset and the SRJF oracle
    /// all legitimately reorder intra-flow delivery).
    audit_order: bool, // outran-lint: allow(D9) -- re-derived from CellConfig
    reset: Option<PriorityReset>,
    last_gc: Time,
    /// Cached next fault-window edge at or after `now` (`None` when the
    /// plan holds no further edges); refreshed only when crossed.
    next_fault_edge: Option<Time>,
    /// Bytes terminally dropped by fault actions (capacity-clamp and
    /// reestablishment tx flushes) — a byte-conservation ledger term.
    dropped_bytes: u64,
}

impl HousekeepingStage {
    /// Build from the cell configuration, forking the fault RNG.
    pub fn new(cfg: &CellConfig, root: &Rng) -> HousekeepingStage {
        let reset = cfg.outran.priority_reset(Time::ZERO);
        let audit_order =
            cfg.harq.is_none() && reset.is_none() && !cfg.scheduler.uses_oracle_priority();
        HousekeepingStage {
            faults_active: ActiveFaults::default(),
            fault_rng: root.fork(0xFA17),
            fault_counters: FaultStats::default(),
            auditor: InvariantAuditor::new(cfg.audit),
            audit_order,
            reset,
            last_gc: Time::ZERO,
            // `Some(ZERO)` forces the first active TTI to flatten the
            // plan (a window may start at t = 0) and cache the real edge.
            next_fault_edge: if cfg.faults.is_empty() {
                None
            } else {
                Some(Time::ZERO)
            },
            dropped_bytes: 0,
        }
    }

    /// Fault engine entry: flatten the plan at `now` and apply window
    /// edges (flush on RLF/detach entry, capacity clamps, …). Refreshes
    /// the cached edge only when crossed: between edges the snapshot is
    /// constant and idle spans may skip.
    pub fn apply_fault_edges(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        ues: &mut [UeContext],
        phy: &mut PhyTxStage,
    ) {
        if !cfg.faults.is_empty() || !self.faults_active.is_quiet() {
            let active = cfg.faults.active_at(now);
            self.apply_fault_transitions(cfg, ues, phy, active);
            if self.next_fault_edge.is_some_and(|e| e <= now) {
                self.next_fault_edge = cfg.faults.next_edge_after(now);
            }
        }
    }

    /// Diff the new fault snapshot against the previous TTI's and run the
    /// edge actions: RLC re-establishment on RLF/detach entry, re-attach
    /// accounting on exit, and RLC capacity clamps for shrink windows.
    fn apply_fault_transitions(
        &mut self,
        cfg: &CellConfig,
        ues: &mut [UeContext],
        phy: &mut PhyTxStage,
        active: ActiveFaults,
    ) {
        if active == self.faults_active {
            return;
        }
        let prev = std::mem::replace(&mut self.faults_active, active);
        for (ue, ctx) in ues.iter_mut().enumerate() {
            let was_down = !prev.link_up(ue);
            let is_down = !self.faults_active.link_up(ue);
            if is_down && !was_down {
                if self.faults_active.in_rlf(ue) {
                    self.fault_counters.rlf_events += 1;
                }
                if self.faults_active.detached(ue) {
                    self.fault_counters.detach_events += 1;
                }
                self.reestablish_ue(ue, ctx, phy);
            } else if was_down && !is_down {
                self.fault_counters.reattach_events += 1;
            }
        }
        let clamp = |cap: usize| cap.clamp(1, cfg.buffer_sdus);
        let new_cap = self.faults_active.buffer_cap.map(clamp);
        let old_cap = prev.buffer_cap.map(clamp);
        if new_cap != old_cap {
            if new_cap.is_some() && old_cap.is_none() {
                self.fault_counters.buffer_shrink_events += 1;
            }
            let target = new_cap.unwrap_or(cfg.buffer_sdus);
            for ctx in ues.iter_mut() {
                let (sdus, bytes) = ctx.rlc_tx.set_capacity(target);
                self.fault_counters.flushed_sdus += sdus;
                self.fault_counters.flushed_bytes += bytes;
                self.dropped_bytes += bytes;
            }
        }
    }

    /// RLC re-establishment for one UE (TS 36.322 §5.4): flush both
    /// entities and the UE's HARQ processes; TCP refills by
    /// retransmission once the link returns.
    fn reestablish_ue(&mut self, ue: usize, ctx: &mut UeContext, phy: &mut PhyTxStage) {
        let (tx_sdus, tx_bytes) = ctx.rlc_tx.reestablish();
        let (rx_sdus, rx_bytes) = ctx.rlc_rx.reestablish();
        // Tx flush bytes are terminal here; rx flush bytes are already
        // counted by the receiver's own discard ledger.
        self.dropped_bytes += tx_bytes;
        for tb in ctx.harq.clear() {
            phy.forget_harq(tb.payload.bytes);
        }
        self.fault_counters.reestablishments += 1;
        self.fault_counters.flushed_sdus += tx_sdus + rx_sdus;
        self.fault_counters.flushed_bytes += tx_bytes + rx_bytes;
        // SDU ids restart from the flush's perspective: drop order state.
        self.auditor.forget_ue(ue);
    }

    /// Per-TTI timers: UM reassembly expiry, AM poll/status machinery,
    /// the §6.3 priority reset (`catch_up`, not `due`, so active and
    /// idle paths count crossed periods identically) and the once-a-
    /// second flow-table GC.
    pub fn timers_and_gc(&mut self, now: Time, ues: &mut [UeContext]) {
        for ctx in ues.iter_mut() {
            if let RlcRx::Um(um) = &mut ctx.rlc_rx {
                um.expire(now);
            }
        }
        for ctx in ues.iter_mut() {
            if let RlcTx::Am(am) = &mut ctx.rlc_tx {
                am.on_tick(now);
            }
        }
        if let Some(reset) = &mut self.reset {
            if reset.catch_up(now) > 0 {
                for ctx in ues.iter_mut() {
                    ctx.flow_table.reset_priorities();
                }
            }
        }
        if now.saturating_since(self.last_gc) >= Dur::from_secs(1) {
            self.last_gc = now;
            for ctx in ues.iter_mut() {
                ctx.flow_table.gc(now);
            }
        }
    }

    /// Idle-path priority-reset accrual: book any reset periods a
    /// skipped span crossed, identically to the active path.
    pub fn idle_reset_catch_up(&mut self, now: Time, ues: &mut [UeContext]) {
        if let Some(reset) = &mut self.reset {
            if reset.catch_up(now) > 0 {
                for ctx in ues.iter_mut() {
                    ctx.flow_table.reset_priorities();
                }
            }
        }
    }

    // ---- fault-snapshot and RNG services ------------------------------

    /// The fault snapshot in force this TTI.
    pub fn faults(&self) -> &ActiveFaults {
        &self.faults_active
    }

    /// Whether the CN link eats a traversing packet right now (full
    /// outage, or the degrade-window loss draw).
    pub fn cn_loses_packet(&mut self) -> bool {
        if self.faults_active.cn_outage {
            return true;
        }
        self.faults_active.cn_loss > 0.0 && self.fault_rng.chance(self.faults_active.cn_loss)
    }

    /// Extra CN one-way delay in force (degrade windows).
    pub fn cn_extra_delay(&self) -> Dur {
        self.faults_active.cn_extra_delay
    }

    /// Book a data packet lost on the CN link.
    pub fn note_cn_dropped_data(&mut self, bytes: u64) {
        self.fault_counters.cn_dropped_pkts += 1;
        self.fault_counters.cn_dropped_bytes += bytes;
    }

    /// Book an ACK lost on the CN link.
    pub fn note_cn_dropped_ack(&mut self) {
        self.fault_counters.cn_dropped_pkts += 1;
    }

    /// Book a packet delayed by a CN degrade window.
    pub fn note_cn_delayed_pkt(&mut self) {
        self.fault_counters.cn_delayed_pkts += 1;
    }

    /// Book a stalled-flow watchdog kick.
    pub fn note_watchdog_kick(&mut self) {
        self.fault_counters.watchdog_kicks += 1;
    }

    /// Book a residual loss attributable to a loss-spike window.
    pub fn note_spiked_loss(&mut self) {
        self.fault_counters.spiked_losses += 1;
    }

    // ---- auditor services ---------------------------------------------

    /// Clock observation (gap detection), once per active TTI.
    pub fn observe_clock(&mut self, now: Time) {
        self.auditor.observe_clock(now);
    }

    /// RB-accounting observation for this TTI.
    pub fn observe_rbs(&mut self, now: Time, used: u32, total: u32) {
        self.auditor.observe_rbs(now, used, total);
    }

    /// Delivery-order observation (skipped for configurations where
    /// intra-flow reordering is legitimate).
    pub fn observe_delivery(&mut self, now: Time, ue: usize, flow_id: u64, sdu_id: u64) {
        if self.audit_order {
            self.auditor.observe_delivery(now, ue, flow_id, sdu_id);
        }
    }

    /// Whether the periodic invariant audit is due.
    pub fn audit_due(&self) -> bool {
        self.auditor.due()
    }

    /// Run the invariant check against an assembled snapshot.
    pub fn audit_check(&mut self, now: Time, snap: &AuditSnapshot) {
        self.auditor.check(now, snap);
    }

    /// The invariant auditor (checks run, cleanliness, …).
    pub fn auditor(&self) -> &InvariantAuditor {
        &self.auditor
    }

    // ---- read-side accessors ------------------------------------------

    /// Cached next fault-window edge at or after now.
    pub fn next_fault_edge(&self) -> Option<Time> {
        self.next_fault_edge
    }

    /// Fault counters accumulated by the engine (cell-local terms only;
    /// the cell merges the PHY/PDCP views on top).
    pub fn counters(&self) -> FaultStats {
        self.fault_counters
    }

    /// Priority resets executed so far (`None` if no reset period).
    pub fn priority_resets(&self) -> Option<u64> {
        self.reset.as_ref().map(|r| r.resets)
    }

    /// Bytes terminally dropped by fault actions (ledger term).
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Serialize the stage (checkpointing): the previous-TTI fault
    /// snapshot (edge detection), the fault RNG, the counters, the
    /// auditor, the reset schedule, the GC clock and the cached window
    /// edge. The fault *plan* itself is a pure function of the cell
    /// configuration and is not written.
    pub fn snap(&self, w: &mut SnapWriter) {
        self.faults_active.snap(w);
        self.fault_rng.snap(w);
        self.fault_counters.snap(w);
        self.auditor.snap(w);
        w.opt(&self.reset, |w, reset| reset.snap(w));
        w.time(self.last_gc);
        w.opt(&self.next_fault_edge, |w, &t| w.time(t));
        w.u64(self.dropped_bytes);
    }

    /// Restore from [`HousekeepingStage::snap`] output. The reset
    /// schedule must agree with the configuration the stage was built
    /// from: a snapshot with (without) a reset driver cannot load into a
    /// configuration without (with) one.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.faults_active = ActiveFaults::unsnap(r)?;
        self.fault_rng = Rng::unsnap(r)?;
        self.fault_counters = FaultStats::unsnap(r)?;
        self.auditor.load_snap(r)?;
        let had_reset = r.bool()?;
        match (&mut self.reset, had_reset) {
            (Some(reset), true) => reset.load_snap(r)?,
            (None, false) => {}
            _ => {
                return Err(SnapError::Malformed(
                    "priority-reset presence disagrees with configuration",
                ))
            }
        }
        self.last_gc = r.time()?;
        self.next_fault_edge = r.opt(|r| r.time())?;
        self.dropped_bytes = r.u64()?;
        Ok(())
    }
}
