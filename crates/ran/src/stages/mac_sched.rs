//! Stage 3 — **MAC scheduling**: rates, GBR carve-out, RB allocation.
//!
//! Owns the dynamic scheduler, the reusable per-TTI rate matrix
//! ([`TtiRates`]) and scheduler-input vectors, and the semi-persistent
//! GBR bearers. Each active TTI it refreshes the rate matrix from the
//! PHY channel's delivered CQI reports, carves out the GBR region,
//! builds the per-UE scheduler inputs, and invokes the scheduler.

use crate::config::{CellConfig, GbrBearer, SchedulerKind};
use crate::stages::{IngressStage, TtiRates, UeContext};
use outran_faults::ActiveFaults;
use outran_mac::{
    Allocation, CqaScheduler, MtScheduler, OutRanScheduler, PfScheduler, PssScheduler, QosParams,
    RrScheduler, Scheduler, SrjfScheduler, UeTti,
};
use outran_phy::channel::CellChannel;
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::{Dur, Percentiles, Time};

#[derive(Debug, Clone)]
struct GbrRuntime {
    bearer: GbrBearer,
    next_gen: Time,
    queue: std::collections::VecDeque<(Time, u32)>,
}

/// The MAC scheduling stage (see module docs).
pub struct MacSchedStage {
    scheduler: Box<dyn Scheduler + Send>,
    // `rates` is rebuilt from the restored channel's report versions on
    // the first refresh after resume (fresh rows carry version
    // u64::MAX); `ues_tti`/`had_data` are rebuilt every active TTI.
    rates: TtiRates, // outran-lint: allow(D9) -- re-derived on first refresh_rates
    ues_tti: Vec<UeTti>, // outran-lint: allow(D9) -- rebuilt every active TTI
    had_data: Vec<bool>, // outran-lint: allow(D9) -- rebuilt every active TTI
    gbr: Vec<GbrRuntime>,
    // O(1) GBR work probes: the earliest pending generation instant and
    // the total queued packet count across bearers. Maintained by
    // `add_gbr_bearer`/`serve_gbr`, recomputed from the restored bearer
    // list on resume (`next_gen`/queues only move inside `serve_gbr`,
    // so the cache cannot go stale between TTIs).
    gbr_min_next_gen: Option<Time>,
    gbr_queued_pkts: usize,
}

impl MacSchedStage {
    /// Build the configured scheduler and empty runtime state.
    pub fn new(cfg: &CellConfig, tti: Dur) -> MacSchedStage {
        MacSchedStage {
            scheduler: build_scheduler(cfg, tti),
            rates: TtiRates::default(),
            ues_tti: Vec::new(),
            had_data: Vec::new(),
            gbr: Vec::new(),
            gbr_min_next_gen: None,
            gbr_queued_pkts: 0,
        }
    }

    /// Fold `k` idle TTIs into the scheduler's long-term averages, so
    /// the next `allocate` sees the same decayed state a per-TTI
    /// zero-service update would have produced.
    pub fn fold_idle(&mut self, k: u64) {
        self.scheduler.on_idle(k);
    }

    /// Attach a dedicated GBR bearer (semi-persistent grants, outside
    /// the dynamic scheduler) — the Conversational class of Table 1.
    pub fn add_gbr_bearer(&mut self, now: Time, bearer: GbrBearer) {
        // Stagger the vocoder phase per bearer so packet generation is
        // not TTI-aligned (real talk spurts aren't).
        let phase = Dur::from_micros((self.gbr.len() as u64 * 7_301) % bearer.interval.as_micros());
        let next_gen = now + bearer.interval + phase;
        self.gbr_min_next_gen = Some(self.gbr_min_next_gen.map_or(next_gen, |m| m.min(next_gen)));
        self.gbr.push(GbrRuntime {
            bearer,
            next_gen,
            queue: std::collections::VecDeque::new(),
        });
    }

    /// Whether any GBR bearer has a due generation or queued packet.
    /// O(1): reads the cached earliest-generation/queued-count pair.
    pub fn gbr_has_work(&self, now: Time) -> bool {
        self.gbr_queued_pkts > 0 || self.gbr_min_next_gen.is_some_and(|t| t <= now)
    }

    /// Earliest future GBR packet generation, if any bearer is attached.
    /// O(1): reads the cached minimum.
    pub fn next_gbr_gen(&self) -> Option<Time> {
        self.gbr_min_next_gen
    }

    /// Bring the reusable rate matrix up to date for this TTI. A UE's
    /// row is rewritten only when its content version moved: a new CQI
    /// report was delivered, or the link went down/up (down rows are
    /// zeros, tagged with an odd version so they never alias live ones).
    pub fn refresh_rates(
        &mut self,
        cfg: &CellConfig,
        channel: &CellChannel,
        faults: &ActiveFaults,
    ) {
        let rates = &mut self.rates;
        let n_sb = cfg.channel.n_subbands;
        let n_ues = cfg.n_ues;
        let n_rbs = channel.n_rbs() as usize;
        if rates.n_sb != n_sb || rates.n_ues != n_ues || rates.rb_to_sb.len() != n_rbs {
            rates.per_ue_sb = vec![0.0; n_ues * n_sb];
            rates.rb_to_sb = (0..channel.n_rbs())
                .map(|rb| channel.subband_of_rb(rb))
                .collect();
            rates.n_sb = n_sb;
            rates.n_ues = n_ues;
            rates.versions = vec![u64::MAX; n_ues];
        }
        rates.reserved.clear();
        rates.reserved.resize(n_rbs, false);
        for u in 0..n_ues {
            let link_up = faults.link_up(u);
            let want = channel.report_version(u) * 2 + (!link_up) as u64;
            if rates.versions[u] == want {
                continue;
            }
            rates.versions[u] = want;
            let row = &mut rates.per_ue_sb[u * n_sb..(u + 1) * n_sb];
            if link_up {
                channel.fill_reported_rates(u, row);
            } else {
                row.fill(0.0);
            }
        }
    }

    /// Generate due GBR packets, reserve the RBs their delivery needs
    /// (lowest indices first — the SPS region), and deliver them with
    /// one-TTI air latency. GBR traffic rides robust low-MCS grants and
    /// is modelled loss-free; its latency distribution lands in
    /// `gbr_latency`.
    pub fn serve_gbr(&mut self, now: Time, tti: Dur, gbr_latency: &mut Percentiles) {
        if self.gbr.is_empty() {
            return;
        }
        let rates = &mut self.rates;
        let mut next_free_rb: usize = 0;
        let n_rbs = rates.rb_to_sb.len();
        let mut min_next: Option<Time> = None;
        let mut queued_pkts: usize = 0;
        for g in &mut self.gbr {
            while g.next_gen <= now {
                g.queue.push_back((g.next_gen, g.bearer.pkt_bytes));
                g.next_gen += g.bearer.interval;
            }
            while let Some(&(gen_at, bytes)) = g.queue.front() {
                // Rate of the bearer's UE on the next free RB.
                if next_free_rb >= n_rbs {
                    break; // SPS region exhausted this TTI
                }
                let sb = rates.rb_to_sb[next_free_rb];
                let rb_bits = rates.per_ue_sb[g.bearer.ue * rates.n_sb + sb];
                if rb_bits < 8.0 {
                    break; // UE out of range; retry next TTI
                }
                let rbs_needed = ((bytes as f64 * 8.0) / rb_bits).ceil() as usize;
                if next_free_rb + rbs_needed > n_rbs {
                    break;
                }
                for rb in next_free_rb..next_free_rb + rbs_needed {
                    rates.reserved[rb] = true;
                }
                next_free_rb += rbs_needed;
                g.queue.pop_front();
                // Delivered at the end of this TTI (one slot of air time
                // plus however long the packet waited for the slot).
                let delivered = now + tti;
                gbr_latency.push(delivered.saturating_since(gen_at).as_millis_f64());
            }
            min_next = Some(min_next.map_or(g.next_gen, |m| m.min(g.next_gen)));
            queued_pkts += g.queue.len();
        }
        self.gbr_min_next_gen = min_next;
        self.gbr_queued_pkts = queued_pkts;
    }

    /// Build the per-UE scheduler inputs (O(1) occupancy reads, oracle
    /// flow sizes for SRJF/PSS/CQA) and the per-UE had-data flags.
    pub fn build_ue_inputs(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        ingress: &IngressStage,
        faults: &ActiveFaults,
        ues: &mut [UeContext],
    ) {
        let out = &mut self.ues_tti;
        out.clear();
        out.reserve(cfg.n_ues);
        for (ue, ctx) in ues.iter_mut().enumerate() {
            // Prune completed flows from the per-UE active list.
            ctx.flows.retain(|&fi| !ingress.flow_done(fi));
            // A UE in radio-link failure or detached cannot be scheduled.
            if !faults.link_up(ue) {
                out.push(UeTti::idle());
                continue;
            }
            // O(1) occupancy reads — no BufferStatus materialisation.
            let (queued, head_priority, hol) = ctx.rlc_tx.occupancy();
            // Pending HARQ retransmissions keep a UE schedulable even
            // with an empty RLC buffer.
            let harq_pending = !ctx.harq.is_empty();
            if queued == 0 && !harq_pending {
                out.push(UeTti::idle());
                continue;
            }
            // Oracle inputs for SRJF/PSS/CQA (§6.2 grants them flow sizes).
            let mut min_remaining: Option<u64> = None;
            let mut has_qos = false;
            for &fi in &ctx.flows {
                let remaining = ingress.flow_remaining(fi);
                if remaining == 0 {
                    continue;
                }
                min_remaining = Some(min_remaining.map_or(remaining, |m| m.min(remaining)));
                if ingress.flow_is_short(fi) {
                    has_qos = true;
                }
            }
            out.push(UeTti {
                active: true,
                head_priority,
                queued_bytes: queued,
                oracle_min_remaining: min_remaining,
                hol_delay: hol.map_or(Dur::ZERO, |a| now.saturating_since(a)),
                oracle_has_qos_flow: has_qos,
            });
        }
        self.had_data.clear();
        self.had_data.extend(out.iter().map(|u| u.active));
    }

    /// Invoke the scheduler; returns the allocation plus (used, total)
    /// RB counts, with GBR-reserved RBs counted as used.
    pub fn allocate(&mut self, now: Time) -> (Allocation, u32, u32) {
        let alloc = self.scheduler.allocate(now, &self.ues_tti, &self.rates);
        let used_rbs = alloc.rb_to_ue.iter().filter(|a| a.is_some()).count()
            + self.rates.reserved.iter().filter(|&&r| r).count();
        let total_rbs = self.rates.rb_to_sb.len() as u32;
        (alloc, used_rbs as u32, total_rbs)
    }

    /// Feed the per-UE transmitted bits back into the scheduler's
    /// long-term averages.
    pub fn on_served(&mut self, transmitted: &[f64]) {
        self.scheduler.on_served(transmitted);
    }

    /// The current TTI's rate matrix.
    pub fn rates(&self) -> &TtiRates {
        &self.rates
    }

    /// Which UEs entered this TTI with queued or in-flight radio data.
    pub fn had_data(&self) -> &[bool] {
        &self.had_data
    }

    /// Serialize the stage (checkpointing): the scheduler's long-term
    /// state and the GBR runtime. The rate matrix and per-TTI scheduler
    /// inputs are not written: a fresh stage starts with
    /// `versions = u64::MAX` so the first `refresh_rates` after restore
    /// rebuilds every row from the restored channel's report versions,
    /// reproducing the exact values and version tags; `ues_tti` and
    /// `had_data` are rebuilt from scratch every active TTI.
    pub fn snap(&self, w: &mut SnapWriter) {
        self.scheduler.save_state(w);
        w.seq(self.gbr.iter(), |w, g| {
            w.usize(g.bearer.ue);
            w.u32(g.bearer.pkt_bytes);
            w.dur(g.bearer.interval);
            w.time(g.next_gen);
            w.seq(g.queue.iter(), |w, &(at, bytes)| {
                w.time(at);
                w.u32(bytes);
            });
        });
    }

    /// Restore from [`MacSchedStage::snap`] output. GBR bearers are
    /// attached at runtime (not part of [`CellConfig`]), so the full
    /// bearer definitions travel with the snapshot.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.scheduler.load_state(r)?;
        self.gbr = r.seq(|r| {
            let bearer = GbrBearer {
                ue: r.usize()?,
                pkt_bytes: r.u32()?,
                interval: r.dur()?,
            };
            let next_gen = r.time()?;
            let queue = r.seq(|r| Ok((r.time()?, r.u32()?)))?;
            Ok(GbrRuntime {
                bearer,
                next_gen,
                queue: queue.into(),
            })
        })?;
        // Rebuild the O(1) work-probe caches from the restored bearers
        // (derived state; not part of the wire format).
        self.gbr_min_next_gen = self.gbr.iter().map(|g| g.next_gen).min();
        self.gbr_queued_pkts = self.gbr.iter().map(|g| g.queue.len()).sum();
        Ok(())
    }
}

fn build_scheduler(cfg: &CellConfig, tti: Dur) -> Box<dyn Scheduler + Send> {
    let n = cfg.n_ues;
    match cfg.scheduler {
        SchedulerKind::Pf => Box::new(PfScheduler::with_tf(n, cfg.tf, tti)),
        SchedulerKind::Mt => Box::new(MtScheduler::default()),
        SchedulerKind::Rr => Box::new(RrScheduler::default()),
        SchedulerKind::Bet => Box::new(outran_mac::BetScheduler::new(n, cfg.tf, tti)),
        SchedulerKind::Mlwdf => Box::new(outran_mac::MlwdfScheduler::with_defaults(n, cfg.tf, tti)),
        SchedulerKind::Srjf => Box::new(SrjfScheduler::with_mode(cfg.srjf_mode)),
        SchedulerKind::Pss => Box::new(PssScheduler::new(n, cfg.tf, tti)),
        SchedulerKind::Cqa => Box::new(CqaScheduler::new(n, cfg.tf, tti, QosParams::default())),
        SchedulerKind::OutRan => Box::new(OutRanScheduler::over_pf(
            n,
            cfg.tf,
            tti,
            OutRanScheduler::DEFAULT_EPSILON,
        )),
        SchedulerKind::OutRanEps(e) => Box::new(OutRanScheduler::over_pf(n, cfg.tf, tti, e)),
        SchedulerKind::OutRanOverMt(e) => Box::new(OutRanScheduler::over_mt(e)),
        SchedulerKind::StrictMlfq => Box::new(OutRanScheduler::over_pf(n, cfg.tf, tti, 1.0)),
    }
}
