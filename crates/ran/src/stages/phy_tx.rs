//! Stage 4 — **PHY transmit**: channel evolution, HARQ and the air
//! interface.
//!
//! Owns the cell channel, the main simulation RNG and the per-UE HARQ
//! accounting. Each active TTI it serves the MAC allocation: pulls RLC
//! data per (UE, subband) transport-block group, draws HARQ/residual
//! errors, and emits the surviving payloads as an *ordered batch* of
//! [`AirDelivery`] messages for the delivery stage. Deferring delivery
//! out of the transmit loop is bit-identical to the former inline
//! delivery: this stage draws every random number, the delivery stage
//! draws none, and nothing the transmit loop reads (RLC tx entities,
//! channel state, HARQ queues) is mutated by delivery effects (receive
//! windows, TCP receivers, future-time ACK/STATUS events).

use crate::config::CellConfig;
use crate::stages::{
    AirDelivery, HarqPayload, HousekeepingStage, ObserverHost, RlcTx, StageId, TtiRates, UeContext,
};
use outran_faults::ActiveFaults;
use outran_mac::Allocation;
use outran_phy::channel::CellChannel;
use outran_rlc::sdu::RlcSegment;
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::{Dur, Rng, Time};

/// The PHY transmit stage (see module docs).
pub struct PhyTxStage {
    channel: CellChannel,
    rng: Rng,
    harq_wasted_tbs: u64,
    residual_losses: u64,
    harq_held_bytes: u64,
    dropped_bytes: u64,
    // Reusable per-TTI buffers (no per-tick allocation); drained or
    // rewritten inside every active TTI, never read across a boundary.
    group_bits: Vec<f64>,  // outran-lint: allow(D9) -- per-TTI scratch
    fresh_ok: Vec<bool>,   // outran-lint: allow(D9) -- per-TTI scratch
    segs: Vec<RlcSegment>, // outran-lint: allow(D9) -- per-TTI scratch
    transmitted: Vec<f64>, // outran-lint: allow(D9) -- per-TTI scratch
    delivered: Vec<f64>,   // outran-lint: allow(D9) -- per-TTI scratch
    deliveries: Vec<AirDelivery>,
}

impl PhyTxStage {
    /// Build the channel and fork the main simulation RNG from `root`.
    pub fn new(cfg: &CellConfig, root: &Rng) -> PhyTxStage {
        PhyTxStage {
            channel: CellChannel::new(cfg.channel, cfg.n_ues, root),
            rng: root.fork(0xCE11),
            harq_wasted_tbs: 0,
            residual_losses: 0,
            harq_held_bytes: 0,
            dropped_bytes: 0,
            group_bits: Vec::new(),
            fresh_ok: Vec::new(),
            segs: Vec::new(),
            transmitted: Vec::new(),
            delivered: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    /// Channel evolution (CQI staleness/corruption pushed first).
    /// `advance_to` composes any idle gap since the previous active TTI
    /// into one distribution-preserving jump; with no gap it is the
    /// plain per-TTI advance.
    pub fn advance_channel(&mut self, now: Time, n_ues: usize, faults: &ActiveFaults) {
        for ue in 0..n_ues {
            self.channel.set_cqi_frozen(ue, faults.cqi_frozen(ue));
            self.channel.set_cqi_corrupt(ue, faults.cqi_corrupted(ue));
        }
        self.channel.advance_to(now);
    }

    /// Serve the allocation: pull RLC data per (UE, subband) group, draw
    /// HARQ/residual errors, and append surviving payloads to the
    /// delivery batch in transmission order.
    ///
    /// Two air-interface error models are supported:
    /// * **folded HARQ** (default, `cfg.harq = None`): a failed TB is
    ///   never pulled from RLC — retransmission happens implicitly when
    ///   the data is re-served later (wasted airtime, added delay);
    /// * **explicit HARQ** (`cfg.harq = Some(..)`): failed TBs carry
    ///   their payload into per-UE HARQ processes, are retransmitted
    ///   after the HARQ RTT with chase-combining gain, and are dropped
    ///   to the residual-loss path after `max_tx` attempts. Due
    ///   retransmissions are served ahead of fresh data.
    #[allow(clippy::too_many_arguments)]
    pub fn transmit(
        &mut self,
        now: Time,
        tti: Dur,
        cfg: &CellConfig,
        alloc: &Allocation,
        rates: &TtiRates,
        ues: &mut [UeContext],
        hk: &mut HousekeepingStage,
        obs: &mut ObserverHost,
    ) {
        let n_ues = cfg.n_ues;
        let n_sb = cfg.channel.n_subbands;
        let group_bits = &mut self.group_bits;
        group_bits.clear();
        group_bits.resize(n_ues * n_sb, 0.0);
        for (rb, assigned) in alloc.rb_to_ue.iter().enumerate() {
            if let Some(ue) = assigned {
                let u = *ue as usize;
                let sb = rates.rb_to_sb[rb];
                group_bits[u * n_sb + sb] += rates.per_ue_sb[u * n_sb + sb];
            }
        }
        self.transmitted.clear();
        self.transmitted.resize(n_ues, 0.0);
        self.delivered.clear();
        self.delivered.resize(n_ues, 0.0);
        let explicit_harq = cfg.harq.is_some();
        // A loss-spike window adds to the configured residual loss.
        let eff_loss = (cfg.residual_loss + hk.faults().extra_loss).min(1.0);
        let spiking = hk.faults().extra_loss > 0.0;
        for (ue, ctx) in ues.iter_mut().enumerate() {
            if explicit_harq {
                // Serve due HARQ retransmissions ahead of fresh data,
                // drawing on the UE's *whole* TTI grant (a retransmitted
                // TB is not tied to the subband split of this TTI).
                let mut total: f64 = (0..n_sb).map(|sb| group_bits[ue * n_sb + sb]).sum();
                while let Some(tb) = ctx.harq.pop_due(now, total) {
                    total -= tb.bits;
                    self.transmitted[ue] += tb.bits;
                    // Charge the airtime against the fullest groups.
                    let mut owed = tb.bits;
                    while owed > 0.0 {
                        let Some(max_sb) = (0..n_sb)
                            .max_by(|&a, &b| {
                                group_bits[ue * n_sb + a].total_cmp(&group_bits[ue * n_sb + b])
                            })
                            .filter(|&sb| group_bits[ue * n_sb + sb] > 0.0)
                        else {
                            break;
                        };
                        let take = owed.min(group_bits[ue * n_sb + max_sb]);
                        group_bits[ue * n_sb + max_sb] -= take;
                        owed -= take;
                    }
                    let gain = tb.combining_gain_db(ctx.harq.config());
                    // Retransmissions frequency-hop (as LTE HARQ does),
                    // decorrelating the retry from the fade that killed
                    // the original transmission.
                    let sb = (tb.subband + tb.attempts as usize) % n_sb;
                    let pb = tb.payload.bytes;
                    if self.channel.transmission_succeeds_with_gain(ue, sb, gain) {
                        self.delivered[ue] += tb.bits;
                        self.harq_held_bytes -= pb;
                        self.deliveries.push(AirDelivery::Harq {
                            ue,
                            payload: tb.payload,
                        });
                    } else if ctx.harq.on_failure(tb, now, tti).is_some() {
                        // Block exhausted its attempts: the payload is
                        // lost to the upper layers.
                        self.residual_losses += 1;
                        self.harq_held_bytes -= pb;
                        self.dropped_bytes += pb;
                    }
                }
            }
            // Fresh transmissions: outcomes for the whole UE are drawn in
            // one batched channel pass (after the HARQ retransmissions
            // above, which share the UE's RNG stream, and after they have
            // charged their airtime against `group_bits`). Draw order is
            // identical to per-subband calls inside the loop below.
            self.fresh_ok.clear();
            self.fresh_ok.resize(n_sb, false);
            self.channel.fresh_outcomes(
                ue,
                &group_bits[ue * n_sb..(ue + 1) * n_sb],
                8.0,
                &mut self.fresh_ok,
            );
            for sb in 0..n_sb {
                let bits = group_bits[ue * n_sb + sb];
                if bits < 8.0 {
                    continue;
                }
                let budget_bits = bits;
                // Fresh transmission (pre-drawn above).
                let fresh_ok = self.fresh_ok[sb];
                if !explicit_harq && !fresh_ok {
                    // Folded model: the TB would need retransmission; we
                    // model it as wasted airtime with the data left queued.
                    self.harq_wasted_tbs += 1;
                    continue;
                }
                let budget = (budget_bits / 8.0).floor() as u64;
                match &mut ctx.rlc_tx {
                    RlcTx::Um(um) => {
                        self.segs.clear();
                        obs.enter(StageId::RlcDown);
                        let used = um.pull_into(&mut self.segs, budget);
                        obs.exit(StageId::RlcDown);
                        if self.segs.is_empty() {
                            continue;
                        }
                        self.transmitted[ue] += used as f64 * 8.0;
                        if !fresh_ok {
                            // Explicit HARQ: the whole TB awaits retx.
                            self.harq_wasted_tbs += 1;
                            let payload = HarqPayload::um(std::mem::take(&mut self.segs));
                            let pb = payload.bytes;
                            if ctx
                                .harq
                                .on_failure(
                                    outran_phy::harq::HarqTb {
                                        payload,
                                        bits: used as f64 * 8.0,
                                        subband: sb,
                                        attempts: 1,
                                    },
                                    now,
                                    tti,
                                )
                                .is_some()
                            {
                                self.residual_losses += 1;
                                self.dropped_bytes += pb;
                            } else {
                                self.harq_held_bytes += pb;
                            }
                            continue;
                        }
                        for seg in self.segs.drain(..) {
                            // Residual (post-HARQ) loss is per segment:
                            // isolated holes that fast retransmit can
                            // repair, not whole-TB burst losses.
                            if self.rng.chance(eff_loss) {
                                self.residual_losses += 1;
                                self.dropped_bytes += seg.len as u64;
                                if spiking {
                                    hk.note_spiked_loss();
                                }
                                continue;
                            }
                            self.delivered[ue] += seg.len as f64 * 8.0;
                            self.deliveries.push(AirDelivery::UmSeg { ue, seg });
                        }
                    }
                    RlcTx::Am(am) => {
                        obs.enter(StageId::RlcDown);
                        let (pdus, _ctrl, used) = am.pull(budget, now);
                        obs.exit(StageId::RlcDown);
                        if used == 0 {
                            continue;
                        }
                        self.transmitted[ue] += used as f64 * 8.0;
                        if !fresh_ok {
                            self.harq_wasted_tbs += 1;
                            if ctx
                                .harq
                                .on_failure(
                                    outran_phy::harq::HarqTb {
                                        payload: HarqPayload::am(pdus),
                                        bits: used as f64 * 8.0,
                                        subband: sb,
                                        attempts: 1,
                                    },
                                    now,
                                    tti,
                                )
                                .is_some()
                            {
                                // AM recovers via NACK once the poll
                                // machinery notices the gap.
                                self.residual_losses += 1;
                            }
                            continue;
                        }
                        if self.rng.chance(eff_loss) {
                            self.residual_losses += 1;
                            if spiking {
                                hk.note_spiked_loss();
                            }
                            continue; // PDUs lost; AM will NACK-recover
                        }
                        self.delivered[ue] += used as f64 * 8.0;
                        self.deliveries.push(AirDelivery::AmPdus { ue, pdus });
                    }
                }
            }
        }
    }

    /// Hand over this TTI's ordered delivery batch (allocation is
    /// returned via [`PhyTxStage::restore_deliveries`] for reuse).
    pub fn take_deliveries(&mut self) -> Vec<AirDelivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Return the drained batch vector so its allocation is reused.
    pub fn restore_deliveries(&mut self, mut batch: Vec<AirDelivery>) {
        batch.clear();
        self.deliveries = batch;
    }

    /// Book a reestablishment flush of `bytes` held in HARQ processes
    /// (housekeeping clears the queues; the ledger terms live here).
    pub fn forget_harq(&mut self, bytes: u64) {
        self.harq_held_bytes -= bytes;
        self.dropped_bytes += bytes;
    }

    /// The PHY channel (read-only).
    pub fn channel(&self) -> &CellChannel {
        &self.channel
    }

    /// Per-UE bits put on the air this TTI.
    pub fn transmitted(&self) -> &[f64] {
        &self.transmitted
    }

    /// Per-UE bits that survived the air interface this TTI.
    pub fn delivered(&self) -> &[f64] {
        &self.delivered
    }

    /// Transport blocks wasted by (HARQ-recovered) errors.
    pub fn harq_wasted_tbs(&self) -> u64 {
        self.harq_wasted_tbs
    }

    /// Residual-loss events.
    pub fn residual_losses(&self) -> u64 {
        self.residual_losses
    }

    /// Bytes currently held in HARQ processes (ledger term).
    pub fn harq_held_bytes(&self) -> u64 {
        self.harq_held_bytes
    }

    /// Bytes terminally dropped at the air interface (ledger term).
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Serialize the stage (checkpointing): the full channel state, the
    /// main simulation RNG and the air-interface counters. The per-TTI
    /// scratch buffers (`group_bits`, `segs`, `transmitted`, `delivered`,
    /// `deliveries`) are drained/rewritten inside every active TTI and
    /// never read across a TTI boundary, so they are not written.
    pub fn snap(&self, w: &mut SnapWriter) {
        debug_assert!(
            self.deliveries.is_empty(),
            "checkpointing mid-TTI: delivery batch not drained"
        );
        self.channel.snap(w);
        self.rng.snap(w);
        w.u64(self.harq_wasted_tbs);
        w.u64(self.residual_losses);
        w.u64(self.harq_held_bytes);
        w.u64(self.dropped_bytes);
    }

    /// Restore from [`PhyTxStage::snap`] output. The scratch buffers are
    /// left empty, matching the between-TTI state at snapshot time.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.channel.load_snap(r)?;
        self.rng = Rng::unsnap(r)?;
        self.harq_wasted_tbs = r.u64()?;
        self.residual_losses = r.u64()?;
        self.harq_held_bytes = r.u64()?;
        self.dropped_bytes = r.u64()?;
        Ok(())
    }
}
