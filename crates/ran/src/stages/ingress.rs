//! Stage 1 — **ingress**: the server/CN side of the pipeline.
//!
//! Owns the TCP endpoints, the discrete event queue (flow arrivals,
//! packet/ACK propagation, AM STATUS PDUs), the RTO and stalled-flow
//! watchdog scans, and the CN-side terms of the byte-conservation
//! ledger. Downlink packets that survive the CN link are handed to the
//! RLC-down stage as typed [`SduIngress`] messages; the delivery stage
//! hands reassembled SDUs back via [`IngressStage::accept_sdu`].

use crate::config::CellConfig;
use crate::stages::{
    HousekeepingStage, ObserverHost, RlcDownStage, SduIngress, StageId, UeContext,
};
use outran_pdcp::FiveTuple;
use outran_rlc::am::StatusPdu;
use outran_rlc::um::DeliveredSdu;
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::{Dur, EventQueue, Time};
use outran_transport::{TcpReceiver, TcpSender};

/// A completed-flow record emitted by [`IngressStage::accept_sdu`]; the
/// delivery stage folds it into the cell's FCT collector.
pub use crate::config::FlowDone;

enum Ev {
    Arrival { flow: usize },
    PktAtEnb { flow: usize, seq: u64, len: u32 },
    AckAtServer { flow: usize, cum: u64 },
    StatusAtEnb { ue: usize, status: StatusPdu },
}

struct FlowRt {
    ue: usize,
    size: u64,
    spawn: Time,
    tuple: FiveTuple,
    sender: TcpSender,
    receiver: TcpReceiver,
    started: bool,
    done: bool,
    /// Watchdog state: highest cumulative ACK seen, and when it moved.
    last_cum: u64,
    last_progress: Time,
}

/// The ingress stage (see module docs).
pub struct IngressStage {
    flows: Vec<FlowRt>,
    events: EventQueue<Ev>,
    /// Started-but-incomplete flows — the O(1) core of the idle test.
    open_flows: u64,
    // CN-side byte-conservation ledger terms.
    injected_bytes: u64,
    cn_in_flight_bytes: u64,
    dropped_bytes: u64,
}

impl IngressStage {
    /// Fresh stage with no flows.
    pub fn new() -> IngressStage {
        IngressStage {
            flows: Vec::new(),
            events: EventQueue::new(),
            open_flows: 0,
            injected_bytes: 0,
            cn_in_flight_bytes: 0,
            dropped_bytes: 0,
        }
    }

    /// Register a flow of `bytes` toward `ue`, starting at the server at
    /// `at` (≥ now). `conn` groups flows onto a shared five-tuple.
    #[allow(clippy::too_many_arguments)]
    pub fn schedule_flow(
        &mut self,
        now: Time,
        tti: Dur,
        cfg: &CellConfig,
        at: Time,
        ue: usize,
        bytes: u64,
        conn: Option<u64>,
    ) -> usize {
        let id = self.flows.len();
        let tuple = match conn {
            Some(c) => FiveTuple::simulated(c, ue as u16),
            None => FiveTuple::simulated(1_000_000 + id as u64, ue as u16),
        };
        // The connection handshake already sampled one wired+air RTT.
        let handshake_rtt =
            Dur(2 * (cfg.cn_delay.as_nanos() + cfg.ul_air_delay.as_nanos()) + tti.as_nanos() * 4);
        self.flows.push(FlowRt {
            ue,
            size: bytes,
            spawn: at,
            tuple,
            sender: TcpSender::with_initial_rtt(cfg.tcp, bytes, handshake_rtt),
            receiver: TcpReceiver::new(bytes),
            started: false,
            done: false,
            last_cum: 0,
            last_progress: at,
        });
        self.events.schedule(at.max(now), Ev::Arrival { flow: id });
        id
    }

    /// Per-TTI ingress pass: drain due events (arrivals, packets, ACKs,
    /// STATUS), then the RTO scan, then the stalled-flow watchdog. The
    /// CN link faults act here: an outage drops every traversing packet,
    /// a degrade window loses them with probability `cn_loss`. Packets
    /// that reach the xNodeB cross into the RLC-down stage (bracketed
    /// for the observer, since that work belongs to the RLC layer).
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        ues: &mut [UeContext],
        rlc: &mut RlcDownStage,
        hk: &mut HousekeepingStage,
        obs: &mut ObserverHost,
    ) {
        // 1. Event processing.
        while let Some((_, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::Arrival { flow } => {
                    self.flows[flow].started = true;
                    self.open_flows += 1;
                    self.server_emit(now, cfg, hk, flow);
                }
                Ev::PktAtEnb { flow, seq, len } => {
                    self.cn_in_flight_bytes -= len as u64;
                    if hk.cn_loses_packet() {
                        self.dropped_bytes += len as u64;
                        hk.note_cn_dropped_data(len as u64);
                    } else {
                        self.on_pkt_at_enb(now, ues, rlc, obs, flow, seq, len);
                    }
                }
                Ev::AckAtServer { flow, cum } => {
                    if hk.cn_loses_packet() {
                        hk.note_cn_dropped_ack();
                    } else {
                        let f = &mut self.flows[flow];
                        f.sender.on_ack(now, cum);
                        self.server_emit(now, cfg, hk, flow);
                    }
                }
                Ev::StatusAtEnb { ue, status } => {
                    obs.enter(StageId::RlcDown);
                    rlc.on_status(&mut ues[ue], &status);
                    obs.exit(StageId::RlcDown);
                }
            }
        }

        // 2. RTO scan.
        for flow in 0..self.flows.len() {
            let f = &self.flows[flow];
            if f.done || !f.started {
                continue;
            }
            if let Some(deadline) = f.sender.rto_deadline() {
                if deadline <= now {
                    self.flows[flow].sender.on_rto(now);
                    self.server_emit(now, cfg, hk, flow);
                }
            }
        }

        // 2b. Stalled-flow watchdog: a started flow whose cumulative ACK
        // has not moved for the configured interval gets a forced TCP
        // timeout (go-back-N refill) — the recovery of last resort when
        // every in-flight copy of a segment was lost to faults.
        if let Some(stall) = cfg.watchdog {
            for flow in 0..self.flows.len() {
                let kick = {
                    let f = &mut self.flows[flow];
                    if f.done || !f.started {
                        continue;
                    }
                    let cum = f.receiver.cum();
                    if cum > f.last_cum {
                        f.last_cum = cum;
                        f.last_progress = now;
                        false
                    } else {
                        now.saturating_since(f.last_progress) >= stall
                    }
                };
                if kick && hk.faults().link_up(self.flows[flow].ue) {
                    self.flows[flow].last_progress = now;
                    self.flows[flow].sender.on_rto(now);
                    hk.note_watchdog_kick();
                    self.server_emit(now, cfg, hk, flow);
                }
            }
        }
    }

    /// Let the server push whatever the flow's window allows.
    fn server_emit(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        hk: &mut HousekeepingStage,
        flow: usize,
    ) {
        let segs = {
            let f = &mut self.flows[flow];
            if f.done {
                return;
            }
            f.sender.emit(now)
        };
        let delay = cfg.cn_delay + hk.cn_extra_delay();
        let degraded = hk.cn_extra_delay() > Dur::ZERO;
        for seg in segs {
            self.injected_bytes += seg.len as u64;
            self.cn_in_flight_bytes += seg.len as u64;
            if degraded {
                hk.note_cn_delayed_pkt();
            }
            self.events.schedule(
                now + delay,
                Ev::PktAtEnb {
                    flow,
                    seq: seg.seq,
                    len: seg.len,
                },
            );
        }
    }

    /// A downlink packet arrives at the xNodeB: cross into RLC-down.
    #[allow(clippy::too_many_arguments)]
    fn on_pkt_at_enb(
        &mut self,
        now: Time,
        ues: &mut [UeContext],
        rlc: &mut RlcDownStage,
        obs: &mut ObserverHost,
        flow: usize,
        seq: u64,
        len: u32,
    ) {
        let (ue, tuple, size) = {
            let f = &self.flows[flow];
            (f.ue, f.tuple, f.size)
        };
        if self.flows[flow].done {
            // Stale retransmission of a completed flow: terminal for the
            // byte ledger.
            self.dropped_bytes += len as u64;
            return;
        }
        let msg = SduIngress {
            flow,
            ue,
            tuple,
            seq,
            len,
            oracle_remaining: size.saturating_sub(seq),
        };
        obs.enter(StageId::RlcDown);
        rlc.ingest(now, msg, &mut ues[ue]);
        obs.exit(StageId::RlcDown);
    }

    /// Deliver one reassembled SDU into the flow's TCP receiver and
    /// schedule the cumulative ACK back to the server; returns the
    /// completion record when this SDU finished the flow.
    pub fn accept_sdu(&mut self, now: Time, ul_delay: Dur, d: &DeliveredSdu) -> Option<FlowDone> {
        let flow = d.flow_id as usize;
        let f = &mut self.flows[flow];
        if f.done {
            return None;
        }
        let cum = f.receiver.on_segment(d.seq, d.len);
        self.events
            .schedule(now + ul_delay, Ev::AckAtServer { flow, cum });
        if f.receiver.complete() {
            f.done = true;
            self.open_flows -= 1;
            let dur = now.saturating_since(f.spawn);
            return Some(FlowDone {
                id: flow,
                ue: f.ue,
                bytes: f.size,
                spawn: f.spawn,
                fct: dur,
            });
        }
        None
    }

    /// Schedule an AM STATUS PDU's uplink arrival at the xNodeB.
    pub fn schedule_status(&mut self, at: Time, ue: usize, status: StatusPdu) {
        self.events.schedule(at, Ev::StatusAtEnb { ue, status });
    }

    // ---- read-side accessors ------------------------------------------

    /// Started-but-incomplete flow count.
    pub fn open_flows(&self) -> u64 {
        self.open_flows
    }

    /// Instant of the earliest queued event, if any.
    pub fn peek_event_time(&self) -> Option<Time> {
        self.events.peek_time()
    }

    /// Whether flow `fi` has completed.
    pub fn flow_done(&self, fi: usize) -> bool {
        self.flows[fi].done
    }

    /// Whether flow `fi` is short (≤ 10 kB — the QoS-oracle class).
    pub fn flow_is_short(&self, fi: usize) -> bool {
        self.flows[fi].size <= 10_000
    }

    /// Bytes of flow `fi` not yet cumulatively ACKed.
    pub fn flow_remaining(&self, fi: usize) -> u64 {
        let f = &self.flows[fi];
        f.size.saturating_sub(f.receiver.cum())
    }

    /// Total flows registered.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of completed flows.
    pub fn n_completed(&self) -> usize {
        self.flows.iter().filter(|f| f.done).count()
    }

    /// The most recent RTT observed by any flow of `ue`.
    pub fn last_rtt_of_ue(&self, ue: usize) -> Option<Dur> {
        self.flows
            .iter()
            .filter(|f| f.ue == ue)
            .filter_map(|f| f.sender.last_rtt)
            .next_back()
    }

    /// Mean of the last RTT samples across flows.
    pub fn mean_last_rtt_ms(&self) -> f64 {
        let rtts: Vec<f64> = self
            .flows
            .iter()
            .filter_map(|f| f.sender.last_rtt)
            .map(|d| d.as_millis_f64())
            .collect();
        if rtts.is_empty() {
            f64::NAN
        } else {
            rtts.iter().sum::<f64>() / rtts.len() as f64
        }
    }

    /// Bytes injected by the servers (byte-conservation ledger term).
    pub fn injected_bytes(&self) -> u64 {
        self.injected_bytes
    }

    /// Bytes currently traversing the CN link (ledger term).
    pub fn cn_in_flight_bytes(&self) -> u64 {
        self.cn_in_flight_bytes
    }

    /// Bytes terminally dropped at ingress (CN loss, stale packets).
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Serialize the stage (checkpointing): every flow's TCP endpoints
    /// and watchdog state plus the discrete event queue (the queue's
    /// sequence counter travels too, so restored tie-breaking is exact).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.flows.iter(), |w, f| {
            w.usize(f.ue);
            w.u64(f.size);
            w.time(f.spawn);
            f.tuple.snap(w);
            f.sender.snap(w);
            f.receiver.snap(w);
            w.bool(f.started);
            w.bool(f.done);
            w.u64(f.last_cum);
            w.time(f.last_progress);
        });
        self.events.snap_with(w, |w, ev| match ev {
            Ev::Arrival { flow } => {
                w.u8(0);
                w.usize(*flow);
            }
            Ev::PktAtEnb { flow, seq, len } => {
                w.u8(1);
                w.usize(*flow);
                w.u64(*seq);
                w.u32(*len);
            }
            Ev::AckAtServer { flow, cum } => {
                w.u8(2);
                w.usize(*flow);
                w.u64(*cum);
            }
            Ev::StatusAtEnb { ue, status } => {
                w.u8(3);
                w.usize(*ue);
                status.snap(w);
            }
        });
        w.u64(self.open_flows);
        w.u64(self.injected_bytes);
        w.u64(self.cn_in_flight_bytes);
        w.u64(self.dropped_bytes);
    }

    /// Restore from [`IngressStage::snap`] output. TCP senders are
    /// rebuilt against `cfg.tcp` (the endpoint configuration is not part
    /// of the snapshot).
    pub fn load_snap(&mut self, cfg: &CellConfig, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.flows = r.seq(|r| {
            Ok(FlowRt {
                ue: r.usize()?,
                size: r.u64()?,
                spawn: r.time()?,
                tuple: FiveTuple::unsnap(r)?,
                sender: TcpSender::unsnap(cfg.tcp, r)?,
                receiver: TcpReceiver::unsnap(r)?,
                started: r.bool()?,
                done: r.bool()?,
                last_cum: r.u64()?,
                last_progress: r.time()?,
            })
        })?;
        self.events = EventQueue::unsnap_with(r, |r| {
            Ok(match r.u8()? {
                0 => Ev::Arrival { flow: r.usize()? },
                1 => Ev::PktAtEnb {
                    flow: r.usize()?,
                    seq: r.u64()?,
                    len: r.u32()?,
                },
                2 => Ev::AckAtServer {
                    flow: r.usize()?,
                    cum: r.u64()?,
                },
                3 => Ev::StatusAtEnb {
                    ue: r.usize()?,
                    status: StatusPdu::unsnap(r)?,
                },
                _ => return Err(SnapError::Malformed("unknown ingress event tag")),
            })
        })?;
        self.open_flows = r.u64()?;
        self.injected_bytes = r.u64()?;
        self.cn_in_flight_bytes = r.u64()?;
        self.dropped_bytes = r.u64()?;
        Ok(())
    }

    /// Dump incomplete-flow diagnostics (debug only).
    pub fn debug_dump_stalled(&self) {
        for (i, f) in self.flows.iter().enumerate() {
            if !f.done {
                println!(
                    "flow {i} ue {} size {} cum {} snd_una {} in_flight {} rto {:?}",
                    f.ue,
                    f.size,
                    f.receiver.cum(),
                    f.sender.in_flight(),
                    f.sender.in_flight(),
                    f.sender.rto_deadline()
                );
            }
        }
    }
}

impl Default for IngressStage {
    fn default() -> Self {
        IngressStage::new()
    }
}
