//! Stage 2 — **RLC down**: PDCP inspection and RLC SDU admission.
//!
//! Receives [`SduIngress`] messages from the
//! ingress stage, runs PDCP header inspection + MLFQ marking on the
//! destination UE's flow table (§4.2), applies the SRJF oracle's
//! priority override when configured, and writes the SDU into the UE's
//! RLC transmit entity — counting buffer drops for the ledger.

use crate::config::CellConfig;
use crate::stages::{SduIngress, UeContext};
use outran_rlc::am::StatusPdu;
use outran_rlc::sdu::RlcSdu;
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::Time;

/// The RLC-down stage (see module docs).
pub struct RlcDownStage {
    next_sdu_id: u64,
    buffer_drops: u64,
    dropped_bytes: u64,
    /// Whether the SRJF oracle overrides PDCP's MLFQ marking with a
    /// priority quantized from the flow's remaining size.
    oracle_priority: bool, // outran-lint: allow(D9) -- re-derived from CellConfig
}

impl RlcDownStage {
    /// Build from the cell configuration.
    pub fn new(cfg: &CellConfig) -> RlcDownStage {
        RlcDownStage {
            next_sdu_id: 0,
            buffer_drops: 0,
            dropped_bytes: 0,
            oracle_priority: cfg.scheduler.uses_oracle_priority(),
        }
    }

    /// Admit one downlink packet into `ue`'s RLC entity: PDCP flow-table
    /// observation (always — it carries the per-flow sent-bytes state),
    /// oracle override, active-flow registration, SDU write.
    pub fn ingest(&mut self, now: Time, msg: SduIngress, ue: &mut UeContext) {
        let mut prio = ue.flow_table.observe(msg.tuple, msg.len, now);
        if self.oracle_priority {
            prio = srjf_oracle_priority(msg.oracle_remaining);
        }
        if ue.flows.iter().all(|&x| x != msg.flow) {
            ue.flows.push(msg.flow);
        }
        let sdu = RlcSdu {
            id: self.next_sdu_id,
            flow_id: msg.flow as u64,
            tuple: msg.tuple,
            len: msg.len,
            offset: 0,
            priority: prio,
            arrival: now,
            seq: msg.seq,
        };
        self.next_sdu_id += 1;
        if let Err(dropped) = ue.rlc_tx.write_sdu(sdu) {
            // Either the incoming SDU (drop-tail) or a worse-priority
            // victim (push-out) was discarded: TCP sees the loss.
            self.buffer_drops += 1;
            self.dropped_bytes += dropped.remaining() as u64;
        }
    }

    /// Feed an uplink AM STATUS PDU into `ue`'s AM transmit entity.
    pub fn on_status(&mut self, ue: &mut UeContext, status: &StatusPdu) {
        if let crate::stages::RlcTx::Am(am) = &mut ue.rlc_tx {
            am.on_status(status);
        }
    }

    /// SDUs dropped at full RLC buffers.
    pub fn buffer_drops(&self) -> u64 {
        self.buffer_drops
    }

    /// Bytes terminally dropped by RLC admission (ledger term).
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Serialize the stage (checkpointing). `oracle_priority` is
    /// config-derived and not written.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.next_sdu_id);
        w.u64(self.buffer_drops);
        w.u64(self.dropped_bytes);
    }

    /// Restore from [`RlcDownStage::snap`] output, keeping the
    /// config-derived oracle flag.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_sdu_id = r.u64()?;
        self.buffer_drops = r.u64()?;
        self.dropped_bytes = r.u64()?;
        Ok(())
    }
}

/// Quantize a flow's remaining size into one of 16 strict-priority
/// levels (log₂ spacing from 1 KB): the SRJF oracle's intra-UE ordering.
fn srjf_oracle_priority(remaining: u64) -> outran_pdcp::Priority {
    let level = (remaining / 1024 + 1).ilog2().min(15) as u8;
    outran_pdcp::Priority(level)
}
