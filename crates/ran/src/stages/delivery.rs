//! Stage 5 — **delivery**: UE-side reassembly and flow completion.
//!
//! Replays the PHY stage's ordered [`AirDelivery`] batch: RLC receive
//! windows (UM reassembly / AM in-order delivery + STATUS), queue-delay
//! metrics, the delivery-order audit, and the hand-back of reassembled
//! SDUs to the ingress stage's TCP receivers — recording FCTs for flows
//! that complete. Draws no randomness (see the bit-identity argument in
//! [`crate::stages::phy_tx`]).

use crate::config::{CellConfig, FlowDone};
use crate::stages::{AirDelivery, HarqData, HousekeepingStage, IngressStage, RlcRx, UeContext};
use outran_metrics::{CellMetrics, FctCollector};
use outran_rlc::am::AmPdu;
use outran_rlc::sdu::RlcSegment;
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::Time;

/// The delivery stage (see module docs).
#[derive(Default)]
pub struct DeliveryStage {
    completions: Vec<FlowDone>,
    delivered_bytes: u64,
}

impl DeliveryStage {
    /// Fresh stage.
    pub fn new() -> DeliveryStage {
        DeliveryStage::default()
    }

    /// Replay one TTI's delivery batch in transmission order.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        batch: &mut Vec<AirDelivery>,
        ues: &mut [UeContext],
        ingress: &mut IngressStage,
        hk: &mut HousekeepingStage,
        fct: &mut FctCollector,
        metrics: &mut CellMetrics,
    ) {
        for item in batch.drain(..) {
            match item {
                AirDelivery::UmSeg { ue, seg } => {
                    self.um_segment(now, cfg, ues, ingress, hk, fct, metrics, ue, seg);
                }
                AirDelivery::AmPdus { ue, pdus } => {
                    self.am_pdus(now, cfg, ues, ingress, hk, fct, metrics, ue, pdus);
                }
                AirDelivery::Harq { ue, payload } => match payload.data {
                    HarqData::Um(segs) => {
                        for seg in segs {
                            self.um_segment(now, cfg, ues, ingress, hk, fct, metrics, ue, seg);
                        }
                    }
                    HarqData::Am(pdus) => {
                        self.am_pdus(now, cfg, ues, ingress, hk, fct, metrics, ue, pdus);
                    }
                },
            }
        }
    }

    /// Deliver one UM segment into the UE stack (reassembly + TCP).
    #[allow(clippy::too_many_arguments)]
    fn um_segment(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        ues: &mut [UeContext],
        ingress: &mut IngressStage,
        hk: &mut HousekeepingStage,
        fct: &mut FctCollector,
        metrics: &mut CellMetrics,
        ue: usize,
        seg: RlcSegment,
    ) {
        if seg.is_last() {
            let short = ingress.flow_is_short(seg.flow_id as usize);
            metrics.on_queue_delay(now.saturating_since(seg.arrival), short);
        }
        let RlcRx::Um(rx) = &mut ues[ue].rlc_rx else {
            unreachable!("UM tx with AM rx");
        };
        if let Some(d) = rx.on_segment(&seg, now) {
            self.delivered_bytes += d.len as u64;
            hk.observe_delivery(now, ue, d.flow_id, d.sdu_id);
            let ul_delay = cfg.cn_delay + cfg.ul_air_delay + hk.cn_extra_delay();
            if let Some(done) = ingress.accept_sdu(now, ul_delay, &d) {
                fct.record(done.bytes, done.fct);
                self.completions.push(done);
            }
        }
    }

    /// Deliver AM PDUs into the UE stack (in-order delivery + STATUS).
    #[allow(clippy::too_many_arguments)]
    fn am_pdus(
        &mut self,
        now: Time,
        cfg: &CellConfig,
        ues: &mut [UeContext],
        ingress: &mut IngressStage,
        hk: &mut HousekeepingStage,
        fct: &mut FctCollector,
        metrics: &mut CellMetrics,
        ue: usize,
        pdus: Vec<AmPdu>,
    ) {
        for pdu in pdus {
            if pdu.seg.is_last() {
                let short = ingress.flow_is_short(pdu.seg.flow_id as usize);
                metrics.on_queue_delay(now.saturating_since(pdu.seg.arrival), short);
            }
            let RlcRx::Am(rx) = &mut ues[ue].rlc_rx else {
                unreachable!("AM tx with UM rx");
            };
            let (sdus, status) = rx.on_pdu(pdu, now);
            for d in sdus {
                self.delivered_bytes += d.len as u64;
                hk.observe_delivery(now, ue, d.flow_id, d.sdu_id);
                let ul_delay = cfg.cn_delay + cfg.ul_air_delay + hk.cn_extra_delay();
                if let Some(done) = ingress.accept_sdu(now, ul_delay, &d) {
                    fct.record(done.bytes, done.fct);
                    self.completions.push(done);
                }
            }
            if let Some(status) = status {
                ingress.schedule_status(now + cfg.ul_air_delay, ue, status);
            }
        }
    }

    /// Drain completed-flow records accumulated since the last call.
    pub fn take_completions(&mut self) -> Vec<FlowDone> {
        std::mem::take(&mut self.completions)
    }

    /// Serialize the stage (checkpointing): completions not yet drained
    /// by the harness plus the delivered-bytes ledger term.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.completions.iter(), |w, d| {
            w.usize(d.id);
            w.usize(d.ue);
            w.u64(d.bytes);
            w.time(d.spawn);
            w.dur(d.fct);
        });
        w.u64(self.delivered_bytes);
    }

    /// Restore from [`DeliveryStage::snap`] output.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.completions = r.seq(|r| {
            Ok(FlowDone {
                id: r.usize()?,
                ue: r.usize()?,
                bytes: r.u64()?,
                spawn: r.time()?,
                fct: r.dur()?,
            })
        })?;
        self.delivered_bytes = r.u64()?;
        Ok(())
    }

    /// Bytes delivered to the UE stacks (byte-conservation ledger term).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }
}
