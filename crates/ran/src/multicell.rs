//! Multi-cell (Colosseum-style) experiment wrapper — Figure 19.
//!
//! The Colosseum runs use "a four-cell topology that consists of 4
//! eNodeBs and 16 UEs, where each eNodeB maintains 4 UEs" (§6.1). Cells
//! in those runs are on separate carriers, so we model them as
//! independent [`crate::cell::Cell`] instances with per-cell seeds and
//! merge the statistics.

use std::path::PathBuf;

use outran_metrics::{FctCollector, FctReport};
use outran_phy::Scenario;
use outran_simcore::{Dur, Rng, Time};
use outran_workload::{FlowSizeDist, PoissonFlowGen};

use crate::cell::{Cell, CellConfig, SchedulerKind};
use crate::checkpoint::{write_checkpoint, CheckpointMeta};
use crate::pool::parallel_map_eager;

/// A multi-cell experiment: `n_cells` independent cells, each with
/// `ues_per_cell` UEs on the given scenario.
#[derive(Debug, Clone)]
pub struct MultiCell {
    /// RF scenario for every cell.
    pub scenario: Scenario,
    /// Cells in the deployment.
    pub n_cells: usize,
    /// UEs attached per cell.
    pub ues_per_cell: usize,
    /// MAC scheduler under test.
    pub scheduler: SchedulerKind,
    /// Offered load per cell.
    pub load: f64,
    /// Flow-size distribution.
    pub dist: FlowSizeDist,
    /// Horizon per cell.
    pub duration: Time,
    /// Root seed; cell *i* runs with `seed + i`.
    pub seed: u64,
    /// Worker threads to shard cells across (1 = serial). The merged
    /// report is byte-identical for every value.
    pub threads: usize,
    /// Wall-time watchdog: if one 1-second simulation epoch takes longer
    /// than this to compute, the run is presumed wedged (livelock,
    /// thrashing) and aborts gracefully — a final checkpoint is written
    /// to [`MultiCell::checkpoint_dir`] (when set) and the completions
    /// collected so far are still merged into the report. `None`
    /// disables the watchdog.
    pub epoch_wall_limit: Option<std::time::Duration>,
    /// Directory for the watchdog's final checkpoint. `None` skips the
    /// checkpoint on abort.
    pub checkpoint_dir: Option<PathBuf>,
}

/// Outcome of [`MultiCell::run_supervised`]: the merged report plus what
/// the watchdog did, if anything.
#[derive(Debug)]
pub struct MultiCellRun {
    /// Merged FCT statistics over every completion collected before the
    /// run ended (normally or via watchdog abort).
    pub report: FctReport,
    /// Simulation instant the watchdog aborted at, or `None` for a run
    /// that completed its full horizon.
    pub aborted_at: Option<Time>,
    /// Path of the final checkpoint written on abort, when one was
    /// requested and succeeded.
    pub checkpoint: Option<PathBuf>,
}

impl MultiCell {
    /// The Figure 19 topology: 4 cells × 4 UEs, LTE traffic distribution.
    pub fn colosseum(scenario: Scenario, scheduler: SchedulerKind, load: f64) -> MultiCell {
        MultiCell {
            scenario,
            n_cells: 4,
            ues_per_cell: 4,
            scheduler,
            load,
            dist: FlowSizeDist::LteCellular,
            duration: Time::from_secs(10),
            seed: 42,
            threads: 1,
            epoch_wall_limit: None,
            checkpoint_dir: None,
        }
    }

    /// Build cell `c` with its flows scheduled (per-cell seed
    /// `self.seed + c`, own Poisson arrival stream).
    fn build_cell(&self, c: usize) -> Cell {
        let seed = self.seed + c as u64;
        let mut cfg = CellConfig::lte_default(self.ues_per_cell, self.scheduler, seed);
        cfg.channel = self.scenario.channel_config();
        let capacity = {
            let ch = &cfg.channel;
            ch.radio.peak_rate_bps(ch.table.peak_efficiency()) * 0.85
        };
        let mut cell = Cell::new(cfg);
        let mut gen = PoissonFlowGen::new(
            self.dist,
            self.load,
            capacity,
            self.ues_per_cell,
            Rng::new(seed ^ 0xC0105),
        );
        for a in gen.take_until(self.duration) {
            cell.schedule_flow(a.at, a.ue, a.bytes, None);
        }
        cell
    }

    /// Run all cells and merge FCT statistics.
    ///
    /// Cells are sharded across up to [`MultiCell::threads`] workers and
    /// advanced epoch by epoch with a barrier in between — the hook
    /// where future inter-cell coupling (handover, X2 load exchange)
    /// would live. Each cell evolves from its own seed and the merge
    /// walks cells in index order after the barrier loop, so the report
    /// is byte-identical for any thread count.
    pub fn run(&self) -> FctReport {
        self.run_supervised().report
    }

    /// [`MultiCell::run`] plus graceful degradation: when
    /// [`MultiCell::epoch_wall_limit`] is set and one epoch's barrier
    /// takes longer than the limit in wall time, the run stops advancing,
    /// writes a final multi-cell checkpoint (when
    /// [`MultiCell::checkpoint_dir`] is set) and returns the statistics
    /// accumulated so far with [`MultiCellRun::aborted_at`] marking where
    /// it stopped. The wall clock only ever gates *whether the run
    /// continues* — never any simulated quantity — so results that are
    /// produced remain bit-identical across machines and thread counts.
    pub fn run_supervised(&self) -> MultiCellRun {
        let end = Time(self.duration.0 + Time::from_secs(4).0);
        let epoch = Dur::from_secs(1);
        let mut cells: Vec<Cell> = (0..self.n_cells).map(|c| self.build_cell(c)).collect();
        let mut t = Time::ZERO;
        let mut aborted_at = None;
        let mut checkpoint = None;
        while t < end {
            t = (t + epoch).min(end);
            // The watchdog gates only *whether the run continues*, never
            // any simulated quantity.
            // outran-lint: allow(d1) -- wall-time watchdog, measurement only
            let epoch_start = std::time::Instant::now();
            cells = parallel_map_eager(self.threads, cells, |mut cell| {
                cell.run_until(t);
                cell
            });
            if let Some(limit) = self.epoch_wall_limit {
                let took = epoch_start.elapsed();
                if took > limit {
                    eprintln!(
                        "warning: multicell epoch to {t} took {:.1}s wall \
                         (limit {:.1}s); aborting gracefully",
                        took.as_secs_f64(),
                        limit.as_secs_f64()
                    );
                    aborted_at = Some(t);
                    if let Some(dir) = &self.checkpoint_dir {
                        let meta = CheckpointMeta {
                            argv: std::env::args().collect(),
                            sim_time: t,
                            dense: false,
                            n_cells: cells.len(),
                        };
                        let refs: Vec<&Cell> = cells.iter().collect();
                        let secs = t.as_nanos() / 1_000_000_000;
                        let path = dir.join(format!("multicell-abort-{secs}s.orsn"));
                        match write_checkpoint(&path, &meta, &refs) {
                            Ok(()) => checkpoint = Some(path),
                            Err(e) => {
                                eprintln!(
                                    "warning: abort checkpoint {} failed: {e}",
                                    path.display()
                                );
                            }
                        }
                    }
                    break;
                }
            }
        }
        let mut merged = FctCollector::new();
        for cell in &mut cells {
            for d in cell.take_completions() {
                merged.record(d.bytes, d.fct);
            }
        }
        MultiCellRun {
            report: merged.report(),
            aborted_at,
            checkpoint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colosseum_topology_runs() {
        let mut mc = MultiCell::colosseum(Scenario::ColosseumRome, SchedulerKind::Pf, 0.3);
        mc.duration = Time::from_secs(3);
        mc.n_cells = 2; // keep the unit test fast
        let r = mc.run();
        assert!(r.count > 5, "completed={}", r.count);
        assert!(r.overall_mean_ms > 0.0);
    }

    #[test]
    fn watchdog_aborts_gracefully_with_final_checkpoint() {
        let dir = std::env::temp_dir().join(format!("outran-mc-wd-{}", std::process::id()));
        let mut mc = MultiCell::colosseum(Scenario::ColosseumRome, SchedulerKind::Pf, 0.3);
        mc.duration = Time::from_secs(3);
        mc.n_cells = 2;
        // A zero wall limit trips after the very first epoch.
        mc.epoch_wall_limit = Some(std::time::Duration::ZERO);
        mc.checkpoint_dir = Some(dir.clone());
        let out = mc.run_supervised();
        assert_eq!(out.aborted_at, Some(Time::from_secs(1)));
        let ckpt = out.checkpoint.expect("abort checkpoint should be written");
        let (meta, file) = crate::checkpoint::read_checkpoint(&ckpt).unwrap();
        assert_eq!(meta.n_cells, 2);
        assert_eq!(meta.sim_time, Time::from_secs(1));
        // Both cell sections restore into freshly built cells.
        for c in 0..2 {
            let mut fresh = mc.build_cell(c);
            crate::checkpoint::restore_cell(&file, c, &mut fresh).unwrap();
            assert_eq!(fresh.now(), Time::from_secs(1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_cell_seeds_differ() {
        let mut a = MultiCell::colosseum(Scenario::ColosseumPowder, SchedulerKind::Pf, 0.3);
        a.duration = Time::from_secs(3);
        a.n_cells = 1;
        let mut b = a.clone();
        b.seed += 1;
        let ra = a.run();
        let rb = b.run();
        assert_ne!(ra.overall_mean_ms, rb.overall_mean_ms);
    }
}
