//! Multi-cell (Colosseum-style) experiment wrapper — Figure 19.
//!
//! The Colosseum runs use "a four-cell topology that consists of 4
//! eNodeBs and 16 UEs, where each eNodeB maintains 4 UEs" (§6.1). Cells
//! in those runs are on separate carriers, so we model them as
//! independent [`crate::cell::Cell`] instances with per-cell seeds and
//! merge the statistics.

use outran_metrics::{FctCollector, FctReport};
use outran_phy::Scenario;
use outran_simcore::{Dur, Rng, Time};
use outran_workload::{FlowSizeDist, PoissonFlowGen};

use crate::cell::{Cell, CellConfig, SchedulerKind};
use crate::pool::parallel_map_eager;

/// A multi-cell experiment: `n_cells` independent cells, each with
/// `ues_per_cell` UEs on the given scenario.
#[derive(Debug, Clone)]
pub struct MultiCell {
    /// RF scenario for every cell.
    pub scenario: Scenario,
    /// Cells in the deployment.
    pub n_cells: usize,
    /// UEs attached per cell.
    pub ues_per_cell: usize,
    /// MAC scheduler under test.
    pub scheduler: SchedulerKind,
    /// Offered load per cell.
    pub load: f64,
    /// Flow-size distribution.
    pub dist: FlowSizeDist,
    /// Horizon per cell.
    pub duration: Time,
    /// Root seed; cell *i* runs with `seed + i`.
    pub seed: u64,
    /// Worker threads to shard cells across (1 = serial). The merged
    /// report is byte-identical for every value.
    pub threads: usize,
}

impl MultiCell {
    /// The Figure 19 topology: 4 cells × 4 UEs, LTE traffic distribution.
    pub fn colosseum(scenario: Scenario, scheduler: SchedulerKind, load: f64) -> MultiCell {
        MultiCell {
            scenario,
            n_cells: 4,
            ues_per_cell: 4,
            scheduler,
            load,
            dist: FlowSizeDist::LteCellular,
            duration: Time::from_secs(10),
            seed: 42,
            threads: 1,
        }
    }

    /// Build cell `c` with its flows scheduled (per-cell seed
    /// `self.seed + c`, own Poisson arrival stream).
    fn build_cell(&self, c: usize) -> Cell {
        let seed = self.seed + c as u64;
        let mut cfg = CellConfig::lte_default(self.ues_per_cell, self.scheduler, seed);
        cfg.channel = self.scenario.channel_config();
        let capacity = {
            let ch = &cfg.channel;
            ch.radio.peak_rate_bps(ch.table.peak_efficiency()) * 0.85
        };
        let mut cell = Cell::new(cfg);
        let mut gen = PoissonFlowGen::new(
            self.dist,
            self.load,
            capacity,
            self.ues_per_cell,
            Rng::new(seed ^ 0xC0105),
        );
        for a in gen.take_until(self.duration) {
            cell.schedule_flow(a.at, a.ue, a.bytes, None);
        }
        cell
    }

    /// Run all cells and merge FCT statistics.
    ///
    /// Cells are sharded across up to [`MultiCell::threads`] workers and
    /// advanced epoch by epoch with a barrier in between — the hook
    /// where future inter-cell coupling (handover, X2 load exchange)
    /// would live. Each cell evolves from its own seed and the merge
    /// walks cells in index order after the barrier loop, so the report
    /// is byte-identical for any thread count.
    pub fn run(&self) -> FctReport {
        let end = Time(self.duration.0 + Time::from_secs(4).0);
        let epoch = Dur::from_secs(1);
        let mut cells: Vec<Cell> = (0..self.n_cells).map(|c| self.build_cell(c)).collect();
        let mut t = Time::ZERO;
        while t < end {
            t = (t + epoch).min(end);
            cells = parallel_map_eager(self.threads, cells, |mut cell| {
                cell.run_until(t);
                cell
            });
        }
        let mut merged = FctCollector::new();
        for cell in &mut cells {
            for d in cell.take_completions() {
                merged.record(d.bytes, d.fct);
            }
        }
        merged.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colosseum_topology_runs() {
        let mut mc = MultiCell::colosseum(Scenario::ColosseumRome, SchedulerKind::Pf, 0.3);
        mc.duration = Time::from_secs(3);
        mc.n_cells = 2; // keep the unit test fast
        let r = mc.run();
        assert!(r.count > 5, "completed={}", r.count);
        assert!(r.overall_mean_ms > 0.0);
    }

    #[test]
    fn per_cell_seeds_differ() {
        let mut a = MultiCell::colosseum(Scenario::ColosseumPowder, SchedulerKind::Pf, 0.3);
        a.duration = Time::from_secs(3);
        a.n_cells = 1;
        let mut b = a.clone();
        b.seed += 1;
        let ra = a.run();
        let rb = b.run();
        assert_ne!(ra.overall_mean_ms, rb.overall_mean_ms);
    }
}
