//! Web page-load driver — the PLT experiments of §6.1.
//!
//! Reproduces the testbed workload: a UE loads a page (a set of
//! sub-flows fetched by a browser with at most 6 concurrent connections,
//! HTML first) while background websearch flows keep the cell at the
//! configured load. PLT = last object completion − navigation start +
//! the page's render time (the §6.1 observation that some pages are
//! render-dominated is carried by the per-page `render_ms`).

use std::collections::{BTreeMap, VecDeque};

use outran_simcore::{Dur, Rng, Time};
use outran_workload::{BrowserModel, WebObject, WebPage};

use crate::cell::Cell;

/// Result of one page load.
#[derive(Debug, Clone)]
pub struct PltRun {
    /// Page name.
    pub page: &'static str,
    /// Page load time (fetch + render).
    pub plt: Dur,
    /// Per-object fetch times (the sub-flow FCTs the paper reports
    /// improving by 20 % on average).
    pub object_fcts: Vec<Dur>,
}

/// Flow arrivals for an idle-heavy browsing session: starting at 50 ms,
/// a UE loads one small Table-2 page every `think` (its objects arrive
/// a few milliseconds apart, approximating the browser fan-out), then
/// the cell sits idle until the next page — the workload shape the
/// event-driven stepper is built for (the overwhelming majority of TTIs
/// carry no work). Returns `(at, ue, bytes)` triples for
/// [`Cell::schedule_flow`], deterministic in `seed`.
pub fn idle_heavy_arrivals(
    horizon: Time,
    think: Dur,
    n_ues: usize,
    seed: u64,
) -> Vec<(Time, usize, u64)> {
    assert!(n_ues > 0);
    assert!(think > Dur::ZERO);
    let pages = WebPage::table2();
    let mut rng = Rng::new(seed ^ 0x1D7E_CAFE);
    let mut out = Vec::new();
    let mut t = Time::from_millis(50);
    let mut i = 0usize;
    while t < horizon {
        // Cycle the two smallest pages so each active burst stays short
        // relative to the think gap.
        let page = &pages[i % 2];
        let ue = i % n_ues;
        for (j, obj) in page.objects(&mut rng).into_iter().enumerate() {
            let at = Time(t.0 + j as u64 * Dur::from_millis(3).0);
            out.push((at, ue, obj.bytes.max(64)));
        }
        i += 1;
        t += think;
    }
    out
}

/// Drive one page load on `cell` for `ue`, starting at the cell's
/// current time. Steps the cell until the page completes (or the 120 s
/// safety horizon passes). Background flows already scheduled on the
/// cell keep running; their completions are consumed and ignored here
/// (they remain in the cell's own FCT collector).
pub fn load_page(
    cell: &mut Cell,
    page: &WebPage,
    ue: usize,
    browser: BrowserModel,
    rng: &mut Rng,
    conn_base: u64,
) -> PltRun {
    let objects = page.objects(rng);
    assert!(!objects.is_empty());
    let start = cell.now();
    let deadline = Time(start.0 + Time::from_secs(120).0);

    // Connection-slot accounting: a QUIC page's multiplexed connection
    // occupies one slot no matter how many streams ride it.
    let conn_of = |o: &WebObject| -> u64 {
        if o.is_quic {
            conn_base // shared QUIC five-tuple
        } else {
            conn_base + 1 + o.conn as u64
        }
    };

    let mut pending: VecDeque<WebObject> = objects.into_iter().collect();
    // Ordered maps: no iteration today, but keeping the sim crates
    // hash-free means a future traversal cannot regress replay (D2).
    let mut in_flight: BTreeMap<usize, (u64, Time)> = BTreeMap::new(); // flow -> (conn, launch)
    let mut active_conns: BTreeMap<u64, usize> = BTreeMap::new(); // conn -> live objects
    let mut object_fcts = Vec::new();
    let mut last_done = start;

    // HTML-first: launch only the first object, wait for it.
    let Some(html) = pending.pop_front() else {
        // Unreachable (non-empty asserted above): an object-less page is
        // pure render time.
        return PltRun {
            page: page.name,
            plt: Dur::from_millis(page.render_ms),
            object_fcts,
        };
    };
    let html_conn = conn_of(&html);
    let fid = cell.schedule_flow(start, ue, html.bytes.max(64), Some(html_conn));
    in_flight.insert(fid, (html_conn, start));
    *active_conns.entry(html_conn).or_insert(0) += 1;
    let mut html_done = !browser.html_first;

    while (!pending.is_empty() || !in_flight.is_empty()) && cell.now() < deadline {
        cell.step();
        let now = cell.now();
        for d in cell.take_completions() {
            if let Some((conn, launched)) = in_flight.remove(&d.id) {
                object_fcts.push(now.saturating_since(launched));
                last_done = now;
                if let Some(c) = active_conns.get_mut(&conn) {
                    *c -= 1;
                    if *c == 0 {
                        active_conns.remove(&conn);
                    }
                }
                html_done = true; // first completion is necessarily the HTML
            }
            // Background completions fall through (already recorded by
            // the cell's collector).
        }
        if !html_done {
            continue;
        }
        // Launch pending objects while connection slots are free.
        while let Some(obj) = pending.front() {
            let conn = conn_of(obj);
            let occupies_new_slot = !active_conns.contains_key(&conn);
            if occupies_new_slot && active_conns.len() >= browser.max_concurrent as usize {
                break;
            }
            let Some(obj) = pending.pop_front() else {
                break; // unreachable: front() just returned Some
            };
            let fid = cell.schedule_flow(now, ue, obj.bytes.max(64), Some(conn));
            in_flight.insert(fid, (conn, now));
            *active_conns.entry(conn).or_insert(0) += 1;
        }
    }

    let fetch = last_done.saturating_since(start);
    PltRun {
        page: page.name,
        plt: fetch + Dur::from_millis(page.render_ms),
        object_fcts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellConfig, SchedulerKind};

    fn small_cell(kind: SchedulerKind, seed: u64) -> Cell {
        let mut cfg = CellConfig::lte_default(2, kind, seed);
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        Cell::new(cfg)
    }

    #[test]
    fn page_load_completes() {
        let mut cell = small_cell(SchedulerKind::Pf, 1);
        let page = &WebPage::table2()[1]; // google.com
        let mut rng = Rng::new(5);
        let run = load_page(&mut cell, page, 0, BrowserModel::default(), &mut rng, 10);
        assert_eq!(run.object_fcts.len(), page.n_flows as usize);
        // PLT includes render time and at least a couple of RTTs.
        assert!(run.plt >= Dur::from_millis(page.render_ms));
        assert!(run.plt < Dur::from_secs(60), "plt={}", run.plt);
    }

    #[test]
    fn render_dominated_page_has_floor() {
        let mut cell = small_cell(SchedulerKind::OutRan, 2);
        let zoom = WebPage::table2()
            .into_iter()
            .find(|p| p.name == "zoom.us")
            .unwrap();
        let mut rng = Rng::new(6);
        let run = load_page(&mut cell, &zoom, 0, BrowserModel::default(), &mut rng, 20);
        assert!(run.plt >= Dur::from_millis(4200));
    }

    #[test]
    fn deterministic_page_load() {
        let go = || {
            let mut cell = small_cell(SchedulerKind::OutRan, 3);
            let page = &WebPage::table2()[0];
            let mut rng = Rng::new(9);
            load_page(&mut cell, page, 1, BrowserModel::default(), &mut rng, 30).plt
        };
        assert_eq!(go(), go());
    }
}
