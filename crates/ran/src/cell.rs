//! The single-cell end-to-end simulator.
//!
//! One [`Cell`] owns the full downlink path of Figure 11(b):
//!
//! * **Server side** — one [`TcpSender`] per flow (Cubic), emitting
//!   segments that reach the xNodeB after the wired CN delay;
//! * **xNodeB** — per-UE PDCP flow table (MLFQ marking), per-UE RLC
//!   entity (UM or AM, MLFQ or legacy FIFO), and a MAC scheduler invoked
//!   every TTI over the PHY channel's per-RB rates;
//! * **Air interface** — per-(UE, subband) transport-block error draws:
//!   a HARQ-recovered error wastes the airtime (data stays queued), a
//!   rare residual error actually loses the segments (UM) or triggers
//!   the AM NACK/retransmission machinery;
//! * **UE side** — RLC reassembly, per-flow [`TcpReceiver`], cumulative
//!   ACKs returning over the uplink delay.
//!
//! The event queue carries flow arrivals, packet/ACK propagation and AM
//! STATUS PDUs; everything else is TTI-clocked. All randomness is forked
//! from one seed: equal seeds ⇒ identical runs.

use outran_core::{OutRanConfig, PriorityReset};
use outran_faults::{
    ActiveFaults, AuditConfig, AuditSnapshot, ByteLedger, FaultPlan, FaultStats, InvariantAuditor,
    Violation,
};
use outran_mac::{
    Allocation, CqaScheduler, MtScheduler, OutRanScheduler, PfScheduler, PssScheduler, QosParams,
    RateSource, RrScheduler, Scheduler, SrjfScheduler, UeTti,
};
use outran_metrics::{CellMetrics, FctCollector};
use outran_pdcp::{FiveTuple, FlowTable, MlfqConfig};
use outran_phy::channel::{CellChannel, ChannelConfig};
use outran_rlc::am::{AmConfig, AmRx, AmTx, StatusPdu};
use outran_rlc::sdu::RlcSdu;
use outran_rlc::um::{UmConfig, UmRx, UmTx};
use outran_simcore::{Dur, EventQueue, Rng, Time};
use outran_transport::{TcpConfig, TcpReceiver, TcpSender};

/// Which MAC scheduler drives the cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Proportional Fair (baseline).
    Pf,
    /// Max Throughput.
    Mt,
    /// Round Robin.
    Rr,
    /// Blind Equal Throughput (classic LTE baseline).
    Bet,
    /// Modified Largest Weighted Delay First (classic LTE baseline).
    Mlwdf,
    /// Oracle SRJF (channel-blind, perfect flow sizes).
    Srjf,
    /// Priority Set Scheduler (QoS-aware baseline).
    Pss,
    /// Channel & QoS Aware scheduler (QoS-aware baseline).
    Cqa,
    /// OutRAN with the paper's default ε = 0.2 over PF.
    OutRan,
    /// OutRAN with an explicit ε over PF (ε = 0 ⇒ intra-user only).
    OutRanEps(f64),
    /// OutRAN over the MT metric (Fig 18b ablation).
    OutRanOverMt(f64),
    /// Strict MLFQ: ε = 1, the "entire room for SJF" comparison (Fig 7).
    StrictMlfq,
}

impl SchedulerKind {
    /// Whether this scheduler family uses the per-UE MLFQ at RLC
    /// (baselines run the legacy FIFO).
    pub fn uses_mlfq(self) -> bool {
        matches!(
            self,
            SchedulerKind::OutRan
                | SchedulerKind::OutRanEps(_)
                | SchedulerKind::OutRanOverMt(_)
                | SchedulerKind::StrictMlfq
        )
    }

    /// Whether this scheduler performs *flow-level* scheduling with
    /// oracle flow sizes (SRJF): the RLC then orders SDUs by remaining
    /// flow size instead of PDCP's sent-bytes MLFQ, reproducing the
    /// NS-3 SRJF that "schedules flows based on the remaining flow size".
    pub fn uses_oracle_priority(self) -> bool {
        matches!(self, SchedulerKind::Srjf)
    }

    /// Display name.
    pub fn name(self) -> String {
        match self {
            SchedulerKind::Pf => "PF".into(),
            SchedulerKind::Mt => "MT".into(),
            SchedulerKind::Rr => "RR".into(),
            SchedulerKind::Bet => "BET".into(),
            SchedulerKind::Mlwdf => "M-LWDF".into(),
            SchedulerKind::Srjf => "SRJF".into(),
            SchedulerKind::Pss => "PSS".into(),
            SchedulerKind::Cqa => "CQA".into(),
            SchedulerKind::OutRan => "OutRAN".into(),
            SchedulerKind::OutRanEps(e) => format!("OutRAN(e={e})"),
            SchedulerKind::OutRanOverMt(e) => format!("OutRAN-MT(e={e})"),
            SchedulerKind::StrictMlfq => "StrictMLFQ".into(),
        }
    }
}

/// RLC mode for the data bearers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlcMode {
    /// Unacknowledged Mode (the paper's default).
    Um,
    /// Acknowledged Mode (§6.3 case study).
    Am,
}

/// Full cell configuration.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// PHY/channel configuration (see [`outran_phy::scenario`]).
    pub channel: ChannelConfig,
    /// Number of attached UEs.
    pub n_ues: usize,
    /// MAC scheduler.
    pub scheduler: SchedulerKind,
    /// PF fairness window T_f.
    pub tf: Dur,
    /// OutRAN policy knobs (MLFQ thresholds, promotion, reset, …).
    pub outran: OutRanConfig,
    /// RLC mode.
    pub rlc_mode: RlcMode,
    /// Per-UE RLC buffer capacity in SDUs (srsENB default 128; Fig 3b
    /// scales it ×5).
    pub buffer_sdus: usize,
    /// One-way server↔P-GW wired delay (Fig 11b: 10 ms; Fig 17: 20 ms
    /// remote / 5 ms MEC).
    pub cn_delay: Dur,
    /// Extra uplink latency for ACK/STATUS delivery beyond `cn_delay`
    /// (air + processing).
    pub ul_air_delay: Dur,
    /// TCP endpoint configuration.
    pub tcp: TcpConfig,
    /// Residual (post-HARQ) transport-block loss probability.
    pub residual_loss: f64,
    /// Leftover-capacity policy of the SRJF oracle (see
    /// [`outran_mac::srjf::SrjfMode`]). `Waterfall` is the good-faith
    /// engineering reading; `WinnerOnly` reproduces the severe
    /// SE/fairness/long-flow damage the paper measures under its
    /// high-variance LTE channel trace, where most of the full-bandwidth
    /// grant to the shortest flow's user is wasted.
    pub srjf_mode: outran_mac::srjf::SrjfMode,
    /// Explicit HARQ retransmission modelling (`None` = the default
    /// folded model where a failed TB simply is not pulled from RLC).
    /// With `Some`, failed blocks are retransmitted after the HARQ RTT
    /// with chase-combining gain and dropped after `max_tx` attempts.
    pub harq: Option<outran_phy::harq::HarqConfig>,
    /// Root seed.
    pub seed: u64,
    /// Scheduled fault timeline (empty = fault-free run).
    pub faults: FaultPlan,
    /// Invariant-auditor cadence and retention.
    pub audit: AuditConfig,
    /// Stalled-flow watchdog: force a TCP timeout after this long with
    /// no cumulative-ACK progress on a started flow (`None` disables).
    pub watchdog: Option<Dur>,
    /// Per-UE PDCP flow-table admission cap (`None` = unbounded); when
    /// full, the least-recently-seen entry is evicted to admit new flows.
    pub max_flow_entries: Option<usize>,
}

impl CellConfig {
    /// The paper's main LTE setting (§3/§6.2) for a given scheduler.
    pub fn lte_default(n_ues: usize, scheduler: SchedulerKind, seed: u64) -> CellConfig {
        CellConfig {
            channel: ChannelConfig::lte_default(),
            n_ues,
            scheduler,
            tf: Dur::from_millis(1000),
            outran: OutRanConfig::default(),
            rlc_mode: RlcMode::Um,
            buffer_sdus: 128,
            cn_delay: Dur::from_millis(10),
            ul_air_delay: Dur::from_millis(4),
            tcp: TcpConfig::default(),
            residual_loss: 0.002,
            srjf_mode: outran_mac::srjf::SrjfMode::Waterfall,
            harq: None,
            seed,
            faults: FaultPlan::new(),
            audit: AuditConfig::default(),
            watchdog: None,
            max_flow_entries: None,
        }
    }
}

/// A dedicated-bearer (GBR) traffic source — the Conversational class of
/// Table 1, served by semi-persistent grants outside the dynamic
/// scheduler (how VoLTE is carried in practice). OutRAN never touches
/// this traffic: it targets only the default best-effort bearer.
#[derive(Debug, Clone, Copy)]
pub struct GbrBearer {
    /// Destination UE.
    pub ue: usize,
    /// Packet payload size in bytes (VoLTE AMR frame bundles ~35 B).
    pub pkt_bytes: u32,
    /// Packet generation interval (VoLTE: 20 ms).
    pub interval: Dur,
}

impl GbrBearer {
    /// A VoLTE-like bearer at the Table 1 GBR of 14 kbps.
    pub fn volte(ue: usize) -> GbrBearer {
        GbrBearer {
            ue,
            pkt_bytes: 35,
            interval: Dur::from_millis(20),
        }
    }
}

#[derive(Debug, Clone)]
struct GbrRuntime {
    bearer: GbrBearer,
    next_gen: Time,
    queue: std::collections::VecDeque<(Time, u32)>,
}

/// A completed flow record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDone {
    /// Flow index (as returned by [`Cell::schedule_flow`]).
    pub id: usize,
    /// Destination UE.
    pub ue: usize,
    /// Flow size in bytes.
    pub bytes: u64,
    /// When the flow started at the server.
    pub spawn: Time,
    /// Flow completion time.
    pub fct: Dur,
}

enum Ev {
    Arrival { flow: usize },
    PktAtEnb { flow: usize, seq: u64, len: u32 },
    AckAtServer { flow: usize, cum: u64 },
    StatusAtEnb { ue: usize, status: StatusPdu },
}

struct FlowRt {
    ue: usize,
    size: u64,
    spawn: Time,
    tuple: FiveTuple,
    sender: TcpSender,
    receiver: TcpReceiver,
    started: bool,
    done: bool,
    /// Watchdog state: highest cumulative ACK seen, and when it moved.
    last_cum: u64,
    last_progress: Time,
}

enum RlcTx {
    Um(UmTx),
    Am(AmTx),
}

enum RlcRx {
    Um(UmRx),
    Am(AmRx),
}

/// What a HARQ transport block carries in this cell. The ledger byte
/// count is cached at construction so the hot path never re-walks the
/// segment list (AM PDUs are ledger-exempt: AM runs without
/// conservation auditing).
struct HarqPayload {
    bytes: u64,
    data: HarqData,
}

enum HarqData {
    Um(Vec<outran_rlc::sdu::RlcSegment>),
    Am(Vec<outran_rlc::am::AmPdu>),
}

impl HarqPayload {
    fn um(segs: Vec<outran_rlc::sdu::RlcSegment>) -> HarqPayload {
        let bytes = segs.iter().map(|s| s.len as u64).sum();
        HarqPayload {
            bytes,
            data: HarqData::Um(segs),
        }
    }

    fn am(pdus: Vec<outran_rlc::am::AmPdu>) -> HarqPayload {
        HarqPayload {
            bytes: 0,
            data: HarqData::Am(pdus),
        }
    }
}

/// Per-TTI rate matrix adapter (subband-granular) for the scheduler.
/// Reused across TTIs: [`Cell::refresh_rates`] rewrites only the rows
/// whose content version moved.
#[derive(Default)]
struct TtiRates {
    per_ue_sb: Vec<f64>,
    rb_to_sb: Vec<usize>,
    n_sb: usize,
    n_ues: usize,
    /// RBs pre-empted by semi-persistent GBR grants this TTI: they read
    /// as rate 0 to the dynamic scheduler, so every scheduler kind
    /// respects the reservation without trait changes.
    reserved: Vec<bool>,
    /// Per-UE content version of the `per_ue_sb` row: the delivered CQI
    /// report version doubled, plus one while the UE's link is down (a
    /// zeroed row never aliases a live one). Schedulers key their metric
    /// caches on this.
    versions: Vec<u64>,
}

impl RateSource for TtiRates {
    fn rate(&self, ue: usize, rb: u16) -> f64 {
        if self.reserved[rb as usize] {
            return 0.0;
        }
        self.per_ue_sb[ue * self.n_sb + self.rb_to_sb[rb as usize]]
    }
    fn n_rbs(&self) -> u16 {
        self.rb_to_sb.len() as u16
    }
    fn n_ues(&self) -> usize {
        self.n_ues
    }
    fn n_subbands(&self) -> usize {
        self.n_sb
    }
    fn subband_of(&self, rb: u16) -> usize {
        self.rb_to_sb[rb as usize]
    }
    fn rate_in_subband(&self, ue: usize, sb: usize) -> f64 {
        self.per_ue_sb[ue * self.n_sb + sb]
    }
    fn rb_reserved(&self, rb: u16) -> bool {
        self.reserved[rb as usize]
    }
    fn rates_version(&self, ue: usize) -> Option<u64> {
        Some(self.versions[ue])
    }
}

/// Reusable per-TTI buffers: [`Cell::step`] rotates through these
/// instead of allocating fresh vectors every tick.
#[derive(Default)]
struct StepScratch {
    rates: TtiRates,
    ues: Vec<UeTti>,
    had_data: Vec<bool>,
    group_bits: Vec<f64>,
    transmitted: Vec<f64>,
    delivered: Vec<f64>,
    segs: Vec<outran_rlc::sdu::RlcSegment>,
}

/// The single-cell simulator.
pub struct Cell {
    cfg: CellConfig,
    now: Time,
    tti: Dur,
    channel: CellChannel,
    scheduler: Box<dyn Scheduler + Send>,
    events: EventQueue<Ev>,
    flows: Vec<FlowRt>,
    flows_by_ue: Vec<Vec<usize>>,
    flow_tables: Vec<FlowTable>,
    rlc_tx: Vec<RlcTx>,
    rlc_rx: Vec<RlcRx>,
    reset: Option<PriorityReset>,
    harq: Vec<outran_phy::harq::HarqQueue<HarqPayload>>,
    gbr: Vec<GbrRuntime>,
    /// One-way air latency of delivered GBR packets (ms).
    pub gbr_latency: outran_simcore::Percentiles,
    next_sdu_id: u64,
    rng: Rng,
    /// FCT statistics.
    pub fct: FctCollector,
    /// Cell-level telemetry.
    pub metrics: CellMetrics,
    completions: Vec<FlowDone>,
    /// Diagnostics: SDUs dropped at full RLC buffers.
    pub buffer_drops: u64,
    /// Diagnostics: transport blocks wasted by (HARQ-recovered) errors.
    pub harq_wasted_tbs: u64,
    /// Diagnostics: residual-loss events.
    pub residual_losses: u64,
    /// TTIs in which the cell had no work to do. Idle TTIs run O(1)
    /// accounting and draw no randomness in *both* stepping modes (see
    /// DESIGN.md "Virtual-time skipping").
    pub idle_ttis: u64,
    /// Idle TTIs crossed in one [`Cell::fast_forward`] jump instead of
    /// being stepped individually (event-driven mode only; always 0
    /// under [`Cell::run_until_dense`]).
    pub skipped_ttis: u64,
    last_gc: Time,
    /// Fault snapshot of the previous TTI (edge detection).
    faults_active: ActiveFaults,
    /// Dedicated RNG for fault draws, so injecting faults never perturbs
    /// the main simulation stream.
    fault_rng: Rng,
    fault_counters: FaultStats,
    auditor: InvariantAuditor,
    /// Whether delivered-SDU ordering is a valid invariant for this
    /// configuration (explicit HARQ, priority reset and the SRJF oracle
    /// all legitimately reorder intra-flow delivery).
    audit_order: bool,
    // Byte-conservation ledger terms (exact in UM mode; AM
    // retransmissions would double-count, so the auditor skips it).
    injected_bytes: u64,
    delivered_bytes: u64,
    dropped_bytes: u64,
    cn_in_flight_bytes: u64,
    harq_held_bytes: u64,
    scratch: StepScratch,
    /// Started-but-incomplete flows — the O(1) core of the idle test.
    open_flows: u64,
    /// Cached next fault-window edge at or after `now` (`None` when the
    /// plan holds no further edges); refreshed only when crossed.
    next_fault_edge: Option<Time>,
    /// Idle TTIs accrued since the last active one, not yet folded into
    /// the scheduler's averages (applied as one composed `on_idle` at
    /// the next active TTI — identically in both stepping modes).
    pending_idle: u64,
    /// Per-layer wall-time attribution, when enabled.
    profile: Option<StepProfile>,
}

/// Cumulative per-layer wall-time attribution of the active-TTI pipeline
/// (opt-in via [`Cell::enable_profiling`]; all figures in nanoseconds,
/// measured with `std::time::Instant`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepProfile {
    /// Fault-plan flattening and window-edge transitions.
    pub faults_ns: u64,
    /// Event queue drain, TCP endpoints, RTO and watchdog scans.
    pub transport_ns: u64,
    /// Channel evolution: fading, mobility, CQI reporting.
    pub phy_ns: u64,
    /// Rate matrix refresh, GBR carve-out and MAC scheduling.
    pub mac_ns: u64,
    /// RLC pulls, HARQ/air-interface draws, delivery and housekeeping.
    pub rlc_ns: u64,
}

impl StepProfile {
    /// Total attributed time across all layers, in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.faults_ns + self.transport_ns + self.phy_ns + self.mac_ns + self.rlc_ns
    }
}

impl Cell {
    /// Build a cell from its configuration.
    pub fn new(cfg: CellConfig) -> Cell {
        let root = Rng::new(cfg.seed);
        let channel = CellChannel::new(cfg.channel, cfg.n_ues, &root);
        let tti = cfg.channel.radio.tti();
        let scheduler = Self::build_scheduler(&cfg, tti);
        // One shared MLFQ config for every per-UE flow table (the config
        // is identical across UEs; cloning it N times wasted memory).
        let mlfq = std::sync::Arc::new(if cfg.scheduler.uses_mlfq() {
            cfg.outran.resolve_mlfq()
        } else {
            MlfqConfig::default()
        });
        let mut flow_tables: Vec<FlowTable> = (0..cfg.n_ues)
            .map(|_| FlowTable::shared(mlfq.clone()))
            .collect();
        if let Some(cap) = cfg.max_flow_entries {
            for ft in &mut flow_tables {
                ft.set_max_entries(Some(cap));
            }
        }
        let levels = if cfg.scheduler.uses_mlfq() {
            cfg.outran.mlfq_queues
        } else if cfg.scheduler.uses_oracle_priority() {
            16 // fine-grained remaining-size levels for the SRJF oracle
        } else {
            1 // legacy FIFO
        };
        let rlc_tx: Vec<RlcTx> = (0..cfg.n_ues)
            .map(|_| match cfg.rlc_mode {
                RlcMode::Um => RlcTx::Um(UmTx::new(UmConfig {
                    mlfq_levels: levels,
                    capacity_sdus: cfg.buffer_sdus,
                    header_bytes: cfg.outran.header_bytes,
                    reassembly_window: cfg.outran.reassembly_window,
                    promote_segments: cfg.outran.promote_segments,
                    pushout: cfg.outran.pushout,
                })),
                RlcMode::Am => RlcTx::Am(AmTx::new(AmConfig {
                    mlfq_levels: levels,
                    capacity_sdus: cfg.buffer_sdus,
                    header_bytes: cfg.outran.header_bytes.max(5),
                    promote_segments: cfg.outran.promote_segments,
                    pushout: cfg.outran.pushout,
                    ..AmConfig::default()
                })),
            })
            .collect();
        let rlc_rx: Vec<RlcRx> = (0..cfg.n_ues)
            .map(|_| match cfg.rlc_mode {
                RlcMode::Um => RlcRx::Um(UmRx::new(cfg.outran.reassembly_window)),
                RlcMode::Am => RlcRx::Am(AmRx::new(AmConfig::default())),
            })
            .collect();
        let bandwidth_hz = cfg.channel.radio.bandwidth_khz as f64 * 1e3;
        let metrics = CellMetrics::new(bandwidth_hz, cfg.n_ues, tti, 50, cfg.tf);
        let reset = cfg.outran.priority_reset(Time::ZERO);
        let audit_order =
            cfg.harq.is_none() && reset.is_none() && !cfg.scheduler.uses_oracle_priority();
        Cell {
            rng: root.fork(0xCE11),
            fault_rng: root.fork(0xFA17),
            faults_active: ActiveFaults::default(),
            fault_counters: FaultStats::default(),
            auditor: InvariantAuditor::new(cfg.audit),
            audit_order,
            injected_bytes: 0,
            delivered_bytes: 0,
            dropped_bytes: 0,
            cn_in_flight_bytes: 0,
            harq_held_bytes: 0,
            now: Time::ZERO,
            tti,
            channel,
            scheduler,
            events: EventQueue::new(),
            flows: Vec::new(),
            flows_by_ue: vec![Vec::new(); cfg.n_ues],
            flow_tables,
            rlc_tx,
            rlc_rx,
            reset,
            harq: (0..cfg.n_ues)
                .map(|_| outran_phy::harq::HarqQueue::new(cfg.harq.unwrap_or_default()))
                .collect(),
            gbr: Vec::new(),
            gbr_latency: outran_simcore::Percentiles::new(),
            next_sdu_id: 0,
            fct: FctCollector::new(),
            metrics,
            completions: Vec::new(),
            buffer_drops: 0,
            harq_wasted_tbs: 0,
            residual_losses: 0,
            idle_ttis: 0,
            skipped_ttis: 0,
            last_gc: Time::ZERO,
            scratch: StepScratch::default(),
            open_flows: 0,
            // `Some(ZERO)` forces the first active TTI to flatten the
            // plan (a window may start at t = 0) and cache the real edge.
            next_fault_edge: if cfg.faults.is_empty() {
                None
            } else {
                Some(Time::ZERO)
            },
            pending_idle: 0,
            profile: None,
            cfg,
        }
    }

    fn build_scheduler(cfg: &CellConfig, tti: Dur) -> Box<dyn Scheduler + Send> {
        let n = cfg.n_ues;
        match cfg.scheduler {
            SchedulerKind::Pf => Box::new(PfScheduler::with_tf(n, cfg.tf, tti)),
            SchedulerKind::Mt => Box::new(MtScheduler),
            SchedulerKind::Rr => Box::new(RrScheduler::default()),
            SchedulerKind::Bet => Box::new(outran_mac::BetScheduler::new(n, cfg.tf, tti)),
            SchedulerKind::Mlwdf => {
                Box::new(outran_mac::MlwdfScheduler::with_defaults(n, cfg.tf, tti))
            }
            SchedulerKind::Srjf => Box::new(SrjfScheduler::with_mode(cfg.srjf_mode)),
            SchedulerKind::Pss => Box::new(PssScheduler::new(n, cfg.tf, tti)),
            SchedulerKind::Cqa => Box::new(CqaScheduler::new(n, cfg.tf, tti, QosParams::default())),
            SchedulerKind::OutRan => Box::new(OutRanScheduler::over_pf(
                n,
                cfg.tf,
                tti,
                OutRanScheduler::DEFAULT_EPSILON,
            )),
            SchedulerKind::OutRanEps(e) => Box::new(OutRanScheduler::over_pf(n, cfg.tf, tti, e)),
            SchedulerKind::OutRanOverMt(e) => Box::new(OutRanScheduler::over_mt(e)),
            SchedulerKind::StrictMlfq => Box::new(OutRanScheduler::over_pf(n, cfg.tf, tti, 1.0)),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// TTI length in force.
    pub fn tti(&self) -> Dur {
        self.tti
    }

    /// Configuration (read-only).
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Register a flow of `bytes` toward `ue`, starting at the server at
    /// `at` (≥ now). `conn` groups flows onto a shared five-tuple (QUIC
    /// multiplexing, §4.2 limitation); `None` gives the flow its own.
    pub fn schedule_flow(&mut self, at: Time, ue: usize, bytes: u64, conn: Option<u64>) -> usize {
        assert!(ue < self.cfg.n_ues);
        assert!(bytes > 0);
        let id = self.flows.len();
        let tuple = match conn {
            Some(c) => FiveTuple::simulated(c, ue as u16),
            None => FiveTuple::simulated(1_000_000 + id as u64, ue as u16),
        };
        // The connection handshake already sampled one wired+air RTT.
        let handshake_rtt = Dur(2
            * (self.cfg.cn_delay.as_nanos() + self.cfg.ul_air_delay.as_nanos())
            + self.tti.as_nanos() * 4);
        self.flows.push(FlowRt {
            ue,
            size: bytes,
            spawn: at,
            tuple,
            sender: TcpSender::with_initial_rtt(self.cfg.tcp, bytes, handshake_rtt),
            receiver: TcpReceiver::new(bytes),
            started: false,
            done: false,
            last_cum: 0,
            last_progress: at,
        });
        self.events
            .schedule(at.max(self.now), Ev::Arrival { flow: id });
        id
    }

    /// Attach a dedicated GBR bearer (semi-persistent grants, outside
    /// the dynamic scheduler) — the Conversational class of Table 1.
    pub fn add_gbr_bearer(&mut self, bearer: GbrBearer) {
        assert!(bearer.ue < self.cfg.n_ues);
        assert!(bearer.pkt_bytes > 0 && bearer.interval > Dur::ZERO);
        // Stagger the vocoder phase per bearer so packet generation is
        // not TTI-aligned (real talk spurts aren't).
        let phase = Dur::from_micros((self.gbr.len() as u64 * 7_301) % bearer.interval.as_micros());
        self.gbr.push(GbrRuntime {
            bearer,
            next_gen: self.now + bearer.interval + phase,
            queue: std::collections::VecDeque::new(),
        });
    }

    /// Drain completed-flow records accumulated since the last call.
    pub fn take_completions(&mut self) -> Vec<FlowDone> {
        std::mem::take(&mut self.completions)
    }

    /// Advance the simulation until `t`, event-driven: dense per-TTI
    /// stepping while any work is pending, one [`Cell::fast_forward`]
    /// jump across every provably idle span. Ends on the same TTI-grid
    /// point, with bit-identical state, as [`Cell::run_until_dense`].
    pub fn run_until(&mut self, t: Time) {
        while self.now < t {
            let na = self.next_activity_time();
            let limit = if na < t { na } else { t };
            // Every TTI ending strictly before `limit` is provably
            // idle: skip them in one jump, then step the TTI that
            // contains `limit` (step() re-checks, so an over-estimate
            // merely lands on another idle tick).
            let skip = limit.since(self.now).as_nanos().saturating_sub(1) / self.tti.as_nanos();
            if skip > 0 {
                self.fast_forward(self.now + Dur(self.tti.as_nanos() * skip));
            }
            self.step();
        }
    }

    /// Advance the simulation until `t` by stepping every TTI — the
    /// pre-event-driven loop, kept as the reference arm for equivalence
    /// tests and the dense side of the idle-heavy benchmark.
    pub fn run_until_dense(&mut self, t: Time) {
        while self.now < t {
            self.step();
        }
    }

    /// Advance one TTI. An idle TTI — no due event, no queued or
    /// in-flight data anywhere, no GBR grant or fault edge due — does
    /// O(1) accounting and draws no randomness; an active TTI runs the
    /// full pipeline. Dense and event-driven runs share this entry
    /// point, so they execute identical work at identical instants.
    pub fn step(&mut self) {
        self.now += self.tti;
        if self.has_work_at(self.now) {
            self.active_step();
        } else {
            self.idle_accrue(1);
        }
    }

    /// Whether any subsystem has (or may have) work at instant `now`,
    /// the end of the current TTI. `false` certifies that the full
    /// pipeline would be a no-op apart from O(1) accounting.
    fn has_work_at(&self, now: Time) -> bool {
        if self.open_flows > 0 {
            // A started flow owns in-flight packets, queued data or a
            // pending RTO; conservatively treat it as work every TTI so
            // the RTO/watchdog scans run exactly as in dense stepping.
            return true;
        }
        if let Some(t) = self.events.peek_time() {
            if t <= now {
                return true;
            }
        }
        if let Some(e) = self.next_fault_edge {
            if e <= now {
                return true;
            }
        }
        if self
            .gbr
            .iter()
            .any(|g| g.next_gen <= now || !g.queue.is_empty())
        {
            return true;
        }
        for ue in 0..self.cfg.n_ues {
            if !self.harq[ue].is_empty() {
                return true;
            }
            match &self.rlc_tx[ue] {
                RlcTx::Um(um) => {
                    if !um.is_empty() {
                        return true;
                    }
                }
                RlcTx::Am(am) => {
                    if !am.is_quiescent() {
                        return true;
                    }
                }
            }
            if let RlcRx::Um(um) = &self.rlc_rx[ue] {
                if um.pending() > 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Earliest instant at which the cell may next have work to do.
    ///
    /// Returns `now` while anything is pending; otherwise the minimum
    /// over the processes that can create work out of quiet: the event
    /// queue's head, the next GBR packet generation and the next
    /// fault-window edge. CQI reports and mobility are deliberately
    /// *not* activity sources — the channel freezes across idle spans
    /// in both stepping modes and is composed lazily on wake (DESIGN.md
    /// "Virtual-time skipping"). Never later than the first TTI at
    /// which dense stepping would do work; `Time(u64::MAX)` when no
    /// future work can arise.
    pub fn next_activity_time(&self) -> Time {
        if self.has_work_at(self.now) {
            return self.now;
        }
        let mut next = Time(u64::MAX);
        if let Some(t) = self.events.peek_time() {
            next = next.min(t);
        }
        for g in &self.gbr {
            next = next.min(g.next_gen);
        }
        if let Some(e) = self.next_fault_edge {
            next = next.min(e);
        }
        next
    }

    /// Jump the clock across a span of idle TTIs in O(1). `to` must lie
    /// on the TTI grid strictly ahead of `now`, and every TTI ending at
    /// or before `to` must be idle (callers derive `to` from
    /// [`Cell::next_activity_time`]). Skipped TTIs draw no randomness
    /// in either stepping mode, so only integer accounting (and any
    /// crossed priority-reset periods) applies; fading and mobility are
    /// composed lazily by the next active TTI's channel advance.
    pub fn fast_forward(&mut self, to: Time) {
        debug_assert!(to > self.now, "fast_forward must move forward");
        debug_assert_eq!(
            to.since(self.now).as_nanos() % self.tti.as_nanos(),
            0,
            "fast_forward target must be TTI-grid aligned"
        );
        let k = to.since(self.now).as_nanos() / self.tti.as_nanos();
        self.now = to;
        self.skipped_ttis += k;
        self.idle_accrue(k);
    }

    /// Book `k` idle TTIs ending at `now`: idle counters, the metrics
    /// wall-clock, and any priority-reset periods the span crossed.
    /// Yields the same state whether called once per idle TTI (dense)
    /// or once per skipped span (event-driven).
    fn idle_accrue(&mut self, k: u64) {
        self.idle_ttis += k;
        self.pending_idle += k;
        self.metrics.note_idle_ttis(k);
        if let Some(reset) = &mut self.reset {
            if reset.catch_up(self.now) > 0 {
                for ft in &mut self.flow_tables {
                    ft.reset_priorities();
                }
            }
        }
    }

    /// Start attributing active-TTI wall time per layer (see
    /// [`StepProfile`]); adds a few `Instant` reads per active TTI.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(StepProfile::default());
    }

    /// Accumulated per-layer timings, if profiling was enabled.
    pub fn profile(&self) -> Option<&StepProfile> {
        self.profile.as_ref()
    }

    /// The full per-TTI pipeline (runs only on TTIs that have work).
    fn active_step(&mut self) {
        let now = self.now;
        // Fold the idle span since the last active TTI into the
        // scheduler's long-term averages first, so this tick's `allocate`
        // sees the same decayed state a per-TTI zero-service update would
        // have produced.
        if self.pending_idle > 0 {
            let k = self.pending_idle;
            self.pending_idle = 0;
            self.scheduler.on_idle(k);
        }
        self.auditor.observe_clock(now);
        let mut lap = self
            .profile
            .is_some()
            // outran-lint: allow(d1) -- opt-in `--profile` wall-time instrumentation; never feeds simulation state
            .then(|| (std::time::Instant::now(), [0u64; 5]));
        fn mark(lap: &mut Option<(std::time::Instant, [u64; 5])>, slot: usize) {
            if let Some((last, acc)) = lap {
                // outran-lint: allow(d1) -- profiling lap timer, measurement only
                let t = std::time::Instant::now();
                acc[slot] += t.duration_since(*last).as_nanos() as u64;
                *last = t;
            }
        }

        // 0. Fault engine: flatten the plan at `now` and apply window
        // edges (flush on RLF/detach entry, capacity clamps, …).
        if !self.cfg.faults.is_empty() || !self.faults_active.is_quiet() {
            let active = self.cfg.faults.active_at(now);
            self.apply_fault_transitions(active);
            // Refresh the cached edge only when we crossed it: between
            // edges the snapshot is constant and idle spans may skip.
            if self.next_fault_edge.is_some_and(|e| e <= now) {
                self.next_fault_edge = self.cfg.faults.next_edge_after(now);
            }
        }
        mark(&mut lap, 0);

        // 1. Event processing (arrivals, packets, ACKs, STATUS). The CN
        // link faults act here: an outage drops every traversing packet,
        // a degrade window loses them with probability `cn_loss`.
        while let Some((_, ev)) = self.events.pop_due(now) {
            match ev {
                Ev::Arrival { flow } => {
                    self.flows[flow].started = true;
                    self.open_flows += 1;
                    self.server_emit(flow);
                }
                Ev::PktAtEnb { flow, seq, len } => {
                    self.cn_in_flight_bytes -= len as u64;
                    if self.cn_link_loses_packet() {
                        self.dropped_bytes += len as u64;
                        self.fault_counters.cn_dropped_pkts += 1;
                        self.fault_counters.cn_dropped_bytes += len as u64;
                    } else {
                        self.on_pkt_at_enb(flow, seq, len);
                    }
                }
                Ev::AckAtServer { flow, cum } => {
                    if self.cn_link_loses_packet() {
                        self.fault_counters.cn_dropped_pkts += 1;
                    } else {
                        let f = &mut self.flows[flow];
                        f.sender.on_ack(now, cum);
                        self.server_emit(flow);
                    }
                }
                Ev::StatusAtEnb { ue, status } => {
                    if let RlcTx::Am(am) = &mut self.rlc_tx[ue] {
                        am.on_status(&status);
                    }
                }
            }
        }

        // 2. RTO scan.
        for flow in 0..self.flows.len() {
            let f = &self.flows[flow];
            if f.done || !f.started {
                continue;
            }
            if let Some(deadline) = f.sender.rto_deadline() {
                if deadline <= now {
                    self.flows[flow].sender.on_rto(now);
                    self.server_emit(flow);
                }
            }
        }

        // 2b. Stalled-flow watchdog: a started flow whose cumulative ACK
        // has not moved for the configured interval gets a forced TCP
        // timeout (go-back-N refill) — the recovery of last resort when
        // every in-flight copy of a segment was lost to faults.
        if let Some(stall) = self.cfg.watchdog {
            for flow in 0..self.flows.len() {
                let kick = {
                    let f = &mut self.flows[flow];
                    if f.done || !f.started {
                        continue;
                    }
                    let cum = f.receiver.cum();
                    if cum > f.last_cum {
                        f.last_cum = cum;
                        f.last_progress = now;
                        false
                    } else {
                        now.saturating_since(f.last_progress) >= stall
                    }
                };
                if kick && self.faults_active.link_up(self.flows[flow].ue) {
                    self.flows[flow].last_progress = now;
                    self.flows[flow].sender.on_rto(now);
                    self.fault_counters.watchdog_kicks += 1;
                    self.server_emit(flow);
                }
            }
        }
        mark(&mut lap, 1);

        // 3. Channel evolution (CQI staleness/corruption pushed first).
        // `advance_to` composes any idle gap since the previous active
        // TTI into one distribution-preserving jump; with no gap it is
        // the plain per-TTI advance.
        for ue in 0..self.cfg.n_ues {
            self.channel
                .set_cqi_frozen(ue, self.faults_active.cqi_frozen(ue));
            self.channel
                .set_cqi_corrupt(ue, self.faults_active.cqi_corrupted(ue));
        }
        self.channel.advance_to(now);
        mark(&mut lap, 2);

        // 4. Scheduler inputs — semi-persistent GBR grants are carved
        // out first, so the dynamic scheduler only sees the leftover RBs.
        // UEs in radio-link failure or detached read as rate 0 everywhere
        // (folded into the per-UE row version, so a live row is rebuilt
        // only when a new CQI report lands).
        let mut rates = std::mem::take(&mut self.scratch.rates);
        self.refresh_rates(&mut rates);
        self.serve_gbr(&mut rates);
        let mut ues = std::mem::take(&mut self.scratch.ues);
        self.build_ue_inputs_into(&mut ues);

        // 5. RB allocation.
        let alloc = self.scheduler.allocate(now, &ues, &rates);
        let used_rbs = alloc.rb_to_ue.iter().filter(|a| a.is_some()).count()
            + rates.reserved.iter().filter(|&&r| r).count();
        self.auditor
            .observe_rbs(now, used_rbs as u32, rates.rb_to_sb.len() as u32);
        mark(&mut lap, 3);

        // 6. Transmission: per-(UE, subband) transport-block groups.
        let mut had_data = std::mem::take(&mut self.scratch.had_data);
        had_data.clear();
        had_data.extend(ues.iter().map(|u| u.active));
        let mut transmitted = std::mem::take(&mut self.scratch.transmitted);
        let mut delivered = std::mem::take(&mut self.scratch.delivered);
        self.transmit(&alloc, &rates, &mut transmitted, &mut delivered);
        self.scheduler.on_served(&transmitted);
        self.metrics.on_tti(&delivered, &had_data);
        self.scratch.rates = rates;
        self.scratch.ues = ues;
        self.scratch.had_data = had_data;
        self.scratch.transmitted = transmitted;
        self.scratch.delivered = delivered;

        // 7. Housekeeping.
        self.housekeeping();
        mark(&mut lap, 4);
        if let (Some((_, acc)), Some(p)) = (lap, &mut self.profile) {
            p.faults_ns += acc[0];
            p.transport_ns += acc[1];
            p.phy_ns += acc[2];
            p.mac_ns += acc[3];
            p.rlc_ns += acc[4];
        }
    }

    /// Whether the CN link eats a traversing packet right now (full
    /// outage, or the degrade-window loss draw).
    fn cn_link_loses_packet(&mut self) -> bool {
        if self.faults_active.cn_outage {
            return true;
        }
        self.faults_active.cn_loss > 0.0 && self.fault_rng.chance(self.faults_active.cn_loss)
    }

    /// Let the server push whatever the flow's window allows.
    fn server_emit(&mut self, flow: usize) {
        let now = self.now;
        let segs = {
            let f = &mut self.flows[flow];
            if f.done {
                return;
            }
            f.sender.emit(now)
        };
        let delay = self.cfg.cn_delay + self.faults_active.cn_extra_delay;
        let degraded = self.faults_active.cn_extra_delay > Dur::ZERO;
        for seg in segs {
            self.injected_bytes += seg.len as u64;
            self.cn_in_flight_bytes += seg.len as u64;
            if degraded {
                self.fault_counters.cn_delayed_pkts += 1;
            }
            self.events.schedule(
                now + delay,
                Ev::PktAtEnb {
                    flow,
                    seq: seg.seq,
                    len: seg.len,
                },
            );
        }
    }

    /// A downlink packet arrives at the xNodeB: PDCP inspection + RLC.
    fn on_pkt_at_enb(&mut self, flow: usize, seq: u64, len: u32) {
        let now = self.now;
        let (ue, tuple, size) = {
            let f = &self.flows[flow];
            (f.ue, f.tuple, f.size)
        };
        if self.flows[flow].done {
            // Stale retransmission of a completed flow: terminal for the
            // byte ledger.
            self.dropped_bytes += len as u64;
            return;
        }
        // PDCP: header inspection + per-flow state + MLFQ marking (§4.2).
        // The SRJF oracle overrides the information-agnostic priority
        // with one quantized from the flow's remaining size.
        let mut prio = self.flow_tables[ue].observe(tuple, len, now);
        if self.cfg.scheduler.uses_oracle_priority() {
            let remaining = size.saturating_sub(seq);
            prio = srjf_oracle_priority(remaining);
        }
        if self.flows_by_ue[ue].iter().all(|&x| x != flow) {
            self.flows_by_ue[ue].push(flow);
        }
        let sdu = RlcSdu {
            id: self.next_sdu_id,
            flow_id: flow as u64,
            tuple,
            len,
            offset: 0,
            priority: prio,
            arrival: now,
            seq,
        };
        self.next_sdu_id += 1;
        let res = match &mut self.rlc_tx[ue] {
            RlcTx::Um(um) => um.write_sdu(sdu),
            RlcTx::Am(am) => am.write_sdu(sdu),
        };
        if let Err(dropped) = res {
            // Either the incoming SDU (drop-tail) or a worse-priority
            // victim (push-out) was discarded: TCP sees the loss.
            self.buffer_drops += 1;
            self.dropped_bytes += dropped.remaining() as u64;
        }
    }

    /// Generate due GBR packets, reserve the RBs their delivery needs
    /// (lowest indices first — the SPS region), and deliver them with
    /// one-TTI air latency. GBR traffic rides robust low-MCS grants and
    /// is modelled loss-free; its latency distribution lands in
    /// [`Cell::gbr_latency`].
    fn serve_gbr(&mut self, rates: &mut TtiRates) {
        if self.gbr.is_empty() {
            return;
        }
        let now = self.now;
        let mut next_free_rb: usize = 0;
        let n_rbs = rates.rb_to_sb.len();
        for g in &mut self.gbr {
            while g.next_gen <= now {
                g.queue.push_back((g.next_gen, g.bearer.pkt_bytes));
                g.next_gen += g.bearer.interval;
            }
            while let Some(&(gen_at, bytes)) = g.queue.front() {
                // Rate of the bearer's UE on the next free RB.
                if next_free_rb >= n_rbs {
                    break; // SPS region exhausted this TTI
                }
                let sb = rates.rb_to_sb[next_free_rb];
                let rb_bits = rates.per_ue_sb[g.bearer.ue * rates.n_sb + sb];
                if rb_bits < 8.0 {
                    break; // UE out of range; retry next TTI
                }
                let rbs_needed = ((bytes as f64 * 8.0) / rb_bits).ceil() as usize;
                if next_free_rb + rbs_needed > n_rbs {
                    break;
                }
                for rb in next_free_rb..next_free_rb + rbs_needed {
                    rates.reserved[rb] = true;
                }
                next_free_rb += rbs_needed;
                g.queue.pop_front();
                // Delivered at the end of this TTI (one slot of air time
                // plus however long the packet waited for the slot).
                let delivered = now + self.tti;
                self.gbr_latency
                    .push(delivered.saturating_since(gen_at).as_millis_f64());
            }
        }
    }

    /// Bring the reusable rate matrix up to date for this TTI. A UE's
    /// row is rewritten only when its content version moved: a new CQI
    /// report was delivered, or the link went down/up (down rows are
    /// zeros, tagged with an odd version so they never alias live ones).
    fn refresh_rates(&self, rates: &mut TtiRates) {
        let n_sb = self.cfg.channel.n_subbands;
        let n_ues = self.cfg.n_ues;
        let n_rbs = self.channel.n_rbs() as usize;
        if rates.n_sb != n_sb || rates.n_ues != n_ues || rates.rb_to_sb.len() != n_rbs {
            rates.per_ue_sb = vec![0.0; n_ues * n_sb];
            rates.rb_to_sb = (0..self.channel.n_rbs())
                .map(|rb| self.channel.subband_of_rb(rb))
                .collect();
            rates.n_sb = n_sb;
            rates.n_ues = n_ues;
            rates.versions = vec![u64::MAX; n_ues];
        }
        rates.reserved.clear();
        rates.reserved.resize(n_rbs, false);
        for u in 0..n_ues {
            let link_up = self.faults_active.link_up(u);
            let want = self.channel.report_version(u) * 2 + (!link_up) as u64;
            if rates.versions[u] == want {
                continue;
            }
            rates.versions[u] = want;
            let row = &mut rates.per_ue_sb[u * n_sb..(u + 1) * n_sb];
            if link_up {
                for (sb, r) in row.iter_mut().enumerate() {
                    *r = self.channel.reported_rate_per_rb_subband(u, sb);
                }
            } else {
                row.fill(0.0);
            }
        }
    }

    fn build_ue_inputs_into(&mut self, out: &mut Vec<UeTti>) {
        let now = self.now;
        out.clear();
        out.reserve(self.cfg.n_ues);
        for ue in 0..self.cfg.n_ues {
            // Prune completed flows from the per-UE active list.
            let flows = &self.flows;
            self.flows_by_ue[ue].retain(|&fi| !flows[fi].done);
            // A UE in radio-link failure or detached cannot be scheduled.
            if !self.faults_active.link_up(ue) {
                out.push(UeTti::idle());
                continue;
            }
            // O(1) occupancy reads — no BufferStatus materialisation.
            let (queued, head_priority, hol) = match &self.rlc_tx[ue] {
                RlcTx::Um(um) => (
                    um.queued_bytes(),
                    um.head_priority(),
                    um.oldest_head_arrival(),
                ),
                RlcTx::Am(am) => (
                    am.pending_bytes(),
                    am.head_priority(),
                    am.oldest_head_arrival(),
                ),
            };
            // Pending HARQ retransmissions keep a UE schedulable even
            // with an empty RLC buffer.
            let harq_pending = !self.harq[ue].is_empty();
            if queued == 0 && !harq_pending {
                out.push(UeTti::idle());
                continue;
            }
            // Oracle inputs for SRJF/PSS/CQA (§6.2 grants them flow sizes).
            let mut min_remaining: Option<u64> = None;
            let mut has_qos = false;
            for &fi in &self.flows_by_ue[ue] {
                let f = &self.flows[fi];
                let remaining = f.size.saturating_sub(f.receiver.cum());
                if remaining == 0 {
                    continue;
                }
                min_remaining = Some(min_remaining.map_or(remaining, |m| m.min(remaining)));
                if f.size <= 10_000 {
                    has_qos = true;
                }
            }
            out.push(UeTti {
                active: true,
                head_priority,
                queued_bytes: queued,
                oracle_min_remaining: min_remaining,
                hol_delay: hol.map_or(Dur::ZERO, |a| now.saturating_since(a)),
                oracle_has_qos_flow: has_qos,
            });
        }
    }

    /// Serve the allocation: pull RLC data per (UE, subband) group, draw
    /// HARQ/residual errors, deliver to the UE stacks.
    /// Returns (transmitted bits, successfully delivered bits) per UE.
    ///
    /// Two air-interface error models are supported:
    /// * **folded HARQ** (default, `cfg.harq = None`): a failed TB is
    ///   never pulled from RLC — retransmission happens implicitly when
    ///   the data is re-served later (wasted airtime, added delay);
    /// * **explicit HARQ** (`cfg.harq = Some(..)`): failed TBs carry
    ///   their payload into per-UE HARQ processes, are retransmitted
    ///   after the HARQ RTT with chase-combining gain, and are dropped
    ///   to the residual-loss path after `max_tx` attempts. Due
    ///   retransmissions are served ahead of fresh data.
    fn transmit(
        &mut self,
        alloc: &Allocation,
        rates: &TtiRates,
        transmitted: &mut Vec<f64>,
        delivered: &mut Vec<f64>,
    ) {
        let n_ues = self.cfg.n_ues;
        let n_sb = self.cfg.channel.n_subbands;
        let mut group_bits = std::mem::take(&mut self.scratch.group_bits);
        group_bits.clear();
        group_bits.resize(n_ues * n_sb, 0.0);
        for (rb, assigned) in alloc.rb_to_ue.iter().enumerate() {
            if let Some(ue) = assigned {
                let u = *ue as usize;
                let sb = rates.rb_to_sb[rb];
                group_bits[u * n_sb + sb] += rates.per_ue_sb[u * n_sb + sb];
            }
        }
        transmitted.clear();
        transmitted.resize(n_ues, 0.0);
        delivered.clear();
        delivered.resize(n_ues, 0.0);
        let mut segs = std::mem::take(&mut self.scratch.segs);
        let now = self.now;
        let explicit_harq = self.cfg.harq.is_some();
        // A loss-spike window adds to the configured residual loss.
        let eff_loss = (self.cfg.residual_loss + self.faults_active.extra_loss).min(1.0);
        let spiking = self.faults_active.extra_loss > 0.0;
        for ue in 0..n_ues {
            if explicit_harq {
                // Serve due HARQ retransmissions ahead of fresh data,
                // drawing on the UE's *whole* TTI grant (a retransmitted
                // TB is not tied to the subband split of this TTI).
                let mut total: f64 = (0..n_sb).map(|sb| group_bits[ue * n_sb + sb]).sum();
                while let Some(tb) = self.harq[ue].pop_due(now, total) {
                    total -= tb.bits;
                    transmitted[ue] += tb.bits;
                    // Charge the airtime against the fullest groups.
                    let mut owed = tb.bits;
                    while owed > 0.0 {
                        let Some(max_sb) = (0..n_sb)
                            .max_by(|&a, &b| {
                                group_bits[ue * n_sb + a].total_cmp(&group_bits[ue * n_sb + b])
                            })
                            .filter(|&sb| group_bits[ue * n_sb + sb] > 0.0)
                        else {
                            break;
                        };
                        let take = owed.min(group_bits[ue * n_sb + max_sb]);
                        group_bits[ue * n_sb + max_sb] -= take;
                        owed -= take;
                    }
                    let gain = tb.combining_gain_db(self.harq[ue].config());
                    // Retransmissions frequency-hop (as LTE HARQ does),
                    // decorrelating the retry from the fade that killed
                    // the original transmission.
                    let sb = (tb.subband + tb.attempts as usize) % n_sb;
                    let pb = tb.payload.bytes;
                    if self.channel.transmission_succeeds_with_gain(ue, sb, gain) {
                        delivered[ue] += tb.bits;
                        self.harq_held_bytes -= pb;
                        self.deliver_payload(ue, tb.payload);
                    } else if self.harq[ue].on_failure(tb, now, self.tti).is_some() {
                        // Block exhausted its attempts: the payload is
                        // lost to the upper layers.
                        self.residual_losses += 1;
                        self.harq_held_bytes -= pb;
                        self.dropped_bytes += pb;
                    }
                }
            }
            for sb in 0..n_sb {
                let bits = group_bits[ue * n_sb + sb];
                if bits < 8.0 {
                    continue;
                }
                let budget_bits = bits;
                // Fresh transmission.
                let fresh_ok = self.channel.transmission_succeeds(ue, sb);
                if !explicit_harq && !fresh_ok {
                    // Folded model: the TB would need retransmission; we
                    // model it as wasted airtime with the data left queued.
                    self.harq_wasted_tbs += 1;
                    continue;
                }
                let budget = (budget_bits / 8.0).floor() as u64;
                match &mut self.rlc_tx[ue] {
                    RlcTx::Um(um) => {
                        segs.clear();
                        let used = um.pull_into(&mut segs, budget);
                        if segs.is_empty() {
                            continue;
                        }
                        transmitted[ue] += used as f64 * 8.0;
                        if !fresh_ok {
                            // Explicit HARQ: the whole TB awaits retx.
                            self.harq_wasted_tbs += 1;
                            let payload = HarqPayload::um(std::mem::take(&mut segs));
                            let pb = payload.bytes;
                            if self.harq[ue]
                                .on_failure(
                                    outran_phy::harq::HarqTb {
                                        payload,
                                        bits: used as f64 * 8.0,
                                        subband: sb,
                                        attempts: 1,
                                    },
                                    now,
                                    self.tti,
                                )
                                .is_some()
                            {
                                self.residual_losses += 1;
                                self.dropped_bytes += pb;
                            } else {
                                self.harq_held_bytes += pb;
                            }
                            continue;
                        }
                        for seg in segs.drain(..) {
                            // Residual (post-HARQ) loss is per segment:
                            // isolated holes that fast retransmit can
                            // repair, not whole-TB burst losses.
                            if self.rng.chance(eff_loss) {
                                self.residual_losses += 1;
                                self.dropped_bytes += seg.len as u64;
                                if spiking {
                                    self.fault_counters.spiked_losses += 1;
                                }
                                continue;
                            }
                            delivered[ue] += seg.len as f64 * 8.0;
                            self.deliver_um_segment(ue, seg);
                        }
                    }
                    RlcTx::Am(am) => {
                        let (pdus, _ctrl, used) = am.pull(budget, now);
                        if used == 0 {
                            continue;
                        }
                        transmitted[ue] += used as f64 * 8.0;
                        if !fresh_ok {
                            self.harq_wasted_tbs += 1;
                            if self.harq[ue]
                                .on_failure(
                                    outran_phy::harq::HarqTb {
                                        payload: HarqPayload::am(pdus),
                                        bits: used as f64 * 8.0,
                                        subband: sb,
                                        attempts: 1,
                                    },
                                    now,
                                    self.tti,
                                )
                                .is_some()
                            {
                                // AM recovers via NACK once the poll
                                // machinery notices the gap.
                                self.residual_losses += 1;
                            }
                            continue;
                        }
                        if self.rng.chance(eff_loss) {
                            self.residual_losses += 1;
                            if spiking {
                                self.fault_counters.spiked_losses += 1;
                            }
                            continue; // PDUs lost; AM will NACK-recover
                        }
                        delivered[ue] += used as f64 * 8.0;
                        self.deliver_am_pdus(ue, pdus);
                    }
                }
            }
        }
        self.scratch.group_bits = group_bits;
        self.scratch.segs = segs;
    }

    /// Deliver one UM segment into the UE stack (reassembly + TCP).
    fn deliver_um_segment(&mut self, ue: usize, seg: outran_rlc::sdu::RlcSegment) {
        let now = self.now;
        if seg.is_last() {
            let short = self.flows[seg.flow_id as usize].size <= 10_000;
            self.metrics
                .on_queue_delay(now.saturating_since(seg.arrival), short);
        }
        let RlcRx::Um(rx) = &mut self.rlc_rx[ue] else {
            unreachable!("UM tx with AM rx");
        };
        if let Some(d) = rx.on_segment(&seg, now) {
            self.delivered_bytes += d.len as u64;
            if self.audit_order {
                self.auditor.observe_delivery(now, ue, d.flow_id, d.sdu_id);
            }
            deliver_sdu_um(
                &mut self.flows,
                &mut self.events,
                &mut self.fct,
                &mut self.completions,
                &mut self.open_flows,
                now,
                self.cfg.cn_delay + self.cfg.ul_air_delay + self.faults_active.cn_extra_delay,
                d,
            );
        }
    }

    /// Deliver AM PDUs into the UE stack (in-order delivery + STATUS).
    fn deliver_am_pdus(&mut self, ue: usize, pdus: Vec<outran_rlc::am::AmPdu>) {
        let now = self.now;
        for pdu in pdus {
            if pdu.seg.is_last() {
                let short = self.flows[pdu.seg.flow_id as usize].size <= 10_000;
                self.metrics
                    .on_queue_delay(now.saturating_since(pdu.seg.arrival), short);
            }
            let RlcRx::Am(rx) = &mut self.rlc_rx[ue] else {
                unreachable!("AM tx with UM rx");
            };
            let (sdus, status) = rx.on_pdu(pdu, now);
            for d in sdus {
                self.delivered_bytes += d.len as u64;
                if self.audit_order {
                    self.auditor.observe_delivery(now, ue, d.flow_id, d.sdu_id);
                }
                deliver_sdu_um(
                    &mut self.flows,
                    &mut self.events,
                    &mut self.fct,
                    &mut self.completions,
                    &mut self.open_flows,
                    now,
                    self.cfg.cn_delay + self.cfg.ul_air_delay + self.faults_active.cn_extra_delay,
                    d,
                );
            }
            if let Some(status) = status {
                self.events
                    .schedule(now + self.cfg.ul_air_delay, Ev::StatusAtEnb { ue, status });
            }
        }
    }

    /// Deliver a HARQ-recovered transport block.
    fn deliver_payload(&mut self, ue: usize, payload: HarqPayload) {
        match payload.data {
            HarqData::Um(segs) => {
                for seg in segs {
                    self.deliver_um_segment(ue, seg);
                }
            }
            HarqData::Am(pdus) => self.deliver_am_pdus(ue, pdus),
        }
    }

    fn housekeeping(&mut self) {
        let now = self.now;
        // UM reassembly windows.
        for rx in &mut self.rlc_rx {
            if let RlcRx::Um(um) = rx {
                um.expire(now);
            }
        }
        // AM timers.
        for tx in &mut self.rlc_tx {
            if let RlcTx::Am(am) = tx {
                am.on_tick(now);
            }
        }
        // §6.3 priority reset. `catch_up` (not `due`) so active and
        // idle paths count crossed periods identically.
        if let Some(reset) = &mut self.reset {
            if reset.catch_up(now) > 0 {
                for ft in &mut self.flow_tables {
                    ft.reset_priorities();
                }
            }
        }
        // Flow-table GC once a second.
        if now.saturating_since(self.last_gc) >= Dur::from_secs(1) {
            self.last_gc = now;
            for ft in &mut self.flow_tables {
                ft.gc(now);
            }
        }
        // Periodic invariant audit.
        if self.auditor.due() {
            let snap = self.audit_snapshot();
            self.auditor.check(now, &snap);
        }
    }

    // ---- fault engine -------------------------------------------------

    /// Diff the new fault snapshot against the previous TTI's and run the
    /// edge actions: RLC re-establishment on RLF/detach entry, re-attach
    /// accounting on exit, and RLC capacity clamps for shrink windows.
    fn apply_fault_transitions(&mut self, active: ActiveFaults) {
        if active == self.faults_active {
            return;
        }
        let prev = std::mem::replace(&mut self.faults_active, active);
        for ue in 0..self.cfg.n_ues {
            let was_down = !prev.link_up(ue);
            let is_down = !self.faults_active.link_up(ue);
            if is_down && !was_down {
                if self.faults_active.in_rlf(ue) {
                    self.fault_counters.rlf_events += 1;
                }
                if self.faults_active.detached(ue) {
                    self.fault_counters.detach_events += 1;
                }
                self.reestablish_ue(ue);
            } else if was_down && !is_down {
                self.fault_counters.reattach_events += 1;
            }
        }
        let clamp = |cap: usize| cap.clamp(1, self.cfg.buffer_sdus);
        let new_cap = self.faults_active.buffer_cap.map(clamp);
        let old_cap = prev.buffer_cap.map(clamp);
        if new_cap != old_cap {
            if new_cap.is_some() && old_cap.is_none() {
                self.fault_counters.buffer_shrink_events += 1;
            }
            let target = new_cap.unwrap_or(self.cfg.buffer_sdus);
            for ue in 0..self.cfg.n_ues {
                let (sdus, bytes) = match &mut self.rlc_tx[ue] {
                    RlcTx::Um(um) => um.set_capacity(target),
                    RlcTx::Am(am) => am.set_capacity(target),
                };
                self.fault_counters.flushed_sdus += sdus;
                self.fault_counters.flushed_bytes += bytes;
                self.dropped_bytes += bytes;
            }
        }
    }

    /// RLC re-establishment for one UE (TS 36.322 §5.4): flush both
    /// entities and the UE's HARQ processes; TCP refills by
    /// retransmission once the link returns.
    fn reestablish_ue(&mut self, ue: usize) {
        let (tx_sdus, tx_bytes) = match &mut self.rlc_tx[ue] {
            RlcTx::Um(um) => um.reestablish(),
            RlcTx::Am(am) => am.reestablish(),
        };
        let (rx_sdus, rx_bytes) = match &mut self.rlc_rx[ue] {
            RlcRx::Um(um) => um.reestablish(),
            RlcRx::Am(am) => am.reestablish(),
        };
        // Tx flush bytes are terminal here; rx flush bytes are already
        // counted by the receiver's own discard ledger.
        self.dropped_bytes += tx_bytes;
        for tb in self.harq[ue].clear() {
            let pb = tb.payload.bytes;
            self.harq_held_bytes -= pb;
            self.dropped_bytes += pb;
        }
        self.fault_counters.reestablishments += 1;
        self.fault_counters.flushed_sdus += tx_sdus + rx_sdus;
        self.fault_counters.flushed_bytes += tx_bytes + rx_bytes;
        // SDU ids restart from the flush's perspective: drop order state.
        self.auditor.forget_ue(ue);
    }

    /// Assemble the full invariant snapshot. The byte ledger is exact in
    /// UM mode only: AM retransmissions would double-count, so AM runs
    /// audit queue depths and ordering but skip conservation.
    fn audit_snapshot(&self) -> AuditSnapshot {
        let queue_depths = (0..self.cfg.n_ues)
            .map(|ue| {
                let depth = match &self.rlc_tx[ue] {
                    RlcTx::Um(um) => um.len_sdus(),
                    RlcTx::Am(am) => am.len_sdus(),
                };
                (ue, depth)
            })
            .collect();
        let queue_bound = self
            .rlc_tx
            .iter()
            .map(|tx| match tx {
                RlcTx::Um(um) => um.capacity_sdus(),
                RlcTx::Am(am) => am.capacity_sdus(),
            })
            .max()
            .unwrap_or(self.cfg.buffer_sdus);
        let bytes = (self.cfg.rlc_mode == RlcMode::Um).then(|| {
            let queued: u64 = self
                .rlc_tx
                .iter()
                .map(|tx| match tx {
                    RlcTx::Um(um) => um.queued_bytes(),
                    RlcTx::Am(_) => 0,
                })
                .sum();
            let (held, discarded) = self
                .rlc_rx
                .iter()
                .map(|rx| match rx {
                    RlcRx::Um(um) => (um.held_bytes(), um.discarded_bytes),
                    RlcRx::Am(_) => (0, 0),
                })
                .fold((0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
            ByteLedger {
                injected: self.injected_bytes,
                delivered: self.delivered_bytes,
                dropped: self.dropped_bytes + discarded,
                in_flight: self.cn_in_flight_bytes + queued + self.harq_held_bytes + held,
            }
        });
        AuditSnapshot {
            bytes,
            queue_depths,
            queue_bound,
        }
    }

    /// Run the full invariant check right now (end-of-run hook) and
    /// return the total violation count so far.
    pub fn audit_now(&mut self) -> u64 {
        let snap = self.audit_snapshot();
        self.auditor.check(self.now, &snap);
        self.auditor.total_violations()
    }

    /// Retained invariant violations, in observation order.
    pub fn violations(&self) -> &[Violation] {
        self.auditor.violations()
    }

    /// Total invariant violations observed (including unretained ones).
    pub fn total_violations(&self) -> u64 {
        self.auditor.total_violations()
    }

    /// The invariant auditor (checks run, cleanliness, …).
    pub fn auditor(&self) -> &InvariantAuditor {
        &self.auditor
    }

    /// The current byte-conservation ledger (UM mode only).
    pub fn byte_ledger(&self) -> Option<ByteLedger> {
        self.audit_snapshot().bytes
    }

    /// Fault and recovery counters, merged with the live PHY/PDCP views.
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.fault_counters;
        s.cqi_frozen_reports = self.channel.cqi_frozen_reports;
        s.cqi_corrupted_reports = self.channel.cqi_corrupted_reports;
        s.flows_evicted = self.flow_tables.iter().map(|t| t.evictions()).sum();
        s
    }

    /// Export one UE's PDCP flow state — the §7 handover path ("the flow
    /// state of a user can also be copied along with the data").
    pub fn export_flow_state(&self, ue: usize) -> Vec<(FiveTuple, u64)> {
        self.flow_tables[ue].export()
    }

    /// Import flow state captured from a source cell at handover.
    pub fn import_flow_state(&mut self, ue: usize, entries: &[(FiveTuple, u64)]) {
        self.flow_tables[ue].import(entries, self.now);
    }

    /// Total flows registered.
    pub fn n_flows(&self) -> usize {
        self.flows.len()
    }

    /// Number of completed flows.
    pub fn n_completed(&self) -> usize {
        self.flows.iter().filter(|f| f.done).count()
    }

    /// Aggregate PDCP flow-table state bytes (Fig 13 memory accounting).
    pub fn flow_state_bytes(&self) -> usize {
        self.flow_tables.iter().map(|t| t.state_bytes()).sum()
    }

    /// Total flow-table entries across UEs.
    pub fn flow_table_entries(&self) -> usize {
        self.flow_tables.iter().map(|t| t.len()).sum()
    }

    /// Total UM reassembly-window discards across UEs (the §4.4 hazard
    /// the segmented-SDU promotion guards against).
    pub fn reassembly_discards(&self) -> u64 {
        self.rlc_rx
            .iter()
            .map(|rx| match rx {
                RlcRx::Um(um) => um.discarded_sdus,
                RlcRx::Am(_) => 0,
            })
            .sum()
    }

    /// The most recent RTT observed by any flow of `ue` (Fig 17 ①).
    pub fn last_rtt_of_ue(&self, ue: usize) -> Option<Dur> {
        self.flows
            .iter()
            .filter(|f| f.ue == ue)
            .filter_map(|f| f.sender.last_rtt)
            .next_back()
    }

    /// Mean of the last RTT samples across flows (Fig 17 ①).
    pub fn mean_last_rtt_ms(&self) -> f64 {
        let rtts: Vec<f64> = self
            .flows
            .iter()
            .filter_map(|f| f.sender.last_rtt)
            .map(|d| d.as_millis_f64())
            .collect();
        if rtts.is_empty() {
            f64::NAN
        } else {
            rtts.iter().sum::<f64>() / rtts.len() as f64
        }
    }
}

/// Quantize a flow's remaining size into one of 16 strict-priority
/// levels (log₂ spacing from 1 KB): the SRJF oracle's intra-UE ordering.
fn srjf_oracle_priority(remaining: u64) -> outran_pdcp::Priority {
    let level = (remaining / 1024 + 1).ilog2().min(15) as u8;
    outran_pdcp::Priority(level)
}

/// Deliver one reassembled SDU into the flow's TCP receiver; on
/// completion, record the FCT. (Free function so `transmit` can call it
/// while holding disjoint borrows of the cell's fields — hence the long
/// parameter list.)
#[allow(clippy::too_many_arguments)]
fn deliver_sdu_um(
    flows: &mut [FlowRt],
    events: &mut EventQueue<Ev>,
    fct: &mut FctCollector,
    completions: &mut Vec<FlowDone>,
    open_flows: &mut u64,
    now: Time,
    ul_delay: Dur,
    d: outran_rlc::um::DeliveredSdu,
) {
    let flow = d.flow_id as usize;
    let f = &mut flows[flow];
    if f.done {
        return;
    }
    let cum = f.receiver.on_segment(d.seq, d.len);
    events.schedule(now + ul_delay, Ev::AckAtServer { flow, cum });
    if f.receiver.complete() {
        f.done = true;
        *open_flows -= 1;
        let dur = now.saturating_since(f.spawn);
        fct.record(f.size, dur);
        completions.push(FlowDone {
            id: flow,
            ue: f.ue,
            bytes: f.size,
            spawn: f.spawn,
            fct: dur,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(kind: SchedulerKind, seed: u64) -> CellConfig {
        let mut cfg = CellConfig::lte_default(4, kind, seed);
        // Keep unit tests fast: modest bandwidth.
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        cfg
    }

    #[test]
    fn single_flow_completes() {
        let mut cell = Cell::new(small_cfg(SchedulerKind::Pf, 1));
        cell.schedule_flow(Time::from_millis(10), 0, 50_000, None);
        cell.run_until(Time::from_secs(5));
        let done = cell.take_completions();
        assert_eq!(
            done.len(),
            1,
            "flow must complete (drops={})",
            cell.buffer_drops
        );
        let d = done[0];
        assert_eq!(d.bytes, 50_000);
        // Sanity: FCT at least two RTT-ish (CN delay both ways).
        assert!(d.fct >= Dur::from_millis(20), "fct={}", d.fct);
        assert!(d.fct <= Dur::from_secs(3), "fct={}", d.fct);
    }

    #[test]
    fn many_flows_all_complete_all_schedulers() {
        for kind in [
            SchedulerKind::Pf,
            SchedulerKind::Mt,
            SchedulerKind::Rr,
            SchedulerKind::Srjf,
            SchedulerKind::Pss,
            SchedulerKind::Cqa,
            SchedulerKind::OutRan,
            SchedulerKind::StrictMlfq,
        ] {
            let mut cell = Cell::new(small_cfg(kind, 2));
            for i in 0..12 {
                let size = if i % 3 == 0 { 200_000 } else { 4_000 };
                cell.schedule_flow(Time::from_millis(5 + i * 40), (i % 4) as usize, size, None);
            }
            cell.run_until(Time::from_secs(12));
            assert_eq!(
                cell.n_completed(),
                12,
                "{}: only {}/{} flows completed",
                kind.name(),
                cell.n_completed(),
                12
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut cell = Cell::new(small_cfg(SchedulerKind::OutRan, 7));
            for i in 0..10 {
                cell.schedule_flow(
                    Time::from_millis(10 + i * 30),
                    (i % 4) as usize,
                    20_000,
                    None,
                );
            }
            cell.run_until(Time::from_secs(6));
            cell.take_completions()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn outran_beats_pf_for_short_behind_long() {
        // One UE downloads a huge file; another UE's short flows must not
        // be starved. Compare mean short FCT OutRAN vs PF on the same
        // seed/arrivals. (Coarse single-seed check; the full comparison
        // lives in the integration tests and benches.)
        let run = |kind| {
            let mut cell = Cell::new(small_cfg(kind, 11));
            // Long flow to UE 0 keeps its buffer hot.
            cell.schedule_flow(Time::from_millis(5), 0, 3_000_000, None);
            // Short flows to the same UE 0, arriving behind the elephant.
            for i in 0..10u64 {
                cell.schedule_flow(Time::from_millis(300 + i * 300), 0, 5_000, None);
            }
            cell.run_until(Time::from_secs(8));
            cell.fct.report().short_mean_ms
        };
        let pf = run(SchedulerKind::Pf);
        let or = run(SchedulerKind::OutRan);
        assert!(
            or < pf,
            "OutRAN short FCT ({or:.1} ms) must beat PF ({pf:.1} ms)"
        );
    }

    #[test]
    fn buffer_overflow_drops_and_recovers() {
        let mut cfg = small_cfg(SchedulerKind::Pf, 3);
        cfg.buffer_sdus = 8; // tiny buffer forces drops
        let mut cell = Cell::new(cfg);
        cell.schedule_flow(Time::from_millis(5), 0, 500_000, None);
        cell.run_until(Time::from_secs(20));
        assert!(cell.buffer_drops > 0, "tiny buffer must drop");
        assert_eq!(cell.n_completed(), 1, "TCP must recover from drops");
    }

    #[test]
    fn am_mode_completes_flows() {
        let mut cfg = small_cfg(SchedulerKind::OutRan, 4);
        cfg.rlc_mode = RlcMode::Am;
        cfg.residual_loss = 0.01; // exercise NACK recovery
        let mut cell = Cell::new(cfg);
        for i in 0..6 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 50),
                (i % 4) as usize,
                30_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(10));
        assert_eq!(cell.n_completed(), 6);
    }

    #[test]
    fn qos_oracle_feeds_qos_schedulers() {
        let mut cell = Cell::new(small_cfg(SchedulerKind::Cqa, 5));
        cell.schedule_flow(Time::from_millis(5), 0, 5_000, None); // short => QoS
        cell.schedule_flow(Time::from_millis(5), 1, 500_000, None);
        cell.run_until(Time::from_secs(6));
        assert_eq!(cell.n_completed(), 2);
    }

    #[test]
    fn metrics_populated() {
        let mut cell = Cell::new(small_cfg(SchedulerKind::Pf, 6));
        for i in 0..8 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 20),
                (i % 4) as usize,
                50_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(5));
        assert!(cell.metrics.spectral_efficiency() > 0.0);
        assert!(cell.metrics.mean_qdelay_ms() >= 0.0);
        assert!(cell.fct.count() > 0);
        assert!(cell.flow_state_bytes() > 0 || cell.flow_table_entries() == 0);
    }

    #[test]
    fn shared_conn_aggregates_sent_bytes() {
        // Two flows on one QUIC connection: the second one inherits the
        // accumulated sent-bytes (the §4.2 limitation).
        let mut cell = Cell::new(small_cfg(SchedulerKind::OutRan, 8));
        cell.schedule_flow(Time::from_millis(5), 0, 150_000, Some(777));
        cell.schedule_flow(Time::from_millis(1500), 0, 5_000, Some(777));
        cell.run_until(Time::from_secs(8));
        assert_eq!(cell.n_completed(), 2);
        // The flow table saw one tuple with both flows' bytes.
        assert!(
            cell.flow_table_entries() <= 1,
            "entries={}",
            cell.flow_table_entries()
        );
    }

    #[test]
    fn priority_reset_runs() {
        let mut cfg = small_cfg(SchedulerKind::OutRan, 9);
        cfg.outran.reset_period = Some(Dur::from_millis(500));
        let mut cell = Cell::new(cfg);
        cell.schedule_flow(Time::from_millis(5), 0, 100_000, None);
        cell.run_until(Time::from_secs(3));
        assert!(cell.reset.as_ref().unwrap().resets >= 4);
    }
}

#[cfg(test)]
mod harq_tests {
    use super::*;
    use outran_phy::harq::HarqConfig;

    fn harq_cfg(kind: SchedulerKind, seed: u64) -> CellConfig {
        let mut cfg = CellConfig::lte_default(4, kind, seed);
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        cfg.harq = Some(HarqConfig::default());
        cfg
    }

    #[test]
    fn explicit_harq_completes_flows() {
        // A TB that exhausts its HARQ attempts during a deep fade is a
        // whole-window burst loss for TCP, so some flows legitimately
        // take several RTO backoffs to finish — allow a long horizon.
        let mut cell = Cell::new(harq_cfg(SchedulerKind::OutRan, 31));
        for i in 0..8u64 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 60),
                (i % 4) as usize,
                40_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(40));
        assert_eq!(cell.n_completed(), 8);
        // The explicit path must actually exercise retransmissions.
        let retx: u64 = cell.harq.iter().map(|h| h.retx_served).sum();
        assert!(retx > 0, "no HARQ retransmissions happened");
    }

    #[test]
    fn explicit_harq_am_mode_completes() {
        let mut cfg = harq_cfg(SchedulerKind::Pf, 32);
        cfg.rlc_mode = RlcMode::Am;
        let mut cell = Cell::new(cfg);
        for i in 0..6u64 {
            cell.schedule_flow(
                Time::from_millis(10 + i * 80),
                (i % 4) as usize,
                30_000,
                None,
            );
        }
        cell.run_until(Time::from_secs(12));
        assert_eq!(cell.n_completed(), 6);
    }

    #[test]
    fn explicit_harq_is_deterministic() {
        let run = || {
            let mut cell = Cell::new(harq_cfg(SchedulerKind::OutRan, 33));
            for i in 0..6u64 {
                cell.schedule_flow(
                    Time::from_millis(10 + i * 50),
                    (i % 4) as usize,
                    20_000,
                    None,
                );
            }
            cell.run_until(Time::from_secs(8));
            cell.take_completions()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn harq_drops_surface_as_losses_under_deep_fade() {
        let mut cfg = harq_cfg(SchedulerKind::Pf, 34);
        // Weak combining + single attempt => frequent exhaustion.
        cfg.harq = Some(HarqConfig {
            max_tx: 1,
            combining_gain_db: 0.0,
            ..HarqConfig::default()
        });
        // Cap the SINR so the link sits at mid-CQI with a real error rate.
        cfg.channel.sinr_cap_db = 16.0;
        let mut cell = Cell::new(cfg);
        cell.schedule_flow(Time::from_millis(10), 0, 200_000, None);
        cell.run_until(Time::from_secs(30));
        assert!(
            cell.residual_losses > 0,
            "max_tx=1 must surface losses to TCP"
        );
        // A ~30 % TB-loss link drives real TCP into deep RTO backoff;
        // completion is not guaranteed, but data must keep flowing and
        // the simulator must stay sane.
        assert!(
            cell.metrics.total_bits() > 100_000.0,
            "link must still deliver data"
        );
    }
}

impl Cell {
    /// Diagnostics helper: dump stalled-flow state (for debugging only).
    #[doc(hidden)]
    pub fn debug_stall(&self) {
        for (i, f) in self.flows.iter().enumerate() {
            if !f.done {
                println!(
                    "flow {i} ue {} size {} cum {} snd_una {} in_flight {} rto {:?}",
                    f.ue,
                    f.size,
                    f.receiver.cum(),
                    f.sender.in_flight(),
                    f.sender.in_flight(),
                    f.sender.rto_deadline()
                );
            }
        }
        for (u, h) in self.harq.iter().enumerate() {
            if !h.is_empty() {
                println!(
                    "ue {u} harq pending {} retx_served {} dropped {}",
                    h.len(),
                    h.retx_served,
                    h.dropped_tbs
                );
            }
        }
        for (u, tx) in self.rlc_tx.iter().enumerate() {
            let q = match tx {
                RlcTx::Um(um) => um.queued_bytes(),
                RlcTx::Am(am) => am.buffer_status().total(),
            };
            if q > 0 {
                println!("ue {u} rlc queued {q}");
            }
        }
    }
}

#[cfg(test)]
mod gbr_tests {
    use super::*;

    fn cell_with_volte(kind: SchedulerKind, seed: u64) -> Cell {
        let mut cfg = CellConfig::lte_default(4, kind, seed);
        cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
        cfg.channel.n_subbands = 4;
        let mut cell = Cell::new(cfg);
        cell.add_gbr_bearer(GbrBearer::volte(0));
        cell
    }

    #[test]
    fn volte_latency_is_bounded_under_load() {
        // Table 1's point: the Conversational class rides a dedicated
        // GBR bearer and is isolated from best-effort congestion.
        for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
            let mut cell = cell_with_volte(kind, 41);
            // Heavy best-effort elephants on every UE.
            for i in 0..8u64 {
                cell.schedule_flow(
                    Time::from_millis(5 + i * 20),
                    (i % 4) as usize,
                    1_000_000,
                    None,
                );
            }
            cell.run_until(Time::from_secs(10));
            let n = cell.gbr_latency.count();
            assert!(n > 400, "{}: VoLTE packets delivered = {n}", kind.name());
            let p99 = cell.gbr_latency.percentile(99.0);
            assert!(
                p99 <= 25.0,
                "{}: VoLTE p99 latency {p99} ms must stay near one packet interval",
                kind.name()
            );
        }
    }

    #[test]
    fn gbr_consumes_little_capacity() {
        // 14 kbps of VoLTE must not dent best-effort throughput.
        let tput = |with_gbr: bool| {
            let mut cfg = CellConfig::lte_default(2, SchedulerKind::Pf, 42);
            cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
            cfg.channel.n_subbands = 4;
            let mut cell = Cell::new(cfg);
            if with_gbr {
                cell.add_gbr_bearer(GbrBearer::volte(0));
            }
            cell.schedule_flow(Time::from_millis(5), 1, 4_000_000, None);
            cell.run_until(Time::from_secs(6));
            cell.metrics.total_bits()
        };
        let without = tput(false);
        let with = tput(true);
        assert!(
            with > without * 0.93,
            "GBR carve-out too costly: {with:.0} vs {without:.0}"
        );
    }

    #[test]
    fn gbr_delivery_is_deterministic() {
        let run = || {
            let mut cell = cell_with_volte(SchedulerKind::OutRan, 43);
            cell.schedule_flow(Time::from_millis(5), 1, 200_000, None);
            cell.run_until(Time::from_secs(4));
            (cell.gbr_latency.count(), cell.n_completed())
        };
        assert_eq!(run(), run());
    }
}
