//! The single-cell end-to-end simulator — now a thin orchestrator over
//! the staged per-TTI pipeline in [`crate::stages`].
//!
//! One [`Cell`] owns the full downlink path of Figure 11(b):
//!
//! * **Server side** — one TCP sender per flow (Cubic), emitting
//!   segments that reach the xNodeB after the wired CN delay
//!   ([`crate::stages::IngressStage`]);
//! * **xNodeB** — per-UE PDCP flow table (MLFQ marking), per-UE RLC
//!   entity ([`crate::stages::RlcDownStage`]), and a MAC
//!   scheduler invoked every TTI over the PHY channel's per-RB rates
//!   ([`crate::stages::MacSchedStage`]);
//! * **Air interface** — per-(UE, subband) transport-block error draws
//!   ([`crate::stages::PhyTxStage`]);
//! * **UE side** — RLC reassembly, per-flow TCP receiver, cumulative
//!   ACKs returning over the uplink delay
//!   ([`crate::stages::DeliveryStage`]);
//! * **Maintenance** — fault edges, invariant audits, RLC timers and GC
//!   ([`crate::stages::HousekeepingStage`]).
//!
//! Stages own disjoint slices of the former monolith's state and talk
//! only through the typed messages in [`crate::stages`]; the `Cell`
//! sequences them. All randomness is forked from one seed: equal seeds
//! ⇒ identical runs.

pub use crate::config::{CellConfig, FlowDone, GbrBearer, RlcMode, SchedulerKind};
pub use crate::stages::StepProfile;

use crate::stages::{
    DeliveryStage, HousekeepingStage, IngressStage, MacSchedStage, ObserverHost, PhyTxStage,
    RlcDownStage, RlcRx, RlcTx, StageId, StageObserver, TtiSummary, UeContext,
};
use outran_faults::{AuditSnapshot, ByteLedger, FaultStats, InvariantAuditor, Violation};
use outran_metrics::{CellMetrics, FctCollector};
use outran_pdcp::FiveTuple;
use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};
use outran_simcore::{Dur, Rng, Time};

/// The single-cell simulator: the orchestrator of the staged pipeline.
pub struct Cell {
    cfg: CellConfig,
    now: Time,
    tti: Dur,
    /// Per-UE contexts shared across stages (flow table, RLC, HARQ).
    ues: Vec<UeContext>,
    ingress: IngressStage,
    rlc_down: RlcDownStage,
    mac: MacSchedStage,
    phy: PhyTxStage,
    delivery: DeliveryStage,
    hk: HousekeepingStage,
    /// Optional structural pipeline observer (see [`crate::stages`]).
    observer: ObserverHost,
    /// One-way air latency of delivered GBR packets (ms).
    pub gbr_latency: outran_simcore::Percentiles,
    /// FCT statistics.
    pub fct: FctCollector,
    /// Cell-level telemetry.
    pub metrics: CellMetrics,
    /// TTIs in which the cell had no work to do. Idle TTIs run O(1)
    /// accounting and draw no randomness in *both* stepping modes (see
    /// DESIGN.md "Virtual-time skipping").
    pub idle_ttis: u64,
    /// Idle TTIs crossed in one [`Cell::fast_forward`] jump instead of
    /// being stepped individually (event-driven mode only; always 0
    /// under [`Cell::run_until_dense`]).
    pub skipped_ttis: u64,
    /// Idle TTIs accrued since the last active one, not yet folded into
    /// the scheduler's averages (applied as one composed `on_idle` at
    /// the next active TTI — identically in both stepping modes).
    pending_idle: u64,
}

impl Cell {
    /// Build a cell from its configuration.
    pub fn new(cfg: CellConfig) -> Cell {
        let root = Rng::new(cfg.seed);
        let tti = cfg.channel.radio.tti();
        let bandwidth_hz = cfg.channel.radio.bandwidth_khz as f64 * 1e3;
        Cell {
            now: Time::ZERO,
            tti,
            ues: UeContext::build_all(&cfg),
            ingress: IngressStage::new(),
            rlc_down: RlcDownStage::new(&cfg),
            mac: MacSchedStage::new(&cfg, tti),
            phy: PhyTxStage::new(&cfg, &root),
            delivery: DeliveryStage::new(),
            hk: HousekeepingStage::new(&cfg, &root),
            observer: ObserverHost::default(),
            gbr_latency: outran_simcore::Percentiles::new(),
            fct: FctCollector::new(),
            metrics: CellMetrics::new(bandwidth_hz, cfg.n_ues, tti, 50, cfg.tf),
            idle_ttis: 0,
            skipped_ttis: 0,
            pending_idle: 0,
            cfg,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// TTI length in force.
    pub fn tti(&self) -> Dur {
        self.tti
    }

    /// Configuration (read-only).
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Register a flow of `bytes` toward `ue`, starting at the server at
    /// `at` (≥ now). `conn` groups flows onto a shared five-tuple (QUIC
    /// multiplexing, §4.2 limitation); `None` gives the flow its own.
    pub fn schedule_flow(&mut self, at: Time, ue: usize, bytes: u64, conn: Option<u64>) -> usize {
        assert!(ue < self.cfg.n_ues);
        assert!(bytes > 0);
        self.ingress
            .schedule_flow(self.now, self.tti, &self.cfg, at, ue, bytes, conn)
    }

    /// Attach a dedicated GBR bearer (semi-persistent grants, outside
    /// the dynamic scheduler) — the Conversational class of Table 1.
    pub fn add_gbr_bearer(&mut self, bearer: GbrBearer) {
        assert!(bearer.ue < self.cfg.n_ues);
        assert!(bearer.pkt_bytes > 0 && bearer.interval > Dur::ZERO);
        self.mac.add_gbr_bearer(self.now, bearer);
    }

    /// Drain completed-flow records accumulated since the last call.
    pub fn take_completions(&mut self) -> Vec<FlowDone> {
        self.delivery.take_completions()
    }

    /// Advance the simulation until `t`, event-driven: dense per-TTI
    /// stepping while any work is pending, one [`Cell::fast_forward`]
    /// jump across every provably idle span. Ends on the same TTI-grid
    /// point, with bit-identical state, as [`Cell::run_until_dense`].
    pub fn run_until(&mut self, t: Time) {
        while self.now < t {
            let na = self.next_activity_time();
            let limit = if na < t { na } else { t };
            // Every TTI ending strictly before `limit` is provably
            // idle: skip them in one jump, then step the TTI that
            // contains `limit` (step() re-checks, so an over-estimate
            // merely lands on another idle tick).
            let skip = limit.since(self.now).as_nanos().saturating_sub(1) / self.tti.as_nanos();
            if skip > 0 {
                self.fast_forward(self.now + Dur(self.tti.as_nanos() * skip));
            }
            self.step();
        }
    }

    /// Advance the simulation until `t` by stepping every TTI — the
    /// pre-event-driven loop, kept as the reference arm for equivalence
    /// tests and the dense side of the idle-heavy benchmark.
    pub fn run_until_dense(&mut self, t: Time) {
        while self.now < t {
            self.step();
        }
    }

    /// Advance one TTI. An idle TTI — no due event, no queued or
    /// in-flight data anywhere, no GBR grant or fault edge due — does
    /// O(1) accounting and draws no randomness; an active TTI runs the
    /// full stage pipeline. Dense and event-driven runs share this entry
    /// point, so they execute identical work at identical instants.
    pub fn step(&mut self) {
        self.now += self.tti;
        if self.has_work_at(self.now) {
            self.active_step();
        } else {
            self.idle_accrue(1);
        }
    }

    /// Whether any subsystem has (or may have) work at instant `now`,
    /// the end of the current TTI. `false` certifies that the full
    /// pipeline would be a no-op apart from O(1) accounting.
    fn has_work_at(&self, now: Time) -> bool {
        if self.ingress.open_flows() > 0 {
            // A started flow owns in-flight packets, queued data or a
            // pending RTO; conservatively treat it as work every TTI so
            // the RTO/watchdog scans run exactly as in dense stepping.
            return true;
        }
        if let Some(t) = self.ingress.peek_event_time() {
            if t <= now {
                return true;
            }
        }
        if let Some(e) = self.hk.next_fault_edge() {
            if e <= now {
                return true;
            }
        }
        if self.mac.gbr_has_work(now) {
            return true;
        }
        self.ues.iter().any(|ctx| ctx.has_radio_work())
    }

    /// Earliest instant at which the cell may next have work to do.
    ///
    /// Returns `now` while anything is pending; otherwise the minimum
    /// over the processes that can create work out of quiet: the event
    /// queue's head, the next GBR packet generation and the next
    /// fault-window edge. CQI reports and mobility are deliberately
    /// *not* activity sources — the channel freezes across idle spans
    /// in both stepping modes and is composed lazily on wake (DESIGN.md
    /// "Virtual-time skipping"). Never later than the first TTI at
    /// which dense stepping would do work; `Time(u64::MAX)` when no
    /// future work can arise.
    pub fn next_activity_time(&self) -> Time {
        if self.has_work_at(self.now) {
            return self.now;
        }
        let mut next = Time(u64::MAX);
        if let Some(t) = self.ingress.peek_event_time() {
            next = next.min(t);
        }
        if let Some(t) = self.mac.next_gbr_gen() {
            next = next.min(t);
        }
        if let Some(e) = self.hk.next_fault_edge() {
            next = next.min(e);
        }
        next
    }

    /// Jump the clock across a span of idle TTIs in O(1). `to` must lie
    /// on the TTI grid strictly ahead of `now`, and every TTI ending at
    /// or before `to` must be idle (callers derive `to` from
    /// [`Cell::next_activity_time`]). Skipped TTIs draw no randomness
    /// in either stepping mode, so only integer accounting (and any
    /// crossed priority-reset periods) applies; fading and mobility are
    /// composed lazily by the next active TTI's channel advance.
    pub fn fast_forward(&mut self, to: Time) {
        debug_assert!(to > self.now, "fast_forward must move forward");
        debug_assert_eq!(
            to.since(self.now).as_nanos() % self.tti.as_nanos(),
            0,
            "fast_forward target must be TTI-grid aligned"
        );
        let k = to.since(self.now).as_nanos() / self.tti.as_nanos();
        self.now = to;
        self.skipped_ttis += k;
        self.idle_accrue(k);
    }

    /// Book `k` idle TTIs ending at `now`: idle counters, the metrics
    /// wall-clock, and any priority-reset periods the span crossed.
    /// Yields the same state whether called once per idle TTI (dense)
    /// or once per skipped span (event-driven).
    fn idle_accrue(&mut self, k: u64) {
        self.idle_ttis += k;
        self.pending_idle += k;
        self.metrics.note_idle_ttis(k);
        self.hk.idle_reset_catch_up(self.now, &mut self.ues);
    }

    /// Start attributing active-TTI wall time per stage (see
    /// [`StepProfile`]); installs a [`crate::stages::StageTimer`] as the
    /// pipeline observer, adding a few `Instant` reads per active TTI.
    pub fn enable_profiling(&mut self) {
        self.observer.install_timer();
    }

    /// Accumulated per-stage timings, if profiling was enabled.
    pub fn profile(&self) -> Option<&StepProfile> {
        self.observer.profile()
    }

    /// Attach a structural pipeline observer (replacing any previous
    /// one, including the profiling timer). The observer sees every
    /// stage bracket and an end-of-TTI [`TtiSummary`] on active TTIs —
    /// see [`crate::stages`].
    pub fn set_stage_observer(&mut self, obs: Box<dyn StageObserver + Send>) {
        self.observer.install(obs);
    }

    /// The full per-TTI pipeline (runs only on TTIs that have work):
    /// housekeeping (fault edges) → ingress → PHY (channel) → MAC →
    /// PHY (transmit) → delivery → housekeeping (timers, audit).
    fn active_step(&mut self) {
        let now = self.now;
        // Fold the idle span since the last active TTI into the
        // scheduler's long-term averages first, so this tick's `allocate`
        // sees the same decayed state a per-TTI zero-service update would
        // have produced.
        if self.pending_idle > 0 {
            let k = self.pending_idle;
            self.pending_idle = 0;
            self.mac.fold_idle(k);
        }
        self.hk.observe_clock(now);

        // Fault engine: flatten the plan at `now` and apply window
        // edges (flush on RLF/detach entry, capacity clamps, …).
        self.observer.enter(StageId::Housekeeping);
        self.hk
            .apply_fault_edges(now, &self.cfg, &mut self.ues, &mut self.phy);
        self.observer.exit(StageId::Housekeeping);

        // Ingress: event drain (arrivals, packets, ACKs, STATUS), RTO
        // scan, stalled-flow watchdog. Packets reaching the xNodeB
        // cross into the RLC-down stage.
        self.observer.enter(StageId::Ingress);
        self.ingress.run(
            now,
            &self.cfg,
            &mut self.ues,
            &mut self.rlc_down,
            &mut self.hk,
            &mut self.observer,
        );
        self.observer.exit(StageId::Ingress);

        // Channel evolution (CQI staleness/corruption pushed first).
        self.observer.enter(StageId::PhyTx);
        self.phy
            .advance_channel(now, self.cfg.n_ues, self.hk.faults());
        self.observer.exit(StageId::PhyTx);

        // Scheduler inputs — semi-persistent GBR grants are carved out
        // first, so the dynamic scheduler only sees the leftover RBs —
        // then RB allocation.
        self.observer.enter(StageId::MacSched);
        self.mac
            .refresh_rates(&self.cfg, self.phy.channel(), self.hk.faults());
        self.mac.serve_gbr(now, self.tti, &mut self.gbr_latency);
        self.mac.build_ue_inputs(
            now,
            &self.cfg,
            &self.ingress,
            self.hk.faults(),
            &mut self.ues,
        );
        let (alloc, used_rbs, total_rbs) = self.mac.allocate(now);
        self.hk.observe_rbs(now, used_rbs, total_rbs);
        self.observer.exit(StageId::MacSched);

        // Transmission: per-(UE, subband) transport-block groups, HARQ
        // and residual-error draws; survivors become the ordered
        // delivery batch.
        self.observer.enter(StageId::PhyTx);
        self.phy.transmit(
            now,
            self.tti,
            &self.cfg,
            &alloc,
            self.mac.rates(),
            &mut self.ues,
            &mut self.hk,
            &mut self.observer,
        );
        self.observer.exit(StageId::PhyTx);

        // Delivery: replay the batch into the UE stacks (reassembly,
        // TCP receive, completion recording).
        self.observer.enter(StageId::Delivery);
        let mut batch = self.phy.take_deliveries();
        self.delivery.run(
            now,
            &self.cfg,
            &mut batch,
            &mut self.ues,
            &mut self.ingress,
            &mut self.hk,
            &mut self.fct,
            &mut self.metrics,
        );
        self.phy.restore_deliveries(batch);
        self.observer.exit(StageId::Delivery);

        // Scheduler feedback and telemetry.
        self.observer.enter(StageId::MacSched);
        self.mac.on_served(self.phy.transmitted());
        self.observer.exit(StageId::MacSched);
        self.metrics
            .on_tti(self.phy.delivered(), self.mac.had_data());

        // Housekeeping: RLC timers, priority reset, flow-table GC and
        // the periodic invariant audit.
        self.observer.enter(StageId::Housekeeping);
        self.hk.timers_and_gc(now, &mut self.ues);
        if self.hk.audit_due() {
            let snap = self.audit_snapshot();
            self.hk.audit_check(now, &snap);
        }
        self.observer.exit(StageId::Housekeeping);

        if self.observer.is_active() {
            let summary = TtiSummary {
                used_rbs,
                total_rbs,
                delivered_bytes: self.delivery.delivered_bytes(),
                completed_flows: self.fct.count() as u64,
            };
            self.observer.on_tti(now, &summary);
        }
    }

    /// Assemble the full invariant snapshot from the stages' ledger
    /// terms. The byte ledger is exact in UM mode only: AM
    /// retransmissions would double-count, so AM runs audit queue
    /// depths and ordering but skip conservation.
    fn audit_snapshot(&self) -> AuditSnapshot {
        let queue_depths = self
            .ues
            .iter()
            .enumerate()
            .map(|(ue, ctx)| (ue, ctx.rlc_tx.len_sdus()))
            .collect();
        let queue_bound = self
            .ues
            .iter()
            .map(|ctx| ctx.rlc_tx.capacity_sdus())
            .max()
            .unwrap_or(self.cfg.buffer_sdus);
        let bytes = (self.cfg.rlc_mode == RlcMode::Um).then(|| {
            let queued: u64 = self
                .ues
                .iter()
                .map(|ctx| match &ctx.rlc_tx {
                    RlcTx::Um(um) => um.queued_bytes(),
                    RlcTx::Am(_) => 0,
                })
                .sum();
            let (held, discarded) = self
                .ues
                .iter()
                .map(|ctx| match &ctx.rlc_rx {
                    RlcRx::Um(um) => (um.held_bytes(), um.discarded_bytes),
                    RlcRx::Am(_) => (0, 0),
                })
                .fold((0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
            let dropped = self.ingress.dropped_bytes()
                + self.rlc_down.dropped_bytes()
                + self.phy.dropped_bytes()
                + self.hk.dropped_bytes();
            ByteLedger {
                injected: self.ingress.injected_bytes(),
                delivered: self.delivery.delivered_bytes(),
                dropped: dropped + discarded,
                in_flight: self.ingress.cn_in_flight_bytes()
                    + queued
                    + self.phy.harq_held_bytes()
                    + held,
            }
        });
        AuditSnapshot {
            bytes,
            queue_depths,
            queue_bound,
        }
    }

    /// Run the full invariant check right now (end-of-run hook) and
    /// return the total violation count so far.
    pub fn audit_now(&mut self) -> u64 {
        let snap = self.audit_snapshot();
        self.hk.audit_check(self.now, &snap);
        self.hk.auditor().total_violations()
    }

    /// Retained invariant violations, in observation order.
    pub fn violations(&self) -> &[Violation] {
        self.hk.auditor().violations()
    }

    /// Total invariant violations observed (including unretained ones).
    pub fn total_violations(&self) -> u64 {
        self.hk.auditor().total_violations()
    }

    /// The invariant auditor (checks run, cleanliness, …).
    pub fn auditor(&self) -> &InvariantAuditor {
        self.hk.auditor()
    }

    /// The current byte-conservation ledger (UM mode only).
    pub fn byte_ledger(&self) -> Option<ByteLedger> {
        self.audit_snapshot().bytes
    }

    /// Fault and recovery counters, merged with the live PHY/PDCP views.
    pub fn fault_stats(&self) -> FaultStats {
        let mut s = self.hk.counters();
        s.cqi_frozen_reports = self.phy.channel().cqi_frozen_reports;
        s.cqi_corrupted_reports = self.phy.channel().cqi_corrupted_reports;
        s.flows_evicted = self.ues.iter().map(|ctx| ctx.flow_table.evictions()).sum();
        s
    }

    /// Export one UE's PDCP flow state — the §7 handover path ("the flow
    /// state of a user can also be copied along with the data").
    pub fn export_flow_state(&self, ue: usize) -> Vec<(FiveTuple, u64)> {
        self.ues[ue].flow_table.export()
    }

    /// Import flow state captured from a source cell at handover.
    pub fn import_flow_state(&mut self, ue: usize, entries: &[(FiveTuple, u64)]) {
        self.ues[ue].flow_table.import(entries, self.now);
    }

    /// Total flows registered.
    pub fn n_flows(&self) -> usize {
        self.ingress.n_flows()
    }

    /// Number of completed flows.
    pub fn n_completed(&self) -> usize {
        self.ingress.n_completed()
    }

    /// Aggregate PDCP flow-table state bytes (Fig 13 memory accounting).
    pub fn flow_state_bytes(&self) -> usize {
        self.ues
            .iter()
            .map(|ctx| ctx.flow_table.state_bytes())
            .sum()
    }

    /// Total flow-table entries across UEs.
    pub fn flow_table_entries(&self) -> usize {
        self.ues.iter().map(|ctx| ctx.flow_table.len()).sum()
    }

    /// Total UM reassembly-window discards across UEs (the §4.4 hazard
    /// the segmented-SDU promotion guards against).
    pub fn reassembly_discards(&self) -> u64 {
        self.ues
            .iter()
            .map(|ctx| match &ctx.rlc_rx {
                RlcRx::Um(um) => um.discarded_sdus,
                RlcRx::Am(_) => 0,
            })
            .sum()
    }

    /// SDUs dropped at full RLC buffers.
    pub fn buffer_drops(&self) -> u64 {
        self.rlc_down.buffer_drops()
    }

    /// Transport blocks wasted by (HARQ-recovered) errors.
    pub fn harq_wasted_tbs(&self) -> u64 {
        self.phy.harq_wasted_tbs()
    }

    /// Residual-loss events (post-HARQ losses surfaced to TCP/RLC).
    pub fn residual_losses(&self) -> u64 {
        self.phy.residual_losses()
    }

    /// The most recent RTT observed by any flow of `ue` (Fig 17 ①).
    pub fn last_rtt_of_ue(&self, ue: usize) -> Option<Dur> {
        self.ingress.last_rtt_of_ue(ue)
    }

    /// Mean of the last RTT samples across flows (Fig 17 ①).
    pub fn mean_last_rtt_ms(&self) -> f64 {
        self.ingress.mean_last_rtt_ms()
    }

    /// HARQ retransmissions served across UEs (explicit-HARQ mode).
    #[doc(hidden)]
    pub fn harq_retx_served(&self) -> u64 {
        self.ues.iter().map(|ctx| ctx.harq.retx_served).sum()
    }

    /// Priority resets executed so far (`None` if no reset period).
    #[doc(hidden)]
    pub fn priority_resets(&self) -> Option<u64> {
        self.hk.priority_resets()
    }

    /// Serialize the cell's full dynamic state (checkpointing): the
    /// clock, every per-UE context, all six pipeline stages and the
    /// collectors. The configuration and the TTI length are *not*
    /// written — restore is construct-then-overlay: build the cell from
    /// the identical [`CellConfig`], then [`Cell::load_snap`] the
    /// dynamic state on top. The pipeline observer is runtime-only
    /// wiring and does not travel.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.time(self.now);
        w.seq(self.ues.iter(), |w, u| u.snap(w));
        self.ingress.snap(w);
        self.rlc_down.snap(w);
        self.mac.snap(w);
        self.phy.snap(w);
        self.delivery.snap(w);
        self.hk.snap(w);
        self.gbr_latency.snap(w);
        self.fct.snap(w);
        self.metrics.snap(w);
        w.u64(self.idle_ttis);
        w.u64(self.skipped_ttis);
        w.u64(self.pending_idle);
    }

    /// Overlay checkpointed state from [`Cell::snap`] output onto a
    /// cell freshly built from the *same* configuration. After this, the
    /// cell continues bit-identically to the one that was snapshotted —
    /// in both dense and event-driven stepping.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.now = r.time()?;
        let n_ues = r.usize()?;
        if n_ues != self.ues.len() {
            return Err(SnapError::Malformed(
                "UE count disagrees with configuration",
            ));
        }
        for ue in &mut self.ues {
            ue.load_snap(&self.cfg, r)?;
        }
        self.ingress.load_snap(&self.cfg, r)?;
        self.rlc_down.load_snap(r)?;
        self.mac.load_snap(r)?;
        self.phy.load_snap(r)?;
        self.delivery.load_snap(r)?;
        self.hk.load_snap(r)?;
        self.gbr_latency = outran_simcore::Percentiles::unsnap(r)?;
        self.fct = FctCollector::unsnap(r)?;
        self.metrics.load_snap(r)?;
        self.idle_ttis = r.u64()?;
        self.skipped_ttis = r.u64()?;
        self.pending_idle = r.u64()?;
        Ok(())
    }

    /// Diagnostics helper: dump stalled-flow state (for debugging only).
    #[doc(hidden)]
    pub fn debug_stall(&self) {
        self.ingress.debug_dump_stalled();
        for (u, ctx) in self.ues.iter().enumerate() {
            if !ctx.harq.is_empty() {
                println!(
                    "ue {u} harq pending {} retx_served {} dropped {}",
                    ctx.harq.len(),
                    ctx.harq.retx_served,
                    ctx.harq.dropped_tbs
                );
            }
        }
        for (u, ctx) in self.ues.iter().enumerate() {
            let q = match &ctx.rlc_tx {
                RlcTx::Um(um) => um.queued_bytes(),
                RlcTx::Am(am) => am.buffer_status().total(),
            };
            if q > 0 {
                println!("ue {u} rlc queued {q}");
            }
        }
    }
}
