//! Crash-safe checkpoint files for long-horizon runs.
//!
//! A checkpoint is a [`SnapshotFile`] (magic, format version, per-section
//! digests — see `outran_simcore::snap`) holding:
//!
//! * a `meta` section — the original CLI argv (so `resume` can rebuild
//!   the *identical* experiment configuration), the simulation instant
//!   of the snapshot, the stepping mode and the cell count;
//! * one `cell.<i>` section per cell — the full dynamic state captured
//!   by [`Cell::snap`].
//!
//! Restore is construct-then-overlay: rebuild each [`Cell`] from the run
//! configuration (construction draws the same RNG forks), then overlay
//! the checkpointed dynamic state with [`Cell::load_snap`]. A resumed
//! run is bit-identical to an uninterrupted one — the golden-digest
//! tests in `crates/ran/tests/checkpoint_resume.rs` prove it in both
//! stepping modes with chaos faults active.
//!
//! Persistence is atomic: the file is written to a temp sibling and
//! renamed into place, so a crash mid-write leaves either the previous
//! checkpoint or none — never a torn one.

use std::path::Path;

use outran_simcore::snap::{write_atomic, SnapError, SnapReader, SnapWriter, SnapshotFile};
use outran_simcore::Time;

use crate::cell::Cell;

/// Everything `resume` needs to rebuild the run around the cell state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// The original process argv (program name included), replayed by
    /// `outran-sim resume` to reconstruct the experiment configuration.
    pub argv: Vec<String>,
    /// Simulation instant the snapshot was taken at (a whole-second
    /// epoch boundary).
    pub sim_time: Time,
    /// Whether the run used dense per-TTI stepping (`false` =
    /// event-driven). Recorded for diagnostics; both modes restore from
    /// the same state and stay bit-identical.
    pub dense: bool,
    /// Number of `cell.<i>` sections present.
    pub n_cells: usize,
}

impl CheckpointMeta {
    fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.argv.iter(), |w, a| w.str(a));
        w.time(self.sim_time);
        w.bool(self.dense);
        w.usize(self.n_cells);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<CheckpointMeta, SnapError> {
        Ok(CheckpointMeta {
            argv: r.seq(|r| r.str())?,
            sim_time: r.time()?,
            dense: r.bool()?,
            n_cells: r.usize()?,
        })
    }
}

/// Name of cell section `i`.
fn cell_section(i: usize) -> String {
    format!("cell.{i}")
}

/// Assemble a checkpoint from `meta` and the cells' dynamic state.
pub fn snapshot_cells(meta: &CheckpointMeta, cells: &[&Cell]) -> SnapshotFile {
    debug_assert_eq!(meta.n_cells, cells.len());
    let mut f = SnapshotFile::new();
    let mut w = SnapWriter::new();
    meta.snap(&mut w);
    f.add("meta", w);
    for (i, cell) in cells.iter().enumerate() {
        let mut w = SnapWriter::new();
        cell.snap(&mut w);
        f.add(&cell_section(i), w);
    }
    f
}

/// [`snapshot_cells`] for the common single-cell run.
pub fn snapshot_cell(meta: &CheckpointMeta, cell: &Cell) -> SnapshotFile {
    snapshot_cells(meta, &[cell])
}

/// Write a checkpoint to `path` atomically (temp sibling + rename).
pub fn write_checkpoint(
    path: &Path,
    meta: &CheckpointMeta,
    cells: &[&Cell],
) -> Result<(), SnapError> {
    let file = snapshot_cells(meta, cells);
    write_atomic(path, &file.to_bytes())
}

/// Read a checkpoint file and decode its `meta` section (sections are
/// digest-verified on read; corruption surfaces as
/// [`SnapError::DigestMismatch`], truncation as [`SnapError::Truncated`]).
pub fn read_checkpoint(path: &Path) -> Result<(CheckpointMeta, SnapshotFile), SnapError> {
    let file = SnapshotFile::read_file(path)?;
    let meta = read_meta(&file)?;
    Ok((meta, file))
}

/// Decode the `meta` section of an already-loaded checkpoint.
pub fn read_meta(file: &SnapshotFile) -> Result<CheckpointMeta, SnapError> {
    let mut r = SnapReader::new(file.section("meta")?);
    let meta = CheckpointMeta::unsnap(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapError::Malformed("trailing bytes in meta section"));
    }
    Ok(meta)
}

/// Overlay checkpointed state for cell `i` onto a cell freshly built
/// from the same configuration the snapshot was taken under.
pub fn restore_cell(file: &SnapshotFile, i: usize, cell: &mut Cell) -> Result<(), SnapError> {
    let mut r = SnapReader::new(file.section(&cell_section(i))?);
    cell.load_snap(&mut r)?;
    if !r.is_exhausted() {
        return Err(SnapError::Malformed("trailing bytes in cell section"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellConfig, SchedulerKind};
    use outran_simcore::Dur;

    fn tiny_cell() -> Cell {
        let mut cell = Cell::new(CellConfig::lte_default(2, SchedulerKind::OutRan, 7));
        cell.schedule_flow(Time::from_millis(1), 0, 40_000, None);
        cell.schedule_flow(Time::from_millis(3), 1, 8_000, None);
        cell
    }

    #[test]
    fn meta_roundtrip() {
        let meta = CheckpointMeta {
            argv: vec![
                "outran-sim".into(),
                "run".into(),
                "--load".into(),
                "0.6".into(),
            ],
            sim_time: Time::from_secs(3),
            dense: false,
            n_cells: 1,
        };
        let mut w = SnapWriter::new();
        meta.snap(&mut w);
        let bytes = w.into_bytes();
        let back = CheckpointMeta::unsnap(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn cell_snapshot_roundtrip_is_bit_identical() {
        let mut a = tiny_cell();
        a.run_until(Time::from_secs(1));
        let meta = CheckpointMeta {
            argv: vec!["test".into()],
            sim_time: a.now(),
            dense: false,
            n_cells: 1,
        };
        let file = snapshot_cell(&meta, &a);
        let bytes = file.to_bytes();
        let back = SnapshotFile::from_bytes(&bytes).unwrap();
        let mut b = tiny_cell();
        restore_cell(&back, 0, &mut b).unwrap();
        // Continue both sides and compare final state snapshots.
        a.run_until(Time::from_secs(6));
        b.run_until(Time::from_secs(6));
        let fa = snapshot_cell(&meta, &a);
        let fb = snapshot_cell(&meta, &b);
        assert_eq!(fa.digest(), fb.digest(), "diverged after restore");
        assert_eq!(a.n_completed(), b.n_completed());
    }

    #[test]
    fn atomic_write_then_read_back() {
        let dir = std::env::temp_dir().join(format!("outran-ckpt-test-{}", std::process::id()));
        let path = dir.join("t.ckpt");
        let mut cell = tiny_cell();
        cell.run_until_dense(Time::from_millis(500));
        let meta = CheckpointMeta {
            argv: vec!["x".into()],
            sim_time: cell.now(),
            dense: true,
            n_cells: 1,
        };
        write_checkpoint(&path, &meta, &[&cell]).unwrap();
        let (back_meta, file) = read_checkpoint(&path).unwrap();
        assert_eq!(back_meta, meta);
        let mut fresh = tiny_cell();
        restore_cell(&file, 0, &mut fresh).unwrap();
        assert_eq!(fresh.now(), cell.now());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_into_wrong_config_is_an_error() {
        let cell = tiny_cell();
        let meta = CheckpointMeta {
            argv: vec!["x".into()],
            sim_time: Time::ZERO,
            dense: false,
            n_cells: 1,
        };
        let file = snapshot_cell(&meta, &cell);
        // Different UE count must be rejected, not mis-restored.
        let mut wrong = Cell::new(CellConfig::lte_default(3, SchedulerKind::OutRan, 7));
        assert!(restore_cell(&file, 0, &mut wrong).is_err());
        let _ = Dur::ZERO;
    }
}
