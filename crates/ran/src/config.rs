//! Cell configuration surface: scheduler selection, radio/transport
//! knobs and the public flow-completion record.
//!
//! Split out of [`crate::cell`] so the orchestrator stays a thin
//! pipeline driver; every name here is re-exported from `cell` for
//! source compatibility.

use outran_core::OutRanConfig;
use outran_faults::{AuditConfig, FaultPlan};
use outran_phy::channel::ChannelConfig;
use outran_simcore::{Dur, Time};
use outran_transport::TcpConfig;

/// Which MAC scheduler drives the cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Proportional Fair (baseline).
    Pf,
    /// Max Throughput.
    Mt,
    /// Round Robin.
    Rr,
    /// Blind Equal Throughput (classic LTE baseline).
    Bet,
    /// Modified Largest Weighted Delay First (classic LTE baseline).
    Mlwdf,
    /// Oracle SRJF (channel-blind, perfect flow sizes).
    Srjf,
    /// Priority Set Scheduler (QoS-aware baseline).
    Pss,
    /// Channel & QoS Aware scheduler (QoS-aware baseline).
    Cqa,
    /// OutRAN with the paper's default ε = 0.2 over PF.
    OutRan,
    /// OutRAN with an explicit ε over PF (ε = 0 ⇒ intra-user only).
    OutRanEps(f64),
    /// OutRAN over the MT metric (Fig 18b ablation).
    OutRanOverMt(f64),
    /// Strict MLFQ: ε = 1, the "entire room for SJF" comparison (Fig 7).
    StrictMlfq,
}

impl SchedulerKind {
    /// Whether this scheduler family uses the per-UE MLFQ at RLC
    /// (baselines run the legacy FIFO).
    pub fn uses_mlfq(self) -> bool {
        matches!(
            self,
            SchedulerKind::OutRan
                | SchedulerKind::OutRanEps(_)
                | SchedulerKind::OutRanOverMt(_)
                | SchedulerKind::StrictMlfq
        )
    }

    /// Whether this scheduler performs *flow-level* scheduling with
    /// oracle flow sizes (SRJF): the RLC then orders SDUs by remaining
    /// flow size instead of PDCP's sent-bytes MLFQ, reproducing the
    /// NS-3 SRJF that "schedules flows based on the remaining flow size".
    pub fn uses_oracle_priority(self) -> bool {
        matches!(self, SchedulerKind::Srjf)
    }

    /// Display name. Allocation-free: parameterized variants render
    /// their family name — benches that sweep ε build their own labels,
    /// and [`SchedulerKind::label`] renders the parameter when needed.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Pf => "PF",
            SchedulerKind::Mt => "MT",
            SchedulerKind::Rr => "RR",
            SchedulerKind::Bet => "BET",
            SchedulerKind::Mlwdf => "M-LWDF",
            SchedulerKind::Srjf => "SRJF",
            SchedulerKind::Pss => "PSS",
            SchedulerKind::Cqa => "CQA",
            SchedulerKind::OutRan => "OutRAN",
            SchedulerKind::OutRanEps(_) => "OutRAN(e)",
            SchedulerKind::OutRanOverMt(_) => "OutRAN-MT(e)",
            SchedulerKind::StrictMlfq => "StrictMLFQ",
        }
    }

    /// Full display label including any scheduler parameter (allocates;
    /// use [`SchedulerKind::name`] on hot rendering paths).
    pub fn label(self) -> String {
        match self {
            SchedulerKind::OutRanEps(e) => format!("OutRAN(e={e})"),
            SchedulerKind::OutRanOverMt(e) => format!("OutRAN-MT(e={e})"),
            other => other.name().to_string(),
        }
    }
}

/// RLC mode for the data bearers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlcMode {
    /// Unacknowledged Mode (the paper's default).
    Um,
    /// Acknowledged Mode (§6.3 case study).
    Am,
}

/// Full cell configuration.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// PHY/channel configuration (see [`outran_phy::scenario`]).
    pub channel: ChannelConfig,
    /// Number of attached UEs.
    pub n_ues: usize,
    /// MAC scheduler.
    pub scheduler: SchedulerKind,
    /// PF fairness window T_f.
    pub tf: Dur,
    /// OutRAN policy knobs (MLFQ thresholds, promotion, reset, …).
    pub outran: OutRanConfig,
    /// RLC mode.
    pub rlc_mode: RlcMode,
    /// Per-UE RLC buffer capacity in SDUs (srsENB default 128; Fig 3b
    /// scales it ×5).
    pub buffer_sdus: usize,
    /// One-way server↔P-GW wired delay (Fig 11b: 10 ms; Fig 17: 20 ms
    /// remote / 5 ms MEC).
    pub cn_delay: Dur,
    /// Extra uplink latency for ACK/STATUS delivery beyond `cn_delay`
    /// (air + processing).
    pub ul_air_delay: Dur,
    /// TCP endpoint configuration.
    pub tcp: TcpConfig,
    /// Residual (post-HARQ) transport-block loss probability.
    pub residual_loss: f64,
    /// Leftover-capacity policy of the SRJF oracle (see
    /// [`outran_mac::srjf::SrjfMode`]). `Waterfall` is the good-faith
    /// engineering reading; `WinnerOnly` reproduces the severe
    /// SE/fairness/long-flow damage the paper measures under its
    /// high-variance LTE channel trace, where most of the full-bandwidth
    /// grant to the shortest flow's user is wasted.
    pub srjf_mode: outran_mac::srjf::SrjfMode,
    /// Explicit HARQ retransmission modelling (`None` = the default
    /// folded model where a failed TB simply is not pulled from RLC).
    /// With `Some`, failed blocks are retransmitted after the HARQ RTT
    /// with chase-combining gain and dropped after `max_tx` attempts.
    pub harq: Option<outran_phy::harq::HarqConfig>,
    /// Root seed.
    pub seed: u64,
    /// Scheduled fault timeline (empty = fault-free run).
    pub faults: FaultPlan,
    /// Invariant-auditor cadence and retention.
    pub audit: AuditConfig,
    /// Stalled-flow watchdog: force a TCP timeout after this long with
    /// no cumulative-ACK progress on a started flow (`None` disables).
    pub watchdog: Option<Dur>,
    /// Per-UE PDCP flow-table admission cap (`None` = unbounded); when
    /// full, the least-recently-seen entry is evicted to admit new flows.
    pub max_flow_entries: Option<usize>,
}

impl CellConfig {
    /// The paper's main LTE setting (§3/§6.2) for a given scheduler.
    pub fn lte_default(n_ues: usize, scheduler: SchedulerKind, seed: u64) -> CellConfig {
        CellConfig {
            channel: ChannelConfig::lte_default(),
            n_ues,
            scheduler,
            tf: Dur::from_millis(1000),
            outran: OutRanConfig::default(),
            rlc_mode: RlcMode::Um,
            buffer_sdus: 128,
            cn_delay: Dur::from_millis(10),
            ul_air_delay: Dur::from_millis(4),
            tcp: TcpConfig::default(),
            residual_loss: 0.002,
            srjf_mode: outran_mac::srjf::SrjfMode::Waterfall,
            harq: None,
            seed,
            faults: FaultPlan::new(),
            audit: AuditConfig::default(),
            watchdog: None,
            max_flow_entries: None,
        }
    }
}

/// A dedicated-bearer (GBR) traffic source — the Conversational class of
/// Table 1, served by semi-persistent grants outside the dynamic
/// scheduler (how VoLTE is carried in practice). OutRAN never touches
/// this traffic: it targets only the default best-effort bearer.
#[derive(Debug, Clone, Copy)]
pub struct GbrBearer {
    /// Destination UE.
    pub ue: usize,
    /// Packet payload size in bytes (VoLTE AMR frame bundles ~35 B).
    pub pkt_bytes: u32,
    /// Packet generation interval (VoLTE: 20 ms).
    pub interval: Dur,
}

impl GbrBearer {
    /// A VoLTE-like bearer at the Table 1 GBR of 14 kbps.
    pub fn volte(ue: usize) -> GbrBearer {
        GbrBearer {
            ue,
            pkt_bytes: 35,
            interval: Dur::from_millis(20),
        }
    }
}

/// A completed flow record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDone {
    /// Flow index (as returned by [`crate::cell::Cell::schedule_flow`]).
    pub id: usize,
    /// Destination UE.
    pub ue: usize,
    /// Flow size in bytes.
    pub bytes: u64,
    /// When the flow started at the server.
    pub spawn: Time,
    /// Flow completion time.
    pub fct: Dur,
}
