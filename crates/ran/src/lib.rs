//! # outran-ran
//!
//! The end-to-end cell simulator assembling every substrate into the
//! paper's evaluation topology (Figure 11b):
//!
//! ```text
//! remote server ──wired (10 ms)── CN/P-GW ── xNodeB ──air── UEs
//!      TCP senders                          PDCP → RLC → MAC → PHY
//! ```
//!
//! * [`qos`] — the 3GPP QCI/5QI profile model behind Table 1: why all
//!   internet traffic lands on the default best-effort bearer.
//! * [`cell`] — the single-cell discrete-event simulator: TTI-clocked
//!   MAC/PHY with event-driven flow arrivals, TCP feedback, RLC UM/AM,
//!   OutRAN or any baseline scheduler.
//! * [`experiment`] — a builder + report API over [`cell`] for the
//!   common "Poisson flows at load ρ, measure FCT/SE/fairness" pattern
//!   used by most figures.
//! * [`webplt`] — the browser page-load driver for the PLT experiments
//!   (Figures 12/21/22): object fetches over a loaded cell, ≤6
//!   concurrent connections, HTML-first, render time.
//! * [`multicell`] — the Colosseum-style multi-cell wrapper (Figure 19).
//! * [`pool`] — a std-only scoped-thread worker pool for fanning
//!   independent experiment cells across cores with bit-identical
//!   results versus serial execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod checkpoint;
pub mod config;
pub mod experiment;
pub mod multicell;
pub mod pool;
pub mod qos;
pub mod stages;
pub mod webplt;

pub use cell::{Cell, CellConfig, FlowDone, RlcMode, SchedulerKind, StepProfile};
pub use checkpoint::CheckpointMeta;
pub use experiment::{Experiment, ExperimentReport};
pub use multicell::{MultiCell, MultiCellRun};
pub use pool::{default_threads, parallel_map, parallel_map_eager, WorkerFailure};
pub use qos::{AppKind, BearerKind, QosProfile, TrafficClass};
