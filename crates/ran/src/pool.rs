//! A std-only scoped-thread worker pool for fanning independent
//! experiment cells (scenario × load × replication × scheduler) across
//! cores.
//!
//! Design constraints (see DESIGN.md "Performance model"):
//!
//! * **No new dependencies.** The workspace builds offline against
//!   `crates/compat/*` shims, so the pool is built from
//!   [`std::thread::scope`] plus a [`Mutex`]-guarded job queue. No
//!   `rayon`, no channels beyond std.
//! * **Bit-identical to serial execution.** Each job is a pure function
//!   of its input (every `Experiment::run()` forks its own RNG tree from
//!   the root seed), so the only thing parallelism could perturb is
//!   *ordering*. Jobs carry their index and results are sorted back into
//!   submission order before returning, making `parallel_map` an exact
//!   drop-in for `items.into_iter().map(f).collect()`.
//! * **Panic propagation.** A worker panic propagates out of
//!   [`std::thread::scope`], so a failing experiment still fails the
//!   sweep loudly instead of hanging.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The default worker count: the `OUTRAN_THREADS` environment variable
/// if set to a positive integer, otherwise the machine's available
/// parallelism, otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("OUTRAN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` worker threads, returning the
/// results in submission order.
///
/// With `threads <= 1`, or fewer than two jobs per worker
/// (`items.len() < 2 × threads`), this degrades to a plain serial map on
/// the calling thread: spawning and joining a scoped pool costs more
/// than it saves until each worker has at least a couple of jobs to
/// amortise it (the `speedup < 1` artifact the BENCH_2 sweep showed on
/// small machines). Jobs known to be individually heavy can bypass the
/// heuristic with [`parallel_map_eager`].
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 || n < 2 * workers {
        return items.into_iter().map(f).collect();
    }
    pooled_map(workers, items, f)
}

/// [`parallel_map`] without the jobs-per-worker heuristic: pools
/// whenever `threads > 1` and there are at least two items. For
/// coarse-grained jobs (whole cells, multi-second epochs) where the
/// pool setup cost is negligible against a single job.
pub fn parallel_map_eager<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    pooled_map(workers, items, f)
}

fn pooled_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Poison recovery instead of panicking: a poisoned lock
                // means another worker already panicked, and the scope
                // will re-raise that panic at join; the queue itself is
                // still structurally sound.
                let job = jobs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                match job {
                    Some((idx, item)) => {
                        let out = f(item);
                        results
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((idx, out));
                    }
                    None => break,
                }
            });
        }
    });

    let mut out = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    out.sort_by_key(|&(idx, _)| idx);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let par = parallel_map(threads, items.clone(), |x| x * x);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |x| x);
        assert!(empty.is_empty());
        let one = parallel_map(4, vec![7u64], |x| x + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(16, vec![1, 2, 3], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn small_sweeps_run_inline() {
        // Fewer than two jobs per worker: no pool is spun up, the map
        // runs on the calling thread.
        let main = std::thread::current().id();
        let out = parallel_map(4, vec![1, 2, 3], |x| {
            assert_eq!(std::thread::current().id(), main);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn eager_matches_serial() {
        let items: Vec<u64> = (0..7).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(parallel_map_eager(4, items, |x| x * 3), serial);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        parallel_map(2, vec![0, 1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
