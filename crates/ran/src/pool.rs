//! A std-only scoped-thread worker pool for fanning independent
//! experiment cells (scenario × load × replication × scheduler) across
//! cores.
//!
//! Design constraints (see DESIGN.md "Performance model"):
//!
//! * **No new dependencies.** The workspace builds offline against
//!   `crates/compat/*` shims, so the pool is built from
//!   [`std::thread::scope`] plus a [`Mutex`]-guarded job queue. No
//!   `rayon`, no channels beyond std.
//! * **Bit-identical to serial execution.** Each job is a pure function
//!   of its input (every `Experiment::run()` forks its own RNG tree from
//!   the root seed), so the only thing parallelism could perturb is
//!   *ordering*. Jobs carry their index and results are sorted back into
//!   submission order before returning, making `parallel_map` an exact
//!   drop-in for `items.into_iter().map(f).collect()` up to the
//!   per-job `Result` wrapper.
//! * **Supervised execution.** A panicking job no longer aborts the
//!   whole sweep: [`parallel_map`] catches the unwind, retries the job
//!   once on its cloned input (a deterministic failure fails twice; a
//!   transient one — exhausted address space, a poisoned downstream
//!   lock — may recover) and surfaces a persistent failure as a
//!   structured [`WorkerFailure`] in that job's result slot, so a
//!   5000-point sweep reports one bad point instead of losing the other
//!   4999. [`parallel_map_eager`] keeps the old propagate-the-panic
//!   contract: its callers thread non-`Clone` state (whole [`Cell`]s)
//!   through the pool and cannot re-run a job whose input was consumed.
//!
//! [`Cell`]: crate::cell::Cell

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A job that panicked on its first run *and* on its deterministic
/// retry, reported in the job's result slot instead of aborting the
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// Submission index of the failed job.
    pub index: usize,
    /// Attempts made (always 2: the first run plus one retry).
    pub attempts: u32,
    /// The panic payload, stringified (`&str` / `String` payloads pass
    /// through verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} panicked after {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

/// Stringify a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// Run one job under supervision: catch a panic, retry once on the
/// cloned input, surface a second panic as [`WorkerFailure`].
fn run_supervised<T, R, F>(index: usize, item: T, f: &F) -> Result<R, WorkerFailure>
where
    T: Clone,
    F: Fn(T) -> R,
{
    let retry_input = item.clone();
    match catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(r) => Ok(r),
        Err(_) => match catch_unwind(AssertUnwindSafe(|| f(retry_input))) {
            Ok(r) => Ok(r),
            Err(payload) => Err(WorkerFailure {
                index,
                attempts: 2,
                message: panic_message(payload.as_ref()),
            }),
        },
    }
}

/// The default worker count: the `OUTRAN_THREADS` environment variable
/// if set to a positive integer, otherwise the machine's available
/// parallelism, otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("OUTRAN_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` worker threads, returning the
/// per-job results in submission order. Each job runs supervised: a
/// panic is caught and retried once on the job's cloned input, and a job
/// that panics twice yields `Err(WorkerFailure)` in its slot instead of
/// aborting the sweep.
///
/// With `threads <= 1`, or fewer than two jobs per worker
/// (`items.len() < 2 × threads`), this degrades to a plain serial map on
/// the calling thread: spawning and joining a scoped pool costs more
/// than it saves until each worker has at least a couple of jobs to
/// amortise it (the `speedup < 1` artifact the BENCH_2 sweep showed on
/// small machines). Jobs known to be individually heavy can bypass the
/// heuristic with [`parallel_map_eager`].
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<Result<R, WorkerFailure>>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 || n < 2 * workers {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_supervised(i, item, &f))
            .collect();
    }
    pooled_map(workers, items, |i, item| run_supervised(i, item, &f))
}

/// [`parallel_map`] without the jobs-per-worker heuristic or the
/// supervision wrapper: pools whenever `threads > 1` and there are at
/// least two items, and a worker panic propagates out of the scope (its
/// callers thread non-`Clone` state — whole cells — through the pool,
/// so a retry has no input to re-run). For coarse-grained jobs (whole
/// cells, multi-second epochs) where the pool setup cost is negligible
/// against a single job.
pub fn parallel_map_eager<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    pooled_map(workers, items, |_, item| f(item))
}

fn pooled_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Poison recovery instead of panicking: a poisoned lock
                // means another worker already panicked, and the scope
                // will re-raise that panic at join; the queue itself is
                // still structurally sound.
                let job = jobs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_front();
                match job {
                    Some((idx, item)) => {
                        let out = f(idx, item);
                        results
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((idx, out));
                    }
                    None => break,
                }
            });
        }
    });

    let mut out = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    out.sort_by_key(|&(idx, _)| idx);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oks<R: Clone>(results: &[Result<R, WorkerFailure>]) -> Vec<R> {
        results
            .iter()
            .map(|r| r.as_ref().expect("unexpected worker failure").clone())
            .collect()
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let par = parallel_map(threads, items.clone(), |x| x * x);
            assert_eq!(oks(&par), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty = parallel_map(4, Vec::<u64>::new(), |x| x);
        assert!(empty.is_empty());
        let one = parallel_map(4, vec![7u64], |x| x + 1);
        assert_eq!(oks(&one), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(16, vec![1, 2, 3], |x| x * 10);
        assert_eq!(oks(&out), vec![10, 20, 30]);
    }

    #[test]
    fn small_sweeps_run_inline() {
        // Fewer than two jobs per worker: no pool is spun up, the map
        // runs on the calling thread.
        let main = std::thread::current().id();
        let out = parallel_map(4, vec![1, 2, 3], |x| {
            assert_eq!(std::thread::current().id(), main);
            x + 1
        });
        assert_eq!(oks(&out), vec![2, 3, 4]);
    }

    #[test]
    fn eager_matches_serial() {
        let items: Vec<u64> = (0..7).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(parallel_map_eager(4, items, |x| x * 3), serial);
    }

    #[test]
    fn deterministic_panic_surfaces_as_failure() {
        // A deterministic panic fails both attempts and lands as a
        // structured failure in its own slot; every other job survives.
        for threads in [1, 2, 4] {
            let out = parallel_map(threads, vec![0u64, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("boom at {x}");
                }
                x * 10
            });
            assert_eq!(out.len(), 4);
            assert_eq!(out[0], Ok(0));
            assert_eq!(out[1], Ok(10));
            assert_eq!(out[3], Ok(30));
            let failure = out[2].as_ref().unwrap_err();
            assert_eq!(failure.index, 2);
            assert_eq!(failure.attempts, 2);
            assert!(failure.message.contains("boom at 2"), "{failure}");
        }
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let tries = AtomicU32::new(0);
        let out = parallel_map(1, vec![5u64], |x| {
            if tries.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient");
            }
            x + 1
        });
        assert_eq!(out, vec![Ok(6)]);
        assert_eq!(tries.load(Ordering::SeqCst), 2);
    }

    #[test]
    #[should_panic]
    fn eager_worker_panic_still_propagates() {
        parallel_map_eager(2, vec![0, 1, 2, 3], |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
