//! 3GPP QoS profiles and the Table 1 classification.
//!
//! Table 1 of the paper measures, on a commercial-grade 5G NSA testbed,
//! which QoS profile each application actually receives: only VoIP gets a
//! dedicated GBR bearer (QCI 1); IMS signalling rides QCI 5; **every
//! internet application — web browsing, social networking, TCP video,
//! file transfer — shares the default best-effort bearer with QCI 6.**
//! That observation motivates the whole paper: the latency-sensitive
//! Interactive class and the heavy Background class are "the same
//! citizens" at the base station.

/// 3GPP generic traffic classes (TS 23.107).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Real-time conversational (VoIP, video calls).
    Conversational,
    /// Streaming (real-time audio/video distribution).
    Streaming,
    /// Interactive (web browsing, social networking, signalling).
    Interactive,
    /// Background (file transfer, TCP video prefetch).
    Background,
}

/// Bearer type carrying the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BearerKind {
    /// Dedicated GBR bearer (guaranteed bit rate).
    DedicatedGbr,
    /// Default bearer (best effort, non-GBR).
    Default,
}

/// Application categories probed in the Table 1 measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// VoIP / VoLTE.
    Voip,
    /// IMS signalling.
    ImsSignaling,
    /// Web browsing (e.g. Chrome).
    WebBrowsing,
    /// Social networking (e.g. Instagram).
    SocialNetworking,
    /// TCP-based video (e.g. YouTube prefetch).
    TcpVideo,
    /// Bulk file transfer (e.g. ftp).
    FileTransfer,
}

/// A resolved QoS profile (one Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosProfile {
    /// The LTE QCI (identical to the 5QI observed on 5G NSA/SA).
    pub qci: u8,
    /// Traffic class of the application.
    pub class: TrafficClass,
    /// Bearer carrying it.
    pub bearer: BearerKind,
    /// Guaranteed bit rate in bit/s, if any.
    pub gbr_bps: Option<u64>,
    /// Service description as in the table.
    pub service: &'static str,
}

impl QosProfile {
    /// Whether this profile is best-effort (the OutRAN target class).
    pub fn is_best_effort(&self) -> bool {
        self.bearer == BearerKind::Default
    }
}

/// Classify an application the way the commercial network of Table 1
/// does.
pub fn classify(app: AppKind) -> QosProfile {
    match app {
        AppKind::Voip => QosProfile {
            qci: 1,
            class: TrafficClass::Conversational,
            bearer: BearerKind::DedicatedGbr,
            gbr_bps: Some(14_000), // "GBR = 14 kbps"
            service: "Guaranteed Bitrate (GBR)",
        },
        AppKind::ImsSignaling => QosProfile {
            qci: 5,
            class: TrafficClass::Interactive,
            bearer: BearerKind::Default,
            gbr_bps: None,
            service: "High priority, Best-effort",
        },
        AppKind::WebBrowsing | AppKind::SocialNetworking => QosProfile {
            qci: 6,
            class: TrafficClass::Interactive,
            bearer: BearerKind::Default,
            gbr_bps: None,
            service: "Low priority, Best-effort",
        },
        AppKind::TcpVideo | AppKind::FileTransfer => QosProfile {
            qci: 6,
            class: TrafficClass::Background,
            bearer: BearerKind::Default,
            gbr_bps: None,
            service: "Low priority, Best-effort",
        },
    }
}

/// All Table 1 rows in display order.
pub fn table1_rows() -> Vec<(AppKind, QosProfile)> {
    [
        AppKind::Voip,
        AppKind::ImsSignaling,
        AppKind::WebBrowsing,
        AppKind::SocialNetworking,
        AppKind::TcpVideo,
        AppKind::FileTransfer,
    ]
    .into_iter()
    .map(|a| (a, classify(a)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_voip_gets_dedicated_bearer() {
        for (app, p) in table1_rows() {
            if app == AppKind::Voip {
                assert_eq!(p.bearer, BearerKind::DedicatedGbr);
                assert_eq!(p.qci, 1);
                assert_eq!(p.gbr_bps, Some(14_000));
            } else {
                assert!(p.is_best_effort(), "{app:?} must be best-effort");
                assert!(p.gbr_bps.is_none());
            }
        }
    }

    #[test]
    fn interactive_and_background_share_qci6() {
        // The paper's central observation.
        let web = classify(AppKind::WebBrowsing);
        let ftp = classify(AppKind::FileTransfer);
        assert_eq!(web.qci, 6);
        assert_eq!(ftp.qci, 6);
        assert_eq!(web.bearer, ftp.bearer);
        // Same citizens at the base station despite different classes.
        assert_eq!(web.class, TrafficClass::Interactive);
        assert_eq!(ftp.class, TrafficClass::Background);
    }

    #[test]
    fn ims_is_qci5_best_effort() {
        let ims = classify(AppKind::ImsSignaling);
        assert_eq!(ims.qci, 5);
        assert!(ims.is_best_effort());
    }
}
