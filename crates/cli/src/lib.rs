//! Argument parsing and execution for the `outran-sim` CLI.
//!
//! Kept as a library so the parser is unit-testable without spawning the
//! binary. No external argument-parsing crates: a ~flag=value / flag
//! value grammar over `std::env` keeps the dependency set minimal
//! (smoltcp ethos).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use outran_core::OutRanConfig;
use outran_faults::FaultPlan;
use outran_mac::SrjfMode;
use outran_phy::harq::HarqConfig;
use outran_phy::Scenario;
use outran_ran::checkpoint::{read_checkpoint, restore_cell};
use outran_ran::{Experiment, ExperimentReport, RlcMode, SchedulerKind};
use outran_simcore::snap::write_atomic;
use outran_simcore::Dur;
use outran_workload::FlowSizeDist;

/// Help text.
pub const HELP: &str = "\
outran-sim — OutRAN cell simulator (CoNEXT'22 reproduction)

USAGE:
  outran-sim [run] [FLAGS]      standard experiment report
  outran-sim chaos [FLAGS]      same run under a seeded fault plan, with
                                invariant auditing and a recovery summary
  outran-sim resume CKPT        continue a checkpointed run to completion;
                                the experiment configuration is replayed
                                from the argv embedded in the checkpoint,
                                and the final report is bit-identical to
                                the uninterrupted run

CHAOS FLAGS:
  --intensity X   fault-plan density, 0 (none) to 1 (hostile)   [0.5]

CHECKPOINT FLAGS (run and chaos; requires --reps 1):
  --checkpoint-every N   write a crash-safe snapshot every N simulated
                         seconds (atomic temp-file + rename)       [off]
  --checkpoint-dir D     directory for ckpt-<secs>s.orsn files

FLAGS (flag value  or  flag=value):
  --scheduler K   pf | mt | rr | bet | mlwdf | srjf | pss | cqa | outran | strict-mlfq
                  | outran:<eps>         (e.g. outran:0.4)      [outran]
  --scenario S    lte | nr0|nr1|nr2|nr3 | rome | boston | powder
                  | testbed                                     [lte]
  --dist D        lte | mirage | websearch | incast             [per scenario]
  --users N       number of UEs                                 [20]
  --load X        offered load vs nominal capacity, 0-2         [0.6]
  --secs N        simulated horizon in seconds                  [10]
  --seed N        root seed (same seed = identical run)         [1]
  --rlc M         um | am                                       [um]
  --buffer N      per-UE RLC buffer capacity in SDUs            [128]
  --tf-ms N       PF fairness window in ms                      [1000]
  --cn-ms N       one-way wired core delay in ms                [10]
  --epsilon X     OutRAN relaxation threshold                   [0.2]
  --reset-ms N    OutRAN priority-reset period in ms            [off]
  --harq          explicit HARQ processes (8, rtt 8 TTIs)       [folded]
  --dense         force dense per-TTI stepping (disable the
                  event-driven idle-skip engine; identical
                  results, only slower on idle-heavy runs)       [off]
  --loss X        residual post-HARQ segment loss prob          [0.002]
  --srjf-mode M   waterfall | winner-only | backlog             [waterfall]
  --reps N        run N seeds (seed..seed+N-1) and average; the
                  runs fan out across the worker pool            [1]
  --threads N     worker threads for --reps fan-out              [all cores]
  --cdf B         also print a FCT CDF: short | medium | long | all
                  (with --reps, prints the first rep's CDF)
  --csv PATH      write per-flow records (size_bytes,fct_ms) to PATH
                  (with --reps, writes the first rep's records)
  -h, --help      this text
";

/// Which subcommand to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Command {
    /// Standard experiment (the default).
    #[default]
    Run,
    /// Experiment under a seeded chaos fault plan with auditing.
    Chaos,
    /// Continue a checkpointed run from its snapshot.
    Resume,
}

/// Parsed options.
#[derive(Debug, Clone, PartialEq)]
pub struct Opts {
    /// Subcommand.
    pub command: Command,
    /// Chaos fault-plan intensity in [0, 1].
    pub intensity: f64,
    /// MAC scheduler under test.
    pub scheduler: SchedulerKind,
    /// Radio scenario.
    pub scenario: Scenario,
    /// Flow-size distribution (None = scenario default).
    pub dist: Option<FlowSizeDist>,
    /// Number of UEs.
    pub users: usize,
    /// Offered load.
    pub load: f64,
    /// Horizon (s).
    pub secs: u64,
    /// Seed.
    pub seed: u64,
    /// RLC mode.
    pub rlc: RlcMode,
    /// Buffer SDUs.
    pub buffer: usize,
    /// PF fairness window.
    pub tf: Dur,
    /// CN delay.
    pub cn: Dur,
    /// OutRAN ε (applied when scheduler is OutRAN-family).
    pub epsilon: f64,
    /// Priority-reset period.
    pub reset: Option<Dur>,
    /// Explicit HARQ.
    pub harq: bool,
    /// Force dense per-TTI stepping (disable idle-skip).
    pub dense: bool,
    /// Residual loss.
    pub loss: f64,
    /// SRJF grant mode.
    pub srjf_mode: SrjfMode,
    /// Independent repetitions (seeds `seed..seed+reps`), averaged.
    pub reps: usize,
    /// Worker threads for the `--reps` fan-out.
    pub threads: usize,
    /// Which FCT CDF to print, if any.
    pub cdf: Option<CdfSel>,
    /// Write per-flow records (size_bytes,fct_ms) to this CSV path.
    pub csv: Option<String>,
    /// Checkpoint interval in simulated seconds (`--checkpoint-every`).
    pub checkpoint_every: Option<u64>,
    /// Directory checkpoints are written to (`--checkpoint-dir`).
    pub checkpoint_dir: Option<String>,
    /// Checkpoint file to resume from (the `resume` positional).
    pub resume: Option<String>,
}

/// CDF selection for `--cdf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdfSel {
    /// Short flows only.
    Short,
    /// Medium flows only.
    Medium,
    /// Long flows only.
    Long,
    /// All flows.
    All,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            command: Command::Run,
            intensity: 0.5,
            scheduler: SchedulerKind::OutRan,
            scenario: Scenario::LtePedestrian,
            dist: None,
            users: 20,
            load: 0.6,
            secs: 10,
            seed: 1,
            rlc: RlcMode::Um,
            buffer: 128,
            tf: Dur::from_millis(1000),
            cn: Dur::from_millis(10),
            epsilon: 0.2,
            reset: None,
            harq: false,
            dense: false,
            loss: 0.002,
            srjf_mode: SrjfMode::Waterfall,
            reps: 1,
            threads: outran_ran::default_threads(),
            cdf: None,
            csv: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            resume: None,
        }
    }
}

/// Parse a raw argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut args = args;
    // Optional leading subcommand (anything not starting with '-').
    if let Some(first) = args.first() {
        if !first.starts_with('-') {
            o.command = match first.as_str() {
                "run" => Command::Run,
                "chaos" => Command::Chaos,
                "resume" => Command::Resume,
                other => return Err(format!("unknown subcommand '{other}'")),
            };
            args = &args[1..];
        }
    }
    if o.command == Command::Resume {
        // `resume` takes exactly one positional: the checkpoint path.
        // Every experiment flag is replayed from the argv embedded in
        // the checkpoint, so none are accepted here.
        match args {
            [path] => o.resume = Some(path.clone()),
            [] => return Err("resume needs a checkpoint path".into()),
            _ => return Err("resume takes exactly one argument (the checkpoint path)".into()),
        }
        return Ok(o);
    }
    let mut it = args.iter().peekable();
    // flag=value and flag value are both accepted.
    let next_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str,
                      inline: Option<&str>|
     -> Result<String, String> {
        if let Some(v) = inline {
            return Ok(v.to_string());
        }
        it.next()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(raw) = it.next() {
        let (flag, inline) = match raw.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (raw.as_str(), None),
        };
        match flag {
            "--scheduler" => {
                let v = next_value(&mut it, flag, inline)?;
                o.scheduler = parse_scheduler(&v)?;
            }
            "--scenario" => {
                let v = next_value(&mut it, flag, inline)?;
                o.scenario = parse_scenario(&v)?;
            }
            "--dist" => {
                let v = next_value(&mut it, flag, inline)?;
                o.dist = Some(match v.as_str() {
                    "lte" => FlowSizeDist::LteCellular,
                    "mirage" => FlowSizeDist::MirageMobileApp,
                    "websearch" => FlowSizeDist::Websearch,
                    "incast" => FlowSizeDist::Incast8k,
                    other => return Err(format!("unknown dist '{other}'")),
                });
            }
            "--users" => o.users = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--load" => o.load = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--secs" => o.secs = parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64,
            "--seed" => o.seed = parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64,
            "--rlc" => {
                o.rlc = match next_value(&mut it, flag, inline)?.as_str() {
                    "um" => RlcMode::Um,
                    "am" => RlcMode::Am,
                    other => return Err(format!("unknown rlc mode '{other}'")),
                };
            }
            "--buffer" => o.buffer = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--tf-ms" => {
                o.tf =
                    Dur::from_millis(parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64)
            }
            "--cn-ms" => {
                o.cn =
                    Dur::from_millis(parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64)
            }
            "--epsilon" => o.epsilon = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--reset-ms" => {
                o.reset = Some(Dur::from_millis(parse_num(
                    &next_value(&mut it, flag, inline)?,
                    flag,
                )? as u64))
            }
            "--harq" => o.harq = true,
            "--dense" => o.dense = true,
            "--intensity" => o.intensity = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--loss" => o.loss = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--srjf-mode" => {
                o.srjf_mode = match next_value(&mut it, flag, inline)?.as_str() {
                    "waterfall" => SrjfMode::Waterfall,
                    "winner-only" => SrjfMode::WinnerOnly,
                    "backlog" => SrjfMode::WaterfallBacklog,
                    other => return Err(format!("unknown srjf mode '{other}'")),
                };
            }
            "--reps" => o.reps = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--threads" => o.threads = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--csv" => {
                o.csv = Some(next_value(&mut it, flag, inline)?);
            }
            "--checkpoint-every" => {
                o.checkpoint_every =
                    Some(parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64);
            }
            "--checkpoint-dir" => {
                o.checkpoint_dir = Some(next_value(&mut it, flag, inline)?);
            }
            "--cdf" => {
                o.cdf = Some(match next_value(&mut it, flag, inline)?.as_str() {
                    "short" => CdfSel::Short,
                    "medium" => CdfSel::Medium,
                    "long" => CdfSel::Long,
                    "all" => CdfSel::All,
                    other => return Err(format!("unknown cdf selection '{other}'")),
                });
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if !(0.0..=2.0).contains(&o.load) || o.load == 0.0 {
        return Err(format!("--load must be in (0, 2], got {}", o.load));
    }
    if !(0.0..=1.0).contains(&o.epsilon) {
        return Err(format!("--epsilon must be in [0, 1], got {}", o.epsilon));
    }
    if o.users == 0 {
        return Err("--users must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&o.intensity) {
        return Err(format!(
            "--intensity must be in [0, 1], got {}",
            o.intensity
        ));
    }
    if o.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    if o.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if o.checkpoint_every == Some(0) {
        return Err("--checkpoint-every must be at least 1 second".into());
    }
    if o.checkpoint_every.is_some() != o.checkpoint_dir.is_some() {
        return Err("--checkpoint-every and --checkpoint-dir must be given together".into());
    }
    if o.checkpoint_every.is_some() && o.reps > 1 {
        return Err("checkpointing covers a single run; it cannot be combined with --reps".into());
    }
    Ok(o)
}

fn parse_scheduler(v: &str) -> Result<SchedulerKind, String> {
    if let Some(eps) = v.strip_prefix("outran:") {
        let e: f64 = eps.parse().map_err(|_| format!("bad epsilon in '{v}'"))?;
        return Ok(SchedulerKind::OutRanEps(e));
    }
    Ok(match v {
        "pf" => SchedulerKind::Pf,
        "mt" => SchedulerKind::Mt,
        "rr" => SchedulerKind::Rr,
        "bet" => SchedulerKind::Bet,
        "mlwdf" => SchedulerKind::Mlwdf,
        "srjf" => SchedulerKind::Srjf,
        "pss" => SchedulerKind::Pss,
        "cqa" => SchedulerKind::Cqa,
        "outran" => SchedulerKind::OutRan,
        "strict-mlfq" => SchedulerKind::StrictMlfq,
        other => return Err(format!("unknown scheduler '{other}'")),
    })
}

fn parse_scenario(v: &str) -> Result<Scenario, String> {
    Ok(match v {
        "lte" => Scenario::LtePedestrian,
        "nr0" => Scenario::NrUrban(0),
        "nr1" => Scenario::NrUrban(1),
        "nr2" => Scenario::NrUrban(2),
        "nr3" => Scenario::NrUrban(3),
        "rome" => Scenario::ColosseumRome,
        "boston" => Scenario::ColosseumBoston,
        "powder" => Scenario::ColosseumPowder,
        "testbed" => Scenario::Testbed,
        other => return Err(format!("unknown scenario '{other}'")),
    })
}

/// Reconstruct a canonical argv (program name included) that re-parses
/// to the same experiment. This — not the raw process argv — is what
/// gets embedded in checkpoints, so `resume` rebuilds the identical run
/// regardless of which of the two flag grammars, orderings or defaults
/// the original invocation used. `--reps`/`--threads` are omitted: a
/// checkpoint captures exactly one run.
pub fn canonical_argv(o: &Opts) -> Vec<String> {
    let mut v = vec!["outran-sim".to_string()];
    match o.command {
        Command::Run | Command::Resume => v.push("run".into()),
        Command::Chaos => {
            v.push("chaos".into());
            v.push(format!("--intensity={}", o.intensity));
        }
    }
    v.push(format!("--scheduler={}", scheduler_token(o.scheduler)));
    v.push(format!("--scenario={}", scenario_token(o.scenario)));
    if let Some(d) = o.dist {
        let tok = match d {
            FlowSizeDist::LteCellular => "lte",
            FlowSizeDist::MirageMobileApp => "mirage",
            FlowSizeDist::Websearch => "websearch",
            FlowSizeDist::Incast8k => "incast",
        };
        v.push(format!("--dist={tok}"));
    }
    v.push(format!("--users={}", o.users));
    v.push(format!("--load={}", o.load));
    v.push(format!("--secs={}", o.secs));
    v.push(format!("--seed={}", o.seed));
    v.push(format!(
        "--rlc={}",
        match o.rlc {
            RlcMode::Um => "um",
            RlcMode::Am => "am",
        }
    ));
    v.push(format!("--buffer={}", o.buffer));
    v.push(format!("--tf-ms={}", o.tf.as_millis()));
    v.push(format!("--cn-ms={}", o.cn.as_millis()));
    v.push(format!("--epsilon={}", o.epsilon));
    if let Some(r) = o.reset {
        v.push(format!("--reset-ms={}", r.as_millis()));
    }
    if o.harq {
        v.push("--harq".into());
    }
    if o.dense {
        v.push("--dense".into());
    }
    v.push(format!("--loss={}", o.loss));
    v.push(format!(
        "--srjf-mode={}",
        match o.srjf_mode {
            SrjfMode::Waterfall => "waterfall",
            SrjfMode::WinnerOnly => "winner-only",
            SrjfMode::WaterfallBacklog => "backlog",
        }
    ));
    if let Some(sel) = o.cdf {
        let tok = match sel {
            CdfSel::Short => "short",
            CdfSel::Medium => "medium",
            CdfSel::Long => "long",
            CdfSel::All => "all",
        };
        v.push(format!("--cdf={tok}"));
    }
    if let Some(p) = &o.csv {
        v.push(format!("--csv={p}"));
    }
    // Keep checkpointing active across resumes: a soak that crashes
    // twice resumes from its latest snapshot, not its first.
    if let (Some(every), Some(dir)) = (o.checkpoint_every, &o.checkpoint_dir) {
        v.push(format!("--checkpoint-every={every}"));
        v.push(format!("--checkpoint-dir={dir}"));
    }
    v
}

fn scheduler_token(k: SchedulerKind) -> String {
    match k {
        SchedulerKind::Pf => "pf".into(),
        SchedulerKind::Mt => "mt".into(),
        SchedulerKind::Rr => "rr".into(),
        SchedulerKind::Bet => "bet".into(),
        SchedulerKind::Mlwdf => "mlwdf".into(),
        SchedulerKind::Srjf => "srjf".into(),
        SchedulerKind::Pss => "pss".into(),
        SchedulerKind::Cqa => "cqa".into(),
        SchedulerKind::OutRan => "outran".into(),
        // `{}` on f64 prints the shortest string that parses back to the
        // same bits, so the epsilon survives the argv roundtrip exactly.
        SchedulerKind::OutRanEps(e) => format!("outran:{e}"),
        SchedulerKind::StrictMlfq => "strict-mlfq".into(),
        // Not reachable from parse_args (no CLI spelling exists); only
        // library callers can construct it.
        SchedulerKind::OutRanOverMt(_) => unreachable!("OutRanOverMt has no CLI flag"),
    }
}

fn scenario_token(s: Scenario) -> String {
    match s {
        Scenario::LtePedestrian => "lte".into(),
        Scenario::NrUrban(mu) => format!("nr{mu}"),
        Scenario::ColosseumRome => "rome".into(),
        Scenario::ColosseumBoston => "boston".into(),
        Scenario::ColosseumPowder => "powder".into(),
        Scenario::Testbed => "testbed".into(),
    }
}

fn parse_num(v: &str, flag: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{flag}: bad number '{v}'"))
}

fn parse_f64(v: &str, flag: &str) -> Result<f64, String> {
    v.parse().map_err(|_| format!("{flag}: bad number '{v}'"))
}

/// Execute the selected subcommand. `Err` means the run could not
/// complete as asked and maps to a non-zero process exit.
pub fn run(o: &Opts) -> Result<(), String> {
    match o.command {
        Command::Run => run_standard(o),
        Command::Chaos => run_chaos(o),
        Command::Resume => run_resume(o),
    }
}

/// Build the experiment described by the options (shared by both
/// subcommands; `chaos` layers a fault plan on top).
fn build_experiment(o: &Opts) -> Experiment {
    let dist = o.dist.unwrap_or(match o.scenario {
        Scenario::NrUrban(_) => FlowSizeDist::MirageMobileApp,
        _ => FlowSizeDist::LteCellular,
    });
    let mut outran_cfg = OutRanConfig {
        epsilon: o.epsilon,
        reset_period: o.reset,
        ..OutRanConfig::default()
    };
    outran_cfg.buffer_sdus = o.buffer;
    let mut exp = Experiment::lte_default()
        .scenario(o.scenario)
        .scheduler(match o.scheduler {
            SchedulerKind::OutRan => SchedulerKind::OutRanEps(o.epsilon),
            k => k,
        })
        .dist(dist)
        .users(o.users)
        .load(o.load)
        .duration_secs(o.secs)
        .seed(o.seed)
        .rlc_mode(o.rlc)
        .buffer_sdus(o.buffer)
        .fairness_window(o.tf)
        .cn_delay(o.cn)
        .outran(outran_cfg)
        .residual_loss(o.loss)
        .srjf_mode(o.srjf_mode)
        .dense_stepping(o.dense);
    if o.harq {
        exp = exp.harq(Some(HarqConfig::default()));
    }
    if let (Some(every), Some(dir)) = (o.checkpoint_every, &o.checkpoint_dir) {
        exp = exp.checkpoint_every(Dur::from_secs(every), PathBuf::from(dir), canonical_argv(o));
    }
    exp
}

/// [`build_experiment`] plus the chaos fault layer when the options ask
/// for it — the one construction path shared by fresh runs and `resume`,
/// so a resumed run is built from *exactly* the experiment its
/// checkpoint was taken under.
fn experiment_for(o: &Opts) -> Experiment {
    let exp = build_experiment(o);
    if o.command == Command::Chaos {
        exp.faults(FaultPlan::chaos(
            o.seed,
            Dur::from_secs(o.secs),
            o.users,
            o.intensity,
        ))
        .watchdog(Some(Dur::from_millis(750)))
    } else {
        exp
    }
}

fn run_resume(o: &Opts) -> Result<(), String> {
    let path = o
        .resume
        .as_deref()
        .ok_or("resume needs a checkpoint path")?;
    let (meta, file) = read_checkpoint(Path::new(path))
        .map_err(|e| format!("cannot read checkpoint '{path}': {e}"))?;
    if meta.n_cells != 1 {
        return Err(format!(
            "checkpoint '{path}' holds {} cells; resume supports single-cell runs",
            meta.n_cells
        ));
    }
    let embedded: Vec<String> = meta.argv.iter().skip(1).cloned().collect();
    let ro = parse_args(&embedded)
        .map_err(|e| format!("embedded argv in '{path}' failed to parse: {e}"))?;
    println!(
        "resuming {path} at {} ({})",
        meta.sim_time,
        meta.argv.join(" ")
    );
    let exp = experiment_for(&ro);
    let mut cell = exp.build_cell();
    restore_cell(&file, 0, &mut cell)
        .map_err(|e| format!("restoring '{path}' into the rebuilt cell failed: {e}"))?;
    let mut r = exp.run_cell(cell);
    print_report(&ro, &r);
    if ro.command == Command::Chaos {
        print_chaos_summary(&r);
    }
    finish_report(&ro, &mut r)?;
    if ro.command == Command::Chaos && r.total_violations > 0 {
        return Err(format!(
            "{} invariant violation(s) detected",
            r.total_violations
        ));
    }
    Ok(())
}

fn run_standard(o: &Opts) -> Result<(), String> {
    if o.reps <= 1 {
        let mut r = build_experiment(o).run();
        print_report(o, &r);
        return finish_report(o, &mut r);
    }
    // Fan the repetitions across the worker pool; results come back in
    // seed order, so the output is reproducible regardless of thread
    // count or interleaving.
    let seeds: Vec<u64> = (0..o.reps as u64).map(|i| o.seed + i).collect();
    let results = outran_ran::parallel_map(o.threads, seeds.clone(), |s| {
        build_experiment(&Opts {
            seed: s,
            ..o.clone()
        })
        .run()
    });
    println!(
        "{} reps (seeds {}..{}) on {} thread(s)",
        o.reps,
        o.seed,
        o.seed + o.reps as u64 - 1,
        o.threads
    );
    // A rep that panicked (twice — the pool already retried it once) is
    // reported and excluded from the averages; the sweep only fails when
    // every rep died.
    let mut reports: Vec<ExperimentReport> = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (s, res) in seeds.iter().zip(results) {
        match res {
            Ok(r) => {
                println!(
                    "  seed {s}: overall {:.1} ms  S p95 {:.1} ms  completed {}/{}",
                    r.fct.overall_mean_ms, r.fct.short_p95_ms, r.completed, r.offered
                );
                reports.push(r);
            }
            Err(f) => {
                eprintln!("warning: seed {s} failed: {f}");
                failures.push(f);
            }
        }
    }
    if reports.is_empty() {
        return Err(format!("all {} rep(s) failed", failures.len()));
    }
    if !failures.is_empty() {
        println!(
            "averaging {} surviving rep(s); {} failed",
            reports.len(),
            failures.len()
        );
    }
    let mean = |f: &dyn Fn(&ExperimentReport) -> f64| -> f64 {
        let vals: Vec<f64> = reports.iter().map(f).filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    println!(
        "mean FCT (ms): overall {:.1}  S avg {:.1}  S p95 {:.1}  M {:.1}  L {:.1}",
        mean(&|r| r.fct.overall_mean_ms),
        mean(&|r| r.fct.short_mean_ms),
        mean(&|r| r.fct.short_p95_ms),
        mean(&|r| r.fct.medium_mean_ms),
        mean(&|r| r.fct.long_mean_ms)
    );
    println!(
        "mean cell: SE {:.2} bit/s/Hz   fairness {:.3}",
        mean(&|r| r.spectral_efficiency),
        mean(&|r| r.fairness)
    );
    finish_report(o, &mut reports[0])
}

fn run_chaos(o: &Opts) -> Result<(), String> {
    let plan = FaultPlan::chaos(o.seed, Dur::from_secs(o.secs), o.users, o.intensity);
    println!(
        "chaos plan (seed {}, intensity {}, {} windows):",
        o.seed,
        o.intensity,
        plan.windows().len()
    );
    println!("{}", plan.describe());
    let mut r = experiment_for(o).run();
    print_report(o, &r);
    print_chaos_summary(&r);
    finish_report(o, &mut r)?;
    if r.total_violations > 0 {
        return Err(format!(
            "{} invariant violation(s) detected",
            r.total_violations
        ));
    }
    Ok(())
}

/// Fault/recovery summary printed after a chaos run (both when it ran
/// start-to-finish and when it was resumed from a checkpoint).
fn print_chaos_summary(r: &ExperimentReport) {
    println!(
        "residual losses: {}   flows evicted: {}",
        r.residual_losses, r.fault_stats.flows_evicted
    );
    let mut t = outran_metrics::table::Table::new("fault + recovery events", &["event", "count"]);
    for (label, value) in r.fault_stats.rows() {
        t.row(&[label.to_string(), value.to_string()]);
    }
    t.print();
    let survived = r.offered == 0 || r.completed as f64 / r.offered as f64 >= 0.5;
    println!(
        "survival: {}/{} flows completed ({})   invariant violations: {}",
        r.completed,
        r.offered,
        if survived { "ok" } else { "degraded" },
        r.total_violations
    );
    for v in &r.violations {
        println!("  violation: {v}");
    }
}

/// The standard report lines shared by both subcommands.
fn print_report(o: &Opts, r: &ExperimentReport) {
    println!(
        "scenario {}  scheduler {}  users {}  load {}  {}s  seed {}",
        o.scenario.name(),
        r.scheduler,
        o.users,
        o.load,
        o.secs,
        o.seed
    );
    println!(
        "flows: {} completed / {} offered   buffer drops: {}   residual losses: {}",
        r.completed, r.offered, r.buffer_drops, r.residual_losses
    );
    println!(
        "FCT (ms): overall {:.1}  S avg {:.1}  S p95 {:.1}  S p99 {:.1}  M {:.1}  L {:.1}",
        r.fct.overall_mean_ms,
        r.fct.short_mean_ms,
        r.fct.short_p95_ms,
        r.fct.short_p99_ms,
        r.fct.medium_mean_ms,
        r.fct.long_mean_ms
    );
    println!(
        "cell: SE {:.2} bit/s/Hz   fairness {:.3}   mean Q delay {:.1} ms (short {:.1} ms)",
        r.spectral_efficiency, r.fairness, r.mean_qdelay_ms, r.short_qdelay_ms
    );
}

/// CSV export and optional CDF print (shared tail of both subcommands).
fn finish_report(o: &Opts, r: &mut ExperimentReport) -> Result<(), String> {
    if let Some(path) = &o.csv {
        let mut out = String::from("size_bytes,fct_ms\n");
        for (bytes, fct) in &r.flow_records {
            out.push_str(&format!("{bytes},{fct:.3}\n"));
        }
        // Atomic temp-file + rename: a crash mid-write leaves the
        // previous export (or nothing), never a torn CSV.
        write_atomic(Path::new(path), out.as_bytes())
            .map_err(|e| format!("csv write to '{path}' failed: {e}"))?;
        println!("wrote {} flow records to {path}", r.flow_records.len());
    }
    if let Some(sel) = o.cdf {
        let bucket = match sel {
            CdfSel::Short => Some(outran_metrics::SizeBucket::Short),
            CdfSel::Medium => Some(outran_metrics::SizeBucket::Medium),
            CdfSel::Long => Some(outran_metrics::SizeBucket::Long),
            CdfSel::All => None,
        };
        let pts = r.fct_collector.cdf(bucket, 40);
        outran_metrics::table::print_series("FCT (ms) CDF", &pts, 40);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Opts, String> {
        let args: Vec<String> = s.split_whitespace().map(|x| x.to_string()).collect();
        parse_args(&args)
    }

    #[test]
    fn defaults_when_empty() {
        let o = parse("").unwrap();
        assert_eq!(o, Opts::default());
    }

    #[test]
    fn both_flag_grammars() {
        let a = parse("--users 12 --load 0.7").unwrap();
        let b = parse("--users=12 --load=0.7").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.users, 12);
        assert!((a.load - 0.7).abs() < 1e-12);
    }

    #[test]
    fn scheduler_variants() {
        assert_eq!(
            parse("--scheduler pf").unwrap().scheduler,
            SchedulerKind::Pf
        );
        assert_eq!(
            parse("--scheduler strict-mlfq").unwrap().scheduler,
            SchedulerKind::StrictMlfq
        );
        match parse("--scheduler outran:0.4").unwrap().scheduler {
            SchedulerKind::OutRanEps(e) => assert!((e - 0.4).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        assert!(parse("--scheduler bogus").is_err());
    }

    #[test]
    fn scenario_and_dist() {
        let o = parse("--scenario nr2 --dist websearch").unwrap();
        assert_eq!(o.scenario, Scenario::NrUrban(2));
        assert_eq!(o.dist, Some(FlowSizeDist::Websearch));
        assert!(parse("--scenario mars").is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(parse("--load 0").is_err());
        assert!(parse("--load 5").is_err());
        assert!(parse("--epsilon 2").is_err());
        assert!(parse("--users 0").is_err());
        assert!(parse("--users").is_err());
        assert!(parse("--frobnicate 3").is_err());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(
            "--scheduler outran --scenario lte --users 8 --load 0.5 --secs 4 \
             --seed 9 --rlc am --buffer 256 --tf-ms 500 --cn-ms 20 \
             --epsilon 0.3 --reset-ms 500 --harq --dense --loss 0.01 \
             --srjf-mode winner-only --cdf short",
        )
        .unwrap();
        assert_eq!(o.rlc, RlcMode::Am);
        assert_eq!(o.buffer, 256);
        assert_eq!(o.tf, Dur::from_millis(500));
        assert_eq!(o.cn, Dur::from_millis(20));
        assert!((o.epsilon - 0.3).abs() < 1e-12);
        assert_eq!(o.reset, Some(Dur::from_millis(500)));
        assert!(o.harq);
        assert!(o.dense);
        assert_eq!(o.srjf_mode, SrjfMode::WinnerOnly);
        assert_eq!(o.cdf, Some(CdfSel::Short));
    }

    #[test]
    fn subcommands() {
        assert_eq!(parse("").unwrap().command, Command::Run);
        assert_eq!(parse("run --users 3").unwrap().command, Command::Run);
        let o = parse("chaos --intensity 0.8 --users 3").unwrap();
        assert_eq!(o.command, Command::Chaos);
        assert!((o.intensity - 0.8).abs() < 1e-12);
        assert!(parse("frobnicate").is_err());
        assert!(parse("chaos --intensity 1.5").is_err());
        assert!(parse("chaos --intensity -0.1").is_err());
    }

    #[test]
    fn threads_and_reps_flags() {
        let o = parse("--reps 3 --threads 2").unwrap();
        assert_eq!(o.reps, 3);
        assert_eq!(o.threads, 2);
        assert!(parse("--reps 0").is_err());
        assert!(parse("--threads 0").is_err());
        assert!(Opts::default().threads >= 1);
    }

    #[test]
    fn reps_run_smoke() {
        let o = parse("--users 4 --load 0.3 --secs 2 --scheduler pf --reps 2 --threads 2").unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn run_smoke() {
        // A tiny end-to-end run through the CLI path.
        let o = parse("--users 4 --load 0.3 --secs 2 --scheduler pf").unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn chaos_smoke() {
        // End-to-end chaos run: faults injected, zero violations.
        let o = parse("chaos --users 4 --load 0.3 --secs 2 --intensity 0.6").unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn checkpoint_flag_validation() {
        let o = parse("--checkpoint-every 2 --checkpoint-dir /tmp/ck").unwrap();
        assert_eq!(o.checkpoint_every, Some(2));
        assert_eq!(o.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert!(parse("--checkpoint-every 2").is_err());
        assert!(parse("--checkpoint-dir /tmp/ck").is_err());
        assert!(parse("--checkpoint-every 0 --checkpoint-dir /tmp/ck").is_err());
        assert!(parse("--checkpoint-every 2 --checkpoint-dir /tmp/ck --reps 3").is_err());
    }

    #[test]
    fn resume_subcommand_parsing() {
        let o = parse("resume /tmp/ck/ckpt-3s.orsn").unwrap();
        assert_eq!(o.command, Command::Resume);
        assert_eq!(o.resume.as_deref(), Some("/tmp/ck/ckpt-3s.orsn"));
        assert!(parse("resume").is_err());
        assert!(parse("resume a b").is_err());
    }

    #[test]
    fn resume_missing_checkpoint_is_an_error() {
        let o = parse("resume /nonexistent-dir/nope.orsn").unwrap();
        let e = run(&o).unwrap_err();
        assert!(e.contains("cannot read checkpoint"), "{e}");
    }

    #[test]
    fn canonical_argv_roundtrips() {
        for cmdline in [
            "",
            "run --users 8 --load 0.5 --secs 4 --seed 9 --rlc am --harq --dense",
            "chaos --intensity 0.7 --scheduler outran:0.35 --scenario nr2 \
             --dist websearch --reset-ms 500 --cdf short --csv /tmp/x.csv",
            "--checkpoint-every 2 --checkpoint-dir /tmp/ck --secs 6",
        ] {
            let o = parse(cmdline).unwrap();
            let argv = canonical_argv(&o);
            assert_eq!(argv[0], "outran-sim");
            let back = parse_args(&argv[1..]).unwrap();
            // reps/threads are deliberately dropped from the canonical
            // form; everything that shapes the experiment must survive.
            let mut expect = o.clone();
            expect.reps = 1;
            expect.threads = Opts::default().threads;
            assert_eq!(back, expect, "roundtrip diverged for '{cmdline}'");
        }
    }

    #[test]
    fn checkpointed_run_then_resume_matches_uninterrupted() {
        let dir = std::env::temp_dir().join(format!("outran-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap();
        let flags = "--users 4 --load 0.3 --secs 3 --scheduler pf --seed 5 --dense";
        // Uninterrupted reference run.
        let reference = build_experiment(&parse(flags).unwrap()).run();
        // Checkpointed run, then resume from the mid-run snapshot.
        let o = parse(&format!(
            "{flags} --checkpoint-every 1 --checkpoint-dir {dirs}"
        ))
        .unwrap();
        run(&o).unwrap();
        let ckpt = dir.join("ckpt-2s.orsn");
        assert!(ckpt.exists(), "expected mid-run checkpoint at {ckpt:?}");
        let (meta, file) = read_checkpoint(&ckpt).unwrap();
        let ro = parse_args(&meta.argv[1..]).unwrap();
        let exp = experiment_for(&ro);
        let mut cell = exp.build_cell();
        restore_cell(&file, 0, &mut cell).unwrap();
        let resumed = exp.run_cell(cell);
        assert_eq!(
            format!("{reference:?}"),
            format!("{resumed:?}"),
            "resumed report diverged from the uninterrupted run"
        );
        // The CLI path over the same checkpoint also succeeds.
        run(&parse(&format!("resume {}", ckpt.display())).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_failure_is_an_error() {
        // /dev/null is a file, so no directory can be created beneath it
        // and the atomic write must fail cleanly.
        let o = parse("--users 3 --load 0.3 --secs 1 --csv /dev/null/x.csv").unwrap();
        let e = run(&o).unwrap_err();
        assert!(e.contains("csv write"), "{e}");
    }
}
