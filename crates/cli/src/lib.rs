//! Argument parsing and execution for the `outran-sim` CLI.
//!
//! Kept as a library so the parser is unit-testable without spawning the
//! binary. No external argument-parsing crates: a ~flag=value / flag
//! value grammar over `std::env` keeps the dependency set minimal
//! (smoltcp ethos).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use outran_core::OutRanConfig;
use outran_faults::FaultPlan;
use outran_mac::SrjfMode;
use outran_phy::harq::HarqConfig;
use outran_phy::Scenario;
use outran_ran::{Experiment, ExperimentReport, RlcMode, SchedulerKind};
use outran_simcore::Dur;
use outran_workload::FlowSizeDist;

/// Help text.
pub const HELP: &str = "\
outran-sim — OutRAN cell simulator (CoNEXT'22 reproduction)

USAGE:
  outran-sim [run] [FLAGS]      standard experiment report
  outran-sim chaos [FLAGS]      same run under a seeded fault plan, with
                                invariant auditing and a recovery summary

CHAOS FLAGS:
  --intensity X   fault-plan density, 0 (none) to 1 (hostile)   [0.5]

FLAGS (flag value  or  flag=value):
  --scheduler K   pf | mt | rr | bet | mlwdf | srjf | pss | cqa | outran | strict-mlfq
                  | outran:<eps>         (e.g. outran:0.4)      [outran]
  --scenario S    lte | nr0|nr1|nr2|nr3 | rome | boston | powder
                  | testbed                                     [lte]
  --dist D        lte | mirage | websearch | incast             [per scenario]
  --users N       number of UEs                                 [20]
  --load X        offered load vs nominal capacity, 0-2         [0.6]
  --secs N        simulated horizon in seconds                  [10]
  --seed N        root seed (same seed = identical run)         [1]
  --rlc M         um | am                                       [um]
  --buffer N      per-UE RLC buffer capacity in SDUs            [128]
  --tf-ms N       PF fairness window in ms                      [1000]
  --cn-ms N       one-way wired core delay in ms                [10]
  --epsilon X     OutRAN relaxation threshold                   [0.2]
  --reset-ms N    OutRAN priority-reset period in ms            [off]
  --harq          explicit HARQ processes (8, rtt 8 TTIs)       [folded]
  --dense         force dense per-TTI stepping (disable the
                  event-driven idle-skip engine; identical
                  results, only slower on idle-heavy runs)       [off]
  --loss X        residual post-HARQ segment loss prob          [0.002]
  --srjf-mode M   waterfall | winner-only | backlog             [waterfall]
  --reps N        run N seeds (seed..seed+N-1) and average; the
                  runs fan out across the worker pool            [1]
  --threads N     worker threads for --reps fan-out              [all cores]
  --cdf B         also print a FCT CDF: short | medium | long | all
                  (with --reps, prints the first rep's CDF)
  --csv PATH      write per-flow records (size_bytes,fct_ms) to PATH
                  (with --reps, writes the first rep's records)
  -h, --help      this text
";

/// Which subcommand to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Command {
    /// Standard experiment (the default).
    #[default]
    Run,
    /// Experiment under a seeded chaos fault plan with auditing.
    Chaos,
}

/// Parsed options.
#[derive(Debug, Clone, PartialEq)]
pub struct Opts {
    /// Subcommand.
    pub command: Command,
    /// Chaos fault-plan intensity in [0, 1].
    pub intensity: f64,
    /// MAC scheduler under test.
    pub scheduler: SchedulerKind,
    /// Radio scenario.
    pub scenario: Scenario,
    /// Flow-size distribution (None = scenario default).
    pub dist: Option<FlowSizeDist>,
    /// Number of UEs.
    pub users: usize,
    /// Offered load.
    pub load: f64,
    /// Horizon (s).
    pub secs: u64,
    /// Seed.
    pub seed: u64,
    /// RLC mode.
    pub rlc: RlcMode,
    /// Buffer SDUs.
    pub buffer: usize,
    /// PF fairness window.
    pub tf: Dur,
    /// CN delay.
    pub cn: Dur,
    /// OutRAN ε (applied when scheduler is OutRAN-family).
    pub epsilon: f64,
    /// Priority-reset period.
    pub reset: Option<Dur>,
    /// Explicit HARQ.
    pub harq: bool,
    /// Force dense per-TTI stepping (disable idle-skip).
    pub dense: bool,
    /// Residual loss.
    pub loss: f64,
    /// SRJF grant mode.
    pub srjf_mode: SrjfMode,
    /// Independent repetitions (seeds `seed..seed+reps`), averaged.
    pub reps: usize,
    /// Worker threads for the `--reps` fan-out.
    pub threads: usize,
    /// Which FCT CDF to print, if any.
    pub cdf: Option<CdfSel>,
    /// Write per-flow records (size_bytes,fct_ms) to this CSV path.
    pub csv: Option<String>,
}

/// CDF selection for `--cdf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdfSel {
    /// Short flows only.
    Short,
    /// Medium flows only.
    Medium,
    /// Long flows only.
    Long,
    /// All flows.
    All,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            command: Command::Run,
            intensity: 0.5,
            scheduler: SchedulerKind::OutRan,
            scenario: Scenario::LtePedestrian,
            dist: None,
            users: 20,
            load: 0.6,
            secs: 10,
            seed: 1,
            rlc: RlcMode::Um,
            buffer: 128,
            tf: Dur::from_millis(1000),
            cn: Dur::from_millis(10),
            epsilon: 0.2,
            reset: None,
            harq: false,
            dense: false,
            loss: 0.002,
            srjf_mode: SrjfMode::Waterfall,
            reps: 1,
            threads: outran_ran::default_threads(),
            cdf: None,
            csv: None,
        }
    }
}

/// Parse a raw argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut args = args;
    // Optional leading subcommand (anything not starting with '-').
    if let Some(first) = args.first() {
        if !first.starts_with('-') {
            o.command = match first.as_str() {
                "run" => Command::Run,
                "chaos" => Command::Chaos,
                other => return Err(format!("unknown subcommand '{other}'")),
            };
            args = &args[1..];
        }
    }
    let mut it = args.iter().peekable();
    // flag=value and flag value are both accepted.
    let next_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str,
                      inline: Option<&str>|
     -> Result<String, String> {
        if let Some(v) = inline {
            return Ok(v.to_string());
        }
        it.next()
            .map(|s| s.to_string())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(raw) = it.next() {
        let (flag, inline) = match raw.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (raw.as_str(), None),
        };
        match flag {
            "--scheduler" => {
                let v = next_value(&mut it, flag, inline)?;
                o.scheduler = parse_scheduler(&v)?;
            }
            "--scenario" => {
                let v = next_value(&mut it, flag, inline)?;
                o.scenario = parse_scenario(&v)?;
            }
            "--dist" => {
                let v = next_value(&mut it, flag, inline)?;
                o.dist = Some(match v.as_str() {
                    "lte" => FlowSizeDist::LteCellular,
                    "mirage" => FlowSizeDist::MirageMobileApp,
                    "websearch" => FlowSizeDist::Websearch,
                    "incast" => FlowSizeDist::Incast8k,
                    other => return Err(format!("unknown dist '{other}'")),
                });
            }
            "--users" => o.users = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--load" => o.load = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--secs" => o.secs = parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64,
            "--seed" => o.seed = parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64,
            "--rlc" => {
                o.rlc = match next_value(&mut it, flag, inline)?.as_str() {
                    "um" => RlcMode::Um,
                    "am" => RlcMode::Am,
                    other => return Err(format!("unknown rlc mode '{other}'")),
                };
            }
            "--buffer" => o.buffer = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--tf-ms" => {
                o.tf =
                    Dur::from_millis(parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64)
            }
            "--cn-ms" => {
                o.cn =
                    Dur::from_millis(parse_num(&next_value(&mut it, flag, inline)?, flag)? as u64)
            }
            "--epsilon" => o.epsilon = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--reset-ms" => {
                o.reset = Some(Dur::from_millis(parse_num(
                    &next_value(&mut it, flag, inline)?,
                    flag,
                )? as u64))
            }
            "--harq" => o.harq = true,
            "--dense" => o.dense = true,
            "--intensity" => o.intensity = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--loss" => o.loss = parse_f64(&next_value(&mut it, flag, inline)?, flag)?,
            "--srjf-mode" => {
                o.srjf_mode = match next_value(&mut it, flag, inline)?.as_str() {
                    "waterfall" => SrjfMode::Waterfall,
                    "winner-only" => SrjfMode::WinnerOnly,
                    "backlog" => SrjfMode::WaterfallBacklog,
                    other => return Err(format!("unknown srjf mode '{other}'")),
                };
            }
            "--reps" => o.reps = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--threads" => o.threads = parse_num(&next_value(&mut it, flag, inline)?, flag)?,
            "--csv" => {
                o.csv = Some(next_value(&mut it, flag, inline)?);
            }
            "--cdf" => {
                o.cdf = Some(match next_value(&mut it, flag, inline)?.as_str() {
                    "short" => CdfSel::Short,
                    "medium" => CdfSel::Medium,
                    "long" => CdfSel::Long,
                    "all" => CdfSel::All,
                    other => return Err(format!("unknown cdf selection '{other}'")),
                });
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if !(0.0..=2.0).contains(&o.load) || o.load == 0.0 {
        return Err(format!("--load must be in (0, 2], got {}", o.load));
    }
    if !(0.0..=1.0).contains(&o.epsilon) {
        return Err(format!("--epsilon must be in [0, 1], got {}", o.epsilon));
    }
    if o.users == 0 {
        return Err("--users must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&o.intensity) {
        return Err(format!(
            "--intensity must be in [0, 1], got {}",
            o.intensity
        ));
    }
    if o.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    if o.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(o)
}

fn parse_scheduler(v: &str) -> Result<SchedulerKind, String> {
    if let Some(eps) = v.strip_prefix("outran:") {
        let e: f64 = eps.parse().map_err(|_| format!("bad epsilon in '{v}'"))?;
        return Ok(SchedulerKind::OutRanEps(e));
    }
    Ok(match v {
        "pf" => SchedulerKind::Pf,
        "mt" => SchedulerKind::Mt,
        "rr" => SchedulerKind::Rr,
        "bet" => SchedulerKind::Bet,
        "mlwdf" => SchedulerKind::Mlwdf,
        "srjf" => SchedulerKind::Srjf,
        "pss" => SchedulerKind::Pss,
        "cqa" => SchedulerKind::Cqa,
        "outran" => SchedulerKind::OutRan,
        "strict-mlfq" => SchedulerKind::StrictMlfq,
        other => return Err(format!("unknown scheduler '{other}'")),
    })
}

fn parse_scenario(v: &str) -> Result<Scenario, String> {
    Ok(match v {
        "lte" => Scenario::LtePedestrian,
        "nr0" => Scenario::NrUrban(0),
        "nr1" => Scenario::NrUrban(1),
        "nr2" => Scenario::NrUrban(2),
        "nr3" => Scenario::NrUrban(3),
        "rome" => Scenario::ColosseumRome,
        "boston" => Scenario::ColosseumBoston,
        "powder" => Scenario::ColosseumPowder,
        "testbed" => Scenario::Testbed,
        other => return Err(format!("unknown scenario '{other}'")),
    })
}

fn parse_num(v: &str, flag: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{flag}: bad number '{v}'"))
}

fn parse_f64(v: &str, flag: &str) -> Result<f64, String> {
    v.parse().map_err(|_| format!("{flag}: bad number '{v}'"))
}

/// Execute the selected subcommand. `Err` means the run could not
/// complete as asked and maps to a non-zero process exit.
pub fn run(o: &Opts) -> Result<(), String> {
    match o.command {
        Command::Run => run_standard(o),
        Command::Chaos => run_chaos(o),
    }
}

/// Build the experiment described by the options (shared by both
/// subcommands; `chaos` layers a fault plan on top).
fn build_experiment(o: &Opts) -> Experiment {
    let dist = o.dist.unwrap_or(match o.scenario {
        Scenario::NrUrban(_) => FlowSizeDist::MirageMobileApp,
        _ => FlowSizeDist::LteCellular,
    });
    let mut outran_cfg = OutRanConfig {
        epsilon: o.epsilon,
        reset_period: o.reset,
        ..OutRanConfig::default()
    };
    outran_cfg.buffer_sdus = o.buffer;
    let mut exp = Experiment::lte_default()
        .scenario(o.scenario)
        .scheduler(match o.scheduler {
            SchedulerKind::OutRan => SchedulerKind::OutRanEps(o.epsilon),
            k => k,
        })
        .dist(dist)
        .users(o.users)
        .load(o.load)
        .duration_secs(o.secs)
        .seed(o.seed)
        .rlc_mode(o.rlc)
        .buffer_sdus(o.buffer)
        .fairness_window(o.tf)
        .cn_delay(o.cn)
        .outran(outran_cfg)
        .residual_loss(o.loss)
        .srjf_mode(o.srjf_mode)
        .dense_stepping(o.dense);
    if o.harq {
        exp = exp.harq(Some(HarqConfig::default()));
    }
    exp
}

fn run_standard(o: &Opts) -> Result<(), String> {
    if o.reps <= 1 {
        let mut r = build_experiment(o).run();
        print_report(o, &r);
        return finish_report(o, &mut r);
    }
    // Fan the repetitions across the worker pool; results come back in
    // seed order, so the output is reproducible regardless of thread
    // count or interleaving.
    let seeds: Vec<u64> = (0..o.reps as u64).map(|i| o.seed + i).collect();
    let mut reports = outran_ran::parallel_map(o.threads, seeds.clone(), |s| {
        build_experiment(&Opts {
            seed: s,
            ..o.clone()
        })
        .run()
    });
    println!(
        "{} reps (seeds {}..{}) on {} thread(s)",
        o.reps,
        o.seed,
        o.seed + o.reps as u64 - 1,
        o.threads
    );
    for (s, r) in seeds.iter().zip(&reports) {
        println!(
            "  seed {s}: overall {:.1} ms  S p95 {:.1} ms  completed {}/{}",
            r.fct.overall_mean_ms, r.fct.short_p95_ms, r.completed, r.offered
        );
    }
    let mean = |f: &dyn Fn(&ExperimentReport) -> f64| -> f64 {
        let vals: Vec<f64> = reports.iter().map(f).filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    println!(
        "mean FCT (ms): overall {:.1}  S avg {:.1}  S p95 {:.1}  M {:.1}  L {:.1}",
        mean(&|r| r.fct.overall_mean_ms),
        mean(&|r| r.fct.short_mean_ms),
        mean(&|r| r.fct.short_p95_ms),
        mean(&|r| r.fct.medium_mean_ms),
        mean(&|r| r.fct.long_mean_ms)
    );
    println!(
        "mean cell: SE {:.2} bit/s/Hz   fairness {:.3}",
        mean(&|r| r.spectral_efficiency),
        mean(&|r| r.fairness)
    );
    finish_report(o, &mut reports[0])
}

fn run_chaos(o: &Opts) -> Result<(), String> {
    let plan = FaultPlan::chaos(o.seed, Dur::from_secs(o.secs), o.users, o.intensity);
    println!(
        "chaos plan (seed {}, intensity {}, {} windows):",
        o.seed,
        o.intensity,
        plan.windows().len()
    );
    println!("{}", plan.describe());
    let mut r = build_experiment(o)
        .faults(plan)
        .watchdog(Some(Dur::from_millis(750)))
        .run();
    print_report(o, &r);

    println!(
        "residual losses: {}   flows evicted: {}",
        r.residual_losses, r.fault_stats.flows_evicted
    );
    let mut t = outran_metrics::table::Table::new("fault + recovery events", &["event", "count"]);
    for (label, value) in r.fault_stats.rows() {
        t.row(&[label.to_string(), value.to_string()]);
    }
    t.print();
    let survived = r.offered == 0 || r.completed as f64 / r.offered as f64 >= 0.5;
    println!(
        "survival: {}/{} flows completed ({})   invariant violations: {}",
        r.completed,
        r.offered,
        if survived { "ok" } else { "degraded" },
        r.total_violations
    );
    for v in &r.violations {
        println!("  violation: {v}");
    }
    finish_report(o, &mut r)?;
    if r.total_violations > 0 {
        return Err(format!(
            "{} invariant violation(s) detected",
            r.total_violations
        ));
    }
    Ok(())
}

/// The standard report lines shared by both subcommands.
fn print_report(o: &Opts, r: &ExperimentReport) {
    println!(
        "scenario {}  scheduler {}  users {}  load {}  {}s  seed {}",
        o.scenario.name(),
        r.scheduler,
        o.users,
        o.load,
        o.secs,
        o.seed
    );
    println!(
        "flows: {} completed / {} offered   buffer drops: {}   residual losses: {}",
        r.completed, r.offered, r.buffer_drops, r.residual_losses
    );
    println!(
        "FCT (ms): overall {:.1}  S avg {:.1}  S p95 {:.1}  S p99 {:.1}  M {:.1}  L {:.1}",
        r.fct.overall_mean_ms,
        r.fct.short_mean_ms,
        r.fct.short_p95_ms,
        r.fct.short_p99_ms,
        r.fct.medium_mean_ms,
        r.fct.long_mean_ms
    );
    println!(
        "cell: SE {:.2} bit/s/Hz   fairness {:.3}   mean Q delay {:.1} ms (short {:.1} ms)",
        r.spectral_efficiency, r.fairness, r.mean_qdelay_ms, r.short_qdelay_ms
    );
}

/// CSV export and optional CDF print (shared tail of both subcommands).
fn finish_report(o: &Opts, r: &mut ExperimentReport) -> Result<(), String> {
    if let Some(path) = &o.csv {
        let mut out = String::from("size_bytes,fct_ms\n");
        for (bytes, fct) in &r.flow_records {
            out.push_str(&format!("{bytes},{fct:.3}\n"));
        }
        std::fs::write(path, out).map_err(|e| format!("csv write to '{path}' failed: {e}"))?;
        println!("wrote {} flow records to {path}", r.flow_records.len());
    }
    if let Some(sel) = o.cdf {
        let bucket = match sel {
            CdfSel::Short => Some(outran_metrics::SizeBucket::Short),
            CdfSel::Medium => Some(outran_metrics::SizeBucket::Medium),
            CdfSel::Long => Some(outran_metrics::SizeBucket::Long),
            CdfSel::All => None,
        };
        let pts = r.fct_collector.cdf(bucket, 40);
        outran_metrics::table::print_series("FCT (ms) CDF", &pts, 40);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Opts, String> {
        let args: Vec<String> = s.split_whitespace().map(|x| x.to_string()).collect();
        parse_args(&args)
    }

    #[test]
    fn defaults_when_empty() {
        let o = parse("").unwrap();
        assert_eq!(o, Opts::default());
    }

    #[test]
    fn both_flag_grammars() {
        let a = parse("--users 12 --load 0.7").unwrap();
        let b = parse("--users=12 --load=0.7").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.users, 12);
        assert!((a.load - 0.7).abs() < 1e-12);
    }

    #[test]
    fn scheduler_variants() {
        assert_eq!(
            parse("--scheduler pf").unwrap().scheduler,
            SchedulerKind::Pf
        );
        assert_eq!(
            parse("--scheduler strict-mlfq").unwrap().scheduler,
            SchedulerKind::StrictMlfq
        );
        match parse("--scheduler outran:0.4").unwrap().scheduler {
            SchedulerKind::OutRanEps(e) => assert!((e - 0.4).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
        assert!(parse("--scheduler bogus").is_err());
    }

    #[test]
    fn scenario_and_dist() {
        let o = parse("--scenario nr2 --dist websearch").unwrap();
        assert_eq!(o.scenario, Scenario::NrUrban(2));
        assert_eq!(o.dist, Some(FlowSizeDist::Websearch));
        assert!(parse("--scenario mars").is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(parse("--load 0").is_err());
        assert!(parse("--load 5").is_err());
        assert!(parse("--epsilon 2").is_err());
        assert!(parse("--users 0").is_err());
        assert!(parse("--users").is_err());
        assert!(parse("--frobnicate 3").is_err());
    }

    #[test]
    fn full_flag_set() {
        let o = parse(
            "--scheduler outran --scenario lte --users 8 --load 0.5 --secs 4 \
             --seed 9 --rlc am --buffer 256 --tf-ms 500 --cn-ms 20 \
             --epsilon 0.3 --reset-ms 500 --harq --dense --loss 0.01 \
             --srjf-mode winner-only --cdf short",
        )
        .unwrap();
        assert_eq!(o.rlc, RlcMode::Am);
        assert_eq!(o.buffer, 256);
        assert_eq!(o.tf, Dur::from_millis(500));
        assert_eq!(o.cn, Dur::from_millis(20));
        assert!((o.epsilon - 0.3).abs() < 1e-12);
        assert_eq!(o.reset, Some(Dur::from_millis(500)));
        assert!(o.harq);
        assert!(o.dense);
        assert_eq!(o.srjf_mode, SrjfMode::WinnerOnly);
        assert_eq!(o.cdf, Some(CdfSel::Short));
    }

    #[test]
    fn subcommands() {
        assert_eq!(parse("").unwrap().command, Command::Run);
        assert_eq!(parse("run --users 3").unwrap().command, Command::Run);
        let o = parse("chaos --intensity 0.8 --users 3").unwrap();
        assert_eq!(o.command, Command::Chaos);
        assert!((o.intensity - 0.8).abs() < 1e-12);
        assert!(parse("frobnicate").is_err());
        assert!(parse("chaos --intensity 1.5").is_err());
        assert!(parse("chaos --intensity -0.1").is_err());
    }

    #[test]
    fn threads_and_reps_flags() {
        let o = parse("--reps 3 --threads 2").unwrap();
        assert_eq!(o.reps, 3);
        assert_eq!(o.threads, 2);
        assert!(parse("--reps 0").is_err());
        assert!(parse("--threads 0").is_err());
        assert!(Opts::default().threads >= 1);
    }

    #[test]
    fn reps_run_smoke() {
        let o = parse("--users 4 --load 0.3 --secs 2 --scheduler pf --reps 2 --threads 2").unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn run_smoke() {
        // A tiny end-to-end run through the CLI path.
        let o = parse("--users 4 --load 0.3 --secs 2 --scheduler pf").unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn chaos_smoke() {
        // End-to-end chaos run: faults injected, zero violations.
        let o = parse("chaos --users 4 --load 0.3 --secs 2 --intensity 0.6").unwrap();
        run(&o).unwrap();
    }

    #[test]
    fn csv_failure_is_an_error() {
        let o = parse("--users 3 --load 0.3 --secs 1 --csv /nonexistent-dir/x.csv").unwrap();
        let e = run(&o).unwrap_err();
        assert!(e.contains("csv write"), "{e}");
    }
}
