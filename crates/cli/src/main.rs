//! `outran-sim` — run one cell experiment from the command line.
//!
//! ```console
//! outran-sim --scheduler outran --users 40 --load 0.6 --secs 20
//! outran-sim --scenario nr1 --scheduler srjf --dist mirage --secs 8
//! outran-sim --scheduler pf --rlc am --buffer 640 --cdf short
//! ```
//!
//! Run `outran-sim --help` for every knob. The tool prints the standard
//! experiment report (FCT buckets, spectral efficiency, fairness) and,
//! on request, figure-style CDFs.

#![forbid(unsafe_code)]

use outran_cli::{parse_args, run, HELP};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
