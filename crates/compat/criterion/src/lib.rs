//! Offline shim for the `criterion` crate.
//!
//! A lightweight wall-clock benchmark harness implementing the subset of
//! the criterion API used by the `outran-bench` benches: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter` / `iter_batched`,
//! and the `criterion_group!` / `criterion_main!` macros. It has no
//! statistical machinery — each benchmark is warmed up, then timed over
//! an adaptively chosen iteration count, and the mean time per iteration
//! is printed. Good enough to catch order-of-magnitude regressions and
//! to keep `cargo bench` runnable without crates.io access.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored; present for
/// API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Prevent the optimizer from discarding a value (re-export of the
/// standard hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    /// Mean time per iteration from the last measurement.
    elapsed_per_iter: Duration,
    /// Iterations used for the measurement.
    iters: u64,
}

/// Default target measurement time per benchmark (milliseconds).
const TARGET_MS: u64 = 200;

/// Target measurement time per benchmark. `OUTRAN_BENCH_TARGET_MS`
/// overrides the default (clamped to ≥ 10 ms) — CI's perf-smoke job uses
/// a small value to run the whole microbench suite in quick mode.
fn target() -> Duration {
    let ms = std::env::var("OUTRAN_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(TARGET_MS)
        .max(10);
    Duration::from_millis(ms)
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine`, calling it repeatedly until the target measurement
    /// time is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let target = target();
        // Warm-up and calibration: double the batch until it costs ~1/10
        // of the measurement target.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt >= target / 10 || batch >= 1 << 30 {
                break dt / (batch as u32).max(1);
            }
            batch *= 2;
        };
        let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(10, 1 << 30) as u64;
        let t = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = t.elapsed() / (iters as u32);
        self.iters = iters;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with single runs (setup cost excluded from timing).
        let target = target();
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < target / 2 && iters < 1 << 20 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.elapsed_per_iter = total / (iters as u32).max(1);
        self.iters = iters;
    }
}

fn print_result(name: &str, b: &Bencher) {
    let ns = b.elapsed_per_iter.as_nanos();
    let human = if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    println!("{name:<48} {human:>12}/iter  ({} iters)", b.iters);
}

/// Top-level benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        print_result(name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        print_result(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        print_result(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("PF", 100).to_string(), "PF/100");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
