//! Offline shim for the `bytes` crate.
//!
//! Provides a cheaply-cloneable immutable byte buffer with the subset of
//! the `bytes::Bytes` API this workspace uses. Backed by `Arc<[u8]>`, so
//! clones are reference bumps just like the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Create from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Create by copying a slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn static_and_str() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(&b[..], b"abc");
        assert!(!b.is_empty());
        assert_eq!(format!("{b:?}"), "b\"abc\"");
    }
}
