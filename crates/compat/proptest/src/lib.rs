//! Offline shim for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! property-test harness is provided in-repo. It implements exactly the
//! surface our tests use — the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, `ProptestConfig::with_cases`, range and tuple
//! strategies, `prop::collection::vec`, and `prop::bool::ANY` — with a
//! deterministic per-test RNG (seeded from the test path and case index)
//! instead of the real crate's adaptive shrinking. Failures report the
//! case number so a failing input can be regenerated deterministically.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!`-family macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-case RNG (SplitMix64 over a seed derived from the
/// test path and case index, driving a xoshiro256** stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path keeps streams stable across test renames
        // elsewhere in the file.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h ^ ((case as u64) << 32) ^ case as u64;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, n) (rejection sampling).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A generator of values of one type (subset of proptest's `Strategy`:
/// generation only, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Closed upper bound: scale by the next-representable factor.
        let (lo, hi) = (*self.start(), *self.end());
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Size specification for collection strategies: a fixed length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The any-boolean strategy (mirrors `prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generate vectors whose elements come from `element` and whose
        /// length is drawn from `size` (a `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let SizeRange { lo, hi } = self.size;
                let len = lo + rng.below((hi - lo) as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Define property tests. Mirrors `proptest::proptest!` for the grammar
/// used in this repo: an optional `#![proptest_config(..)]` header and
/// `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg $cfg; $($rest)*);
    };
    (@with_cfg $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(path, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property failed at case {case} of {path}: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Reject the current case without failing it. The real crate resamples
/// rejected cases; this shim simply skips them, which keeps the same
/// soundness (no false failures) at the cost of a slightly smaller
/// effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {:?} != {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u32..17,
            b in 0.25f64..0.75,
            c in 0.0f64..=1.0,
            pair in (0u64..10u64, 1u32..5),
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(pair.0 < 10 && pair.1 >= 1 && pair.1 < 5);
        }

        #[test]
        fn vec_lengths_respect_size(
            fixed in prop::collection::vec(prop::bool::ANY, 7),
            ranged in prop::collection::vec(0u8..4, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
            prop_assert!(ranged.iter().all(|&x| x < 4));
        }
    }
}
