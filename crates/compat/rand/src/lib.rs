//! Offline shim for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! few external traits it consumes are provided by thin in-repo shims.
//! Only the surface actually used is implemented: [`RngCore`] (implemented
//! by `outran-simcore`'s deterministic xoshiro generator) and the
//! [`Error`] type its fallible method mentions.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type returned by [`RngCore::try_fill_bytes`].
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (API-compatible subset of
/// `rand::RngCore` 0.8).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
