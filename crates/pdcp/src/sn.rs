//! PDCP sequence numbering and ciphering, with OutRAN's delayed mode.
//!
//! In standard LTE/5G, the PDCP transmitter assigns each data PDU an
//! incrementing Sequence Number (SN) at ingress and ciphers the payload
//! with a keystream keyed by the COUNT (HFN‖SN). The receiver keeps a
//! mirrored COUNT and deciphers in arrival order. That works because the
//! legacy RLC transmits SDUs FIFO.
//!
//! OutRAN reorders SDUs (MLFQ), so an SN stamped at ingress no longer
//! matches the receiver's COUNT at arrival → garbled plaintext. §4.4:
//! "OutRAN delays the PDCP's SN numbering & ciphering and performs the
//! process at the RLC layer, right before submitting the RLC PDUs to the
//! MAC layer."
//!
//! [`PdcpTx`] supports both modes so the tests can demonstrate exactly the
//! failure the paper designs around: [`SnMode::AtIngress`] breaks under
//! reordering, [`SnMode::Delayed`] does not.
//!
//! Ciphering is modelled as XOR with a COUNT-keyed keystream (the
//! structure of EEA2/NEA2 counter mode without pulling in a crypto
//! dependency — the *synchronisation* property is what matters here).

use bytes::Bytes;

/// When SN assignment + ciphering happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnMode {
    /// Legacy PDCP: number & cipher when the packet enters PDCP.
    AtIngress,
    /// OutRAN: number & cipher at RLC dequeue, in transmission order.
    Delayed,
}

/// COUNT-keyed keystream generator (toy counter-mode stream).
#[derive(Debug, Clone, Copy)]
pub struct CipherStream {
    key: u64,
}

impl CipherStream {
    /// Create with a bearer key.
    pub fn new(key: u64) -> CipherStream {
        CipherStream { key }
    }

    /// XOR `data` with the keystream for `count` (involutive: applying it
    /// twice with the same count restores the plaintext).
    pub fn apply(&self, count: u32, data: &[u8]) -> Bytes {
        let mut out = Vec::with_capacity(data.len());
        let mut state = self
            .key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(count as u64);
        let mut ks = 0u64;
        for (i, &b) in data.iter().enumerate() {
            if i % 8 == 0 {
                // SplitMix64 step per 8-byte block.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ks = z ^ (z >> 31);
            }
            out.push(b ^ (ks >> ((i % 8) * 8)) as u8);
        }
        Bytes::from(out)
    }
}

/// A PDCP PDU after (possibly deferred) numbering/ciphering.
#[derive(Debug, Clone)]
pub struct PdcpPdu {
    /// Assigned sequence number (None while numbering is deferred).
    pub sn: Option<u32>,
    /// Payload, ciphered iff `sn` is assigned.
    pub payload: Bytes,
}

/// PDCP transmitter entity for one bearer.
#[derive(Debug, Clone)]
pub struct PdcpTx {
    mode: SnMode,
    next_sn: u32,
    cipher: CipherStream,
}

impl PdcpTx {
    /// Create a transmitter in the given mode with a bearer key.
    pub fn new(mode: SnMode, key: u64) -> PdcpTx {
        PdcpTx {
            mode,
            next_sn: 0,
            cipher: CipherStream::new(key),
        }
    }

    /// The numbering mode.
    pub fn mode(&self) -> SnMode {
        self.mode
    }

    /// SN that will be assigned next.
    pub fn next_sn(&self) -> u32 {
        self.next_sn
    }

    /// Ingress processing of an IP packet payload.
    ///
    /// * `AtIngress`: assign SN now and cipher.
    /// * `Delayed`: pass through unnumbered/plaintext; call
    ///   [`PdcpTx::finalize`] at dequeue time.
    pub fn on_ingress(&mut self, payload: Bytes) -> PdcpPdu {
        match self.mode {
            SnMode::AtIngress => {
                let sn = self.bump();
                PdcpPdu {
                    sn: Some(sn),
                    payload: self.cipher.apply(sn, &payload),
                }
            }
            SnMode::Delayed => PdcpPdu { sn: None, payload },
        }
    }

    /// Deferred numbering + ciphering, applied in *transmission* order
    /// right before MAC submission (OutRAN's workflow step ③, Fig 10).
    /// No-op for PDUs already numbered at ingress.
    pub fn finalize(&mut self, pdu: &mut PdcpPdu) {
        if pdu.sn.is_none() {
            let sn = self.bump();
            pdu.payload = self.cipher.apply(sn, &pdu.payload);
            pdu.sn = Some(sn);
        }
    }

    fn bump(&mut self) -> u32 {
        let sn = self.next_sn;
        // 18-bit SN space as in NR PDCP; wraps (HFN handled by COUNT in a
        // real stack; the toy model keeps the full u32 as COUNT).
        self.next_sn = self.next_sn.wrapping_add(1);
        sn
    }
}

/// PDCP receiver entity (UE side): deciphers strictly in COUNT order, as
/// a real UE whose COUNT mirrors arrival order would.
#[derive(Debug, Clone)]
pub struct PdcpRx {
    expected_count: u32,
    cipher: CipherStream,
}

impl PdcpRx {
    /// Create a receiver sharing the bearer key.
    pub fn new(key: u64) -> PdcpRx {
        PdcpRx {
            expected_count: 0,
            cipher: CipherStream::new(key),
        }
    }

    /// Decipher the next arriving PDU using the receiver's own COUNT (the
    /// sender's SN field is *not* consulted for keystream selection —
    /// this mirrors the synchronisation hazard of §4.4: if transmission
    /// order diverged from numbering order, the keystreams mismatch).
    pub fn on_arrival(&mut self, pdu: &PdcpPdu) -> Bytes {
        let count = self.expected_count;
        self.expected_count = self.expected_count.wrapping_add(1);
        self.cipher.apply(count, &pdu.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads() -> Vec<Bytes> {
        (0..5u8).map(|i| Bytes::from(vec![i; 32])).collect()
    }

    #[test]
    fn cipher_is_involutive() {
        let c = CipherStream::new(0xDEAD_BEEF);
        let msg = b"hello pdcp world, this spans multiple blocks".as_slice();
        let ct = c.apply(7, msg);
        assert_ne!(&ct[..], msg);
        let pt = c.apply(7, &ct);
        assert_eq!(&pt[..], msg);
    }

    #[test]
    fn different_counts_give_different_keystreams() {
        let c = CipherStream::new(1);
        let msg = vec![0u8; 64];
        assert_ne!(c.apply(0, &msg), c.apply(1, &msg));
    }

    #[test]
    fn in_order_at_ingress_deciphers() {
        let mut tx = PdcpTx::new(SnMode::AtIngress, 42);
        let mut rx = PdcpRx::new(42);
        for p in payloads() {
            let pdu = tx.on_ingress(p.clone());
            assert!(pdu.sn.is_some());
            assert_eq!(rx.on_arrival(&pdu), p);
        }
    }

    #[test]
    fn reordered_at_ingress_garbles() {
        // The exact failure §4.4 designs around: number at ingress, then
        // transmit out of order -> receiver's COUNT mismatches.
        let mut tx = PdcpTx::new(SnMode::AtIngress, 42);
        let mut rx = PdcpRx::new(42);
        let ps = payloads();
        let mut pdus: Vec<PdcpPdu> = ps.iter().map(|p| tx.on_ingress(p.clone())).collect();
        pdus.swap(0, 3); // scheduler reorders
        let out0 = rx.on_arrival(&pdus[0]);
        assert_ne!(out0, ps[3], "deciphering must fail under reordering");
    }

    #[test]
    fn delayed_mode_survives_reordering() {
        let mut tx = PdcpTx::new(SnMode::Delayed, 42);
        let mut rx = PdcpRx::new(42);
        let ps = payloads();
        let mut pdus: Vec<PdcpPdu> = ps.iter().map(|p| tx.on_ingress(p.clone())).collect();
        // Scheduler reorders the *unnumbered* queue...
        pdus.swap(0, 3);
        pdus.swap(1, 4);
        // ...then numbering+ciphering happen in transmission order.
        let expected: Vec<Bytes> = pdus.iter().map(|p| p.payload.clone()).collect();
        for (i, pdu) in pdus.iter_mut().enumerate() {
            tx.finalize(pdu);
            assert_eq!(pdu.sn, Some(i as u32));
            let got = rx.on_arrival(pdu);
            assert_eq!(got, expected[i]);
        }
    }

    #[test]
    fn finalize_is_idempotent_for_ingress_mode() {
        let mut tx = PdcpTx::new(SnMode::AtIngress, 9);
        let mut pdu = tx.on_ingress(Bytes::from_static(b"x"));
        let before = pdu.payload.clone();
        tx.finalize(&mut pdu);
        assert_eq!(pdu.payload, before);
        assert_eq!(tx.next_sn(), 1);
    }

    #[test]
    fn sn_increments_monotonically() {
        let mut tx = PdcpTx::new(SnMode::AtIngress, 0);
        for i in 0..100u32 {
            let pdu = tx.on_ingress(Bytes::from_static(b"y"));
            assert_eq!(pdu.sn, Some(i));
        }
    }
}
