//! # outran-pdcp
//!
//! The Packet Data Convergence Protocol layer of the xNodeB user plane,
//! extended with OutRAN's flow machinery (paper §4.2 and §4.4, Appendix B
//! implementation notes).
//!
//! Responsibilities reproduced from srsENB's PDCP plus the OutRAN patch:
//!
//! * **Header inspection** ([`packet`]) — parse the five-tuple of each
//!   ingress IP packet *before* header compression.
//! * **Per-flow state** ([`flow_table`]) — a hash table keyed by
//!   five-tuple holding `sent-bytes` so far (the 41-byte state of §7),
//!   from which the MLFQ priority of the flow is derived.
//! * **MLFQ marking** ([`flow_table::FlowTable::observe`]) — a new flow
//!   starts at priority P1 and is demoted each time its cumulative bytes
//!   cross a threshold α_i; "Priority Boost" resets (§6.3).
//! * **SN numbering & ciphering** ([`sn`]) — the PDCP COUNT/SN machinery.
//!   Legacy PDCP numbers and ciphers at ingress; OutRAN *delays* both to
//!   RLC-dequeue time so that scheduler-induced reordering cannot desync
//!   the UE's deciphering COUNT (§4.4 "Sequence numbering").

//!
//! # Example
//!
//! ```
//! use outran_pdcp::{FlowTable, MlfqConfig, FiveTuple, Priority};
//! use outran_simcore::Time;
//!
//! let mut table = FlowTable::new(MlfqConfig::new(vec![10_000, 100_000]));
//! let flow = FiveTuple::simulated(1, 0);
//! // A fresh flow starts at the top priority...
//! assert_eq!(table.observe(flow, 1_500, Time::ZERO), Priority::TOP);
//! // ...and demotes once its sent-bytes cross the first threshold.
//! for _ in 0..7 { table.observe(flow, 1_500, Time::ZERO); }
//! assert_eq!(table.priority_of(&flow), Priority(1));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow_table;
pub mod packet;
pub mod sn;

pub use flow_table::{FlowTable, MlfqConfig, Priority};
pub use packet::{FiveTuple, IpPacket};
pub use sn::{CipherStream, PdcpRx, PdcpTx, SnMode};
