//! Per-flow state and MLFQ priority marking.
//!
//! §4.2: "When a packet arrives at each user's buffer, our scheduler
//! identifies the flow based on the five tuple … and updates the
//! sent-bytes so far (or create a new entry if it is a new one). Next,
//! using the sent-byte information, it enforces the MLFQ scheduling for
//! each flow":
//!
//! * a new incoming flow starts from P1 (highest priority);
//! * a flow is demoted from Pᵢ to Pᵢ₊₁ when its sent-bytes cross αᵢ;
//! * beyond the last threshold all flows share the base priority PK, so
//!   long flows cannot be starved below it.
//!
//! Appendix B: the state lives at the PDCP layer as a five-tuple-keyed
//! hash table; §7 sizes it at 41 bytes per flow (37 key + 4 counter).
//! §6.3 adds "Priority Boost": resetting all flow states every period S.

use std::collections::BTreeMap;
use std::sync::Arc;

use outran_simcore::{Dur, Time};

use crate::packet::FiveTuple;

/// MLFQ priority level. **Lower is higher priority**: `Priority(0)` is the
/// paper's P1, `Priority(K-1)` the base priority PK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// The topmost (P1) priority.
    pub const TOP: Priority = Priority(0);
}

/// MLFQ configuration: `K = thresholds.len() + 1` queues.
///
/// The thresholds are the demotion boundaries `α_1 < α_2 < … < α_{K−1}` in
/// cumulative sent bytes. See `outran-core::thresholds` for the PIAS-style
/// optimizer that picks them from a flow-size distribution; the defaults
/// here are the ones our optimizer produces for the LTE cellular
/// distribution with K = 4 (the paper observed performance is steady for
/// K > 4, §4.2 "Parameter choice").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlfqConfig {
    /// Demotion thresholds in bytes, strictly increasing.
    pub thresholds: Vec<u64>,
}

impl Default for MlfqConfig {
    fn default() -> Self {
        MlfqConfig {
            // ~10 KB / 100 KB / 1 MB: knees of the heavy-tailed LTE
            // cellular distribution (90 % of flows < 35.9 KB finish in the
            // top two queues).
            thresholds: vec![10_000, 100_000, 1_000_000],
        }
    }
}

impl MlfqConfig {
    /// Create from explicit thresholds (validated strictly increasing).
    pub fn new(thresholds: Vec<u64>) -> MlfqConfig {
        assert!(!thresholds.is_empty(), "need at least one threshold");
        for w in thresholds.windows(2) {
            assert!(w[0] < w[1], "thresholds must strictly increase: {w:?}");
        }
        MlfqConfig { thresholds }
    }

    /// Number of priority queues K.
    pub fn num_queues(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// Priority for a flow that has sent `sent_bytes` so far.
    pub fn priority_for(&self, sent_bytes: u64) -> Priority {
        let demotions = self
            .thresholds
            .iter()
            .take_while(|&&a| sent_bytes >= a)
            .count();
        Priority(demotions as u8)
    }

    /// The lowest (base) priority PK.
    pub fn base_priority(&self) -> Priority {
        Priority(self.thresholds.len() as u8)
    }
}

/// State kept for one flow.
#[derive(Debug, Clone)]
pub struct FlowState {
    /// Cumulative bytes observed for this flow (since last reset).
    pub sent_bytes: u64,
    /// When the flow entry was created.
    pub first_seen: Time,
    /// Last packet observed.
    pub last_seen: Time,
}

/// The PDCP flow table of one bearer/UE: five-tuple → sent-bytes.
#[derive(Debug, Clone)]
pub struct FlowTable {
    /// Shared (`Arc`) so a cell's per-UE tables reference one config
    /// instead of cloning the threshold vector per UE.
    mlfq: Arc<MlfqConfig>,
    /// Tuple-ordered so every traversal (export, GC, eviction scan) is
    /// deterministic; the paper's hash table would iterate in hasher
    /// order and poison replay fingerprints (outran-lint D2).
    flows: BTreeMap<FiveTuple, FlowState>,
    /// Idle entries older than this are evicted on [`FlowTable::gc`].
    idle_timeout: Dur,
    /// Admission-control cap on tracked entries (`None` = unbounded).
    max_entries: Option<usize>,
    /// Entries evicted by admission control (not idle GC).
    evicted: u64,
}

impl FlowTable {
    /// Per-flow state footprint in bytes (§7: 41 B = 37 B key + 4 B counter).
    pub const STATE_BYTES_PER_FLOW: usize = FiveTuple::STATE_BYTES + 4;

    /// Create a table with the given MLFQ config.
    pub fn new(mlfq: MlfqConfig) -> FlowTable {
        FlowTable::shared(Arc::new(mlfq))
    }

    /// Create a table over an already-shared MLFQ config (the per-UE
    /// tables of one cell all point at the same thresholds).
    pub fn shared(mlfq: Arc<MlfqConfig>) -> FlowTable {
        FlowTable {
            mlfq,
            flows: BTreeMap::new(),
            idle_timeout: Dur::from_secs(30),
            max_entries: None,
            evicted: 0,
        }
    }

    /// The MLFQ configuration in force.
    pub fn mlfq(&self) -> &MlfqConfig {
        &self.mlfq
    }

    /// Observe an ingress packet of `len` bytes for `tuple` at `now`.
    /// Updates sent-bytes and returns the MLFQ priority to mark the packet
    /// with (the priority *before* this packet's bytes are counted, so the
    /// first packet of a flow is always P1 — matching PIAS/strict-MLFQ
    /// semantics where the packet inherits the queue its flow sits in).
    pub fn observe(&mut self, tuple: FiveTuple, len: u32, now: Time) -> Priority {
        if let Some(cap) = self.max_entries {
            if !self.flows.contains_key(&tuple) && self.flows.len() >= cap {
                self.evict_one();
            }
        }
        let entry = self.flows.entry(tuple).or_insert(FlowState {
            sent_bytes: 0,
            first_seen: now,
            last_seen: now,
        });
        let prio = self.mlfq.priority_for(entry.sent_bytes);
        entry.sent_bytes += len as u64;
        entry.last_seen = now;
        prio
    }

    /// Current priority of a flow without observing a packet.
    pub fn priority_of(&self, tuple: &FiveTuple) -> Priority {
        self.flows
            .get(tuple)
            .map_or(Priority::TOP, |st| self.mlfq.priority_for(st.sent_bytes))
    }

    /// Cumulative sent-bytes of a flow (0 if unknown).
    pub fn sent_bytes(&self, tuple: &FiveTuple) -> u64 {
        self.flows.get(tuple).map_or(0, |st| st.sent_bytes)
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Estimated state memory (the §7 accounting).
    pub fn state_bytes(&self) -> usize {
        self.flows.len() * Self::STATE_BYTES_PER_FLOW
    }

    /// "Priority Boost" (§6.3): reset every flow's sent-bytes so all flows
    /// return to the topmost queue.
    pub fn reset_priorities(&mut self) {
        for st in self.flows.values_mut() {
            st.sent_bytes = 0;
        }
    }

    /// Evict entries idle for longer than the timeout. Returns how many
    /// entries were removed.
    pub fn gc(&mut self, now: Time) -> usize {
        let timeout = self.idle_timeout;
        let before = self.flows.len();
        self.flows
            .retain(|_, st| now.saturating_since(st.last_seen) < timeout);
        before - self.flows.len()
    }

    /// Change the idle-eviction timeout.
    pub fn set_idle_timeout(&mut self, timeout: Dur) {
        self.idle_timeout = timeout;
    }

    /// Cap the number of tracked entries. When a new flow arrives at a
    /// full table, the least-recently-seen entry is evicted (admission
    /// control under state overload, §7 memory budget). `None` removes
    /// the cap.
    pub fn set_max_entries(&mut self, cap: Option<usize>) {
        if let Some(cap) = cap {
            assert!(cap > 0, "flow-table cap must be positive");
            while self.flows.len() > cap {
                self.evict_one();
            }
        }
        self.max_entries = cap;
    }

    /// Entries evicted by admission control so far.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// Evict the least-recently-seen entry (tuple order breaks ties so
    /// eviction is deterministic regardless of traversal order).
    fn evict_one(&mut self) {
        let victim = self
            .flows
            .iter()
            .min_by_key(|(t, st)| (st.last_seen, **t))
            .map(|(t, _)| *t);
        if let Some(t) = victim {
            self.flows.remove(&t);
            self.evicted += 1;
        }
    }

    /// Export all per-flow state — the §7 handover path ("the flow state
    /// of a user can also be copied along with the data").
    pub fn export(&self) -> Vec<(FiveTuple, u64)> {
        self.flows
            .iter()
            .map(|(t, st)| (*t, st.sent_bytes))
            .collect()
    }

    /// Import state exported from a source cell at handover.
    pub fn import(&mut self, entries: &[(FiveTuple, u64)], now: Time) {
        for &(tuple, sent) in entries {
            self.flows.insert(
                tuple,
                FlowState {
                    sent_bytes: sent,
                    first_seen: now,
                    last_seen: now,
                },
            );
        }
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl FiveTuple {
    /// Serialize the key (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.src_ip);
        w.u32(self.dst_ip);
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u8(self.proto);
    }

    /// Restore a key.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<FiveTuple, SnapError> {
        Ok(FiveTuple {
            src_ip: r.u32()?,
            dst_ip: r.u32()?,
            src_port: r.u16()?,
            dst_port: r.u16()?,
            proto: r.u8()?,
        })
    }
}

impl FlowTable {
    /// Serialize the dynamic table state (checkpointing). The MLFQ
    /// config, idle timeout and entry cap come from the experiment
    /// configuration and are re-established by the restoring side
    /// before [`FlowTable::load_snap`] is called.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.evicted);
        w.seq(self.flows.iter(), |w, (t, st)| {
            t.snap(w);
            w.u64(st.sent_bytes);
            w.time(st.first_seen);
            w.time(st.last_seen);
        });
    }

    /// Overlay checkpointed dynamic state onto a freshly built table.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.evicted = r.u64()?;
        self.flows.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let t = FiveTuple::unsnap(r)?;
            let st = FlowState {
                sent_bytes: r.u64()?,
                first_seen: r.time()?,
                last_seen: r.time()?,
            };
            self.flows.insert(t, st);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(n: u16) -> FiveTuple {
        FiveTuple::simulated(n as u64, 0)
    }

    #[test]
    fn new_flow_starts_at_p1() {
        let mut ft = FlowTable::new(MlfqConfig::default());
        assert_eq!(ft.observe(tuple(1), 1500, Time::ZERO), Priority::TOP);
    }

    #[test]
    fn demotion_on_threshold_crossing() {
        let mlfq = MlfqConfig::new(vec![10_000, 100_000]);
        let mut ft = FlowTable::new(mlfq);
        let t = tuple(1);
        let mut prio = Priority::TOP;
        let mut sent = 0u64;
        // Send 200 KB in MTU packets; the marked priority must demote at
        // (not before) each threshold and never promote.
        while sent < 200_000 {
            let p = ft.observe(t, 1500, Time::ZERO);
            assert!(p >= prio, "priority must be monotone non-increasing");
            let expected = if sent >= 100_000 {
                Priority(2)
            } else if sent >= 10_000 {
                Priority(1)
            } else {
                Priority(0)
            };
            assert_eq!(p, expected, "at sent={sent}");
            prio = p;
            sent += 1500;
        }
    }

    #[test]
    fn base_priority_is_floor() {
        let mlfq = MlfqConfig::default();
        assert_eq!(mlfq.priority_for(u64::MAX), mlfq.base_priority());
        assert_eq!(mlfq.num_queues(), 4);
    }

    #[test]
    fn distinct_flows_tracked_separately() {
        let mut ft = FlowTable::new(MlfqConfig::default());
        ft.observe(tuple(1), 50_000, Time::ZERO);
        assert_eq!(ft.priority_of(&tuple(1)), Priority(1));
        assert_eq!(ft.priority_of(&tuple(2)), Priority::TOP);
        assert_eq!(ft.len(), 1);
        ft.observe(tuple(2), 100, Time::ZERO);
        assert_eq!(ft.len(), 2);
    }

    #[test]
    fn reset_restores_top_priority() {
        let mut ft = FlowTable::new(MlfqConfig::default());
        ft.observe(tuple(1), 5_000_000, Time::ZERO);
        assert_eq!(ft.priority_of(&tuple(1)), Priority(3));
        ft.reset_priorities();
        assert_eq!(ft.priority_of(&tuple(1)), Priority::TOP);
        // State entry still exists (it's a reset, not an eviction).
        assert_eq!(ft.len(), 1);
    }

    #[test]
    fn gc_evicts_idle_flows() {
        let mut ft = FlowTable::new(MlfqConfig::default());
        ft.set_idle_timeout(Dur::from_secs(1));
        ft.observe(tuple(1), 100, Time::ZERO);
        ft.observe(tuple(2), 100, Time::from_secs(5));
        let evicted = ft.gc(Time::from_secs(5));
        assert_eq!(evicted, 1);
        assert_eq!(ft.len(), 1);
        assert_eq!(ft.sent_bytes(&tuple(2)), 100);
    }

    #[test]
    fn state_accounting_matches_paper() {
        assert_eq!(FlowTable::STATE_BYTES_PER_FLOW, 41);
        let mut ft = FlowTable::new(MlfqConfig::default());
        for i in 0..100 {
            ft.observe(tuple(i), 100, Time::ZERO);
        }
        assert_eq!(ft.state_bytes(), 4100);
    }

    #[test]
    fn handover_export_import_roundtrip() {
        let mut src = FlowTable::new(MlfqConfig::default());
        src.observe(tuple(1), 50_000, Time::ZERO);
        src.observe(tuple(2), 100, Time::ZERO);
        let mut dst = FlowTable::new(MlfqConfig::default());
        dst.import(&src.export(), Time::from_secs(1));
        assert_eq!(dst.sent_bytes(&tuple(1)), 50_000);
        assert_eq!(dst.priority_of(&tuple(1)), Priority(1));
        assert_eq!(dst.priority_of(&tuple(2)), Priority::TOP);
    }

    #[test]
    fn admission_control_evicts_least_recent() {
        let mut ft = FlowTable::new(MlfqConfig::default());
        ft.set_max_entries(Some(2));
        ft.observe(tuple(1), 100, Time::ZERO);
        ft.observe(tuple(2), 100, Time::from_secs(1));
        // Table full: tuple(1) is least-recently-seen and must go.
        ft.observe(tuple(3), 100, Time::from_secs(2));
        assert_eq!(ft.len(), 2);
        assert_eq!(ft.evictions(), 1);
        assert_eq!(ft.sent_bytes(&tuple(1)), 0);
        assert_eq!(ft.sent_bytes(&tuple(2)), 100);
        // Re-observing an existing flow never evicts.
        ft.observe(tuple(2), 100, Time::from_secs(3));
        assert_eq!(ft.evictions(), 1);
        // Shrinking the cap evicts immediately.
        ft.set_max_entries(Some(1));
        assert_eq!(ft.len(), 1);
        assert_eq!(ft.evictions(), 2);
    }

    #[test]
    fn shared_config_is_not_duplicated() {
        let cfg = Arc::new(MlfqConfig::default());
        let a = FlowTable::shared(cfg.clone());
        let b = FlowTable::shared(cfg.clone());
        // Two tables + our handle all point at one allocation.
        assert_eq!(Arc::strong_count(&cfg), 3);
        assert_eq!(a.mlfq().num_queues(), b.mlfq().num_queues());
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_thresholds() {
        let _ = MlfqConfig::new(vec![100, 100]);
    }
}
