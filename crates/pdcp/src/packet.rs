//! IP packet abstraction and five-tuple identification.
//!
//! OutRAN identifies flows "based on the five tuple information (src/dst
//! IPs, src/dst ports, protocol)" (§4.2). The simulator carries packets as
//! light metadata records; a real byte-level header parser is provided for
//! the unit tests and for parity with the srsRAN patch (which inspects
//! headers before PDCP header compression).

use bytes::Bytes;

/// Transport-protocol numbers we care about.
pub mod proto {
    /// TCP protocol number.
    pub const TCP: u8 = 6;
    /// UDP protocol number (QUIC rides on this).
    pub const UDP: u8 = 17;
}

/// The flow key: src/dst IPv4 addresses, src/dst ports, protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FiveTuple {
    /// Convenience constructor for simulated flows: server `flow_id` to a
    /// given UE index, TCP.
    pub fn simulated(flow_id: u64, ue: u16) -> FiveTuple {
        FiveTuple {
            src_ip: 0x0a00_0001, // 10.0.0.1 (server)
            dst_ip: 0xac10_0000 | ue as u32,
            src_port: 443,
            dst_port: (10_000 + (flow_id % 50_000)) as u16,
            proto: proto::TCP,
        }
    }

    /// Serialized size of this key in the flow state (§7: 37 bytes for the
    /// five-tuple as stored by the srsRAN patch, which keeps IPv6-capable
    /// address slots).
    pub const STATE_BYTES: usize = 37;

    /// Parse the five-tuple out of a raw IPv4 header + L4 header prefix.
    ///
    /// Returns `None` for non-IPv4 or truncated buffers. Only the fields
    /// needed for the key are touched; options are skipped via IHL.
    pub fn parse_ipv4(buf: &[u8]) -> Option<FiveTuple> {
        if buf.len() < 20 {
            return None;
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return None;
        }
        let ihl = (buf[0] & 0x0f) as usize * 4;
        if ihl < 20 || buf.len() < ihl + 4 {
            return None;
        }
        let proto = buf[9];
        let src_ip = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
        let dst_ip = u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]);
        let src_port = u16::from_be_bytes([buf[ihl], buf[ihl + 1]]);
        let dst_port = u16::from_be_bytes([buf[ihl + 2], buf[ihl + 3]]);
        Some(FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            proto,
        })
    }

    /// Render a minimal IPv4+L4 header carrying this tuple (for tests and
    /// the header-inspection benchmarks).
    pub fn to_ipv4_header(&self) -> Vec<u8> {
        let mut h = vec![0u8; 24];
        h[0] = 0x45; // v4, IHL=5
        h[9] = self.proto;
        h[12..16].copy_from_slice(&self.src_ip.to_be_bytes());
        h[16..20].copy_from_slice(&self.dst_ip.to_be_bytes());
        h[20..22].copy_from_slice(&self.src_port.to_be_bytes());
        h[22..24].copy_from_slice(&self.dst_port.to_be_bytes());
        h
    }
}

/// A downlink IP packet as carried through the simulator.
#[derive(Debug, Clone)]
pub struct IpPacket {
    /// Flow key.
    pub tuple: FiveTuple,
    /// Total length in bytes (header + payload) — what counts against
    /// sent-bytes and transmission opportunities.
    pub len: u32,
    /// Application flow identifier (simulator-side bookkeeping; a real
    /// eNodeB has only the tuple).
    pub flow_id: u64,
    /// Transport sequence number of the first payload byte.
    pub seq: u64,
    /// Optional literal payload (only materialised by ciphering tests).
    pub payload: Option<Bytes>,
}

impl IpPacket {
    /// Make a metadata-only packet.
    pub fn new(tuple: FiveTuple, len: u32, flow_id: u64, seq: u64) -> IpPacket {
        IpPacket {
            tuple,
            len,
            flow_id,
            seq,
            payload: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let t = FiveTuple {
            src_ip: 0xc0a8_0101,
            dst_ip: 0x0808_0808,
            src_port: 443,
            dst_port: 51234,
            proto: proto::TCP,
        };
        let buf = t.to_ipv4_header();
        assert_eq!(FiveTuple::parse_ipv4(&buf), Some(t));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(FiveTuple::parse_ipv4(&[]), None);
        assert_eq!(FiveTuple::parse_ipv4(&[0u8; 10]), None);
        // IPv6 version nibble.
        let mut v6 = vec![0u8; 40];
        v6[0] = 0x60;
        assert_eq!(FiveTuple::parse_ipv4(&v6), None);
        // Bad IHL.
        let mut bad = vec![0u8; 24];
        bad[0] = 0x42;
        assert_eq!(FiveTuple::parse_ipv4(&bad), None);
    }

    #[test]
    fn parse_skips_ip_options() {
        let t = FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: proto::UDP,
        };
        // IHL=6 (one option word).
        let mut buf = vec![0u8; 28];
        buf[0] = 0x46;
        buf[9] = t.proto;
        buf[12..16].copy_from_slice(&t.src_ip.to_be_bytes());
        buf[16..20].copy_from_slice(&t.dst_ip.to_be_bytes());
        buf[24..26].copy_from_slice(&t.src_port.to_be_bytes());
        buf[26..28].copy_from_slice(&t.dst_port.to_be_bytes());
        assert_eq!(FiveTuple::parse_ipv4(&buf), Some(t));
    }

    #[test]
    fn simulated_tuples_distinct_per_flow_and_ue() {
        let a = FiveTuple::simulated(1, 0);
        let b = FiveTuple::simulated(2, 0);
        let c = FiveTuple::simulated(1, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
