//! Scenario presets reproducing the paper's radio environments.
//!
//! | Preset | Paper source | Character |
//! |---|---|---|
//! | [`Scenario::LtePedestrian`] | §3/§6.2 NS-3 LTE + 3GPP TS 36.141 trace | 100 RBs, 1.4 m/s walkers, volatile Rayleigh |
//! | [`Scenario::NrUrban`] | §6.2 NS-3 5G-LENA, band n257 28 GHz | 273 RBs (µ configurable), *stable* channel — the Appendix notes 5G-LENA traces are "more stable and steady", which is why SRJF performs ideally there (Fig 20) |
//! | [`Scenario::ColosseumRome`] | Fig 19 "close, moderate" | 15 RBs, short range, moderate mobility |
//! | [`Scenario::ColosseumBoston`] | Fig 19 "close, fast" | 15 RBs, short range, vehicular speed |
//! | [`Scenario::ColosseumPowder`] | Fig 19 "medium, static" | 15 RBs, medium range, static UEs |
//! | [`Scenario::Testbed`] | §6.1 over-the-air, Band 7 2680 MHz, 20 MHz | 4 UEs, 256-QAM, 97 Mbps peak |

use crate::bler::BlerModel;
use crate::channel::ChannelConfig;
use crate::cqi::CqiTable;
use crate::numerology::RadioConfig;
use outran_simcore::Dur;

/// Named radio-environment presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// LTE macro cell, pedestrian mobility (the paper's main LTE setting).
    LtePedestrian,
    /// 5G NR urban micro at 28 GHz with a stable (beamformed-LOS-like)
    /// channel, numerology given by the `u8`.
    NrUrban(u8),
    /// Colosseum "Rome" profile: close range, moderate mobility.
    ColosseumRome,
    /// Colosseum "Boston" profile: close range, fast (vehicular) mobility.
    ColosseumBoston,
    /// Colosseum "POWDER" profile: medium range, static UEs.
    ColosseumPowder,
    /// The over-the-air testbed: Band 7, 20 MHz, 256-QAM, 4 phones.
    Testbed,
}

impl Scenario {
    /// Build the channel configuration for this scenario.
    pub fn channel_config(self) -> ChannelConfig {
        let mut cfg = ChannelConfig::lte_default();
        match self {
            Scenario::LtePedestrian => cfg,
            Scenario::NrUrban(mu) => {
                cfg.radio = RadioConfig::nr100_mu(mu);
                cfg.table = CqiTable::Qam256;
                cfg.carrier_hz = 28e9;
                // Dense small cell: shorter range, higher path loss exponent
                // indoors-out, but a stable beamformed link.
                cfg.radius_m = 100.0;
                cfg.min_radius_m = 5.0;
                cfg.pathloss_ref_db = 61.4; // 28 GHz free-space @1 m
                cfg.pathloss_exp = 2.1; // beamformed LOS
                cfg.tx_power_dbm = 30.0;
                cfg.shadowing_sd_db = 3.0;
                // Stable channel: tiny fading deviation (Rician-like),
                // reproducing 5G-LENA's steadier traces (Appendix B).
                cfg.fading_scale = 0.15;
                cfg.flatness = 0.7;
                cfg.n_subbands = 8;
                cfg.cqi_period_ttis = 4;
                cfg.cqi_delay_ttis = 1;
                cfg
            }
            Scenario::ColosseumRome => {
                cfg.radio = RadioConfig::lte_rbs(15);
                cfg.radius_m = 60.0;
                cfg.min_radius_m = 5.0;
                cfg.ue_speed_mps = 1.4; // moderate
                cfg.n_subbands = 3;
                cfg
            }
            Scenario::ColosseumBoston => {
                cfg.radio = RadioConfig::lte_rbs(15);
                cfg.radius_m = 60.0;
                cfg.min_radius_m = 5.0;
                cfg.ue_speed_mps = 9.0; // fast
                cfg.shadowing_sd_db = 7.0;
                cfg.n_subbands = 3;
                cfg
            }
            Scenario::ColosseumPowder => {
                cfg.radio = RadioConfig::lte_rbs(15);
                cfg.radius_m = 140.0;
                cfg.min_radius_m = 20.0;
                cfg.ue_speed_mps = 0.0; // static
                cfg.n_subbands = 3;
                cfg
            }
            Scenario::Testbed => {
                cfg.carrier_hz = 2.68e9; // Band 7 downlink
                cfg.table = CqiTable::Qam256;
                cfg.radius_m = 30.0;
                cfg.min_radius_m = 2.0;
                cfg.ue_speed_mps = 1.4; // the paper replays a pedestrian
                                        // CQI trace into srsENB; phones see mid-range, *varying*
                                        // channel quality, not a cabled CQI-15 link. The tx power
                                        // is set so mean SINR sits ~18-25 dB and Rayleigh dips
                                        // push individual subbands through several CQI steps.
                cfg.tx_power_dbm = -23.0;
                cfg.pathloss_ref_db = 40.0;
                cfg.pathloss_exp = 2.0;
                cfg.shadowing_sd_db = 3.0;
                cfg.flatness = 0.5;
                cfg.bler = BlerModel::default();
                cfg.mobility_step = Dur::from_millis(100);
                cfg
            }
        }
    }

    /// Human-readable name as used in figures/tables.
    pub fn name(self) -> String {
        match self {
            Scenario::LtePedestrian => "LTE-pedestrian".into(),
            Scenario::NrUrban(mu) => format!("NR-urban-mu{mu}"),
            Scenario::ColosseumRome => "Rome (close, moderate)".into(),
            Scenario::ColosseumBoston => "Boston (close, fast)".into(),
            Scenario::ColosseumPowder => "POWDER (medium, static)".into(),
            Scenario::Testbed => "OTA-testbed".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::CellChannel;
    use outran_simcore::{Rng, Time};

    #[test]
    fn all_scenarios_build() {
        for s in [
            Scenario::LtePedestrian,
            Scenario::NrUrban(0),
            Scenario::NrUrban(3),
            Scenario::ColosseumRome,
            Scenario::ColosseumBoston,
            Scenario::ColosseumPowder,
            Scenario::Testbed,
        ] {
            let cfg = s.channel_config();
            let ch = CellChannel::new(cfg, 4, &Rng::new(1));
            assert!(ch.n_rbs() >= 1);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn colosseum_has_15_rbs() {
        for s in [
            Scenario::ColosseumRome,
            Scenario::ColosseumBoston,
            Scenario::ColosseumPowder,
        ] {
            assert_eq!(s.channel_config().radio.num_rbs(), 15);
        }
    }

    #[test]
    fn nr_urban_is_more_stable_than_lte() {
        // The key property behind Fig 20 (SRJF ideal in 5G): the NR
        // scenario's SINR varies far less TTI-to-TTI than LTE's.
        let var_of = |cfg: ChannelConfig| {
            let mut ch = CellChannel::new(cfg, 1, &Rng::new(5));
            let tti = ch.config().radio.tti();
            let mut now = Time::ZERO;
            let mut stats = outran_simcore::RunningStats::new();
            for _ in 0..2000 {
                now += tti;
                ch.advance_tti(now);
                stats.push(ch.actual_sinr_db(0, 0));
            }
            stats.std_dev()
        };
        // Same pedestrian speed in both; the NR preset's small fading
        // scale is what makes it stable.
        let lte = Scenario::LtePedestrian.channel_config();
        let mut nr = Scenario::NrUrban(1).channel_config();
        nr.ue_speed_mps = lte.ue_speed_mps;
        let lte_sd = var_of(lte);
        let nr_sd = var_of(nr);
        assert!(
            nr_sd < lte_sd * 0.5,
            "NR should be much stabler: lte_sd={lte_sd:.2} nr_sd={nr_sd:.2}"
        );
    }

    #[test]
    fn powder_is_static() {
        let cfg = Scenario::ColosseumPowder.channel_config();
        assert_eq!(cfg.ue_speed_mps, 0.0);
    }

    #[test]
    fn nr_numerology_passes_through() {
        for mu in 0..=3u8 {
            let cfg = Scenario::NrUrban(mu).channel_config();
            assert_eq!(cfg.radio.numerology.mu(), mu);
        }
    }
}
