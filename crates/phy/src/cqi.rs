//! CQI — Channel Quality Indicator tables and SINR mapping.
//!
//! UEs report a 4-bit CQI per wideband/subband; the eNodeB maps it to a
//! modulation-and-coding scheme whose *efficiency* (information bits per
//! resource element) determines the per-RB achievable rate that feeds the
//! per-RB metric in eq. (1) of the paper.
//!
//! Two tables from 3GPP TS 36.213 are provided: the classic 64-QAM table
//! (7.2.3-1) and the 256-QAM table (7.2.3-2) used in the paper's testbed
//! ("256QAM, SISO … 4.85 bit/s/Hz").

/// A reported channel quality index. 0 means out-of-range (no service);
/// valid reports are 1..=15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cqi(pub u8);

impl Cqi {
    /// The out-of-range value.
    pub const OUT_OF_RANGE: Cqi = Cqi(0);
    /// Highest quality.
    pub const MAX: Cqi = Cqi(15);

    /// Whether this CQI permits any transmission.
    pub fn usable(self) -> bool {
        self.0 >= 1 && self.0 <= 15
    }
}

/// Which 3GPP MCS table the cell is configured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqiTable {
    /// TS 36.213 Table 7.2.3-1 (up to 64-QAM), the LTE default.
    Qam64,
    /// TS 36.213 Table 7.2.3-2 (up to 256-QAM), used in the paper testbed.
    Qam256,
}

/// Modulation order (bits per symbol) and nominal code rate for a CQI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsEntry {
    /// Bits per modulation symbol (2 = QPSK, 4 = 16QAM, 6 = 64QAM, 8 = 256QAM).
    pub modulation_bits: u8,
    /// Code rate × 1024 as tabulated by 3GPP.
    pub code_rate_x1024: u16,
}

impl McsEntry {
    /// Spectral efficiency in information bits per resource element.
    pub fn efficiency(&self) -> f64 {
        self.modulation_bits as f64 * self.code_rate_x1024 as f64 / 1024.0
    }
}

/// TS 36.213 Table 7.2.3-1 (64-QAM), indexed by CQI 1..=15.
const TABLE_64QAM: [McsEntry; 15] = [
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 78,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 120,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 193,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 308,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 449,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 602,
    },
    McsEntry {
        modulation_bits: 4,
        code_rate_x1024: 378,
    },
    McsEntry {
        modulation_bits: 4,
        code_rate_x1024: 490,
    },
    McsEntry {
        modulation_bits: 4,
        code_rate_x1024: 616,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 466,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 567,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 666,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 772,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 873,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 948,
    },
];

/// TS 36.213 Table 7.2.3-2 (256-QAM), indexed by CQI 1..=15.
const TABLE_256QAM: [McsEntry; 15] = [
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 78,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 193,
    },
    McsEntry {
        modulation_bits: 2,
        code_rate_x1024: 449,
    },
    McsEntry {
        modulation_bits: 4,
        code_rate_x1024: 378,
    },
    McsEntry {
        modulation_bits: 4,
        code_rate_x1024: 490,
    },
    McsEntry {
        modulation_bits: 4,
        code_rate_x1024: 616,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 466,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 567,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 666,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 772,
    },
    McsEntry {
        modulation_bits: 6,
        code_rate_x1024: 873,
    },
    McsEntry {
        modulation_bits: 8,
        code_rate_x1024: 711,
    },
    McsEntry {
        modulation_bits: 8,
        code_rate_x1024: 797,
    },
    McsEntry {
        modulation_bits: 8,
        code_rate_x1024: 885,
    },
    McsEntry {
        modulation_bits: 8,
        code_rate_x1024: 948,
    },
];

impl CqiTable {
    /// MCS entry for a usable CQI; `None` for CQI 0 (out of range).
    pub fn entry(self, cqi: Cqi) -> Option<McsEntry> {
        if !cqi.usable() {
            return None;
        }
        let idx = cqi.0 as usize - 1;
        Some(match self {
            CqiTable::Qam64 => TABLE_64QAM[idx],
            CqiTable::Qam256 => TABLE_256QAM[idx],
        })
    }

    /// Spectral efficiency in bits per RE (0.0 for out-of-range CQI).
    pub fn efficiency(self, cqi: Cqi) -> f64 {
        self.entry(cqi).map_or(0.0, |e| e.efficiency())
    }

    /// Peak efficiency (CQI 15).
    pub fn peak_efficiency(self) -> f64 {
        self.efficiency(Cqi::MAX)
    }

    /// Map post-equalisation SINR (dB) to the highest CQI whose required
    /// SINR is met, targeting ≈10 % initial BLER.
    ///
    /// Thresholds follow the widely used exponential-ESM calibration
    /// (~1.9–2 dB per CQI step starting near −6 dB), as used by the LENA
    /// module's default error model. CQI 0 below the bottom threshold.
    pub fn sinr_to_cqi(self, sinr_db: f64) -> Cqi {
        // Required SINR (dB) to support CQI i+1 at 10% BLER.
        const THRESH: [f64; 15] = [
            -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
        ];
        let mut cqi = 0u8;
        for (i, &t) in THRESH.iter().enumerate() {
            if sinr_db >= t {
                cqi = (i + 1) as u8;
            } else {
                break;
            }
        }
        // Clamp 256-QAM's top entries to realistic SINRs: same thresholds,
        // the table only changes what a high CQI is worth.
        Cqi(cqi)
    }

    /// The SINR (dB) required to sustain `cqi` at the 10 % BLER target —
    /// inverse of [`CqiTable::sinr_to_cqi`], used by the BLER truth model.
    pub fn required_sinr_db(self, cqi: Cqi) -> f64 {
        const THRESH: [f64; 15] = [
            -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
        ];
        if !cqi.usable() {
            return f64::NEG_INFINITY;
        }
        THRESH[cqi.0 as usize - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_monotonic_in_cqi() {
        for table in [CqiTable::Qam64, CqiTable::Qam256] {
            let mut prev = 0.0;
            for c in 1..=15u8 {
                let e = table.efficiency(Cqi(c));
                assert!(e > prev, "{table:?} CQI {c}: {e} <= {prev}");
                prev = e;
            }
        }
    }

    #[test]
    fn table_peaks_match_3gpp() {
        // 64-QAM CQI15: 6 * 948/1024 = 5.5547 bits/RE.
        assert!((CqiTable::Qam64.peak_efficiency() - 5.5547).abs() < 1e-3);
        // 256-QAM CQI15: 8 * 948/1024 = 7.4063 bits/RE.
        assert!((CqiTable::Qam256.peak_efficiency() - 7.4063).abs() < 1e-3);
    }

    #[test]
    fn out_of_range_cqi_is_zero_rate() {
        assert_eq!(CqiTable::Qam64.efficiency(Cqi(0)), 0.0);
        assert!(CqiTable::Qam64.entry(Cqi(0)).is_none());
        assert!(CqiTable::Qam64.entry(Cqi(16)).is_none());
    }

    #[test]
    fn sinr_mapping_monotonic() {
        let t = CqiTable::Qam64;
        let mut prev = 0;
        for s in -12..30 {
            let c = t.sinr_to_cqi(s as f64).0;
            assert!(c >= prev, "sinr={s}: cqi {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn sinr_mapping_extremes() {
        let t = CqiTable::Qam256;
        assert_eq!(t.sinr_to_cqi(-20.0), Cqi(0));
        assert_eq!(t.sinr_to_cqi(40.0), Cqi(15));
        // Paper Fig 2b: "Medium" UEs around 10 dB should be mid-range CQI.
        let mid = t.sinr_to_cqi(10.0).0;
        assert!((6..=9).contains(&mid), "cqi@10dB={mid}");
    }

    #[test]
    fn required_sinr_inverts_mapping() {
        let t = CqiTable::Qam64;
        for c in 1..=15u8 {
            let s = t.required_sinr_db(Cqi(c));
            assert_eq!(t.sinr_to_cqi(s), Cqi(c));
            assert!(t.sinr_to_cqi(s - 0.2).0 < c);
        }
    }
}
