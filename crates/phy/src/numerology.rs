//! Frame structure parameters for LTE and 5G NR.
//!
//! Paper §4.1: "The choice of TTI and subchannel size depends on the radio
//! access technology … LTE supports {1 ms, 180 kHz} and 5G NR numerology 3
//! supports {125 µs, 1440 kHz} … In LTE, a total of 100 RBs are available
//! for 20 MHz and in 5G, a total of 273 RBs are available for 100 MHz
//! (SC spacing = 30 kHz)."

use outran_simcore::Dur;

/// Radio access technology + numerology, fixing the scheduling resolution
/// (TTI/slot) and the per-RB subchannel width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Numerology {
    /// 4G LTE: 1 ms TTI, 15 kHz subcarrier spacing (180 kHz subchannel).
    Lte,
    /// 5G NR with numerology µ ∈ 0..=3: slot = 1 ms / 2^µ,
    /// subcarrier spacing = 15·2^µ kHz.
    Nr(u8),
}

impl Numerology {
    /// Scheduling interval (TTI for LTE, slot for NR). Paper Figure 5.
    pub fn tti(self) -> Dur {
        match self {
            Numerology::Lte => Dur::from_micros(1000),
            Numerology::Nr(mu) => {
                assert!(mu <= 3, "NR numerology must be 0..=3, got {mu}");
                Dur::from_micros(1000 >> mu)
            }
        }
    }

    /// Subcarrier spacing in kHz.
    pub fn scs_khz(self) -> u32 {
        match self {
            Numerology::Lte => 15,
            Numerology::Nr(mu) => {
                assert!(mu <= 3);
                15 << mu
            }
        }
    }

    /// Subchannel (RB bandwidth) in kHz: 12 consecutive subcarriers.
    pub fn subchannel_khz(self) -> u32 {
        12 * self.scs_khz()
    }

    /// OFDM symbols per scheduling interval (14 with normal CP for both
    /// LTE subframes and NR slots).
    pub fn symbols_per_tti(self) -> u32 {
        14
    }

    /// Resource elements in one RB over one TTI (12 subcarriers × symbols).
    pub fn re_per_rb(self) -> u32 {
        12 * self.symbols_per_tti()
    }

    /// The µ value (0 for LTE).
    pub fn mu(self) -> u8 {
        match self {
            Numerology::Lte => 0,
            Numerology::Nr(mu) => mu,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> String {
        match self {
            Numerology::Lte => "LTE".to_string(),
            Numerology::Nr(mu) => format!("NR-mu{mu}"),
        }
    }
}

/// A cell's radio configuration: numerology + bandwidth + overhead model.
#[derive(Debug, Clone, Copy)]
pub struct RadioConfig {
    /// Frame numerology.
    pub numerology: Numerology,
    /// System bandwidth in kHz.
    pub bandwidth_khz: u32,
    /// Fraction of resource elements consumed by control channels,
    /// reference signals, etc. (PDCCH/DMRS/CRS). 0.0–1.0.
    pub overhead: f64,
    /// Pin the RB count explicitly (Colosseum runs used exactly 15 RBs);
    /// `None` derives it from bandwidth/numerology.
    pub rb_override: Option<u16>,
}

impl RadioConfig {
    /// LTE 20 MHz — the paper's testbed & LTE simulation config (100 RBs).
    pub fn lte20() -> RadioConfig {
        RadioConfig {
            numerology: Numerology::Lte,
            bandwidth_khz: 20_000,
            overhead: 0.18, // ~3 control symbols equivalent + CRS
            rb_override: None,
        }
    }

    /// LTE with an explicit RB count (Colosseum runs used 15 RBs).
    pub fn lte_rbs(rbs: u16) -> RadioConfig {
        RadioConfig {
            numerology: Numerology::Lte,
            bandwidth_khz: rbs as u32 * 180,
            overhead: 0.18,
            rb_override: Some(rbs),
        }
    }

    /// NR 100 MHz @ 30 kHz SCS (µ=1) — 273 RBs as in §4.1. For the Fig 17
    /// numerology sweep use [`RadioConfig::nr100_mu`].
    pub fn nr100() -> RadioConfig {
        RadioConfig::nr100_mu(1)
    }

    /// NR 100 MHz with numerology µ. The RB count follows 3GPP TS 38.101
    /// Table 5.3.2-1 transmission bandwidth configurations.
    pub fn nr100_mu(mu: u8) -> RadioConfig {
        RadioConfig {
            numerology: Numerology::Nr(mu),
            bandwidth_khz: 100_000,
            overhead: 0.14, // NR has leaner always-on reference signals
            rb_override: None,
        }
    }

    /// Number of schedulable RBs in the bandwidth.
    ///
    /// For standard configurations we pin the 3GPP table values (e.g.
    /// 273 RBs for NR 100 MHz @30 kHz, 100 RBs for LTE 20 MHz); otherwise
    /// we derive from bandwidth at a 0.98 guard-band utilisation.
    pub fn num_rbs(&self) -> u16 {
        if let Some(rbs) = self.rb_override {
            return rbs;
        }
        match (self.numerology, self.bandwidth_khz) {
            (Numerology::Lte, 20_000) => 100,
            (Numerology::Lte, 10_000) => 50,
            (Numerology::Lte, 5_000) => 25,
            (Numerology::Nr(0), 100_000) => 270,
            (Numerology::Nr(1), 100_000) => 273,
            (Numerology::Nr(2), 100_000) => 135,
            (Numerology::Nr(3), 100_000) => 66,
            (n, bw) => {
                let sub = n.subchannel_khz();
                ((bw as f64 * 0.98 / sub as f64).floor() as u16).max(1)
            }
        }
    }

    /// Data-bearing resource elements per RB per TTI after overhead.
    pub fn data_re_per_rb(&self) -> f64 {
        self.numerology.re_per_rb() as f64 * (1.0 - self.overhead)
    }

    /// The scheduling interval.
    pub fn tti(&self) -> Dur {
        self.numerology.tti()
    }

    /// Peak cell rate in bits/s given a peak spectral efficiency per RE
    /// (e.g. 256-QAM ≈ 7.4 bits/RE): used for sanity checks against the
    /// paper's "97 Mbps at 256QAM SISO over 20 MHz".
    pub fn peak_rate_bps(&self, bits_per_re: f64) -> f64 {
        let bits_per_tti = self.num_rbs() as f64 * self.data_re_per_rb() * bits_per_re;
        bits_per_tti / self.tti().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tti_values() {
        assert_eq!(Numerology::Lte.tti(), Dur::from_micros(1000));
        assert_eq!(Numerology::Nr(0).tti(), Dur::from_micros(1000));
        assert_eq!(Numerology::Nr(1).tti(), Dur::from_micros(500));
        assert_eq!(Numerology::Nr(2).tti(), Dur::from_micros(250));
        assert_eq!(Numerology::Nr(3).tti(), Dur::from_micros(125));
    }

    #[test]
    fn paper_subchannel_values() {
        // §4.1: LTE {1 ms, 180 kHz}; NR numerology 3 {125 µs, 1440 kHz}.
        assert_eq!(Numerology::Lte.subchannel_khz(), 180);
        assert_eq!(Numerology::Nr(3).subchannel_khz(), 1440);
    }

    #[test]
    fn paper_rb_counts() {
        assert_eq!(RadioConfig::lte20().num_rbs(), 100);
        assert_eq!(RadioConfig::nr100().num_rbs(), 273);
        assert_eq!(RadioConfig::lte_rbs(15).num_rbs(), 15);
    }

    #[test]
    fn lte20_peak_rate_near_testbed_bitrate() {
        // §6.1: 20 MHz, 256QAM SISO => 97 Mbps ≈ 4.85 bit/s/Hz.
        let cfg = RadioConfig::lte20();
        let peak = cfg.peak_rate_bps(7.4063); // 256-QAM top CQI efficiency
        let mbps = peak / 1e6;
        assert!((85.0..110.0).contains(&mbps), "peak={mbps} Mbps");
        let se = peak / (cfg.bandwidth_khz as f64 * 1e3);
        assert!((4.2..5.5).contains(&se), "se={se}");
    }

    #[test]
    #[should_panic]
    fn nr_mu_out_of_range_panics() {
        let _ = Numerology::Nr(4).tti();
    }

    #[test]
    fn derived_rb_count_for_odd_bandwidth() {
        let cfg = RadioConfig {
            numerology: Numerology::Lte,
            bandwidth_khz: 1_800,
            overhead: 0.18,
            rb_override: None,
        };
        // 1800 kHz * 0.98 / 180 kHz = 9.8 -> 9 RBs.
        assert_eq!(cfg.num_rbs(), 9);
    }

    #[test]
    fn data_re_accounts_overhead() {
        let cfg = RadioConfig::lte20();
        assert!(cfg.data_re_per_rb() < 168.0);
        assert!(cfg.data_re_per_rb() > 100.0);
    }
}
