//! Time- and frequency-selective small-scale fading.
//!
//! The paper feeds srsENB and NS-3 with 3GPP TS 36.141 fading traces
//! (EPA-like pedestrian profile). We synthesise an equivalent process:
//!
//! * **Time selectivity** — each tap is a complex Gauss–Markov (AR(1))
//!   process whose correlation across one TTI derives from the Doppler
//!   spread: `ρ = exp(−Δt / T_c)` with coherence time `T_c ≈ 0.423 / f_d`
//!   (Clarke's model rule of thumb) and `f_d = v·f_c / c`.
//! * **Frequency selectivity** — the band is split into `n_subbands`
//!   groups of RBs; each subband gets an independent Rayleigh tap, plus a
//!   common wideband component, mimicking the RB-to-RB variation the
//!   frequency-selective channel produces (paper §4.1: "the channel
//!   condition of a user varies across different RBs").
//!
//! The output per subband is a power gain in dB relative to the local
//! mean (0 dB average in linear power).

use outran_simcore::{Dur, Rng};

/// One complex AR(1) Rayleigh tap.
#[derive(Debug, Clone, Copy)]
struct Tap {
    re: f64,
    im: f64,
}

impl Tap {
    fn new(rng: &mut Rng) -> Tap {
        // Complex Gaussian with variance 1/2 per dimension => E[|h|²]=1.
        let g = outran_simcore::Normal::new(0.0, std::f64::consts::FRAC_1_SQRT_2);
        Tap {
            re: g.sample(rng),
            im: g.sample(rng),
        }
    }

    fn advance(&mut self, rho: f64, rng: &mut Rng) {
        let g = outran_simcore::Normal::new(0.0, std::f64::consts::FRAC_1_SQRT_2);
        let w = (1.0 - rho * rho).sqrt();
        self.re = rho * self.re + w * g.sample(rng);
        self.im = rho * self.im + w * g.sample(rng);
    }

    /// Instantaneous power gain |h|² (mean 1.0).
    fn power(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// Fading process for one UE: `n_subbands` subband taps + 1 wideband tap.
#[derive(Debug, Clone)]
pub struct FadingProcess {
    subband: Vec<Tap>,
    wideband: Tap,
    /// AR(1) coefficient per advance step.
    rho: f64,
    /// Mixing weight of the wideband component (0 = fully frequency
    /// selective, 1 = flat fading).
    flatness: f64,
    rng: Rng,
}

impl FadingProcess {
    /// Create a fading process.
    ///
    /// * `n_subbands` — number of independently fading frequency groups.
    /// * `doppler_hz` — maximum Doppler shift `f_d` (0 allowed: static).
    /// * `step` — simulation step between [`FadingProcess::advance`] calls.
    /// * `flatness` — weight of the common wideband tap in (0..=1).
    pub fn new(
        n_subbands: usize,
        doppler_hz: f64,
        step: Dur,
        flatness: f64,
        mut rng: Rng,
    ) -> FadingProcess {
        assert!(n_subbands >= 1);
        assert!((0.0..=1.0).contains(&flatness));
        let rho = if doppler_hz <= 0.0 {
            1.0
        } else {
            let coherence_s = 0.423 / doppler_hz;
            (-step.as_secs_f64() / coherence_s).exp()
        };
        let subband = (0..n_subbands).map(|_| Tap::new(&mut rng)).collect();
        let wideband = Tap::new(&mut rng);
        FadingProcess {
            subband,
            wideband,
            rho,
            flatness,
            rng,
        }
    }

    /// Number of subbands.
    pub fn n_subbands(&self) -> usize {
        self.subband.len()
    }

    /// AR(1) coefficient in use (1.0 = frozen channel).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Advance all taps by one step.
    pub fn advance(&mut self) {
        if self.rho >= 1.0 {
            return; // static channel
        }
        let rho = self.rho;
        for tap in &mut self.subband {
            tap.advance(rho, &mut self.rng);
        }
        self.wideband.advance(rho, &mut self.rng);
    }

    /// Advance all taps by `steps` steps in one composed AR(1) jump.
    ///
    /// The k-step transition of a Gauss–Markov tap is itself Gauss–Markov
    /// with coefficient `ρᵏ`, so a single draw pair per tap lands on the
    /// exact k-step marginal distribution. `steps == 1` delegates to
    /// [`FadingProcess::advance`] and is bitwise-identical to calling it
    /// directly; `steps == 0` is a no-op.
    pub fn advance_by(&mut self, steps: u64) {
        match steps {
            0 => {}
            1 => self.advance(),
            k => {
                if self.rho >= 1.0 {
                    return; // static channel
                }
                let rho_k = self.rho.powi(k.min(i32::MAX as u64) as i32);
                for tap in &mut self.subband {
                    tap.advance(rho_k, &mut self.rng);
                }
                self.wideband.advance(rho_k, &mut self.rng);
            }
        }
    }

    /// Instantaneous power gain (linear, mean ≈ 1.0) for a subband.
    pub fn gain_linear(&self, subband: usize) -> f64 {
        let s = self.subband[subband].power();
        let w = self.wideband.power();
        self.flatness * w + (1.0 - self.flatness) * s
    }

    /// Instantaneous gain in dB for a subband.
    pub fn gain_db(&self, subband: usize) -> f64 {
        10.0 * self.gain_linear(subband).max(1e-12).log10()
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl FadingProcess {
    /// Serialize the fading process (checkpointing). Tap values are f64
    /// bit patterns, so the restored process is bit-identical.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.subband.iter(), |w, t| {
            w.f64(t.re);
            w.f64(t.im);
        });
        w.f64(self.wideband.re);
        w.f64(self.wideband.im);
        w.f64(self.rho);
        w.f64(self.flatness);
        self.rng.snap(w);
    }

    /// Restore a fading process from [`FadingProcess::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<FadingProcess, SnapError> {
        let subband = r.seq(|r| {
            Ok(Tap {
                re: r.f64()?,
                im: r.f64()?,
            })
        })?;
        if subband.is_empty() {
            return Err(SnapError::Malformed("fading process with no subbands"));
        }
        Ok(FadingProcess {
            subband,
            wideband: Tap {
                re: r.f64()?,
                im: r.f64()?,
            },
            rho: r.f64()?,
            flatness: r.f64()?,
            rng: outran_simcore::Rng::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_with(doppler: f64, flat: f64) -> FadingProcess {
        FadingProcess::new(8, doppler, Dur::from_millis(1), flat, Rng::new(11))
    }

    #[test]
    fn mean_power_is_unity() {
        let mut p = proc_with(30.0, 0.0);
        let mut acc = 0.0;
        let n = 50_000;
        for _ in 0..n {
            p.advance();
            acc += p.gain_linear(3);
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn static_channel_never_changes() {
        let mut p = proc_with(0.0, 0.0);
        let g0 = p.gain_linear(0);
        for _ in 0..100 {
            p.advance();
        }
        assert_eq!(p.gain_linear(0), g0);
        assert_eq!(p.rho(), 1.0);
    }

    #[test]
    fn high_doppler_decorrelates_faster() {
        let slow = proc_with(5.0, 0.0);
        let fast = proc_with(200.0, 0.0);
        assert!(fast.rho() < slow.rho());
        assert!(slow.rho() < 1.0);
    }

    #[test]
    fn subbands_differ_when_selective() {
        let p = proc_with(30.0, 0.0);
        let gains: Vec<f64> = (0..8).map(|i| p.gain_linear(i)).collect();
        let spread = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - gains.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 1e-6, "subbands should not be identical");
    }

    #[test]
    fn flat_fading_makes_subbands_equal() {
        let p = proc_with(30.0, 1.0);
        let g0 = p.gain_linear(0);
        for i in 1..8 {
            assert!((p.gain_linear(i) - g0).abs() < 1e-12);
        }
    }

    #[test]
    fn rayleigh_tail_exists() {
        // Rayleigh power gain dips below -10 dB about 10% of the time.
        let mut p = proc_with(50.0, 0.0);
        let n = 100_000;
        let mut deep = 0;
        for _ in 0..n {
            p.advance();
            if p.gain_db(0) < -10.0 {
                deep += 1;
            }
        }
        let frac = deep as f64 / n as f64;
        assert!((0.05..0.15).contains(&frac), "deep-fade frac={frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FadingProcess::new(4, 30.0, Dur::from_millis(1), 0.3, Rng::new(5));
        let mut b = FadingProcess::new(4, 30.0, Dur::from_millis(1), 0.3, Rng::new(5));
        for _ in 0..100 {
            a.advance();
            b.advance();
            assert_eq!(a.gain_linear(2), b.gain_linear(2));
        }
    }
}
