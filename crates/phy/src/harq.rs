//! Hybrid-ARQ retransmission modelling.
//!
//! The cell simulator's default air-interface model folds HARQ into an
//! effective BLER: a failed transport block simply is not pulled from
//! RLC, costing airtime and delay. This module provides the explicit
//! alternative — per-UE HARQ processes with feedback delay and
//! chase-combining gain — for studies where the retransmission *timing*
//! matters (it shifts a recovered TB by one HARQ RTT instead of leaving
//! the data at the head of the RLC queue):
//!
//! * a failed TB is retransmitted after `rtt_ttis` (ACK/NACK feedback
//!   plus scheduling delay; 8 TTIs in LTE FDD);
//! * each retransmission combines with the previous soft bits —
//!   modelled as `combining_gain_db` of extra effective SINR per
//!   attempt (chase combining ≈ +3 dB per repeat);
//! * after `max_tx` attempts the block is dropped and the loss becomes
//!   visible to RLC/TCP (the residual-BLER path).
//!
//! The type is generic over the TB payload so the MAC/cell layer can
//! carry RLC segments (UM) or AM PDUs without this crate depending on
//! the RLC crate.

use std::collections::VecDeque;

use outran_simcore::{Dur, Time};

/// HARQ entity configuration.
#[derive(Debug, Clone, Copy)]
pub struct HarqConfig {
    /// Parallel processes per UE (LTE FDD: 8). Bounds how many TBs can
    /// be awaiting feedback at once.
    pub processes: usize,
    /// TTIs between a transmission and its retransmission opportunity.
    pub rtt_ttis: u32,
    /// Maximum transmissions of one TB (initial + retx).
    pub max_tx: u8,
    /// Effective SINR gain per additional transmission (dB).
    pub combining_gain_db: f64,
}

impl Default for HarqConfig {
    fn default() -> Self {
        HarqConfig {
            processes: 8,
            rtt_ttis: 8,
            max_tx: 4,
            combining_gain_db: 3.0,
        }
    }
}

/// A transport block awaiting retransmission.
#[derive(Debug, Clone)]
pub struct HarqTb<T> {
    /// The data carried (RLC segments / AM PDUs).
    pub payload: T,
    /// Airtime cost of the block in bits (charged against the UE's
    /// grant on every retransmission).
    pub bits: f64,
    /// Subband the block is mapped to (its channel draws).
    pub subband: usize,
    /// Transmissions so far (≥1 once it has failed the first time).
    pub attempts: u8,
}

impl<T> HarqTb<T> {
    /// Extra effective SINR from soft combining at the *next* attempt.
    pub fn combining_gain_db(&self, cfg: &HarqConfig) -> f64 {
        cfg.combining_gain_db * self.attempts as f64
    }
}

/// Per-UE HARQ retransmission queue.
#[derive(Debug, Clone)]
pub struct HarqQueue<T> {
    cfg: HarqConfig,
    /// (due time, block) — FIFO by due time since rtt is constant.
    pending: VecDeque<(Time, HarqTb<T>)>,
    /// Blocks dropped after max_tx (diagnostics).
    pub dropped_tbs: u64,
    /// Total retransmission attempts served.
    pub retx_served: u64,
}

impl<T> HarqQueue<T> {
    /// Create a queue.
    pub fn new(cfg: HarqConfig) -> HarqQueue<T> {
        HarqQueue {
            cfg,
            pending: VecDeque::new(),
            dropped_tbs: 0,
            retx_served: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &HarqConfig {
        &self.cfg
    }

    /// Register a failed (re)transmission at `now`; returns the payload
    /// back when the process limit or `max_tx` forces a drop.
    pub fn on_failure(&mut self, mut tb: HarqTb<T>, now: Time, tti: Dur) -> Option<T> {
        tb.attempts += 1;
        if tb.attempts > self.cfg.max_tx {
            self.dropped_tbs += 1;
            return Some(tb.payload);
        }
        if self.pending.len() >= self.cfg.processes {
            // No free process: in a real MAC the scheduler would stall
            // new transmissions; dropping is the conservative model and
            // is surfaced to the caller.
            self.dropped_tbs += 1;
            return Some(tb.payload);
        }
        let due = now + tti.mul(self.cfg.rtt_ttis as u64);
        self.pending.push_back((due, tb));
        None
    }

    /// Pop the first block due at or before `now` whose airtime fits in
    /// `budget_bits`. Scans past a too-large head so a big TB cannot
    /// head-of-line-block smaller ones behind it (the MAC would do the
    /// same across its HARQ processes).
    pub fn pop_due(&mut self, now: Time, budget_bits: f64) -> Option<HarqTb<T>> {
        let idx = self
            .pending
            .iter()
            .position(|(due, tb)| *due <= now && tb.bits <= budget_bits)?;
        let (_, tb) = self.pending.remove(idx)?;
        self.retx_served += 1;
        Some(tb)
    }

    /// Bits owed to retransmissions due at `now` (the MAC should grant
    /// at least this much before fresh data).
    pub fn due_bits(&self, now: Time) -> f64 {
        self.pending
            .iter()
            .take_while(|(due, _)| *due <= now)
            .map(|(_, tb)| tb.bits)
            .sum()
    }

    /// Blocks currently awaiting retransmission.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no blocks are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drop every pending block (RLC re-establishment / radio-link
    /// failure). Returns the payloads so the caller can account the
    /// lost bytes.
    pub fn clear(&mut self) -> Vec<HarqTb<T>> {
        self.pending.drain(..).map(|(_, tb)| tb).collect()
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl<T> HarqQueue<T> {
    /// Serialize the queue (checkpointing); `f` serializes one payload.
    /// The config is re-established by the caller via [`HarqQueue::new`].
    pub fn snap_with(&self, w: &mut SnapWriter, mut f: impl FnMut(&mut SnapWriter, &T)) {
        w.seq(self.pending.iter(), |w, (due, tb)| {
            w.time(*due);
            f(w, &tb.payload);
            w.f64(tb.bits);
            w.usize(tb.subband);
            w.u8(tb.attempts);
        });
        w.u64(self.dropped_tbs);
        w.u64(self.retx_served);
    }

    /// Restore from [`HarqQueue::snap_with`] output; `f` restores one
    /// payload.
    pub fn unsnap_with(
        cfg: HarqConfig,
        r: &mut SnapReader<'_>,
        mut f: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<HarqQueue<T>, SnapError> {
        let pending: VecDeque<(Time, HarqTb<T>)> = r
            .seq(|r| {
                let due = r.time()?;
                let tb = HarqTb {
                    payload: f(r)?,
                    bits: r.f64()?,
                    subband: r.usize()?,
                    attempts: r.u8()?,
                };
                Ok((due, tb))
            })?
            .into_iter()
            .collect();
        Ok(HarqQueue {
            cfg,
            pending,
            dropped_tbs: r.u64()?,
            retx_served: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(bits: f64) -> HarqTb<&'static str> {
        HarqTb {
            payload: "data",
            bits,
            subband: 0,
            attempts: 1,
        }
    }

    #[test]
    fn failure_schedules_retx_after_rtt() {
        let mut q = HarqQueue::new(HarqConfig::default());
        let tti = Dur::from_millis(1);
        assert!(q.on_failure(tb(1000.0), Time::ZERO, tti).is_none());
        assert_eq!(q.len(), 1);
        // Not due before the HARQ RTT.
        assert!(q.pop_due(Time::from_millis(7), 1e9).is_none());
        let got = q.pop_due(Time::from_millis(8), 1e9).unwrap();
        assert_eq!(got.attempts, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn max_tx_drops() {
        let cfg = HarqConfig {
            max_tx: 3,
            ..HarqConfig::default()
        };
        let mut q = HarqQueue::new(cfg);
        let tti = Dur::from_millis(1);
        let mut block = tb(100.0);
        block.attempts = 2;
        // 3rd transmission still allowed (max_tx = 3)...
        assert!(q.on_failure(block, Time::ZERO, tti).is_none());
        let block = q.pop_due(Time::from_millis(8), 1e9).unwrap();
        assert_eq!(block.attempts, 3);
        // ...but a 4th is not: dropped, payload returned.
        let lost = q.on_failure(block, Time::from_millis(8), tti);
        assert_eq!(lost, Some("data"));
        assert_eq!(q.dropped_tbs, 1);
    }

    #[test]
    fn process_limit_enforced() {
        let cfg = HarqConfig {
            processes: 2,
            ..HarqConfig::default()
        };
        let mut q = HarqQueue::new(cfg);
        let tti = Dur::from_millis(1);
        assert!(q.on_failure(tb(1.0), Time::ZERO, tti).is_none());
        assert!(q.on_failure(tb(1.0), Time::ZERO, tti).is_none());
        assert!(q.on_failure(tb(1.0), Time::ZERO, tti).is_some());
        assert_eq!(q.dropped_tbs, 1);
    }

    #[test]
    fn budget_gates_retx() {
        let mut q = HarqQueue::new(HarqConfig::default());
        let tti = Dur::from_millis(1);
        q.on_failure(tb(5000.0), Time::ZERO, tti);
        let due = Time::from_millis(8);
        assert!((q.due_bits(due) - 5000.0).abs() < 1e-9);
        assert!(q.pop_due(due, 4000.0).is_none(), "budget too small");
        assert!(q.pop_due(due, 5000.0).is_some());
    }

    #[test]
    fn combining_gain_grows_with_attempts() {
        let cfg = HarqConfig::default();
        let mut block = tb(1.0);
        assert!((block.combining_gain_db(&cfg) - 3.0).abs() < 1e-9);
        block.attempts = 3;
        assert!((block.combining_gain_db(&cfg) - 9.0).abs() < 1e-9);
    }
}
