//! Block error rate (BLER) truth model.
//!
//! Link adaptation targets ≈10 % initial BLER: the UE reports the highest
//! CQI it can sustain at that error rate, the eNodeB transmits at the
//! matching MCS, and errors occur when the channel has moved since the
//! report. We model the transport-block error probability as a logistic
//! function of the gap between the *actual* SINR at transmission time and
//! the SINR the chosen MCS requires:
//!
//! ```text
//! p_err(gap) = 1 / (1 + exp(slope · (gap − offset)))
//! ```
//!
//! calibrated so that `gap = 0` (channel exactly as reported) gives the
//! 10 % target, a 3 dB surplus is practically error-free and a 3 dB
//! deficit almost certainly fails — the familiar steep LTE BLER waterfall.

use crate::cqi::{Cqi, CqiTable};

/// Logistic BLER waterfall.
#[derive(Debug, Clone, Copy)]
pub struct BlerModel {
    /// Steepness of the waterfall in 1/dB (typical LTE curves: 2–5 /dB).
    pub slope: f64,
    /// SINR surplus (dB) at which BLER crosses 50 %.
    /// With the 10 % target at gap 0: offset = ln(9)/slope below 0.
    pub offset_db: f64,
}

impl Default for BlerModel {
    fn default() -> Self {
        let slope = 3.0;
        BlerModel {
            slope,
            // ln(9)/3 ≈ 0.732 → p_err(0 dB) = 0.10.
            offset_db: -(9.0f64.ln()) / slope,
        }
    }
}

impl BlerModel {
    /// Error probability for a transmission at MCS chosen for
    /// `assigned_cqi` while the channel actually provides `actual_sinr_db`.
    pub fn error_prob(&self, table: CqiTable, assigned_cqi: Cqi, actual_sinr_db: f64) -> f64 {
        if !assigned_cqi.usable() {
            return 1.0;
        }
        let required = table.required_sinr_db(assigned_cqi);
        let gap = actual_sinr_db - required;
        1.0 / (1.0 + (self.slope * (gap - self.offset_db)).exp())
    }

    /// A perfect-channel model: never errs (used to isolate scheduling
    /// effects from HARQ effects in unit experiments).
    pub fn ideal() -> BlerModel {
        BlerModel {
            slope: 100.0,
            offset_db: -100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_percent_at_zero_gap() {
        let m = BlerModel::default();
        let t = CqiTable::Qam64;
        for c in 1..=15u8 {
            let req = t.required_sinr_db(Cqi(c));
            let p = m.error_prob(t, Cqi(c), req);
            assert!((p - 0.10).abs() < 1e-6, "cqi {c}: p={p}");
        }
    }

    #[test]
    fn waterfall_shape() {
        let m = BlerModel::default();
        let t = CqiTable::Qam64;
        let req = t.required_sinr_db(Cqi(7));
        assert!(m.error_prob(t, Cqi(7), req + 3.0) < 0.01);
        assert!(m.error_prob(t, Cqi(7), req - 3.0) > 0.9);
        // Monotone decreasing in SINR.
        let mut prev = 1.1;
        for s in -10..30 {
            let p = m.error_prob(t, Cqi(7), s as f64);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn unusable_cqi_always_errs() {
        let m = BlerModel::default();
        assert_eq!(m.error_prob(CqiTable::Qam64, Cqi(0), 30.0), 1.0);
    }

    #[test]
    fn ideal_model_never_errs() {
        let m = BlerModel::ideal();
        let t = CqiTable::Qam256;
        assert!(m.error_prob(t, Cqi(15), t.required_sinr_db(Cqi(15)) - 2.0) < 1e-6);
    }
}
