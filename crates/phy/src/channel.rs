//! The composed per-cell channel model.
//!
//! [`CellChannel`] owns one [`UeChannelState`] per attached UE and exposes
//! exactly the interface a MAC scheduler consumes:
//!
//! * `reported_rate_per_rb(ue, rb)` — the achievable rate `r_{u,b}(t)` of
//!   eq. (1), derived from the **reported** (periodic, possibly stale) CQI;
//! * `actual_sinr_db(ue, rb)` — ground truth at transmission time, feeding
//!   the BLER model for link-layer losses;
//! * `advance_tti()` — evolves fading/mobility/shadowing and refreshes CQI
//!   reports on their period.
//!
//! SINR composition (all in dB):
//!
//! ```text
//! SINR = tx_power − pathloss(d) − noise(+NF) + shadowing + fading·scale
//! ```
//!
//! with log-distance path loss, AR(1) log-normal shadowing decorrelating
//! over distance, and the Rayleigh subband fading of [`crate::fading`].
//! `fading·scale` lets scenarios dial channel volatility: the paper's LTE
//! traces are volatile (SRJF collapses, §6.2) while its 5G-LENA traces are
//! "more stable and steady" (SRJF ideal, Appendix B) — we reproduce both
//! regimes with the same machinery.

use outran_simcore::{Dur, Normal, Rng, Time};

use crate::bler::BlerModel;
use crate::cqi::{Cqi, CqiTable};
use crate::fading::FadingProcess;
use crate::mobility::RandomWalk;
use crate::numerology::RadioConfig;
use crate::UeId;

/// Static configuration of the cell channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Frame/bandwidth configuration.
    pub radio: RadioConfig,
    /// MCS table in use.
    pub table: CqiTable,
    /// Number of frequency subbands with independent fading.
    pub n_subbands: usize,
    /// Downlink carrier frequency (Hz) — sets the Doppler spread.
    pub carrier_hz: f64,
    /// Transmit power per RB (dBm).
    pub tx_power_dbm: f64,
    /// UE receiver noise figure (dB).
    pub noise_figure_db: f64,
    /// Log-distance path-loss exponent.
    pub pathloss_exp: f64,
    /// Path loss at the 1 m reference distance (dB).
    pub pathloss_ref_db: f64,
    /// Log-normal shadowing standard deviation (dB).
    pub shadowing_sd_db: f64,
    /// Shadowing decorrelation distance (m).
    pub shadowing_corr_m: f64,
    /// Fading amplitude scale: 1.0 = full Rayleigh, 0.0 = AWGN-like.
    pub fading_scale: f64,
    /// Mixing weight of flat (wideband) fading vs per-subband fading.
    pub flatness: f64,
    /// Cell radius (m) and minimum UE distance (m).
    pub radius_m: f64,
    /// Minimum UE distance from the antenna (m).
    pub min_radius_m: f64,
    /// UE speed (m/s); 0 = static.
    pub ue_speed_mps: f64,
    /// CQI reporting period, in TTIs.
    pub cqi_period_ttis: u32,
    /// Age of the report when the scheduler uses it, in TTIs.
    pub cqi_delay_ttis: u32,
    /// SINR ceiling (dB) modelling interference/EVM floors.
    pub sinr_cap_db: f64,
    /// BLER truth model.
    pub bler: BlerModel,
    /// Mobility update period.
    pub mobility_step: Dur,
}

impl ChannelConfig {
    /// Sensible LTE macro-cell defaults (pedestrian scenario, §3/§6.2).
    pub fn lte_default() -> ChannelConfig {
        ChannelConfig {
            radio: RadioConfig::lte20(),
            table: CqiTable::Qam256,
            n_subbands: 8,
            carrier_hz: 1.805e9, // Band 3 DL as in the NS-3 LTE setting
            tx_power_dbm: 23.0,
            noise_figure_db: 7.0,
            // Calibrated so the mean-SINR spread across the 10–200 m cell
            // matches Fig 2b (≈2–45 dB, Medium/Good/Excellent, no UE in
            // outage).
            pathloss_exp: 3.5,
            pathloss_ref_db: 46.0,
            shadowing_sd_db: 4.0,
            shadowing_corr_m: 37.0,
            fading_scale: 1.0,
            flatness: 0.3,
            radius_m: 200.0,
            min_radius_m: 10.0,
            ue_speed_mps: 1.4,
            cqi_period_ttis: 5,
            cqi_delay_ttis: 2,
            sinr_cap_db: 45.0,
            bler: BlerModel::default(),
            mobility_step: Dur::from_millis(100),
        }
    }

    /// Thermal noise power over one RB bandwidth, plus noise figure (dBm).
    pub fn noise_dbm(&self) -> f64 {
        let bw_hz = self.radio.numerology.subchannel_khz() as f64 * 1e3;
        -174.0 + 10.0 * bw_hz.log10() + self.noise_figure_db
    }

    /// Maximum Doppler shift for the configured speed/carrier (Hz).
    pub fn doppler_hz(&self) -> f64 {
        self.ue_speed_mps * self.carrier_hz / 299_792_458.0
    }
}

/// Per-UE dynamic channel state.
#[derive(Debug, Clone)]
pub struct UeChannelState {
    walker: RandomWalk,
    fading: FadingProcess,
    shadow_db: f64,
    /// Reported CQI per subband (what the scheduler sees).
    reported: Vec<Cqi>,
    /// Version stamp of `reported`: bumped on every delivered report, so
    /// the MAC can cache per-UE metric rows and revalidate in O(1).
    reported_rev: u64,
    /// Pending report (measured, not yet delivered — models report delay).
    pending: Vec<Cqi>,
    /// Whether `pending` holds a measurement not yet delivered (guards
    /// against re-delivering the same report every TTI).
    pending_fresh: bool,
    pending_due: Time,
    next_report_at: Time,
    rng: Rng,
}

/// The full cell channel: configuration + per-UE states.
#[derive(Debug, Clone)]
pub struct CellChannel {
    cfg: ChannelConfig,
    ues: Vec<UeChannelState>,
    rbs_per_subband: u16,
    tti_index: u64,
    dist_since_shadow: Vec<f64>,
    /// Fault injection: UEs whose CQI reports are frozen (measurements
    /// and pending deliveries suppressed; the scheduler keeps seeing the
    /// last delivered report while the channel evolves underneath).
    cqi_frozen: Vec<bool>,
    /// Fault injection: UEs whose new CQI measurements are replaced with
    /// uniformly random values.
    cqi_corrupt: Vec<bool>,
    /// Reports suppressed by freeze windows (diagnostics).
    pub cqi_frozen_reports: u64,
    /// Reports replaced by corruption windows (diagnostics).
    pub cqi_corrupted_reports: u64,
}

impl CellChannel {
    /// Create a channel with `n_ues` UEs placed per the config.
    pub fn new(cfg: ChannelConfig, n_ues: usize, root_rng: &Rng) -> CellChannel {
        let n_rbs = cfg.radio.num_rbs();
        let n_subbands = cfg.n_subbands.min(n_rbs as usize).max(1);
        let rbs_per_subband = n_rbs.div_ceil(n_subbands as u16);
        let ues = (0..n_ues)
            .map(|i| {
                let mut rng = root_rng.fork(0x9999_0000 + i as u64);
                let walker = RandomWalk::new(
                    cfg.radius_m,
                    cfg.min_radius_m,
                    cfg.ue_speed_mps,
                    rng.fork(1),
                );
                let fading = FadingProcess::new(
                    n_subbands,
                    cfg.doppler_hz(),
                    cfg.radio.tti(),
                    cfg.flatness,
                    rng.fork(2),
                );
                let shadow_db = Normal::new(0.0, cfg.shadowing_sd_db).sample(&mut rng);
                UeChannelState {
                    walker,
                    fading,
                    shadow_db,
                    reported: vec![Cqi(0); n_subbands],
                    reported_rev: 0,
                    pending: vec![Cqi(0); n_subbands],
                    pending_fresh: false,
                    pending_due: Time::ZERO,
                    next_report_at: Time::ZERO,
                    rng,
                }
            })
            .collect::<Vec<_>>();
        let mut ch = CellChannel {
            cfg,
            ues,
            rbs_per_subband,
            tti_index: 0,
            dist_since_shadow: vec![0.0; n_ues],
            cqi_frozen: vec![false; n_ues],
            cqi_corrupt: vec![false; n_ues],
            cqi_frozen_reports: 0,
            cqi_corrupted_reports: 0,
        };
        // Prime reports so the first TTI already has usable CQI.
        for u in 0..n_ues {
            let measured = ch.measure_cqi(u);
            ch.ues[u].reported = measured.clone();
            ch.ues[u].pending = measured;
            ch.ues[u].reported_rev = 1;
        }
        ch
    }

    /// Configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Number of attached UEs.
    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }

    /// Number of RBs in the bandwidth.
    pub fn n_rbs(&self) -> u16 {
        self.cfg.radio.num_rbs()
    }

    /// Subband index carrying resource block `rb`.
    pub fn subband_of_rb(&self, rb: u16) -> usize {
        ((rb / self.rbs_per_subband) as usize).min(self.cfg.n_subbands - 1)
    }

    fn pathloss_db(&self, dist_m: f64) -> f64 {
        let d = dist_m.max(1.0);
        self.cfg.pathloss_ref_db + 10.0 * self.cfg.pathloss_exp * d.log10()
    }

    /// Ground-truth SINR (dB) of `ue` on subband `sb` right now.
    pub fn actual_sinr_db_subband(&self, ue: usize, sb: usize) -> f64 {
        let st = &self.ues[ue];
        let pl = self.pathloss_db(st.walker.pos().dist_origin());
        let fading = st.fading.gain_db(sb) * self.cfg.fading_scale;
        let sinr = self.cfg.tx_power_dbm - pl - self.cfg.noise_dbm() + st.shadow_db + fading;
        sinr.min(self.cfg.sinr_cap_db)
    }

    /// Ground-truth SINR (dB) of `ue` on RB `rb` right now.
    pub fn actual_sinr_db(&self, ue: usize, rb: u16) -> f64 {
        self.actual_sinr_db_subband(ue, self.subband_of_rb(rb))
    }

    /// Mean (distance + shadowing only) SINR of a UE — the Fig 2b quantity.
    pub fn mean_sinr_db(&self, ue: usize) -> f64 {
        let st = &self.ues[ue];
        let pl = self.pathloss_db(st.walker.pos().dist_origin());
        (self.cfg.tx_power_dbm - pl - self.cfg.noise_dbm() + st.shadow_db).min(self.cfg.sinr_cap_db)
    }

    fn measure_cqi(&mut self, ue: usize) -> Vec<Cqi> {
        (0..self.cfg.n_subbands)
            .map(|sb| {
                self.cfg
                    .table
                    .sinr_to_cqi(self.actual_sinr_db_subband(ue, sb))
            })
            .collect()
    }

    /// CQI the scheduler currently believes for `ue` on subband `sb`.
    pub fn reported_cqi_subband(&self, ue: usize, sb: usize) -> Cqi {
        self.ues[ue].reported[sb]
    }

    /// Version stamp of `ue`'s reported CQI vector: two equal stamps
    /// guarantee identical reported rates on every subband, letting the
    /// MAC revalidate cached metric rows without touching the CQIs.
    pub fn report_version(&self, ue: usize) -> u64 {
        self.ues[ue].reported_rev
    }

    /// CQI the scheduler currently believes for `ue` on RB `rb`.
    pub fn reported_cqi(&self, ue: usize, rb: u16) -> Cqi {
        self.reported_cqi_subband(ue, self.subband_of_rb(rb))
    }

    /// Achievable bits in one RB over one TTI for `ue` on `rb`, per the
    /// reported CQI — the `r_{u,b}(t)` of eq. (1) expressed in bits/TTI.
    pub fn reported_rate_per_rb(&self, ue: usize, rb: u16) -> f64 {
        let cqi = self.reported_cqi(ue, rb);
        self.cfg.table.efficiency(cqi) * self.cfg.radio.data_re_per_rb()
    }

    /// Same as [`CellChannel::reported_rate_per_rb`] but per subband
    /// (cheaper for the scheduler's inner loop).
    pub fn reported_rate_per_rb_subband(&self, ue: usize, sb: usize) -> f64 {
        let cqi = self.reported_cqi_subband(ue, sb);
        self.cfg.table.efficiency(cqi) * self.cfg.radio.data_re_per_rb()
    }

    /// Draw the success/failure of a transport block sent to `ue` across
    /// subband `sb` at the MCS implied by the reported CQI.
    pub fn transmission_succeeds(&mut self, ue: usize, sb: usize) -> bool {
        self.transmission_succeeds_with_gain(ue, sb, 0.0)
    }

    /// Like [`CellChannel::transmission_succeeds`], with an extra
    /// effective-SINR gain in dB (HARQ chase combining).
    pub fn transmission_succeeds_with_gain(&mut self, ue: usize, sb: usize, gain_db: f64) -> bool {
        let cqi = self.ues[ue].reported[sb];
        let actual = self.actual_sinr_db_subband(ue, sb) + gain_db;
        let p_err = self.cfg.bler.error_prob(self.cfg.table, cqi, actual);
        !self.ues[ue].rng.chance(p_err)
    }

    /// Advance the channel by one TTI: fading always, mobility/shadowing on
    /// their period, CQI reporting per the configured period and delay.
    pub fn advance_tti(&mut self, now: Time) {
        self.advance_span(now, 1);
    }

    /// Advance the channel to the TTI grid point `now`, composing every
    /// TTI since the previous advance into one distribution-preserving
    /// jump (see DESIGN.md "Virtual-time skipping"). A one-TTI gap is
    /// bitwise-identical to [`CellChannel::advance_tti`]; a no-op when
    /// the channel is already at (or past) `now`.
    pub fn advance_to(&mut self, now: Time) {
        let tti = self.cfg.radio.tti();
        let target = now.as_nanos() / tti.as_nanos();
        if target > self.tti_index {
            self.advance_span(now, target - self.tti_index);
        }
    }

    /// Number of TTIs the channel has advanced through.
    pub fn tti_index(&self) -> u64 {
        self.tti_index
    }

    /// Advance all per-UE processes by `k` TTIs ending at `now`.
    ///
    /// Fading takes one composed AR(1) jump (`ρᵏ`), mobility takes one
    /// composed walk covering every crossed mobility period, and the CQI
    /// reporting loop runs once at `now` — identical draw sequence
    /// whether a gap is skipped here or never existed.
    fn advance_span(&mut self, now: Time, k: u64) {
        let from = self.tti_index;
        self.tti_index += k;
        let tti = self.cfg.radio.tti();
        let mobility_every = (self.cfg.mobility_step.as_nanos() / tti.as_nanos()).max(1);
        let crossings = self.tti_index / mobility_every - from / mobility_every;

        for ue in 0..self.ues.len() {
            self.ues[ue].fading.advance_by(k);
            if crossings > 0 {
                let before = self.ues[ue].walker.pos();
                self.ues[ue]
                    .walker
                    .advance(Dur(self.cfg.mobility_step.0 * crossings));
                let after = self.ues[ue].walker.pos();
                let moved = ((after.x - before.x).powi(2) + (after.y - before.y).powi(2)).sqrt();
                self.dist_since_shadow[ue] += moved;
                // Shadowing evolves once the UE crossed a correlation step.
                if self.dist_since_shadow[ue] >= self.cfg.shadowing_corr_m / 4.0 {
                    let rho = (-self.dist_since_shadow[ue] / self.cfg.shadowing_corr_m).exp();
                    let innovation =
                        Normal::new(0.0, self.cfg.shadowing_sd_db).sample(&mut self.ues[ue].rng);
                    self.ues[ue].shadow_db =
                        rho * self.ues[ue].shadow_db + (1.0 - rho * rho).sqrt() * innovation;
                    self.dist_since_shadow[ue] = 0.0;
                }
            }
            // Freeze fault: the reporting loop stalls — no pending
            // delivery, no new measurement. The scheduler keeps acting on
            // the last delivered report while the channel drifts.
            if self.cqi_frozen[ue] {
                if self.ues[ue].next_report_at <= now {
                    self.cqi_frozen_reports += 1;
                    let st = &mut self.ues[ue];
                    st.next_report_at = now + tti.mul(self.cfg.cqi_period_ttis as u64);
                }
                continue;
            }
            // Deliver a pending report that has aged past the delay —
            // once per measurement (the fresh flag stops the old
            // per-TTI re-clone of an already-delivered report).
            if self.ues[ue].pending_fresh && self.ues[ue].pending_due <= now {
                let st = &mut self.ues[ue];
                std::mem::swap(&mut st.reported, &mut st.pending);
                st.pending_fresh = false;
                st.reported_rev += 1;
            }
            // Take a new measurement on the reporting period.
            if self.ues[ue].next_report_at <= now {
                let measured = if self.cqi_corrupt[ue] {
                    // Corruption fault: the report is garbage, drawn from
                    // the UE's own stream so runs stay deterministic.
                    self.cqi_corrupted_reports += 1;
                    let st = &mut self.ues[ue];
                    (0..self.cfg.n_subbands)
                        .map(|_| Cqi(st.rng.index(16) as u8))
                        .collect()
                } else {
                    self.measure_cqi(ue)
                };
                let st = &mut self.ues[ue];
                st.pending = measured;
                st.pending_fresh = true;
                st.pending_due = now + tti.mul(self.cfg.cqi_delay_ttis as u64);
                st.next_report_at = now + tti.mul(self.cfg.cqi_period_ttis as u64);
            }
        }
    }

    /// Distance of `ue` from the base station (m).
    pub fn ue_distance(&self, ue: usize) -> f64 {
        self.ues[ue].walker.pos().dist_origin()
    }

    /// Fault injection: freeze or unfreeze `ue`'s CQI reporting loop.
    pub fn set_cqi_frozen(&mut self, ue: usize, frozen: bool) {
        self.cqi_frozen[ue] = frozen;
    }

    /// Fault injection: corrupt (or stop corrupting) `ue`'s new CQI
    /// measurements.
    pub fn set_cqi_corrupt(&mut self, ue: usize, corrupt: bool) {
        self.cqi_corrupt[ue] = corrupt;
    }
}

/// Identifier helper: convert a [`UeId`] to the dense index used here.
pub fn ue_index(id: UeId) -> usize {
    id.0 as usize
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl UeChannelState {
    fn snap(&self, w: &mut SnapWriter) {
        self.walker.snap(w);
        self.fading.snap(w);
        w.f64(self.shadow_db);
        w.seq(self.reported.iter(), |w, c| w.u8(c.0));
        w.u64(self.reported_rev);
        w.seq(self.pending.iter(), |w, c| w.u8(c.0));
        w.bool(self.pending_fresh);
        w.time(self.pending_due);
        w.time(self.next_report_at);
        self.rng.snap(w);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<UeChannelState, SnapError> {
        Ok(UeChannelState {
            walker: RandomWalk::unsnap(r)?,
            fading: FadingProcess::unsnap(r)?,
            shadow_db: r.f64()?,
            reported: r.seq(|r| Ok(Cqi(r.u8()?)))?,
            reported_rev: r.u64()?,
            pending: r.seq(|r| Ok(Cqi(r.u8()?)))?,
            pending_fresh: r.bool()?,
            pending_due: r.time()?,
            next_report_at: r.time()?,
            rng: Rng::unsnap(r)?,
        })
    }
}

impl CellChannel {
    /// Serialize the dynamic channel state (checkpointing). The
    /// configuration and derived layout (`cfg`, `rbs_per_subband`) are
    /// re-established by constructing the channel from the run config
    /// before [`CellChannel::load_snap`].
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.ues.iter(), |w, u| u.snap(w));
        w.u64(self.tti_index);
        w.seq(self.dist_since_shadow.iter(), |w, &d| w.f64(d));
        w.seq(self.cqi_frozen.iter(), |w, &b| w.bool(b));
        w.seq(self.cqi_corrupt.iter(), |w, &b| w.bool(b));
        w.u64(self.cqi_frozen_reports);
        w.u64(self.cqi_corrupted_reports);
    }

    /// Overwrite this channel's dynamic state from [`CellChannel::snap`]
    /// output. The channel must have been constructed with the same
    /// configuration (UE count is checked).
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let ues = r.seq(UeChannelState::unsnap)?;
        if ues.len() != self.ues.len() {
            return Err(SnapError::Malformed(
                "UE count mismatch in channel snapshot",
            ));
        }
        self.ues = ues;
        self.tti_index = r.u64()?;
        self.dist_since_shadow = r.seq(|r| r.f64())?;
        self.cqi_frozen = r.seq(|r| r.bool())?;
        self.cqi_corrupt = r.seq(|r| r.bool())?;
        if self.dist_since_shadow.len() != self.ues.len()
            || self.cqi_frozen.len() != self.ues.len()
            || self.cqi_corrupt.len() != self.ues.len()
        {
            return Err(SnapError::Malformed("per-UE vector length mismatch"));
        }
        self.cqi_frozen_reports = r.u64()?;
        self.cqi_corrupted_reports = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_channel() -> CellChannel {
        let mut cfg = ChannelConfig::lte_default();
        cfg.n_subbands = 4;
        CellChannel::new(cfg, 8, &Rng::new(42))
    }

    #[test]
    fn sinr_range_matches_fig2b() {
        // Fig 2b: UE mean SINRs span roughly 0..50 dB with Medium (~10),
        // Good (~25), Excellent (~40) clusters.
        let cfg = ChannelConfig::lte_default();
        let ch = CellChannel::new(cfg, 200, &Rng::new(7));
        let sinrs: Vec<f64> = (0..200).map(|u| ch.mean_sinr_db(u)).collect();
        let lo = sinrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sinrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo > -10.0 && lo < 15.0, "lo={lo}");
        assert!(hi > 28.0 && hi <= 45.0, "hi={hi}");
        // Heterogeneity: at least 10 dB of spread.
        assert!(hi - lo > 10.0);
    }

    #[test]
    fn rates_are_nonnegative_and_bounded() {
        let ch = small_channel();
        let peak = ch.config().table.peak_efficiency() * ch.config().radio.data_re_per_rb();
        for u in 0..8 {
            for rb in 0..ch.n_rbs() {
                let r = ch.reported_rate_per_rb(u, rb);
                assert!(r >= 0.0 && r <= peak + 1e-9);
            }
        }
    }

    #[test]
    fn subband_mapping_covers_all_rbs() {
        let ch = small_channel();
        for rb in 0..ch.n_rbs() {
            let sb = ch.subband_of_rb(rb);
            assert!(sb < 4);
        }
        assert_eq!(ch.subband_of_rb(0), 0);
        assert_eq!(ch.subband_of_rb(ch.n_rbs() - 1), 3);
    }

    #[test]
    fn advance_changes_fading_state() {
        let mut ch = small_channel();
        let before = ch.actual_sinr_db(0, 0);
        let mut changed = false;
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..50 {
            now += tti;
            ch.advance_tti(now);
            if (ch.actual_sinr_db(0, 0) - before).abs() > 0.1 {
                changed = true;
                break;
            }
        }
        assert!(changed, "channel should evolve with pedestrian Doppler");
    }

    #[test]
    fn cqi_freeze_stalls_reports_and_counts() {
        let mut ch = small_channel();
        ch.set_cqi_frozen(0, true);
        let before: Vec<Cqi> = (0..4).map(|sb| ch.reported_cqi_subband(0, sb)).collect();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..2000 {
            now += tti;
            ch.advance_tti(now);
        }
        let after: Vec<Cqi> = (0..4).map(|sb| ch.reported_cqi_subband(0, sb)).collect();
        assert_eq!(before, after, "frozen UE's reported CQI must not move");
        assert!(ch.cqi_frozen_reports > 0, "suppressed reports must count");
        // Unfreeze: the loop resumes and the counter stops growing.
        ch.set_cqi_frozen(0, false);
        let held = ch.cqi_frozen_reports;
        for _ in 0..2000 {
            now += tti;
            ch.advance_tti(now);
        }
        assert_eq!(ch.cqi_frozen_reports, held);
    }

    #[test]
    fn cqi_corrupt_counts_reports() {
        let mut ch = small_channel();
        ch.set_cqi_corrupt(1, true);
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..2000 {
            now += tti;
            ch.advance_tti(now);
        }
        assert!(
            ch.cqi_corrupted_reports > 0,
            "corrupt window must replace measurements"
        );
        // Reported CQIs stay in the valid 0..=15 range even when junk.
        for sb in 0..4 {
            assert!(ch.reported_cqi_subband(1, sb).0 <= 15);
        }
    }

    #[test]
    fn cqi_reports_update_on_period() {
        // Some UE's report must change over a few seconds of pedestrian
        // fading (UEs pinned at the SINR cap may legitimately stay at 15).
        let mut ch = small_channel();
        let snapshot = |ch: &CellChannel| -> Vec<Cqi> {
            (0..ch.n_ues())
                .flat_map(|u| (0..4).map(move |sb| (u, sb)))
                .map(|(u, sb)| ch.reported_cqi_subband(u, sb))
                .collect()
        };
        let initial = snapshot(&ch);
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        let mut ever_changed = false;
        for _ in 0..3000 {
            now += tti;
            ch.advance_tti(now);
            if snapshot(&ch) != initial {
                ever_changed = true;
                break;
            }
        }
        assert!(ever_changed);
    }

    #[test]
    fn report_version_tracks_delivered_reports() {
        // The cache-invalidation contract: while a UE's version stamp is
        // stable, its reported CQIs must be stable too.
        let mut ch = small_channel();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        let snap = |ch: &CellChannel, u: usize| -> Vec<Cqi> {
            (0..4).map(|sb| ch.reported_cqi_subband(u, sb)).collect()
        };
        let mut last_rev: Vec<u64> = (0..8).map(|u| ch.report_version(u)).collect();
        let mut last_cqi: Vec<Vec<Cqi>> = (0..8).map(|u| snap(&ch, u)).collect();
        for _ in 0..500 {
            now += tti;
            ch.advance_tti(now);
            for u in 0..8 {
                let rev = ch.report_version(u);
                let cqi = snap(&ch, u);
                if rev == last_rev[u] {
                    assert_eq!(cqi, last_cqi[u], "stable version, changed CQIs");
                }
                last_rev[u] = rev;
                last_cqi[u] = cqi;
            }
        }
        assert!(last_rev.iter().any(|&r| r > 1), "versions never advanced");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut ch = small_channel();
            let tti = ch.config().radio.tti();
            let mut now = Time::ZERO;
            for _ in 0..200 {
                now += tti;
                ch.advance_tti(now);
            }
            (0..8)
                .map(|u| ch.actual_sinr_db(u, 5))
                .collect::<Vec<f64>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn static_scenario_keeps_mean_sinr() {
        let mut cfg = ChannelConfig::lte_default();
        cfg.ue_speed_mps = 0.0;
        let mut ch = CellChannel::new(cfg, 4, &Rng::new(9));
        let before: Vec<f64> = (0..4).map(|u| ch.mean_sinr_db(u)).collect();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..1000 {
            now += tti;
            ch.advance_tti(now);
        }
        let after: Vec<f64> = (0..4).map(|u| ch.mean_sinr_db(u)).collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9, "static UE mean SINR moved");
        }
    }

    #[test]
    fn transmission_success_rate_tracks_bler_target() {
        // With a perfectly fresh report the SINR surplus over the chosen
        // MCS's requirement is in [0, ~2.5 dB), so the error rate sits
        // somewhere below the 10 % waterfall anchor but stays material.
        let mut cfg = ChannelConfig::lte_default();
        cfg.ue_speed_mps = 0.0; // freeze channel => report always accurate
        cfg.cqi_period_ttis = 1;
        cfg.cqi_delay_ttis = 0;
        cfg.sinr_cap_db = 20.0; // keep UEs off the CQI-15 saturation
                                // Average across many UEs so the per-UE SINR surplus over its
                                // chosen MCS (uniform-ish in one CQI step) is integrated out.
        let n_ues = 64;
        let mut ch = CellChannel::new(cfg, n_ues, &Rng::new(3));
        let mut fails = 0u32;
        let n = 2_000;
        for _ in 0..n {
            for u in 0..n_ues {
                if !ch.transmission_succeeds(u, 0) {
                    fails += 1;
                }
            }
        }
        let rate = fails as f64 / (n * n_ues) as f64;
        assert!(
            (0.003..=0.12).contains(&rate),
            "error rate={rate} out of expected band"
        );
    }
}
