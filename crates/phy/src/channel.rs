//! The composed per-cell channel model.
//!
//! [`CellChannel`] holds the per-UE channel state in a structure-of-arrays
//! layout (one contiguous plane per quantity, indexed by dense UE index)
//! and exposes exactly the interface a MAC scheduler consumes:
//!
//! * `reported_rate_per_rb(ue, rb)` — the achievable rate `r_{u,b}(t)` of
//!   eq. (1), derived from the **reported** (periodic, possibly stale) CQI;
//! * `actual_sinr_db(ue, rb)` — ground truth at transmission time, feeding
//!   the BLER model for link-layer losses;
//! * `advance_tti()` — evolves fading/mobility/shadowing and refreshes CQI
//!   reports on their period.
//!
//! SINR composition (all in dB):
//!
//! ```text
//! SINR = tx_power − pathloss(d) − noise(+NF) + shadowing + fading·scale
//! ```
//!
//! with log-distance path loss, AR(1) log-normal shadowing decorrelating
//! over distance, and the Rayleigh subband fading of [`crate::fading`]
//! (the same AR(1) tap recursion, batched here over flat tap planes).
//! `fading·scale` lets scenarios dial channel volatility: the paper's LTE
//! traces are volatile (SRJF collapses, §6.2) while its 5G-LENA traces are
//! "more stable and steady" (SRJF ideal, Appendix B) — we reproduce both
//! regimes with the same machinery.
//!
//! ## Data layout & bit-identity
//!
//! The hot per-TTI state lives in flat `Vec`s keyed by `ue * n_subbands +
//! sb` (tap planes, CQI planes) or by `ue` (large-scale terms, RNG
//! streams, reporting clocks). The large-scale part of the SINR —
//! `((tx − pathloss) − noise) + shadow` — is cached per UE and refreshed
//! only when mobility or shadowing actually changes it, so the per-TTI
//! loops are pure array passes. Every cached value is a pure function of
//! the state it is derived from, every floating-point expression keeps
//! the historical association order, and every RNG stream is walked in
//! the historical draw order, so results are bit-identical to the
//! previous per-UE-struct implementation (locked in by the golden-trace
//! digest tests in `outran-ran`).

use std::f64::consts::FRAC_1_SQRT_2;

use outran_simcore::{Dur, Normal, Rng, Time};

use crate::bler::BlerModel;
use crate::cqi::{Cqi, CqiTable};
use crate::mobility::RandomWalk;
use crate::numerology::RadioConfig;
use crate::UeId;

/// Static configuration of the cell channel.
#[derive(Debug, Clone, Copy)]
pub struct ChannelConfig {
    /// Frame/bandwidth configuration.
    pub radio: RadioConfig,
    /// MCS table in use.
    pub table: CqiTable,
    /// Number of frequency subbands with independent fading.
    pub n_subbands: usize,
    /// Downlink carrier frequency (Hz) — sets the Doppler spread.
    pub carrier_hz: f64,
    /// Transmit power per RB (dBm).
    pub tx_power_dbm: f64,
    /// UE receiver noise figure (dB).
    pub noise_figure_db: f64,
    /// Log-distance path-loss exponent.
    pub pathloss_exp: f64,
    /// Path loss at the 1 m reference distance (dB).
    pub pathloss_ref_db: f64,
    /// Log-normal shadowing standard deviation (dB).
    pub shadowing_sd_db: f64,
    /// Shadowing decorrelation distance (m).
    pub shadowing_corr_m: f64,
    /// Fading amplitude scale: 1.0 = full Rayleigh, 0.0 = AWGN-like.
    pub fading_scale: f64,
    /// Mixing weight of flat (wideband) fading vs per-subband fading.
    pub flatness: f64,
    /// Cell radius (m) and minimum UE distance (m).
    pub radius_m: f64,
    /// Minimum UE distance from the antenna (m).
    pub min_radius_m: f64,
    /// UE speed (m/s); 0 = static.
    pub ue_speed_mps: f64,
    /// CQI reporting period, in TTIs.
    pub cqi_period_ttis: u32,
    /// Age of the report when the scheduler uses it, in TTIs.
    pub cqi_delay_ttis: u32,
    /// SINR ceiling (dB) modelling interference/EVM floors.
    pub sinr_cap_db: f64,
    /// BLER truth model.
    pub bler: BlerModel,
    /// Mobility update period.
    pub mobility_step: Dur,
}

impl ChannelConfig {
    /// Sensible LTE macro-cell defaults (pedestrian scenario, §3/§6.2).
    pub fn lte_default() -> ChannelConfig {
        ChannelConfig {
            radio: RadioConfig::lte20(),
            table: CqiTable::Qam256,
            n_subbands: 8,
            carrier_hz: 1.805e9, // Band 3 DL as in the NS-3 LTE setting
            tx_power_dbm: 23.0,
            noise_figure_db: 7.0,
            // Calibrated so the mean-SINR spread across the 10–200 m cell
            // matches Fig 2b (≈2–45 dB, Medium/Good/Excellent, no UE in
            // outage).
            pathloss_exp: 3.5,
            pathloss_ref_db: 46.0,
            shadowing_sd_db: 4.0,
            shadowing_corr_m: 37.0,
            fading_scale: 1.0,
            flatness: 0.3,
            radius_m: 200.0,
            min_radius_m: 10.0,
            ue_speed_mps: 1.4,
            cqi_period_ttis: 5,
            cqi_delay_ttis: 2,
            sinr_cap_db: 45.0,
            bler: BlerModel::default(),
            mobility_step: Dur::from_millis(100),
        }
    }

    /// Thermal noise power over one RB bandwidth, plus noise figure (dBm).
    pub fn noise_dbm(&self) -> f64 {
        let bw_hz = self.radio.numerology.subchannel_khz() as f64 * 1e3;
        -174.0 + 10.0 * bw_hz.log10() + self.noise_figure_db
    }

    /// Maximum Doppler shift for the configured speed/carrier (Hz).
    pub fn doppler_hz(&self) -> f64 {
        self.ue_speed_mps * self.carrier_hz / 299_792_458.0
    }
}

/// The full cell channel: configuration + per-UE state planes.
///
/// Per-(UE, subband) planes are indexed `ue * n_subbands + sb`; per-UE
/// planes by the dense UE index. The RNG streams are exactly those of the
/// historical per-UE-struct layout: one general-purpose stream per UE
/// (shadowing innovations, CQI corruption, BLER draws), one mobility
/// stream inside each [`RandomWalk`], and one fading stream per UE.
#[derive(Debug, Clone)]
pub struct CellChannel {
    cfg: ChannelConfig,
    n_ues: usize,
    n_subbands: usize,
    rbs_per_subband: u16,
    tti_index: u64,

    // Large-scale state (cold path: changes on mobility steps only).
    walkers: Vec<RandomWalk>,
    shadow_db: Vec<f64>,
    dist_since_shadow: Vec<f64>,
    /// Cached `pathloss_db(distance)` per UE.
    pathloss_db: Vec<f64>,
    /// Cached `((tx − pathloss) − noise) + shadow` per UE — the exact
    /// large-scale prefix of the SINR composition.
    sinr_const_db: Vec<f64>,
    /// Hoisted `cfg.noise_dbm()` (pure function of the config).
    noise_dbm: f64,

    // Small-scale fading tap planes (hot path: advanced every TTI).
    fade_sb_re: Vec<f64>,
    fade_sb_im: Vec<f64>,
    fade_wb_re: Vec<f64>,
    fade_wb_im: Vec<f64>,
    /// Per-UE AR(1) coefficient (snapshots may carry per-UE values).
    fade_rho: Vec<f64>,
    /// Per-UE wideband mixing weight.
    fade_flatness: Vec<f64>,
    fade_rng: Vec<Rng>,

    // CQI reporting planes.
    /// Reported CQI per (UE, subband) — what the scheduler sees.
    reported: Vec<Cqi>,
    /// Pending (measured, undelivered) CQI per (UE, subband).
    pending: Vec<Cqi>,
    /// Version stamp of each UE's reported row: bumped on every delivered
    /// report, so the MAC can cache per-UE metric rows and revalidate in
    /// O(1).
    reported_rev: Vec<u64>,
    /// Whether `pending` holds a measurement not yet delivered (guards
    /// against re-delivering the same report every TTI).
    pending_fresh: Vec<bool>,
    pending_due: Vec<Time>,
    next_report_at: Vec<Time>,
    ue_rng: Vec<Rng>,
    /// Achievable bits per RB per TTI for each CQI value (pure function
    /// of the MCS table and numerology).
    rate_per_cqi: [f64; 16],

    // Fault injection.
    cqi_frozen: Vec<bool>,
    cqi_corrupt: Vec<bool>,
    /// Reports suppressed by freeze windows (diagnostics).
    pub cqi_frozen_reports: u64,
    /// Reports replaced by corruption windows (diagnostics).
    pub cqi_corrupted_reports: u64,
}

impl CellChannel {
    /// Create a channel with `n_ues` UEs placed per the config.
    pub fn new(cfg: ChannelConfig, n_ues: usize, root_rng: &Rng) -> CellChannel {
        let n_rbs = cfg.radio.num_rbs();
        let n_subbands = cfg.n_subbands.min(n_rbs as usize).max(1);
        let rbs_per_subband = n_rbs.div_ceil(n_subbands as u16);
        let rho = if cfg.doppler_hz() <= 0.0 {
            1.0
        } else {
            // Clarke's rule of thumb: T_c ≈ 0.423 / f_d (see crate::fading).
            let coherence_s = 0.423 / cfg.doppler_hz();
            (-cfg.radio.tti().as_secs_f64() / coherence_s).exp()
        };
        let g = Normal::new(0.0, FRAC_1_SQRT_2);

        let mut ch = CellChannel {
            cfg,
            n_ues,
            n_subbands,
            rbs_per_subband,
            tti_index: 0,
            walkers: Vec::with_capacity(n_ues),
            shadow_db: Vec::with_capacity(n_ues),
            dist_since_shadow: vec![0.0; n_ues],
            pathloss_db: vec![0.0; n_ues],
            sinr_const_db: vec![0.0; n_ues],
            noise_dbm: cfg.noise_dbm(),
            fade_sb_re: Vec::with_capacity(n_ues * n_subbands),
            fade_sb_im: Vec::with_capacity(n_ues * n_subbands),
            fade_wb_re: Vec::with_capacity(n_ues),
            fade_wb_im: Vec::with_capacity(n_ues),
            fade_rho: vec![rho; n_ues],
            fade_flatness: vec![cfg.flatness; n_ues],
            fade_rng: Vec::with_capacity(n_ues),
            reported: vec![Cqi(0); n_ues * n_subbands],
            pending: vec![Cqi(0); n_ues * n_subbands],
            reported_rev: vec![0; n_ues],
            pending_fresh: vec![false; n_ues],
            pending_due: vec![Time::ZERO; n_ues],
            next_report_at: vec![Time::ZERO; n_ues],
            ue_rng: Vec::with_capacity(n_ues),
            rate_per_cqi: rate_lut(&cfg),
            cqi_frozen: vec![false; n_ues],
            cqi_corrupt: vec![false; n_ues],
            cqi_frozen_reports: 0,
            cqi_corrupted_reports: 0,
        };

        for i in 0..n_ues {
            // Historical per-UE stream layout: general stream forked off
            // the root, walker and fading streams forked off that one.
            let mut rng = root_rng.fork(0x9999_0000 + i as u64);
            let walker = RandomWalk::new(
                cfg.radius_m,
                cfg.min_radius_m,
                cfg.ue_speed_mps,
                rng.fork(1),
            );
            // Initial taps: subband taps in index order, then the
            // wideband tap, each drawing re before im (Tap::new order).
            let mut frng = rng.fork(2);
            for _ in 0..n_subbands {
                ch.fade_sb_re.push(g.sample(&mut frng));
                ch.fade_sb_im.push(g.sample(&mut frng));
            }
            ch.fade_wb_re.push(g.sample(&mut frng));
            ch.fade_wb_im.push(g.sample(&mut frng));
            ch.fade_rng.push(frng);
            let shadow_db = Normal::new(0.0, cfg.shadowing_sd_db).sample(&mut rng);
            ch.walkers.push(walker);
            ch.shadow_db.push(shadow_db);
            ch.ue_rng.push(rng);
            ch.refresh_large_scale(i);
        }
        // Prime reports so the first TTI already has usable CQI.
        for u in 0..n_ues {
            ch.measure_into_pending(u);
            let base = u * n_subbands;
            ch.reported[base..base + n_subbands]
                .copy_from_slice(&ch.pending[base..base + n_subbands]);
            ch.reported_rev[u] = 1;
        }
        ch
    }

    /// Configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Number of attached UEs.
    pub fn n_ues(&self) -> usize {
        self.n_ues
    }

    /// Number of RBs in the bandwidth.
    pub fn n_rbs(&self) -> u16 {
        self.cfg.radio.num_rbs()
    }

    /// Subband index carrying resource block `rb`.
    pub fn subband_of_rb(&self, rb: u16) -> usize {
        ((rb / self.rbs_per_subband) as usize).min(self.cfg.n_subbands - 1)
    }

    fn pathloss_db(&self, dist_m: f64) -> f64 {
        let d = dist_m.max(1.0);
        self.cfg.pathloss_ref_db + 10.0 * self.cfg.pathloss_exp * d.log10()
    }

    /// Recompute the cached large-scale SINR terms for `ue` (call after
    /// any mobility or shadowing change).
    fn refresh_large_scale(&mut self, ue: usize) {
        let pl = self.pathloss_db(self.walkers[ue].pos().dist_origin());
        self.pathloss_db[ue] = pl;
        self.sinr_const_db[ue] = self.cfg.tx_power_dbm - pl - self.noise_dbm + self.shadow_db[ue];
    }

    /// Instantaneous fading power gain (linear) for `(ue, sb)` — the
    /// [`crate::fading::FadingProcess::gain_linear`] composition over the
    /// flat tap planes.
    fn fading_gain_linear(&self, ue: usize, sb: usize) -> f64 {
        let i = ue * self.n_subbands + sb;
        let s = self.fade_sb_re[i] * self.fade_sb_re[i] + self.fade_sb_im[i] * self.fade_sb_im[i];
        let w =
            self.fade_wb_re[ue] * self.fade_wb_re[ue] + self.fade_wb_im[ue] * self.fade_wb_im[ue];
        self.fade_flatness[ue] * w + (1.0 - self.fade_flatness[ue]) * s
    }

    /// Instantaneous fading gain in dB for `(ue, sb)`.
    fn fading_gain_db(&self, ue: usize, sb: usize) -> f64 {
        10.0 * self.fading_gain_linear(ue, sb).max(1e-12).log10()
    }

    /// Ground-truth SINR (dB) of `ue` on subband `sb` right now.
    pub fn actual_sinr_db_subband(&self, ue: usize, sb: usize) -> f64 {
        let fading = self.fading_gain_db(ue, sb) * self.cfg.fading_scale;
        let sinr = self.sinr_const_db[ue] + fading;
        sinr.min(self.cfg.sinr_cap_db)
    }

    /// Ground-truth SINR (dB) of `ue` on RB `rb` right now.
    pub fn actual_sinr_db(&self, ue: usize, rb: u16) -> f64 {
        self.actual_sinr_db_subband(ue, self.subband_of_rb(rb))
    }

    /// Mean (distance + shadowing only) SINR of a UE — the Fig 2b quantity.
    pub fn mean_sinr_db(&self, ue: usize) -> f64 {
        self.sinr_const_db[ue].min(self.cfg.sinr_cap_db)
    }

    /// Measure the current CQI of every subband of `ue` into its pending
    /// row (no allocation — the hot-path replacement of the old
    /// measure-into-a-fresh-`Vec`).
    fn measure_into_pending(&mut self, ue: usize) {
        let base = ue * self.n_subbands;
        for sb in 0..self.n_subbands {
            let sinr = self.actual_sinr_db_subband(ue, sb);
            self.pending[base + sb] = self.cfg.table.sinr_to_cqi(sinr);
        }
    }

    /// CQI the scheduler currently believes for `ue` on subband `sb`.
    pub fn reported_cqi_subband(&self, ue: usize, sb: usize) -> Cqi {
        self.reported[ue * self.n_subbands + sb]
    }

    /// Version stamp of `ue`'s reported CQI vector: two equal stamps
    /// guarantee identical reported rates on every subband, letting the
    /// MAC revalidate cached metric rows without touching the CQIs.
    pub fn report_version(&self, ue: usize) -> u64 {
        self.reported_rev[ue]
    }

    /// CQI the scheduler currently believes for `ue` on RB `rb`.
    pub fn reported_cqi(&self, ue: usize, rb: u16) -> Cqi {
        self.reported_cqi_subband(ue, self.subband_of_rb(rb))
    }

    /// Achievable bits in one RB over one TTI for `ue` on `rb`, per the
    /// reported CQI — the `r_{u,b}(t)` of eq. (1) expressed in bits/TTI.
    pub fn reported_rate_per_rb(&self, ue: usize, rb: u16) -> f64 {
        let cqi = self.reported_cqi(ue, rb);
        self.rate_per_cqi[cqi.0 as usize]
    }

    /// Same as [`CellChannel::reported_rate_per_rb`] but per subband
    /// (cheaper for the scheduler's inner loop).
    pub fn reported_rate_per_rb_subband(&self, ue: usize, sb: usize) -> f64 {
        let cqi = self.reported_cqi_subband(ue, sb);
        self.rate_per_cqi[cqi.0 as usize]
    }

    /// Fill `out` (length ≥ number of subbands) with `ue`'s reported
    /// achievable rates per subband — the bulk form of
    /// [`CellChannel::reported_rate_per_rb_subband`] for the MAC's flat
    /// rate-matrix refresh.
    pub fn fill_reported_rates(&self, ue: usize, out: &mut [f64]) {
        let base = ue * self.n_subbands;
        for (sb, r) in out.iter_mut().enumerate().take(self.n_subbands) {
            *r = self.rate_per_cqi[self.reported[base + sb].0 as usize];
        }
    }

    /// Draw the success/failure of a transport block sent to `ue` across
    /// subband `sb` at the MCS implied by the reported CQI.
    pub fn transmission_succeeds(&mut self, ue: usize, sb: usize) -> bool {
        self.transmission_succeeds_with_gain(ue, sb, 0.0)
    }

    /// Batched form of [`CellChannel::transmission_succeeds`] for one
    /// UE's fresh transport blocks: for every subband whose scheduled
    /// bits reach `min_bits`, draw the air-interface outcome into
    /// `out[sb]`, ascending. The per-UE terms (wideband tap power,
    /// flatness, large-scale SINR, RNG) are hoisted out of the subband
    /// loop; draw order and results are identical to calling
    /// [`CellChannel::transmission_succeeds`] per qualifying subband in
    /// order. Below-threshold subbands draw nothing and read `false`.
    pub fn fresh_outcomes(
        &mut self,
        ue: usize,
        bits_per_sb: &[f64],
        min_bits: f64,
        out: &mut [bool],
    ) {
        let n_sb = self.n_subbands;
        debug_assert!(bits_per_sb.len() >= n_sb && out.len() >= n_sb);
        let base = ue * n_sb;
        let sb_re = &self.fade_sb_re[base..base + n_sb];
        let sb_im = &self.fade_sb_im[base..base + n_sb];
        let reported = &self.reported[base..base + n_sb];
        let w =
            self.fade_wb_re[ue] * self.fade_wb_re[ue] + self.fade_wb_im[ue] * self.fade_wb_im[ue];
        let flat = self.fade_flatness[ue];
        let sinr_const = self.sinr_const_db[ue];
        let cap = self.cfg.sinr_cap_db;
        let scale = self.cfg.fading_scale;
        let bler = self.cfg.bler;
        let table = self.cfg.table;
        let rng = &mut self.ue_rng[ue];
        for sb in 0..n_sb {
            out[sb] = false;
            if bits_per_sb[sb] < min_bits {
                continue;
            }
            let s = sb_re[sb] * sb_re[sb] + sb_im[sb] * sb_im[sb];
            let gain_db = 10.0 * (flat * w + (1.0 - flat) * s).max(1e-12).log10();
            let actual = (sinr_const + gain_db * scale).min(cap);
            let p_err = bler.error_prob(table, reported[sb], actual);
            out[sb] = !rng.chance(p_err);
        }
    }

    /// Like [`CellChannel::transmission_succeeds`], with an extra
    /// effective-SINR gain in dB (HARQ chase combining).
    pub fn transmission_succeeds_with_gain(&mut self, ue: usize, sb: usize, gain_db: f64) -> bool {
        let cqi = self.reported[ue * self.n_subbands + sb];
        let actual = self.actual_sinr_db_subband(ue, sb) + gain_db;
        let p_err = self.cfg.bler.error_prob(self.cfg.table, cqi, actual);
        !self.ue_rng[ue].chance(p_err)
    }

    /// Advance the channel by one TTI: fading always, mobility/shadowing on
    /// their period, CQI reporting per the configured period and delay.
    pub fn advance_tti(&mut self, now: Time) {
        self.advance_span(now, 1);
    }

    /// Advance the channel to the TTI grid point `now`, composing every
    /// TTI since the previous advance into one distribution-preserving
    /// jump (see DESIGN.md "Virtual-time skipping"). A one-TTI gap is
    /// bitwise-identical to [`CellChannel::advance_tti`]; a no-op when
    /// the channel is already at (or past) `now`.
    pub fn advance_to(&mut self, now: Time) {
        let tti = self.cfg.radio.tti();
        let target = now.as_nanos() / tti.as_nanos();
        if target > self.tti_index {
            self.advance_span(now, target - self.tti_index);
        }
    }

    /// Number of TTIs the channel has advanced through.
    pub fn tti_index(&self) -> u64 {
        self.tti_index
    }

    /// Advance all per-UE processes by `k` TTIs ending at `now`.
    ///
    /// Fading takes one composed AR(1) jump (`ρᵏ`), mobility takes one
    /// composed walk covering every crossed mobility period, and the CQI
    /// reporting loop runs once at `now` — identical draw sequence
    /// whether a gap is skipped here or never existed.
    ///
    /// The three concerns run as three array passes. Splitting the old
    /// per-UE loop this way is bit-identical because each pass walks a
    /// disjoint RNG stream set per UE (fading stream / walker stream /
    /// general stream), and within every single stream the draw order is
    /// unchanged (for the shared general stream: shadowing innovations in
    /// the mobility pass still precede that UE's corruption draws in the
    /// reporting pass).
    fn advance_span(&mut self, now: Time, k: u64) {
        let from = self.tti_index;
        self.tti_index += k;
        let tti = self.cfg.radio.tti();
        let mobility_every = (self.cfg.mobility_step.as_nanos() / tti.as_nanos()).max(1);
        let crossings = self.tti_index / mobility_every - from / mobility_every;

        self.advance_fading(k);
        if crossings > 0 {
            self.advance_mobility(crossings);
        }
        self.reporting_pass(now, tti);
    }

    /// Batched AR(1) fading advance: one walk down each UE's fading
    /// stream, updating the flat tap planes in place.
    fn advance_fading(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        let g = Normal::new(0.0, FRAC_1_SQRT_2);
        let n_sb = self.n_subbands;
        for ue in 0..self.n_ues {
            let rho = self.fade_rho[ue];
            if rho >= 1.0 {
                continue; // static channel: no draws
            }
            // k-step AR(1) composition: coefficient ρᵏ, one draw pair per
            // tap (k == 1 keeps ρ itself, matching the historical
            // single-step path bit for bit).
            let rho_k = if k == 1 {
                rho
            } else {
                rho.powi(k.min(i32::MAX as u64) as i32)
            };
            let w = (1.0 - rho_k * rho_k).sqrt();
            let rng = &mut self.fade_rng[ue];
            let base = ue * n_sb;
            // Draw order per tap: re before im; subband taps in index
            // order, wideband last (the Tap::advance order).
            for t in base..base + n_sb {
                let z_re = g.sample(rng);
                let z_im = g.sample(rng);
                self.fade_sb_re[t] = rho_k * self.fade_sb_re[t] + w * z_re;
                self.fade_sb_im[t] = rho_k * self.fade_sb_im[t] + w * z_im;
            }
            let z_re = g.sample(rng);
            let z_im = g.sample(rng);
            self.fade_wb_re[ue] = rho_k * self.fade_wb_re[ue] + w * z_re;
            self.fade_wb_im[ue] = rho_k * self.fade_wb_im[ue] + w * z_im;
        }
    }

    /// Composed mobility + shadowing pass over all UEs, refreshing the
    /// cached large-scale SINR terms for every UE that moved.
    fn advance_mobility(&mut self, crossings: u64) {
        for ue in 0..self.n_ues {
            let before = self.walkers[ue].pos();
            self.walkers[ue].advance(Dur(self.cfg.mobility_step.0 * crossings));
            let after = self.walkers[ue].pos();
            let moved = ((after.x - before.x).powi(2) + (after.y - before.y).powi(2)).sqrt();
            self.dist_since_shadow[ue] += moved;
            // Shadowing evolves once the UE crossed a correlation step.
            if self.dist_since_shadow[ue] >= self.cfg.shadowing_corr_m / 4.0 {
                let rho = (-self.dist_since_shadow[ue] / self.cfg.shadowing_corr_m).exp();
                let innovation =
                    Normal::new(0.0, self.cfg.shadowing_sd_db).sample(&mut self.ue_rng[ue]);
                self.shadow_db[ue] =
                    rho * self.shadow_db[ue] + (1.0 - rho * rho).sqrt() * innovation;
                self.dist_since_shadow[ue] = 0.0;
            }
            self.refresh_large_scale(ue);
        }
    }

    /// CQI reporting pass: deliver aged pending reports, take new
    /// measurements on the reporting period, honour fault windows.
    fn reporting_pass(&mut self, now: Time, tti: Dur) {
        for ue in 0..self.n_ues {
            // Freeze fault: the reporting loop stalls — no pending
            // delivery, no new measurement. The scheduler keeps acting on
            // the last delivered report while the channel drifts.
            if self.cqi_frozen[ue] {
                if self.next_report_at[ue] <= now {
                    self.cqi_frozen_reports += 1;
                    self.next_report_at[ue] = now + tti.mul(self.cfg.cqi_period_ttis as u64);
                }
                continue;
            }
            // Deliver a pending report that has aged past the delay —
            // once per measurement (the fresh flag stops the old
            // per-TTI re-clone of an already-delivered report).
            if self.pending_fresh[ue] && self.pending_due[ue] <= now {
                let base = ue * self.n_subbands;
                for i in base..base + self.n_subbands {
                    std::mem::swap(&mut self.reported[i], &mut self.pending[i]);
                }
                self.pending_fresh[ue] = false;
                self.reported_rev[ue] += 1;
            }
            // Take a new measurement on the reporting period.
            if self.next_report_at[ue] <= now {
                if self.cqi_corrupt[ue] {
                    // Corruption fault: the report is garbage, drawn from
                    // the UE's own stream so runs stay deterministic.
                    self.cqi_corrupted_reports += 1;
                    let base = ue * self.n_subbands;
                    for sb in 0..self.n_subbands {
                        self.pending[base + sb] = Cqi(self.ue_rng[ue].index(16) as u8);
                    }
                } else {
                    self.measure_into_pending(ue);
                }
                self.pending_fresh[ue] = true;
                self.pending_due[ue] = now + tti.mul(self.cfg.cqi_delay_ttis as u64);
                self.next_report_at[ue] = now + tti.mul(self.cfg.cqi_period_ttis as u64);
            }
        }
    }

    /// Distance of `ue` from the base station (m).
    pub fn ue_distance(&self, ue: usize) -> f64 {
        self.walkers[ue].pos().dist_origin()
    }

    /// Fault injection: freeze or unfreeze `ue`'s CQI reporting loop.
    pub fn set_cqi_frozen(&mut self, ue: usize, frozen: bool) {
        self.cqi_frozen[ue] = frozen;
    }

    /// Fault injection: corrupt (or stop corrupting) `ue`'s new CQI
    /// measurements.
    pub fn set_cqi_corrupt(&mut self, ue: usize, corrupt: bool) {
        self.cqi_corrupt[ue] = corrupt;
    }
}

/// Precompute achievable bits/RB/TTI for every CQI value.
fn rate_lut(cfg: &ChannelConfig) -> [f64; 16] {
    let mut lut = [0.0; 16];
    for (c, slot) in lut.iter_mut().enumerate() {
        *slot = cfg.table.efficiency(Cqi(c as u8)) * cfg.radio.data_re_per_rb();
    }
    lut
}

/// Identifier helper: convert a [`UeId`] to the dense index used here.
pub fn ue_index(id: UeId) -> usize {
    id.0 as usize
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl CellChannel {
    /// Serialize the dynamic channel state (checkpointing). The
    /// configuration and derived layout (`cfg`, `rbs_per_subband`) are
    /// re-established by constructing the channel from the run config
    /// before [`CellChannel::load_snap`].
    ///
    /// The wire format is unchanged from the per-UE-struct layout: a
    /// sequence of per-UE records (walker, fading taps + ρ + flatness +
    /// fading RNG, shadow, reported/pending CQI rows, reporting clocks,
    /// general RNG) followed by the cell-wide fields.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(0..self.n_ues, |w, ue| {
            let base = ue * self.n_subbands;
            self.walkers[ue].snap(w);
            w.seq(base..base + self.n_subbands, |w, i| {
                w.f64(self.fade_sb_re[i]);
                w.f64(self.fade_sb_im[i]);
            });
            w.f64(self.fade_wb_re[ue]);
            w.f64(self.fade_wb_im[ue]);
            w.f64(self.fade_rho[ue]);
            w.f64(self.fade_flatness[ue]);
            self.fade_rng[ue].snap(w);
            w.f64(self.shadow_db[ue]);
            w.seq(
                self.reported[base..base + self.n_subbands].iter(),
                |w, c| w.u8(c.0),
            );
            w.u64(self.reported_rev[ue]);
            w.seq(self.pending[base..base + self.n_subbands].iter(), |w, c| {
                w.u8(c.0)
            });
            w.bool(self.pending_fresh[ue]);
            w.time(self.pending_due[ue]);
            w.time(self.next_report_at[ue]);
            self.ue_rng[ue].snap(w);
        });
        w.u64(self.tti_index);
        w.seq(self.dist_since_shadow.iter(), |w, &d| w.f64(d));
        w.seq(self.cqi_frozen.iter(), |w, &b| w.bool(b));
        w.seq(self.cqi_corrupt.iter(), |w, &b| w.bool(b));
        w.u64(self.cqi_frozen_reports);
        w.u64(self.cqi_corrupted_reports);
    }

    /// Overwrite this channel's dynamic state from [`CellChannel::snap`]
    /// output. The channel must have been constructed with the same
    /// configuration (UE count and subband count are checked).
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        struct UeRecord {
            walker: RandomWalk,
            taps: Vec<(f64, f64)>,
            wb: (f64, f64),
            rho: f64,
            flatness: f64,
            fade_rng: Rng,
            shadow_db: f64,
            reported: Vec<Cqi>,
            reported_rev: u64,
            pending: Vec<Cqi>,
            pending_fresh: bool,
            pending_due: Time,
            next_report_at: Time,
            rng: Rng,
        }
        let ues = r.seq(|r| {
            Ok(UeRecord {
                walker: RandomWalk::unsnap(r)?,
                taps: r.seq(|r| Ok((r.f64()?, r.f64()?)))?,
                wb: (r.f64()?, r.f64()?),
                rho: r.f64()?,
                flatness: r.f64()?,
                fade_rng: Rng::unsnap(r)?,
                shadow_db: r.f64()?,
                reported: r.seq(|r| Ok(Cqi(r.u8()?)))?,
                reported_rev: r.u64()?,
                pending: r.seq(|r| Ok(Cqi(r.u8()?)))?,
                pending_fresh: r.bool()?,
                pending_due: r.time()?,
                next_report_at: r.time()?,
                rng: Rng::unsnap(r)?,
            })
        })?;
        if ues.len() != self.n_ues {
            return Err(SnapError::Malformed(
                "UE count mismatch in channel snapshot",
            ));
        }
        for (ue, rec) in ues.into_iter().enumerate() {
            if rec.taps.len() != self.n_subbands
                || rec.reported.len() != self.n_subbands
                || rec.pending.len() != self.n_subbands
            {
                return Err(SnapError::Malformed(
                    "subband count mismatch in channel snapshot",
                ));
            }
            let base = ue * self.n_subbands;
            self.walkers[ue] = rec.walker;
            for (i, (re, im)) in rec.taps.into_iter().enumerate() {
                self.fade_sb_re[base + i] = re;
                self.fade_sb_im[base + i] = im;
            }
            self.fade_wb_re[ue] = rec.wb.0;
            self.fade_wb_im[ue] = rec.wb.1;
            self.fade_rho[ue] = rec.rho;
            self.fade_flatness[ue] = rec.flatness;
            self.fade_rng[ue] = rec.fade_rng;
            self.shadow_db[ue] = rec.shadow_db;
            self.reported[base..base + self.n_subbands].copy_from_slice(&rec.reported);
            self.pending[base..base + self.n_subbands].copy_from_slice(&rec.pending);
            self.reported_rev[ue] = rec.reported_rev;
            self.pending_fresh[ue] = rec.pending_fresh;
            self.pending_due[ue] = rec.pending_due;
            self.next_report_at[ue] = rec.next_report_at;
            self.ue_rng[ue] = rec.rng;
        }
        self.tti_index = r.u64()?;
        self.dist_since_shadow = r.seq(|r| r.f64())?;
        self.cqi_frozen = r.seq(|r| r.bool())?;
        self.cqi_corrupt = r.seq(|r| r.bool())?;
        if self.dist_since_shadow.len() != self.n_ues
            || self.cqi_frozen.len() != self.n_ues
            || self.cqi_corrupt.len() != self.n_ues
        {
            return Err(SnapError::Malformed("per-UE vector length mismatch"));
        }
        self.cqi_frozen_reports = r.u64()?;
        self.cqi_corrupted_reports = r.u64()?;
        // Rebuild the cached large-scale terms from the restored state.
        for ue in 0..self.n_ues {
            self.refresh_large_scale(ue);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fading::FadingProcess;

    fn small_channel() -> CellChannel {
        let mut cfg = ChannelConfig::lte_default();
        cfg.n_subbands = 4;
        CellChannel::new(cfg, 8, &Rng::new(42))
    }

    #[test]
    fn sinr_range_matches_fig2b() {
        // Fig 2b: UE mean SINRs span roughly 0..50 dB with Medium (~10),
        // Good (~25), Excellent (~40) clusters.
        let cfg = ChannelConfig::lte_default();
        let ch = CellChannel::new(cfg, 200, &Rng::new(7));
        let sinrs: Vec<f64> = (0..200).map(|u| ch.mean_sinr_db(u)).collect();
        let lo = sinrs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sinrs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo > -10.0 && lo < 15.0, "lo={lo}");
        assert!(hi > 28.0 && hi <= 45.0, "hi={hi}");
        // Heterogeneity: at least 10 dB of spread.
        assert!(hi - lo > 10.0);
    }

    #[test]
    fn rates_are_nonnegative_and_bounded() {
        let ch = small_channel();
        let peak = ch.config().table.peak_efficiency() * ch.config().radio.data_re_per_rb();
        for u in 0..8 {
            for rb in 0..ch.n_rbs() {
                let r = ch.reported_rate_per_rb(u, rb);
                assert!(r >= 0.0 && r <= peak + 1e-9);
            }
        }
    }

    #[test]
    fn subband_mapping_covers_all_rbs() {
        let ch = small_channel();
        for rb in 0..ch.n_rbs() {
            let sb = ch.subband_of_rb(rb);
            assert!(sb < 4);
        }
        assert_eq!(ch.subband_of_rb(0), 0);
        assert_eq!(ch.subband_of_rb(ch.n_rbs() - 1), 3);
    }

    #[test]
    fn advance_changes_fading_state() {
        let mut ch = small_channel();
        let before = ch.actual_sinr_db(0, 0);
        let mut changed = false;
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..50 {
            now += tti;
            ch.advance_tti(now);
            if (ch.actual_sinr_db(0, 0) - before).abs() > 0.1 {
                changed = true;
                break;
            }
        }
        assert!(changed, "channel should evolve with pedestrian Doppler");
    }

    #[test]
    fn batched_fading_matches_fading_process_reference() {
        // The SoA fading pass must walk each UE's fading stream exactly
        // like a per-UE FadingProcess would: same draws, same tap values,
        // same composed gains — bit for bit, for both single-step and
        // composed multi-step advances.
        let mut cfg = ChannelConfig::lte_default();
        cfg.n_subbands = 4;
        let n_sb = cfg.n_subbands;
        let n_ues = 3;
        let mut ch = CellChannel::new(cfg, n_ues, &Rng::new(42));
        // Reference processes, forked exactly like the constructor does.
        let mut refs: Vec<FadingProcess> = (0..n_ues)
            .map(|i| {
                let rng = Rng::new(42).fork(0x9999_0000 + i as u64);
                FadingProcess::new(
                    n_sb,
                    cfg.doppler_hz(),
                    cfg.radio.tti(),
                    cfg.flatness,
                    rng.fork(2),
                )
            })
            .collect();
        let tti = ch.config().radio.tti();
        let mut idx = 0u64;
        for step in [1u64, 1, 3, 1, 7, 1, 1, 250, 1] {
            idx += step;
            let now = Time::ZERO + Dur(tti.0 * idx);
            ch.advance_to(now);
            for f in refs.iter_mut() {
                f.advance_by(step);
            }
            for (u, f) in refs.iter().enumerate() {
                for sb in 0..n_sb {
                    assert_eq!(
                        ch.fading_gain_linear(u, sb).to_bits(),
                        f.gain_linear(sb).to_bits(),
                        "ue {u} sb {sb} after step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn cqi_freeze_stalls_reports_and_counts() {
        let mut ch = small_channel();
        ch.set_cqi_frozen(0, true);
        let before: Vec<Cqi> = (0..4).map(|sb| ch.reported_cqi_subband(0, sb)).collect();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..2000 {
            now += tti;
            ch.advance_tti(now);
        }
        let after: Vec<Cqi> = (0..4).map(|sb| ch.reported_cqi_subband(0, sb)).collect();
        assert_eq!(before, after, "frozen UE's reported CQI must not move");
        assert!(ch.cqi_frozen_reports > 0, "suppressed reports must count");
        // Unfreeze: the loop resumes and the counter stops growing.
        ch.set_cqi_frozen(0, false);
        let held = ch.cqi_frozen_reports;
        for _ in 0..2000 {
            now += tti;
            ch.advance_tti(now);
        }
        assert_eq!(ch.cqi_frozen_reports, held);
    }

    #[test]
    fn cqi_corrupt_counts_reports() {
        let mut ch = small_channel();
        ch.set_cqi_corrupt(1, true);
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..2000 {
            now += tti;
            ch.advance_tti(now);
        }
        assert!(
            ch.cqi_corrupted_reports > 0,
            "corrupt window must replace measurements"
        );
        // Reported CQIs stay in the valid 0..=15 range even when junk.
        for sb in 0..4 {
            assert!(ch.reported_cqi_subband(1, sb).0 <= 15);
        }
    }

    #[test]
    fn cqi_reports_update_on_period() {
        // Some UE's report must change over a few seconds of pedestrian
        // fading (UEs pinned at the SINR cap may legitimately stay at 15).
        let mut ch = small_channel();
        let snapshot = |ch: &CellChannel| -> Vec<Cqi> {
            (0..ch.n_ues())
                .flat_map(|u| (0..4).map(move |sb| (u, sb)))
                .map(|(u, sb)| ch.reported_cqi_subband(u, sb))
                .collect()
        };
        let initial = snapshot(&ch);
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        let mut ever_changed = false;
        for _ in 0..3000 {
            now += tti;
            ch.advance_tti(now);
            if snapshot(&ch) != initial {
                ever_changed = true;
                break;
            }
        }
        assert!(ever_changed);
    }

    #[test]
    fn report_version_tracks_delivered_reports() {
        // The cache-invalidation contract: while a UE's version stamp is
        // stable, its reported CQIs must be stable too.
        let mut ch = small_channel();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        let snap = |ch: &CellChannel, u: usize| -> Vec<Cqi> {
            (0..4).map(|sb| ch.reported_cqi_subband(u, sb)).collect()
        };
        let mut last_rev: Vec<u64> = (0..8).map(|u| ch.report_version(u)).collect();
        let mut last_cqi: Vec<Vec<Cqi>> = (0..8).map(|u| snap(&ch, u)).collect();
        for _ in 0..500 {
            now += tti;
            ch.advance_tti(now);
            for u in 0..8 {
                let rev = ch.report_version(u);
                let cqi = snap(&ch, u);
                if rev == last_rev[u] {
                    assert_eq!(cqi, last_cqi[u], "stable version, changed CQIs");
                }
                last_rev[u] = rev;
                last_cqi[u] = cqi;
            }
        }
        assert!(last_rev.iter().any(|&r| r > 1), "versions never advanced");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut ch = small_channel();
            let tti = ch.config().radio.tti();
            let mut now = Time::ZERO;
            for _ in 0..200 {
                now += tti;
                ch.advance_tti(now);
            }
            (0..8)
                .map(|u| ch.actual_sinr_db(u, 5))
                .collect::<Vec<f64>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn static_scenario_keeps_mean_sinr() {
        let mut cfg = ChannelConfig::lte_default();
        cfg.ue_speed_mps = 0.0;
        let mut ch = CellChannel::new(cfg, 4, &Rng::new(9));
        let before: Vec<f64> = (0..4).map(|u| ch.mean_sinr_db(u)).collect();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..1000 {
            now += tti;
            ch.advance_tti(now);
        }
        let after: Vec<f64> = (0..4).map(|u| ch.mean_sinr_db(u)).collect();
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-9, "static UE mean SINR moved");
        }
    }

    #[test]
    fn snap_roundtrip_is_bit_identical() {
        // Snap → load into a fresh channel → both evolve identically.
        let mut ch = small_channel();
        let tti = ch.config().radio.tti();
        let mut now = Time::ZERO;
        for _ in 0..137 {
            now += tti;
            ch.advance_tti(now);
        }
        let mut w = SnapWriter::new();
        ch.snap(&mut w);
        let bytes = w.into_bytes();
        let mut restored = small_channel();
        let mut r = SnapReader::new(&bytes);
        restored.load_snap(&mut r).unwrap();
        for _ in 0..219 {
            now += tti;
            ch.advance_tti(now);
            restored.advance_tti(now);
        }
        for u in 0..8 {
            assert_eq!(ch.report_version(u), restored.report_version(u));
            for sb in 0..4 {
                assert_eq!(
                    ch.actual_sinr_db_subband(u, sb).to_bits(),
                    restored.actual_sinr_db_subband(u, sb).to_bits(),
                    "ue {u} sb {sb}"
                );
                assert_eq!(
                    ch.reported_cqi_subband(u, sb),
                    restored.reported_cqi_subband(u, sb)
                );
            }
        }
    }

    #[test]
    fn batched_fresh_outcomes_match_per_call_draws() {
        // The batched per-UE pass must consume the same draws and return
        // the same outcomes as per-subband transmission_succeeds calls.
        let mut a = small_channel();
        let mut b = small_channel();
        let tti = a.config().radio.tti();
        let mut now = Time::ZERO;
        // Per-subband scheduled bits: a mix of below-threshold (skipped,
        // no draw) and qualifying groups.
        let bits = [0.0, 120.0, 7.9, 9000.0];
        let mut out = [false; 4];
        for step in 0..300 {
            now += tti;
            a.advance_tti(now);
            b.advance_tti(now);
            let ue = step % 8;
            a.fresh_outcomes(ue, &bits, 8.0, &mut out);
            for (sb, &bits_sb) in bits.iter().enumerate() {
                if bits_sb < 8.0 {
                    assert!(!out[sb], "skipped subband must read false");
                    continue;
                }
                assert_eq!(
                    out[sb],
                    b.transmission_succeeds(ue, sb),
                    "step {step} ue {ue} sb {sb}"
                );
            }
        }
    }

    #[test]
    fn transmission_success_rate_tracks_bler_target() {
        // With a perfectly fresh report the SINR surplus over the chosen
        // MCS's requirement is in [0, ~2.5 dB), so the error rate sits
        // somewhere below the 10 % waterfall anchor but stays material.
        let mut cfg = ChannelConfig::lte_default();
        cfg.ue_speed_mps = 0.0; // freeze channel => report always accurate
        cfg.cqi_period_ttis = 1;
        cfg.cqi_delay_ttis = 0;
        cfg.sinr_cap_db = 20.0; // keep UEs off the CQI-15 saturation
                                // Average across many UEs so the per-UE SINR surplus over its
                                // chosen MCS (uniform-ish in one CQI step) is integrated out.
        let n_ues = 64;
        let mut ch = CellChannel::new(cfg, n_ues, &Rng::new(3));
        let mut fails = 0u32;
        let n = 2_000;
        for _ in 0..n {
            for u in 0..n_ues {
                if !ch.transmission_succeeds(u, 0) {
                    fails += 1;
                }
            }
        }
        let rate = fails as f64 / (n * n_ues) as f64;
        assert!(
            (0.003..=0.12).contains(&rate),
            "error rate={rate} out of expected band"
        );
    }
}
