//! User mobility models.
//!
//! §6.2 of the paper: "UEs are positioned randomly within a 200 m radius
//! from the xNodeB having random mobility with an average walking speed of
//! 1.4 m/s." We implement a bounded random-walk (random waypoint-ish
//! direction changes) plus a static placement mode for the Colosseum-like
//! "static" scenarios of Figure 19.

use outran_simcore::{Dur, Rng};

/// 2-D position in metres, cell centre at the origin (the xNodeB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pos {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
}

impl Pos {
    /// Distance from the cell centre (the base station).
    pub fn dist_origin(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// Random-walk mobility within a disc of `radius` metres.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    pos: Pos,
    speed_mps: f64,
    heading: f64,
    radius: f64,
    /// Mean time between heading changes.
    turn_period: Dur,
    until_turn: Dur,
    rng: Rng,
}

impl RandomWalk {
    /// Place a walker uniformly in the disc (by area) and start walking.
    ///
    /// `min_radius` keeps UEs out of the antenna near-field (and bounds
    /// the best-case path loss).
    pub fn new(radius: f64, min_radius: f64, speed_mps: f64, mut rng: Rng) -> RandomWalk {
        assert!(radius > min_radius && min_radius >= 0.0);
        // Uniform over the annulus area.
        let u = rng.f64();
        let r = (min_radius * min_radius + u * (radius * radius - min_radius * min_radius)).sqrt();
        let theta = rng.f64() * std::f64::consts::TAU;
        let heading = rng.f64() * std::f64::consts::TAU;
        RandomWalk {
            pos: Pos {
                x: r * theta.cos(),
                y: r * theta.sin(),
            },
            speed_mps,
            heading,
            radius,
            turn_period: Dur::from_secs(5),
            until_turn: Dur::from_secs(5),
            rng,
        }
    }

    /// Current position.
    pub fn pos(&self) -> Pos {
        self.pos
    }

    /// Walking speed (0 = static UE).
    pub fn speed(&self) -> f64 {
        self.speed_mps
    }

    /// Advance the walker by `dt`. Reflects off the disc boundary.
    pub fn advance(&mut self, dt: Dur) {
        if self.speed_mps <= 0.0 {
            return;
        }
        let secs = dt.as_secs_f64();
        self.pos.x += self.speed_mps * secs * self.heading.cos();
        self.pos.y += self.speed_mps * secs * self.heading.sin();
        // Reflect at the boundary: turn back toward the centre with jitter.
        if self.pos.dist_origin() > self.radius {
            let back = self.pos.y.atan2(self.pos.x) + std::f64::consts::PI;
            self.heading = back + self.rng.range_f64(-0.5, 0.5);
            let d = self.pos.dist_origin();
            let scale = self.radius / d;
            self.pos.x *= scale;
            self.pos.y *= scale;
        }
        // Occasional random heading changes.
        if dt >= self.until_turn {
            self.heading = self.rng.f64() * std::f64::consts::TAU;
            let next = outran_simcore::Exponential::from_mean(self.turn_period.as_secs_f64())
                .sample(&mut self.rng);
            self.until_turn = Dur::from_secs_f64(next.max(0.1));
        } else {
            self.until_turn = self.until_turn - dt;
        }
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl RandomWalk {
    /// Serialize the walker (checkpointing). All fields go to the wire —
    /// the walker carries its own RNG stream, which must continue exactly
    /// where it left off.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.f64(self.pos.x);
        w.f64(self.pos.y);
        w.f64(self.speed_mps);
        w.f64(self.heading);
        w.f64(self.radius);
        w.dur(self.turn_period);
        w.dur(self.until_turn);
        self.rng.snap(w);
    }

    /// Restore a walker from [`RandomWalk::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<RandomWalk, SnapError> {
        Ok(RandomWalk {
            pos: Pos {
                x: r.f64()?,
                y: r.f64()?,
            },
            speed_mps: r.f64()?,
            heading: r.f64()?,
            radius: r.f64()?,
            turn_period: r.dur()?,
            until_turn: r.dur()?,
            rng: outran_simcore::Rng::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_position_in_annulus() {
        for seed in 0..50 {
            let w = RandomWalk::new(200.0, 10.0, 1.4, Rng::new(seed));
            let d = w.pos().dist_origin();
            assert!((10.0..=200.0).contains(&d), "d={d}");
        }
    }

    #[test]
    fn stays_inside_disc() {
        let mut w = RandomWalk::new(50.0, 5.0, 10.0, Rng::new(3));
        for _ in 0..10_000 {
            w.advance(Dur::from_millis(100));
            assert!(w.pos().dist_origin() <= 50.0 + 1e-6);
        }
    }

    #[test]
    fn static_ue_does_not_move() {
        let mut w = RandomWalk::new(200.0, 10.0, 0.0, Rng::new(4));
        let p0 = w.pos();
        for _ in 0..100 {
            w.advance(Dur::from_secs(1));
        }
        assert_eq!(w.pos(), p0);
    }

    #[test]
    fn walker_covers_distance() {
        let mut w = RandomWalk::new(10_000.0, 1.0, 1.4, Rng::new(5));
        let p0 = w.pos();
        // One step of 10 s without turning covers 14 m.
        w.advance(Dur::from_secs(1));
        let moved = ((w.pos().x - p0.x).powi(2) + (w.pos().y - p0.y).powi(2)).sqrt();
        assert!((moved - 1.4).abs() < 1e-9, "moved={moved}");
    }

    #[test]
    fn placement_is_area_uniform() {
        // With area-uniform placement, ~75% of UEs fall beyond r/2.
        let n = 5000;
        let far = (0..n)
            .filter(|&s| {
                RandomWalk::new(200.0, 0.5, 1.4, Rng::new(1000 + s))
                    .pos()
                    .dist_origin()
                    > 100.0
            })
            .count();
        let frac = far as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac={frac}");
    }
}
