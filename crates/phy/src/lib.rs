//! # outran-phy
//!
//! The radio substrate of the OutRAN reproduction: everything below the
//! MAC scheduler's per-RB metric.
//!
//! The paper's systems obtain channel state three ways — real USRP
//! radios over the air, Colosseum RF emulation, and 3GPP TS 36.141 fading
//! traces fed to srsENB / NS-3. All of them ultimately hand the MAC
//! scheduler one thing: an *achievable rate per Resource Block per user*,
//! derived from CQI reports. This crate synthesises that signal with the
//! same structure:
//!
//! ```text
//! position ──► path loss ──┐
//! shadowing (log-normal) ──┼──► per-subband SINR ──► CQI ──► MCS
//! fast fading (Rayleigh,   │        │                          │
//!   time- & freq-selective)┘        └──► BLER (truth)          └──► bits/RB
//! ```
//!
//! * [`numerology`] — LTE and 5G NR µ0–µ3 frame parameters (TTI length,
//!   subchannel width, RB counts; paper §4.1 and Figure 5).
//! * [`cqi`] — the 3GPP 36.213 CQI→(modulation, code rate, efficiency)
//!   tables (64-QAM and 256-QAM variants) and an SINR→CQI mapping.
//! * [`fading`] — Gauss–Markov Rayleigh fading with Doppler-derived
//!   coherence time and per-subband frequency selectivity.
//! * [`channel`] — the composed per-UE channel: SINR, reported CQI (with
//!   reporting period and delay), achievable per-RB rate, and a BLER
//!   truth model for link-layer loss.
//! * [`mobility`] — random-walk mobility (pedestrian 1.4 m/s, §6.2).
//! * [`scenario`] — presets reproducing the paper's environments:
//!   the LTE pedestrian cell (Fig 2b's Medium/Good/Excellent mix), the
//!   NR urban cell, and Colosseum-like Rome/Boston/POWDER profiles
//!   (Fig 19's close/moderate, close/fast, medium/static).

//!
//! # Example
//!
//! ```
//! use outran_phy::{channel::{CellChannel, ChannelConfig}};
//! use outran_simcore::{Rng, Time};
//!
//! let cfg = ChannelConfig::lte_default();
//! let mut cell = CellChannel::new(cfg, 4, &Rng::new(7));
//! cell.advance_tti(Time::from_millis(1));
//! // The scheduler consumes per-RB achievable rates (bits per TTI).
//! let r = cell.reported_rate_per_rb(0, 10);
//! assert!(r >= 0.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bler;
pub mod channel;
pub mod cqi;
pub mod fading;
pub mod harq;
pub mod mobility;
pub mod numerology;
pub mod scenario;

pub use channel::{CellChannel, ChannelConfig};
pub use cqi::{Cqi, CqiTable};
pub use numerology::{Numerology, RadioConfig};
pub use scenario::Scenario;

/// Identifier of a user equipment within a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UeId(pub u16);

impl std::fmt::Display for UeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UE{}", self.0)
    }
}
