//! RLC service data units and segments.
//!
//! One RLC SDU corresponds to one PDCP PDU (one downlink IP packet).
//! When the MAC grants fewer bytes than the head SDU's remaining length,
//! the RLC emits a *segment* and keeps the rest (Figure 9: segmentation &
//! concatenation at the sender, reassembly at the receiver).

use outran_pdcp::{FiveTuple, Priority};
use outran_simcore::Time;

/// An RLC SDU queued for transmission.
#[derive(Debug, Clone)]
pub struct RlcSdu {
    /// Unique SDU identifier within the bearer (simulator-wide counter).
    pub id: u64,
    /// Application flow this SDU belongs to.
    pub flow_id: u64,
    /// Flow key (for per-flow state lookups).
    pub tuple: FiveTuple,
    /// Total SDU length in bytes.
    pub len: u32,
    /// Bytes already emitted in earlier segments.
    pub offset: u32,
    /// MLFQ priority assigned by PDCP at ingress.
    pub priority: Priority,
    /// When the SDU entered the RLC buffer.
    pub arrival: Time,
    /// Transport-layer sequence number of the SDU's first byte.
    pub seq: u64,
}

impl RlcSdu {
    /// Bytes still awaiting transmission.
    pub fn remaining(&self) -> u32 {
        self.len - self.offset
    }

    /// Whether some but not all bytes have been emitted.
    pub fn is_partially_sent(&self) -> bool {
        self.offset > 0 && self.offset < self.len
    }
}

/// A transmitted piece of an SDU (possibly the whole of it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlcSegment {
    /// SDU this segment belongs to.
    pub sdu_id: u64,
    /// Flow of the parent SDU.
    pub flow_id: u64,
    /// Flow key of the parent SDU.
    pub tuple: FiveTuple,
    /// Byte offset of this segment within the SDU.
    pub offset: u32,
    /// Segment payload length in bytes.
    pub len: u32,
    /// Total length of the parent SDU (receiver needs it to detect
    /// completion).
    pub sdu_len: u32,
    /// Transport-layer sequence number of the segment's first byte.
    pub seq: u64,
    /// PDCP sequence number stamped at (possibly delayed) numbering time.
    pub pdcp_sn: Option<u32>,
    /// When the parent SDU entered the RLC buffer (queue-delay metric).
    pub arrival: Time,
}

impl RlcSegment {
    /// Whether this segment completes its SDU.
    pub fn is_last(&self) -> bool {
        self.offset + self.len == self.sdu_len
    }

    /// Whether this segment is the whole SDU (no segmentation happened).
    pub fn is_whole(&self) -> bool {
        self.offset == 0 && self.len == self.sdu_len
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl RlcSdu {
    /// Serialize the SDU (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.id);
        w.u64(self.flow_id);
        self.tuple.snap(w);
        w.u32(self.len);
        w.u32(self.offset);
        w.u8(self.priority.0);
        w.time(self.arrival);
        w.u64(self.seq);
    }

    /// Restore an SDU.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<RlcSdu, SnapError> {
        Ok(RlcSdu {
            id: r.u64()?,
            flow_id: r.u64()?,
            tuple: FiveTuple::unsnap(r)?,
            len: r.u32()?,
            offset: r.u32()?,
            priority: Priority(r.u8()?),
            arrival: r.time()?,
            seq: r.u64()?,
        })
    }
}

impl RlcSegment {
    /// Serialize the segment (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.sdu_id);
        w.u64(self.flow_id);
        self.tuple.snap(w);
        w.u32(self.offset);
        w.u32(self.len);
        w.u32(self.sdu_len);
        w.u64(self.seq);
        w.opt(&self.pdcp_sn, |w, &sn| w.u32(sn));
        w.time(self.arrival);
    }

    /// Restore a segment.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<RlcSegment, SnapError> {
        Ok(RlcSegment {
            sdu_id: r.u64()?,
            flow_id: r.u64()?,
            tuple: FiveTuple::unsnap(r)?,
            offset: r.u32()?,
            len: r.u32()?,
            sdu_len: r.u32()?,
            seq: r.u64()?,
            pdcp_sn: r.opt(|r| r.u32())?,
            arrival: r.time()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sdu(len: u32, offset: u32) -> RlcSdu {
        RlcSdu {
            id: 1,
            flow_id: 9,
            tuple: FiveTuple::simulated(9, 0),
            len,
            offset,
            priority: Priority::TOP,
            arrival: Time::ZERO,
            seq: 0,
        }
    }

    #[test]
    fn remaining_math() {
        assert_eq!(sdu(1500, 0).remaining(), 1500);
        assert_eq!(sdu(1500, 600).remaining(), 900);
        assert!(sdu(1500, 600).is_partially_sent());
        assert!(!sdu(1500, 0).is_partially_sent());
    }

    #[test]
    fn segment_flags() {
        let seg = RlcSegment {
            sdu_id: 1,
            flow_id: 9,
            tuple: FiveTuple::simulated(9, 0),
            offset: 0,
            len: 1500,
            sdu_len: 1500,
            seq: 0,
            pdcp_sn: None,
            arrival: Time::ZERO,
        };
        assert!(seg.is_whole());
        assert!(seg.is_last());
        let mid = RlcSegment {
            offset: 100,
            len: 200,
            sdu_len: 1500,
            ..seg.clone()
        };
        assert!(!mid.is_whole());
        assert!(!mid.is_last());
        let tail = RlcSegment {
            offset: 1300,
            len: 200,
            sdu_len: 1500,
            ..seg
        };
        assert!(tail.is_last());
        assert!(!tail.is_whole());
    }
}
