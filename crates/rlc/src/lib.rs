//! # outran-rlc
//!
//! The Radio Link Control layer of the xNodeB user plane, carrying
//! OutRAN's **intra-user flow scheduler** (paper §4.2) and the RLC-level
//! integration details of §4.4.
//!
//! What this crate reproduces from srsRAN's RLC plus the OutRAN patch:
//!
//! * [`sdu`] — RLC SDUs (one per PDCP PDU / IP packet) and the segments
//!   produced when a transmission opportunity is smaller than the head
//!   SDU (segmentation & concatenation, Figure 9).
//! * [`mlfq`] — the per-UE Multi-Level Feedback Queue replacing the FIFO
//!   `tx_sdu_queue`: K strict-priority queues, SDUs enqueued at the
//!   priority marked by PDCP, **segmented-SDU promotion** to the head of
//!   P1 so a partially-sent SDU can never be trapped behind later
//!   arrivals and miss the receiver's reassembly window (§4.4).
//! * [`um`] — Unacknowledged Mode: unidirectional transfer, tx buffer
//!   capped at the srsENB default of 128 SDUs, receiver-side reassembly
//!   window with discard of stale partials.
//! * [`am`] — Acknowledged Mode: the Ctrl ≻ Retx ≻ Tx strict priority of
//!   TS 38.322, poll-driven STATUS reporting, NACK-triggered
//!   retransmission; OutRAN schedules only the Tx queue, within the
//!   opportunity bytes left after Ctrl and Retx (§4.4, §6.3 case study).
//! * [`bsr`] — the Buffer Status Report extended with the per-priority
//!   queue occupancy the MAC-layer inter-user scheduler consumes
//!   (Appendix B: "we add the 'priority' attribute to the BSR").

//!
//! # Example
//!
//! ```
//! use outran_rlc::{UmConfig, UmTx, UmRx, RlcSdu};
//! use outran_pdcp::{FiveTuple, Priority};
//! use outran_simcore::{Dur, Time};
//!
//! let mut tx = UmTx::new(UmConfig { header_bytes: 0, ..UmConfig::default() });
//! let mut rx = UmRx::new(Dur::from_millis(50));
//! tx.write_sdu(RlcSdu {
//!     id: 1, flow_id: 7, tuple: FiveTuple::simulated(7, 0),
//!     len: 3000, offset: 0, priority: Priority::TOP,
//!     arrival: Time::ZERO, seq: 0,
//! }).unwrap();
//! // Two transmission opportunities segment and reassemble the SDU.
//! let (segs, _) = tx.pull(2000);
//! assert!(rx.on_segment(&segs[0], Time::ZERO).is_none());
//! let (segs, _) = tx.pull(2000);
//! let delivered = rx.on_segment(&segs[0], Time::from_millis(1)).unwrap();
//! assert_eq!(delivered.len, 3000);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod am;
pub mod bsr;
pub mod mlfq;
pub mod sdu;
pub mod um;

pub use am::{AmConfig, AmRx, AmTx, StatusPdu};
pub use bsr::BufferStatus;
pub use mlfq::MlfqQueues;
pub use sdu::{RlcSdu, RlcSegment};
pub use um::{UmConfig, UmRx, UmTx};
