//! Buffer Status Reports with OutRAN's priority attribute.
//!
//! In downlink scheduling the MAC consults the RLC buffer occupancy of
//! each UE to decide who has data. OutRAN's Appendix B extends this
//! report with the per-MLFQ-priority occupancy so the inter-user flow
//! scheduler can read "the status of the MLFQ (queued size for each
//! priority queue) at the MAC layer scheduling".

use outran_pdcp::Priority;

/// RLC → MAC buffer status for one UE/bearer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferStatus {
    /// Queued payload bytes per MLFQ priority (index 0 = P1).
    pub bytes_per_priority: Vec<u64>,
    /// Bytes queued outside the MLFQ (AM control + retransmission
    /// queues); always scheduled ahead of the Tx queue.
    pub ctrl_and_retx_bytes: u64,
}

impl BufferStatus {
    /// An empty report with `k` priority levels.
    pub fn empty(k: usize) -> BufferStatus {
        BufferStatus {
            bytes_per_priority: vec![0; k],
            ctrl_and_retx_bytes: 0,
        }
    }

    /// Total queued bytes across all queues.
    pub fn total(&self) -> u64 {
        self.ctrl_and_retx_bytes + self.bytes_per_priority.iter().sum::<u64>()
    }

    /// Whether the UE has anything to send.
    pub fn has_data(&self) -> bool {
        self.total() > 0
    }

    /// The highest-priority non-empty MLFQ level — the "user priority"
    /// `P_u = max_{f∈F_u} Priority(f)` of eq. (2). `None` when the MLFQ
    /// is empty (the UE may still have ctrl/retx data).
    ///
    /// Note: AM ctrl/retx traffic intentionally does **not** influence
    /// the user priority; eq. (2) is defined over the flows in the Tx
    /// queue only (§4.4 "The per-flow state is kept only for the TxQ").
    pub fn head_priority(&self) -> Option<Priority> {
        self.bytes_per_priority
            .iter()
            .position(|&b| b > 0)
            .map(|i| Priority(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report() {
        let b = BufferStatus::empty(4);
        assert_eq!(b.total(), 0);
        assert!(!b.has_data());
        assert_eq!(b.head_priority(), None);
    }

    #[test]
    fn head_priority_finds_first_nonempty() {
        let mut b = BufferStatus::empty(4);
        b.bytes_per_priority[2] = 100;
        b.bytes_per_priority[3] = 999;
        assert_eq!(b.head_priority(), Some(Priority(2)));
        b.bytes_per_priority[0] = 1;
        assert_eq!(b.head_priority(), Some(Priority(0)));
    }

    #[test]
    fn ctrl_bytes_count_toward_total_but_not_priority() {
        let mut b = BufferStatus::empty(4);
        b.ctrl_and_retx_bytes = 50;
        assert!(b.has_data());
        assert_eq!(b.total(), 50);
        assert_eq!(b.head_priority(), None);
    }
}
