//! The per-UE Multi-Level Feedback Queue (intra-user flow scheduler).
//!
//! §4.2: srsRAN's single FIFO `tx_sdu_queue` is split into K strict-
//! priority queues; each ingress SDU lands in the queue matching the MLFQ
//! priority PDCP marked it with. Dequeueing serves the highest-priority
//! non-empty queue first, approximating SJF on the flows sharing this UE.
//!
//! §4.4 adds the *segmented-SDU promotion*: when a transmission
//! opportunity ends in the middle of an SDU, the leftover is promoted to
//! the head of the first priority queue. Otherwise packets from higher
//! queues could delay the remaining segment past the receiver's
//! reassembly window, causing a discard that hurts FCT.
//!
//! A K=1 instance is exactly the legacy FIFO, which is how the vanilla
//! srsRAN baseline is expressed in this codebase.

use std::collections::VecDeque;

use outran_pdcp::Priority;

use crate::sdu::{RlcSdu, RlcSegment};

/// Strict-priority multi-queue with a promoted slot for segmented SDUs.
#[derive(Debug, Clone)]
pub struct MlfqQueues {
    /// One FIFO per priority level (index 0 = P1, highest).
    queues: Vec<VecDeque<RlcSdu>>,
    /// Partially-sent SDUs, served before everything else (§4.4).
    promoted: VecDeque<RlcSdu>,
    /// Remaining bytes per priority level.
    bytes: Vec<u64>,
    /// Occupancy bitmask: bit `l` set iff `bytes[l] > 0`. Makes
    /// [`MlfqQueues::head_priority`] O(1) instead of a K-level scan —
    /// the MAC reads it for every UE every TTI.
    occupied: u64,
    /// Remaining bytes in the promoted slot.
    promoted_bytes: u64,
    /// Total SDUs across all queues (for the buffer cap).
    n_sdus: usize,
    /// Maximum SDUs held (srsENB UM default: 128).
    capacity_sdus: usize,
    /// Whether the §4.4 promotion is active (off reproduces a "strict
    /// MLFQ without the reassembly fix" ablation).
    promote_segments: bool,
    /// Whether a full buffer evicts the worst-priority tail SDU to admit
    /// a better one (push-out) or drops the incoming SDU (drop-tail).
    pushout: bool,
}

impl MlfqQueues {
    /// Create with `k` priority levels and an SDU capacity.
    pub fn new(k: usize, capacity_sdus: usize) -> MlfqQueues {
        assert!(k >= 1, "need at least one queue");
        assert!(k <= 64, "occupancy bitmask holds at most 64 levels");
        MlfqQueues {
            queues: (0..k).map(|_| VecDeque::new()).collect(),
            promoted: VecDeque::new(),
            bytes: vec![0; k],
            occupied: 0,
            promoted_bytes: 0,
            n_sdus: 0,
            capacity_sdus,
            promote_segments: true,
            pushout: true,
        }
    }

    /// Legacy single-FIFO configuration (the vanilla srsRAN tx queue).
    pub fn fifo(capacity_sdus: usize) -> MlfqQueues {
        MlfqQueues::new(1, capacity_sdus)
    }

    /// Disable/enable segmented-SDU promotion (§4.4 ablation knob).
    pub fn set_promote_segments(&mut self, on: bool) {
        self.promote_segments = on;
    }

    /// Select the overflow policy: push-out (default) or plain drop-tail
    /// (ablation knob; K=1 queues behave identically either way).
    pub fn set_pushout(&mut self, on: bool) {
        self.pushout = on;
    }

    /// Number of priority levels.
    pub fn num_levels(&self) -> usize {
        self.queues.len()
    }

    /// Total queued SDUs (whole + partial).
    pub fn len_sdus(&self) -> usize {
        self.n_sdus
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.n_sdus == 0
    }

    /// Total queued bytes still to transmit.
    pub fn queued_bytes(&self) -> u64 {
        self.promoted_bytes + self.bytes.iter().sum::<u64>()
    }

    /// Queued bytes per priority level; promoted bytes count at level 0,
    /// since that is where they are served (this is what the BSR reports).
    pub fn bytes_per_priority(&self) -> Vec<u64> {
        let mut v = self.bytes.clone();
        v[0] += self.promoted_bytes;
        v
    }

    /// The highest-priority level with data — the user priority of
    /// eq. (2). Promoted segments count as P1. O(1) via the occupancy
    /// bitmask.
    pub fn head_priority(&self) -> Option<Priority> {
        if !self.promoted.is_empty() {
            return Some(Priority::TOP);
        }
        if self.occupied == 0 {
            None
        } else {
            Some(Priority(self.occupied.trailing_zeros() as u8))
        }
    }

    /// Account bytes into `level`, maintaining the occupancy bitmask.
    fn add_level_bytes(&mut self, level: usize, n: u64) {
        self.bytes[level] += n;
        if n > 0 {
            self.occupied |= 1 << level;
        }
    }

    /// Account bytes out of `level`, maintaining the occupancy bitmask.
    fn sub_level_bytes(&mut self, level: usize, n: u64) {
        self.bytes[level] -= n;
        if self.bytes[level] == 0 {
            self.occupied &= !(1 << level);
        }
    }

    /// Enqueue an SDU at its marked priority (clamped to the available
    /// levels, so a K=1 instance degrades to FIFO).
    ///
    /// Overflow policy: **priority push-out**. When the buffer is full,
    /// the tail SDU of the lowest-priority queue *strictly below* the
    /// incoming SDU's level is evicted to make room; if no worse queue
    /// has data, the incoming SDU itself is dropped. A K=1 instance
    /// therefore degrades to plain drop-tail (the legacy behaviour). The
    /// `Err` carries whichever SDU was dropped, so TCP sees the loss.
    pub fn push(&mut self, sdu: RlcSdu) -> Result<(), RlcSdu> {
        let level = (sdu.priority.0 as usize).min(self.queues.len() - 1);
        if self.n_sdus >= self.capacity_sdus {
            if !self.pushout {
                return Err(sdu); // drop-tail ablation
            }
            // Find a victim strictly below the incoming priority.
            let victim_level = (level + 1..self.queues.len())
                .rev()
                .find(|&l| !self.queues[l].is_empty());
            let Some(vl) = victim_level else {
                return Err(sdu); // nothing worse to evict: drop incoming
            };
            let Some(victim) = self.queues[vl].pop_back() else {
                return Err(sdu); // unreachable: vl was found non-empty
            };
            self.sub_level_bytes(vl, victim.remaining() as u64);
            self.n_sdus -= 1;
            self.add_level_bytes(level, sdu.remaining() as u64);
            self.queues[level].push_back(sdu);
            self.n_sdus += 1;
            return Err(victim);
        }
        self.add_level_bytes(level, sdu.remaining() as u64);
        self.queues[level].push_back(sdu);
        self.n_sdus += 1;
        Ok(())
    }

    /// Dequeue up to `budget` bytes into segments, honoring strict
    /// priority and charging `header_bytes` of RLC/MAC overhead per
    /// emitted segment. Returns the segments and the bytes consumed
    /// (payload + headers).
    ///
    /// Segmentation: a partial emit leaves the remainder either promoted
    /// to the head of P1 (OutRAN) or at the head of its own queue
    /// (promotion disabled / legacy FIFO — where the head position makes
    /// it next anyway).
    pub fn pull(&mut self, budget: u64, header_bytes: u32) -> (Vec<RlcSegment>, u64) {
        let mut out = Vec::new();
        let used = self.pull_into(&mut out, budget, header_bytes);
        (out, used)
    }

    /// Like [`MlfqQueues::pull`], but appends into a caller-owned scratch
    /// vector (the per-TTI hot path reuses one buffer across UEs instead
    /// of allocating per pull). Returns the bytes consumed.
    pub fn pull_into(&mut self, out: &mut Vec<RlcSegment>, budget: u64, header_bytes: u32) -> u64 {
        let mut used = 0u64;
        while used + (header_bytes as u64) < budget {
            let avail = budget - used - header_bytes as u64;
            let Some((mut sdu, from_promoted)) = self.pop_next() else {
                break;
            };
            let take = (sdu.remaining() as u64).min(avail) as u32;
            if take == 0 {
                // Not even one payload byte fits; put it back untouched.
                self.unpop(sdu, from_promoted);
                break;
            }
            out.push(RlcSegment {
                sdu_id: sdu.id,
                flow_id: sdu.flow_id,
                tuple: sdu.tuple,
                offset: sdu.offset,
                len: take,
                sdu_len: sdu.len,
                seq: sdu.seq + sdu.offset as u64,
                pdcp_sn: None,
                arrival: sdu.arrival,
            });
            sdu.offset += take;
            used += take as u64 + header_bytes as u64;
            if sdu.remaining() > 0 {
                // Partial: requeue for the next opportunity.
                if self.promote_segments {
                    self.promoted_bytes += sdu.remaining() as u64;
                    self.promoted.push_front(sdu);
                } else {
                    let level = (sdu.priority.0 as usize).min(self.queues.len() - 1);
                    self.add_level_bytes(level, sdu.remaining() as u64);
                    self.queues[level].push_front(sdu);
                }
                self.n_sdus += 1;
                break; // budget necessarily exhausted
            }
        }
        used
    }

    /// Pop the next SDU in service order, accounting bytes out.
    fn pop_next(&mut self) -> Option<(RlcSdu, bool)> {
        if let Some(sdu) = self.promoted.pop_front() {
            self.promoted_bytes -= sdu.remaining() as u64;
            self.n_sdus -= 1;
            return Some((sdu, true));
        }
        for level in 0..self.queues.len() {
            if let Some(sdu) = self.queues[level].pop_front() {
                self.sub_level_bytes(level, sdu.remaining() as u64);
                self.n_sdus -= 1;
                return Some((sdu, false));
            }
        }
        None
    }

    /// Undo a [`MlfqQueues::pop_next`].
    fn unpop(&mut self, sdu: RlcSdu, from_promoted: bool) {
        if from_promoted {
            self.promoted_bytes += sdu.remaining() as u64;
            self.promoted.push_front(sdu);
        } else {
            let level = (sdu.priority.0 as usize).min(self.queues.len() - 1);
            self.add_level_bytes(level, sdu.remaining() as u64);
            self.queues[level].push_front(sdu);
        }
        self.n_sdus += 1;
    }

    /// Current SDU capacity.
    pub fn capacity(&self) -> usize {
        self.capacity_sdus
    }

    /// Change the SDU capacity at runtime (mid-run buffer shrink). When
    /// the buffer is over the new bound, SDUs are shed worst-priority-
    /// tail first (promoted partials last — evicting a partial guarantees
    /// a receiver-side reassembly failure, so they go only when whole
    /// SDUs cannot cover the overshoot). Returns the evicted SDUs so the
    /// caller can account the lost bytes.
    pub fn set_capacity(&mut self, capacity_sdus: usize) -> Vec<RlcSdu> {
        self.capacity_sdus = capacity_sdus;
        let mut evicted = Vec::new();
        while self.n_sdus > self.capacity_sdus {
            let victim_level = (0..self.queues.len())
                .rev()
                .find(|&l| !self.queues[l].is_empty());
            let victim = match victim_level {
                Some(l) => match self.queues[l].pop_back() {
                    Some(v) => {
                        self.sub_level_bytes(l, v.remaining() as u64);
                        v
                    }
                    None => break, // unreachable: l was found non-empty
                },
                None => match self.promoted.pop_back() {
                    Some(v) => {
                        self.promoted_bytes -= v.remaining() as u64;
                        v
                    }
                    None => break, // n_sdus drifted from queue contents
                },
            };
            self.n_sdus -= 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Drain every queued SDU (RLC re-establishment). Returns the flushed
    /// SDUs so the caller can account the lost bytes.
    pub fn flush(&mut self) -> Vec<RlcSdu> {
        let mut out: Vec<RlcSdu> = self.promoted.drain(..).collect();
        for q in &mut self.queues {
            out.extend(q.drain(..));
        }
        self.promoted_bytes = 0;
        self.bytes.iter_mut().for_each(|b| *b = 0);
        self.occupied = 0;
        self.n_sdus = 0;
        out
    }

    /// Iterate over all queued SDUs (diagnostics/tests).
    pub fn iter(&self) -> impl Iterator<Item = &RlcSdu> {
        self.promoted.iter().chain(self.queues.iter().flatten())
    }

    /// Arrival time of the oldest SDU at the head of any level — the
    /// head-of-line sojourn anchor the CQA baseline weighs by. Within a
    /// level SDUs are FIFO, so per-level heads bound the minimum.
    pub fn oldest_head_arrival(&self) -> Option<outran_simcore::Time> {
        self.promoted
            .front()
            .map(|s| s.arrival)
            .into_iter()
            .chain(
                self.queues
                    .iter()
                    .filter_map(|q| q.front().map(|s| s.arrival)),
            )
            .min()
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl MlfqQueues {
    /// Serialize the queue contents and configuration knobs
    /// (checkpointing). Byte/occupancy aggregates are recomputed on
    /// restore, so only the SDUs themselves and the mutable knobs
    /// (capacity can shrink mid-run under a buffer fault) go to the wire.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.usize(self.queues.len());
        for q in &self.queues {
            w.seq(q.iter(), |w, s| s.snap(w));
        }
        w.seq(self.promoted.iter(), |w, s| s.snap(w));
        w.usize(self.capacity_sdus);
        w.bool(self.promote_segments);
        w.bool(self.pushout);
    }

    /// Restore from [`MlfqQueues::snap`] output. The `bytes`, `occupied`,
    /// `promoted_bytes`, and `n_sdus` aggregates are rebuilt from the
    /// restored SDUs, guaranteeing internal consistency.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<MlfqQueues, SnapError> {
        let k = r.usize()?;
        if k == 0 || k > 64 {
            return Err(SnapError::Malformed("mlfq level count out of range"));
        }
        let mut queues: Vec<VecDeque<RlcSdu>> = Vec::with_capacity(k);
        for _ in 0..k {
            queues.push(r.seq(RlcSdu::unsnap)?.into_iter().collect());
        }
        let promoted: VecDeque<RlcSdu> = r.seq(RlcSdu::unsnap)?.into_iter().collect();
        let capacity_sdus = r.usize()?;
        let promote_segments = r.bool()?;
        let pushout = r.bool()?;

        let mut bytes = vec![0u64; k];
        let mut n_sdus = promoted.len();
        for (level, q) in queues.iter().enumerate() {
            for s in q {
                bytes[level] += s.remaining() as u64;
            }
            n_sdus += q.len();
        }
        let mut occupied = 0u64;
        for (level, &b) in bytes.iter().enumerate() {
            if b > 0 {
                occupied |= 1 << level;
            }
        }
        let promoted_bytes = promoted.iter().map(|s| s.remaining() as u64).sum();
        Ok(MlfqQueues {
            queues,
            promoted,
            bytes,
            occupied,
            promoted_bytes,
            n_sdus,
            capacity_sdus,
            promote_segments,
            pushout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outran_pdcp::FiveTuple;
    use outran_simcore::Time;

    fn sdu(id: u64, len: u32, prio: u8) -> RlcSdu {
        RlcSdu {
            id,
            flow_id: id / 100,
            tuple: FiveTuple::simulated(id / 100, 0),
            len,
            offset: 0,
            priority: Priority(prio),
            arrival: Time::ZERO,
            seq: 0,
        }
    }

    #[test]
    fn set_capacity_sheds_worst_priority_first() {
        let mut q = MlfqQueues::new(4, 8);
        for i in 0..6u64 {
            // Priorities 0,0,1,1,2,2 — higher number = worse.
            q.push(sdu(i, 100, (i / 2) as u8)).unwrap();
        }
        let evicted = q.set_capacity(3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.len_sdus(), 3);
        assert_eq!(evicted.len(), 3);
        // Shed from the worst (highest) priority levels first.
        assert!(evicted.iter().all(|s| s.priority.0 >= 1), "{evicted:?}");
        assert_eq!(
            evicted.iter().filter(|s| s.priority.0 == 2).count(),
            2,
            "both P2 SDUs must go before any P1"
        );
        // Growing capacity back evicts nothing further.
        assert!(q.set_capacity(8).is_empty());
        assert_eq!(q.len_sdus(), 3);
    }

    #[test]
    fn flush_drains_everything() {
        let mut q = MlfqQueues::new(4, 16);
        for i in 0..5u64 {
            q.push(sdu(i, 80, (i % 4) as u8)).unwrap();
        }
        let flushed = q.flush();
        assert_eq!(flushed.len(), 5);
        assert_eq!(q.len_sdus(), 0);
        assert_eq!(q.queued_bytes(), 0);
        // The queue is reusable after a flush (re-establishment).
        q.push(sdu(9, 50, 0)).unwrap();
        assert_eq!(q.len_sdus(), 1);
    }

    #[test]
    fn strict_priority_order() {
        let mut q = MlfqQueues::new(4, 128);
        q.push(sdu(1, 100, 3)).unwrap();
        q.push(sdu(2, 100, 0)).unwrap();
        q.push(sdu(3, 100, 1)).unwrap();
        let (segs, used) = q.pull(10_000, 0);
        assert_eq!(used, 300);
        let ids: Vec<u64> = segs.iter().map(|s| s.sdu_id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
    }

    #[test]
    fn fifo_within_level() {
        let mut q = MlfqQueues::new(4, 128);
        for id in 1..=5 {
            q.push(sdu(id, 50, 1)).unwrap();
        }
        let (segs, _) = q.pull(10_000, 0);
        let ids: Vec<u64> = segs.iter().map(|s| s.sdu_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn segmentation_and_promotion() {
        let mut q = MlfqQueues::new(4, 128);
        q.push(sdu(1, 1500, 2)).unwrap(); // low priority, big
        let (segs, used) = q.pull(600, 0);
        assert_eq!(used, 600);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].offset, 0);
        assert_eq!(segs[0].len, 600);
        assert!(!segs[0].is_last());
        // A high-priority SDU arrives; the promoted segment must still win.
        q.push(sdu(2, 100, 0)).unwrap();
        assert_eq!(q.head_priority(), Some(Priority::TOP));
        let (segs2, _) = q.pull(10_000, 0);
        assert_eq!(segs2[0].sdu_id, 1);
        assert_eq!(segs2[0].offset, 600);
        assert!(segs2[0].is_last());
        assert_eq!(segs2[1].sdu_id, 2);
    }

    #[test]
    fn no_promotion_keeps_segment_at_own_level() {
        let mut q = MlfqQueues::new(4, 128);
        q.set_promote_segments(false);
        q.push(sdu(1, 1500, 2)).unwrap();
        let _ = q.pull(600, 0);
        q.push(sdu(2, 100, 0)).unwrap();
        // Without promotion, the fresh P1 SDU preempts the leftover.
        let (segs, _) = q.pull(10_000, 0);
        assert_eq!(segs[0].sdu_id, 2);
        assert_eq!(segs[1].sdu_id, 1);
        assert_eq!(segs[1].offset, 600);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = MlfqQueues::new(4, 3);
        for id in 0..3 {
            q.push(sdu(id, 100, 0)).unwrap();
        }
        assert!(q.push(sdu(99, 100, 0)).is_err());
        assert_eq!(q.len_sdus(), 3);
    }

    #[test]
    fn byte_accounting_consistent() {
        let mut q = MlfqQueues::new(4, 128);
        q.push(sdu(1, 1000, 0)).unwrap();
        q.push(sdu(2, 500, 2)).unwrap();
        assert_eq!(q.queued_bytes(), 1500);
        assert_eq!(q.bytes_per_priority(), vec![1000, 0, 500, 0]);
        let (_, used) = q.pull(700, 0);
        assert_eq!(used, 700);
        assert_eq!(q.queued_bytes(), 800);
        // 300 left of SDU 1, promoted => counts at level 0.
        assert_eq!(q.bytes_per_priority(), vec![300, 0, 500, 0]);
        let (_, used2) = q.pull(10_000, 0);
        assert_eq!(used2, 800);
        assert!(q.is_empty());
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn header_overhead_charged_per_segment() {
        let mut q = MlfqQueues::new(1, 128);
        q.push(sdu(1, 100, 0)).unwrap();
        q.push(sdu(2, 100, 0)).unwrap();
        // Budget 110 with 5-byte headers: the first segment consumes
        // 5 + 100 = 105 and no payload byte fits after the next header.
        let (segs, used) = q.pull(110, 5);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len, 100);
        assert_eq!(used, 105);
        // A budget of 116 fits 100 payload + header and then 6 payload
        // bytes of the second SDU after its header.
        let (segs2, used2) = q.pull(11, 5);
        assert_eq!(segs2.len(), 1);
        assert_eq!(segs2[0].len, 6);
        assert_eq!(used2, 11);
        assert_eq!(q.queued_bytes(), 94);
    }

    #[test]
    fn budget_smaller_than_header_yields_nothing() {
        let mut q = MlfqQueues::new(1, 128);
        q.push(sdu(1, 100, 0)).unwrap();
        let (segs, used) = q.pull(4, 5);
        assert!(segs.is_empty());
        assert_eq!(used, 0);
        assert_eq!(q.len_sdus(), 1);
    }

    #[test]
    fn clamps_priority_to_levels() {
        let mut q = MlfqQueues::fifo(128);
        q.push(sdu(1, 100, 3)).unwrap(); // clamped to level 0
        assert_eq!(q.head_priority(), Some(Priority::TOP));
        let (segs, _) = q.pull(1000, 0);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn occupancy_bitmask_matches_byte_scan() {
        // The O(1) head_priority must agree with a linear scan of the
        // per-level byte counters through pushes, partial pulls,
        // capacity shrinks, and flushes.
        let check = |q: &MlfqQueues| {
            let scan: u64 = q
                .bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b > 0)
                .fold(0u64, |m, (l, _)| m | 1 << l);
            assert_eq!(q.occupied, scan, "bitmask diverged from bytes");
        };
        let mut q = MlfqQueues::new(4, 4);
        check(&q);
        for i in 0..4u64 {
            q.push(sdu(i, 200, (i % 4) as u8)).unwrap();
            check(&q);
        }
        let _ = q.push(sdu(9, 100, 0)); // push-out of a worse victim
        check(&q);
        let _ = q.pull(250, 0); // partial pull promotes a remainder
        check(&q);
        let _ = q.set_capacity(1);
        check(&q);
        let _ = q.flush();
        check(&q);
        assert_eq!(q.head_priority(), None);
    }

    #[test]
    fn head_priority_tracks_occupancy() {
        let mut q = MlfqQueues::new(4, 128);
        assert_eq!(q.head_priority(), None);
        q.push(sdu(1, 100, 2)).unwrap();
        assert_eq!(q.head_priority(), Some(Priority(2)));
        q.push(sdu(2, 100, 1)).unwrap();
        assert_eq!(q.head_priority(), Some(Priority(1)));
        let _ = q.pull(10_000, 0);
        assert_eq!(q.head_priority(), None);
    }
}
