//! RLC Unacknowledged Mode.
//!
//! UM "provides unidirectional data transfer and only has a tx buffer"
//! (§4.4). It is the paper's default mode: no link-layer retransmission,
//! losses are left to TCP. The moving parts reproduced here:
//!
//! * **Transmitter** ([`UmTx`]) — the per-UE MLFQ tx buffer (or legacy
//!   FIFO), capped at the srsENB default capacity of 128 SDUs (§6.1
//!   "maximum buffer size of the RLC UM entity is set to the default
//!   value of srsENB"). Overflow = drop-tail, which the sender's TCP
//!   perceives as congestion loss — this is precisely the bufferbloat
//!   interaction the motivation section (§3) studies.
//! * **Receiver** ([`UmRx`]) — reassembles segmented SDUs; a partial SDU
//!   whose remaining segments do not arrive within the reassembly window
//!   is discarded (TS 38.322 t-Reassembly), the §4.4 hazard that makes
//!   segment promotion necessary.

use std::collections::BTreeMap;

use outran_pdcp::Priority;
use outran_simcore::{Dur, Time};

use crate::bsr::BufferStatus;
use crate::mlfq::MlfqQueues;
use crate::sdu::{RlcSdu, RlcSegment};

/// UM entity configuration.
#[derive(Debug, Clone, Copy)]
pub struct UmConfig {
    /// MLFQ levels (1 = legacy FIFO).
    pub mlfq_levels: usize,
    /// Tx buffer capacity in SDUs (srsENB default 128).
    pub capacity_sdus: usize,
    /// RLC+MAC header overhead charged per emitted segment.
    pub header_bytes: u32,
    /// Receiver reassembly window (t-Reassembly).
    pub reassembly_window: Dur,
    /// §4.4 segmented-SDU promotion.
    pub promote_segments: bool,
    /// Priority push-out on overflow (vs drop-tail).
    pub pushout: bool,
}

impl Default for UmConfig {
    fn default() -> Self {
        UmConfig {
            mlfq_levels: 4,
            capacity_sdus: 128,
            header_bytes: 3,
            reassembly_window: Dur::from_millis(50),
            promote_segments: true,
            pushout: true,
        }
    }
}

impl UmConfig {
    /// The vanilla srsRAN configuration: one FIFO, no flow scheduling.
    pub fn legacy() -> UmConfig {
        UmConfig {
            mlfq_levels: 1,
            promote_segments: true, // FIFO keeps partials at head anyway
            ..UmConfig::default()
        }
    }
}

/// UM transmitting entity for one UE/bearer.
#[derive(Debug, Clone)]
pub struct UmTx {
    cfg: UmConfig,
    queues: MlfqQueues,
    /// SDUs dropped at the full buffer (drop-tail), for diagnostics.
    pub dropped_sdus: u64,
}

impl UmTx {
    /// Create a transmitter.
    pub fn new(cfg: UmConfig) -> UmTx {
        let mut queues = MlfqQueues::new(cfg.mlfq_levels, cfg.capacity_sdus);
        queues.set_promote_segments(cfg.promote_segments);
        queues.set_pushout(cfg.pushout);
        UmTx {
            cfg,
            queues,
            dropped_sdus: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &UmConfig {
        &self.cfg
    }

    /// Enqueue an SDU; `Err` carries the SDU back when the buffer is full
    /// (the caller treats it as a congestion drop).
    pub fn write_sdu(&mut self, sdu: RlcSdu) -> Result<(), RlcSdu> {
        self.queues.push(sdu).inspect_err(|_s| {
            self.dropped_sdus += 1;
        })
    }

    /// Serve a transmission opportunity of `budget` bytes; returns the
    /// emitted segments and bytes consumed.
    pub fn pull(&mut self, budget: u64) -> (Vec<RlcSegment>, u64) {
        self.queues.pull(budget, self.cfg.header_bytes)
    }

    /// Like [`UmTx::pull`], but appends into a caller-owned scratch
    /// vector (hot-path variant). Returns the bytes consumed.
    pub fn pull_into(&mut self, out: &mut Vec<RlcSegment>, budget: u64) -> u64 {
        self.queues.pull_into(out, budget, self.cfg.header_bytes)
    }

    /// Buffer status for the MAC (with OutRAN's per-priority occupancy).
    pub fn buffer_status(&self) -> BufferStatus {
        BufferStatus {
            bytes_per_priority: self.queues.bytes_per_priority(),
            ctrl_and_retx_bytes: 0,
        }
    }

    /// The user priority of eq. (2).
    pub fn head_priority(&self) -> Option<Priority> {
        self.queues.head_priority()
    }

    /// Queued bytes.
    pub fn queued_bytes(&self) -> u64 {
        self.queues.queued_bytes()
    }

    /// Queued SDUs.
    pub fn len_sdus(&self) -> usize {
        self.queues.len_sdus()
    }

    /// Whether the tx buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Direct access to the MLFQ (used by the AM wrapper and tests).
    pub fn queues_mut(&mut self) -> &mut MlfqQueues {
        &mut self.queues
    }

    /// Current tx-buffer capacity in SDUs.
    pub fn capacity_sdus(&self) -> usize {
        self.queues.capacity()
    }

    /// Clamp the tx buffer to `capacity_sdus`, shedding overflow worst-
    /// priority first (mid-run buffer shrink fault). Returns
    /// `(sdus, bytes)` shed.
    pub fn set_capacity(&mut self, capacity_sdus: usize) -> (u64, u64) {
        let evicted = self.queues.set_capacity(capacity_sdus);
        let bytes: u64 = evicted.iter().map(|s| s.remaining() as u64).sum();
        self.dropped_sdus += evicted.len() as u64;
        (evicted.len() as u64, bytes)
    }

    /// RLC re-establishment (TS 38.322 §5.1.2): discard the whole tx
    /// buffer; upper layers (TCP) refill via retransmission. Returns
    /// `(sdus, bytes)` flushed.
    pub fn reestablish(&mut self) -> (u64, u64) {
        let flushed = self.queues.flush();
        let bytes: u64 = flushed.iter().map(|s| s.remaining() as u64).sum();
        (flushed.len() as u64, bytes)
    }

    /// Oldest head-of-line arrival across the MLFQ (CQA's d_HOL anchor).
    pub fn oldest_head_arrival(&self) -> Option<Time> {
        self.queues.oldest_head_arrival()
    }
}

/// A fully reassembled SDU delivered up to PDCP/transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveredSdu {
    /// SDU identity.
    pub sdu_id: u64,
    /// Flow the SDU belongs to.
    pub flow_id: u64,
    /// SDU length in bytes.
    pub len: u32,
    /// Transport sequence of the first byte.
    pub seq: u64,
}

#[derive(Debug, Clone)]
struct Partial {
    received: u32,
    next_offset: u32,
    sdu_len: u32,
    flow_id: u64,
    seq: u64,
    deadline: Time,
}

/// UM receiving entity (UE side).
#[derive(Debug, Clone, Default)]
pub struct UmRx {
    /// Keyed by SDU id, ordered so held-bytes accounting and expiry
    /// sweeps traverse deterministically (outran-lint D2).
    partials: BTreeMap<u64, Partial>,
    /// SDUs discarded because the reassembly window expired (§4.4 hazard).
    pub discarded_sdus: u64,
    /// Payload bytes that reached this receiver but were discarded with
    /// their SDU (expiry or gap abort) — byte-conservation accounting.
    pub discarded_bytes: u64,
    window: Dur,
}

impl UmRx {
    /// Create a receiver with the given reassembly window.
    pub fn new(window: Dur) -> UmRx {
        UmRx {
            partials: BTreeMap::new(),
            discarded_sdus: 0,
            discarded_bytes: 0,
            window,
        }
    }

    /// Process one arriving segment; returns the SDU if it completed.
    ///
    /// Out-of-order or gapped segments within an SDU abort that SDU's
    /// reassembly (UM has no retransmission to fill gaps — TS 38.322
    /// discards on reassembly failure).
    pub fn on_segment(&mut self, seg: &RlcSegment, now: Time) -> Option<DeliveredSdu> {
        self.expire(now);
        if seg.is_whole() {
            return Some(DeliveredSdu {
                sdu_id: seg.sdu_id,
                flow_id: seg.flow_id,
                len: seg.sdu_len,
                seq: seg.seq,
            });
        }
        let p = self.partials.entry(seg.sdu_id).or_insert(Partial {
            received: 0,
            next_offset: 0,
            sdu_len: seg.sdu_len,
            flow_id: seg.flow_id,
            seq: seg.seq - seg.offset as u64,
            deadline: now + self.window,
        });
        if seg.offset != p.next_offset {
            // Gap (a middle segment was lost): reassembly cannot succeed.
            let held = p.received;
            self.partials.remove(&seg.sdu_id);
            self.discarded_sdus += 1;
            self.discarded_bytes += held as u64 + seg.len as u64;
            return None;
        }
        p.received += seg.len;
        p.next_offset += seg.len;
        if p.received == p.sdu_len {
            let p = self.partials.remove(&seg.sdu_id)?;
            return Some(DeliveredSdu {
                sdu_id: seg.sdu_id,
                flow_id: p.flow_id,
                len: p.sdu_len,
                seq: p.seq,
            });
        }
        None
    }

    /// Drop partials whose reassembly window expired; returns how many
    /// SDUs were discarded by this sweep.
    pub fn expire(&mut self, now: Time) -> u64 {
        let before = self.partials.len();
        let mut freed = 0u64;
        self.partials.retain(|_, p| {
            if p.deadline > now {
                true
            } else {
                freed += p.received as u64;
                false
            }
        });
        let dropped = (before - self.partials.len()) as u64;
        self.discarded_sdus += dropped;
        self.discarded_bytes += freed;
        dropped
    }

    /// Number of SDUs currently awaiting more segments.
    pub fn pending(&self) -> usize {
        self.partials.len()
    }

    /// Payload bytes currently held in partial reassemblies.
    pub fn held_bytes(&self) -> u64 {
        self.partials.values().map(|p| p.received as u64).sum()
    }

    /// RLC re-establishment: drop every partial reassembly. Returns
    /// `(sdus, bytes)` discarded.
    pub fn reestablish(&mut self) -> (u64, u64) {
        let sdus = self.partials.len() as u64;
        let bytes = self.held_bytes();
        self.partials.clear();
        self.discarded_sdus += sdus;
        self.discarded_bytes += bytes;
        (sdus, bytes)
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl UmTx {
    /// Serialize the dynamic transmitter state (checkpointing). The
    /// config is re-established by the caller via [`UmTx::new`].
    pub fn snap(&self, w: &mut SnapWriter) {
        self.queues.snap(w);
        w.u64(self.dropped_sdus);
    }

    /// Restore a transmitter: `cfg` comes from the run configuration,
    /// everything dynamic from the snapshot.
    pub fn unsnap(cfg: UmConfig, r: &mut SnapReader<'_>) -> Result<UmTx, SnapError> {
        let queues = MlfqQueues::unsnap(r)?;
        let dropped_sdus = r.u64()?;
        Ok(UmTx {
            cfg,
            queues,
            dropped_sdus,
        })
    }
}

impl UmRx {
    /// Serialize the receiver (checkpointing). BTreeMap iteration is
    /// key-ordered, so the byte stream is deterministic.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.partials.iter(), |w, (&id, p)| {
            w.u64(id);
            w.u32(p.received);
            w.u32(p.next_offset);
            w.u32(p.sdu_len);
            w.u64(p.flow_id);
            w.u64(p.seq);
            w.time(p.deadline);
        });
        w.u64(self.discarded_sdus);
        w.u64(self.discarded_bytes);
        w.dur(self.window);
    }

    /// Restore a receiver from [`UmRx::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<UmRx, SnapError> {
        let entries = r.seq(|r| {
            let id = r.u64()?;
            let p = Partial {
                received: r.u32()?,
                next_offset: r.u32()?,
                sdu_len: r.u32()?,
                flow_id: r.u64()?,
                seq: r.u64()?,
                deadline: r.time()?,
            };
            Ok((id, p))
        })?;
        let discarded_sdus = r.u64()?;
        let discarded_bytes = r.u64()?;
        let window = r.dur()?;
        Ok(UmRx {
            partials: entries.into_iter().collect(),
            discarded_sdus,
            discarded_bytes,
            window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outran_pdcp::FiveTuple;

    fn sdu(id: u64, len: u32, prio: u8) -> RlcSdu {
        RlcSdu {
            id,
            flow_id: id,
            tuple: FiveTuple::simulated(id, 0),
            len,
            offset: 0,
            priority: Priority(prio),
            arrival: Time::ZERO,
            seq: id * 100_000,
        }
    }

    #[test]
    fn whole_sdu_roundtrip() {
        let mut tx = UmTx::new(UmConfig {
            header_bytes: 0,
            ..UmConfig::default()
        });
        let mut rx = UmRx::new(Dur::from_millis(50));
        tx.write_sdu(sdu(1, 1500, 0)).unwrap();
        let (segs, _) = tx.pull(10_000);
        assert_eq!(segs.len(), 1);
        let got = rx.on_segment(&segs[0], Time::ZERO).unwrap();
        assert_eq!(got.sdu_id, 1);
        assert_eq!(got.len, 1500);
        assert_eq!(got.seq, 100_000);
    }

    #[test]
    fn segmented_roundtrip() {
        let mut tx = UmTx::new(UmConfig {
            header_bytes: 0,
            ..UmConfig::default()
        });
        let mut rx = UmRx::new(Dur::from_millis(50));
        tx.write_sdu(sdu(1, 3000, 1)).unwrap();
        let mut delivered = None;
        let mut t = Time::ZERO;
        for _ in 0..5 {
            let (segs, _) = tx.pull(700);
            for s in &segs {
                if let Some(d) = rx.on_segment(s, t) {
                    delivered = Some(d);
                }
            }
            t += Dur::from_millis(1);
        }
        let d = delivered.expect("SDU must complete");
        assert_eq!(d.len, 3000);
        assert_eq!(rx.discarded_sdus, 0);
    }

    #[test]
    fn reassembly_window_discards_stale_partial() {
        let mut tx = UmTx::new(UmConfig {
            header_bytes: 0,
            ..UmConfig::default()
        });
        let mut rx = UmRx::new(Dur::from_millis(50));
        tx.write_sdu(sdu(1, 3000, 0)).unwrap();
        let (segs, _) = tx.pull(700);
        assert!(rx.on_segment(&segs[0], Time::ZERO).is_none());
        assert_eq!(rx.pending(), 1);
        // Window expires before the rest arrives.
        rx.expire(Time::from_millis(60));
        assert_eq!(rx.pending(), 0);
        assert_eq!(rx.discarded_sdus, 1);
        // Remaining segments of the dead SDU now open a fresh partial that
        // can never complete (offset gap) and is discarded immediately.
        let (segs2, _) = tx.pull(10_000);
        let mut any = false;
        for s in &segs2 {
            any |= rx.on_segment(s, Time::from_millis(61)).is_some();
        }
        assert!(!any);
    }

    #[test]
    fn gap_aborts_reassembly() {
        let mut tx = UmTx::new(UmConfig {
            header_bytes: 0,
            ..UmConfig::default()
        });
        let mut rx = UmRx::new(Dur::from_millis(50));
        tx.write_sdu(sdu(7, 2100, 0)).unwrap();
        let (a, _) = tx.pull(700);
        let (b, _) = tx.pull(700);
        let (c, _) = tx.pull(700);
        assert!(rx.on_segment(&a[0], Time::ZERO).is_none());
        // b lost on the air.
        let _ = b;
        assert!(rx.on_segment(&c[0], Time::ZERO).is_none());
        assert_eq!(rx.discarded_sdus, 1);
        assert_eq!(rx.pending(), 0);
    }

    #[test]
    fn buffer_cap_drops() {
        let mut tx = UmTx::new(UmConfig {
            capacity_sdus: 2,
            ..UmConfig::default()
        });
        tx.write_sdu(sdu(1, 100, 0)).unwrap();
        tx.write_sdu(sdu(2, 100, 0)).unwrap();
        assert!(tx.write_sdu(sdu(3, 100, 0)).is_err());
        assert_eq!(tx.dropped_sdus, 1);
        assert_eq!(tx.len_sdus(), 2);
    }

    #[test]
    fn buffer_status_reports_priorities() {
        let mut tx = UmTx::new(UmConfig::default());
        tx.write_sdu(sdu(1, 100, 0)).unwrap();
        tx.write_sdu(sdu(2, 900, 2)).unwrap();
        let bs = tx.buffer_status();
        assert_eq!(bs.bytes_per_priority, vec![100, 0, 900, 0]);
        assert_eq!(bs.total(), 1000);
        assert_eq!(bs.head_priority(), Some(Priority(0)));
        assert_eq!(tx.head_priority(), Some(Priority(0)));
    }

    #[test]
    fn legacy_config_is_fifo() {
        let mut tx = UmTx::new(UmConfig::legacy());
        tx.write_sdu(sdu(1, 100, 3)).unwrap();
        tx.write_sdu(sdu(2, 100, 0)).unwrap();
        let (segs, _) = tx.pull(10_000);
        let ids: Vec<u64> = segs.iter().map(|s| s.sdu_id).collect();
        assert_eq!(ids, vec![1, 2], "legacy FIFO must not reorder");
    }
}
