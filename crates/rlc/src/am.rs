//! RLC Acknowledged Mode.
//!
//! AM "provides a bidirectional data transfer service and supports
//! link-layer retransmission" (§4.4) through three queues of strictly
//! decreasing priority:
//!
//! 1. **Ctrl Q** — control PDUs (link-layer STATUS = ACK/NACK);
//! 2. **Retx Q** — PDUs NACKed (or re-polled) awaiting retransmission;
//! 3. **Tx Q** — fresh SDUs waiting for a first transmission opportunity.
//!
//! "OutRAN complies with the priority levels of each queue specified in
//! the 3GPP standard … we only apply intra & inter-user scheduling on the
//! TxQ and schedule the TxQ within the leftover tx opportunity bytes after
//! scheduling the Ctrl and the Retx Q. The per-flow state is kept only for
//! the TxQ." The Tx Q here is the same [`MlfqQueues`] the UM entity uses
//! (or a FIFO for the PF baseline).
//!
//! The retransmission protocol is an LTE-flavoured AM: every transmitted
//! PDU gets a sequence number; the receiver delivers in SN order and
//! reports `STATUS {ack_sn, nacks[]}` when polled (gated by
//! t-StatusProhibit); the transmitter moves NACKed PDUs to the Retx Q and
//! re-polls on t-PollRetransmit expiry — the mechanism §6.3 notes "could
//! generate unnecessary retransmissions \[55\] … wasting the bandwidth"
//! when timers are mis-set.

use std::collections::{BTreeMap, VecDeque};

use outran_pdcp::Priority;
use outran_simcore::{Dur, Time};

use crate::bsr::BufferStatus;
use crate::mlfq::MlfqQueues;
use crate::sdu::{RlcSdu, RlcSegment};
use crate::um::DeliveredSdu;

/// AM entity configuration (timer defaults follow the NS-3 LENA module,
/// as in the §6.3 case study).
#[derive(Debug, Clone, Copy)]
pub struct AmConfig {
    /// MLFQ levels for the Tx Q (1 = legacy FIFO).
    pub mlfq_levels: usize,
    /// Tx buffer capacity in SDUs.
    pub capacity_sdus: usize,
    /// Header bytes charged per PDU.
    pub header_bytes: u32,
    /// Poll every N data PDUs (pollPDU).
    pub poll_pdu: u32,
    /// Re-poll if no STATUS arrives within this time (t-PollRetransmit).
    pub t_poll_retransmit: Dur,
    /// Minimum spacing between STATUS reports (t-StatusProhibit).
    pub t_status_prohibit: Dur,
    /// Maximum retransmissions of one PDU before it is dropped
    /// (maxRetxThreshold).
    pub max_retx: u8,
    /// §4.4 segmented-SDU promotion on the Tx Q.
    pub promote_segments: bool,
    /// Priority push-out on overflow (vs drop-tail).
    pub pushout: bool,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            mlfq_levels: 4,
            capacity_sdus: 128,
            header_bytes: 5,
            poll_pdu: 4,
            t_poll_retransmit: Dur::from_millis(45),
            t_status_prohibit: Dur::from_millis(10),
            max_retx: 8,
            promote_segments: true,
            pushout: true,
        }
    }
}

impl AmConfig {
    /// Legacy (PF baseline) configuration: FIFO Tx Q.
    pub fn legacy() -> AmConfig {
        AmConfig {
            mlfq_levels: 1,
            ..AmConfig::default()
        }
    }
}

/// A STATUS control PDU: cumulative ACK + selective NACKs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusPdu {
    /// All SNs below this are acknowledged…
    pub ack_sn: u32,
    /// …except these (received SNs above `ack_sn` imply the gaps listed).
    pub nacks: Vec<u32>,
}

impl StatusPdu {
    /// Wire size of this STATUS PDU (2 B fixed + 2 B per NACK, roughly
    /// the TS 36.322 encoding).
    pub fn wire_bytes(&self) -> u32 {
        2 + 2 * self.nacks.len() as u32
    }
}

/// A numbered AM data PDU (one RLC segment + AM header state).
#[derive(Debug, Clone)]
pub struct AmPdu {
    /// AM sequence number.
    pub sn: u32,
    /// The data carried.
    pub seg: RlcSegment,
    /// Poll bit: receiver must emit a STATUS when it sees this.
    pub poll: bool,
}

/// AM transmitting entity (eNodeB side for downlink).
#[derive(Debug, Clone)]
pub struct AmTx {
    cfg: AmConfig,
    txq: MlfqQueues,
    retxq: VecDeque<AmPdu>,
    /// Outgoing control PDUs (status for the reverse direction etc.).
    ctrlq: VecDeque<u32>,
    /// Unacknowledged PDUs awaiting STATUS, by SN.
    flight: BTreeMap<u32, (AmPdu, u8)>,
    next_sn: u32,
    pdus_since_poll: u32,
    poll_outstanding: Option<Time>,
    /// PDUs abandoned after maxRetx (counts toward upper-layer loss).
    pub dropped_pdus: u64,
    /// SDUs dropped at the full Tx buffer.
    pub dropped_sdus: u64,
    /// Total retransmitted PDUs (diagnostics for the §6.3 discussion).
    pub retx_count: u64,
}

impl AmTx {
    /// Create a transmitter.
    pub fn new(cfg: AmConfig) -> AmTx {
        let mut txq = MlfqQueues::new(cfg.mlfq_levels, cfg.capacity_sdus);
        txq.set_promote_segments(cfg.promote_segments);
        txq.set_pushout(cfg.pushout);
        AmTx {
            cfg,
            txq,
            retxq: VecDeque::new(),
            ctrlq: VecDeque::new(),
            flight: BTreeMap::new(),
            next_sn: 0,
            pdus_since_poll: 0,
            poll_outstanding: None,
            dropped_pdus: 0,
            dropped_sdus: 0,
            retx_count: 0,
        }
    }

    /// Configuration in force.
    pub fn config(&self) -> &AmConfig {
        &self.cfg
    }

    /// Enqueue a fresh SDU into the Tx Q.
    pub fn write_sdu(&mut self, sdu: RlcSdu) -> Result<(), RlcSdu> {
        self.txq.push(sdu).inspect_err(|_s| {
            self.dropped_sdus += 1;
        })
    }

    /// Enqueue an outgoing control PDU of the given wire size (models the
    /// bidirectional service's reverse-direction STATUS traffic).
    pub fn queue_ctrl_pdu(&mut self, bytes: u32) {
        self.ctrlq.push_back(bytes);
    }

    /// Serve a transmission opportunity: Ctrl ≻ Retx ≻ Tx (§4.4).
    /// Returns the data PDUs emitted, the control bytes emitted, and the
    /// total bytes consumed.
    pub fn pull(&mut self, budget: u64, now: Time) -> (Vec<AmPdu>, u64, u64) {
        let mut used = 0u64;
        let mut ctrl_bytes = 0u64;
        let hdr = self.cfg.header_bytes as u64;

        // 1. Control queue.
        while let Some(&b) = self.ctrlq.front() {
            if used + b as u64 > budget {
                break;
            }
            used += b as u64;
            ctrl_bytes += b as u64;
            self.ctrlq.pop_front();
        }

        let mut out = Vec::new();

        // 2. Retransmission queue (whole PDUs).
        while let Some(front) = self.retxq.front() {
            let cost = hdr + front.seg.len as u64;
            if used + cost > budget {
                break;
            }
            let Some(mut pdu) = self.retxq.pop_front() else {
                break;
            };
            used += cost;
            self.retx_count += 1;
            pdu.poll = self.should_poll(now);
            let retx = self.flight.get(&pdu.sn).map(|(_, r)| *r).unwrap_or(0);
            self.flight.insert(pdu.sn, (pdu.clone(), retx));
            out.push(pdu);
        }

        // 3. Tx queue (MLFQ / FIFO) within the leftover opportunity.
        if used < budget {
            let (segs, consumed) = self.txq.pull(budget - used, self.cfg.header_bytes);
            used += consumed;
            for seg in segs {
                let sn = self.next_sn;
                self.next_sn = self.next_sn.wrapping_add(1);
                let poll = self.should_poll(now);
                let pdu = AmPdu { sn, seg, poll };
                self.flight.insert(sn, (pdu.clone(), 0));
                out.push(pdu);
            }
        }

        // Poll on buffer drain (standard trigger) if data went out unpolled.
        if !out.is_empty()
            && self.txq.is_empty()
            && self.retxq.is_empty()
            && !out.iter().any(|p| p.poll)
        {
            if let Some(last) = out.last_mut() {
                last.poll = true;
                let sn = last.sn;
                if let Some((fp, _)) = self.flight.get_mut(&sn) {
                    fp.poll = true;
                }
            }
            self.poll_outstanding = Some(now + self.cfg.t_poll_retransmit);
        }

        (out, ctrl_bytes, used)
    }

    fn should_poll(&mut self, now: Time) -> bool {
        self.pdus_since_poll += 1;
        if self.pdus_since_poll >= self.cfg.poll_pdu {
            self.pdus_since_poll = 0;
            self.poll_outstanding = Some(now + self.cfg.t_poll_retransmit);
            true
        } else {
            false
        }
    }

    /// Process a STATUS PDU from the receiver.
    pub fn on_status(&mut self, status: &StatusPdu) {
        self.poll_outstanding = None;
        // Positive acknowledgement below ack_sn (minus explicit NACKs).
        let acked: Vec<u32> = self
            .flight
            .range(..status.ack_sn)
            .map(|(&sn, _)| sn)
            .filter(|sn| !status.nacks.contains(sn))
            .collect();
        for sn in acked {
            self.flight.remove(&sn);
        }
        // NACKs: schedule retransmission (unless already queued / expired).
        for &sn in &status.nacks {
            if let Some((pdu, retx)) = self.flight.get_mut(&sn) {
                if self.retxq.iter().any(|p| p.sn == sn) {
                    continue;
                }
                *retx += 1;
                if *retx > self.cfg.max_retx {
                    self.flight.remove(&sn);
                    self.dropped_pdus += 1;
                } else {
                    let p = pdu.clone();
                    self.retxq.push_back(p);
                }
            }
        }
    }

    /// Timer maintenance: t-PollRetransmit expiry re-queues the earliest
    /// unacknowledged PDU with a fresh poll (the "unnecessary
    /// retransmissions" pathway of §6.3 when the timer is aggressive).
    ///
    /// The timer self-arms whenever PDUs are in flight without an
    /// outstanding poll — a STATUS can clear the poll while a *later*
    /// PDU (one past the receiver's highest seen SN) is still missing,
    /// and only the timer can recover that tail loss.
    pub fn on_tick(&mut self, now: Time) {
        if self.poll_outstanding.is_none() && !self.flight.is_empty() {
            self.poll_outstanding = Some(now + self.cfg.t_poll_retransmit);
            return;
        }
        if let Some(deadline) = self.poll_outstanding {
            if now >= deadline {
                self.poll_outstanding = None;
                if let Some((&sn, (pdu, _))) = self.flight.iter().next() {
                    if !self.retxq.iter().any(|p| p.sn == sn) {
                        let mut p = pdu.clone();
                        p.poll = true;
                        self.retxq.push_back(p);
                        self.retx_count += 1; // will be re-counted on send; diagnostic only
                        self.poll_outstanding = Some(now + self.cfg.t_poll_retransmit);
                    }
                }
            }
        }
    }

    /// Buffer status: MLFQ occupancy plus ctrl/retx bytes (always served
    /// first, and *not* part of the eq. (2) user priority).
    pub fn buffer_status(&self) -> BufferStatus {
        let retx_bytes: u64 = self
            .retxq
            .iter()
            .map(|p| p.seg.len as u64 + self.cfg.header_bytes as u64)
            .sum();
        let ctrl: u64 = self.ctrlq.iter().map(|&b| b as u64).sum();
        BufferStatus {
            bytes_per_priority: self.txq.bytes_per_priority(),
            ctrl_and_retx_bytes: ctrl + retx_bytes,
        }
    }

    /// The eq. (2) user priority (Tx Q only).
    pub fn head_priority(&self) -> Option<Priority> {
        self.txq.head_priority()
    }

    /// Total pending bytes (ctrl + retx + Tx Q) — equals
    /// `buffer_status().total()` without materialising the per-priority
    /// vector, for the per-TTI MAC input scan.
    pub fn pending_bytes(&self) -> u64 {
        let retx_bytes: u64 = self
            .retxq
            .iter()
            .map(|p| p.seg.len as u64 + self.cfg.header_bytes as u64)
            .sum();
        let ctrl: u64 = self.ctrlq.iter().map(|&b| b as u64).sum();
        ctrl + retx_bytes + self.txq.queued_bytes()
    }

    /// Unacknowledged PDUs in flight.
    pub fn in_flight(&self) -> usize {
        self.flight.len()
    }

    /// Oldest head-of-line arrival across the Tx queue.
    pub fn oldest_head_arrival(&self) -> Option<Time> {
        self.txq.oldest_head_arrival()
    }

    /// Whether every queue is drained and nothing is unacknowledged.
    pub fn is_idle(&self) -> bool {
        self.txq.is_empty() && self.retxq.is_empty() && self.ctrlq.is_empty()
    }

    /// Whether the entity is fully quiescent: all queues drained, nothing
    /// in flight, and no poll timer pending. A quiescent entity's
    /// [`AmTx::on_tick`] is a no-op at every future instant, so virtual
    /// time may skip over it without changing behaviour; a non-quiescent
    /// one still needs dense ticks (the poll timer self-arms or fires).
    pub fn is_quiescent(&self) -> bool {
        self.is_idle() && self.flight.is_empty() && self.poll_outstanding.is_none()
    }

    /// Current Tx-Q capacity in SDUs.
    pub fn capacity_sdus(&self) -> usize {
        self.txq.capacity()
    }

    /// Queued Tx-Q SDUs (whole + partial; excludes retx/ctrl PDUs).
    pub fn len_sdus(&self) -> usize {
        self.txq.len_sdus()
    }

    /// Clamp the Tx Q to `capacity_sdus` (mid-run buffer shrink),
    /// shedding overflow worst-priority first. Returns `(sdus, bytes)`
    /// shed.
    pub fn set_capacity(&mut self, capacity_sdus: usize) -> (u64, u64) {
        let evicted = self.txq.set_capacity(capacity_sdus);
        let bytes: u64 = evicted.iter().map(|s| s.remaining() as u64).sum();
        self.dropped_sdus += evicted.len() as u64;
        (evicted.len() as u64, bytes)
    }

    /// RLC re-establishment (TS 36.322 §5.4): discard all queues and
    /// in-flight state, reset sequence numbers and timers. Upper layers
    /// (TCP) refill via retransmission. Returns `(sdus, bytes)` flushed
    /// (Tx-Q SDUs plus retransmission-queue PDUs).
    pub fn reestablish(&mut self) -> (u64, u64) {
        let flushed = self.txq.flush();
        let mut bytes: u64 = flushed.iter().map(|s| s.remaining() as u64).sum();
        let mut sdus = flushed.len() as u64;
        for p in self.retxq.drain(..) {
            bytes += p.seg.len as u64;
            sdus += 1;
        }
        self.ctrlq.clear();
        self.flight.clear();
        self.next_sn = 0;
        self.pdus_since_poll = 0;
        self.poll_outstanding = None;
        (sdus, bytes)
    }
}

#[derive(Debug, Clone)]
struct RxPartial {
    received: u32,
    next_offset: u32,
    sdu_len: u32,
    flow_id: u64,
    seq: u64,
}

/// AM receiving entity (UE side for downlink).
#[derive(Debug, Clone)]
pub struct AmRx {
    cfg: AmConfig,
    /// Buffered out-of-order PDUs awaiting in-order delivery.
    window: BTreeMap<u32, AmPdu>,
    rx_next: u32,
    highest_seen: Option<u32>,
    /// Keyed by SDU id, ordered for deterministic traversal (outran-lint D2).
    partials: BTreeMap<u64, RxPartial>,
    last_status_at: Option<Time>,
    status_requested: bool,
    /// SDUs delivered in order.
    pub delivered_count: u64,
}

impl AmRx {
    /// Create a receiver.
    pub fn new(cfg: AmConfig) -> AmRx {
        AmRx {
            cfg,
            window: BTreeMap::new(),
            rx_next: 0,
            highest_seen: None,
            partials: BTreeMap::new(),
            last_status_at: None,
            status_requested: false,
            delivered_count: 0,
        }
    }

    /// Process one arriving data PDU; returns SDUs that completed
    /// *in order*, plus a STATUS PDU when polled and permitted by
    /// t-StatusProhibit.
    pub fn on_pdu(&mut self, pdu: AmPdu, now: Time) -> (Vec<DeliveredSdu>, Option<StatusPdu>) {
        if pdu.poll {
            self.status_requested = true;
        }
        self.highest_seen = Some(self.highest_seen.map_or(pdu.sn, |h| h.max(pdu.sn)));
        if pdu.sn >= self.rx_next {
            self.window.entry(pdu.sn).or_insert(pdu);
        }
        // In-order delivery: drain the contiguous prefix of the window.
        let mut delivered = Vec::new();
        while let Some(p) = self.window.remove(&self.rx_next) {
            self.rx_next = self.rx_next.wrapping_add(1);
            if let Some(d) = self.reassemble(&p.seg) {
                delivered.push(d);
            }
        }
        self.delivered_count += delivered.len() as u64;
        let status = self.maybe_status(now);
        (delivered, status)
    }

    fn reassemble(&mut self, seg: &RlcSegment) -> Option<DeliveredSdu> {
        if seg.is_whole() {
            return Some(DeliveredSdu {
                sdu_id: seg.sdu_id,
                flow_id: seg.flow_id,
                len: seg.sdu_len,
                seq: seg.seq,
            });
        }
        let p = self.partials.entry(seg.sdu_id).or_insert(RxPartial {
            received: 0,
            next_offset: 0,
            sdu_len: seg.sdu_len,
            flow_id: seg.flow_id,
            seq: seg.seq - seg.offset as u64,
        });
        // AM delivers PDUs in SN order, so segments arrive in offset order.
        debug_assert_eq!(seg.offset, p.next_offset, "AM segments must be in order");
        p.received += seg.len;
        p.next_offset += seg.len;
        if p.received == p.sdu_len {
            self.partials.remove(&seg.sdu_id).map(|p| DeliveredSdu {
                sdu_id: seg.sdu_id,
                flow_id: p.flow_id,
                len: p.sdu_len,
                seq: p.seq,
            })
        } else {
            None
        }
    }

    fn maybe_status(&mut self, now: Time) -> Option<StatusPdu> {
        if !self.status_requested {
            return None;
        }
        if let Some(last) = self.last_status_at {
            if now.saturating_since(last) < self.cfg.t_status_prohibit {
                return None; // prohibited; will fire on a later PDU/poll
            }
        }
        self.status_requested = false;
        self.last_status_at = Some(now);
        Some(self.build_status())
    }

    /// Build the current STATUS PDU (cumulative ACK + gap NACKs).
    pub fn build_status(&self) -> StatusPdu {
        let mut nacks = Vec::new();
        if let Some(high) = self.highest_seen {
            for sn in self.rx_next..=high {
                if !self.window.contains_key(&sn) {
                    nacks.push(sn);
                }
            }
        }
        StatusPdu {
            // Everything up to the highest seen is covered by the report:
            // received SNs are implicitly ACKed, gaps are NACKed.
            ack_sn: self.highest_seen.map_or(0, |h| h + 1),
            nacks,
        }
    }

    /// Next in-sequence SN expected.
    pub fn rx_next(&self) -> u32 {
        self.rx_next
    }

    /// Payload bytes currently held (out-of-order window + partial
    /// reassemblies).
    pub fn held_bytes(&self) -> u64 {
        self.window.values().map(|p| p.seg.len as u64).sum::<u64>()
            + self
                .partials
                .values()
                .map(|p| p.received as u64)
                .sum::<u64>()
    }

    /// RLC re-establishment: drop the reordering window and partial
    /// reassemblies, reset sequence state to match a re-established
    /// transmitter. Returns `(sdus, bytes)` discarded.
    pub fn reestablish(&mut self) -> (u64, u64) {
        let sdus = (self.window.len() + self.partials.len()) as u64;
        let bytes = self.held_bytes();
        self.window.clear();
        self.partials.clear();
        self.rx_next = 0;
        self.highest_seen = None;
        self.last_status_at = None;
        self.status_requested = false;
        (sdus, bytes)
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl StatusPdu {
    /// Serialize the STATUS PDU (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.ack_sn);
        w.seq(self.nacks.iter(), |w, &sn| w.u32(sn));
    }

    /// Restore a STATUS PDU.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<StatusPdu, SnapError> {
        Ok(StatusPdu {
            ack_sn: r.u32()?,
            nacks: r.seq(|r| r.u32())?,
        })
    }
}

impl AmPdu {
    /// Serialize the data PDU (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u32(self.sn);
        self.seg.snap(w);
        w.bool(self.poll);
    }

    /// Restore a data PDU.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<AmPdu, SnapError> {
        Ok(AmPdu {
            sn: r.u32()?,
            seg: RlcSegment::unsnap(r)?,
            poll: r.bool()?,
        })
    }
}

impl AmTx {
    /// Serialize the dynamic transmitter state (checkpointing). The
    /// config is re-established by the caller via [`AmTx::unsnap`].
    pub fn snap(&self, w: &mut SnapWriter) {
        self.txq.snap(w);
        w.seq(self.retxq.iter(), |w, p| p.snap(w));
        w.seq(self.ctrlq.iter(), |w, &b| w.u32(b));
        w.seq(self.flight.iter(), |w, (&sn, (pdu, retx))| {
            w.u32(sn);
            pdu.snap(w);
            w.u8(*retx);
        });
        w.u32(self.next_sn);
        w.u32(self.pdus_since_poll);
        w.opt(&self.poll_outstanding, |w, &t| w.time(t));
        w.u64(self.dropped_pdus);
        w.u64(self.dropped_sdus);
        w.u64(self.retx_count);
    }

    /// Restore a transmitter: `cfg` comes from the run configuration,
    /// everything dynamic from the snapshot.
    pub fn unsnap(cfg: AmConfig, r: &mut SnapReader<'_>) -> Result<AmTx, SnapError> {
        let txq = MlfqQueues::unsnap(r)?;
        let retxq: VecDeque<AmPdu> = r.seq(AmPdu::unsnap)?.into_iter().collect();
        let ctrlq: VecDeque<u32> = r.seq(|r| r.u32())?.into_iter().collect();
        let flight: BTreeMap<u32, (AmPdu, u8)> = r
            .seq(|r| {
                let sn = r.u32()?;
                let pdu = AmPdu::unsnap(r)?;
                let retx = r.u8()?;
                Ok((sn, (pdu, retx)))
            })?
            .into_iter()
            .collect();
        Ok(AmTx {
            cfg,
            txq,
            retxq,
            ctrlq,
            flight,
            next_sn: r.u32()?,
            pdus_since_poll: r.u32()?,
            poll_outstanding: r.opt(|r| r.time())?,
            dropped_pdus: r.u64()?,
            dropped_sdus: r.u64()?,
            retx_count: r.u64()?,
        })
    }
}

impl AmRx {
    /// Serialize the receiver (checkpointing). Both maps iterate in key
    /// order, so the byte stream is deterministic.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.window.iter(), |w, (&sn, pdu)| {
            w.u32(sn);
            pdu.snap(w);
        });
        w.u32(self.rx_next);
        w.opt(&self.highest_seen, |w, &sn| w.u32(sn));
        w.seq(self.partials.iter(), |w, (&id, p)| {
            w.u64(id);
            w.u32(p.received);
            w.u32(p.next_offset);
            w.u32(p.sdu_len);
            w.u64(p.flow_id);
            w.u64(p.seq);
        });
        w.opt(&self.last_status_at, |w, &t| w.time(t));
        w.bool(self.status_requested);
        w.u64(self.delivered_count);
    }

    /// Restore a receiver: `cfg` comes from the run configuration,
    /// everything dynamic from the snapshot.
    pub fn unsnap(cfg: AmConfig, r: &mut SnapReader<'_>) -> Result<AmRx, SnapError> {
        let window: BTreeMap<u32, AmPdu> = r
            .seq(|r| {
                let sn = r.u32()?;
                let pdu = AmPdu::unsnap(r)?;
                Ok((sn, pdu))
            })?
            .into_iter()
            .collect();
        let rx_next = r.u32()?;
        let highest_seen = r.opt(|r| r.u32())?;
        let partials: BTreeMap<u64, RxPartial> = r
            .seq(|r| {
                let id = r.u64()?;
                let p = RxPartial {
                    received: r.u32()?,
                    next_offset: r.u32()?,
                    sdu_len: r.u32()?,
                    flow_id: r.u64()?,
                    seq: r.u64()?,
                };
                Ok((id, p))
            })?
            .into_iter()
            .collect();
        Ok(AmRx {
            cfg,
            window,
            rx_next,
            highest_seen,
            partials,
            last_status_at: r.opt(|r| r.time())?,
            status_requested: r.bool()?,
            delivered_count: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use outran_pdcp::FiveTuple;

    fn sdu(id: u64, len: u32, prio: u8) -> RlcSdu {
        RlcSdu {
            id,
            flow_id: id,
            tuple: FiveTuple::simulated(id, 0),
            len,
            offset: 0,
            priority: Priority(prio),
            arrival: Time::ZERO,
            seq: id * 1_000_000,
        }
    }

    fn cfg0() -> AmConfig {
        AmConfig {
            header_bytes: 0,
            ..AmConfig::default()
        }
    }

    #[test]
    fn pending_bytes_matches_buffer_status_total() {
        let mut tx = AmTx::new(AmConfig::default());
        let mut rx = AmRx::new(AmConfig::default());
        for i in 0..4 {
            tx.write_sdu(sdu(i, 1000, (i % 2) as u8)).unwrap();
        }
        assert_eq!(tx.pending_bytes(), tx.buffer_status().total());
        let (pdus, _, _) = tx.pull(2500, Time::ZERO);
        assert_eq!(tx.pending_bytes(), tx.buffer_status().total());
        // Lose the first PDU so a retx lands on the queues too.
        let mut status = None;
        for p in pdus.into_iter().skip(1) {
            let (_, s) = rx.on_pdu(p, Time::ZERO);
            if let Some(s) = s {
                status = Some(s);
            }
        }
        if let Some(s) = status {
            tx.on_status(&s);
        }
        assert_eq!(tx.pending_bytes(), tx.buffer_status().total());
    }

    #[test]
    fn lossless_roundtrip_in_order() {
        let mut tx = AmTx::new(cfg0());
        let mut rx = AmRx::new(cfg0());
        for i in 0..10 {
            tx.write_sdu(sdu(i, 1000, 0)).unwrap();
        }
        let (pdus, _, _) = tx.pull(100_000, Time::ZERO);
        assert_eq!(pdus.len(), 10);
        let mut delivered = 0;
        for p in pdus {
            let (d, status) = rx.on_pdu(p, Time::ZERO);
            delivered += d.len();
            if let Some(s) = status {
                tx.on_status(&s);
            }
        }
        assert_eq!(delivered, 10);
    }

    #[test]
    fn loss_triggers_nack_and_retx() {
        let mut tx = AmTx::new(cfg0());
        let mut rx = AmRx::new(cfg0());
        for i in 0..4 {
            tx.write_sdu(sdu(i, 1000, 0)).unwrap();
        }
        let (pdus, _, _) = tx.pull(100_000, Time::ZERO);
        assert_eq!(pdus.len(), 4);
        // Lose PDU sn=1.
        let mut status = None;
        for (i, p) in pdus.into_iter().enumerate() {
            if i == 1 {
                continue;
            }
            let (_, s) = rx.on_pdu(p, Time::from_millis(i as u64 * 20));
            if s.is_some() {
                status = s;
            }
        }
        let status = status.expect("poll-on-drain must elicit a status");
        assert!(status.nacks.contains(&1), "nacks={:?}", status.nacks);
        tx.on_status(&status);
        // The NACKed PDU goes out ahead of nothing else and completes.
        let (retx, _, _) = tx.pull(100_000, Time::from_millis(100));
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].sn, 1);
        assert_eq!(tx.retx_count, 1);
        let (d, _) = rx.on_pdu(retx[0].clone(), Time::from_millis(101));
        // In-order delivery releases SDU 1,2,3 all at once.
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn ctrl_beats_retx_beats_tx() {
        let mut tx = AmTx::new(cfg0());
        // Seed a NACKed PDU into retx.
        tx.write_sdu(sdu(0, 500, 0)).unwrap();
        let (p0, _, _) = tx.pull(100_000, Time::ZERO);
        tx.on_status(&StatusPdu {
            ack_sn: 1,
            nacks: vec![0],
        });
        assert_eq!(p0.len(), 1);
        // Fresh data + a ctrl PDU.
        tx.write_sdu(sdu(1, 500, 0)).unwrap();
        tx.queue_ctrl_pdu(10);
        let bs = tx.buffer_status();
        assert!(bs.ctrl_and_retx_bytes >= 510);
        // Tiny budget: only ctrl fits.
        let (pdus, ctrl, used) = tx.pull(10, Time::ZERO);
        assert_eq!(ctrl, 10);
        assert_eq!(used, 10);
        assert!(pdus.is_empty());
        // Next budget: retx first, then fresh.
        let (pdus2, _, _) = tx.pull(100_000, Time::ZERO);
        assert_eq!(pdus2[0].sn, 0, "retx must precede new data");
        assert_eq!(pdus2[1].sn, 1);
    }

    #[test]
    fn out_of_order_held_until_gap_fills() {
        let mut tx = AmTx::new(cfg0());
        let mut rx = AmRx::new(cfg0());
        for i in 0..3 {
            tx.write_sdu(sdu(i, 100, 0)).unwrap();
        }
        let (pdus, _, _) = tx.pull(100_000, Time::ZERO);
        // Deliver 2 first: nothing released.
        let (d2, _) = rx.on_pdu(pdus[2].clone(), Time::ZERO);
        assert!(d2.is_empty());
        let (d0, _) = rx.on_pdu(pdus[0].clone(), Time::ZERO);
        assert_eq!(d0.len(), 1);
        let (d1, _) = rx.on_pdu(pdus[1].clone(), Time::ZERO);
        assert_eq!(d1.len(), 2, "gap fill releases the held PDU too");
    }

    #[test]
    fn max_retx_drops_pdu() {
        let mut cfg = cfg0();
        cfg.max_retx = 1;
        let mut tx = AmTx::new(cfg);
        tx.write_sdu(sdu(0, 100, 0)).unwrap();
        let _ = tx.pull(100_000, Time::ZERO);
        let nack = StatusPdu {
            ack_sn: 1,
            nacks: vec![0],
        };
        tx.on_status(&nack); // retx 1 queued
        let _ = tx.pull(100_000, Time::ZERO);
        tx.on_status(&nack); // exceeds max_retx => dropped
        assert_eq!(tx.dropped_pdus, 1);
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn status_prohibit_rate_limits() {
        let mut cfg = cfg0();
        cfg.poll_pdu = 1; // poll on every PDU
        cfg.t_status_prohibit = Dur::from_millis(10);
        let mut tx = AmTx::new(cfg);
        let mut rx = AmRx::new(cfg);
        for i in 0..5 {
            tx.write_sdu(sdu(i, 100, 0)).unwrap();
        }
        let (pdus, _, _) = tx.pull(100_000, Time::ZERO);
        let mut statuses = 0;
        for (i, p) in pdus.into_iter().enumerate() {
            // All within 5 ms => only the first status escapes.
            let (_, s) = rx.on_pdu(p, Time::from_millis(i as u64));
            statuses += s.is_some() as u32;
        }
        assert_eq!(statuses, 1);
    }

    #[test]
    fn poll_retransmit_timer_repolls() {
        let mut cfg = cfg0();
        cfg.t_poll_retransmit = Dur::from_millis(20);
        let mut tx = AmTx::new(cfg);
        tx.write_sdu(sdu(0, 100, 0)).unwrap();
        let (pdus, _, _) = tx.pull(100_000, Time::ZERO);
        assert!(pdus[0].poll, "drain poll expected");
        // STATUS never arrives; timer expires.
        tx.on_tick(Time::from_millis(25));
        let (re, _, _) = tx.pull(100_000, Time::from_millis(26));
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].sn, 0);
        assert!(re[0].poll);
    }

    #[test]
    fn segmentation_respected_by_am() {
        let mut tx = AmTx::new(cfg0());
        let mut rx = AmRx::new(cfg0());
        tx.write_sdu(sdu(0, 3000, 0)).unwrap();
        let mut delivered = Vec::new();
        for tti in 0..5 {
            let (pdus, _, _) = tx.pull(1000, Time::from_millis(tti));
            for p in pdus {
                let (d, s) = rx.on_pdu(p, Time::from_millis(tti));
                delivered.extend(d);
                if let Some(s) = s {
                    tx.on_status(&s);
                }
            }
        }
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].len, 3000);
    }
}
