//! Property tests for the per-UE subband metric cache: a scheduler fed
//! a *versioned* rate source (cache hits whenever CQI and queue state
//! are unchanged) must produce exactly the allocations of the same
//! scheduler fed an *unversioned* source (every row recomputed from
//! scratch each TTI), across random CQI mutations, link drops, GBR
//! reservations and queue-priority churn.

use outran_mac::{MtScheduler, OutRanScheduler, PfScheduler, RateSource, Scheduler, UeTti};
use outran_pdcp::Priority;
use outran_simcore::{Dur, Rng, Time};
use proptest::prelude::*;

/// A mutable rate world. `versioned = true` exposes per-UE content
/// versions (enabling the scheduler-side cache); `false` hides them,
/// forcing the from-scratch path. Both views always serve identical
/// rates.
#[derive(Clone)]
struct World {
    n_ues: usize,
    n_sb: usize,
    rb_to_sb: Vec<usize>,
    per_ue_sb: Vec<f64>,
    reserved: Vec<bool>,
    versions: Vec<u64>,
    versioned: bool,
}

impl World {
    fn new(n_ues: usize, n_sb: usize, rbs_per_sb: usize) -> World {
        World {
            n_ues,
            n_sb,
            rb_to_sb: (0..n_sb * rbs_per_sb).map(|rb| rb / rbs_per_sb).collect(),
            per_ue_sb: vec![0.0; n_ues * n_sb],
            reserved: vec![false; n_sb * rbs_per_sb],
            versions: vec![0; n_ues],
            versioned: true,
        }
    }

    /// Rewrite one UE's CQI row and bump its version.
    fn mutate_row(&mut self, ue: usize, rng: &mut Rng) {
        for sb in 0..self.n_sb {
            // Rate 0 (ineligible) with 20% odds, else a positive rate.
            self.per_ue_sb[ue * self.n_sb + sb] = if rng.chance(0.2) {
                0.0
            } else {
                rng.range_f64(8.0, 5000.0)
            };
        }
        self.versions[ue] += 1;
    }

    fn unversioned(&self) -> World {
        let mut w = self.clone();
        w.versioned = false;
        w
    }
}

impl RateSource for World {
    fn rate(&self, ue: usize, rb: u16) -> f64 {
        if self.reserved[rb as usize] {
            return 0.0;
        }
        self.per_ue_sb[ue * self.n_sb + self.rb_to_sb[rb as usize]]
    }
    fn n_rbs(&self) -> u16 {
        self.rb_to_sb.len() as u16
    }
    fn n_ues(&self) -> usize {
        self.n_ues
    }
    fn n_subbands(&self) -> usize {
        self.n_sb
    }
    fn subband_of(&self, rb: u16) -> usize {
        self.rb_to_sb[rb as usize]
    }
    fn rate_in_subband(&self, ue: usize, sb: usize) -> f64 {
        self.per_ue_sb[ue * self.n_sb + sb]
    }
    fn rb_reserved(&self, rb: u16) -> bool {
        self.reserved[rb as usize]
    }
    fn rates_version(&self, ue: usize) -> Option<u64> {
        self.versioned.then(|| self.versions[ue])
    }
}

fn random_ues(n: usize, rng: &mut Rng) -> Vec<UeTti> {
    (0..n)
        .map(|_| {
            if rng.chance(0.25) {
                UeTti::idle()
            } else {
                UeTti {
                    active: true,
                    head_priority: rng.chance(0.8).then(|| Priority(rng.below(4) as u8)),
                    queued_bytes: 1 + rng.below(100_000),
                    oracle_min_remaining: None,
                    hol_delay: Dur::ZERO,
                    oracle_has_qos_flow: false,
                }
            }
        })
        .collect()
}

/// Drive `cached` (versioned source) and `fresh` (unversioned source)
/// through `rounds` TTIs of random world churn; their allocations and
/// serve feedback must stay identical throughout.
fn run_world(
    mut cached: Box<dyn Scheduler>,
    mut fresh: Box<dyn Scheduler>,
    n_ues: usize,
    n_sb: usize,
    rbs_per_sb: usize,
    rounds: u32,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut rng = Rng::new(seed);
    let mut world = World::new(n_ues, n_sb, rbs_per_sb);
    for ue in 0..n_ues {
        world.mutate_row(ue, &mut rng);
    }
    let mut now = Time::ZERO;
    for round in 0..rounds {
        now += Dur::from_millis(1);
        // CQI churn: most rounds leave most rows untouched (cache hits).
        for ue in 0..n_ues {
            if rng.chance(0.3) {
                world.mutate_row(ue, &mut rng);
            }
        }
        // Link drop/restore: a zeroed row with its own version.
        if rng.chance(0.15) {
            let ue = rng.index(n_ues);
            for sb in 0..n_sb {
                world.per_ue_sb[ue * n_sb + sb] = 0.0;
            }
            world.versions[ue] += 1;
        }
        // GBR reservations move every round *without* a version bump —
        // the cache must stay correct because cached metrics are
        // reservation-independent and reserved RBs are skipped.
        for r in world.reserved.iter_mut() {
            *r = rng.chance(0.2);
        }
        let ues = random_ues(n_ues, &mut rng);
        let a = cached.allocate(now, &ues, &world);
        let b = fresh.allocate(now, &ues, &world.unversioned());
        prop_assert_eq!(
            &a.rb_to_ue,
            &b.rb_to_ue,
            "round {}: cached {:?} != fresh {:?}",
            round,
            a.rb_to_ue,
            b.rb_to_ue
        );
        prop_assert_eq!(
            &a.bits_per_ue,
            &b.bits_per_ue,
            "round {}: bits diverged",
            round
        );
        // Identical serve feedback keeps the PF EWMA states in lockstep.
        cached.on_served(&a.bits_per_ue);
        fresh.on_served(&b.bits_per_ue);
    }
    Ok(())
}

const TF: Dur = Dur::from_millis(1000);
const TTI: Dur = Dur::from_millis(1);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_pf_matches_from_scratch(
        n_ues in 2usize..7,
        n_sb in 1usize..6,
        rbs_per_sb in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        run_world(
            Box::new(PfScheduler::with_tf(n_ues, TF, TTI)),
            Box::new(PfScheduler::with_tf(n_ues, TF, TTI)),
            n_ues, n_sb, rbs_per_sb, 40, seed,
        )?;
    }

    #[test]
    fn cached_outran_matches_from_scratch(
        n_ues in 2usize..7,
        n_sb in 1usize..6,
        rbs_per_sb in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        run_world(
            Box::new(OutRanScheduler::over_pf(n_ues, TF, TTI, 0.2)),
            Box::new(OutRanScheduler::over_pf(n_ues, TF, TTI, 0.2)),
            n_ues, n_sb, rbs_per_sb, 40, seed,
        )?;
    }

    #[test]
    fn cached_mt_matches_per_rb_brute_force(
        n_ues in 2usize..7,
        n_sb in 1usize..6,
        rbs_per_sb in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        // MT is stateless, so the reference can be rebuilt from first
        // principles: per-RB strict argmax over positive rates.
        let mut rng = Rng::new(seed);
        let mut world = World::new(n_ues, n_sb, rbs_per_sb);
        let mut mt = MtScheduler::default();
        let mut now = Time::ZERO;
        for _ in 0..40 {
            now += Dur::from_millis(1);
            for ue in 0..n_ues {
                if rng.chance(0.4) {
                    world.mutate_row(ue, &mut rng);
                }
            }
            for r in world.reserved.iter_mut() {
                *r = rng.chance(0.2);
            }
            let ues = random_ues(n_ues, &mut rng);
            let got = mt.allocate(now, &ues, &world);
            let want: Vec<Option<u16>> = (0..world.n_rbs())
                .map(|rb| {
                    let mut best = None;
                    let mut best_r = 0.0;
                    for (u, ue) in ues.iter().enumerate() {
                        if !ue.active {
                            continue;
                        }
                        let r = world.rate(u, rb);
                        if r > best_r {
                            best_r = r;
                            best = Some(u as u16);
                        }
                    }
                    best
                })
                .collect();
            prop_assert_eq!(&got.rb_to_ue, &want);
        }
    }
}
