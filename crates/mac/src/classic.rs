//! Additional classic LTE downlink schedulers from the survey the paper
//! builds on (Capozzi et al. \[24\]): Blind Equal Throughput and Modified
//! Largest Weighted Delay First. Neither is flow-aware; both are useful
//! reference points between RR and the QoS-aware baselines.

use outran_simcore::{Dur, Ewma, Time};

use crate::types::{Allocation, RateSource, Scheduler, SnapError, SnapReader, SnapWriter, UeTti};

/// Blind Equal Throughput: metric `1 / r̃_u` — equalises *throughput*
/// across users regardless of channel (unlike PF, which equalises a
/// channel-normalised share). Costs spectral efficiency to lift
/// cell-edge users.
#[derive(Debug, Clone)]
pub struct BetScheduler {
    avg: Vec<Ewma>,
}

impl BetScheduler {
    /// Create for `n_ues` with averaging window `tf` at TTI `tti`.
    pub fn new(n_ues: usize, tf: Dur, tti: Dur) -> BetScheduler {
        let window = (tf.as_nanos() / tti.as_nanos()).max(1);
        BetScheduler {
            avg: vec![Ewma::from_window(window); n_ues],
        }
    }
}

impl Scheduler for BetScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let n_rbs = rates.n_rbs();
        let mut alloc = Allocation::empty(n_rbs, ues.len());
        for rb in 0..n_rbs {
            let mut best: Option<(usize, f64, f64)> = None;
            for (u, ue) in ues.iter().enumerate() {
                if !ue.active {
                    continue;
                }
                let r = rates.rate(u, rb);
                if r <= 0.0 {
                    continue;
                }
                let avg = self.avg[u].get();
                let m = if avg <= 0.0 { f64::INFINITY } else { 1.0 / avg };
                if best.is_none_or(|(_, bm, _)| m > bm) {
                    best = Some((u, m, r));
                }
            }
            if let Some((u, _, r)) = best {
                alloc.assign(rb, u as u16, r);
            }
        }
        alloc
    }

    fn on_served(&mut self, served_bits: &[f64]) {
        for (e, &s) in self.avg.iter_mut().zip(served_bits) {
            e.update(s);
        }
    }

    fn on_idle(&mut self, k: u64) {
        for e in &mut self.avg {
            e.decay(k);
        }
    }

    fn name(&self) -> &'static str {
        "BET"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.avg.iter(), |w, e| e.snap(w));
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let avg = r.seq(Ewma::unsnap)?;
        if avg.len() != self.avg.len() {
            return Err(SnapError::Malformed("BET UE count mismatch"));
        }
        self.avg = avg;
        Ok(())
    }
}

/// Modified Largest Weighted Delay First: metric
/// `a_u · d_HOL(u) · r_{u,b} / r̃_u` with `a_u = −log(δ)/τ` from the
/// class's delay budget τ and violation probability δ. Head-of-line
/// delay multiplies the PF metric, so queues that have waited longest
/// win ties — a delay-aware PF without flow-size knowledge.
#[derive(Debug, Clone)]
pub struct MlwdfScheduler {
    avg: Vec<Ewma>,
    /// Per-class weight `a = −log(δ)/τ` (1/s).
    weight: f64,
}

impl MlwdfScheduler {
    /// Create with delay budget `tau` and violation probability `delta`.
    pub fn new(n_ues: usize, tf: Dur, tti: Dur, tau: Dur, delta: f64) -> MlwdfScheduler {
        assert!(delta > 0.0 && delta < 1.0);
        let window = (tf.as_nanos() / tti.as_nanos()).max(1);
        MlwdfScheduler {
            avg: vec![Ewma::from_window(window); n_ues],
            weight: -delta.ln() / tau.as_secs_f64(),
        }
    }

    /// The default 3GPP-ish parametrisation: τ = 100 ms, δ = 0.05.
    pub fn with_defaults(n_ues: usize, tf: Dur, tti: Dur) -> MlwdfScheduler {
        MlwdfScheduler::new(n_ues, tf, tti, Dur::from_millis(100), 0.05)
    }
}

impl Scheduler for MlwdfScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let n_rbs = rates.n_rbs();
        let mut alloc = Allocation::empty(n_rbs, ues.len());
        for rb in 0..n_rbs {
            let mut best: Option<(usize, f64, f64)> = None;
            for (u, ue) in ues.iter().enumerate() {
                if !ue.active {
                    continue;
                }
                let r = rates.rate(u, rb);
                if r <= 0.0 {
                    continue;
                }
                let avg = self.avg[u].get();
                let pf = if avg <= 0.0 { r * 1e9 } else { r / avg };
                // +1 TTI so a freshly arrived queue is not zero-weighted.
                let hol = ue.hol_delay.as_secs_f64() + 1e-3;
                let m = self.weight * hol * pf;
                if best.is_none_or(|(_, bm, _)| m > bm) {
                    best = Some((u, m, r));
                }
            }
            if let Some((u, _, r)) = best {
                alloc.assign(rb, u as u16, r);
            }
        }
        alloc
    }

    fn on_served(&mut self, served_bits: &[f64]) {
        for (e, &s) in self.avg.iter_mut().zip(served_bits) {
            e.update(s);
        }
    }

    fn on_idle(&mut self, k: u64) {
        for e in &mut self.avg {
            e.decay(k);
        }
    }

    fn name(&self) -> &'static str {
        "M-LWDF"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // `weight` is config-derived; only the averages move.
        w.seq(self.avg.iter(), |w, e| e.snap(w));
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let avg = r.seq(Ewma::unsnap)?;
        if avg.len() != self.avg.len() {
            return Err(SnapError::Malformed("M-LWDF UE count mismatch"));
        }
        self.avg = avg;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FlatRates;

    fn active(n: usize) -> Vec<UeTti> {
        (0..n)
            .map(|_| UeTti {
                active: true,
                queued_bytes: 100_000,
                ..UeTti::idle()
            })
            .collect()
    }

    #[test]
    fn bet_equalizes_throughput_not_airtime() {
        let mut bet = BetScheduler::new(2, Dur::from_millis(200), Dur::from_millis(1));
        let rates = FlatRates {
            per_ue: vec![300.0, 100.0], // 3:1 channel disparity
            rbs: 12,
        };
        let ues = active(2);
        let mut totals = [0.0f64; 2];
        for _ in 0..2000 {
            let a = bet.allocate(Time::ZERO, &ues, &rates);
            totals[0] += a.bits_per_ue[0];
            totals[1] += a.bits_per_ue[1];
            bet.on_served(&a.bits_per_ue);
        }
        let ratio = totals[0] / totals[1];
        assert!(
            (0.8..1.25).contains(&ratio),
            "BET must equalise throughput: ratio={ratio}"
        );
    }

    #[test]
    fn mlwdf_prefers_stale_queue() {
        let mut s = MlwdfScheduler::with_defaults(2, Dur::from_millis(200), Dur::from_millis(1));
        s.on_served(&[1000.0, 1000.0]); // equal PF averages
        let rates = FlatRates {
            per_ue: vec![100.0, 100.0],
            rbs: 4,
        };
        let mut ues = active(2);
        ues[0].hol_delay = Dur::from_millis(2);
        ues[1].hol_delay = Dur::from_millis(80);
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }

    #[test]
    fn mlwdf_still_channel_aware() {
        let mut s = MlwdfScheduler::with_defaults(2, Dur::from_millis(200), Dur::from_millis(1));
        s.on_served(&[1000.0, 1000.0]);
        let rates = FlatRates {
            per_ue: vec![1000.0, 10.0], // 100x channel gap
            rbs: 4,
        };
        let mut ues = active(2);
        // Mild delay difference cannot overcome a 100x channel gap.
        ues[0].hol_delay = Dur::from_millis(5);
        ues[1].hol_delay = Dur::from_millis(10);
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(0)));
    }

    #[test]
    fn skip_inactive_and_zero_rate() {
        let mut bet = BetScheduler::new(3, Dur::from_millis(100), Dur::from_millis(1));
        let mut ues = active(3);
        ues[0].active = false;
        let rates = FlatRates {
            per_ue: vec![100.0, 0.0, 50.0],
            rbs: 4,
        };
        let a = bet.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(2)));
    }

    #[test]
    #[should_panic]
    fn mlwdf_rejects_bad_delta() {
        let _ = MlwdfScheduler::new(
            1,
            Dur::from_millis(100),
            Dur::from_millis(1),
            Dur::from_millis(100),
            1.5,
        );
    }
}
