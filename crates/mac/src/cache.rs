//! Incremental per-UE scheduler-metric cache over CQI subbands.
//!
//! The per-RB metric architecture of §4.1 is O(|U|·|B|) per TTI, but two
//! structural facts make most of that work redundant:
//!
//! 1. Reported rates are constant across the RBs of a CQI **subband**
//!    ([`RateSource::subband_of`]), so a metric that depends only on
//!    `(ue, rate)` takes at most `|U| × |SB|` distinct values per TTI.
//! 2. CQI reports arrive on a multi-TTI cadence
//!    ([`RateSource::rates_version`]), and PF's EWMA only moves when the
//!    UE's average actually changes, so most `(ue, subband)` rows are
//!    unchanged between consecutive TTIs.
//!
//! [`SubbandMetricCache`] exploits both: it keeps a `|U| × |SB|` matrix
//! of metric values plus a per-UE `(rates_version, metric_rev)` key, and
//! only recomputes the rows whose key changed. Ineligible entries
//! (rate ≤ 0) are stored as [`f64::NEG_INFINITY`] so a strict-`>` argmax
//! over rows folds the eligibility test into the comparison — `-inf`
//! can never beat an eligible metric (metrics are strictly positive for
//! eligible UEs) and never enters an ε-band whose floor is ≥ 0.

use crate::types::{Allocation, RateSource};

/// A `|U| × |SB|` matrix of cached metric values with per-UE validity
/// keys. See the module docs for the invalidation contract.
#[derive(Debug, Clone, Default)]
pub struct SubbandMetricCache {
    n_sb: usize,
    rows: Vec<f64>,
    keys: Vec<Option<(u64, u64)>>,
    /// Rows served from cache since construction (diagnostics).
    pub hits: u64,
    /// Rows recomputed since construction (diagnostics).
    pub misses: u64,
}

impl SubbandMetricCache {
    /// An empty cache; sizes itself on first [`SubbandMetricCache::refresh`].
    pub fn new() -> SubbandMetricCache {
        SubbandMetricCache::default()
    }

    /// Bring the matrix up to date for this TTI.
    ///
    /// `metric_rev(ue)` must change whenever the scheduler-side state
    /// behind `metric` changes for that UE (e.g. PF's EWMA average);
    /// `metric(ue, rate)` computes the per-RB metric for a strictly
    /// positive rate. A UE's row is recomputed when either its rate row
    /// version ([`RateSource::rates_version`]) or its metric revision
    /// moved — or always, for sources that report no version.
    pub fn refresh(
        &mut self,
        rates: &dyn RateSource,
        metric_rev: impl Fn(usize) -> u64,
        metric: impl Fn(usize, f64) -> f64,
    ) {
        let n_ues = rates.n_ues();
        let n_sb = rates.n_subbands();
        if self.n_sb != n_sb || self.keys.len() != n_ues {
            self.n_sb = n_sb;
            self.rows = vec![f64::NEG_INFINITY; n_ues * n_sb];
            self.keys = vec![None; n_ues];
        }
        for ue in 0..n_ues {
            let key = rates.rates_version(ue).map(|rv| (rv, metric_rev(ue)));
            if key.is_some() && key == self.keys[ue] {
                self.hits += 1;
                continue;
            }
            self.misses += 1;
            self.keys[ue] = key;
            for sb in 0..n_sb {
                let r = rates.rate_in_subband(ue, sb);
                self.rows[ue * n_sb + sb] = if r > 0.0 {
                    metric(ue, r)
                } else {
                    f64::NEG_INFINITY
                };
            }
        }
    }

    /// The cached metric for `(ue, sb)`; [`f64::NEG_INFINITY`] when the
    /// UE has no usable rate there.
    pub fn metric(&self, ue: usize, sb: usize) -> f64 {
        self.rows[ue * self.n_sb + sb]
    }
}

/// Drive a per-subband winner function over the RB grid.
///
/// Evaluates `winner_of(sb)` once per *contiguous run* of RBs in the
/// same subband (subband ids are monotone in RB), assigns each
/// non-reserved RB of the run to the returned UE at that UE's subband
/// rate, and skips reserved RBs. Keeping the per-RB `assign` loop (one
/// f64 add per RB) preserves the exact accumulation order of the old
/// per-RB schedulers, so allocations stay bit-identical.
pub fn allocate_by_subband(
    alloc: &mut Allocation,
    rates: &dyn RateSource,
    mut winner_of: impl FnMut(usize) -> Option<u16>,
) {
    let mut memo: Option<(usize, Option<u16>)> = None;
    for rb in 0..rates.n_rbs() {
        if rates.rb_reserved(rb) {
            continue;
        }
        let sb = rates.subband_of(rb);
        let w = match memo {
            Some((s, w)) if s == sb => w,
            _ => {
                let w = winner_of(sb);
                memo = Some((sb, w));
                w
            }
        };
        if let Some(u) = w {
            alloc.assign(rb, u, rates.rate_in_subband(u as usize, sb));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FlatRates;

    #[test]
    fn caches_rows_when_versions_stable() {
        struct Versioned {
            inner: FlatRates,
            vers: Vec<u64>,
        }
        impl RateSource for Versioned {
            fn rate(&self, ue: usize, rb: u16) -> f64 {
                self.inner.rate(ue, rb)
            }
            fn n_rbs(&self) -> u16 {
                self.inner.n_rbs()
            }
            fn n_ues(&self) -> usize {
                self.inner.n_ues()
            }
            fn rates_version(&self, ue: usize) -> Option<u64> {
                Some(self.vers[ue])
            }
        }
        let mut src = Versioned {
            inner: FlatRates {
                per_ue: vec![10.0, 0.0],
                rbs: 3,
            },
            vers: vec![0, 0],
        };
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&src, |_| 0, |_, r| r * 2.0);
        assert_eq!(cache.metric(0, 1), 20.0);
        assert_eq!(cache.metric(1, 0), f64::NEG_INFINITY);
        assert_eq!(cache.misses, 2);

        cache.refresh(&src, |_| 0, |_, r| r * 2.0);
        assert_eq!(cache.hits, 2);

        // Bump UE 0's rate version: only that row recomputes.
        src.vers[0] = 1;
        src.inner.per_ue[0] = 5.0;
        cache.refresh(&src, |_| 0, |_, r| r * 2.0);
        assert_eq!(cache.metric(0, 0), 10.0);
        assert_eq!(cache.misses, 3);
        assert_eq!(cache.hits, 3);
    }

    #[test]
    fn unversioned_sources_always_recompute() {
        let src = FlatRates {
            per_ue: vec![1.0],
            rbs: 2,
        };
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&src, |_| 0, |_, r| r);
        cache.refresh(&src, |_| 0, |_, r| r);
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn allocate_by_subband_matches_per_rb() {
        let src = FlatRates {
            per_ue: vec![4.0, 8.0],
            rbs: 6,
        };
        let mut alloc = Allocation::empty(6, 2);
        allocate_by_subband(&mut alloc, &src, |_| Some(1));
        assert_eq!(alloc.rbs_used(), 6);
        assert_eq!(alloc.bits_per_ue[1], 48.0);
    }
}
