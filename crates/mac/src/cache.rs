//! Incremental per-UE scheduler-metric cache over CQI subbands.
//!
//! The per-RB metric architecture of §4.1 is O(|U|·|B|) per TTI, but two
//! structural facts make most of that work redundant:
//!
//! 1. Reported rates are constant across the RBs of a CQI **subband**
//!    ([`RateSource::subband_of`]), so a metric that depends only on
//!    `(ue, rate)` takes at most `|U| × |SB|` distinct values per TTI.
//! 2. CQI reports arrive on a multi-TTI cadence
//!    ([`RateSource::rates_version`]), and PF's EWMA only moves when the
//!    UE's average actually changes, so most `(ue, subband)` rows are
//!    unchanged between consecutive TTIs.
//!
//! [`SubbandMetricCache`] exploits both: it keeps a `|SB| × |U|` matrix
//! of metric values plus a per-UE `(rates_version, metric_rev)` key, and
//! only recomputes the rows whose key changed. Ineligible entries
//! (rate ≤ 0) are stored as [`f64::NEG_INFINITY`] so a strict-`>` argmax
//! over rows folds the eligibility test into the comparison — `-inf`
//! can never beat an eligible metric (metrics are strictly positive for
//! eligible UEs) and never enters an ε-band whose floor is ≥ 0.
//!
//! ## Data layout
//!
//! The matrix is stored **subband-major** (`cols[sb * n_ues + ue]`) and
//! the validity keys column-wise (one flat plane per key component), so
//! the schedulers' per-subband argmax scans a contiguous column of
//! `n_ues` doubles — the loop the allocator runs once per subband per
//! TTI — while the refresh writes strided but runs only on version
//! misses. When the [`RateSource`] exposes its backing planes
//! ([`RateSource::planes`]), both refresh and allocation run without any
//! per-element virtual dispatch.

use crate::types::{Allocation, RateSource};

/// A `|SB| × |U|` subband-major matrix of cached metric values with
/// per-UE validity keys. See the module docs for the invalidation
/// contract and layout.
#[derive(Debug, Clone, Default)]
pub struct SubbandMetricCache {
    n_sb: usize,
    n_ues: usize,
    /// Metric planes, subband-major: `cols[sb * n_ues + ue]`.
    cols: Vec<f64>,
    /// Per-UE cached rate-row version (valid when `key_ok`).
    key_rv: Vec<u64>,
    /// Per-UE cached metric revision (valid when `key_ok`).
    key_mr: Vec<u64>,
    /// Whether the UE's key is present (versioned source) at all.
    key_ok: Vec<bool>,
    /// Rows served from cache since construction (diagnostics).
    pub hits: u64,
    /// Rows recomputed since construction (diagnostics).
    pub misses: u64,
}

impl SubbandMetricCache {
    /// An empty cache; sizes itself on first [`SubbandMetricCache::refresh`].
    pub fn new() -> SubbandMetricCache {
        SubbandMetricCache::default()
    }

    fn resize_if_needed(&mut self, n_ues: usize, n_sb: usize) {
        if self.n_sb != n_sb || self.n_ues != n_ues {
            self.n_sb = n_sb;
            self.n_ues = n_ues;
            self.cols = vec![f64::NEG_INFINITY; n_ues * n_sb];
            self.key_rv = vec![0; n_ues];
            self.key_mr = vec![0; n_ues];
            self.key_ok = vec![false; n_ues];
        }
    }

    /// Bring the matrix up to date for this TTI.
    ///
    /// `metric_rev(ue)` must change whenever the scheduler-side state
    /// behind `metric` changes for that UE (e.g. PF's EWMA average);
    /// `metric(ue, rate)` computes the per-RB metric for a strictly
    /// positive rate. A UE's row is recomputed when either its rate row
    /// version ([`RateSource::rates_version`]) or its metric revision
    /// moved — or always, for sources that report no version.
    pub fn refresh(
        &mut self,
        rates: &dyn RateSource,
        metric_rev: impl Fn(usize) -> u64,
        metric: impl Fn(usize, f64) -> f64,
    ) {
        let n_ues = rates.n_ues();
        let n_sb = rates.n_subbands();
        self.resize_if_needed(n_ues, n_sb);
        if let Some(p) = rates.planes() {
            // Flat path: rate rows read straight out of the source's
            // UE-major plane, metrics scattered into the subband-major
            // columns. Same values as the virtual path below.
            for ue in 0..n_ues {
                let rv = p.versions[ue];
                let mr = metric_rev(ue);
                if self.key_ok[ue] && self.key_rv[ue] == rv && self.key_mr[ue] == mr {
                    self.hits += 1;
                    continue;
                }
                self.misses += 1;
                self.key_ok[ue] = true;
                self.key_rv[ue] = rv;
                self.key_mr[ue] = mr;
                let row = &p.per_ue_sb[ue * n_sb..(ue + 1) * n_sb];
                for (sb, &r) in row.iter().enumerate() {
                    self.cols[sb * n_ues + ue] = if r > 0.0 {
                        metric(ue, r)
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
        } else {
            for ue in 0..n_ues {
                match rates.rates_version(ue) {
                    Some(rv) => {
                        let mr = metric_rev(ue);
                        if self.key_ok[ue] && self.key_rv[ue] == rv && self.key_mr[ue] == mr {
                            self.hits += 1;
                            continue;
                        }
                        self.key_ok[ue] = true;
                        self.key_rv[ue] = rv;
                        self.key_mr[ue] = mr;
                    }
                    None => self.key_ok[ue] = false,
                }
                self.misses += 1;
                for sb in 0..n_sb {
                    let r = rates.rate_in_subband(ue, sb);
                    self.cols[sb * n_ues + ue] = if r > 0.0 {
                        metric(ue, r)
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
        }
    }

    /// The cached metric for `(ue, sb)`; [`f64::NEG_INFINITY`] when the
    /// UE has no usable rate there.
    pub fn metric(&self, ue: usize, sb: usize) -> f64 {
        self.cols[sb * self.n_ues + ue]
    }

    /// The contiguous metric column of subband `sb`: one entry per UE.
    /// This is the slice the per-subband argmax loops scan.
    pub fn column(&self, sb: usize) -> &[f64] {
        &self.cols[sb * self.n_ues..(sb + 1) * self.n_ues]
    }

    /// Drop every cached row (all keys invalidated); the matrix refills
    /// on the next [`SubbandMetricCache::refresh`]. Used when UE-side
    /// state changes outside the version contract (tests/faults).
    pub fn invalidate_all(&mut self) {
        self.key_ok.fill(false);
    }
}

/// Drive a per-subband winner function over the RB grid.
///
/// Evaluates `winner_of(sb)` once per *contiguous run* of RBs in the
/// same subband (subband ids are monotone in RB), assigns each
/// non-reserved RB of the run to the returned UE at that UE's subband
/// rate, and skips reserved RBs. The winner's subband rate is looked up
/// once per run (it is constant across the run — that is what a subband
/// is), and the per-RB `assign` loop (one f64 add per RB) preserves the
/// exact accumulation order of the old per-RB schedulers, so
/// allocations stay bit-identical.
pub fn allocate_by_subband(
    alloc: &mut Allocation,
    rates: &dyn RateSource,
    mut winner_of: impl FnMut(usize) -> Option<u16>,
) {
    // Winner and its rate, memoized per contiguous subband run.
    let mut memo: Option<(usize, Option<(u16, f64)>)> = None;
    if let Some(p) = rates.planes() {
        // Flat path: subband map and reservation flags read straight off
        // the source's per-RB planes.
        for (rb, (&sb, &resv)) in p.rb_to_sb.iter().zip(p.reserved.iter()).enumerate() {
            if resv {
                continue;
            }
            let w = match memo {
                Some((s, w)) if s == sb => w,
                _ => {
                    let w = winner_of(sb).map(|u| (u, p.per_ue_sb[u as usize * p.n_sb + sb]));
                    memo = Some((sb, w));
                    w
                }
            };
            if let Some((u, r)) = w {
                alloc.assign(rb as u16, u, r);
            }
        }
    } else {
        for rb in 0..rates.n_rbs() {
            if rates.rb_reserved(rb) {
                continue;
            }
            let sb = rates.subband_of(rb);
            let w = match memo {
                Some((s, w)) if s == sb => w,
                _ => {
                    let w = winner_of(sb).map(|u| (u, rates.rate_in_subband(u as usize, sb)));
                    memo = Some((sb, w));
                    w
                }
            };
            if let Some((u, r)) = w {
                alloc.assign(rb, u, r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::TtiRates;
    use crate::types::FlatRates;

    #[test]
    fn caches_rows_when_versions_stable() {
        struct Versioned {
            inner: FlatRates,
            vers: Vec<u64>,
        }
        impl RateSource for Versioned {
            fn rate(&self, ue: usize, rb: u16) -> f64 {
                self.inner.rate(ue, rb)
            }
            fn n_rbs(&self) -> u16 {
                self.inner.n_rbs()
            }
            fn n_ues(&self) -> usize {
                self.inner.n_ues()
            }
            fn rates_version(&self, ue: usize) -> Option<u64> {
                Some(self.vers[ue])
            }
        }
        let mut src = Versioned {
            inner: FlatRates {
                per_ue: vec![10.0, 0.0],
                rbs: 3,
            },
            vers: vec![0, 0],
        };
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&src, |_| 0, |_, r| r * 2.0);
        assert_eq!(cache.metric(0, 1), 20.0);
        assert_eq!(cache.metric(1, 0), f64::NEG_INFINITY);
        assert_eq!(cache.misses, 2);

        cache.refresh(&src, |_| 0, |_, r| r * 2.0);
        assert_eq!(cache.hits, 2);

        // Bump UE 0's rate version: only that row recomputes.
        src.vers[0] = 1;
        src.inner.per_ue[0] = 5.0;
        cache.refresh(&src, |_| 0, |_, r| r * 2.0);
        assert_eq!(cache.metric(0, 0), 10.0);
        assert_eq!(cache.misses, 3);
        assert_eq!(cache.hits, 3);
    }

    #[test]
    fn unversioned_sources_always_recompute() {
        let src = FlatRates {
            per_ue: vec![1.0],
            rbs: 2,
        };
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&src, |_| 0, |_, r| r);
        cache.refresh(&src, |_| 0, |_, r| r);
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn plane_backed_refresh_matches_virtual_path() {
        // Same source content, one behind planes() and one behind the
        // virtual accessors only: identical cache contents.
        let tti = TtiRates {
            per_ue_sb: vec![10.0, 0.0, 25.0, 40.0, 5.0, 0.0],
            rb_to_sb: vec![0, 0, 1, 1, 2, 2],
            n_sb: 3,
            n_ues: 2,
            reserved: vec![false; 6],
            versions: vec![4, 9],
        };
        struct NoPlanes<'a>(&'a TtiRates);
        impl RateSource for NoPlanes<'_> {
            fn rate(&self, ue: usize, rb: u16) -> f64 {
                self.0.rate(ue, rb)
            }
            fn n_rbs(&self) -> u16 {
                self.0.n_rbs()
            }
            fn n_ues(&self) -> usize {
                self.0.n_ues()
            }
            fn n_subbands(&self) -> usize {
                self.0.n_subbands()
            }
            fn subband_of(&self, rb: u16) -> usize {
                self.0.subband_of(rb)
            }
            fn rate_in_subband(&self, ue: usize, sb: usize) -> f64 {
                self.0.rate_in_subband(ue, sb)
            }
            fn rates_version(&self, ue: usize) -> Option<u64> {
                self.0.rates_version(ue)
            }
        }
        let metric = |u: usize, r: f64| r / (u + 1) as f64;
        let mut flat = SubbandMetricCache::new();
        flat.refresh(&tti, |_| 0, metric);
        let mut virt = SubbandMetricCache::new();
        virt.refresh(&NoPlanes(&tti), |_| 0, metric);
        for ue in 0..2 {
            for sb in 0..3 {
                assert_eq!(
                    flat.metric(ue, sb).to_bits(),
                    virt.metric(ue, sb).to_bits(),
                    "ue {ue} sb {sb}"
                );
            }
        }
        // Second flat refresh with stable versions: all hits.
        flat.refresh(&tti, |_| 0, metric);
        assert_eq!(flat.hits, 2);
    }

    #[test]
    fn columns_are_contiguous_per_subband() {
        let tti = TtiRates {
            per_ue_sb: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            rb_to_sb: vec![0, 1],
            n_sb: 2,
            n_ues: 3,
            reserved: vec![false; 2],
            versions: vec![0; 3],
        };
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&tti, |_| 0, |_, r| r);
        assert_eq!(cache.column(0), &[1.0, 3.0, 5.0]);
        assert_eq!(cache.column(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn invalidate_all_forces_recompute() {
        let tti = TtiRates {
            per_ue_sb: vec![1.0],
            rb_to_sb: vec![0],
            n_sb: 1,
            n_ues: 1,
            reserved: vec![false],
            versions: vec![0],
        };
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&tti, |_| 0, |_, r| r);
        cache.refresh(&tti, |_| 0, |_, r| r);
        assert_eq!(cache.hits, 1);
        cache.invalidate_all();
        cache.refresh(&tti, |_| 0, |_, r| r);
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn detach_reattach_cycles_rows_without_staleness() {
        // A detach is modelled upstream (outran-ran) as a zeroed rate
        // row under an odd version tag; re-attach restores the live row
        // under a fresh even tag. The cache must recompute on both edges
        // — never serving the zeroed row after re-attach — and must
        // reproduce the original metrics bit-for-bit, while the other
        // UEs' rows stay cached throughout.
        let live = vec![10.0, 20.0, 30.0, 40.0, 5.0, 15.0];
        let mut tti = TtiRates {
            per_ue_sb: live.clone(),
            rb_to_sb: vec![0, 0, 1, 1, 2, 2],
            n_sb: 3,
            n_ues: 2,
            reserved: vec![false; 6],
            versions: vec![4, 6], // live rows carry even tags upstream
        };
        let metric = |u: usize, r: f64| r / (u as f64 + 2.0);
        let mut cache = SubbandMetricCache::new();
        cache.refresh(&tti, |_| 0, metric);
        let before: Vec<u64> = (0..3).map(|sb| cache.metric(1, sb).to_bits()).collect();
        assert_eq!(cache.misses, 2);

        // Detach UE 1: zeroed row, odd tag → the whole row collapses to
        // -inf (ineligible in any argmax or ε-band).
        tti.per_ue_sb[3..6].fill(0.0);
        tti.versions[1] = 7;
        cache.refresh(&tti, |_| 0, metric);
        for sb in 0..3 {
            assert_eq!(cache.metric(1, sb), f64::NEG_INFINITY, "sb {sb}");
        }
        assert_eq!(cache.hits, 1, "UE 0 must be served from cache");
        assert_eq!(cache.misses, 3);

        // Re-attach with the same report content under a fresh even tag:
        // recompute (tag moved), bit-identical metrics return.
        tti.per_ue_sb[3..6].copy_from_slice(&live[3..6]);
        tti.versions[1] = 8;
        cache.refresh(&tti, |_| 0, metric);
        let after: Vec<u64> = (0..3).map(|sb| cache.metric(1, sb).to_bits()).collect();
        assert_eq!(before, after);
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.misses, 4);
    }

    #[test]
    fn allocate_by_subband_matches_per_rb() {
        let src = FlatRates {
            per_ue: vec![4.0, 8.0],
            rbs: 6,
        };
        let mut alloc = Allocation::empty(6, 2);
        allocate_by_subband(&mut alloc, &src, |_| Some(1));
        assert_eq!(alloc.rbs_used(), 6);
        assert_eq!(alloc.bits_per_ue[1], 48.0);
    }

    #[test]
    fn allocate_by_subband_plane_path_skips_reserved() {
        let tti = TtiRates {
            per_ue_sb: vec![4.0, 8.0],
            rb_to_sb: vec![0, 0, 1, 1],
            n_sb: 2,
            n_ues: 1,
            reserved: vec![false, true, false, false],
            versions: vec![0],
        };
        let mut alloc = Allocation::empty(4, 1);
        allocate_by_subband(&mut alloc, &tti, |_| Some(0));
        assert_eq!(alloc.rb_to_ue, vec![Some(0), None, Some(0), Some(0)]);
        assert_eq!(alloc.bits_per_ue[0], 4.0 + 8.0 + 8.0);
    }
}
