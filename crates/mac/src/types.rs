//! Shared scheduler interfaces.

use outran_pdcp::Priority;
use outran_simcore::{Dur, Time};

/// What the MAC knows about one UE at the start of a TTI.
#[derive(Debug, Clone, Copy)]
pub struct UeTti {
    /// Whether the UE has anything to send (RLC buffer status).
    pub active: bool,
    /// Highest-priority non-empty MLFQ level — the user priority of
    /// eq. (2) carried in OutRAN's extended BSR. `None` when the Tx queue
    /// is empty (ctrl/retx-only UEs report `None`).
    pub head_priority: Option<Priority>,
    /// Total queued bytes (for diagnostics and RR short-circuits).
    pub queued_bytes: u64,
    /// Oracle knowledge: the smallest remaining flow size queued for this
    /// UE, in bytes. Only the SRJF/PSS/CQA baselines may read this — the
    /// paper grants them perfect flow information (§6.2 Baselines).
    pub oracle_min_remaining: Option<u64>,
    /// Head-of-line sojourn time of the oldest queued SDU.
    pub hol_delay: Dur,
    /// Oracle knowledge: whether a QoS-tagged (short, delay-budget) flow
    /// is queued for this UE.
    pub oracle_has_qos_flow: bool,
}

impl UeTti {
    /// An inactive UE.
    pub fn idle() -> UeTti {
        UeTti {
            active: false,
            head_priority: None,
            queued_bytes: 0,
            oracle_min_remaining: None,
            hol_delay: Dur::ZERO,
            oracle_has_qos_flow: false,
        }
    }
}

/// Source of per-(UE, RB) achievable rates — implemented by the PHY
/// channel. Rates are in **bits per RB per TTI** (the `r_{u,b}(t)` of
/// eq. (1) integrated over one scheduling interval).
pub trait RateSource {
    /// Achievable bits for `ue` on `rb` this TTI (reported CQI).
    fn rate(&self, ue: usize, rb: u16) -> f64;
    /// Number of RBs.
    fn n_rbs(&self) -> u16;
    /// Number of UEs.
    fn n_ues(&self) -> usize;

    /// Number of CQI subbands. Rates are constant across the RBs of a
    /// subband, so schedulers may evaluate metrics once per subband
    /// instead of once per RB. Defaults to one subband per RB, which is
    /// always correct.
    fn n_subbands(&self) -> usize {
        self.n_rbs() as usize
    }

    /// The subband that `rb` belongs to. Must be monotone non-decreasing
    /// in `rb` and `< n_subbands()`.
    fn subband_of(&self, rb: u16) -> usize {
        rb as usize
    }

    /// Achievable bits-per-RB for `ue` anywhere inside subband `sb`,
    /// *ignoring* per-RB reservations (see [`RateSource::rb_reserved`]).
    fn rate_in_subband(&self, ue: usize, sb: usize) -> f64 {
        self.rate(ue, sb as u16)
    }

    /// Whether `rb` is reserved (e.g. by a semi-persistent GBR grant)
    /// and must be skipped by the dynamic scheduler. Reserved RBs report
    /// `rate() == 0` for every UE; the subband view keeps the real rate
    /// so caches stay valid, and exposes the reservation here instead.
    fn rb_reserved(&self, _rb: u16) -> bool {
        false
    }

    /// A version stamp for `ue`'s rate row, if the source tracks one.
    /// Two calls returning the same `Some(v)` guarantee the UE's rates
    /// (all RBs) are unchanged between them; `None` disables caching for
    /// that UE. Defaults to `None` (always recompute).
    fn rates_version(&self, _ue: usize) -> Option<u64> {
        None
    }

    /// A borrowed structure-of-arrays view of this source's backing
    /// planes, when it keeps its data flat (see [`RatePlanes`]). Sources
    /// that expose one let schedulers run their inner loops directly over
    /// contiguous arrays — no per-element virtual dispatch. The view must
    /// agree exactly with the per-call accessors (`rate_in_subband`,
    /// `subband_of`, `rb_reserved`, `rates_version`). Defaults to `None`
    /// (callers fall back to the virtual accessors).
    fn planes(&self) -> Option<RatePlanes<'_>> {
        None
    }
}

/// A flat, borrowed view of a [`RateSource`]'s backing arrays — the
/// structure-of-arrays contract between the PHY-fed rate matrix and the
/// scheduler kernels. Per-(UE, subband) data is UE-major
/// (`per_ue_sb[ue * n_sb + sb]`); per-RB and per-UE planes are indexed
/// directly.
#[derive(Debug, Clone, Copy)]
pub struct RatePlanes<'a> {
    /// Achievable bits-per-RB for each `(ue, sb)`, ignoring reservations
    /// (the [`RateSource::rate_in_subband`] values).
    pub per_ue_sb: &'a [f64],
    /// Per-UE rate-row version stamps ([`RateSource::rates_version`],
    /// always present for plane-backed sources).
    pub versions: &'a [u64],
    /// RB index → subband index ([`RateSource::subband_of`]).
    pub rb_to_sb: &'a [usize],
    /// Per-RB reservation flags ([`RateSource::rb_reserved`]).
    pub reserved: &'a [bool],
    /// UE count.
    pub n_ues: usize,
    /// Subband count.
    pub n_sb: usize,
}

/// A trivially uniform [`RateSource`] for unit tests.
#[derive(Debug, Clone)]
pub struct FlatRates {
    /// Per-UE flat rate applied to every RB.
    pub per_ue: Vec<f64>,
    /// RB count.
    pub rbs: u16,
}

impl RateSource for FlatRates {
    fn rate(&self, ue: usize, _rb: u16) -> f64 {
        self.per_ue[ue]
    }
    fn n_rbs(&self) -> u16 {
        self.rbs
    }
    fn n_ues(&self) -> usize {
        self.per_ue.len()
    }
}

/// The outcome of one TTI's RB allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// For each RB, the UE it was assigned to (None = idle RB).
    pub rb_to_ue: Vec<Option<u16>>,
    /// Granted bits per UE this TTI (sum of assigned RB rates).
    pub bits_per_ue: Vec<f64>,
}

impl Allocation {
    /// An empty allocation for `n_rbs` RBs and `n_ues` UEs.
    pub fn empty(n_rbs: u16, n_ues: usize) -> Allocation {
        Allocation {
            rb_to_ue: vec![None; n_rbs as usize],
            bits_per_ue: vec![0.0; n_ues],
        }
    }

    /// Assign `rb` to `ue` at `bits` per this RB.
    pub fn assign(&mut self, rb: u16, ue: u16, bits: f64) {
        debug_assert!(self.rb_to_ue[rb as usize].is_none(), "RB double-assigned");
        self.rb_to_ue[rb as usize] = Some(ue);
        self.bits_per_ue[ue as usize] += bits;
    }

    /// Number of RBs assigned.
    pub fn rbs_used(&self) -> usize {
        self.rb_to_ue.iter().filter(|x| x.is_some()).count()
    }

    /// Total bits granted across UEs.
    pub fn total_bits(&self) -> f64 {
        self.bits_per_ue.iter().sum()
    }
}

/// A downlink MAC scheduler. Called once per TTI.
pub trait Scheduler {
    /// Compute the RB allocation for this TTI.
    ///
    /// `ues[i]` describes UE `i`; `rates` provides `r_{u,b}(t)`.
    fn allocate(&mut self, now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation;

    /// Feed back the bits actually served to each UE this TTI (PF-family
    /// schedulers update their long-term average `r̃_u` from this; others
    /// may ignore it). Must be called exactly once per TTI after
    /// transmission.
    fn on_served(&mut self, served_bits: &[f64]);

    /// Fold in `k` idle TTIs in which no UE was served, as a single
    /// composed update — semantically `k` calls of `on_served` with
    /// all-zero bits. The cell loop batches idle spans (dense stepping
    /// defers by the same amount as event-driven skipping, so both
    /// modes apply identical updates) and calls this right before the
    /// next active TTI's `allocate`. Stateless schedulers ignore it.
    fn on_idle(&mut self, k: u64) {
        let _ = k;
    }

    /// Scheduler name for reports.
    fn name(&self) -> &'static str;

    /// Serialize the scheduler's dynamic state for checkpointing.
    /// Stateless schedulers (the default) write nothing. Configuration
    /// (window lengths, epsilon, QoS params) is not written — the restore
    /// path reconstructs the scheduler from the run config first, then
    /// overlays this state via [`Scheduler::load_state`].
    fn save_state(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restore the dynamic state written by [`Scheduler::save_state`]
    /// into a scheduler freshly built from the same run configuration.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let _ = r;
        Ok(())
    }
}

pub use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_bookkeeping() {
        let mut a = Allocation::empty(4, 2);
        a.assign(0, 1, 100.0);
        a.assign(3, 0, 50.0);
        assert_eq!(a.rbs_used(), 2);
        assert_eq!(a.bits_per_ue, vec![50.0, 100.0]);
        assert_eq!(a.total_bits(), 150.0);
        assert_eq!(a.rb_to_ue, vec![Some(1), None, None, Some(0)]);
    }

    // The guard is a debug_assert, so the panic only exists in debug
    // builds; under --release the test would fail for the wrong reason.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn double_assign_caught() {
        let mut a = Allocation::empty(2, 1);
        a.assign(0, 0, 1.0);
        a.assign(0, 0, 1.0);
    }

    #[test]
    fn flat_rates_source() {
        let r = FlatRates {
            per_ue: vec![10.0, 20.0],
            rbs: 5,
        };
        assert_eq!(r.rate(1, 4), 20.0);
        assert_eq!(r.n_rbs(), 5);
        assert_eq!(r.n_ues(), 2);
    }
}
