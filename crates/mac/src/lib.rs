//! # outran-mac
//!
//! The MAC-layer downlink resource scheduler of the xNodeB — the place
//! where, every TTI, the available Resource Blocks are distributed among
//! users (paper §4.1), and where OutRAN's **inter-user flow scheduler**
//! (§4.3, Algorithm 1) re-selects users within the ε-relaxed metric band.
//!
//! All schedulers share the practical per-RB-metric architecture of
//! §4.1: for each RB, iterate over users, compute a scalar metric
//! `m_{u,b}(t)`, and give the RB to the best user — O(|U|·|B|) total.
//!
//! Implemented schedulers:
//!
//! | type | per-RB metric | paper role |
//! |---|---|---|
//! | [`pf::PfScheduler`] | `r_{u,b} / r̃_u` (EWMA window = fairness window T_f) | the de-facto baseline |
//! | [`pf::MtScheduler`] | `r_{u,b}` | max-throughput extreme of the T_f sweep |
//! | [`pf::RrScheduler`] | round-robin over active users | small-T_f extreme |
//! | [`srjf::SrjfScheduler`] | oracle: min remaining flow size, channel-blind | the §3 motivation / upper bound |
//! | [`qos::PssScheduler`] | PF restricted to the QoS (delay-budget) set first | QoS-aware baseline (NS-3 PSS) |
//! | [`qos::CqaScheduler`] | HOL-delay-weighted PF | QoS-aware baseline (NS-3 CQA) |
//! | [`outran::OutRanScheduler`] | Algorithm 1 around a PF/MT core | the paper's contribution |

//!
//! # Example
//!
//! ```
//! use outran_mac::{OutRanScheduler, Scheduler, UeTti};
//! use outran_mac::types::FlatRates;
//! use outran_pdcp::Priority;
//! use outran_simcore::Time;
//!
//! // Two users with near-equal channels; the one holding a P1 (short)
//! // flow wins the RBs under the e-relaxed re-selection.
//! let rates = FlatRates { per_ue: vec![100.0, 95.0], rbs: 4 };
//! let mk = |prio| UeTti {
//!     active: true, head_priority: Some(Priority(prio)),
//!     queued_bytes: 10_000, ..UeTti::idle()
//! };
//! let ues = vec![mk(2), mk(0)];
//! let mut sched = OutRanScheduler::over_mt(0.2);
//! let alloc = sched.allocate(Time::ZERO, &ues, &rates);
//! assert!(alloc.rb_to_ue.iter().all(|&u| u == Some(1)));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod classic;
pub mod outran;
pub mod pf;
pub mod qos;
pub mod rates;
pub mod srjf;
pub mod types;

pub use cache::SubbandMetricCache;
pub use classic::{BetScheduler, MlwdfScheduler};
pub use outran::OutRanScheduler;
pub use pf::{MtScheduler, PfCore, PfScheduler, RrScheduler};
pub use qos::{CqaScheduler, PssScheduler, QosParams};
pub use rates::TtiRates;
pub use srjf::{SrjfMode, SrjfScheduler};
pub use types::{Allocation, RatePlanes, RateSource, Scheduler, UeTti};
