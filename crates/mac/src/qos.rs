//! QoS-aware baseline schedulers: PSS and CQA.
//!
//! §6.2 Baselines: "Priority Set Scheduler (PSS) \[56\] and Channel &
//! QoS-aware (CQA) Scheduler \[20\] are variants of PF scheduler that
//! support QoS provisioning. We assume they are aware of the flow size of
//! each flow, and apply QoS of low-latency service type (delay
//! budget = 50 ms) for short flows (< 10 KB)."
//!
//! * **PSS** (Monghal et al.): time-domain priority set — UEs whose queue
//!   holds a delay-budget (QoS) flow form the priority set and are
//!   scheduled first by PF among themselves; the remaining capacity falls
//!   back to ordinary PF. This prioritises *detection-tagged* flows but
//!   keeps PF's channel blindness about urgency → "suboptimal performance
//!   in short flow FCT" (Fig 15b).
//! * **CQA** (Bojovic & Baldo): the PF metric is weighted by head-of-line
//!   delay urgency `(1 + d_HOL/budget)^β` for QoS UEs. Aggressive
//!   weighting meets the deadline of the tagged flows but "entails
//!   starvation of other (user) flows" (Fig 15c).

use outran_simcore::{Dur, Time};

use crate::pf::PfCore;
use crate::types::{Allocation, RateSource, Scheduler, SnapError, SnapReader, SnapWriter, UeTti};

/// Shared QoS parameters for the baselines.
#[derive(Debug, Clone, Copy)]
pub struct QosParams {
    /// Packet delay budget of the low-latency class (paper: 50 ms).
    pub delay_budget: Dur,
    /// CQA urgency exponent β.
    pub beta: f64,
}

impl Default for QosParams {
    fn default() -> Self {
        QosParams {
            delay_budget: Dur::from_millis(50),
            beta: 2.0,
        }
    }
}

/// Priority Set Scheduler.
#[derive(Debug, Clone)]
pub struct PssScheduler {
    core: PfCore,
}

impl PssScheduler {
    /// Create with the given PF fairness window.
    pub fn new(n_ues: usize, tf: Dur, tti: Dur) -> PssScheduler {
        PssScheduler {
            core: PfCore::new(n_ues, tf, tti),
        }
    }
}

impl Scheduler for PssScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let n_rbs = rates.n_rbs();
        let mut alloc = Allocation::empty(n_rbs, ues.len());
        let any_qos = ues.iter().any(|u| u.active && u.oracle_has_qos_flow);
        for rb in 0..n_rbs {
            // Pass 1: PF among the priority set (QoS UEs), if any.
            let mut best: Option<(usize, f64, f64)> = None;
            if any_qos {
                for (u, ue) in ues.iter().enumerate() {
                    if !ue.active || !ue.oracle_has_qos_flow {
                        continue;
                    }
                    let r = rates.rate(u, rb);
                    if r <= 0.0 {
                        continue;
                    }
                    let m = self.core.metric(u, r);
                    if best.is_none_or(|(_, bm, _)| m > bm) {
                        best = Some((u, m, r));
                    }
                }
            }
            // Pass 2: ordinary PF fallback.
            if best.is_none() {
                for (u, ue) in ues.iter().enumerate() {
                    if !ue.active {
                        continue;
                    }
                    let r = rates.rate(u, rb);
                    if r <= 0.0 {
                        continue;
                    }
                    let m = self.core.metric(u, r);
                    if best.is_none_or(|(_, bm, _)| m > bm) {
                        best = Some((u, m, r));
                    }
                }
            }
            if let Some((u, _, r)) = best {
                alloc.assign(rb, u as u16, r);
            }
        }
        alloc
    }

    fn on_served(&mut self, served_bits: &[f64]) {
        self.core.update(served_bits);
    }

    fn on_idle(&mut self, k: u64) {
        self.core.decay(k);
    }

    fn name(&self) -> &'static str {
        "PSS"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.core.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.core.load_state(r)
    }
}

/// Channel & QoS Aware scheduler.
#[derive(Debug, Clone)]
pub struct CqaScheduler {
    core: PfCore,
    params: QosParams,
}

impl CqaScheduler {
    /// Create with the given PF fairness window and QoS parameters.
    pub fn new(n_ues: usize, tf: Dur, tti: Dur, params: QosParams) -> CqaScheduler {
        CqaScheduler {
            core: PfCore::new(n_ues, tf, tti),
            params,
        }
    }

    fn weight(&self, ue: &UeTti) -> f64 {
        if !ue.oracle_has_qos_flow {
            return 1.0;
        }
        let urgency = 1.0 + ue.hol_delay.as_secs_f64() / self.params.delay_budget.as_secs_f64();
        urgency.powf(self.params.beta)
    }
}

impl Scheduler for CqaScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let n_rbs = rates.n_rbs();
        let mut alloc = Allocation::empty(n_rbs, ues.len());
        for rb in 0..n_rbs {
            let mut best: Option<(usize, f64, f64)> = None;
            for (u, ue) in ues.iter().enumerate() {
                if !ue.active {
                    continue;
                }
                let r = rates.rate(u, rb);
                if r <= 0.0 {
                    continue;
                }
                let m = self.core.metric(u, r) * self.weight(ue);
                if best.is_none_or(|(_, bm, _)| m > bm) {
                    best = Some((u, m, r));
                }
            }
            if let Some((u, _, r)) = best {
                alloc.assign(rb, u as u16, r);
            }
        }
        alloc
    }

    fn on_served(&mut self, served_bits: &[f64]) {
        self.core.update(served_bits);
    }

    fn on_idle(&mut self, k: u64) {
        self.core.decay(k);
    }

    fn name(&self) -> &'static str {
        "CQA"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        self.core.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.core.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FlatRates;

    fn ue(active: bool, qos: bool, hol_ms: u64) -> UeTti {
        UeTti {
            active,
            oracle_has_qos_flow: qos,
            hol_delay: Dur::from_millis(hol_ms),
            queued_bytes: 1000,
            ..UeTti::idle()
        }
    }

    #[test]
    fn pss_serves_priority_set_first() {
        let mut s = PssScheduler::new(2, Dur::from_millis(100), Dur::from_millis(1));
        let rates = FlatRates {
            per_ue: vec![1000.0, 10.0],
            rbs: 4,
        };
        // UE 1 has the QoS flow despite a far worse channel.
        let ues = vec![ue(true, false, 0), ue(true, true, 0)];
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }

    #[test]
    fn pss_falls_back_to_pf_without_qos_flows() {
        let mut s = PssScheduler::new(2, Dur::from_millis(100), Dur::from_millis(1));
        let rates = FlatRates {
            per_ue: vec![1000.0, 10.0],
            rbs: 4,
        };
        let ues = vec![ue(true, false, 0), ue(true, false, 0)];
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert_eq!(a.rbs_used(), 4);
    }

    #[test]
    fn cqa_weight_grows_with_hol_delay() {
        let s = CqaScheduler::new(
            1,
            Dur::from_millis(100),
            Dur::from_millis(1),
            QosParams::default(),
        );
        let fresh = s.weight(&ue(true, true, 0));
        let stale = s.weight(&ue(true, true, 50));
        let non_qos = s.weight(&ue(true, false, 500));
        assert!(stale > fresh);
        assert!((fresh - 1.0).abs() < 1e-9);
        assert!((non_qos - 1.0).abs() < 1e-9);
        // At the budget the weight is (1+1)^2 = 4.
        assert!((stale - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cqa_prioritizes_urgent_qos_ue() {
        let mut s = CqaScheduler::new(
            2,
            Dur::from_millis(100),
            Dur::from_millis(1),
            QosParams::default(),
        );
        // Equalise PF averages first.
        s.on_served(&[100.0, 100.0]);
        let rates = FlatRates {
            per_ue: vec![300.0, 100.0],
            rbs: 4,
        };
        // UE 1: worse channel but urgent QoS flow at 2× budget.
        let ues = vec![ue(true, false, 0), ue(true, true, 100)];
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }
}
