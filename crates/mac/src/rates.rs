//! The reusable per-TTI rate matrix fed by the PHY's delivered CQI
//! reports — the concrete plane-backed [`RateSource`] behind the
//! scheduler kernels.

use crate::types::{RatePlanes, RateSource};

/// Per-TTI rate matrix adapter (subband-granular) for the scheduler.
/// Reused across TTIs: the MAC stage rewrites only the rows whose
/// content version moved.
///
/// All state is stored as flat planes (UE-major `per_ue_sb`, per-RB
/// `rb_to_sb`/`reserved`, per-UE `versions`), exposed to scheduler
/// kernels via [`RateSource::planes`] so the hot loops run over
/// contiguous memory without virtual dispatch.
#[derive(Default)]
pub struct TtiRates {
    /// Per-(UE, subband) deliverable bits per RB this TTI.
    pub per_ue_sb: Vec<f64>,
    /// RB index → subband index.
    pub rb_to_sb: Vec<usize>,
    /// Subband count.
    pub n_sb: usize,
    /// UE count.
    pub n_ues: usize,
    /// RBs pre-empted by semi-persistent GBR grants this TTI: they read
    /// as rate 0 to the dynamic scheduler, so every scheduler kind
    /// respects the reservation without trait changes.
    pub reserved: Vec<bool>,
    /// Per-UE content version of the `per_ue_sb` row: the delivered CQI
    /// report version doubled, plus one while the UE's link is down (a
    /// zeroed row never aliases a live one). Schedulers key their metric
    /// caches on this.
    pub versions: Vec<u64>,
}

impl RateSource for TtiRates {
    fn rate(&self, ue: usize, rb: u16) -> f64 {
        if self.reserved[rb as usize] {
            return 0.0;
        }
        self.per_ue_sb[ue * self.n_sb + self.rb_to_sb[rb as usize]]
    }
    fn n_rbs(&self) -> u16 {
        self.rb_to_sb.len() as u16
    }
    fn n_ues(&self) -> usize {
        self.n_ues
    }
    fn n_subbands(&self) -> usize {
        self.n_sb
    }
    fn subband_of(&self, rb: u16) -> usize {
        self.rb_to_sb[rb as usize]
    }
    fn rate_in_subband(&self, ue: usize, sb: usize) -> f64 {
        self.per_ue_sb[ue * self.n_sb + sb]
    }
    fn rb_reserved(&self, rb: u16) -> bool {
        self.reserved[rb as usize]
    }
    fn rates_version(&self, ue: usize) -> Option<u64> {
        Some(self.versions[ue])
    }
    fn planes(&self) -> Option<RatePlanes<'_>> {
        Some(RatePlanes {
            per_ue_sb: &self.per_ue_sb,
            versions: &self.versions,
            rb_to_sb: &self.rb_to_sb,
            reserved: &self.reserved,
            n_ues: self.n_ues,
            n_sb: self.n_sb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TtiRates {
        TtiRates {
            per_ue_sb: vec![10.0, 20.0, 30.0, 40.0],
            rb_to_sb: vec![0, 0, 1, 1],
            n_sb: 2,
            n_ues: 2,
            reserved: vec![false, true, false, false],
            versions: vec![3, 7],
        }
    }

    #[test]
    fn planes_view_agrees_with_accessors() {
        let r = sample();
        let p = r.planes().unwrap();
        assert_eq!(p.n_ues, r.n_ues());
        assert_eq!(p.n_sb, r.n_subbands());
        for ue in 0..2 {
            assert_eq!(Some(p.versions[ue]), r.rates_version(ue));
            for sb in 0..2 {
                assert_eq!(p.per_ue_sb[ue * 2 + sb], r.rate_in_subband(ue, sb));
            }
        }
        for rb in 0..4u16 {
            assert_eq!(p.rb_to_sb[rb as usize], r.subband_of(rb));
            assert_eq!(p.reserved[rb as usize], r.rb_reserved(rb));
        }
    }

    #[test]
    fn reserved_rbs_read_zero_rate() {
        let r = sample();
        assert_eq!(r.rate(0, 1), 0.0);
        assert_eq!(r.rate(0, 0), 10.0);
        // The subband view ignores reservations (cache stability).
        assert_eq!(r.rate_in_subband(0, 0), 10.0);
    }
}
