//! OutRAN's inter-user flow scheduler — Algorithm 1 of the paper.
//!
//! For every RB `b` of every TTI:
//!
//! 1. **First iteration** (identical to the legacy scheduler): find
//!    `û = argmax_u m_{u,b}(t)` and remember `m_max`.
//! 2. **Second iteration**: collect the primary candidate set
//!    `U′ = { u : m_{u,b}(t) ≥ (1−ε)·m_max }` and re-select
//!    `u* = argmax_{u∈U′} (max_{f∈F_u} Priority(f))` — the candidate whose
//!    MLFQ head priority (carried in OutRAN's extended BSR) is highest,
//!    ties broken toward the better metric (so ε = 0 degenerates to the
//!    legacy scheduler exactly).
//!
//! This "guarantees at least (1−ε) of the per-RB metric … while expanding
//! the room |ε| for SJF flow scheduling", keeps the legacy scheduler's
//! O(|U|·|B|) complexity (one extra linear pass), and — unlike a top-K
//! selection — naturally condenses the candidate set when the user metric
//! distribution is heterogeneous (Figure 6).

use outran_simcore::{Dur, Time};

use crate::cache::{allocate_by_subband, SubbandMetricCache};
use crate::pf::PfCore;
use crate::types::{Allocation, RateSource, Scheduler, SnapError, SnapReader, SnapWriter, UeTti};

/// The legacy metric OutRAN relaxes.
#[derive(Debug, Clone)]
pub enum BaseMetric {
    /// Proportional Fair with its fairness-window state.
    Pf(PfCore),
    /// Max Throughput (rate-only metric).
    Mt,
}

impl BaseMetric {
    fn metric(&self, ue: usize, rate: f64) -> f64 {
        match self {
            BaseMetric::Pf(core) => core.metric(ue, rate),
            BaseMetric::Mt => rate,
        }
    }

    fn update(&mut self, served_bits: &[f64]) {
        if let BaseMetric::Pf(core) = self {
            core.update(served_bits);
        }
    }

    fn decay(&mut self, k: u64) {
        if let BaseMetric::Pf(core) = self {
            core.decay(k);
        }
    }
}

/// The OutRAN MAC scheduler: a legacy metric core + the ε-relaxed
/// re-selection by MLFQ priority.
#[derive(Debug, Clone)]
pub struct OutRanScheduler {
    base: BaseMetric,
    epsilon: f64,
    cache: SubbandMetricCache,
}

impl OutRanScheduler {
    /// The paper's default relaxation threshold (§4.3 Parameter choice:
    /// "We chose ε = 0.2 … the best balance").
    pub const DEFAULT_EPSILON: f64 = 0.2;

    /// OutRAN over PF with the given fairness window.
    pub fn over_pf(n_ues: usize, tf: Dur, tti: Dur, epsilon: f64) -> OutRanScheduler {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon={epsilon}");
        OutRanScheduler {
            base: BaseMetric::Pf(PfCore::new(n_ues, tf, tti)),
            epsilon,
            cache: SubbandMetricCache::new(),
        }
    }

    /// OutRAN over the MT metric (used by the Fig 18b ablation).
    pub fn over_mt(epsilon: f64) -> OutRanScheduler {
        assert!((0.0..=1.0).contains(&epsilon));
        OutRanScheduler {
            base: BaseMetric::Mt,
            epsilon,
            cache: SubbandMetricCache::new(),
        }
    }

    /// The relaxation threshold ε in force.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Effective user priority for re-selection: the head MLFQ priority,
    /// or a sentinel worse than any real level when the Tx queue is empty
    /// (AM ctrl/retx-only users — §4.4 keeps per-flow state only for TxQ).
    fn user_prio(ue: &UeTti) -> u8 {
        ue.head_priority.map_or(u8::MAX, |p| p.0)
    }
}

impl Scheduler for OutRanScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let mut alloc = Allocation::empty(rates.n_rbs(), ues.len());
        // Metrics are cached per (UE, subband) and revalidated only when
        // the UE's rate row or PF average moved; the two Algorithm 1
        // passes then run once per subband instead of once per RB.
        let base = &self.base;
        self.cache.refresh(
            rates,
            |u| match base {
                BaseMetric::Pf(core) => core.rev(u),
                BaseMetric::Mt => 0,
            },
            |u, r| base.metric(u, r),
        );
        let cache = &self.cache;
        let epsilon = self.epsilon;
        allocate_by_subband(&mut alloc, rates, |sb| {
            // Both Algorithm 1 passes scan the subband's contiguous
            // metric column (one entry per UE).
            let col = cache.column(sb);
            // First iteration: legacy best (Algorithm 1 lines 4–8).
            // Ineligible rows are -inf and can never win the strict
            // argmax, matching the old per-RB skip.
            let mut m_max = f64::NEG_INFINITY;
            let mut best: Option<usize> = None;
            for (u, ue) in ues.iter().enumerate() {
                if !ue.active {
                    continue;
                }
                let m = col[u];
                if m > m_max {
                    m_max = m;
                    best = Some(u);
                }
            }
            let legacy_best = best?; // no eligible user for this subband
                                     // Second iteration: re-select within the ε band by MLFQ
                                     // priority (Algorithm 1 lines 10–16).
            let floor = (1.0 - epsilon) * m_max;
            let mut selected = legacy_best;
            let mut sel_prio = Self::user_prio(&ues[legacy_best]);
            let mut sel_metric = m_max;
            for (u, ue) in ues.iter().enumerate() {
                if u == legacy_best || !ue.active {
                    continue;
                }
                let m = col[u];
                if m < floor {
                    continue;
                }
                let p = Self::user_prio(ue);
                // Higher MLFQ priority = numerically smaller level. Ties
                // go to the better metric so ε→0 matches legacy exactly.
                if p < sel_prio || (p == sel_prio && m > sel_metric) {
                    selected = u;
                    sel_prio = p;
                    sel_metric = m;
                }
            }
            Some(selected as u16)
        });
        alloc
    }

    fn on_served(&mut self, served_bits: &[f64]) {
        self.base.update(served_bits);
    }

    fn on_idle(&mut self, k: u64) {
        self.base.decay(k);
    }

    fn name(&self) -> &'static str {
        "OutRAN"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // The base variant and epsilon come from the run config; only the
        // PF core (if any) carries dynamic state.
        if let BaseMetric::Pf(core) = &self.base {
            core.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if let BaseMetric::Pf(core) = &mut self.base {
            core.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::PfScheduler;
    use crate::types::FlatRates;
    use outran_pdcp::Priority;

    fn ue(active: bool, prio: Option<u8>) -> UeTti {
        UeTti {
            active,
            head_priority: prio.map(Priority),
            queued_bytes: 1000,
            ..UeTti::idle()
        }
    }

    fn tf() -> Dur {
        Dur::from_millis(200)
    }
    fn tti() -> Dur {
        Dur::from_millis(1)
    }

    #[test]
    fn epsilon_zero_matches_pf_exactly() {
        let rates = FlatRates {
            per_ue: vec![100.0, 250.0, 180.0],
            rbs: 10,
        };
        let ues = vec![ue(true, Some(3)), ue(true, Some(0)), ue(true, Some(1))];
        let mut pf = PfScheduler::with_tf(3, tf(), tti());
        let mut or = OutRanScheduler::over_pf(3, tf(), tti(), 0.0);
        for _ in 0..100 {
            let a = pf.allocate(Time::ZERO, &ues, &rates);
            let b = or.allocate(Time::ZERO, &ues, &rates);
            assert_eq!(a.rb_to_ue, b.rb_to_ue);
            pf.on_served(&a.bits_per_ue);
            or.on_served(&b.bits_per_ue);
        }
    }

    #[test]
    fn reselects_higher_priority_within_band() {
        // Two users with near-equal metrics; the short-flow user (P1)
        // must win even though its metric is slightly lower.
        let rates = FlatRates {
            per_ue: vec![100.0, 95.0],
            rbs: 4,
        };
        let ues = vec![ue(true, Some(2)), ue(true, Some(0))];
        let mut or = OutRanScheduler::over_mt(0.2);
        let a = or.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }

    #[test]
    fn does_not_reselect_outside_band() {
        // The short-flow user's metric is 50% below max — outside ε=0.2.
        let rates = FlatRates {
            per_ue: vec![100.0, 50.0],
            rbs: 4,
        };
        let ues = vec![ue(true, Some(2)), ue(true, Some(0))];
        let mut or = OutRanScheduler::over_mt(0.2);
        let a = or.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(0)));
    }

    #[test]
    fn epsilon_one_is_pure_sjf_among_active() {
        // ε=1: every active user is a candidate; lowest priority level
        // wins regardless of channel ("expands the entire room for SJF").
        let rates = FlatRates {
            per_ue: vec![1000.0, 1.0],
            rbs: 4,
        };
        let ues = vec![ue(true, Some(1)), ue(true, Some(0))];
        let mut or = OutRanScheduler::over_mt(1.0);
        let a = or.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }

    #[test]
    fn empty_txq_user_loses_reselection() {
        // AM retx-only user (no head priority) must not beat a P1 user.
        let rates = FlatRates {
            per_ue: vec![100.0, 100.0],
            rbs: 4,
        };
        let ues = vec![ue(true, None), ue(true, Some(0))];
        let mut or = OutRanScheduler::over_mt(0.2);
        let a = or.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }

    #[test]
    fn tie_priorities_keep_legacy_choice() {
        let rates = FlatRates {
            per_ue: vec![100.0, 99.0],
            rbs: 4,
        };
        let ues = vec![ue(true, Some(1)), ue(true, Some(1))];
        let mut or = OutRanScheduler::over_mt(0.5);
        let a = or.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(0)));
    }

    #[test]
    fn guarantees_metric_floor() {
        // Property: for every assigned RB, the winner's metric is within
        // (1-eps) of the per-RB max over active users.
        let eps = 0.3;
        let rates = FlatRates {
            per_ue: vec![120.0, 100.0, 90.0, 60.0],
            rbs: 16,
        };
        let ues = vec![
            ue(true, Some(3)),
            ue(true, Some(2)),
            ue(true, Some(0)),
            ue(true, Some(0)),
        ];
        let mut or = OutRanScheduler::over_mt(eps);
        let a = or.allocate(Time::ZERO, &ues, &rates);
        let m_max = 120.0;
        for &assigned in a.rb_to_ue.iter() {
            let u = assigned.unwrap() as usize;
            assert!(rates.per_ue[u] >= (1.0 - eps) * m_max - 1e-9);
        }
        // And the winner is the P1 user inside the band (90 >= 84).
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(2)));
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_epsilon() {
        let _ = OutRanScheduler::over_mt(1.5);
    }
}
