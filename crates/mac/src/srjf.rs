//! The Shortest Remaining Job First oracle scheduler.
//!
//! §3/§6.2: "SRJF is an optimal flow scheduling scheme in DCN that has
//! perfect knowledge of flow size. SRJF schedules flows based on the
//! remaining flow size, being ignorant of the channel condition." In the
//! worst case "the user will grab all the bandwidth (with poor spectral
//! efficiency) to finish its flow" — exactly the behaviour reproduced
//! here: the UE carrying the globally smallest remaining flow receives
//! every RB of the TTI, regardless of its channel.

use outran_simcore::Time;

use crate::types::{Allocation, RateSource, Scheduler, UeTti};

/// How the SRJF oracle spends a TTI's leftover capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SrjfMode {
    /// Serve only the user carrying the globally shortest remaining
    /// flow; idle every RB beyond that flow's bytes. The most literal
    /// "schedule the shortest flow, ignore everything else".
    WinnerOnly,
    /// Serve users in ascending shortest-remaining order, each bounded
    /// by its shortest flow's bytes, waterfall the leftover RBs to the
    /// next user (still channel-blind in the order and RB choice).
    #[default]
    Waterfall,
    /// Like [`SrjfMode::Waterfall`] but each served user may drain its
    /// whole queued backlog before the next user gets RBs.
    WaterfallBacklog,
}

/// Channel-blind SRJF (requires the oracle flow-size inputs).
///
/// "SRJF schedules flows based on the remaining flow size, being
/// ignorant of the channel condition … the user will grab all the
/// bandwidth (with poor spectral efficiency) to finish its flow"
/// (§3/§6.2). Users are visited in ascending order of their shortest
/// remaining flow, blindly to channel quality; [`SrjfMode`] picks what
/// happens with the capacity the head flow does not use.
#[derive(Debug, Clone, Default)]
pub struct SrjfScheduler {
    /// Leftover-capacity policy.
    pub mode: SrjfMode,
}

impl SrjfScheduler {
    /// Create with an explicit mode.
    pub fn with_mode(mode: SrjfMode) -> SrjfScheduler {
        SrjfScheduler { mode }
    }
}

impl Scheduler for SrjfScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let n_rbs = rates.n_rbs();
        let mut alloc = Allocation::empty(n_rbs, ues.len());
        let mut order: Vec<usize> = ues
            .iter()
            .enumerate()
            .filter(|(_, u)| u.active)
            .map(|(i, _)| i)
            .collect();
        order.sort_by_key(|&i| ues[i].oracle_min_remaining.unwrap_or(u64::MAX));
        // Plane-backed sources feed the sequential RB walk straight from
        // their flat arrays (same values as `rate()`: reserved RBs read 0).
        let planes = rates.planes();
        let mut rb: u16 = 0;
        for u in order {
            let ue = &ues[u];
            let need = match self.mode {
                SrjfMode::WinnerOnly | SrjfMode::Waterfall => ue
                    .queued_bytes
                    .min(ue.oracle_min_remaining.unwrap_or(u64::MAX))
                    .max(1),
                SrjfMode::WaterfallBacklog => ue.queued_bytes.max(1),
            };
            let need_bits = (need.saturating_mul(8)) as f64 + 256.0;
            let mut granted = 0.0;
            while rb < n_rbs && granted < need_bits {
                let r = match planes {
                    Some(p) => {
                        if p.reserved[rb as usize] {
                            0.0
                        } else {
                            p.per_ue_sb[u * p.n_sb + p.rb_to_sb[rb as usize]]
                        }
                    }
                    None => rates.rate(u, rb),
                };
                if r <= 0.0 {
                    break; // channel-blind: give up on this user's RBs
                }
                alloc.assign(rb, u as u16, r);
                granted += r;
                rb += 1;
            }
            if rb >= n_rbs || self.mode == SrjfMode::WinnerOnly {
                break;
            }
        }
        alloc
    }

    fn on_served(&mut self, _served_bits: &[f64]) {}

    fn name(&self) -> &'static str {
        "SRJF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FlatRates;

    fn ue(active: bool, remaining: Option<u64>) -> UeTti {
        UeTti {
            active,
            oracle_min_remaining: remaining,
            queued_bytes: remaining.unwrap_or(0),
            ..UeTti::idle()
        }
    }

    #[test]
    fn shortest_remaining_takes_everything() {
        let mut s = SrjfScheduler::default();
        let rates = FlatRates {
            per_ue: vec![1000.0, 10.0, 100.0],
            rbs: 8,
        };
        let ues = vec![
            ue(true, Some(50_000)),
            ue(true, Some(100)), // shortest, worst channel
            ue(true, Some(5_000)),
        ];
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
        // Grabs all bandwidth at poor spectral efficiency: 8 RBs × 10 bits.
        assert_eq!(a.total_bits(), 80.0);
    }

    #[test]
    fn skips_inactive() {
        let mut s = SrjfScheduler::default();
        let rates = FlatRates {
            per_ue: vec![10.0, 10.0],
            rbs: 2,
        };
        let ues = vec![ue(false, Some(1)), ue(true, Some(100))];
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
    }

    #[test]
    fn empty_cell_idles() {
        let mut s = SrjfScheduler::default();
        let rates = FlatRates {
            per_ue: vec![10.0],
            rbs: 2,
        };
        let a = s.allocate(Time::ZERO, &[ue(false, None)], &rates);
        assert_eq!(a.rbs_used(), 0);
    }

    #[test]
    fn winner_only_idles_leftover_rbs() {
        let mut s = SrjfScheduler::with_mode(SrjfMode::WinnerOnly);
        let rates = FlatRates {
            per_ue: vec![1000.0, 1000.0],
            rbs: 50,
        };
        // Winner's flow needs ~2 RBs; the rest must idle even though
        // UE 1 is backlogged.
        let ues = vec![ue(true, Some(200)), ue(true, Some(100_000))];
        let a = s.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rbs_used() < 5, "rbs_used={}", a.rbs_used());
        assert!(a.rb_to_ue.iter().flatten().all(|&u| u == 0));
    }

    #[test]
    fn waterfall_fills_the_tti() {
        let mut s = SrjfScheduler::with_mode(SrjfMode::Waterfall);
        let rates = FlatRates {
            per_ue: vec![1000.0, 1000.0],
            rbs: 50,
        };
        let mut short = ue(true, Some(200));
        short.queued_bytes = 200;
        let mut long = ue(true, Some(100_000));
        long.queued_bytes = 100_000;
        let a = s.allocate(Time::ZERO, &[short, long], &rates);
        assert_eq!(a.rbs_used(), 50, "leftover RBs must waterfall");
        // The short-flow UE still goes first.
        assert_eq!(a.rb_to_ue[0], Some(0));
        assert!(a.rb_to_ue.contains(&Some(1)));
    }

    #[test]
    fn waterfall_backlog_lets_head_drain_queue() {
        let mut s = SrjfScheduler::with_mode(SrjfMode::WaterfallBacklog);
        let rates = FlatRates {
            per_ue: vec![100.0, 100.0],
            rbs: 10,
        };
        // Head UE's backlog (10 KB = 800 bits×100...) exceeds the TTI:
        // it takes everything despite its shortest flow being tiny.
        let mut head = ue(true, Some(100));
        head.queued_bytes = 10_000;
        let tail = ue(true, Some(200));
        let a = s.allocate(Time::ZERO, &[head, tail], &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(0)));
    }
}
