//! Proportional Fair, Max Throughput, and Round Robin schedulers.
//!
//! eq. (1) of the paper:
//!
//! ```text
//! m_{u,b}(t) = r_{u,b}(t)              (MT)
//! m_{u,b}(t) = r_{u,b}(t) / r̃_u(t−1)   (PF)
//! ```
//!
//! `r̃_u` is the exponentially smoothed served rate; its smoothing window
//! is the **fairness window T_f** (§6.3): a small T_f behaves like round
//! robin, a huge T_f degenerates toward MT (Figure 18a).

use outran_simcore::{Dur, Ewma, Time};

use crate::cache::{allocate_by_subband, SubbandMetricCache};
use crate::types::{Allocation, RateSource, Scheduler, SnapError, SnapReader, SnapWriter, UeTti};

/// The PF metric core: per-UE long-term average throughput with a
/// T_f-derived smoothing factor. Shared by [`PfScheduler`] and
/// [`crate::outran::OutRanScheduler`].
#[derive(Debug, Clone)]
pub struct PfCore {
    avg: Vec<Ewma>,
    rev: Vec<u64>,
    window_ttis: u64,
}

impl PfCore {
    /// Create for `n_ues`, with fairness window `tf` at TTI length `tti`.
    pub fn new(n_ues: usize, tf: Dur, tti: Dur) -> PfCore {
        let window_ttis = (tf.as_nanos() / tti.as_nanos()).max(1);
        PfCore {
            avg: vec![Ewma::from_window(window_ttis); n_ues],
            rev: vec![0; n_ues],
            window_ttis,
        }
    }

    /// Number of TTIs in the averaging window.
    pub fn window_ttis(&self) -> u64 {
        self.window_ttis
    }

    /// The PF metric `r / r̃` for a given instantaneous rate. A UE that
    /// was never served gets an effectively infinite metric so it is
    /// served promptly (cold-start behaviour of real PF implementations).
    pub fn metric(&self, ue: usize, rate: f64) -> f64 {
        let avg = self.avg[ue].get();
        if avg <= 0.0 {
            rate * 1e9
        } else {
            rate / avg
        }
    }

    /// Current long-term average of a UE (bits/TTI).
    pub fn avg(&self, ue: usize) -> f64 {
        self.avg[ue].get()
    }

    /// Fold in the bits served this TTI (0 for unserved UEs — the
    /// standard PF update runs every TTI for every UE).
    pub fn update(&mut self, served_bits: &[f64]) {
        for ((e, rev), &s) in self
            .avg
            .iter_mut()
            .zip(self.rev.iter_mut())
            .zip(served_bits)
        {
            let before = e.get();
            e.update(s);
            if e.get() != before {
                *rev = rev.wrapping_add(1);
            }
        }
    }

    /// Fold in `k` all-idle TTIs at once: every UE's average decays as
    /// if `update` had seen `k` zero-service ticks (see
    /// [`Ewma::decay`]). Keeps the standard "PF updates every TTI"
    /// semantics across idle spans the cell loop skips.
    pub fn decay(&mut self, k: u64) {
        for (e, rev) in self.avg.iter_mut().zip(self.rev.iter_mut()) {
            let before = e.get();
            e.decay(k);
            if e.get() != before {
                *rev = rev.wrapping_add(1);
            }
        }
    }

    /// Revision counter for `ue`'s metric state: bumped exactly when the
    /// long-term average behind [`PfCore::metric`] changes, so a stable
    /// revision guarantees identical metric values for identical rates.
    pub fn rev(&self, ue: usize) -> u64 {
        self.rev[ue]
    }

    /// Serialize the per-UE averages and revision stamps (checkpointing).
    /// `window_ttis` is derived from the run config and not written.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.avg.iter(), |w, e| e.snap(w));
        w.seq(self.rev.iter(), |w, &v| w.u64(v));
    }

    /// Restore state written by [`PfCore::save_state`] into a core built
    /// for the same UE count.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let avg = r.seq(Ewma::unsnap)?;
        let rev = r.seq(|r| r.u64())?;
        if avg.len() != self.avg.len() || rev.len() != self.rev.len() {
            return Err(SnapError::Malformed("PF core UE count mismatch"));
        }
        self.avg = avg;
        self.rev = rev;
        Ok(())
    }
}

/// The Proportional Fair scheduler (the de-facto baseline, §6 Baselines).
#[derive(Debug, Clone)]
pub struct PfScheduler {
    core: PfCore,
    cache: SubbandMetricCache,
}

impl PfScheduler {
    /// Default fairness window: 1 s (a "few seconds … should be
    /// sufficient" per the §6.3 discussion of \[37, 57\]).
    pub const DEFAULT_TF: Dur = Dur::from_millis(1000);

    /// Create with the default T_f.
    pub fn new(n_ues: usize, tti: Dur) -> PfScheduler {
        PfScheduler::with_tf(n_ues, Self::DEFAULT_TF, tti)
    }

    /// Create with an explicit fairness window.
    pub fn with_tf(n_ues: usize, tf: Dur, tti: Dur) -> PfScheduler {
        PfScheduler {
            core: PfCore::new(n_ues, tf, tti),
            cache: SubbandMetricCache::new(),
        }
    }

    /// Access the metric core (tests/ablations).
    pub fn core(&self) -> &PfCore {
        &self.core
    }
}

impl Scheduler for PfScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let mut alloc = Allocation::empty(rates.n_rbs(), ues.len());
        let core = &self.core;
        self.cache
            .refresh(rates, |u| core.rev(u), |u, r| core.metric(u, r));
        let cache = &self.cache;
        allocate_by_subband(&mut alloc, rates, |sb| {
            // Strict-`>` argmax from -inf over the subband's contiguous
            // metric column: ineligible rows (rate <= 0, stored as -inf)
            // can never win, so this matches the old per-RB loop that
            // skipped them explicitly.
            let col = cache.column(sb);
            let mut best: Option<u16> = None;
            let mut best_m = f64::NEG_INFINITY;
            for (u, ue) in ues.iter().enumerate() {
                if !ue.active {
                    continue;
                }
                let m = col[u];
                if m > best_m {
                    best = Some(u as u16);
                    best_m = m;
                }
            }
            best
        });
        alloc
    }

    fn on_served(&mut self, served_bits: &[f64]) {
        self.core.update(served_bits);
    }

    fn on_idle(&mut self, k: u64) {
        self.core.decay(k);
    }

    fn name(&self) -> &'static str {
        "PF"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // The subband metric cache is a pure memo and re-derives itself.
        self.core.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.core.load_state(r)
    }
}

/// The Max Throughput scheduler: pure `r_{u,b}` metric.
///
/// Rides the same subband metric cache as PF (metric = rate, revision
/// pinned to 0 since the metric has no scheduler-side state). The cached
/// strict-`>` argmax from -inf selects exactly the UE the historical
/// `best_r = 0.0` loop did: only strictly positive rates can win either
/// way, and the iteration order is unchanged.
#[derive(Debug, Clone, Default)]
pub struct MtScheduler {
    cache: SubbandMetricCache,
}

impl Scheduler for MtScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let mut alloc = Allocation::empty(rates.n_rbs(), ues.len());
        self.cache.refresh(rates, |_| 0, |_, r| r);
        let cache = &self.cache;
        allocate_by_subband(&mut alloc, rates, |sb| {
            let col = cache.column(sb);
            let mut best: Option<u16> = None;
            let mut best_r = f64::NEG_INFINITY;
            for (u, ue) in ues.iter().enumerate() {
                if !ue.active {
                    continue;
                }
                let r = col[u];
                if r > best_r {
                    best = Some(u as u16);
                    best_r = r;
                }
            }
            best
        });
        alloc
    }

    fn on_served(&mut self, _served_bits: &[f64]) {}

    fn name(&self) -> &'static str {
        "MT"
    }
}

/// Round-robin over active UEs, RB by RB (the small-T_f limit of PF).
#[derive(Debug, Clone, Default)]
pub struct RrScheduler {
    next: usize,
}

impl Scheduler for RrScheduler {
    fn allocate(&mut self, _now: Time, ues: &[UeTti], rates: &dyn RateSource) -> Allocation {
        let n_rbs = rates.n_rbs();
        let mut alloc = Allocation::empty(n_rbs, ues.len());
        let active: Vec<usize> = ues
            .iter()
            .enumerate()
            .filter(|(_, u)| u.active)
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            return alloc;
        }
        for rb in 0..n_rbs {
            let u = active[self.next % active.len()];
            self.next = self.next.wrapping_add(1);
            alloc.assign(rb, u as u16, rates.rate(u, rb));
        }
        alloc
    }

    fn on_served(&mut self, _served_bits: &[f64]) {}

    fn name(&self) -> &'static str {
        "RR"
    }

    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.next);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FlatRates;

    fn active(n: usize) -> Vec<UeTti> {
        (0..n)
            .map(|_| UeTti {
                active: true,
                queued_bytes: 1_000_000,
                ..UeTti::idle()
            })
            .collect()
    }

    #[test]
    fn mt_picks_best_channel_always() {
        let mut mt = MtScheduler::default();
        let rates = FlatRates {
            per_ue: vec![10.0, 30.0, 20.0],
            rbs: 6,
        };
        let a = mt.allocate(Time::ZERO, &active(3), &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(1)));
        assert_eq!(a.bits_per_ue[1], 180.0);
    }

    #[test]
    fn pf_equalizes_service_on_equal_channels() {
        let mut pf = PfScheduler::with_tf(2, Dur::from_millis(100), Dur::from_millis(1));
        let rates = FlatRates {
            per_ue: vec![100.0, 100.0],
            rbs: 10,
        };
        let ues = active(2);
        let mut totals = [0.0f64; 2];
        for tti in 0..3000 {
            let a = pf.allocate(Time::ZERO, &ues, &rates);
            // Skip the cold-start transient in the accounting.
            if tti >= 500 {
                totals[0] += a.bits_per_ue[0];
                totals[1] += a.bits_per_ue[1];
            }
            pf.on_served(&a.bits_per_ue);
        }
        let ratio = totals[0] / totals[1];
        assert!((0.8..1.25).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn pf_gives_more_to_better_channel_but_not_all() {
        let mut pf = PfScheduler::with_tf(2, Dur::from_millis(200), Dur::from_millis(1));
        let rates = FlatRates {
            per_ue: vec![300.0, 100.0],
            rbs: 10,
        };
        let ues = active(2);
        let mut totals = [0.0f64; 2];
        for _ in 0..500 {
            let a = pf.allocate(Time::ZERO, &ues, &rates);
            totals[0] += a.bits_per_ue[0];
            totals[1] += a.bits_per_ue[1];
            pf.on_served(&a.bits_per_ue);
        }
        // With static flat channels PF converges to equal *time* share,
        // so throughput share tracks the rate ratio.
        let share = totals[0] / (totals[0] + totals[1]);
        assert!(share > 0.5 && share < 0.95, "share={share}");
        assert!(totals[1] > 0.0, "weak user must not starve");
    }

    #[test]
    fn pf_skips_inactive_and_zero_rate() {
        let mut pf = PfScheduler::new(3, Dur::from_millis(1));
        let mut ues = active(3);
        ues[0].active = false;
        let rates = FlatRates {
            per_ue: vec![100.0, 0.0, 50.0],
            rbs: 4,
        };
        let a = pf.allocate(Time::ZERO, &ues, &rates);
        assert!(a.rb_to_ue.iter().all(|&x| x == Some(2)));
    }

    #[test]
    fn no_active_ues_leaves_rbs_idle() {
        let mut pf = PfScheduler::new(2, Dur::from_millis(1));
        let rates = FlatRates {
            per_ue: vec![100.0, 100.0],
            rbs: 4,
        };
        let ues = vec![UeTti::idle(), UeTti::idle()];
        let a = pf.allocate(Time::ZERO, &ues, &rates);
        assert_eq!(a.rbs_used(), 0);
        assert_eq!(a.total_bits(), 0.0);
    }

    #[test]
    fn rr_cycles_users() {
        let mut rr = RrScheduler::default();
        let rates = FlatRates {
            per_ue: vec![10.0, 10.0, 10.0],
            rbs: 6,
        };
        let a = rr.allocate(Time::ZERO, &active(3), &rates);
        let counts = (0..3)
            .map(|u| a.rb_to_ue.iter().filter(|&&x| x == Some(u as u16)).count())
            .collect::<Vec<_>>();
        assert_eq!(counts, vec![2, 2, 2]);
    }

    #[test]
    fn pf_core_window_derivation() {
        let core = PfCore::new(1, Dur::from_secs(1), Dur::from_millis(1));
        assert_eq!(core.window_ttis(), 1000);
        let core = PfCore::new(1, Dur::from_millis(10), Dur::from_micros(125));
        assert_eq!(core.window_ttis(), 80);
    }

    #[test]
    fn pf_cold_start_prefers_unserved() {
        let mut core = PfCore::new(2, Dur::from_millis(100), Dur::from_millis(1));
        core.update(&[1000.0, 0.0]);
        // UE 1 never served => enormous metric.
        assert!(core.metric(1, 10.0) > core.metric(0, 10.0));
    }
}
