//! Web page models for the PLT experiments (Figures 12, 21, 22; Table 2).
//!
//! Each page is described by the statistics the paper publishes: total
//! page size, number of sub-flows, number of QUIC flows and their total
//! bytes (Table 2 for the 9 QUIC-supporting pages). The 11 remaining
//! Alexa-top-20 pages have no published size breakdown; their parameters
//! are plausible estimates consistent with the PLT ranges of Figure 21
//! (documented per entry, marked `estimated`).
//!
//! The object generator reproduces the property §4.2 flags as OutRAN's
//! limitation: **QUIC pages multiplex many logical objects over one
//! five-tuple**, so the flow table sees one persistent "flow" whose
//! sent-bytes accumulate across objects. Non-QUIC objects each ride their
//! own connection.
//!
//! PLT model: `PLT = fetch(browser with ≤6 concurrent connections,
//! HTML-first dependency) + render_ms`. Zoom-like pages are
//! render-dominated ("for some web pages, other factors such as rendering
//! time take up the dominant fraction in PLT", §6.1).

use outran_simcore::Rng;

/// One fetchable object of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebObject {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Whether the object rides the page's QUIC connection.
    pub is_quic: bool,
    /// Connection index within the page: QUIC objects share connection 0,
    /// each non-QUIC object gets its own.
    pub conn: u32,
}

/// Statistics of one page (Table 2 row or estimate).
#[derive(Debug, Clone, PartialEq)]
pub struct WebPage {
    /// Site name as in the figures.
    pub name: &'static str,
    /// Total page transfer size in bytes.
    pub page_bytes: u64,
    /// Total bytes carried over QUIC flows.
    pub quic_bytes: u64,
    /// Total number of sub-flows.
    pub n_flows: u32,
    /// Number of QUIC flows among them.
    pub n_quic_flows: u32,
    /// Client-side render time appended to the fetch time (ms).
    pub render_ms: u64,
    /// Whether the size data comes from Table 2 (vs an estimate).
    pub from_table2: bool,
}

const KB: u64 = 1000;

impl WebPage {
    /// The nine QUIC-supporting pages of Table 2 (sizes verbatim).
    pub fn table2() -> Vec<WebPage> {
        let t = |name, page_kb: u64, quic_kb_x10: u64, n_flows, n_quic, render_ms| WebPage {
            name,
            page_bytes: page_kb * KB,
            quic_bytes: quic_kb_x10 * KB / 10,
            n_flows,
            n_quic_flows: n_quic,
            render_ms,
            from_table2: true,
        };
        vec![
            t("facebook.com", 381, 2060, 33, 21, 500),
            t("google.com", 540, 700, 37, 23, 400),
            t("google.com.hk", 541, 700, 38, 23, 400),
            t("youtube.com", 899, 790, 26, 8, 500),
            t("instagram.com", 1756, 7360, 25, 7, 600),
            t("netflix.com", 1902, 10, 49, 1, 1500),
            t("reddit.com", 1928, 2, 90, 1, 900),
            // Zoom: PLT dominated by rendering (§6.1: "no improvement").
            t("zoom.us", 2816, 1650, 114, 3, 4200),
            t("sohu.com", 3370, 5, 522, 8, 1200),
        ]
    }

    /// The remaining Alexa-top-20 pages (estimated parameters; no QUIC).
    pub fn estimated_rest() -> Vec<WebPage> {
        let e = |name, page_kb: u64, n_flows, render_ms| WebPage {
            name,
            page_bytes: page_kb * KB,
            quic_bytes: 0,
            n_flows,
            n_quic_flows: 0,
            render_ms,
            from_table2: false,
        };
        vec![
            e("tmall.com", 4000, 180, 900),
            e("taobao.com", 4200, 200, 1200),
            e("360.cn", 2300, 110, 600),
            e("amazon.com", 2500, 140, 700),
            e("jd.com", 3100, 160, 800),
            e("microsoft.com", 1900, 80, 600),
            e("baidu.com", 3600, 70, 1500),
            e("qq.com", 2100, 120, 500),
            e("wikipedia.org", 700, 25, 350),
            e("xinhuanet.com", 4600, 210, 1800),
            e("yahoo.com", 4100, 190, 1100),
        ]
    }

    /// The full top-20 set used in §6.1.
    pub fn top20() -> Vec<WebPage> {
        let mut v = WebPage::table2();
        v.extend(WebPage::estimated_rest());
        v
    }

    /// Generate this page's objects. Randomised per call ("the contents
    /// of a webpage change dynamically over time", §6.1), deterministic
    /// for a given RNG state.
    ///
    /// QUIC objects share connection 0 (the §4.2 five-tuple aggregation);
    /// every other object has a private connection.
    pub fn objects(&self, rng: &mut Rng) -> Vec<WebObject> {
        let n_quic = self.n_quic_flows.min(self.n_flows);
        let n_plain = self.n_flows - n_quic;
        let quic_bytes = self.quic_bytes.min(self.page_bytes);
        let plain_bytes = self.page_bytes - quic_bytes;
        let mut out = Vec::with_capacity(self.n_flows as usize);
        out.extend(
            split_heavy(quic_bytes, n_quic, rng)
                .into_iter()
                .map(|b| WebObject {
                    bytes: b,
                    is_quic: true,
                    conn: 0,
                }),
        );
        out.extend(
            split_heavy(plain_bytes, n_plain, rng)
                .into_iter()
                .enumerate()
                .map(|(i, b)| WebObject {
                    bytes: b,
                    is_quic: false,
                    conn: 1 + i as u32,
                }),
        );
        out
    }
}

/// Split `total` bytes across `n` objects with a right-skewed share
/// distribution (a few big objects, many small), each ≥ 64 bytes.
fn split_heavy(total: u64, n: u32, rng: &mut Rng) -> Vec<u64> {
    if n == 0 || total == 0 {
        return vec![0; n as usize].into_iter().filter(|&x| x > 0).collect();
    }
    // Squared-exponential weights give a heavy skew.
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let g = -rng.f64_open().ln();
            g * g
        })
        .collect();
    let sum: f64 = weights.iter().sum();
    let mut sizes: Vec<u64> = weights
        .iter()
        .map(|w| ((w / sum) * total as f64).round() as u64)
        .map(|b| b.max(64))
        .collect();
    // Fix rounding drift on the largest object.
    let assigned: u64 = sizes.iter().sum();
    let Some(idx_max) = (0..sizes.len()).max_by_key(|&i| sizes[i]) else {
        return sizes; // n == 0: nothing to rebalance
    };
    if assigned > total {
        let over = assigned - total;
        sizes[idx_max] = sizes[idx_max].saturating_sub(over).max(64);
    } else {
        sizes[idx_max] += total - assigned;
    }
    sizes
}

/// Browser fetch model parameters.
#[derive(Debug, Clone, Copy)]
pub struct BrowserModel {
    /// Maximum simultaneously active connections (Chrome: 6 per host; we
    /// apply it page-wide as a simplification).
    pub max_concurrent: u32,
    /// Whether the HTML (first object) must finish before the rest start.
    pub html_first: bool,
}

impl Default for BrowserModel {
    fn default() -> Self {
        BrowserModel {
            max_concurrent: 6,
            html_first: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_rows() {
        let t2 = WebPage::table2();
        assert_eq!(t2.len(), 9);
        let fb = &t2[0];
        assert_eq!(fb.name, "facebook.com");
        assert_eq!(fb.page_bytes, 381_000);
        assert_eq!(fb.quic_bytes, 206_000);
        assert_eq!(fb.n_flows, 33);
        assert_eq!(fb.n_quic_flows, 21);
        let reddit = t2.iter().find(|p| p.name == "reddit.com").unwrap();
        assert_eq!(reddit.quic_bytes, 200); // 0.2 KB
        assert_eq!(reddit.n_flows, 90);
    }

    #[test]
    fn top20_is_twenty_pages_nine_quic() {
        let pages = WebPage::top20();
        assert_eq!(pages.len(), 20);
        assert_eq!(pages.iter().filter(|p| p.n_quic_flows > 0).count(), 9);
        assert_eq!(pages.iter().filter(|p| p.from_table2).count(), 9);
    }

    #[test]
    fn objects_sum_to_page_size() {
        let mut rng = Rng::new(1);
        for page in WebPage::top20() {
            let objs = page.objects(&mut rng);
            assert_eq!(objs.len(), page.n_flows as usize);
            let total: u64 = objs.iter().map(|o| o.bytes).sum();
            // Minimum-size padding can push slightly above the page size.
            let tol = 64 * page.n_flows as u64;
            assert!(
                total >= page.page_bytes.saturating_sub(tol) && total <= page.page_bytes + tol,
                "{}: total={total} want≈{}",
                page.name,
                page.page_bytes
            );
        }
    }

    #[test]
    fn quic_objects_share_one_connection() {
        let mut rng = Rng::new(2);
        let yt = &WebPage::table2()[3];
        let objs = yt.objects(&mut rng);
        let quic: Vec<&WebObject> = objs.iter().filter(|o| o.is_quic).collect();
        assert_eq!(quic.len(), 8);
        assert!(quic.iter().all(|o| o.conn == 0));
        let quic_total: u64 = quic.iter().map(|o| o.bytes).sum();
        assert!((quic_total as i64 - 79_000i64).unsigned_abs() < 64 * 9);
        // Non-QUIC objects each get their own connection.
        let mut conns: Vec<u32> = objs.iter().filter(|o| !o.is_quic).map(|o| o.conn).collect();
        conns.sort_unstable();
        conns.dedup();
        assert_eq!(conns.len(), (yt.n_flows - yt.n_quic_flows) as usize);
    }

    #[test]
    fn quic_flows_stay_short_vs_background() {
        // §6.1: max single QUIC flow 736 KB (Instagram) — still short
        // compared to the 1.92 MB background average.
        let mut rng = Rng::new(3);
        let mut max_quic = 0u64;
        for page in WebPage::table2() {
            // The aggregated QUIC *connection* carries quic_bytes total.
            let objs = page.objects(&mut rng);
            let conn_total: u64 = objs.iter().filter(|o| o.is_quic).map(|o| o.bytes).sum();
            max_quic = max_quic.max(conn_total);
        }
        assert!(max_quic <= 750_000, "max_quic={max_quic}");
    }

    #[test]
    fn split_heavy_is_skewed() {
        let mut rng = Rng::new(4);
        let sizes = split_heavy(1_000_000, 50, &mut rng);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > 10 * min.max(64), "max={max} min={min}");
    }

    #[test]
    fn split_heavy_edge_cases() {
        let mut rng = Rng::new(5);
        assert!(split_heavy(0, 0, &mut rng).is_empty());
        let one = split_heavy(5000, 1, &mut rng);
        assert_eq!(one, vec![5000]);
    }
}
