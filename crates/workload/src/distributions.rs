//! Flow-size distributions from the paper's workloads.
//!
//! Each distribution is an [`Empirical`] CDF with knots digitised from
//! the cited figures. Absolute fidelity to the original traces is not
//! required (the traces are not public at byte granularity); what the
//! experiments need is the *shape*: heavy tail, the 90 %-below-35.9 KB
//! property for \[41\], and the ~1.92 MB mean for websearch \[13\].

use outran_simcore::{Empirical, Rng};

/// Named flow-size distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSizeDist {
    /// Downlink LTE TCP flows (Huang et al. \[41\], Fig 2a): 90 % of
    /// flows < 35.9 KB, heavy-hitter tail carrying most bytes.
    LteCellular,
    /// MIRAGE mobile-app traffic \[12\] (used for the 5G simulations):
    /// shifted toward even smaller objects.
    MirageMobileApp,
    /// Websearch background traffic \[13\]: avg flow ≈ 1.92 MB (§6.1).
    Websearch,
    /// Fixed 8 KB short flows (the §6.3 incast case study).
    Incast8k,
}

impl FlowSizeDist {
    /// Materialise the CDF (values in bytes).
    pub fn cdf(self) -> Empirical {
        match self {
            FlowSizeDist::LteCellular => Empirical::from_cdf(&[
                (200.0, 0.07),
                (600.0, 0.18),
                (1.5e3, 0.35),
                (5.0e3, 0.57),
                (1.0e4, 0.70),
                (3.59e4, 0.90), // the paper's anchor point
                (1.0e5, 0.952),
                (3.0e5, 0.975),
                (1.0e6, 0.988),
                (5.0e6, 0.997),
                (1.5e7, 0.9995),
                (3.0e7, 1.0),
            ]),
            FlowSizeDist::MirageMobileApp => Empirical::from_cdf(&[
                (100.0, 0.10),
                (400.0, 0.32),
                (1.2e3, 0.55),
                (4.0e3, 0.75),
                (1.0e4, 0.86),
                (3.0e4, 0.94),
                (1.0e5, 0.975),
                (1.0e6, 0.995),
                (1.0e7, 1.0),
            ]),
            FlowSizeDist::Websearch => Empirical::from_cdf(&[
                (1.0e4, 0.15),
                (3.0e4, 0.28),
                (1.0e5, 0.45),
                (3.0e5, 0.58),
                (1.0e6, 0.72),
                (3.0e6, 0.87),
                (1.0e7, 0.95),
                (3.0e7, 0.995),
                (5.0e7, 1.0),
            ]),
            FlowSizeDist::Incast8k => {
                // Degenerate CDF pinned tightly around 8 KB; the first
                // knot carries negligible mass so the below-first-knot
                // interpolation region is effectively never sampled.
                Empirical::from_cdf(&[(8_000.0, 1e-9), (8_150.0, 0.999), (8_200.0, 1.0)])
            }
        }
    }

    /// Draw one flow size in bytes (≥ 64).
    pub fn sample(self, cdf: &Empirical, rng: &mut Rng) -> u64 {
        (cdf.sample(rng).round() as u64).max(64)
    }

    /// Mean flow size of the materialised CDF, in bytes.
    pub fn mean_bytes(self) -> f64 {
        self.cdf().mean()
    }

    /// Short-flow boundary used throughout the evaluation (< 10 KB = "S").
    pub const SHORT_BYTES: u64 = 10_000;
    /// Medium/long boundary (0.1 MB): (10 KB, 0.1 MB] = "M", above = "L".
    pub const LONG_BYTES: u64 = 100_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_cellular_anchor_point() {
        // Fig 2a: "90% of flows are < 35.9KB".
        let cdf = FlowSizeDist::LteCellular.cdf();
        assert!((cdf.cdf(3.59e4) - 0.90).abs() < 0.005);
    }

    #[test]
    fn lte_cellular_is_heavy_tailed() {
        let d = FlowSizeDist::LteCellular;
        let cdf = d.cdf();
        let median = cdf.quantile(0.5);
        let mean = cdf.mean();
        // Heavy tail: mean far above median.
        assert!(mean > 10.0 * median, "mean={mean} median={median}");
        // Most flows small, most bytes in big flows: sample and check.
        let mut rng = Rng::new(42);
        let samples: Vec<u64> = (0..50_000).map(|_| d.sample(&cdf, &mut rng)).collect();
        let total: u64 = samples.iter().sum();
        let from_big: u64 = samples.iter().filter(|&&s| s > 100_000).sum();
        let frac_flows_big =
            samples.iter().filter(|&&s| s > 100_000).count() as f64 / samples.len() as f64;
        assert!(frac_flows_big < 0.06, "big-flow fraction={frac_flows_big}");
        assert!(
            from_big as f64 / total as f64 > 0.5,
            "heavy hitters must carry most volume: {}",
            from_big as f64 / total as f64
        );
    }

    #[test]
    fn websearch_mean_matches_paper() {
        // §6.1: "average flow size of 1.92 MB".
        let mean = FlowSizeDist::Websearch.mean_bytes();
        assert!(
            (1.4e6..2.5e6).contains(&mean),
            "websearch mean={mean} (want ≈1.92 MB)"
        );
    }

    #[test]
    fn mirage_smaller_than_lte() {
        let m = FlowSizeDist::MirageMobileApp.cdf();
        let l = FlowSizeDist::LteCellular.cdf();
        assert!(m.quantile(0.5) < l.quantile(0.5));
        assert!(m.quantile(0.9) < l.quantile(0.9));
    }

    #[test]
    fn incast_is_8k() {
        let d = FlowSizeDist::Incast8k;
        let cdf = d.cdf();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let s = d.sample(&cdf, &mut rng);
            assert!((7_000..=8_500).contains(&s), "s={s}");
        }
    }

    #[test]
    fn samples_are_positive_and_bounded() {
        let mut rng = Rng::new(5);
        for d in [
            FlowSizeDist::LteCellular,
            FlowSizeDist::MirageMobileApp,
            FlowSizeDist::Websearch,
        ] {
            let cdf = d.cdf();
            for _ in 0..10_000 {
                let s = d.sample(&cdf, &mut rng);
                assert!(s >= 64);
                assert!(s <= 200_000_000);
            }
        }
    }
}
