//! # outran-workload
//!
//! Traffic generation for the OutRAN evaluation.
//!
//! * [`distributions`] — the flow-size distributions the paper draws
//!   from: the LTE cellular TCP distribution of Huang et al. \[41\]
//!   (Fig 2a: "90 % of flows are smaller than 35.9 KB"), the MIRAGE
//!   mobile-app distribution \[12\] used for 5G, the websearch
//!   distribution \[13\] used as heavy background traffic in the testbed
//!   (avg 1.92 MB), and the incast fixed-8 KB bursts of the §6.3 priority
//!   reset case study.
//! * [`arrivals`] — Poisson open-loop flow arrivals calibrated to a
//!   target cell load ("each UE requests … according to a Poisson
//!   process", §3/§6.1/§6.2).
//! * [`web`] — the Alexa-top-20 web page models behind Figures 12/21/22
//!   and Table 2: per-page total size, number of sub-flows, number of
//!   QUIC flows, and the QUIC five-tuple aggregation that exercises the
//!   §4.2 "Limitation" (persistent connections accumulating sent-bytes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod distributions;
pub mod web;

pub use arrivals::{FlowArrival, PoissonFlowGen};
pub use distributions::FlowSizeDist;
pub use web::{BrowserModel, WebObject, WebPage};
