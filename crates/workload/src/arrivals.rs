//! Poisson open-loop flow arrivals calibrated to a target cell load.
//!
//! The evaluation drives every scenario the same way: "UEs … request a
//! service from a remote server that generates downlink traffic according
//! to a Poisson process with a size distribution that follows the LTE
//! traffic distribution" (§3), with the *cell load* (offered bytes ÷ cell
//! capacity) swept as the experiment parameter (§6.2: 40–80 %).
//!
//! The arrival rate is derived as `λ = load · capacity / (8 · E[size])`
//! flows per second, with each arrival assigned to a uniformly random UE.

use outran_simcore::{Dur, Empirical, Exponential, Rng, Time};

use crate::distributions::FlowSizeDist;

/// One generated flow arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowArrival {
    /// When the first byte is offered at the server.
    pub at: Time,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Destination UE index.
    pub ue: usize,
}

/// Poisson flow generator.
#[derive(Debug, Clone)]
pub struct PoissonFlowGen {
    cdf: Empirical,
    dist: FlowSizeDist,
    inter: Exponential,
    n_ues: usize,
    next_at: Time,
    rng: Rng,
}

impl PoissonFlowGen {
    /// Create a generator targeting `load` (0–1] of `capacity_bps` across
    /// `n_ues` UEs with sizes from `dist`.
    pub fn new(
        dist: FlowSizeDist,
        load: f64,
        capacity_bps: f64,
        n_ues: usize,
        rng: Rng,
    ) -> PoissonFlowGen {
        assert!(load > 0.0 && load <= 2.0, "load={load}");
        assert!(capacity_bps > 0.0);
        assert!(n_ues > 0);
        let cdf = dist.cdf();
        let mean_bytes = cdf.mean();
        let lambda = load * capacity_bps / (8.0 * mean_bytes);
        PoissonFlowGen {
            cdf,
            dist,
            inter: Exponential::new(lambda),
            n_ues,
            next_at: Time::ZERO,
            rng,
        }
    }

    /// Arrival rate in flows per second.
    pub fn lambda(&self) -> f64 {
        self.inter.lambda()
    }

    /// Generate the next arrival (strictly increasing times).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> FlowArrival {
        let dt = self.inter.sample(&mut self.rng);
        self.next_at += Dur::from_secs_f64(dt);
        FlowArrival {
            at: self.next_at,
            bytes: self.dist.sample(&self.cdf, &mut self.rng),
            ue: self.rng.index(self.n_ues),
        }
    }

    /// Generate all arrivals up to `horizon`.
    pub fn take_until(&mut self, horizon: Time) -> Vec<FlowArrival> {
        let mut out = Vec::new();
        loop {
            let a = self.next();
            if a.at > horizon {
                break;
            }
            out.push(a);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_matches_target() {
        let cap = 100e6; // 100 Mbps
        let load = 0.6;
        let mut g = PoissonFlowGen::new(FlowSizeDist::LteCellular, load, cap, 10, Rng::new(3));
        let horizon = Time::from_secs(300);
        let flows = g.take_until(horizon);
        let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        let offered_bps = bytes as f64 * 8.0 / horizon.as_secs_f64();
        let ratio = offered_bps / (load * cap);
        assert!(
            (0.75..1.3).contains(&ratio),
            "offered/target={ratio} ({} flows)",
            flows.len()
        );
    }

    #[test]
    fn times_strictly_increase() {
        let mut g = PoissonFlowGen::new(FlowSizeDist::Websearch, 0.4, 50e6, 4, Rng::new(7));
        let mut prev = Time::ZERO;
        for _ in 0..1000 {
            let a = g.next();
            assert!(a.at > prev);
            prev = a.at;
        }
    }

    #[test]
    fn ues_roughly_uniform() {
        let mut g = PoissonFlowGen::new(FlowSizeDist::LteCellular, 0.6, 100e6, 5, Rng::new(9));
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[g.next().ue] += 1;
        }
        for &c in &counts {
            assert!((1_700..=2_300).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let mk = || {
            let mut g = PoissonFlowGen::new(FlowSizeDist::LteCellular, 0.5, 100e6, 8, Rng::new(11));
            (0..100).map(|_| g.next()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn higher_load_means_more_flows() {
        let count_at = |load: f64| {
            let mut g = PoissonFlowGen::new(FlowSizeDist::LteCellular, load, 100e6, 8, Rng::new(2));
            g.take_until(Time::from_secs(60)).len()
        };
        assert!(count_at(0.8) > count_at(0.4) * 3 / 2);
    }
}
