//! Criterion micro-benchmarks behind Figure 13: the per-SDU hot path
//! OutRAN adds to the xNodeB user plane — five-tuple header parsing,
//! flow-table observation (hash + MLFQ marking), ciphering, and the
//! RLC MLFQ push/pull discipline.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use outran_pdcp::{CipherStream, FiveTuple, FlowTable, MlfqConfig, Priority};
use outran_rlc::{MlfqQueues, RlcSdu};
use outran_simcore::Time;

fn bench_flow_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdcp_flow_table_observe");
    for n_flows in [1_000usize, 2_000, 4_000, 8_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n_flows), &n_flows, |b, &n| {
            let mut ft = FlowTable::new(MlfqConfig::default());
            let tuples: Vec<FiveTuple> = (0..n)
                .map(|i| FiveTuple::simulated(i as u64, (i % 16) as u16))
                .collect();
            for t in &tuples {
                ft.observe(*t, 1500, Time::ZERO);
            }
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % n;
                ft.observe(tuples[i], 1500, Time::ZERO)
            });
        });
    }
    g.finish();
}

fn bench_header_parse(c: &mut Criterion) {
    let tuple = FiveTuple::simulated(42, 3);
    let header = tuple.to_ipv4_header();
    c.bench_function("pdcp_parse_ipv4_five_tuple", |b| {
        b.iter(|| FiveTuple::parse_ipv4(std::hint::black_box(&header)))
    });
}

fn bench_cipher(c: &mut Criterion) {
    let stream = CipherStream::new(0xDEAD_BEEF);
    let payload = vec![0xA5u8; 1400];
    c.bench_function("pdcp_cipher_1400B", |b| {
        let mut count = 0u32;
        b.iter(|| {
            count = count.wrapping_add(1);
            stream.apply(count, std::hint::black_box(&payload))
        })
    });
}

fn bench_mlfq(c: &mut Criterion) {
    c.bench_function("rlc_mlfq_push_pull_cycle", |b| {
        b.iter_batched(
            || {
                let mut q = MlfqQueues::new(4, 256);
                for i in 0..128u64 {
                    let _ = q.push(RlcSdu {
                        id: i,
                        flow_id: i % 16,
                        tuple: FiveTuple::simulated(i % 16, 0),
                        len: 1400,
                        offset: 0,
                        priority: Priority((i % 4) as u8),
                        arrival: Time::ZERO,
                        seq: i * 1400,
                    });
                }
                q
            },
            |mut q| q.pull(64_000, 3),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_flow_table,
    bench_header_parse,
    bench_cipher,
    bench_mlfq
);
criterion_main!(benches);
