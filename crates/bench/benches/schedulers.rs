//! Criterion micro-benchmarks behind Figure 14: the per-TTI RB
//! allocation cost of each MAC scheduler as the number of RBs (i.e. the
//! DL bandwidth) and users scale. The claim under test: OutRAN's second
//! per-RB pass keeps the same O(|U|·|B|) complexity as PF, so its cost
//! ratio over PF stays constant as either dimension grows.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use outran_mac::{types::FlatRates, OutRanScheduler, PfScheduler, Scheduler, SrjfScheduler, UeTti};
use outran_pdcp::Priority;
use outran_simcore::{Dur, Rng, Time};

fn mk_ues(n: usize, rng: &mut Rng) -> Vec<UeTti> {
    (0..n)
        .map(|_| UeTti {
            active: true,
            head_priority: Some(Priority(rng.below(4) as u8)),
            queued_bytes: 10_000 + rng.below(100_000),
            oracle_min_remaining: Some(1_000 + rng.below(1_000_000)),
            hol_delay: Dur::from_millis(rng.below(50)),
            oracle_has_qos_flow: rng.chance(0.3),
        })
        .collect()
}

fn mk_rates(n_ues: usize, rbs: u16, rng: &mut Rng) -> FlatRates {
    FlatRates {
        per_ue: (0..n_ues).map(|_| 100.0 + rng.f64() * 900.0).collect(),
        rbs,
    }
}

fn bench_rb_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate_vs_rbs_40ues");
    for rbs in [25u16, 50, 75, 100, 273] {
        let mut rng = Rng::new(7);
        let ues = mk_ues(40, &mut rng);
        let rates = mk_rates(40, rbs, &mut rng);
        g.bench_with_input(BenchmarkId::new("PF", rbs), &rbs, |b, _| {
            let mut s = PfScheduler::new(40, Dur::from_millis(1));
            b.iter(|| {
                let a = s.allocate(Time::ZERO, &ues, &rates);
                s.on_served(&a.bits_per_ue);
                a
            })
        });
        g.bench_with_input(BenchmarkId::new("OutRAN", rbs), &rbs, |b, _| {
            let mut s = OutRanScheduler::over_pf(40, Dur::from_secs(1), Dur::from_millis(1), 0.2);
            b.iter(|| {
                let a = s.allocate(Time::ZERO, &ues, &rates);
                s.on_served(&a.bits_per_ue);
                a
            })
        });
    }
    g.finish();
}

fn bench_user_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate_vs_users_100rbs");
    for n_ues in [10usize, 40, 100] {
        let mut rng = Rng::new(9);
        let ues = mk_ues(n_ues, &mut rng);
        let rates = mk_rates(n_ues, 100, &mut rng);
        g.bench_with_input(BenchmarkId::new("PF", n_ues), &n_ues, |b, _| {
            let mut s = PfScheduler::new(n_ues, Dur::from_millis(1));
            b.iter(|| s.allocate(Time::ZERO, &ues, &rates))
        });
        g.bench_with_input(BenchmarkId::new("OutRAN", n_ues), &n_ues, |b, _| {
            let mut s =
                OutRanScheduler::over_pf(n_ues, Dur::from_secs(1), Dur::from_millis(1), 0.2);
            b.iter(|| s.allocate(Time::ZERO, &ues, &rates))
        });
        g.bench_with_input(BenchmarkId::new("SRJF", n_ues), &n_ues, |b, _| {
            let mut s = SrjfScheduler::default();
            b.iter(|| s.allocate(Time::ZERO, &ues, &rates))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rb_scaling, bench_user_scaling);
criterion_main!(benches);
