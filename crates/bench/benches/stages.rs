//! Per-stage microbenches of the dense-TTI hot path — the SoA kernels
//! behind BENCH_4's end-to-end numbers, measured in isolation so a
//! regression points at the guilty stage, not just at the total.
//!
//! Stages covered:
//! * `phy/advance_tti` — the batched AR(1) fading advance + CQI
//!   reporting pass over the flat tap planes (the per-TTI floor: two
//!   Box–Muller draws per tap per UE).
//! * `phy/fresh_outcomes` — the batched per-UE air-interface outcome
//!   draws (SINR composition + BLER + RNG per scheduled subband).
//! * `phy/fill_reported_rates` — the bulk CQI→rate row fill feeding the
//!   MAC rate matrix.
//! * `mac/cache_refresh` — the column-wise metric-cache refresh over a
//!   plane-backed rate matrix (steady-state: mostly version hits).
//! * `mac/allocate_*` — full scheduler kernels (refresh + column argmax
//!   and RB assignment) on the plane-backed [`TtiRates`], the exact
//!   in-pipeline configuration (the `schedulers` bench covers the
//!   virtual-dispatch fallback via `FlatRates`).
//!
//! Quick mode: set `OUTRAN_BENCH_TARGET_MS` (e.g. 25) to shrink each
//! benchmark's measurement window — used by CI's perf-smoke job.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use outran_mac::{
    OutRanScheduler, PfScheduler, Scheduler, SrjfScheduler, SubbandMetricCache, TtiRates, UeTti,
};
use outran_pdcp::Priority;
use outran_phy::channel::CellChannel;
use outran_phy::ChannelConfig;
use outran_simcore::{Dur, Rng, Time};

const USERS: usize = 16;

/// A warmed channel in the BENCH_2/BENCH_4 LTE setting.
fn warmed_channel() -> (CellChannel, Time) {
    let mut ch = CellChannel::new(ChannelConfig::lte_default(), USERS, &Rng::new(42));
    let tti = ch.config().radio.tti();
    let mut now = Time::ZERO;
    for _ in 0..100 {
        now += tti;
        ch.advance_tti(now);
    }
    (ch, now)
}

/// A plane-backed rate matrix filled from the warmed channel's reports.
fn warmed_rates(ch: &CellChannel) -> TtiRates {
    let n_sb = ch.config().n_subbands;
    let mut rates = TtiRates {
        per_ue_sb: vec![0.0; USERS * n_sb],
        rb_to_sb: (0..ch.n_rbs()).map(|rb| ch.subband_of_rb(rb)).collect(),
        n_sb,
        n_ues: USERS,
        reserved: vec![false; ch.n_rbs() as usize],
        versions: vec![1; USERS],
    };
    for u in 0..USERS {
        ch.fill_reported_rates(u, &mut rates.per_ue_sb[u * n_sb..(u + 1) * n_sb]);
    }
    rates
}

/// Busy-cell scheduler inputs: every UE backlogged.
fn busy_ues() -> Vec<UeTti> {
    (0..USERS)
        .map(|i| UeTti {
            active: true,
            head_priority: Some(Priority((i % 4) as u8)),
            queued_bytes: 1_000_000,
            oracle_min_remaining: Some(10_000 + i as u64 * 1_000),
            hol_delay: Dur::from_millis(5),
            oracle_has_qos_flow: i % 4 == 0,
        })
        .collect()
}

fn bench_phy(c: &mut Criterion) {
    let mut g = c.benchmark_group("phy");

    let (mut ch, mut now) = warmed_channel();
    let tti = ch.config().radio.tti();
    g.bench_function("advance_tti_16ue", |b| {
        b.iter(|| {
            now += tti;
            ch.advance_tti(now);
        })
    });

    let (mut ch, _) = warmed_channel();
    let n_sb = ch.config().n_subbands;
    let bits = vec![1_000.0; n_sb];
    let mut out = vec![false; n_sb];
    g.bench_function("fresh_outcomes_16ue", |b| {
        b.iter(|| {
            for ue in 0..USERS {
                ch.fresh_outcomes(ue, &bits, 8.0, &mut out);
            }
        })
    });

    let (ch, _) = warmed_channel();
    let mut row = vec![0.0; n_sb];
    g.bench_function("fill_reported_rates_16ue", |b| {
        b.iter(|| {
            for ue in 0..USERS {
                ch.fill_reported_rates(ue, &mut row);
            }
        })
    });

    g.finish();
}

fn bench_mac(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac");
    let (ch, _) = warmed_channel();
    let ues = busy_ues();

    // Steady-state cache refresh: one UE's row churns on the CQI report
    // cadence, the rest are version hits.
    let mut rates = warmed_rates(&ch);
    let n_sb = rates.n_sb;
    let mut cache = SubbandMetricCache::new();
    let mut turn = 0usize;
    g.bench_function("cache_refresh_16ue", |b| {
        b.iter(|| {
            let u = turn % USERS;
            turn += 1;
            rates.per_ue_sb[u * n_sb..(u + 1) * n_sb].rotate_left(1);
            rates.versions[u] += 1;
            cache.refresh(&rates, |_| 0, |_, r| r);
        })
    });

    let rates = warmed_rates(&ch);
    let tti = Dur::from_millis(1);
    let tf = Dur::from_millis(1000);

    let mut pf = PfScheduler::with_tf(USERS, tf, tti);
    g.bench_function("allocate_pf_planes", |b| {
        b.iter(|| {
            let a = pf.allocate(Time::ZERO, &ues, &rates);
            pf.on_served(&a.bits_per_ue);
            a
        })
    });

    let mut or = OutRanScheduler::over_pf(USERS, tf, tti, OutRanScheduler::DEFAULT_EPSILON);
    g.bench_function("allocate_outran_planes", |b| {
        b.iter(|| {
            let a = or.allocate(Time::ZERO, &ues, &rates);
            or.on_served(&a.bits_per_ue);
            a
        })
    });

    let mut srjf = SrjfScheduler::default();
    g.bench_function("allocate_srjf_planes", |b| {
        b.iter(|| srjf.allocate(Time::ZERO, &ues, &rates))
    });

    g.finish();
}

criterion_group!(benches, bench_phy, bench_mac);
criterion_main!(benches);
