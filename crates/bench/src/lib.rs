//! # outran-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation. One binary per figure/table under `src/bin/` (see the
//! DESIGN.md experiment index for the full mapping) plus Criterion
//! micro-benchmarks under `benches/` for the Figure 13/14 overhead
//! claims.
//!
//! Shared plumbing lives here: multi-seed averaging of experiment
//! reports, and the standard figure-row formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use outran_metrics::table::{f1, f2, f3};
use outran_ran::{Experiment, ExperimentReport};

/// Seeds used by default for averaged experiment points. Three seeds
/// keeps each figure binary's runtime in the minutes while smoothing the
/// heavy-tailed FCT noise.
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// Averages of the scalar metrics of several reports.
#[derive(Debug, Clone)]
pub struct AvgReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean of overall mean FCTs (ms).
    pub overall_mean_ms: f64,
    /// Mean of short-flow mean FCTs (ms).
    pub short_mean_ms: f64,
    /// Mean of short-flow 95th percentiles (ms).
    pub short_p95_ms: f64,
    /// Mean of short-flow 99th percentiles (ms).
    pub short_p99_ms: f64,
    /// Mean of medium-flow mean FCTs (ms).
    pub medium_mean_ms: f64,
    /// Mean of long-flow mean FCTs (ms).
    pub long_mean_ms: f64,
    /// Mean spectral efficiency (bit/s/Hz).
    pub spectral_efficiency: f64,
    /// Mean Jain fairness.
    pub fairness: f64,
    /// Mean queueing delay (ms).
    pub mean_qdelay_ms: f64,
    /// Mean short-flow queueing delay (ms).
    pub short_qdelay_ms: f64,
    /// Mean TCP RTT (ms).
    pub mean_rtt_ms: f64,
    /// Total completed flows across seeds.
    pub completed: usize,
    /// Total SDUs dropped at full RLC buffers across seeds.
    pub buffer_drops: u64,
    /// Total post-HARQ segment losses across seeds.
    pub residual_losses: u64,
    /// Total injected-fault / recovery events across seeds.
    pub fault_events: u64,
    /// Total invariant violations across seeds (should be 0).
    pub violations: u64,
    /// The individual reports (for CDFs etc.).
    pub runs: Vec<ExperimentReport>,
}

/// Run `build(seed)` for every seed and average the scalar metrics.
pub fn run_avg(build: impl Fn(u64) -> Experiment, seeds: &[u64]) -> AvgReport {
    assert!(!seeds.is_empty());
    let runs: Vec<ExperimentReport> = seeds.iter().map(|&s| build(s).run()).collect();
    let n = runs.len() as f64;
    let mean = |f: &dyn Fn(&ExperimentReport) -> f64| -> f64 {
        let vals: Vec<f64> = runs.iter().map(f).filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let _ = n;
    AvgReport {
        scheduler: runs[0].scheduler.clone(),
        overall_mean_ms: mean(&|r| r.fct.overall_mean_ms),
        short_mean_ms: mean(&|r| r.fct.short_mean_ms),
        short_p95_ms: mean(&|r| r.fct.short_p95_ms),
        short_p99_ms: mean(&|r| r.fct.short_p99_ms),
        medium_mean_ms: mean(&|r| r.fct.medium_mean_ms),
        long_mean_ms: mean(&|r| r.fct.long_mean_ms),
        spectral_efficiency: mean(&|r| r.spectral_efficiency),
        fairness: mean(&|r| r.fairness),
        mean_qdelay_ms: mean(&|r| r.mean_qdelay_ms),
        short_qdelay_ms: mean(&|r| r.short_qdelay_ms),
        mean_rtt_ms: mean(&|r| r.mean_rtt_ms),
        completed: runs.iter().map(|r| r.fct.count).sum(),
        buffer_drops: runs.iter().map(|r| r.buffer_drops).sum(),
        residual_losses: runs.iter().map(|r| r.residual_losses).sum(),
        fault_events: runs.iter().map(|r| r.fault_stats.total_events()).sum(),
        violations: runs.iter().map(|r| r.total_violations).sum(),
        runs,
    }
}

impl AvgReport {
    /// Standard row cells: FCT buckets + SE + fairness.
    pub fn fct_row(&self) -> Vec<String> {
        vec![
            self.scheduler.clone(),
            f1(self.overall_mean_ms),
            f1(self.short_mean_ms),
            f1(self.short_p95_ms),
            f1(self.medium_mean_ms),
            f1(self.long_mean_ms),
            f2(self.spectral_efficiency),
            f3(self.fairness),
        ]
    }

    /// Standard headers matching [`AvgReport::fct_row`].
    pub fn fct_headers() -> Vec<&'static str> {
        vec![
            "scheduler",
            "overall(ms)",
            "S avg(ms)",
            "S p95(ms)",
            "M avg(ms)",
            "L avg(ms)",
            "SE(b/s/Hz)",
            "fairness",
        ]
    }

    /// Loss/fault-health row: drops, losses, fault events, violations.
    pub fn health_row(&self) -> Vec<String> {
        vec![
            self.scheduler.clone(),
            self.buffer_drops.to_string(),
            self.residual_losses.to_string(),
            self.fault_events.to_string(),
            self.violations.to_string(),
        ]
    }

    /// Headers matching [`AvgReport::health_row`].
    pub fn health_headers() -> Vec<&'static str> {
        vec![
            "scheduler",
            "buffer drops",
            "residual losses",
            "fault events",
            "violations",
        ]
    }
}

/// Merge per-seed FCT CDF points of a bucket into one pooled CDF.
pub fn pooled_fct_cdf(
    report: &mut AvgReport,
    bucket: Option<outran_metrics::SizeBucket>,
    max_points: usize,
) -> Vec<(f64, f64)> {
    let mut all = outran_simcore::Percentiles::new();
    for run in &mut report.runs {
        for &(v, _) in &run.fct_collector.cdf(bucket, usize::MAX) {
            all.push(v);
        }
    }
    all.cdf_points(max_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outran_ran::SchedulerKind;

    #[test]
    fn run_avg_smoke() {
        let avg = run_avg(
            |seed| {
                Experiment::lte_default()
                    .users(4)
                    .load(0.3)
                    .duration_secs(3)
                    .scheduler(SchedulerKind::Pf)
                    .seed(seed)
            },
            &[1, 2],
        );
        assert_eq!(avg.runs.len(), 2);
        assert!(avg.completed > 0);
        assert!(!avg.fct_row().is_empty());
        assert_eq!(avg.fct_row().len(), AvgReport::fct_headers().len());
    }
}
