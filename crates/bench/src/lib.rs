//! # outran-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation. One binary per figure/table under `src/bin/` (see the
//! DESIGN.md experiment index for the full mapping) plus Criterion
//! micro-benchmarks under `benches/` for the Figure 13/14 overhead
//! claims.
//!
//! Shared plumbing lives here: multi-seed averaging of experiment
//! reports, and the standard figure-row formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use outran_metrics::table::{f1, f2, f3};
use outran_ran::{Experiment, ExperimentReport};

/// Seeds used by default for averaged experiment points. Three seeds
/// keeps each figure binary's runtime in the minutes while smoothing the
/// heavy-tailed FCT noise.
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// Averages of the scalar metrics of several reports.
#[derive(Debug, Clone)]
pub struct AvgReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean of overall mean FCTs (ms).
    pub overall_mean_ms: f64,
    /// Mean of short-flow mean FCTs (ms).
    pub short_mean_ms: f64,
    /// Mean of short-flow 95th percentiles (ms).
    pub short_p95_ms: f64,
    /// Mean of short-flow 99th percentiles (ms).
    pub short_p99_ms: f64,
    /// Mean of medium-flow mean FCTs (ms).
    pub medium_mean_ms: f64,
    /// Mean of long-flow mean FCTs (ms).
    pub long_mean_ms: f64,
    /// Mean spectral efficiency (bit/s/Hz).
    pub spectral_efficiency: f64,
    /// Mean Jain fairness.
    pub fairness: f64,
    /// Mean queueing delay (ms).
    pub mean_qdelay_ms: f64,
    /// Mean short-flow queueing delay (ms).
    pub short_qdelay_ms: f64,
    /// Mean TCP RTT (ms).
    pub mean_rtt_ms: f64,
    /// Total completed flows across seeds.
    pub completed: usize,
    /// Total SDUs dropped at full RLC buffers across seeds.
    pub buffer_drops: u64,
    /// Total post-HARQ segment losses across seeds.
    pub residual_losses: u64,
    /// Total injected-fault / recovery events across seeds.
    pub fault_events: u64,
    /// Total invariant violations across seeds (should be 0).
    pub violations: u64,
    /// The individual reports (for CDFs etc.).
    pub runs: Vec<ExperimentReport>,
}

/// Worker threads for sweep fan-out: `--threads N` (or `--threads=N`)
/// on the command line wins, else the `OUTRAN_THREADS` environment
/// variable, else every available core. Every figure binary inherits
/// the flag through [`run_avg`] / [`run_avg_grid`].
pub fn configured_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    threads_from_args(&args).unwrap_or_else(outran_ran::default_threads)
}

/// Parse `--threads N` / `--threads=N` out of an argument list.
pub fn threads_from_args(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok().filter(|&n| n >= 1);
        }
        if a == "--threads" {
            return it.next()?.parse().ok().filter(|&n| n >= 1);
        }
    }
    None
}

/// Run `build(seed)` for every seed — fanned across the worker pool —
/// and average the scalar metrics. Results are ordered by seed, so the
/// output is identical to the serial loop it replaced.
pub fn run_avg(build: impl Fn(u64) -> Experiment + Sync, seeds: &[u64]) -> AvgReport {
    assert!(!seeds.is_empty());
    let runs = outran_ran::parallel_map(configured_threads(), seeds.to_vec(), |s| build(s).run());
    average(expect_all(runs))
}

/// Unwrap supervised pool results. A figure point that failed even after
/// the pool's deterministic retry would silently skew the published
/// average, so the harness stops with the structured failure instead.
fn expect_all(
    runs: Vec<Result<ExperimentReport, outran_ran::WorkerFailure>>,
) -> Vec<ExperimentReport> {
    runs.into_iter()
        .map(|r| r.unwrap_or_else(|f| panic!("figure job failed permanently: {f}")))
        .collect()
}

/// Run every `(point, seed)` combination of a sweep grid across the
/// worker pool, then average each point's seeds. One job per
/// combination keeps all cores busy even when `seeds.len()` is small.
pub fn run_avg_grid<T, F>(points: Vec<T>, seeds: &[u64], build: F) -> Vec<(T, AvgReport)>
where
    T: Send + Sync,
    F: Fn(&T, u64) -> Experiment + Sync,
{
    assert!(!seeds.is_empty());
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|p| seeds.iter().map(move |&s| (p, s)))
        .collect();
    let runs = {
        let points = &points;
        expect_all(outran_ran::parallel_map(
            configured_threads(),
            jobs,
            |(p, s)| build(&points[p], s).run(),
        ))
    };
    let mut it = runs.into_iter();
    let n_seeds = seeds.len();
    points
        .into_iter()
        .map(|point| (point, average(it.by_ref().take(n_seeds).collect())))
        .collect()
}

/// Average already-computed reports (all from the same scheduler).
pub fn average(runs: Vec<ExperimentReport>) -> AvgReport {
    assert!(!runs.is_empty());
    let n = runs.len() as f64;
    let mean = |f: &dyn Fn(&ExperimentReport) -> f64| -> f64 {
        let vals: Vec<f64> = runs.iter().map(f).filter(|v| !v.is_nan()).collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let _ = n;
    AvgReport {
        scheduler: runs[0].scheduler.clone(),
        overall_mean_ms: mean(&|r| r.fct.overall_mean_ms),
        short_mean_ms: mean(&|r| r.fct.short_mean_ms),
        short_p95_ms: mean(&|r| r.fct.short_p95_ms),
        short_p99_ms: mean(&|r| r.fct.short_p99_ms),
        medium_mean_ms: mean(&|r| r.fct.medium_mean_ms),
        long_mean_ms: mean(&|r| r.fct.long_mean_ms),
        spectral_efficiency: mean(&|r| r.spectral_efficiency),
        fairness: mean(&|r| r.fairness),
        mean_qdelay_ms: mean(&|r| r.mean_qdelay_ms),
        short_qdelay_ms: mean(&|r| r.short_qdelay_ms),
        mean_rtt_ms: mean(&|r| r.mean_rtt_ms),
        completed: runs.iter().map(|r| r.fct.count).sum(),
        buffer_drops: runs.iter().map(|r| r.buffer_drops).sum(),
        residual_losses: runs.iter().map(|r| r.residual_losses).sum(),
        fault_events: runs.iter().map(|r| r.fault_stats.total_events()).sum(),
        violations: runs.iter().map(|r| r.total_violations).sum(),
        runs,
    }
}

impl AvgReport {
    /// Standard row cells: FCT buckets + SE + fairness.
    pub fn fct_row(&self) -> Vec<String> {
        vec![
            self.scheduler.clone(),
            f1(self.overall_mean_ms),
            f1(self.short_mean_ms),
            f1(self.short_p95_ms),
            f1(self.medium_mean_ms),
            f1(self.long_mean_ms),
            f2(self.spectral_efficiency),
            f3(self.fairness),
        ]
    }

    /// Standard headers matching [`AvgReport::fct_row`].
    pub fn fct_headers() -> Vec<&'static str> {
        vec![
            "scheduler",
            "overall(ms)",
            "S avg(ms)",
            "S p95(ms)",
            "M avg(ms)",
            "L avg(ms)",
            "SE(b/s/Hz)",
            "fairness",
        ]
    }

    /// Loss/fault-health row: drops, losses, fault events, violations.
    pub fn health_row(&self) -> Vec<String> {
        vec![
            self.scheduler.clone(),
            self.buffer_drops.to_string(),
            self.residual_losses.to_string(),
            self.fault_events.to_string(),
            self.violations.to_string(),
        ]
    }

    /// Headers matching [`AvgReport::health_row`].
    pub fn health_headers() -> Vec<&'static str> {
        vec![
            "scheduler",
            "buffer drops",
            "residual losses",
            "fault events",
            "violations",
        ]
    }
}

/// Merge per-seed FCT CDF points of a bucket into one pooled CDF.
pub fn pooled_fct_cdf(
    report: &mut AvgReport,
    bucket: Option<outran_metrics::SizeBucket>,
    max_points: usize,
) -> Vec<(f64, f64)> {
    let mut all = outran_simcore::Percentiles::new();
    for run in &mut report.runs {
        for &(v, _) in &run.fct_collector.cdf(bucket, usize::MAX) {
            all.push(v);
        }
    }
    all.cdf_points(max_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use outran_ran::SchedulerKind;

    #[test]
    fn run_avg_smoke() {
        let avg = run_avg(
            |seed| {
                Experiment::lte_default()
                    .users(4)
                    .load(0.3)
                    .duration_secs(3)
                    .scheduler(SchedulerKind::Pf)
                    .seed(seed)
            },
            &[1, 2],
        );
        assert_eq!(avg.runs.len(), 2);
        assert!(avg.completed > 0);
        assert!(!avg.fct_row().is_empty());
        assert_eq!(avg.fct_row().len(), AvgReport::fct_headers().len());
    }

    #[test]
    fn threads_flag_parsing() {
        let a = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from_args(&a(&["bin", "--threads", "8"])), Some(8));
        assert_eq!(threads_from_args(&a(&["bin", "--threads=2"])), Some(2));
        assert_eq!(threads_from_args(&a(&["bin", "--threads=0"])), None);
        assert_eq!(threads_from_args(&a(&["bin", "--threads"])), None);
        assert_eq!(threads_from_args(&a(&["bin"])), None);
    }

    #[test]
    fn grid_matches_run_avg() {
        let build = |load: &f64, seed: u64| {
            Experiment::lte_default()
                .users(4)
                .load(*load)
                .duration_secs(2)
                .scheduler(SchedulerKind::Pf)
                .seed(seed)
        };
        let grid = run_avg_grid(vec![0.2f64, 0.4], &[1, 2], build);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].0, 0.2);
        let solo = run_avg(|s| build(&0.4, s), &[1, 2]);
        assert_eq!(grid[1].1.overall_mean_ms, solo.overall_mean_ms);
        assert_eq!(grid[1].1.completed, solo.completed);
    }
}
