//! Table 1 — QoS profiling of mobile applications.
//!
//! Reproduces the classification the paper measured on a commercial-grade
//! 5G NSA testbed: all internet traffic shares the default best-effort
//! bearer (QCI 6); only VoIP gets a dedicated GBR bearer.

#![forbid(unsafe_code)]

use outran_metrics::Table;
use outran_ran::qos::{table1_rows, AppKind, BearerKind};

fn app_name(a: AppKind) -> &'static str {
    match a {
        AppKind::Voip => "VoIP (i.e., VoLTE)",
        AppKind::ImsSignaling => "IMS signaling",
        AppKind::WebBrowsing => "Web browsing",
        AppKind::SocialNetworking => "Social networking",
        AppKind::TcpVideo => "TCP-based video",
        AppKind::FileTransfer => "File transfer",
    }
}

fn main() {
    let mut t = Table::new(
        "Table 1: QoS profiling of mobile applications (5G NSA testbed model)",
        &["Application", "Traffic Class", "Bearer", "QCI", "Service"],
    );
    for (app, p) in table1_rows() {
        let bearer = match p.bearer {
            BearerKind::DedicatedGbr => "Dedicated GBR".to_string(),
            BearerKind::Default => "Default".to_string(),
        };
        t.row(&[
            app_name(app).to_string(),
            format!("{:?}", p.class),
            bearer,
            p.qci.to_string(),
            p.service.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nObservation (paper §3): every internet application shares QCI 6 — the\n\
         latency-sensitive Interactive class and heavy Background class are the\n\
         same citizens at the base station scheduler."
    );
}
