//! Figure 20 — [NS-3 5G] FCT across cell loads under the MIRAGE
//! mobile-app workload, plus the SE/fairness scatter. On the stable
//! 5G-LENA-like channel SRJF performs ideally (Appendix B).

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::{f1, f2, f3};
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let mut fct = Table::new(
        "Fig 20(a): 5G overall average FCT (ms), MIRAGE workload",
        &["scheduler", "0.4", "0.5", "0.6", "0.7", "0.8"],
    );
    let mut sf = Table::new(
        "Fig 20(b): 5G spectral efficiency / fairness",
        &["scheduler", "load", "SE", "fairness"],
    );
    for kind in [
        SchedulerKind::Pf,
        SchedulerKind::Srjf,
        SchedulerKind::OutRan,
    ] {
        let mut row = vec![kind.name().to_string()];
        for load in [0.4, 0.5, 0.6, 0.7, 0.8] {
            let r = run_avg(
                |seed| {
                    Experiment::nr_default(1)
                        .load(load)
                        .duration_secs(8)
                        .scheduler(kind)
                        .seed(seed)
                },
                &SEEDS,
            );
            row.push(f1(r.overall_mean_ms));
            if (load - 0.4).abs() < 1e-9 || (load - 0.6).abs() < 1e-9 || (load - 0.8).abs() < 1e-9 {
                sf.row(&[
                    kind.name().to_string(),
                    format!("{load:.1}"),
                    f2(r.spectral_efficiency),
                    f3(r.fairness),
                ]);
            }
        }
        fct.row(&row);
        eprintln!("  [fig20] {} done", kind.name());
    }
    fct.print();
    println!();
    sf.print();
    println!(
        "\npaper: on the stable 5G channel SRJF attains the best FCT (as in a\n\
         datacenter) and its SE/fairness penalty shrinks; OutRAN tracks SRJF\n\
         without oracle knowledge."
    );
}
