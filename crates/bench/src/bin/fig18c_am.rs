//! Figure 18(c) — the RLC AM case study: short-flow FCT tail CDFs for
//! {AM, UM} × {PF, OutRAN}. AM's retransmission machinery adds latency
//! versus UM; OutRAN helps in both modes by prioritising the Tx queue
//! within the opportunity left after Ctrl/Retx (§4.4).

#![forbid(unsafe_code)]

use outran_bench::{pooled_fct_cdf, run_avg, SEEDS};
use outran_metrics::table::{f1, print_series};
use outran_metrics::SizeBucket;
use outran_ran::{Experiment, RlcMode, SchedulerKind};

fn main() {
    let build = |mode: RlcMode, kind: SchedulerKind| {
        move |seed: u64| {
            Experiment::lte_default()
                .users(40)
                .load(0.6)
                .duration_secs(20)
                .rlc_mode(mode)
                .scheduler(kind)
                .seed(seed)
        }
    };
    println!("Fig 18(c): short-flow FCT tail CDFs, RLC UM vs AM\n");
    let mut summary = Vec::new();
    for (mode, mlabel) in [(RlcMode::Am, "AM"), (RlcMode::Um, "UM")] {
        for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
            let mut r = run_avg(build(mode, kind), &SEEDS);
            let cdf = pooled_fct_cdf(&mut r, Some(SizeBucket::Short), 400);
            let tail: Vec<(f64, f64)> = cdf.into_iter().filter(|&(_, p)| p >= 0.9).collect();
            let label = format!("{mlabel}+{}", kind.name());
            print_series(&format!("{label} short FCT (ms) CDF tail"), &tail, 10);
            summary.push((label, r.short_mean_ms, r.short_p95_ms, r.overall_mean_ms));
        }
    }
    println!("\nsummary:");
    println!(
        "  {:<12} {:>10} {:>10} {:>12}",
        "config", "S avg(ms)", "S p95(ms)", "overall(ms)"
    );
    for (label, avg, p95, overall) in summary {
        println!(
            "  {:<12} {:>10} {:>10} {:>12}",
            label,
            f1(avg),
            f1(p95),
            f1(overall)
        );
    }
    println!(
        "\npaper: AM+PF is the worst tail; AM+OutRAN beats even UM+PF;\n\
         UM+OutRAN is best overall (avg FCT −30 % vs PF in AM mode)"
    );
}
