//! Figure 3 — the motivation experiment: flow scheduling at the xNodeB.
//!
//! (a) With oracle SRJF flow scheduling, short-flow (<10 KB) average and
//!     tail FCT improve substantially over PF (paper: −35 % avg, −59 %
//!     p99).
//! (b) With a ×5 per-user buffer, PF's short FCT inflates (bufferbloat)
//!     while SRJF's stays low.

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::f2;
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

fn exp(kind: SchedulerKind, buffer: usize) -> impl Fn(u64) -> Experiment {
    move |seed| {
        Experiment::lte_default()
            .srjf_mode(outran_mac::SrjfMode::WinnerOnly)
            .users(40)
            .load(0.6)
            .duration_secs(20)
            .scheduler(kind)
            .buffer_sdus(buffer)
            .seed(seed)
    }
}

fn main() {
    println!("Figure 3(a): SRJF vs PF, short-flow FCT (normalized to PF)\n");
    let pf = run_avg(exp(SchedulerKind::Pf, 128), &SEEDS);
    let srjf = run_avg(exp(SchedulerKind::Srjf, 128), &SEEDS);

    let mut t = Table::new(
        "Fig 3(a) normalized short FCT",
        &[
            "scheduler",
            "S avg (norm)",
            "S p99 (norm)",
            "S avg (ms)",
            "S p99 (ms)",
        ],
    );
    for r in [&srjf, &pf] {
        t.row(&[
            r.scheduler.clone(),
            f2(r.short_mean_ms / pf.short_mean_ms),
            f2(r.short_p99_ms / pf.short_p99_ms),
            f2(r.short_mean_ms),
            f2(r.short_p99_ms),
        ]);
    }
    t.print();
    println!("paper: SRJF ≈ 0.65 avg / 0.41 p99 relative to PF\n");

    println!("Figure 3(b): per-user buffer sensitivity (short FCT, normalized to PF x1)\n");
    let mut t2 = Table::new(
        "Fig 3(b) buffer scaling",
        &["scheduler", "buffer", "S avg (norm)", "S avg (ms)"],
    );
    for (kind, label) in [(SchedulerKind::Srjf, "SRJF"), (SchedulerKind::Pf, "PF")] {
        for (mult, cap) in [("x1", 128usize), ("x5", 640)] {
            let r = run_avg(exp(kind, cap), &SEEDS);
            t2.row(&[
                label.to_string(),
                mult.to_string(),
                f2(r.short_mean_ms / pf.short_mean_ms),
                f2(r.short_mean_ms),
            ]);
        }
    }
    t2.print();
    println!("paper: PF short FCT grows dramatically at x5 while SRJF stays flat");
}
