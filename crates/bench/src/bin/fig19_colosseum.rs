//! Figure 19 — Colosseum-style multi-cell experiments: three RF
//! scenarios (Rome: close/moderate, Boston: close/fast, POWDER:
//! medium/static) × three cell loads, vanilla srsRAN (PF) vs OutRAN,
//! reporting the appendix table's FCT columns.

#![forbid(unsafe_code)]

use outran_metrics::table::f1;
use outran_metrics::Table;
use outran_phy::Scenario;
use outran_ran::cell::SchedulerKind;
use outran_ran::multicell::MultiCell;
use outran_simcore::Time;

fn main() {
    let mut t = Table::new(
        "Fig 19: Colosseum scenarios (4 cells x 4 UEs, 15 RBs)",
        &[
            "scenario",
            "load",
            "sched",
            "overall(ms)",
            "S(ms)",
            "S p95(ms)",
            "M(ms)",
            "L(ms)",
        ],
    );
    for scenario in [
        Scenario::ColosseumRome,
        Scenario::ColosseumBoston,
        Scenario::ColosseumPowder,
    ] {
        // The paper's loads {0.2, 0.4, 0.6} are fractions of the 15-RB
        // cells' *achieved* capacity under Colosseum RF; our load knob is
        // nominal-peak-relative, so the equivalent contention needs
        // roughly 1.7x the nominal setting.
        for load in [0.35, 0.7, 1.05] {
            for (kind, label) in [
                (SchedulerKind::Pf, "srsRAN"),
                (SchedulerKind::OutRan, "OutRAN"),
            ] {
                let mut mc = MultiCell::colosseum(scenario, kind, load);
                mc.duration = Time::from_secs(15);
                let r = mc.run();
                t.row(&[
                    scenario.name(),
                    format!("{load:.1}"),
                    label.into(),
                    f1(r.overall_mean_ms),
                    f1(r.short_mean_ms),
                    f1(r.short_p95_ms),
                    f1(r.medium_mean_ms),
                    f1(r.long_mean_ms),
                ]);
            }
            eprintln!("  [fig19] {} load {load} done", scenario.name());
        }
    }
    t.print();
    println!(
        "\npaper: OutRAN improves average FCT by ~32 % and short-flow FCT by\n\
         ~56 % across scenarios/loads without hurting long flows"
    );
}
