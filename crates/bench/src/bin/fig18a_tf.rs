//! Figure 18(a) — PF with different fairness windows T_f: a small T_f
//! behaves like round robin (high fairness, lower SE), a huge T_f drifts
//! toward MT (max SE, lower fairness).

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::{f2, f3};
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};
use outran_simcore::Dur;

fn main() {
    let mut t = Table::new(
        "Fig 18(a): PF fairness-window sweep (LTE, load 0.6)",
        &["T_f", "SE (bit/s/Hz)", "fairness"],
    );
    for (label, tf) in [
        ("10ms", Dur::from_millis(10)),
        ("100ms", Dur::from_millis(100)),
        ("1s", Dur::from_secs(1)),
        ("10s", Dur::from_secs(10)),
        ("100s", Dur::from_secs(100)),
    ] {
        let r = run_avg(
            |seed| {
                Experiment::lte_default()
                    .users(40)
                    .load(0.6)
                    .duration_secs(20)
                    .scheduler(SchedulerKind::Pf)
                    .fairness_window(tf)
                    .seed(seed)
            },
            &SEEDS,
        );
        t.row(&[label.into(), f2(r.spectral_efficiency), f3(r.fairness)]);
    }
    let mt = run_avg(
        |seed| {
            Experiment::lte_default()
                .users(40)
                .load(0.6)
                .duration_secs(20)
                .scheduler(SchedulerKind::Mt)
                .seed(seed)
        },
        &SEEDS,
    );
    t.row(&["MT".into(), f2(mt.spectral_efficiency), f3(mt.fairness)]);
    t.print();
    println!(
        "\npaper: fairness decreases monotonically from the 10 ms (RR-like)\n\
         corner toward MT while SE increases"
    );
}
