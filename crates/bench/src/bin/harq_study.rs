//! Ablation beyond the paper: folded vs explicit HARQ modelling.
//!
//! The paper's simulators (and ours, by default) fold HARQ into an
//! effective BLER. This study quantifies what the explicit model (8
//! processes, 8-TTI feedback, chase combining, max 4 transmissions)
//! changes — and verifies the headline OutRAN-vs-PF comparison is
//! insensitive to the choice, i.e. the folded default does not bias the
//! reproduction.

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::{f1, f2, f3};
use outran_metrics::Table;
use outran_phy::harq::HarqConfig;
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let mut t = Table::new(
        "HARQ model ablation (LTE, 40 UEs, load 0.6)",
        &[
            "HARQ model",
            "sched",
            "S avg(ms)",
            "S p95(ms)",
            "overall(ms)",
            "SE",
            "fairness",
        ],
    );
    let mut ratios = Vec::new();
    for (label, harq) in [("folded", None), ("explicit", Some(HarqConfig::default()))] {
        let mut tails = Vec::new();
        for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
            let r = run_avg(
                |seed| {
                    Experiment::lte_default()
                        .users(40)
                        .load(0.6)
                        .duration_secs(20)
                        .scheduler(kind)
                        .harq(harq)
                        .seed(seed)
                },
                &SEEDS,
            );
            tails.push(r.short_p95_ms);
            t.row(&[
                label.into(),
                kind.name().to_string(),
                f1(r.short_mean_ms),
                f1(r.short_p95_ms),
                f1(r.overall_mean_ms),
                f2(r.spectral_efficiency),
                f3(r.fairness),
            ]);
        }
        ratios.push((label, tails[1] / tails[0]));
        eprintln!("  [harq_study] {label} done");
    }
    t.print();
    println!("\nOutRAN/PF short-p95 ratio per model:");
    for (label, ratio) in ratios {
        println!("  {label:<9} {ratio:.2}");
    }
    println!(
        "\nThe explicit model is substantially more pessimistic: during\n\
         stale-CQI outage stretches (shadowing moves all subbands together)\n\
         a block can exhaust its four attempts and surface as a whole-TB\n\
         burst loss to TCP, and deferred retransmissions wait for grants\n\
         large enough to fit. The scheduler comparison's direction is\n\
         preserved under both models (OutRAN/PF < 1), which is what the\n\
         folded default needs to justify its use in the figure benches."
    );
}
