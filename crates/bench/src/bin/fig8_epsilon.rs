//! Figure 8 — OutRAN sensitivity to the relaxation threshold ε:
//! fairness vs spectral efficiency as ε sweeps from 0 to 1, with the PF
//! baseline at ε = 0. The paper observes steady performance for ε < 0.4
//! and picks ε = 0.2.

#![forbid(unsafe_code)]

use outran_bench::{run_avg_grid, SEEDS};
use outran_metrics::table::{f1, f2, f3};
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let mut t = Table::new(
        "Fig 8: OutRAN sensitivity to epsilon (LTE, load 0.6)",
        &[
            "epsilon",
            "SE (bit/s/Hz)",
            "fairness",
            "S avg (ms)",
            "S p95 (ms)",
        ],
    );
    // The whole ε sweep (plus the PF reference) is one parallel grid.
    let mut points: Vec<(String, SchedulerKind)> = [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
        .iter()
        .map(|&eps| (format!("{eps:.1}"), SchedulerKind::OutRanEps(eps)))
        .collect();
    points.push(("PF".into(), SchedulerKind::Pf));
    let results = run_avg_grid(points, &SEEDS, |(_, kind), seed| {
        Experiment::lte_default()
            .users(40)
            .load(0.6)
            .duration_secs(20)
            .scheduler(*kind)
            .seed(seed)
    });
    for ((label, _), r) in results {
        t.row(&[
            label,
            f2(r.spectral_efficiency),
            f3(r.fairness),
            f1(r.short_mean_ms),
            f1(r.short_p95_ms),
        ]);
    }
    t.print();
    println!(
        "\npaper: SE/fairness degrade slowly until e≈0.4 then collapse toward\n\
         the strict-MLFQ corner; e=0.2 is the chosen balance"
    );
}
