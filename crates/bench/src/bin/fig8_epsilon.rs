//! Figure 8 — OutRAN sensitivity to the relaxation threshold ε:
//! fairness vs spectral efficiency as ε sweeps from 0 to 1, with the PF
//! baseline at ε = 0. The paper observes steady performance for ε < 0.4
//! and picks ε = 0.2.

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::{f1, f2, f3};
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let mut t = Table::new(
        "Fig 8: OutRAN sensitivity to epsilon (LTE, load 0.6)",
        &[
            "epsilon",
            "SE (bit/s/Hz)",
            "fairness",
            "S avg (ms)",
            "S p95 (ms)",
        ],
    );
    for eps in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0] {
        let r = run_avg(
            |seed| {
                Experiment::lte_default()
                    .users(40)
                    .load(0.6)
                    .duration_secs(20)
                    .scheduler(SchedulerKind::OutRanEps(eps))
                    .seed(seed)
            },
            &SEEDS,
        );
        t.row(&[
            format!("{eps:.1}"),
            f2(r.spectral_efficiency),
            f3(r.fairness),
            f1(r.short_mean_ms),
            f1(r.short_p95_ms),
        ]);
    }
    let pf = run_avg(
        |seed| {
            Experiment::lte_default()
                .users(40)
                .load(0.6)
                .duration_secs(20)
                .scheduler(SchedulerKind::Pf)
                .seed(seed)
        },
        &SEEDS,
    );
    t.row(&[
        "PF".into(),
        f2(pf.spectral_efficiency),
        f3(pf.fairness),
        f1(pf.short_mean_ms),
        f1(pf.short_p95_ms),
    ]);
    t.print();
    println!(
        "\npaper: SE/fairness degrade slowly until e≈0.4 then collapse toward\n\
         the strict-MLFQ corner; e=0.2 is the chosen balance"
    );
}
