//! Figure 7 — proof-of-concept CDFs: spectral efficiency, fairness, and
//! short/long FCT for OutRAN (ε = 0.2) vs strict MLFQ (ε = 1) vs PF,
//! plus the ε = 0 (intra-user-only) tail comparison.

#![forbid(unsafe_code)]

use outran_bench::{pooled_fct_cdf, run_avg, SEEDS};
use outran_metrics::table::{f1, f2, f3, print_series};
use outran_metrics::SizeBucket;
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let build = |kind: SchedulerKind| {
        move |seed: u64| {
            Experiment::lte_default()
                .users(40)
                .load(0.6)
                .duration_secs(20)
                .scheduler(kind)
                .seed(seed)
        }
    };
    let mut pf = run_avg(build(SchedulerKind::Pf), &SEEDS);
    let mut outran = run_avg(build(SchedulerKind::OutRanEps(0.2)), &SEEDS);
    let mut strict = run_avg(build(SchedulerKind::StrictMlfq), &SEEDS);
    let mut intra = run_avg(build(SchedulerKind::OutRanEps(0.0)), &SEEDS);
    intra.scheduler = "OutRAN(e=0)".into();

    println!("Figure 7(a): spectral-efficiency CDFs (windowed samples)\n");
    for r in [&pf, &outran, &strict] {
        print_series(&format!("{} SE CDF", r.scheduler), &r.runs[0].se_cdf, 12);
    }
    println!(
        "\nmean SE: PF {}  OutRAN {} ({:.0} % of PF; paper ≥98 %)  strictMLFQ {}\n",
        f2(pf.spectral_efficiency),
        f2(outran.spectral_efficiency),
        100.0 * outran.spectral_efficiency / pf.spectral_efficiency,
        f2(strict.spectral_efficiency),
    );

    println!("Figure 7(b): fairness CDFs\n");
    for r in [&pf, &outran, &strict] {
        print_series(
            &format!("{} fairness CDF", r.scheduler),
            &r.runs[0].fairness_cdf,
            12,
        );
    }
    println!(
        "\nmean fairness: PF {}  OutRAN {} ({:.0} % of PF; paper ≥97 %)  strictMLFQ {}\n",
        f3(pf.fairness),
        f3(outran.fairness),
        100.0 * outran.fairness / pf.fairness,
        f3(strict.fairness),
    );

    println!("Figure 7(c): FCT distributions (tail region)\n");
    for (r, label) in [
        (&mut pf, "PF"),
        (&mut outran, "OutRAN(e=0.2)"),
        (&mut strict, "StrictMLFQ"),
        (&mut intra, "OutRAN(e=0)"),
    ] {
        let short = pooled_fct_cdf(r, Some(SizeBucket::Short), 400);
        let tail: Vec<(f64, f64)> = short.into_iter().filter(|&(_, p)| p >= 0.9).collect();
        print_series(&format!("{label} short FCT (ms) CDF tail"), &tail, 10);
        let long = pooled_fct_cdf(r, Some(SizeBucket::Long), 400);
        let ltail: Vec<(f64, f64)> = long.into_iter().filter(|&(_, p)| p >= 0.9).collect();
        print_series(&format!("{label} long FCT (ms) CDF tail"), &ltail, 6);
    }
    println!(
        "\nsummary: short p95 (ms): PF {}  OutRAN(0.2) {}  strict {}  OutRAN(0) {}",
        f1(pf.short_p95_ms),
        f1(outran.short_p95_ms),
        f1(strict.short_p95_ms),
        f1(intra.short_p95_ms),
    );
    println!(
        "paper: OutRAN(0.2) ≈ strict MLFQ on short FCT without the SE/fairness\n\
        cost, and improves short tails ~10 % over the intra-only e=0 variant"
    );
}
