//! Figures 12/21/22 — web page load times over the testbed model:
//! Alexa-top-20 pages loaded by a UE while background websearch traffic
//! (avg 1.92 MB flows) keeps the cell at ~60 % load, vanilla srsRAN (PF)
//! vs OutRAN. QUIC is enabled: QUIC pages multiplex objects over one
//! five-tuple, exercising the §4.2 limitation.

#![forbid(unsafe_code)]

use outran_metrics::table::f1;
use outran_metrics::Table;
use outran_phy::Scenario;
use outran_ran::cell::{Cell, CellConfig, SchedulerKind};
use outran_ran::webplt::load_page;
use outran_simcore::{Dur, Rng, Time};
use outran_workload::{BrowserModel, FlowSizeDist, PoissonFlowGen, WebPage};

const RUNS_PER_PAGE: usize = 16;

/// Mean PLT and mean sub-flow FCT for one page under one scheduler.
fn page_plt(page: &WebPage, kind: SchedulerKind, seed: u64) -> (f64, f64) {
    let mut cfg = CellConfig::lte_default(4, kind, seed);
    // Pages live on their original (internet) servers — §6.1.
    cfg.cn_delay = Dur::from_millis(25);
    cfg.channel = Scenario::Testbed.channel_config();
    let mut cell = Cell::new(cfg);
    // Background websearch on every UE — §6.1: "Each UE requests
    // background flows (i.e., bulky file transfer)". The browsing UE's
    // page sub-flows therefore contend with elephants both across UEs
    // and inside its own RLC buffer.
    // The paper sets "average cell load … to 60 %" of the cell's
    // *achieved* capacity under its CQI trace; our load knob is relative
    // to the nominal 97 Mbps peak, so an equivalent contention level
    // needs a higher nominal setting (the trace-driven testbed channel
    // sustains well below peak).
    let capacity = 87e6;
    let mut bg = PoissonFlowGen::new(
        FlowSizeDist::Websearch,
        0.9,
        capacity,
        4,
        Rng::new(seed ^ 0xB0),
    );
    for a in bg.take_until(Time::from_secs(240)) {
        cell.schedule_flow(a.at, a.ue, a.bytes, None);
    }
    cell.run_until(Time::from_secs(1)); // warm the cell up
    let mut rng = Rng::new(seed ^ 0x9A);
    let mut plts = Vec::new();
    let mut fcts = Vec::new();
    for run in 0..RUNS_PER_PAGE {
        let r = load_page(
            &mut cell,
            page,
            0,
            BrowserModel::default(),
            &mut rng,
            (run as u64 + 1) * 1000,
        );
        plts.push(r.plt.as_millis_f64());
        fcts.extend(r.object_fcts.iter().map(|d| d.as_millis_f64()));
        // Think time between page loads (paper: every 15 s; shortened —
        // the background process keeps the contention level equivalent).
        let resume = Time(cell.now().0 + Dur::from_millis(500).as_nanos());
        cell.run_until(resume);
    }
    (
        plts.iter().sum::<f64>() / plts.len() as f64,
        fcts.iter().sum::<f64>() / fcts.len().max(1) as f64,
    )
}

fn main() {
    let mut t = Table::new(
        "Fig 12/21: page load time, srsRAN (PF) vs OutRAN",
        &[
            "page",
            "PLT PF(ms)",
            "PLT OutRAN(ms)",
            "dPLT(%)",
            "FCT PF(ms)",
            "FCT OutRAN(ms)",
            "dFCT(%)",
        ],
    );
    let mut plt_gains = Vec::new();
    let mut fct_gains = Vec::new();
    for page in WebPage::top20() {
        let (pf_plt, pf_fct) = page_plt(&page, SchedulerKind::Pf, 7);
        let (or_plt, or_fct) = page_plt(&page, SchedulerKind::OutRan, 7);
        let dplt = 100.0 * (pf_plt - or_plt) / pf_plt;
        let dfct = 100.0 * (pf_fct - or_fct) / pf_fct;
        plt_gains.push(dplt);
        fct_gains.push(dfct);
        t.row(&[
            page.name.to_string(),
            f1(pf_plt),
            f1(or_plt),
            f1(dplt),
            f1(pf_fct),
            f1(or_fct),
            f1(dfct),
        ]);
        eprintln!("  [fig12] {} done", page.name);
    }
    t.print();
    let avg_plt = plt_gains.iter().sum::<f64>() / plt_gains.len() as f64;
    let max_plt = plt_gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let avg_fct = fct_gains.iter().sum::<f64>() / fct_gains.len() as f64;
    println!(
        "\nmean PLT improvement: {avg_plt:.1} % (paper: 14 %), max {max_plt:.1} % (paper: 34 %)\n\
         mean sub-flow FCT improvement: {avg_fct:.1} % (paper: 20 %)\n\
         render-dominated pages (zoom.us) are expected to show ~0 % PLT gain."
    );
}
