//! Figure 16 — [NS-3 LTE] overall spectral efficiency vs fairness for
//! every scheduler across cell loads (the scatter plot).

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::{f2, f3};
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let mut t = Table::new(
        "Fig 16: spectral efficiency vs fairness across loads",
        &["scheduler", "load", "SE (bit/s/Hz)", "fairness"],
    );
    for kind in [
        SchedulerKind::Pf,
        SchedulerKind::Srjf,
        SchedulerKind::OutRan,
        SchedulerKind::Pss,
        SchedulerKind::Cqa,
    ] {
        for load in [0.4, 0.6, 0.8] {
            let r = run_avg(
                |seed| {
                    Experiment::lte_default()
                        .srjf_mode(outran_mac::SrjfMode::WinnerOnly)
                        .users(40)
                        .load(load)
                        .duration_secs(20)
                        .scheduler(kind)
                        .seed(seed)
                },
                &SEEDS,
            );
            t.row(&[
                kind.name().to_string(),
                format!("{load:.1}"),
                f2(r.spectral_efficiency),
                f3(r.fairness),
            ]);
        }
        eprintln!("  [fig16] {} done", kind.name());
    }
    t.print();
    println!(
        "\npaper: OutRAN preserves ≥98 % SE and ≥97 % fairness of PF at every\n\
         load; SRJF collapses in both; PSS/CQA cost up to 33 % SE / 65 % fairness"
    );
}
