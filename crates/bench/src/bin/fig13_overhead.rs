//! Figure 13 — OutRAN's overhead under a traffic surge: 1k–8k active
//! flows at the xNodeB. We account (a) the per-SDU processing cost of
//! flow identification + MLFQ marking (wall clock), (b) the flow-table
//! memory footprint (the §7 41 B/flow state), and (c) the achieved DL
//! throughput relative to the theoretical maximum.
//!
//! The Criterion bench `cargo bench -p outran-bench` measures the same
//! hot paths with statistical rigour.

#![forbid(unsafe_code)]

use std::time::Instant;

use outran_metrics::table::{f1, f2};
use outran_metrics::Table;
use outran_pdcp::{FiveTuple, FlowTable, MlfqConfig};
use outran_ran::cell::{Cell, CellConfig, SchedulerKind};
use outran_simcore::Time;

fn per_sdu_cost_ns(n_flows: usize) -> (f64, usize) {
    let mut ft = FlowTable::new(MlfqConfig::default());
    let tuples: Vec<FiveTuple> = (0..n_flows)
        .map(|i| FiveTuple::simulated(i as u64, (i % 16) as u16))
        .collect();
    // Populate.
    for t in &tuples {
        ft.observe(*t, 1500, Time::ZERO);
    }
    let iters = 2_000_000usize;
    let start = Instant::now();
    let mut sink = 0u32;
    for i in 0..iters {
        let t = &tuples[i % n_flows];
        sink = sink.wrapping_add(ft.observe(*t, 1500, Time::ZERO).0 as u32);
    }
    let elapsed = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(sink);
    (elapsed, ft.state_bytes())
}

fn saturated_throughput(kind: SchedulerKind, n_flows: usize) -> f64 {
    // Saturate 8 UEs with `n_flows` long flows and measure delivered Mbps.
    let cfg = CellConfig::lte_default(8, kind, 3);
    let mut cell = Cell::new(cfg);
    for i in 0..n_flows {
        cell.schedule_flow(Time::from_millis((i % 50) as u64), i % 8, 400_000, None);
    }
    let horizon = Time::from_secs(5);
    cell.run_until(horizon);
    cell.metrics.total_bits() / horizon.as_secs_f64() / 1e6
}

fn main() {
    println!("Fig 13(a): per-SDU flow-identification cost and state memory\n");
    let mut t = Table::new(
        "per-SDU PDCP inspection cost vs active flows",
        &["# flows", "ns/SDU", "flow-state (KB)"],
    );
    for n in [1_000usize, 2_000, 4_000, 8_000] {
        let (ns, bytes) = per_sdu_cost_ns(n);
        t.row(&[n.to_string(), f1(ns), f1(bytes as f64 / 1000.0)]);
    }
    t.print();
    println!(
        "\npaper: ≈150 ns per PDCP SDU, negligible against the 125 µs NR slot;\n\
         41 B per flow (37 B five-tuple + 4 B counter)\n"
    );

    println!("Fig 13(b): peak DL throughput under the flow surge\n");
    let mut t2 = Table::new(
        "delivered DL throughput (Mbps), 20 MHz cell",
        &["# flows", "srsRAN (PF)", "OutRAN", "gap (%)"],
    );
    for n in [1_000usize, 2_000, 4_000, 8_000] {
        let pf = saturated_throughput(SchedulerKind::Pf, n);
        let or = saturated_throughput(SchedulerKind::OutRan, n);
        t2.row(&[n.to_string(), f1(pf), f1(or), f2(100.0 * (pf - or) / pf)]);
        eprintln!("  [fig13] {n} flows done");
    }
    t2.print();
    println!("\npaper: ≤2.73 % gap from the theoretical max; no throughput loss from OutRAN");
}
