//! Table 2 — flow statistics of the QUIC-supported webpages.

#![forbid(unsafe_code)]

use outran_metrics::Table;
use outran_simcore::Rng;
use outran_workload::WebPage;

fn main() {
    let mut t = Table::new(
        "Table 2: Flow statistics for QUIC-supported webpages",
        &[
            "Page",
            "Page Size (KB)",
            "QUIC bytes (KB)",
            "# Flows",
            "# QUIC Flows",
        ],
    );
    for p in WebPage::table2() {
        t.row(&[
            p.name.to_string(),
            (p.page_bytes / 1000).to_string(),
            format!("{:.1}", p.quic_bytes as f64 / 1000.0),
            p.n_flows.to_string(),
            p.n_quic_flows.to_string(),
        ]);
    }
    t.print();

    // §6.1: the largest aggregated QUIC connection stays "short" compared
    // to the 1.92 MB background average.
    let mut rng = Rng::new(1);
    let max_quic = WebPage::table2()
        .iter()
        .map(|p| {
            p.objects(&mut rng)
                .iter()
                .filter(|o| o.is_quic)
                .map(|o| o.bytes)
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    println!(
        "\nLargest single QUIC connection: {:.0} KB (paper: 736 KB max, from\n\
         Instagram) — still short against the 1.92 MB websearch background.",
        max_quic as f64 / 1000.0
    );
}
