//! Figure 18(d) — the "Priority Boost" safety measure: an incast-heavy
//! workload (simultaneous 8 KB bursts = 10 % of volume, total load 80 %)
//! where unbounded MLFQ demotion would penalise long flows; sweeping the
//! reset period S trades the short-flow gain against long-flow recovery.

#![forbid(unsafe_code)]

use outran_core::OutRanConfig;
use outran_metrics::table::f2;
use outran_metrics::{FctCollector, Table};
use outran_ran::{Cell, CellConfig, SchedulerKind};
use outran_simcore::{Dur, Rng, Time};
use outran_workload::{FlowSizeDist, PoissonFlowGen};

/// One run: LTE cell, 40 UEs; background LTE-dist Poisson at 72 % load +
/// synchronized 8 KB incast bursts adding ~8 % (10 % of the total).
fn run(kind: SchedulerKind, reset: Option<Dur>, seed: u64) -> (f64, f64) {
    let horizon = Time::from_secs(20);
    let mut cfg = CellConfig::lte_default(40, kind, seed);
    cfg.outran = OutRanConfig {
        reset_period: reset,
        ..OutRanConfig::default()
    };
    let mut cell = Cell::new(cfg);
    let capacity = 87e6;
    let mut gen = PoissonFlowGen::new(
        FlowSizeDist::LteCellular,
        0.72,
        capacity,
        40,
        Rng::new(seed ^ 0xBEE),
    );
    for a in gen.take_until(horizon) {
        cell.schedule_flow(a.at, a.ue, a.bytes, None);
    }
    // Incast bursts: every 50 ms, 9 simultaneous 8 KB flows to random
    // UEs ≈ 11.5 Mbps ≈ 8/80 of the offered volume.
    let mut rng = Rng::new(seed ^ 0x1CA5);
    let mut t = Time::from_millis(50);
    while t < horizon {
        for _ in 0..9 {
            let ue = rng.index(40);
            cell.schedule_flow(t, ue, 8_000, None);
        }
        t += Dur::from_millis(50);
    }
    cell.run_until(Time(horizon.0 + Time::from_secs(4).0));
    let mut fct = FctCollector::new();
    for d in cell.take_completions() {
        fct.record(d.bytes, d.fct);
    }
    let r = fct.report();
    (r.short_mean_ms, r.long_mean_ms)
}

fn main() {
    let seeds = [11u64, 23, 47];
    let avg = |kind: SchedulerKind, reset: Option<Dur>| -> (f64, f64) {
        let mut s = 0.0;
        let mut l = 0.0;
        for &seed in &seeds {
            let (a, b) = run(kind, reset, seed);
            s += a;
            l += b;
        }
        (s / seeds.len() as f64, l / seeds.len() as f64)
    };
    let (pf_s, pf_l) = avg(SchedulerKind::Pf, None);
    let mut t = Table::new(
        "Fig 18(d): priority reset sweep (incast, load 0.8) — normalized to PF",
        &["reset period S", "short avg (norm)", "long avg (norm)"],
    );
    t.row(&["PF".into(), f2(1.0), f2(1.0)]);
    for (label, reset) in [
        ("none", None),
        ("10s", Some(Dur::from_secs(10))),
        ("1s", Some(Dur::from_secs(1))),
        ("0.5s", Some(Dur::from_millis(500))),
        ("0.2s", Some(Dur::from_millis(200))),
        ("0.1s", Some(Dur::from_millis(100))),
    ] {
        let (s, l) = avg(SchedulerKind::OutRan, reset);
        t.row(&[format!("OutRAN {label}"), f2(s / pf_s), f2(l / pf_l)]);
        eprintln!("  [fig18d] S={label} done");
    }
    t.print();
    println!(
        "\npaper: without reset, short −40 % / long +20 % vs PF; at S = 0.5 s the\n\
         long-flow FCT returns to PF levels while shorts keep a ~30 % gain"
    );
}
