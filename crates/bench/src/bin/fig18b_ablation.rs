//! Figure 18(b) — ablation of OutRAN's two design components across the
//! legacy scheduler's fairness window: legacy (PF with T_f, or MT) vs
//! +intra-user scheduler only (ε = 0) vs full OutRAN (ε = 0.2).
//!
//! Paper: with a small T_f most of the gain comes from the intra-user
//! scheduler; the inter-user scheduler contributes more as T_f grows
//! (+11 % at T_f = 10 s), and full OutRAN always wins.

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::f2;
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};
use outran_simcore::Dur;

fn main() {
    let mut t = Table::new(
        "Fig 18(b): ablation — normalized avg FCT (vs legacy at each T_f)",
        &[
            "T_f",
            "legacy(ms)",
            "legacy",
            "+intra (e=0)",
            "OutRAN (e=0.2)",
        ],
    );
    let cases: [(&str, Option<Dur>); 5] = [
        ("10ms", Some(Dur::from_millis(10))),
        ("100ms", Some(Dur::from_millis(100))),
        ("1s", Some(Dur::from_secs(1))),
        ("10s", Some(Dur::from_secs(10))),
        ("MT", None),
    ];
    for (label, tf) in cases {
        let run = |kind: SchedulerKind| {
            run_avg(
                |seed| {
                    let mut e = Experiment::lte_default()
                        .users(40)
                        .load(0.6)
                        .duration_secs(20)
                        .scheduler(kind)
                        .seed(seed);
                    if let Some(tf) = tf {
                        e = e.fairness_window(tf);
                    }
                    e
                },
                &SEEDS,
            )
        };
        let (legacy, intra, full) = match tf {
            Some(_) => (
                run(SchedulerKind::Pf),
                run(SchedulerKind::OutRanEps(0.0)),
                run(SchedulerKind::OutRanEps(0.2)),
            ),
            None => (
                run(SchedulerKind::Mt),
                run(SchedulerKind::OutRanOverMt(0.0)),
                run(SchedulerKind::OutRanOverMt(0.2)),
            ),
        };
        let base = legacy.overall_mean_ms;
        t.row(&[
            label.into(),
            f2(base),
            f2(1.0),
            f2(intra.overall_mean_ms / base),
            f2(full.overall_mean_ms / base),
        ]);
        eprintln!("  [fig18b] T_f={label} done");
    }
    t.print();
    println!(
        "\npaper: both components always help; the inter-user component's\n\
         share of the gain grows with T_f (and is largest for MT)"
    );
}
