//! Figure 2 — (a) downlink flow-size CDFs and (b) the SINR distribution
//! across UEs in the pedestrian LTE cell.

#![forbid(unsafe_code)]

use outran_metrics::table::print_series;
use outran_phy::channel::CellChannel;
use outran_phy::Scenario;
use outran_simcore::{Percentiles, Rng};
use outran_workload::FlowSizeDist;

fn main() {
    println!("=== Figure 2(a): flow size distributions ===\n");
    for d in [FlowSizeDist::LteCellular, FlowSizeDist::MirageMobileApp] {
        let cdf = d.cdf();
        let points: Vec<(f64, f64)> = (1..=40)
            .map(|i| {
                let p = i as f64 / 40.0;
                (cdf.quantile(p) / 1000.0, p) // KB
            })
            .collect();
        print_series(&format!("{d:?} flow size (KB) vs CDF"), &points, 20);
        println!(
            "  anchor: CDF(35.9 KB) = {:.3}  (paper: 0.90 for the LTE cellular dist)",
            cdf.cdf(35_900.0)
        );
        println!("  mean flow = {:.1} KB\n", cdf.mean() / 1000.0);
    }

    println!("=== Figure 2(b): per-UE mean SINR distribution ===\n");
    let cfg = Scenario::LtePedestrian.channel_config();
    let ch = CellChannel::new(cfg, 200, &Rng::new(42));
    let mut sinrs = Percentiles::new();
    for u in 0..200 {
        sinrs.push(ch.mean_sinr_db(u));
    }
    let pts = sinrs.cdf_points(25);
    print_series("UE mean SINR (dB) vs CDF", &pts, 25);
    let (med, good, exc) = (
        sinrs.percentile(25.0),
        sinrs.percentile(60.0),
        sinrs.percentile(90.0),
    );
    println!(
        "\n  clusters: Medium ≈ {med:.1} dB, Good ≈ {good:.1} dB, Excellent ≈ {exc:.1} dB\n\
         (paper Fig 2b: groups around ~10 / ~25-35 / ~45 dB within a 0–50 dB span)"
    );
}
