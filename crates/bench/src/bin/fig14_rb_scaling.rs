//! Figure 14 — scalability with the number of Resource Blocks (25–100):
//! OutRAN's extra per-RB pass keeps the same O(|U|·|B|) complexity as the
//! MAC scheduler, so the per-TTI scheduling cost and achieved throughput
//! track the vanilla scheduler at every bandwidth.

#![forbid(unsafe_code)]

use std::time::Instant;

use outran_metrics::table::{f1, f2};
use outran_metrics::Table;
use outran_phy::numerology::RadioConfig;
use outran_ran::cell::{Cell, CellConfig, SchedulerKind};
use outran_simcore::Time;

fn run_cell(kind: SchedulerKind, rbs: u16) -> (f64, f64) {
    let mut cfg = CellConfig::lte_default(16, kind, 5);
    cfg.channel.radio = RadioConfig::lte_rbs(rbs);
    let mut cell = Cell::new(cfg);
    // Saturate all UEs.
    for i in 0..64 {
        cell.schedule_flow(Time::from_millis((i % 20) as u64), i % 16, 2_000_000, None);
    }
    let horizon = Time::from_secs(4);
    let start = Instant::now();
    cell.run_until(horizon);
    let wall = start.elapsed().as_secs_f64();
    let n_ttis = horizon.as_secs_f64() / cell.tti().as_secs_f64();
    let us_per_tti = wall * 1e6 / n_ttis;
    let mbps = cell.metrics.total_bits() / horizon.as_secs_f64() / 1e6;
    (mbps, us_per_tti)
}

fn main() {
    let mut t = Table::new(
        "Fig 14: throughput and scheduling cost vs #RBs (16 UEs, saturated)",
        &[
            "# RBs",
            "PF Mbps",
            "OutRAN Mbps",
            "PF us/TTI",
            "OutRAN us/TTI",
            "cost ratio",
        ],
    );
    for rbs in [25u16, 50, 75, 100] {
        let (pf_mbps, pf_cost) = run_cell(SchedulerKind::Pf, rbs);
        let (or_mbps, or_cost) = run_cell(SchedulerKind::OutRan, rbs);
        t.row(&[
            rbs.to_string(),
            f1(pf_mbps),
            f1(or_mbps),
            f2(pf_cost),
            f2(or_cost),
            f2(or_cost / pf_cost),
        ]);
        eprintln!("  [fig14] {rbs} RBs done");
    }
    t.print();
    println!(
        "\npaper: negligible overhead at every RB count — the whole-simulator\n\
         cost here stays well under one TTI (1000 us) of wall time, and the\n\
         OutRAN/PF cost ratio stays ~constant (same O(U*B) complexity).\n\
         The `schedulers` Criterion bench isolates the allocator itself."
    );
}
