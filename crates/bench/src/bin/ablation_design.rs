//! Ablation of OutRAN's §4.4 integration choices (beyond the paper's
//! own figures, but for design decisions the paper calls out):
//!
//! 1. **Segmented-SDU promotion** — without it, a partially-sent SDU can
//!    be trapped behind fresh high-priority arrivals and miss the
//!    receiver's reassembly window (§4.4 predicts discards that hurt
//!    FCT).
//! 2. **Buffer overflow policy** — priority push-out (evict the worst
//!    queued SDU) vs legacy drop-tail (drop the incoming one): drop-tail
//!    lets elephants squeeze out freshly arriving short flows.
//! 3. **MLFQ thresholds** — the PIAS-style optimizer vs a naive
//!    log-split, validating the §4.2 parameter-choice machinery.

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_core::OutRanConfig;
use outran_metrics::table::f1;
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

type CfgMod = Box<dyn Fn(&mut OutRanConfig) + Sync>;

fn run(cfgmod: impl Fn(&mut OutRanConfig) + Copy + Sync) -> outran_bench::AvgReport {
    run_avg(
        |seed| {
            let mut oc = OutRanConfig::default();
            cfgmod(&mut oc);
            Experiment::lte_default()
                .users(40)
                .load(0.7)
                .duration_secs(20)
                .scheduler(SchedulerKind::OutRan)
                .outran(oc)
                .seed(seed)
        },
        &SEEDS,
    )
}

fn main() {
    let mut t = Table::new(
        "OutRAN design ablations (LTE, 40 UEs, load 0.7)",
        &[
            "variant",
            "S avg(ms)",
            "S p95(ms)",
            "M avg(ms)",
            "L avg(ms)",
            "overall(ms)",
        ],
    );
    let cases: Vec<(&str, CfgMod)> = vec![
        ("full OutRAN", Box::new(|_: &mut OutRanConfig| {})),
        (
            "no segment promotion",
            Box::new(|c: &mut OutRanConfig| c.promote_segments = false),
        ),
        (
            "drop-tail buffers",
            Box::new(|c: &mut OutRanConfig| c.pushout = false),
        ),
        (
            "naive log-split thresholds",
            Box::new(|c: &mut OutRanConfig| c.thresholds = Some(vec![1_000, 31_623, 1_000_000])),
        ),
        (
            "K=2 queues",
            Box::new(|c: &mut OutRanConfig| {
                c.mlfq_queues = 2;
                c.thresholds = Some(vec![75_000]);
            }),
        ),
        (
            "tight 6ms reassembly window",
            Box::new(|c: &mut OutRanConfig| {
                c.reassembly_window = outran_simcore::Dur::from_millis(6)
            }),
        ),
        (
            "tight window, no promotion",
            Box::new(|c: &mut OutRanConfig| {
                c.reassembly_window = outran_simcore::Dur::from_millis(6);
                c.promote_segments = false;
            }),
        ),
        (
            "K=8 queues",
            Box::new(|c: &mut OutRanConfig| {
                c.mlfq_queues = 8;
                c.thresholds = Some(vec![
                    4_000, 16_000, 64_000, 256_000, 1_000_000, 4_000_000, 16_000_000,
                ]);
            }),
        ),
    ];
    for (label, m) in &cases {
        let r = run(|c| m(c));
        t.row(&[
            label.to_string(),
            f1(r.short_mean_ms),
            f1(r.short_p95_ms),
            f1(r.medium_mean_ms),
            f1(r.long_mean_ms),
            f1(r.overall_mean_ms),
        ]);
        eprintln!("  [ablation] {label} done");
    }
    t.print();
    println!(
        "\nexpected: at the default 50 ms reassembly window the promotion and\n\
         drop-policy effects are within noise (queues drain fast in this\n\
         simulator); with a tight window, disabling the §4.4 promotion\n\
         causes reassembly discards that inflate medium/long FCT. K beyond\n\
         4 changes little (§4.2 'for K > 4 … stays steady')."
    );
}
