//! Simulator throughput baseline — simulated TTIs per wall-clock second
//! for each scheduler plus the parallel-sweep speedup (`BENCH_2.json`),
//! the idle-heavy WebPLT scenario comparing dense vs event-driven
//! stepping (`BENCH_3.json`), and the dense busy-cell MAC *kernel*
//! arms measuring the SoA scheduler hot path in isolation
//! (`BENCH_4.json`).
//!
//! ```console
//! cargo run --release -p outran-bench --bin throughput            # measure
//! cargo run --release -p outran-bench --bin throughput -- \
//!     --check BENCH_2.json                                        # gate
//! cargo run --release -p outran-bench --bin throughput -- \
//!     --check BENCH_3.json                                        # gate
//! cargo run --release -p outran-bench --bin throughput -- \
//!     --check BENCH_4.json                                        # gate
//! cargo run --release -p outran-bench --bin throughput -- --profile
//! ```
//!
//! `--check FILE` re-measures and fails (exit 1) if throughput dropped
//! more than the tolerance (default 25%, override with
//! `OUTRAN_PERF_TOLERANCE=0.25`) below the figures recorded in FILE —
//! the file's schema decides which arm is re-measured. The BENCH_3 arm
//! additionally fails whenever the event-driven run skips zero TTIs on
//! the idle-heavy workload (the skip machinery silently disabled is a
//! perf regression the tolerance would never catch). The BENCH_4 arm
//! additionally enforces the SoA-kernel floor: the PF and OutRAN MAC
//! scheduling kernels must each run at ≥ 5× the same run's end-to-end
//! dense TTIs/s — a machine-independent ratio (both sides measured on
//! the same box, same build), so the scheduling stage can never again
//! bound dense throughput. Absolute TTIs/sec are machine-dependent:
//! gate against a baseline produced on the same machine (CI measures,
//! then self-checks).
//!
//! `--profile` attributes active-TTI wall time to the pipeline stages
//! per scheduler (via the `StageTimer` observer, `std::time::Instant`
//! only), prints the shares, and writes them machine-readably to
//! `PROFILE.json` (atomically: temp sibling + rename).

#![forbid(unsafe_code)]

use outran_mac::{OutRanScheduler, PfScheduler, Scheduler, TtiRates, UeTti};
use outran_pdcp::Priority;
use outran_phy::channel::CellChannel;
use outran_ran::webplt::idle_heavy_arrivals;
use outran_ran::{Cell, CellConfig, SchedulerKind};
use outran_simcore::{Dur, Rng, Time};
use std::time::Instant;

/// Simulated horizon per measured run.
const SIM_SECS: u64 = 5;
/// UEs in the measured cell.
const USERS: usize = 16;
/// Flow sizes cycled by the deterministic workload (bytes).
const SIZES: [u64; 4] = [2_000, 8_000, 40_000, 200_000];
/// Deterministic arrival spacing.
const ARRIVAL_MS: u64 = 10;

const KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Pf,
    SchedulerKind::Rr,
    SchedulerKind::Mt,
    SchedulerKind::Srjf,
    SchedulerKind::OutRan,
];

/// Build the measured cell: the paper's LTE setting under a fixed
/// deterministic workload (sizes cycling short→long, one arrival every
/// [`ARRIVAL_MS`] ms on round-robin UEs ≈ load 0.6).
fn build_cell(kind: SchedulerKind) -> Cell {
    let cfg = CellConfig::lte_default(USERS, kind, 42);
    let mut cell = Cell::new(cfg);
    let horizon = Time::ZERO + Dur::from_secs(SIM_SECS);
    let mut at = Time::ZERO + Dur::from_millis(5);
    let mut i = 0usize;
    while at < horizon {
        cell.schedule_flow(at, i % USERS, SIZES[i % SIZES.len()], None);
        at += Dur::from_millis(ARRIVAL_MS);
        i += 1;
    }
    cell
}

/// Step `cell` to the horizon; returns (TTIs stepped, wall seconds).
fn run_timed(mut cell: Cell) -> (u64, f64) {
    let end = Time::ZERO + Dur::from_secs(SIM_SECS);
    let start = Instant::now();
    let mut ttis = 0u64;
    while cell.now() < end {
        cell.step();
        ttis += 1;
    }
    (ttis, start.elapsed().as_secs_f64())
}

/// Pull `"ttis_per_sec": <x>` for one scheduler block out of a
/// previously emitted BENCH_2.json (no serde in the offline build, and
/// we emit the file ourselves, so a positional scan is exact).
fn baseline_tps(json: &str, scheduler: &str) -> Option<f64> {
    let tag = format!("\"scheduler\": \"{scheduler}\"");
    let at = json.find(&tag)? + tag.len();
    scan_f64(&json[at..], "ttis_per_sec")
}

// ---- dense busy-cell MAC kernel arm (BENCH_4) --------------------------

/// TTIs per measured kernel run — large enough that the sub-µs per-TTI
/// kernel cost integrates to a stable wall-clock reading.
const KERNEL_TTIS: u64 = 1_000_000;

/// The kernel arms: the schedulers whose SoA hot path the ≥5× gate
/// covers (the paper's contribution and its PF base).
const KERNEL_KINDS: [SchedulerKind; 2] = [SchedulerKind::Pf, SchedulerKind::OutRan];

/// Kernel inputs: a plane-backed rate matrix filled from a warmed LTE
/// channel's delivered reports, and a fully backlogged cell (every UE
/// active every TTI — the dense busy-cell regime).
fn build_kernel_inputs() -> (TtiRates, Vec<UeTti>) {
    let cfg = CellConfig::lte_default(USERS, SchedulerKind::Pf, 42);
    let mut ch = CellChannel::new(cfg.channel, USERS, &Rng::new(42));
    let tti = ch.config().radio.tti();
    let mut now = Time::ZERO;
    for _ in 0..100 {
        now += tti;
        ch.advance_tti(now);
    }
    let n_sb = ch.config().n_subbands;
    let mut rates = TtiRates {
        per_ue_sb: vec![0.0; USERS * n_sb],
        rb_to_sb: (0..ch.n_rbs()).map(|rb| ch.subband_of_rb(rb)).collect(),
        n_sb,
        n_ues: USERS,
        reserved: vec![false; ch.n_rbs() as usize],
        versions: vec![1; USERS],
    };
    for u in 0..USERS {
        ch.fill_reported_rates(u, &mut rates.per_ue_sb[u * n_sb..(u + 1) * n_sb]);
    }
    let ues = (0..USERS)
        .map(|i| UeTti {
            active: true,
            head_priority: Some(Priority((i % 4) as u8)),
            queued_bytes: 1_000_000,
            oracle_min_remaining: Some(10_000 + i as u64 * 1_000),
            hol_delay: Dur::from_millis(5),
            oracle_has_qos_flow: i % 4 == 0,
        })
        .collect();
    (rates, ues)
}

/// Run the MAC scheduling kernel (rate-row churn on the CQI report
/// cadence + allocate + served feedback per TTI) for [`KERNEL_TTIS`]
/// dense TTIs; returns (TTIs, wall seconds).
fn run_kernel_timed(kind: SchedulerKind) -> (u64, f64) {
    let (mut rates, ues) = build_kernel_inputs();
    let n_sb = rates.n_sb;
    let tti = Dur::from_millis(1);
    let tf = Dur::from_millis(1000);
    let mut sched: Box<dyn Scheduler> = match kind {
        SchedulerKind::Pf => Box::new(PfScheduler::with_tf(USERS, tf, tti)),
        SchedulerKind::OutRan => Box::new(OutRanScheduler::over_pf(
            USERS,
            tf,
            tti,
            OutRanScheduler::DEFAULT_EPSILON,
        )),
        other => unreachable!("no kernel arm for {}", other.name()),
    };
    let mut now = Time::ZERO;
    let start = Instant::now();
    for t in 0..KERNEL_TTIS {
        // Emulate the CQI report cadence: every 8 TTIs one UE's rate row
        // changes content and version, exercising the metric cache's
        // invalidation path at a realistic rate.
        if t % 8 == 0 {
            let u = ((t / 8) % USERS as u64) as usize;
            rates.per_ue_sb[u * n_sb..(u + 1) * n_sb].rotate_left(1);
            rates.versions[u] += 1;
        }
        let alloc = sched.allocate(now, &ues, &rates);
        sched.on_served(&alloc.bits_per_ue);
        now += tti;
    }
    (KERNEL_TTIS, start.elapsed().as_secs_f64())
}

/// Assemble BENCH_4.json: the same-run end-to-end dense rows plus the
/// kernel rows, each kernel row carrying its speedup over the matching
/// end-to-end arm (both sides measured on this machine in this run, so
/// the ratio is machine-independent).
fn kernel_json(e2e: &[(&str, u64, f64, f64)], kernel: &[(&str, u64, f64, f64)]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"outran-kernel-v1\",\n");
    json.push_str(&format!(
        "  \"sim_secs\": {SIM_SECS},\n  \"users\": {USERS},\n  \
         \"kernel_ttis\": {KERNEL_TTIS},\n"
    ));
    json.push_str("  \"per_scheduler\": [\n");
    for (i, (name, ttis, secs, tps)) in e2e.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheduler\": \"{name}\", \"ttis\": {ttis}, \
             \"wall_secs\": {secs:.4}, \"ttis_per_sec\": {tps:.1}}}{}\n",
            if i + 1 < e2e.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"kernel_per_scheduler\": [\n");
    for (i, (name, ttis, secs, tps)) in kernel.iter().enumerate() {
        let e2e_tps = e2e
            .iter()
            .find(|(n, _, _, _)| n == name)
            .map(|(_, _, _, t)| *t)
            .unwrap_or(f64::NAN);
        json.push_str(&format!(
            "    {{\"scheduler\": \"{name}\", \"ttis\": {ttis}, \
             \"wall_secs\": {secs:.4}, \"ttis_per_sec\": {tps:.1}, \
             \"e2e_ttis_per_sec\": {e2e_tps:.1}, \
             \"kernel_speedup\": {:.2}}}{}\n",
            tps / e2e_tps,
            if i + 1 < kernel.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Measure the kernel arms (with one warm-up run); returns rows.
fn measure_kernel_rows() -> Vec<(&'static str, u64, f64, f64)> {
    let _ = run_kernel_timed(SchedulerKind::Pf);
    KERNEL_KINDS
        .into_iter()
        .map(|kind| {
            let (ttis, secs) = run_kernel_timed(kind);
            let tps = ttis as f64 / secs;
            eprintln!(
                "  [throughput] kernel {:<12} {ttis} TTIs in {secs:.3}s = {tps:.0} TTIs/s",
                kind.name()
            );
            (kind.name(), ttis, secs, tps)
        })
        .collect()
}

/// Re-measure and gate against a BENCH_4 baseline: end-to-end arms and
/// kernel arms within tolerance of their recorded figures, and — the
/// hard, machine-independent floor — each kernel arm at ≥ 5× its own
/// end-to-end arm as measured in this very run.
fn check_kernel(baseline: &str, tolerance: f64) {
    // The two sections share the `"scheduler":` tag; split the baseline
    // at the kernel array so each side parses against its own rows.
    let Some(split) = baseline.find("\"kernel_per_scheduler\"") else {
        eprintln!("throughput: baseline lacks kernel_per_scheduler — wrong file?");
        std::process::exit(2);
    };
    let (base_e2e, base_kernel) = baseline.split_at(split);

    let _ = run_timed(build_cell(SchedulerKind::Pf)); // warm-up
    let mut failed = false;
    let mut e2e_tps = Vec::new();
    for kind in KINDS {
        let (ttis, secs) = run_timed(build_cell(kind));
        let tps = ttis as f64 / secs;
        e2e_tps.push((kind.name(), tps));
        let Some(base) = baseline_tps(base_e2e, kind.name()) else {
            eprintln!(
                "  [throughput] {}: no e2e baseline entry, skipping",
                kind.name()
            );
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let verdict = if tps < floor { "REGRESSION" } else { "ok" };
        failed |= tps < floor;
        eprintln!(
            "  [throughput] e2e {}: {tps:.0} vs baseline {base:.0} (floor {floor:.0}) — {verdict}",
            kind.name()
        );
    }
    let mut gated = 0usize;
    for (name, ttis, secs, tps) in measure_kernel_rows() {
        let _ = (ttis, secs);
        if let Some(base) = baseline_tps(base_kernel, name) {
            gated += 1;
            let floor = base * (1.0 - tolerance);
            let verdict = if tps < floor { "REGRESSION" } else { "ok" };
            failed |= tps < floor;
            eprintln!(
                "  [throughput] kernel {name}: {tps:.0} vs baseline {base:.0} \
                 (floor {floor:.0}) — {verdict}"
            );
        } else {
            eprintln!("  [throughput] kernel {name}: no baseline entry, skipping");
        }
        let e2e = e2e_tps
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN);
        let speedup = tps / e2e;
        // NaN (no matching e2e arm) must fail the floor, not pass it.
        let meets_floor = speedup >= 5.0;
        let verdict = if meets_floor { "ok" } else { "BELOW 5x FLOOR" };
        failed |= !meets_floor;
        eprintln!(
            "  [throughput] kernel {name}: {speedup:.1}x its e2e arm ({tps:.0} vs {e2e:.0}) \
             — {verdict} (floor 5.0x)"
        );
    }
    if gated == 0 {
        eprintln!("throughput: baseline has no usable kernel entries — wrong file?");
        std::process::exit(2);
    }
    if failed {
        eprintln!("throughput: kernel/e2e check failed");
        std::process::exit(1);
    }
    println!(
        "kernel throughput check passed (tolerance {:.0}%, kernel floor 5.0x e2e)",
        tolerance * 100.0
    );
}

/// Scan `"key": <number>` out of self-emitted JSON.
fn scan_f64(json: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let v = &json[json.find(&tag)? + tag.len()..];
    let end = v.find([',', '}', '\n'])?;
    v[..end].trim().parse().ok()
}

/// Simulated horizon of the idle-heavy WebPLT arm: a UE pair loads one
/// small page every 5 minutes over an hour — >99% of TTIs carry no
/// work, the regime the event-driven stepper targets.
const IDLE_SIM_SECS: u64 = 3600;

struct IdleHeavy {
    total_ttis: u64,
    idle_ttis: u64,
    skipped_ttis: u64,
    completions: usize,
    dense_secs: f64,
    event_secs: f64,
}

fn build_idle_heavy_cell() -> Cell {
    let mut cfg = CellConfig::lte_default(2, SchedulerKind::OutRan, 42);
    cfg.channel.radio = outran_phy::numerology::RadioConfig::lte_rbs(25);
    cfg.channel.n_subbands = 4;
    let mut cell = Cell::new(cfg);
    let horizon = Time::from_secs(IDLE_SIM_SECS);
    for (at, ue, bytes) in idle_heavy_arrivals(horizon, Dur::from_secs(300), 2, 42) {
        cell.schedule_flow(at, ue, bytes, None);
    }
    cell
}

/// Measure the idle-heavy scenario dense and event-driven. The two runs
/// are bit-identical in results (asserted by the `event_driven`
/// integration tests); here only the clocks differ.
fn run_idle_heavy() -> IdleHeavy {
    let end = Time::from_secs(IDLE_SIM_SECS + 4);

    let mut dense = build_idle_heavy_cell();
    let t0 = Instant::now();
    dense.run_until_dense(end);
    let dense_secs = t0.elapsed().as_secs_f64();

    let mut event = build_idle_heavy_cell();
    let t1 = Instant::now();
    event.run_until(end);
    let event_secs = t1.elapsed().as_secs_f64();

    let tti_ns = event.tti().as_nanos();
    IdleHeavy {
        total_ttis: end.0 / tti_ns,
        idle_ttis: event.idle_ttis,
        skipped_ttis: event.skipped_ttis,
        completions: event.take_completions().len(),
        dense_secs,
        event_secs,
    }
}

fn idle_heavy_json(m: &IdleHeavy) -> String {
    let dense_tps = m.total_ttis as f64 / m.dense_secs;
    let event_tps = m.total_ttis as f64 / m.event_secs;
    format!(
        "{{\n  \"schema\": \"outran-idleheavy-v1\",\n  \
         \"sim_secs\": {IDLE_SIM_SECS},\n  \
         \"total_ttis\": {},\n  \"idle_ttis\": {},\n  \
         \"skipped_ttis\": {},\n  \"completions\": {},\n  \
         \"dense_secs\": {:.4},\n  \"event_secs\": {:.4},\n  \
         \"ttis_per_sec_dense\": {dense_tps:.1},\n  \
         \"ttis_per_sec_eventdriven\": {event_tps:.1},\n  \
         \"speedup\": {:.3}\n}}\n",
        m.total_ttis,
        m.idle_ttis,
        m.skipped_ttis,
        m.completions,
        m.dense_secs,
        m.event_secs,
        m.dense_secs / m.event_secs,
    )
}

/// `--profile`: per-stage wall-time attribution of the active pipeline
/// (exclusive time per pipeline stage, via the `StageTimer` observer).
/// Prints the shares and writes them machine-readably to PROFILE.json
/// (atomic write, like the BENCH files).
fn profile_mode() {
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"outran-profile-v1\",\n");
    json.push_str(&format!(
        "  \"sim_secs\": {SIM_SECS},\n  \"users\": {USERS},\n"
    ));
    json.push_str("  \"per_scheduler\": [\n");
    for (i, kind) in KINDS.into_iter().enumerate() {
        let mut cell = build_cell(kind);
        cell.enable_profiling();
        let end = Time::ZERO + Dur::from_secs(SIM_SECS);
        let t0 = Instant::now();
        cell.run_until(end);
        let wall = t0.elapsed().as_secs_f64();
        let p = *cell.profile().expect("profiling enabled");
        let total = p.total_ns().max(1) as f64;
        let pct = |ns: u64| 100.0 * ns as f64 / total;
        println!(
            "[profile] {:<12} ingress {:5.1}%  rlc_down {:5.1}%  mac_sched {:5.1}%  \
             phy_tx {:5.1}%  delivery {:5.1}%  housekeeping {:4.1}%  \
             (attributed {:.3}s of {wall:.3}s wall)",
            kind.name(),
            pct(p.ingress_ns),
            pct(p.rlc_down_ns),
            pct(p.mac_sched_ns),
            pct(p.phy_tx_ns),
            pct(p.delivery_ns),
            pct(p.housekeeping_ns),
            total / 1e9,
        );
        // Shares as fractions of attributed time; raw nanoseconds ride
        // along so downstream tooling can re-derive anything.
        let share = |ns: u64| ns as f64 / total;
        json.push_str(&format!(
            "    {{\"scheduler\": \"{}\", \"wall_secs\": {wall:.4}, \
             \"attributed_secs\": {:.4},\n     \"shares\": {{\
             \"ingress\": {:.4}, \"rlc_down\": {:.4}, \"mac_sched\": {:.4}, \
             \"phy_tx\": {:.4}, \"delivery\": {:.4}, \"housekeeping\": {:.4}}},\n     \
             \"ns\": {{\"ingress\": {}, \"rlc_down\": {}, \"mac_sched\": {}, \
             \"phy_tx\": {}, \"delivery\": {}, \"housekeeping\": {}}}}}{}\n",
            kind.name(),
            total / 1e9,
            share(p.ingress_ns),
            share(p.rlc_down_ns),
            share(p.mac_sched_ns),
            share(p.phy_tx_ns),
            share(p.delivery_ns),
            share(p.housekeeping_ns),
            p.ingress_ns,
            p.rlc_down_ns,
            p.mac_sched_ns,
            p.phy_tx_ns,
            p.delivery_ns,
            p.housekeeping_ns,
            if i + 1 < KINDS.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    write_json("PROFILE.json", &json);
    eprintln!("  [profile] wrote PROFILE.json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--profile") {
        profile_mode();
        return;
    }
    let check: Option<String> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    // Fail on an unreadable baseline *before* spending time measuring.
    let baseline = check
        .as_ref()
        .map(|path| match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("throughput: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        });
    let tolerance: f64 = std::env::var("OUTRAN_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    // The baseline's schema picks the arm to re-measure and gate.
    if let Some(baseline) = &baseline {
        if baseline.contains("outran-idleheavy") {
            check_idle_heavy(baseline, tolerance);
            return;
        }
        if baseline.contains("outran-kernel") {
            check_kernel(baseline, tolerance);
            return;
        }
    }
    let threads = outran_bench::configured_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm up caches / page in the binary before timing.
    let _ = run_timed(build_cell(SchedulerKind::Pf));

    let mut rows = Vec::new();
    for kind in KINDS {
        let (ttis, secs) = run_timed(build_cell(kind));
        let tps = ttis as f64 / secs;
        eprintln!(
            "  [throughput] {:<12} {ttis} TTIs in {secs:.3}s = {tps:.0} TTIs/s",
            kind.name()
        );
        rows.push((kind.name(), ttis, secs, tps));
    }

    // Parallel-sweep wall clock: the same independent jobs serial vs
    // fanned across the pool (speedup ≈ min(threads, cores) on idle
    // multi-core machines, ≈ 1 on a single-core box).
    let jobs: Vec<SchedulerKind> = KINDS.into_iter().chain(KINDS.into_iter().take(3)).collect();
    let t0 = Instant::now();
    let _ = outran_ran::parallel_map(1, jobs.clone(), |k| run_timed(build_cell(k)).0);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _ = outran_ran::parallel_map(threads, jobs.clone(), |k| run_timed(build_cell(k)).0);
    let parallel_secs = t1.elapsed().as_secs_f64();
    let speedup = serial_secs / parallel_secs;
    eprintln!(
        "  [throughput] sweep of {} jobs: serial {serial_secs:.2}s, \
         {threads} thread(s) {parallel_secs:.2}s, speedup {speedup:.2}x",
        jobs.len()
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"outran-throughput-v1\",\n");
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"cores\": {cores},\n"
    ));
    json.push_str(&format!(
        "  \"sim_secs\": {SIM_SECS},\n  \"users\": {USERS},\n"
    ));
    json.push_str("  \"per_scheduler\": [\n");
    for (i, (name, ttis, secs, tps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheduler\": \"{name}\", \"ttis\": {ttis}, \
             \"wall_secs\": {secs:.4}, \"ttis_per_sec\": {tps:.1}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sweep\": {{\"jobs\": {}, \"serial_secs\": {serial_secs:.3}, \
         \"parallel_secs\": {parallel_secs:.3}, \"speedup\": {speedup:.3}}}\n}}\n",
        jobs.len()
    ));

    if let Some(baseline) = baseline {
        let mut failed = false;
        let mut gated = 0usize;
        for (name, _, _, tps) in &rows {
            let Some(base) = baseline_tps(&baseline, name) else {
                eprintln!("  [throughput] {name}: no baseline entry, skipping");
                continue;
            };
            gated += 1;
            let floor = base * (1.0 - tolerance);
            let verdict = if *tps < floor { "REGRESSION" } else { "ok" };
            if *tps < floor {
                failed = true;
            }
            eprintln!(
                "  [throughput] {name}: {tps:.0} vs baseline {base:.0} \
                 (floor {floor:.0}) — {verdict}"
            );
        }
        // A baseline that gates *nothing* is an unparseable baseline, not
        // a pass — fail loudly instead of green-lighting by accident.
        if gated == 0 {
            eprintln!("throughput: baseline has no usable per-scheduler entries — wrong file?");
            std::process::exit(2);
        }
        if failed {
            eprintln!("throughput: regression beyond {:.0}%", tolerance * 100.0);
            std::process::exit(1);
        }
        println!(
            "throughput check passed (tolerance {:.0}%)",
            tolerance * 100.0
        );
    } else {
        write_json("BENCH_2.json", &json);
        println!("{json}");
        eprintln!("  [throughput] wrote BENCH_2.json");

        // Idle-heavy WebPLT arm: dense vs event-driven stepping.
        let m = run_idle_heavy();
        eprintln!(
            "  [throughput] idle-heavy: dense {:.2}s, event-driven {:.2}s \
             ({:.1}x), skipped {}/{} idle TTIs",
            m.dense_secs,
            m.event_secs,
            m.dense_secs / m.event_secs,
            m.skipped_ttis,
            m.idle_ttis
        );
        if m.skipped_ttis == 0 {
            eprintln!("throughput: idle-heavy run skipped zero TTIs — skip machinery is dead");
            std::process::exit(1);
        }
        let json3 = idle_heavy_json(&m);
        write_json("BENCH_3.json", &json3);
        println!("{json3}");
        eprintln!("  [throughput] wrote BENCH_3.json");

        // Dense busy-cell MAC kernel arms, gated at ≥5× the end-to-end
        // rows measured above (same machine, same build).
        let kernel_rows = measure_kernel_rows();
        let json4 = kernel_json(&rows, &kernel_rows);
        write_json("BENCH_4.json", &json4);
        println!("{json4}");
        eprintln!("  [throughput] wrote BENCH_4.json");
    }
}

/// Write a result file atomically (temp sibling + rename): an interrupted
/// CI run leaves the previous baseline intact, never a torn JSON.
fn write_json(path: &str, json: &str) {
    if let Err(e) = outran_simcore::snap::write_atomic(std::path::Path::new(path), json.as_bytes())
    {
        eprintln!("throughput: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

/// Re-measure the idle-heavy arm and gate it against a BENCH_3 baseline.
fn check_idle_heavy(baseline: &str, tolerance: f64) {
    let m = run_idle_heavy();
    let event_tps = m.total_ttis as f64 / m.event_secs;
    if m.skipped_ttis == 0 {
        eprintln!("throughput: idle-heavy run skipped zero TTIs — skip machinery is dead");
        std::process::exit(1);
    }
    let Some(base) = scan_f64(baseline, "ttis_per_sec_eventdriven") else {
        eprintln!("throughput: baseline lacks ttis_per_sec_eventdriven");
        std::process::exit(2);
    };
    let floor = base * (1.0 - tolerance);
    eprintln!(
        "  [throughput] idle-heavy event-driven: {event_tps:.0} vs baseline {base:.0} \
         (floor {floor:.0}), skipped {}/{} idle TTIs",
        m.skipped_ttis, m.idle_ttis
    );
    if event_tps < floor {
        eprintln!(
            "throughput: idle-heavy regression beyond {:.0}%",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "idle-heavy throughput check passed (tolerance {:.0}%)",
        tolerance * 100.0
    );
}
