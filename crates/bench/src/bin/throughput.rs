//! Simulator throughput baseline — simulated TTIs per wall-clock second
//! for each scheduler, plus the parallel-sweep speedup, written to
//! `BENCH_2.json`.
//!
//! ```console
//! cargo run --release -p outran-bench --bin throughput            # measure
//! cargo run --release -p outran-bench --bin throughput -- \
//!     --check BENCH_2.json                                        # gate
//! ```
//!
//! `--check FILE` re-measures and fails (exit 1) if any scheduler's
//! TTIs/sec dropped more than the tolerance (default 25%, override with
//! `OUTRAN_PERF_TOLERANCE=0.25`) below the figures recorded in FILE.
//! Absolute TTIs/sec are machine-dependent: gate against a baseline
//! produced on the same machine (CI measures, then self-checks).

use outran_ran::{Cell, CellConfig, SchedulerKind};
use outran_simcore::{Dur, Time};
use std::time::Instant;

/// Simulated horizon per measured run.
const SIM_SECS: u64 = 5;
/// UEs in the measured cell.
const USERS: usize = 16;
/// Flow sizes cycled by the deterministic workload (bytes).
const SIZES: [u64; 4] = [2_000, 8_000, 40_000, 200_000];
/// Deterministic arrival spacing.
const ARRIVAL_MS: u64 = 10;

const KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Pf,
    SchedulerKind::Rr,
    SchedulerKind::Mt,
    SchedulerKind::Srjf,
    SchedulerKind::OutRan,
];

/// Build the measured cell: the paper's LTE setting under a fixed
/// deterministic workload (sizes cycling short→long, one arrival every
/// [`ARRIVAL_MS`] ms on round-robin UEs ≈ load 0.6).
fn build_cell(kind: SchedulerKind) -> Cell {
    let cfg = CellConfig::lte_default(USERS, kind, 42);
    let mut cell = Cell::new(cfg);
    let horizon = Time::ZERO + Dur::from_secs(SIM_SECS);
    let mut at = Time::ZERO + Dur::from_millis(5);
    let mut i = 0usize;
    while at < horizon {
        cell.schedule_flow(at, i % USERS, SIZES[i % SIZES.len()], None);
        at += Dur::from_millis(ARRIVAL_MS);
        i += 1;
    }
    cell
}

/// Step `cell` to the horizon; returns (TTIs stepped, wall seconds).
fn run_timed(mut cell: Cell) -> (u64, f64) {
    let end = Time::ZERO + Dur::from_secs(SIM_SECS);
    let start = Instant::now();
    let mut ttis = 0u64;
    while cell.now() < end {
        cell.step();
        ttis += 1;
    }
    (ttis, start.elapsed().as_secs_f64())
}

/// Pull `"ttis_per_sec": <x>` for one scheduler block out of a
/// previously emitted BENCH_2.json (no serde in the offline build, and
/// we emit the file ourselves, so a positional scan is exact).
fn baseline_tps(json: &str, scheduler: &str) -> Option<f64> {
    let tag = format!("\"scheduler\": \"{scheduler}\"");
    let at = json.find(&tag)? + tag.len();
    let rest = &json[at..];
    let key = "\"ttis_per_sec\": ";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find([',', '}', '\n'])?;
    v[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check: Option<String> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    // Fail on an unreadable baseline *before* spending time measuring.
    let baseline = check
        .as_ref()
        .map(|path| match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("throughput: cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        });
    let threads = outran_bench::configured_threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm up caches / page in the binary before timing.
    let _ = run_timed(build_cell(SchedulerKind::Pf));

    let mut rows = Vec::new();
    for kind in KINDS {
        let (ttis, secs) = run_timed(build_cell(kind));
        let tps = ttis as f64 / secs;
        eprintln!(
            "  [throughput] {:<12} {ttis} TTIs in {secs:.3}s = {tps:.0} TTIs/s",
            kind.name()
        );
        rows.push((kind.name(), ttis, secs, tps));
    }

    // Parallel-sweep wall clock: the same independent jobs serial vs
    // fanned across the pool (speedup ≈ min(threads, cores) on idle
    // multi-core machines, ≈ 1 on a single-core box).
    let jobs: Vec<SchedulerKind> = KINDS.into_iter().chain(KINDS.into_iter().take(3)).collect();
    let t0 = Instant::now();
    let _ = outran_ran::parallel_map(1, jobs.clone(), |k| run_timed(build_cell(k)).0);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _ = outran_ran::parallel_map(threads, jobs.clone(), |k| run_timed(build_cell(k)).0);
    let parallel_secs = t1.elapsed().as_secs_f64();
    let speedup = serial_secs / parallel_secs;
    eprintln!(
        "  [throughput] sweep of {} jobs: serial {serial_secs:.2}s, \
         {threads} thread(s) {parallel_secs:.2}s, speedup {speedup:.2}x",
        jobs.len()
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"outran-throughput-v1\",\n");
    json.push_str(&format!(
        "  \"threads\": {threads},\n  \"cores\": {cores},\n"
    ));
    json.push_str(&format!(
        "  \"sim_secs\": {SIM_SECS},\n  \"users\": {USERS},\n"
    ));
    json.push_str("  \"per_scheduler\": [\n");
    for (i, (name, ttis, secs, tps)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheduler\": \"{name}\", \"ttis\": {ttis}, \
             \"wall_secs\": {secs:.4}, \"ttis_per_sec\": {tps:.1}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sweep\": {{\"jobs\": {}, \"serial_secs\": {serial_secs:.3}, \
         \"parallel_secs\": {parallel_secs:.3}, \"speedup\": {speedup:.3}}}\n}}\n",
        jobs.len()
    ));

    if let Some(baseline) = baseline {
        let tolerance: f64 = std::env::var("OUTRAN_PERF_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.25);
        let mut failed = false;
        for (name, _, _, tps) in &rows {
            let Some(base) = baseline_tps(&baseline, name) else {
                eprintln!("  [throughput] {name}: no baseline entry, skipping");
                continue;
            };
            let floor = base * (1.0 - tolerance);
            let verdict = if *tps < floor { "REGRESSION" } else { "ok" };
            if *tps < floor {
                failed = true;
            }
            eprintln!(
                "  [throughput] {name}: {tps:.0} vs baseline {base:.0} \
                 (floor {floor:.0}) — {verdict}"
            );
        }
        if failed {
            eprintln!("throughput: regression beyond {:.0}%", tolerance * 100.0);
            std::process::exit(1);
        }
        println!(
            "throughput check passed (tolerance {:.0}%)",
            tolerance * 100.0
        );
    } else {
        std::fs::write("BENCH_2.json", &json).expect("write BENCH_2.json");
        println!("{json}");
        eprintln!("  [throughput] wrote BENCH_2.json");
    }
}
