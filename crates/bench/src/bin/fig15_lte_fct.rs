//! Figure 15 — [NS-3 LTE] FCT across cell loads 0.4–0.8 under the LTE
//! cellular workload, for PF / SRJF / PSS / CQA / OutRAN:
//! (a) overall average, (b) short-flow 95th percentile,
//! (c) medium-flow average, (d) long-flow average.

#![forbid(unsafe_code)]

use outran_bench::{run_avg_grid, AvgReport, SEEDS};
use outran_metrics::table::f1;
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};

const KINDS: [SchedulerKind; 5] = [
    SchedulerKind::Pf,
    SchedulerKind::Srjf,
    SchedulerKind::Pss,
    SchedulerKind::Cqa,
    SchedulerKind::OutRan,
];

fn main() {
    let loads = [0.4, 0.5, 0.6, 0.7, 0.8];
    let mut tables = [
        Table::new(
            "Fig 15(a): overall average FCT (ms)",
            &["scheduler", "0.4", "0.5", "0.6", "0.7", "0.8"],
        ),
        Table::new(
            "Fig 15(b): short (0,10KB] 95%-ile FCT (ms)",
            &["scheduler", "0.4", "0.5", "0.6", "0.7", "0.8"],
        ),
        Table::new(
            "Fig 15(c): medium (10KB,0.1MB] avg FCT (ms)",
            &["scheduler", "0.4", "0.5", "0.6", "0.7", "0.8"],
        ),
        Table::new(
            "Fig 15(d): long (0.1MB,inf) avg FCT (ms)",
            &["scheduler", "0.4", "0.5", "0.6", "0.7", "0.8"],
        ),
    ];
    let mut health = Table::new(
        "Fig 15 runs: loss / fault health (all loads)",
        &AvgReport::health_headers(),
    );
    // One grid point per (scheduler, load): the whole figure fans out
    // across the worker pool in one shot.
    let points: Vec<(SchedulerKind, f64)> = KINDS
        .iter()
        .flat_map(|&k| loads.iter().map(move |&l| (k, l)))
        .collect();
    let results = run_avg_grid(points, &SEEDS, |&(kind, load), seed| {
        Experiment::lte_default()
            .srjf_mode(outran_mac::SrjfMode::WinnerOnly)
            .users(40)
            .load(load)
            .duration_secs(20)
            .scheduler(kind)
            .seed(seed)
    });
    let mut it = results.into_iter();
    for kind in KINDS {
        let mut rows: [Vec<String>; 4] = [
            vec![kind.name().to_string()],
            vec![kind.name().to_string()],
            vec![kind.name().to_string()],
            vec![kind.name().to_string()],
        ];
        let mut hsum: Option<AvgReport> = None;
        for _ in &loads {
            let (_, r) = it.next().expect("grid covers every (kind, load)");
            rows[0].push(f1(r.overall_mean_ms));
            rows[1].push(f1(r.short_p95_ms));
            rows[2].push(f1(r.medium_mean_ms));
            rows[3].push(f1(r.long_mean_ms));
            match &mut hsum {
                None => hsum = Some(r),
                Some(h) => {
                    h.buffer_drops += r.buffer_drops;
                    h.residual_losses += r.residual_losses;
                    h.fault_events += r.fault_events;
                    h.violations += r.violations;
                }
            }
        }
        for (t, row) in tables.iter_mut().zip(&rows) {
            t.row(row);
        }
        if let Some(h) = &hsum {
            health.row(&h.health_row());
        }
        eprintln!("  [fig15] {} done", kind.name());
    }
    for t in &tables {
        t.print();
        println!();
    }
    health.print();
    println!(
        "expected shapes (paper): OutRAN ≈ SRJF on (b), far below PF whose tail\n\
         inflates with load; SRJF worst on (a)/(d); CQA strong on (b) but\n\
         costly elsewhere; OutRAN does not starve long flows."
    );
}
