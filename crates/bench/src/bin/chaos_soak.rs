//! Chaos soak — survival/recovery sweep across fault-plan intensities.
//!
//! Runs the standard LTE OutRAN experiment under `FaultPlan::chaos`
//! plans of increasing intensity (0 = fault-free baseline, 1 = hostile)
//! and prints one row per intensity: flow survival, drop/loss totals,
//! recovery-path activity, and the invariant-audit verdict. The process
//! exits non-zero if any run records an invariant violation, so the
//! binary doubles as a robustness gate.
//!
//! ```console
//! cargo run --release -p outran-bench --bin chaos_soak
//! ```

#![forbid(unsafe_code)]

use outran_faults::FaultPlan;
use outran_metrics::table::f1;
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};
use outran_simcore::Dur;

const SECS: u64 = 8;
const USERS: usize = 12;
const SEED: u64 = 7;

fn main() {
    let intensities = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut t = Table::new(
        "Chaos soak: OutRAN under seeded fault plans (LTE, 12 UEs, load 0.5)",
        &[
            "intensity",
            "windows",
            "completed/offered",
            "survival%",
            "buf drops",
            "resid loss",
            "rlf",
            "reest",
            "detach",
            "evict",
            "wdog kicks",
            "violations",
        ],
    );
    let mut total_violations = 0u64;
    // Each intensity is an independent seeded experiment: fan them out.
    let runs = outran_ran::parallel_map(
        outran_bench::configured_threads(),
        intensities.to_vec(),
        |intensity| {
            let plan = FaultPlan::chaos(SEED, Dur::from_secs(SECS), USERS, intensity);
            let windows = plan.windows().len();
            let r = Experiment::lte_default()
                .scheduler(SchedulerKind::OutRan)
                .users(USERS)
                .load(0.5)
                .duration_secs(SECS)
                .seed(SEED)
                .faults(plan)
                .watchdog(Some(Dur::from_millis(750)))
                .max_flow_entries(Some(256))
                .run();
            (intensity, windows, r)
        },
    );
    for res in runs {
        let (intensity, windows, r) = match res {
            Ok(point) => point,
            Err(f) => {
                eprintln!("chaos_soak: {f} — failing");
                std::process::exit(1);
            }
        };
        let survival = if r.offered == 0 {
            100.0
        } else {
            100.0 * r.completed as f64 / r.offered as f64
        };
        total_violations += r.total_violations;
        let s = &r.fault_stats;
        t.row(&[
            format!("{intensity:.2}"),
            windows.to_string(),
            format!("{}/{}", r.completed, r.offered),
            f1(survival),
            r.buffer_drops.to_string(),
            r.residual_losses.to_string(),
            s.rlf_events.to_string(),
            s.reestablishments.to_string(),
            s.detach_events.to_string(),
            s.flows_evicted.to_string(),
            s.watchdog_kicks.to_string(),
            r.total_violations.to_string(),
        ]);
        for v in &r.violations {
            eprintln!("  [chaos_soak] intensity {intensity:.2}: violation: {v}");
        }
    }
    t.print();
    if total_violations > 0 {
        eprintln!("chaos_soak: {total_violations} invariant violation(s) — failing");
        std::process::exit(1);
    }
    println!("\nall intensities clean: every run passed the invariant audit.");
}
