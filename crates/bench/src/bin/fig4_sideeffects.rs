//! Figure 4 — side-effects of naive flow scheduling at the xNodeB:
//! SRJF costs spectral efficiency (paper −48 %) and fairness (−47 %)
//! relative to PF, shown as time series of the windowed samples.

#![forbid(unsafe_code)]

use outran_bench::{run_avg, SEEDS};
use outran_metrics::table::{f2, f3, print_series};
use outran_ran::{Experiment, SchedulerKind};

fn main() {
    let build = |kind: SchedulerKind| {
        move |seed: u64| {
            Experiment::lte_default()
                .srjf_mode(outran_mac::SrjfMode::WinnerOnly)
                .users(40)
                .load(0.7)
                .duration_secs(20)
                .scheduler(kind)
                .seed(seed)
        }
    };
    let pf = run_avg(build(SchedulerKind::Pf), &SEEDS);
    let srjf = run_avg(build(SchedulerKind::Srjf), &SEEDS);

    println!("Figure 4(a): spectral efficiency over time (bit/s/Hz)\n");
    for r in [&pf, &srjf] {
        let series: Vec<(f64, f64)> = r.runs[0]
            .se_series
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 0.05, v)) // 50-TTI windows
            .collect();
        print_series(&format!("{} SE(t)", r.scheduler), &series, 15);
    }
    println!(
        "\nmean SE: PF {} vs SRJF {}  (SRJF/PF = {:.0} %; paper: −48 %)\n",
        f2(pf.spectral_efficiency),
        f2(srjf.spectral_efficiency),
        100.0 * srjf.spectral_efficiency / pf.spectral_efficiency
    );

    println!("Figure 4(b): fairness index over time\n");
    for r in [&pf, &srjf] {
        let series: Vec<(f64, f64)> = r.runs[0]
            .fairness_series
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * 0.05, v))
            .collect();
        print_series(&format!("{} fairness(t)", r.scheduler), &series, 15);
    }
    println!(
        "\nmean fairness: PF {} vs SRJF {}  (SRJF/PF = {:.0} %; paper: −47 %)",
        f3(pf.fairness),
        f3(srjf.fairness),
        100.0 * srjf.fairness / pf.fairness
    );
}
