//! Figure 17 — [NS-3 5G] impact of OutRAN in 5G RAN: numerology 0–3 ×
//! server location {remote 20 ms, MEC 5 ms} × cell load {10 %, 60 %},
//! reporting ① RTT, ② average queueing delay, ③ short-flow queueing
//! delay, ④ short-flow 95th-percentile FCT, for PF vs OutRAN.

#![forbid(unsafe_code)]

use outran_bench::run_avg;
use outran_metrics::table::f1;
use outran_metrics::Table;
use outran_ran::{Experiment, SchedulerKind};
use outran_simcore::Dur;

fn main() {
    // Two seeds keep the 32-cell sweep affordable; each point is a
    // 40-UE NR cell.
    let seeds = [11u64, 23];
    for (server, prop_ms) in [("Remote", 20u64), ("MEC", 5)] {
        for load in [0.1, 0.6] {
            let mut t = Table::new(
                &format!(
                    "Fig 17 [{server} server, prop {prop_ms} ms, load {:.0}%]",
                    load * 100.0
                ),
                &[
                    "numerology/slot(us)",
                    "sched",
                    "RTT(ms)",
                    "avgQ(ms)",
                    "S Q(ms)",
                    "S p95 FCT(ms)",
                ],
            );
            for mu in 0u8..=3 {
                for kind in [SchedulerKind::Pf, SchedulerKind::OutRan] {
                    let r = run_avg(
                        |seed| {
                            Experiment::nr_default(mu)
                                .load(load)
                                .duration_secs(8)
                                .cn_delay(Dur::from_millis(prop_ms))
                                .scheduler(kind)
                                .seed(seed)
                        },
                        &seeds,
                    );
                    t.row(&[
                        format!("{} / {}", mu, 1000 >> mu),
                        kind.name().to_string(),
                        f1(r.mean_rtt_ms),
                        f1(r.mean_qdelay_ms),
                        f1(r.short_qdelay_ms),
                        f1(r.short_p95_ms),
                    ]);
                }
            }
            t.print();
            println!();
            eprintln!("  [fig17] {server} load {load} done");
        }
    }
    println!(
        "expected shapes (paper): at load 10% RTT falls with MEC + higher\n\
         numerology; at load 60% queue build-up at the gNodeB inflates short\n\
         queueing delay and tail FCT for PF even with the best RAN settings,\n\
         while OutRAN keeps the short-flow queue delay near the slot length."
    );
}
