//! Runtime invariant auditing.
//!
//! The [`InvariantAuditor`] is fed cheap observations every TTI (clock,
//! RB usage, per-flow delivery order) and a fuller [`AuditSnapshot`]
//! every `check_every_ttis` TTIs plus once at end-of-run. Failed checks
//! become structured [`Violation`] records rather than panics, so a run
//! under fault injection can finish and report everything it saw.

use std::collections::BTreeMap;
use std::fmt;

use outran_simcore::Time;

/// Byte-conservation ledger for the downlink path, maintained by the
/// cell. Every payload byte scheduled toward the eNB must be accounted
/// for: `injected == delivered + dropped + in_flight` at all times.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteLedger {
    /// Bytes emitted by server-side senders toward the eNB.
    pub injected: u64,
    /// Bytes delivered to UE-side receivers.
    pub delivered: u64,
    /// Bytes terminally lost, across every drop path (CN faults, buffer
    /// overflow, residual loss, HARQ exhaustion, reassembly discard,
    /// re-establishment flushes).
    pub dropped: u64,
    /// Bytes currently held: CN link in flight, RLC tx queues, HARQ
    /// queues, and rx reassembly buffers.
    pub in_flight: u64,
}

impl ByteLedger {
    /// Signed conservation error (0 when the ledger balances).
    pub fn imbalance(&self) -> i64 {
        self.injected as i64 - (self.delivered + self.dropped + self.in_flight) as i64
    }
}

/// Periodic state handed to [`InvariantAuditor::check`].
#[derive(Debug, Clone, Default)]
pub struct AuditSnapshot {
    /// Byte ledger, if the cell can compute one exactly for its RLC mode.
    pub bytes: Option<ByteLedger>,
    /// Per-UE RLC queue depth in SDUs: `(ue, depth)`.
    pub queue_depths: Vec<(usize, usize)>,
    /// Effective queue bound in SDUs (after any active buffer shrink).
    pub queue_bound: usize,
}

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// `injected != delivered + dropped + in_flight`.
    ByteConservation {
        /// The unbalanced ledger.
        ledger: ByteLedger,
    },
    /// A TTI allocated more RBs than the grid holds.
    RbOverCommit {
        /// RBs handed out.
        used: u32,
        /// RBs available this TTI.
        available: u32,
    },
    /// The event clock moved backwards.
    ClockWentBackwards {
        /// Previously observed instant.
        prev: Time,
        /// Offending instant.
        now: Time,
    },
    /// RLC delivered SDUs of one flow out of push order.
    IntraFlowReorder {
        /// UE owning the bearer.
        ue: usize,
        /// Flow identifier.
        flow: u64,
        /// Highest SDU id delivered before the offender.
        prev_sdu: u64,
        /// Out-of-order SDU id.
        sdu: u64,
    },
    /// An RLC queue exceeded its configured bound.
    QueueDepthExceeded {
        /// UE owning the queue.
        ue: usize,
        /// Observed depth in SDUs.
        depth: usize,
        /// Configured bound in SDUs.
        bound: usize,
    },
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::ByteConservation { ledger } => write!(
                f,
                "byte conservation broken: injected {} != delivered {} + dropped {} + in-flight {} (imbalance {})",
                ledger.injected, ledger.delivered, ledger.dropped, ledger.in_flight,
                ledger.imbalance()
            ),
            ViolationKind::RbOverCommit { used, available } => {
                write!(f, "RB over-commit: allocated {used} of {available}")
            }
            ViolationKind::ClockWentBackwards { prev, now } => write!(
                f,
                "event clock went backwards: {} -> {} ns",
                prev.as_nanos(),
                now.as_nanos()
            ),
            ViolationKind::IntraFlowReorder { ue, flow, prev_sdu, sdu } => write!(
                f,
                "intra-flow reorder on ue {ue} flow {flow}: sdu {sdu} after {prev_sdu}"
            ),
            ViolationKind::QueueDepthExceeded { ue, depth, bound } => {
                write!(f, "queue depth exceeded on ue {ue}: {depth} > bound {bound}")
            }
        }
    }
}

/// A [`ViolationKind`] plus when it was observed.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulation time of the failed check.
    pub at: Time,
    /// What failed.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}s] {}", self.at.as_nanos() as f64 / 1e9, self.kind)
    }
}

/// Auditor configuration.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Full-snapshot cadence in TTIs.
    pub check_every_ttis: u64,
    /// Cap on retained violations (later ones are counted, not stored).
    pub max_recorded: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            check_every_ttis: 100,
            max_recorded: 64,
        }
    }
}

/// Collects invariant violations over a run.
#[derive(Debug, Default)]
pub struct InvariantAuditor {
    cfg: AuditConfig,
    violations: Vec<Violation>,
    total_violations: u64,
    checks_run: u64,
    ttis_seen: u64,
    last_clock: Option<Time>,
    // (ue, flow) -> highest delivered sdu id.
    delivery_order: BTreeMap<(usize, u64), u64>,
}

impl InvariantAuditor {
    /// New auditor with the given cadence.
    pub fn new(cfg: AuditConfig) -> InvariantAuditor {
        InvariantAuditor {
            cfg,
            violations: Vec::new(),
            total_violations: 0,
            checks_run: 0,
            ttis_seen: 0,
            last_clock: None,
            delivery_order: BTreeMap::new(),
        }
    }

    fn record(&mut self, at: Time, kind: ViolationKind) {
        self.total_violations += 1;
        if self.violations.len() < self.cfg.max_recorded {
            self.violations.push(Violation { at, kind });
        }
    }

    /// Observe the event clock once per TTI; flags regressions.
    pub fn observe_clock(&mut self, now: Time) {
        if let Some(prev) = self.last_clock {
            if now < prev {
                self.record(now, ViolationKind::ClockWentBackwards { prev, now });
            }
        }
        self.last_clock = Some(now);
        self.ttis_seen += 1;
    }

    /// Observe one TTI's RB usage (cheap, called every TTI).
    pub fn observe_rbs(&mut self, now: Time, used: u32, available: u32) {
        if used > available {
            self.record(now, ViolationKind::RbOverCommit { used, available });
        }
    }

    /// Observe one delivered SDU; flags per-flow push-order regressions.
    /// SDU ids are assigned in push order per UE, so within one flow they
    /// must be strictly increasing (gaps from discards are fine).
    pub fn observe_delivery(&mut self, now: Time, ue: usize, flow: u64, sdu: u64) {
        let key = (ue, flow);
        match self.delivery_order.get(&key) {
            Some(&prev_sdu) if sdu <= prev_sdu => {
                self.record(
                    now,
                    ViolationKind::IntraFlowReorder {
                        ue,
                        flow,
                        prev_sdu,
                        sdu,
                    },
                );
            }
            _ => {
                self.delivery_order.insert(key, sdu);
            }
        }
    }

    /// Forget delivery-order history for one UE (radio-link failure or
    /// detach re-establishes RLC, which legitimately restarts SDU ids).
    pub fn forget_ue(&mut self, ue: usize) {
        self.delivery_order.retain(|&(u, _), _| u != ue);
    }

    /// Whether the periodic full check is due this TTI.
    pub fn due(&self) -> bool {
        self.cfg.check_every_ttis > 0 && self.ttis_seen.is_multiple_of(self.cfg.check_every_ttis)
    }

    /// Run the full snapshot check (periodically and at end-of-run).
    pub fn check(&mut self, now: Time, snap: &AuditSnapshot) {
        self.checks_run += 1;
        if let Some(ledger) = snap.bytes {
            if ledger.imbalance() != 0 {
                self.record(now, ViolationKind::ByteConservation { ledger });
            }
        }
        for &(ue, depth) in &snap.queue_depths {
            if depth > snap.queue_bound {
                self.record(
                    now,
                    ViolationKind::QueueDepthExceeded {
                        ue,
                        depth,
                        bound: snap.queue_bound,
                    },
                );
            }
        }
    }

    /// All retained violations, in observation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations observed (including any beyond the retention cap).
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Number of full snapshot checks run.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// True when no invariant has failed.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl ByteLedger {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.injected);
        w.u64(self.delivered);
        w.u64(self.dropped);
        w.u64(self.in_flight);
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<ByteLedger, SnapError> {
        Ok(ByteLedger {
            injected: r.u64()?,
            delivered: r.u64()?,
            dropped: r.u64()?,
            in_flight: r.u64()?,
        })
    }
}

impl ViolationKind {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            ViolationKind::ByteConservation { ledger } => {
                w.u8(0);
                ledger.snap(w);
            }
            ViolationKind::RbOverCommit { used, available } => {
                w.u8(1);
                w.u32(*used);
                w.u32(*available);
            }
            ViolationKind::ClockWentBackwards { prev, now } => {
                w.u8(2);
                w.time(*prev);
                w.time(*now);
            }
            ViolationKind::IntraFlowReorder {
                ue,
                flow,
                prev_sdu,
                sdu,
            } => {
                w.u8(3);
                w.usize(*ue);
                w.u64(*flow);
                w.u64(*prev_sdu);
                w.u64(*sdu);
            }
            ViolationKind::QueueDepthExceeded { ue, depth, bound } => {
                w.u8(4);
                w.usize(*ue);
                w.usize(*depth);
                w.usize(*bound);
            }
        }
    }

    fn unsnap(r: &mut SnapReader<'_>) -> Result<ViolationKind, SnapError> {
        Ok(match r.u8()? {
            0 => ViolationKind::ByteConservation {
                ledger: ByteLedger::unsnap(r)?,
            },
            1 => ViolationKind::RbOverCommit {
                used: r.u32()?,
                available: r.u32()?,
            },
            2 => ViolationKind::ClockWentBackwards {
                prev: r.time()?,
                now: r.time()?,
            },
            3 => ViolationKind::IntraFlowReorder {
                ue: r.usize()?,
                flow: r.u64()?,
                prev_sdu: r.u64()?,
                sdu: r.u64()?,
            },
            4 => ViolationKind::QueueDepthExceeded {
                ue: r.usize()?,
                depth: r.usize()?,
                bound: r.usize()?,
            },
            _ => return Err(SnapError::Malformed("unknown violation kind tag")),
        })
    }
}

impl InvariantAuditor {
    /// Serialize the auditor's dynamic state (checkpointing). The
    /// [`AuditConfig`] is not written; it is re-established from the run
    /// configuration on restore.
    pub fn snap(&self, w: &mut SnapWriter) {
        w.seq(self.violations.iter(), |w, v| {
            w.time(v.at);
            v.kind.snap(w);
        });
        w.u64(self.total_violations);
        w.u64(self.checks_run);
        w.u64(self.ttis_seen);
        w.opt(&self.last_clock, |w, &t| w.time(t));
        w.seq(self.delivery_order.iter(), |w, (&(ue, flow), &sdu)| {
            w.usize(ue);
            w.u64(flow);
            w.u64(sdu);
        });
    }

    /// Overwrite this auditor's dynamic state from [`InvariantAuditor::snap`]
    /// output, keeping the configured cadence.
    pub fn load_snap(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.violations = r.seq(|r| {
            Ok(Violation {
                at: r.time()?,
                kind: ViolationKind::unsnap(r)?,
            })
        })?;
        self.total_violations = r.u64()?;
        self.checks_run = r.u64()?;
        self.ttis_seen = r.u64()?;
        self.last_clock = r.opt(|r| r.time())?;
        self.delivery_order = r
            .seq(|r| Ok(((r.usize()?, r.u64()?), r.u64()?)))?
            .into_iter()
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn clean_run_stays_clean() {
        let mut a = InvariantAuditor::new(AuditConfig::default());
        for i in 0..500 {
            a.observe_clock(t(i));
            a.observe_rbs(t(i), 25, 25);
            if a.due() {
                a.check(
                    t(i),
                    &AuditSnapshot {
                        bytes: Some(ByteLedger {
                            injected: 100,
                            delivered: 60,
                            dropped: 10,
                            in_flight: 30,
                        }),
                        queue_depths: vec![(0, 8), (1, 0)],
                        queue_bound: 64,
                    },
                );
            }
        }
        assert!(a.is_clean());
        assert!(a.checks_run() > 0);
    }

    #[test]
    fn each_invariant_trips() {
        let mut a = InvariantAuditor::new(AuditConfig::default());
        a.observe_clock(t(10));
        a.observe_clock(t(5));
        a.observe_rbs(t(10), 30, 25);
        a.observe_delivery(t(10), 0, 7, 4);
        a.observe_delivery(t(11), 0, 7, 3);
        a.check(
            t(12),
            &AuditSnapshot {
                bytes: Some(ByteLedger {
                    injected: 100,
                    delivered: 50,
                    dropped: 10,
                    in_flight: 30,
                }),
                queue_depths: vec![(1, 99)],
                queue_bound: 64,
            },
        );
        assert_eq!(a.total_violations(), 5);
        assert_eq!(a.violations().len(), 5);
        let shown = a
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>();
        assert!(shown[0].contains("backwards"));
        assert!(shown[1].contains("over-commit"));
        assert!(shown[2].contains("reorder"));
        assert!(shown[3].contains("imbalance 10"));
        assert!(shown[4].contains("depth"));
    }

    #[test]
    fn forget_ue_allows_sdu_id_restart() {
        let mut a = InvariantAuditor::new(AuditConfig::default());
        a.observe_delivery(t(1), 2, 5, 40);
        a.forget_ue(2);
        a.observe_delivery(t(2), 2, 5, 1);
        assert!(a.is_clean());
    }

    #[test]
    fn retention_cap_counts_everything() {
        let mut a = InvariantAuditor::new(AuditConfig {
            check_every_ttis: 1,
            max_recorded: 2,
        });
        for i in 0..5 {
            a.observe_rbs(t(i), 99, 1);
        }
        assert_eq!(a.total_violations(), 5);
        assert_eq!(a.violations().len(), 2);
    }
}
