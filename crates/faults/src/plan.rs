//! Scripted fault timelines.
//!
//! A [`FaultPlan`] is a list of [`FaultWindow`]s — half-open time
//! intervals during which one [`FaultKind`] is active. The cell queries
//! [`FaultPlan::active_at`] once per TTI and gets back a flattened
//! [`ActiveFaults`] snapshot it can act on without knowing anything about
//! the schedule. Plans are plain data: building one from code, from CLI
//! flags, or from the seeded [`FaultPlan::chaos`] generator all produce
//! the same thing, and a given plan replayed against the same cell seed
//! is bit-for-bit reproducible.

use outran_simcore::{Dur, Rng, Time};

/// What goes wrong during a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Core-network link fully down: packets in either direction between
    /// the server and the eNB are dropped at the link.
    CnOutage,
    /// Core-network link degraded: every traversing packet picks up
    /// `extra_delay`, and is independently lost with probability `loss`.
    CnDegrade {
        /// Added one-way delay.
        extra_delay: Dur,
        /// Per-packet loss probability on the CN link.
        loss: f64,
    },
    /// Air-interface loss spike: adds to the configured residual loss
    /// probability for every transmitted RLC segment.
    LossSpike {
        /// Additional per-segment residual loss probability.
        extra_loss: f64,
    },
    /// CQI reports stop updating (the channel keeps evolving, but the
    /// scheduler keeps seeing the last report). `ue: None` = all UEs.
    CqiFreeze {
        /// Affected UE, or every UE when `None`.
        ue: Option<usize>,
    },
    /// CQI reports are replaced with uniformly random values drawn from
    /// the fault RNG. `ue: None` = all UEs.
    CqiCorrupt {
        /// Affected UE, or every UE when `None`.
        ue: Option<usize>,
    },
    /// Radio-link failure: the UE's link is dead for the window; RLC
    /// entities are re-established (flushed) at window start and traffic
    /// refills from TCP retransmission after the window.
    RadioLinkFailure {
        /// Affected UE.
        ue: usize,
    },
    /// UE detaches for the window (buffers flushed, flow state evicted,
    /// no scheduling) and re-attaches when it closes.
    Detach {
        /// Affected UE.
        ue: usize,
    },
    /// RLC buffers are clamped to `capacity_sdus` for the window;
    /// over-full queues shed from the lowest priority on entry.
    BufferShrink {
        /// Clamped per-UE capacity, in SDUs.
        capacity_sdus: usize,
    },
}

impl FaultKind {
    /// Short stable name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::CnOutage => "cn-outage",
            FaultKind::CnDegrade { .. } => "cn-degrade",
            FaultKind::LossSpike { .. } => "loss-spike",
            FaultKind::CqiFreeze { .. } => "cqi-freeze",
            FaultKind::CqiCorrupt { .. } => "cqi-corrupt",
            FaultKind::RadioLinkFailure { .. } => "rlf",
            FaultKind::Detach { .. } => "detach",
            FaultKind::BufferShrink { .. } => "buffer-shrink",
        }
    }
}

/// One scheduled fault: `kind` is active for `start <= now < end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub start: Time,
    /// First instant after the fault (half-open).
    pub end: Time,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window covers `now`.
    pub fn active_at(&self, now: Time) -> bool {
        self.start <= now && now < self.end
    }
}

/// Flattened view of every fault active at one instant.
///
/// Built fresh each TTI by [`FaultPlan::active_at`]; the cell diffs it
/// against the previous TTI's snapshot to detect window edges (flush on
/// RLF entry, re-attach on detach exit, and so on).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActiveFaults {
    /// CN link is fully down.
    pub cn_outage: bool,
    /// Extra one-way CN delay (max across active degrade windows).
    pub cn_extra_delay: Dur,
    /// CN per-packet loss probability (max across active windows).
    pub cn_loss: f64,
    /// Additional residual loss on every transmitted segment.
    pub extra_loss: f64,
    /// CQI frozen for every UE.
    pub cqi_freeze_all: bool,
    /// CQI frozen for specific UEs.
    pub cqi_freeze_ues: Vec<usize>,
    /// CQI corrupted for every UE.
    pub cqi_corrupt_all: bool,
    /// CQI corrupted for specific UEs.
    pub cqi_corrupt_ues: Vec<usize>,
    /// UEs in radio-link failure.
    pub rlf_ues: Vec<usize>,
    /// UEs currently detached.
    pub detached_ues: Vec<usize>,
    /// Effective RLC capacity clamp (min across active shrink windows).
    pub buffer_cap: Option<usize>,
}

impl ActiveFaults {
    /// True when no fault is active.
    pub fn is_quiet(&self) -> bool {
        *self == ActiveFaults::default()
    }

    /// Whether `ue`'s CQI reports are frozen.
    pub fn cqi_frozen(&self, ue: usize) -> bool {
        self.cqi_freeze_all || self.cqi_freeze_ues.contains(&ue)
    }

    /// Whether `ue`'s CQI reports are corrupted.
    pub fn cqi_corrupted(&self, ue: usize) -> bool {
        self.cqi_corrupt_all || self.cqi_corrupt_ues.contains(&ue)
    }

    /// Whether `ue` is in radio-link failure.
    pub fn in_rlf(&self, ue: usize) -> bool {
        self.rlf_ues.contains(&ue)
    }

    /// Whether `ue` is detached.
    pub fn detached(&self, ue: usize) -> bool {
        self.detached_ues.contains(&ue)
    }

    /// Whether `ue` can be scheduled at all this TTI.
    pub fn link_up(&self, ue: usize) -> bool {
        !self.in_rlf(ue) && !self.detached(ue)
    }
}

/// A deterministic, scripted timeline of fault windows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All scheduled windows, ordered by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Add a window, keeping start-time order (stable for equal starts).
    pub fn push(&mut self, window: FaultWindow) {
        assert!(
            window.start < window.end,
            "fault window must have start < end ({:?})",
            window
        );
        self.windows.push(window);
        self.windows.sort_by_key(|w| w.start);
    }

    /// Builder form of [`FaultPlan::push`].
    pub fn with(mut self, start: Time, end: Time, kind: FaultKind) -> FaultPlan {
        self.push(FaultWindow { start, end, kind });
        self
    }

    /// Schedule a full CN outage.
    pub fn cn_outage(self, start: Time, end: Time) -> FaultPlan {
        self.with(start, end, FaultKind::CnOutage)
    }

    /// Schedule a CN degradation (extra delay + loss).
    pub fn cn_degrade(self, start: Time, end: Time, extra_delay: Dur, loss: f64) -> FaultPlan {
        self.with(start, end, FaultKind::CnDegrade { extra_delay, loss })
    }

    /// Schedule an air-interface loss spike.
    pub fn loss_spike(self, start: Time, end: Time, extra_loss: f64) -> FaultPlan {
        self.with(start, end, FaultKind::LossSpike { extra_loss })
    }

    /// Schedule a CQI staleness window.
    pub fn cqi_freeze(self, start: Time, end: Time, ue: Option<usize>) -> FaultPlan {
        self.with(start, end, FaultKind::CqiFreeze { ue })
    }

    /// Schedule a CQI corruption window.
    pub fn cqi_corrupt(self, start: Time, end: Time, ue: Option<usize>) -> FaultPlan {
        self.with(start, end, FaultKind::CqiCorrupt { ue })
    }

    /// Schedule a radio-link failure for `ue` at `at`, recovering after
    /// `outage`.
    pub fn radio_link_failure(self, at: Time, outage: Dur, ue: usize) -> FaultPlan {
        self.with(at, at + outage, FaultKind::RadioLinkFailure { ue })
    }

    /// Schedule a detach/re-attach cycle for `ue`.
    pub fn detach(self, start: Time, end: Time, ue: usize) -> FaultPlan {
        self.with(start, end, FaultKind::Detach { ue })
    }

    /// Schedule a buffer shrink to `capacity_sdus`.
    pub fn buffer_shrink(self, start: Time, end: Time, capacity_sdus: usize) -> FaultPlan {
        self.with(start, end, FaultKind::BufferShrink { capacity_sdus })
    }

    /// Flatten every window covering `now` into one snapshot.
    pub fn active_at(&self, now: Time) -> ActiveFaults {
        let mut af = ActiveFaults::default();
        for w in &self.windows {
            if w.start > now {
                break; // sorted by start: nothing later can cover now
            }
            if !w.active_at(now) {
                continue;
            }
            match w.kind {
                FaultKind::CnOutage => af.cn_outage = true,
                FaultKind::CnDegrade { extra_delay, loss } => {
                    if extra_delay.0 > af.cn_extra_delay.0 {
                        af.cn_extra_delay = extra_delay;
                    }
                    af.cn_loss = af.cn_loss.max(loss);
                }
                FaultKind::LossSpike { extra_loss } => {
                    af.extra_loss = af.extra_loss.max(extra_loss);
                }
                FaultKind::CqiFreeze { ue } => match ue {
                    None => af.cqi_freeze_all = true,
                    Some(u) => af.cqi_freeze_ues.push(u),
                },
                FaultKind::CqiCorrupt { ue } => match ue {
                    None => af.cqi_corrupt_all = true,
                    Some(u) => af.cqi_corrupt_ues.push(u),
                },
                FaultKind::RadioLinkFailure { ue } => af.rlf_ues.push(ue),
                FaultKind::Detach { ue } => af.detached_ues.push(ue),
                FaultKind::BufferShrink { capacity_sdus } => {
                    af.buffer_cap = Some(match af.buffer_cap {
                        Some(c) => c.min(capacity_sdus),
                        None => capacity_sdus,
                    });
                }
            }
        }
        af
    }

    /// The next window edge (start or end) strictly after `t`, if any.
    ///
    /// Between two consecutive edges the [`ActiveFaults`] snapshot is
    /// constant, so a driver that re-evaluates faults at every edge may
    /// skip the TTIs in between without missing a transition.
    pub fn next_edge_after(&self, t: Time) -> Option<Time> {
        let mut next: Option<Time> = None;
        for w in &self.windows {
            for edge in [w.start, w.end] {
                if edge > t && next.is_none_or(|n| edge < n) {
                    next = Some(edge);
                }
            }
        }
        next
    }

    /// Instant the last window closes (`Time::ZERO` for an empty plan).
    /// Runs should drain past this point before judging recovery.
    pub fn last_end(&self) -> Time {
        self.windows
            .iter()
            .map(|w| w.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Generate a random plan over `[0, duration)` for `n_ues` UEs.
    ///
    /// `intensity` in `[0, 1]` scales how many windows are scheduled
    /// (roughly `intensity * 8` events per simulated second) and how
    /// harsh each one is. Fully deterministic in `seed`.
    pub fn chaos(seed: u64, duration: Dur, n_ues: usize, intensity: f64) -> FaultPlan {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut rng = Rng::new(seed ^ 0xFA01_75CA_0501_AFE5);
        let mut plan = FaultPlan::new();
        if intensity == 0.0 || duration.0 == 0 || n_ues == 0 {
            return plan;
        }
        let n_events = ((intensity * 8.0 * duration.as_secs_f64()).round() as usize).max(1);
        for _ in 0..n_events {
            // Leave the final 15% of the run fault-free so recovery is
            // always observable.
            let horizon = (duration.0 as f64 * 0.85) as u64;
            let len_ms = 20.0 + rng.f64() * (30.0 + 370.0 * intensity);
            let len = Dur::from_millis(len_ms as u64).0.max(1);
            let start = Time::from_nanos(rng.below(horizon.saturating_sub(len).max(1)));
            let end = Time::from_nanos(start.as_nanos() + len);
            let ue = rng.index(n_ues);
            let kind = match rng.index(8) {
                0 => FaultKind::CnOutage,
                1 => FaultKind::CnDegrade {
                    extra_delay: Dur::from_millis(1 + rng.below(20)),
                    loss: 0.05 + 0.4 * intensity * rng.f64(),
                },
                2 => FaultKind::LossSpike {
                    extra_loss: 0.05 + 0.6 * intensity * rng.f64(),
                },
                3 => FaultKind::CqiFreeze {
                    ue: if rng.chance(0.5) { Some(ue) } else { None },
                },
                4 => FaultKind::CqiCorrupt {
                    ue: if rng.chance(0.5) { Some(ue) } else { None },
                },
                5 => FaultKind::RadioLinkFailure { ue },
                6 => FaultKind::Detach { ue },
                _ => FaultKind::BufferShrink {
                    capacity_sdus: 4 + rng.index(28),
                },
            };
            plan.push(FaultWindow { start, end, kind });
        }
        plan
    }

    /// Human-readable schedule, one window per line.
    pub fn describe(&self) -> String {
        if self.windows.is_empty() {
            return "  (no faults scheduled)".to_string();
        }
        let mut out = String::new();
        for w in &self.windows {
            out.push_str(&format!(
                "  {:>9.3}s..{:>9.3}s  {:<13} {:?}\n",
                w.start.as_nanos() as f64 / 1e9,
                w.end.as_nanos() as f64 / 1e9,
                w.kind.name(),
                w.kind,
            ));
        }
        out
    }
}

use outran_simcore::snap::{SnapError, SnapReader, SnapWriter};

impl ActiveFaults {
    /// Serialize the flattened fault snapshot (checkpointing).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.bool(self.cn_outage);
        w.dur(self.cn_extra_delay);
        w.f64(self.cn_loss);
        w.f64(self.extra_loss);
        w.bool(self.cqi_freeze_all);
        w.seq(self.cqi_freeze_ues.iter(), |w, &u| w.usize(u));
        w.bool(self.cqi_corrupt_all);
        w.seq(self.cqi_corrupt_ues.iter(), |w, &u| w.usize(u));
        w.seq(self.rlf_ues.iter(), |w, &u| w.usize(u));
        w.seq(self.detached_ues.iter(), |w, &u| w.usize(u));
        w.opt(&self.buffer_cap, |w, &c| w.usize(c));
    }

    /// Restore from [`ActiveFaults::snap`] output.
    pub fn unsnap(r: &mut SnapReader<'_>) -> Result<ActiveFaults, SnapError> {
        Ok(ActiveFaults {
            cn_outage: r.bool()?,
            cn_extra_delay: r.dur()?,
            cn_loss: r.f64()?,
            extra_loss: r.f64()?,
            cqi_freeze_all: r.bool()?,
            cqi_freeze_ues: r.seq(|r| r.usize())?,
            cqi_corrupt_all: r.bool()?,
            cqi_corrupt_ues: r.seq(|r| r.usize())?,
            rlf_ues: r.seq(|r| r.usize())?,
            detached_ues: r.seq(|r| r.usize())?,
            buffer_cap: r.opt(|r| r.usize())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Time {
        Time::from_millis(x)
    }

    #[test]
    fn windows_are_half_open_and_sorted() {
        let plan = FaultPlan::new()
            .loss_spike(ms(200), ms(300), 0.5)
            .cn_outage(ms(100), ms(150));
        assert_eq!(plan.windows()[0].kind, FaultKind::CnOutage);
        assert!(plan.active_at(ms(100)).cn_outage);
        assert!(plan.active_at(ms(149)).cn_outage);
        assert!(!plan.active_at(ms(150)).cn_outage);
        assert_eq!(plan.last_end(), ms(300));
    }

    #[test]
    fn overlapping_windows_combine() {
        let plan = FaultPlan::new()
            .loss_spike(ms(0), ms(100), 0.2)
            .loss_spike(ms(50), ms(150), 0.4)
            .buffer_shrink(ms(0), ms(100), 16)
            .buffer_shrink(ms(0), ms(100), 8);
        let af = plan.active_at(ms(60));
        assert_eq!(af.extra_loss, 0.4);
        assert_eq!(af.buffer_cap, Some(8));
        assert!(plan.active_at(ms(120)).buffer_cap.is_none());
    }

    #[test]
    fn per_ue_and_all_ue_scopes() {
        let plan = FaultPlan::new()
            .cqi_freeze(ms(0), ms(10), Some(2))
            .detach(ms(0), ms(10), 1);
        let af = plan.active_at(ms(5));
        assert!(af.cqi_frozen(2));
        assert!(!af.cqi_frozen(0));
        assert!(af.detached(1));
        assert!(!af.link_up(1));
        assert!(af.link_up(2));
    }

    #[test]
    fn chaos_is_deterministic_and_scales() {
        let a = FaultPlan::chaos(7, Dur::from_secs(2), 4, 0.5);
        let b = FaultPlan::chaos(7, Dur::from_secs(2), 4, 0.5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::chaos(8, Dur::from_secs(2), 4, 0.5);
        assert_ne!(a, c);
        let quiet = FaultPlan::chaos(7, Dur::from_secs(2), 4, 0.0);
        assert!(quiet.is_empty());
        let heavy = FaultPlan::chaos(7, Dur::from_secs(2), 4, 1.0);
        assert!(heavy.windows().len() > a.windows().len());
    }

    #[test]
    fn empty_plan_is_quiet() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.active_at(ms(0)).is_quiet());
        assert_eq!(plan.last_end(), Time::ZERO);
    }
}
