//! Deterministic fault injection and runtime invariant auditing.
//!
//! This crate owns three concerns, deliberately separated from the cell
//! so that fault logic stays testable in isolation:
//!
//! * [`plan`] — a seeded, scripted timeline of fault events ([`FaultPlan`])
//!   that the cell consults each TTI. Same plan + same seed ⇒ bit-for-bit
//!   identical runs.
//! * [`audit`] — an [`InvariantAuditor`] that checks conservation and
//!   ordering invariants every N TTIs and at end-of-run, reporting
//!   structured [`Violation`]s instead of panicking mid-simulation.
//! * [`stats`] — counters ([`FaultStats`]) describing what was injected
//!   and what the recovery paths did, surfaced in metric summaries.

#![forbid(unsafe_code)]

pub mod audit;
pub mod plan;
pub mod stats;

pub use audit::{
    AuditConfig, AuditSnapshot, ByteLedger, InvariantAuditor, Violation, ViolationKind,
};
pub use plan::{ActiveFaults, FaultKind, FaultPlan, FaultWindow};
pub use stats::FaultStats;
